# Developer entry points. `make tier1` is the gate every PR must keep green.

GO ?= go

.PHONY: all tier1 build test vet race bench bench-smoke clean

all: tier1

# Tier-1: build everything, run the full test suite, and vet.
tier1: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrency-heavy packages (executive
# mailboxes, the skeleton worker pool, and the serve control plane).
race:
	$(GO) test -race ./internal/exec/... ./internal/skel/... ./internal/serve/...

# Regenerate the machine-readable perf snapshot consumed by the tier-1
# envelope guard (bench_guard_test.go). See README § Performance.
# BENCH_<pr>.json — bump the number when a PR changes the perf story.
bench:
	$(GO) run ./cmd/skipper-bench -json BENCH_9.json

# Quick data-plane snapshot (what CI's bench-smoke job runs and uploads
# as its BENCH_9.json artifact): the farm round trip on every transport
# (mem/tcp/unix/shm) plus the pipelined itermem and pipeline-depth pairs,
# skipping the rest of the suite. Written to a scratch name locally so it
# never clobbers the committed full snapshot the envelope guard checks.
bench-smoke:
	$(GO) run ./cmd/skipper-bench -json bench-smoke.json -filter Transport,Itermem -iters 5

clean:
	$(GO) clean ./...
