package skipper

// Cross-path property tests: the sequential emulator, the compile-time
// constant folder, the goroutine executive and the timing simulator must
// agree on program meaning. These are the repository-wide versions of the
// paper's central correctness claim (sequential emulation predicts parallel
// behaviour).

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"skipper/internal/dsl/eval"
	"skipper/internal/dsl/parser"
	"skipper/internal/dsl/types"
	"skipper/internal/expand"
	"skipper/internal/sim"
	"skipper/internal/value"
)

// genArith builds a random constant integer expression of bounded depth.
func genArith(rng *rand.Rand, depth int) string {
	if depth <= 0 || rng.Intn(3) == 0 {
		return fmt.Sprintf("%d", rng.Intn(19)-9)
	}
	ops := []string{"+", "-", "*"}
	op := ops[rng.Intn(len(ops))]
	return fmt.Sprintf("(%s %s %s)", genArith(rng, depth-1), op, genArith(rng, depth-1))
}

// TestConstFoldingMatchesEmulator: for random closed arithmetic programs,
// the expander's compile-time folding computes the same integer as the
// runtime emulator.
func TestConstFoldingMatchesEmulator(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := "let main = " + genArith(rng, 4) + ";;"
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		info, err := types.Check(prog)
		if err != nil {
			t.Fatalf("check %q: %v", src, err)
		}
		reg := value.NewRegistry()
		res, err := expand.Expand(prog, info, reg)
		if err != nil {
			t.Fatalf("expand %q: %v", src, err)
		}
		if !res.ConstFolded {
			t.Fatalf("%q did not fold", src)
		}
		out, err := eval.New(reg, eval.Options{}).Run(prog)
		if err != nil {
			t.Fatalf("eval %q: %v", src, err)
		}
		return value.Equal(res.MainConst, out["main"])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// farmFixture builds a df program over a random workload with a canonical
// (sorted-multiset) accumulator so results are order-independent.
func farmFixture(seed int64, workers int) (string, *Registry, []int) {
	rng := rand.New(rand.NewSource(seed))
	n := rng.Intn(30)
	xs := make([]int, n)
	for i := range xs {
		xs[i] = rng.Intn(200) - 100
	}
	reg := NewRegistry()
	reg.Register(&Func{Name: "workload", Sig: "unit -> int list", Arity: 1,
		Fn: func([]Value) Value {
			out := make(List, len(xs))
			for i, x := range xs {
				out[i] = x
			}
			return out
		}})
	reg.Register(&Func{Name: "triple", Sig: "int -> int", Arity: 1,
		Fn: func(a []Value) Value { return 3 * a[0].(int) }})
	reg.Register(&Func{Name: "plus", Sig: "int -> int -> int", Arity: 2,
		Fn: func(a []Value) Value { return a[0].(int) + a[1].(int) }})
	src := fmt.Sprintf(`
extern workload : unit -> int list;;
extern triple : int -> int;;
extern plus : int -> int -> int;;
let main = df %d triple plus 0 (workload ());;
`, workers)
	return src, reg, xs
}

// TestFarmAllPathsAgreeOnRandomWorkloads: emulator, executive and simulator
// agree with the directly computed reference on random farm inputs.
func TestFarmAllPathsAgreeOnRandomWorkloads(t *testing.T) {
	f := func(seed int64, w uint8) bool {
		workers := int(w%6) + 1
		src, reg, xs := farmFixture(seed, workers)
		want := 0
		for _, x := range xs {
			want += 3 * x
		}

		prog, err := Compile(src, reg)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		// Emulator.
		out, err := eval.New(reg, eval.Options{}).Run(prog.AST)
		if err != nil {
			t.Fatalf("eval: %v", err)
		}
		if out["main"] != want {
			t.Fatalf("emulator: got %v want %d", out["main"], want)
		}
		// Executive on a random topology.
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		archs := []*Arch{Ring(1), Ring(3), Chain(4), Star(5), Full(3)}
		a := archs[rng.Intn(len(archs))]
		dep, err := prog.MapOnto(a, Structured)
		if err != nil {
			t.Fatalf("map: %v", err)
		}
		outs, err := dep.Run(1)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if outs[0] != want {
			t.Fatalf("executive on %s: got %v want %d", a.Name, outs[0], want)
		}
		// Simulator.
		sres, err := dep.Simulate(sim.Options{Iters: 1})
		if err != nil {
			t.Fatalf("sim: %v", err)
		}
		return sres.Outputs[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestListSchedAgreesWithStructured: the two distribution strategies give
// the same functional results (only timing may differ).
func TestListSchedAgreesWithStructured(t *testing.T) {
	src, reg, xs := farmFixture(99, 4)
	want := 0
	for _, x := range xs {
		want += 3 * x
	}
	for _, strat := range []Strategy{Structured, ListSched} {
		prog, err := Compile(src, reg)
		if err != nil {
			t.Fatal(err)
		}
		dep, err := prog.MapOnto(Ring(4), strat)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := dep.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		if outs[0] != want {
			t.Fatalf("%v: got %v want %d", strat, outs[0], want)
		}
	}
}
