module skipper

go 1.22
