package skipper

import (
	"skipper/internal/dsl/parser"
	"skipper/internal/stubreg"
)

// StubRegistry builds a registry with type-directed placeholder
// implementations for every extern the source declares, deriving arities
// from the declared signatures. It lets tools compile, type-check, expand,
// map and render a specification without the real sequential functions;
// stub results are the declared result type's default value (zero, empty
// list, tuple of defaults, or an opaque token for abstract types), so even
// emulation runs without type confusion.
func StubRegistry(src string) (*Registry, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return stubreg.Registry(prog), nil
}
