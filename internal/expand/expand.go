// Package expand implements the skeleton expansion stage of the SKiPPER
// compiler: "the resulting annotated abstract syntax tree is then expanded
// into a (target-independent) parallel process network by instantiating each
// skeleton PNT" (paper §3).
//
// Expansion is a partial evaluation of the specification: compile-time
// values (integers such as nproc, tuples of constants, the initial memory
// value) are folded, sequential function applications become Func nodes,
// and each fully applied skeleton is replaced by its process network
// template — Master/Worker for df and tf (Fig. 1), Split/Comp/Merge for
// scm, Input/Loop/Output/MEM for itermem (Fig. 4).
//
// The paper's restriction that scm/df/tf "can [not] be freely nested"
// is enforced here: their functional parameters must be plain sequential
// (extern) functions, and a skeleton appearing where a sequential function
// is expected is a compile-time error.
package expand

import (
	"fmt"

	"skipper/internal/dsl/ast"
	"skipper/internal/dsl/token"
	"skipper/internal/dsl/types"
	"skipper/internal/graph"
	"skipper/internal/value"
)

// Error is an expansion error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: expansion error: %s", e.Pos, e.Msg) }

// Result is an expanded program.
type Result struct {
	Graph *graph.Graph
	// Stream is true when the program's main is an itermem application:
	// the graph then processes a continuous stream of inputs through the
	// MEM feedback loop. Otherwise the graph is a one-shot DAG whose
	// Output node delivers the value of main.
	Stream bool
	// Output is the node delivering program output (the itermem Output
	// process, or the synthetic collector of a one-shot program). It is
	// invalid (-1) for programs whose main is a compile-time constant.
	Output graph.NodeID
	// MainConst holds main's value when it was entirely folded at
	// compile time (no graph needed).
	MainConst value.Value
	// ConstFolded indicates MainConst is meaningful.
	ConstFolded bool
}

// Expand compiles a type-checked program into a process graph. The registry
// provides arities and compile-time constants for extern functions.
func Expand(prog *ast.Program, info *types.Info, reg *value.Registry) (*Result, error) {
	x := &expander{
		g:     graph.New(),
		info:  info,
		reg:   reg,
		names: map[string]int{},
	}
	return x.run(prog)
}

// --- symbolic values ---------------------------------------------------------

type sval interface{ sv() }

// sConst is a compile-time constant.
type sConst struct{ v value.Value }

// sWire is a runtime value produced at a node output port.
type sWire struct {
	node graph.NodeID
	port int
	typ  string
}

// sClosure is an unapplied user lambda.
type sClosure struct {
	params []ast.Pattern
	body   ast.Expr
	env    *senv
}

// sExtern is a (possibly partially applied) registered function.
type sExtern struct {
	fn   *value.Func
	args []sval
}

// sSkel is a (possibly partially applied) skeleton.
type sSkel struct {
	name  string
	arity int
	args  []sval
	pos   token.Pos
}

// sTuple is a tuple of symbolic values.
type sTuple []sval

func (sConst) sv()    {}
func (sWire) sv()     {}
func (*sClosure) sv() {}
func (*sExtern) sv()  {}
func (*sSkel) sv()    {}
func (sTuple) sv()    {}

type senv struct {
	parent *senv
	vars   map[string]sval
}

func newSenv(parent *senv) *senv { return &senv{parent: parent, vars: map[string]sval{}} }

func (e *senv) lookup(name string) (sval, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// --- expander ----------------------------------------------------------------

type expander struct {
	g      *graph.Graph
	info   *types.Info
	reg    *value.Registry
	names  map[string]int
	stream bool
	output graph.NodeID
	inSkel bool // true while expanding skeleton functional arguments
	depth  int  // closure inlining depth (guards against recursion)
}

var skelArity = map[string]int{"scm": 5, "df": 5, "tf": 5, "itermem": 5}

func (x *expander) run(prog *ast.Program) (*Result, error) {
	env := newSenv(nil)
	x.output = -1
	var mainVal sval
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.DType:
			// no runtime content
		case *ast.DExtern:
			f, ok := x.reg.Lookup(d.Name)
			if !ok {
				return nil, &Error{Pos: d.Pos, Msg: "extern " + d.Name + " not registered"}
			}
			if f.Arity == 0 {
				env.vars[d.Name] = sConst{v: f.Fn(nil)}
			} else {
				env.vars[d.Name] = &sExtern{fn: f}
			}
		case *ast.DLet:
			frame := env
			if d.Rec && d.Name != "_" {
				frame = newSenv(env)
			}
			v, err := x.eval(frame, d.Rhs)
			if err != nil {
				return nil, err
			}
			if d.Name != "_" {
				if frame != env {
					frame.vars[d.Name] = v
					env = frame
				} else {
					env = newSenv(env)
					env.vars[d.Name] = v
				}
			}
			if d.Name == "main" {
				mainVal = v
			}
		}
	}
	res := &Result{Graph: x.g, Stream: x.stream, Output: x.output}
	if mainVal == nil {
		return nil, fmt.Errorf("expand: program has no main binding")
	}
	switch mv := mainVal.(type) {
	case sConst:
		if !x.stream {
			res.MainConst = mv.v
			res.ConstFolded = true
			return res, nil
		}
		// Stream programs: itermem already built Input/Output/Mem.
	case sWire:
		// One-shot dataflow program: collect main's value at an Output node.
		out := x.addNode(&graph.Node{Kind: graph.KindOutput, Name: x.unique("result"), In: 1})
		x.g.Connect(mv.node, mv.port, out.ID, 0, mv.typ)
		x.output = out.ID
		res.Output = out.ID
	case sTuple:
		w, err := x.materialize(mv, token.Pos{})
		if err != nil {
			return nil, err
		}
		out := x.addNode(&graph.Node{Kind: graph.KindOutput, Name: x.unique("result"), In: 1})
		x.g.Connect(w.node, w.port, out.ID, 0, w.typ)
		x.output = out.ID
		res.Output = out.ID
	default:
		return nil, fmt.Errorf("expand: main must be a dataflow value or itermem application, got %T", mainVal)
	}
	res.Stream = x.stream
	if err := x.g.Validate(); err != nil {
		return nil, fmt.Errorf("expand: produced invalid graph: %w", err)
	}
	return res, nil
}

func (x *expander) unique(base string) string {
	n := x.names[base]
	x.names[base] = n + 1
	if n == 0 {
		return base
	}
	return fmt.Sprintf("%s#%d", base, n)
}

func (x *expander) addNode(n *graph.Node) *graph.Node { return x.g.AddNode(n) }

// externResultType renders the final result type of an extern's signature
// for edge labelling.
func (x *expander) externResultType(name string) string {
	sch, ok := x.info.Externs[name]
	if !ok {
		return ""
	}
	t := types.Prune(sch.Body)
	for {
		a, ok := t.(*types.Arrow)
		if !ok {
			return types.TypeString(t)
		}
		t = types.Prune(a.To)
	}
}

// externArgType renders the i-th argument type of an extern's signature.
func (x *expander) externArgType(name string, i int) string {
	sch, ok := x.info.Externs[name]
	if !ok {
		return ""
	}
	t := types.Prune(sch.Body)
	for k := 0; ; k++ {
		a, ok := t.(*types.Arrow)
		if !ok {
			return ""
		}
		if k == i {
			return types.TypeString(a.From)
		}
		t = types.Prune(a.To)
	}
}

// --- evaluation ---------------------------------------------------------------

func (x *expander) eval(env *senv, e ast.Expr) (sval, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return sConst{v: e.Value}, nil
	case *ast.FloatLit:
		return sConst{v: e.Value}, nil
	case *ast.BoolLit:
		return sConst{v: e.Value}, nil
	case *ast.StringLit:
		return sConst{v: e.Value}, nil
	case *ast.UnitLit:
		return sConst{v: value.Unit{}}, nil

	case *ast.Ident:
		if v, ok := env.lookup(e.Name); ok {
			return v, nil
		}
		if a, ok := skelArity[e.Name]; ok {
			return &sSkel{name: e.Name, arity: a, pos: e.NamePos}, nil
		}
		if e.Name == "map" || e.Name == "fold_left" {
			return nil, &Error{Pos: e.NamePos,
				Msg: e.Name + " is only available inside sequential emulation; use a skeleton for parallel structure"}
		}
		return nil, &Error{Pos: e.NamePos, Msg: "unbound identifier " + e.Name}

	case *ast.Tuple:
		out := make(sTuple, len(e.Elems))
		for i, el := range e.Elems {
			v, err := x.eval(env, el)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		// Fold tuples of constants.
		if vs, ok := allConst(out); ok {
			return sConst{v: value.Tuple(vs)}, nil
		}
		return out, nil

	case *ast.ListLit:
		vals := make([]value.Value, 0, len(e.Elems))
		for _, el := range e.Elems {
			v, err := x.eval(env, el)
			if err != nil {
				return nil, err
			}
			c, ok := v.(sConst)
			if !ok {
				return nil, &Error{Pos: el.Pos(),
					Msg: "list literals in specifications must be compile-time constants"}
			}
			vals = append(vals, c.v)
		}
		return sConst{v: value.List(vals)}, nil

	case *ast.Lambda:
		return &sClosure{params: e.Params, body: e.Body, env: env}, nil

	case *ast.Let:
		if e.Rec {
			pv, ok := e.Pat.(*ast.PVar)
			if !ok {
				return nil, &Error{Pos: e.LetPos, Msg: "let rec requires a simple name"}
			}
			frame := newSenv(env)
			rhs, err := x.eval(frame, e.Rhs)
			if err != nil {
				return nil, err
			}
			frame.vars[pv.Name] = rhs
			return x.eval(frame, e.Body)
		}
		rhs, err := x.eval(env, e.Rhs)
		if err != nil {
			return nil, err
		}
		inner := newSenv(env)
		if err := x.bindPattern(inner, e.Pat, rhs, e.LetPos); err != nil {
			return nil, err
		}
		return x.eval(inner, e.Body)

	case *ast.If:
		c, err := x.eval(env, e.Cond)
		if err != nil {
			return nil, err
		}
		cc, ok := c.(sConst)
		if !ok {
			return nil, &Error{Pos: e.Cond.Pos(),
				Msg: "data-dependent control flow must be inside sequential functions (condition is not compile-time)"}
		}
		b, ok := cc.v.(bool)
		if !ok {
			return nil, &Error{Pos: e.Cond.Pos(), Msg: "if condition is not a bool"}
		}
		if b {
			return x.eval(env, e.Then)
		}
		return x.eval(env, e.Else)

	case *ast.BinOp:
		l, err := x.eval(env, e.L)
		if err != nil {
			return nil, err
		}
		r, err := x.eval(env, e.R)
		if err != nil {
			return nil, err
		}
		lc, lok := l.(sConst)
		rc, rok := r.(sConst)
		if !lok || !rok {
			return nil, &Error{Pos: e.Pos(),
				Msg: "operators in specifications apply to compile-time values only; move runtime arithmetic into a sequential function"}
		}
		return foldBinOp(e, lc, rc)

	case *ast.App:
		fn, err := x.eval(env, e.Fn)
		if err != nil {
			return nil, err
		}
		arg, err := x.eval(env, e.Arg)
		if err != nil {
			return nil, err
		}
		return x.apply(fn, arg, e.Pos())
	}
	return nil, fmt.Errorf("expand: unknown expression %T", e)
}

func allConst(vs []sval) ([]value.Value, bool) {
	out := make([]value.Value, len(vs))
	for i, v := range vs {
		c, ok := v.(sConst)
		if !ok {
			return nil, false
		}
		out[i] = c.v
	}
	return out, true
}

func foldBinOp(e *ast.BinOp, l, r sConst) (sval, error) {
	li, lok := l.v.(int)
	ri, rok := r.v.(int)
	switch e.Op {
	case "+.", "-.", "*.", "/.":
		lf, lfok := l.v.(float64)
		rf, rfok := r.v.(float64)
		if !lfok || !rfok {
			return nil, &Error{Pos: e.Pos(), Msg: "float arithmetic on non-float constants"}
		}
		switch e.Op {
		case "+.":
			return sConst{v: lf + rf}, nil
		case "-.":
			return sConst{v: lf - rf}, nil
		case "*.":
			return sConst{v: lf * rf}, nil
		default:
			return sConst{v: lf / rf}, nil
		}
	case "+", "-", "*", "/":
		if !lok || !rok {
			return nil, &Error{Pos: e.Pos(), Msg: "arithmetic on non-int constants"}
		}
		switch e.Op {
		case "+":
			return sConst{v: li + ri}, nil
		case "-":
			return sConst{v: li - ri}, nil
		case "*":
			return sConst{v: li * ri}, nil
		default:
			if ri == 0 {
				return nil, &Error{Pos: e.Pos(), Msg: "division by zero in specification"}
			}
			return sConst{v: li / ri}, nil
		}
	case "=":
		return sConst{v: value.Equal(l.v, r.v)}, nil
	case "<>":
		return sConst{v: !value.Equal(l.v, r.v)}, nil
	case "<", ">", "<=", ">=":
		if !lok || !rok {
			return nil, &Error{Pos: e.Pos(), Msg: "ordering of non-int constants in specification"}
		}
		switch e.Op {
		case "<":
			return sConst{v: li < ri}, nil
		case ">":
			return sConst{v: li > ri}, nil
		case "<=":
			return sConst{v: li <= ri}, nil
		default:
			return sConst{v: li >= ri}, nil
		}
	}
	return nil, &Error{Pos: e.Pos(), Msg: "unknown operator " + e.Op}
}

func (x *expander) bindPattern(env *senv, p ast.Pattern, v sval, pos token.Pos) error {
	switch p := p.(type) {
	case *ast.PVar:
		env.vars[p.Name] = v
		return nil
	case *ast.PWild, *ast.PUnit:
		return nil
	case *ast.PTuple:
		switch tv := v.(type) {
		case sTuple:
			if len(tv) != len(p.Elems) {
				return &Error{Pos: pos, Msg: "tuple pattern arity mismatch"}
			}
			for i, sub := range p.Elems {
				if err := x.bindPattern(env, sub, tv[i], pos); err != nil {
					return err
				}
			}
			return nil
		case sConst:
			cv, ok := tv.v.(value.Tuple)
			if !ok || len(cv) != len(p.Elems) {
				return &Error{Pos: pos, Msg: "tuple pattern against non-tuple constant"}
			}
			for i, sub := range p.Elems {
				if err := x.bindPattern(env, sub, sConst{v: cv[i]}, pos); err != nil {
					return err
				}
			}
			return nil
		case sWire:
			// Destructuring a runtime tuple: insert an Unpack node.
			un := x.addNode(&graph.Node{
				Kind: graph.KindUnpack, Name: x.unique("unpack"),
				In: 1, Out: len(p.Elems),
			})
			x.g.Connect(tv.node, tv.port, un.ID, 0, tv.typ)
			for i, sub := range p.Elems {
				if err := x.bindPattern(env, sub, sWire{node: un.ID, port: i}, pos); err != nil {
					return err
				}
			}
			return nil
		}
		return &Error{Pos: pos, Msg: "tuple pattern against non-tuple value"}
	}
	return fmt.Errorf("expand: unknown pattern %T", p)
}

// materialize turns a symbolic value into a wire, inserting Const and Pack
// nodes as needed.
func (x *expander) materialize(v sval, pos token.Pos) (sWire, error) {
	switch v := v.(type) {
	case sWire:
		return v, nil
	case sConst:
		n := x.addNode(&graph.Node{
			Kind: graph.KindConst, Name: x.unique("const"),
			Const: v.v, Out: 1,
		})
		return sWire{node: n.ID, port: 0}, nil
	case sTuple:
		wires := make([]sWire, len(v))
		for i, el := range v {
			w, err := x.materialize(el, pos)
			if err != nil {
				return sWire{}, err
			}
			wires[i] = w
		}
		pk := x.addNode(&graph.Node{
			Kind: graph.KindPack, Name: x.unique("pack"),
			In: len(v), Out: 1,
		})
		for i, w := range wires {
			x.g.Connect(w.node, w.port, pk.ID, i, w.typ)
		}
		return sWire{node: pk.ID, port: 0}, nil
	case *sSkel:
		return sWire{}, &Error{Pos: pos,
			Msg: "skeleton " + v.name + " used as a data value (skeletons cannot be nested or passed around)"}
	case *sClosure:
		return sWire{}, &Error{Pos: pos,
			Msg: "function value used as data; only sequential function results flow on edges"}
	case *sExtern:
		return sWire{}, &Error{Pos: pos,
			Msg: "partially applied sequential function " + v.fn.Name + " used as data"}
	}
	return sWire{}, &Error{Pos: pos, Msg: "unmaterializable value"}
}

// apply performs one curried application step.
func (x *expander) apply(fn, arg sval, pos token.Pos) (sval, error) {
	switch fn := fn.(type) {
	case *sClosure:
		x.depth++
		defer func() { x.depth-- }()
		if x.depth > 256 {
			return nil, &Error{Pos: pos,
				Msg: "function inlining too deep: recursion is only available in sequential emulation; move recursive algorithms into sequential functions or use the tf skeleton"}
		}
		inner := newSenv(fn.env)
		if err := x.bindPattern(inner, fn.params[0], arg, pos); err != nil {
			return nil, err
		}
		if len(fn.params) == 1 {
			return x.eval(inner, fn.body)
		}
		return &sClosure{params: fn.params[1:], body: fn.body, env: inner}, nil

	case *sExtern:
		args := append(append([]sval{}, fn.args...), arg)
		if len(args) < fn.fn.Arity {
			return &sExtern{fn: fn.fn, args: args}, nil
		}
		return x.emitFunc(fn.fn, args, pos)

	case *sSkel:
		args := append(append([]sval{}, fn.args...), arg)
		if len(args) < fn.arity {
			return &sSkel{name: fn.name, arity: fn.arity, args: args, pos: fn.pos}, nil
		}
		return x.expandSkeleton(fn.name, args, pos)

	case sConst, sWire, sTuple:
		return nil, &Error{Pos: pos, Msg: "cannot apply a non-function value"}
	}
	return nil, &Error{Pos: pos, Msg: fmt.Sprintf("cannot apply %T", fn)}
}

// emitFunc creates a Func node for a fully applied sequential function.
// Calls to Pure functions whose arguments are all compile-time constants are
// folded at expansion time (constant propagation); impure functions always
// become Func nodes, because running arbitrary user code at compile time
// would be wrong (SKiPPER's C functions only run on the target).
func (x *expander) emitFunc(f *value.Func, args []sval, pos token.Pos) (sval, error) {
	if vs, ok := allConst(args); ok && f.Pure {
		return sConst{v: f.Fn(vs)}, nil
	}
	n := x.addNode(&graph.Node{
		Kind: graph.KindFunc, Name: x.unique(f.Name), Fn: f.Name,
		In: len(args), Out: 1,
	})
	for i, a := range args {
		w, err := x.materialize(a, pos)
		if err != nil {
			return nil, err
		}
		typ := w.typ
		if typ == "" {
			typ = x.externArgType(f.Name, i)
		}
		x.g.Connect(w.node, w.port, n.ID, i, typ)
	}
	return sWire{node: n.ID, port: 0, typ: x.externResultType(f.Name)}, nil
}

// constInt extracts a compile-time integer (e.g. the worker count).
func constInt(v sval, what string, pos token.Pos) (int, error) {
	c, ok := v.(sConst)
	if !ok {
		return 0, &Error{Pos: pos, Msg: what + " must be a compile-time integer"}
	}
	i, ok := c.v.(int)
	if !ok {
		return 0, &Error{Pos: pos, Msg: what + " must be an int"}
	}
	return i, nil
}

// seqFn extracts a plain sequential function argument for a skeleton slot,
// rejecting closures (which could hide nested skeletons — the paper's
// no-nesting restriction) and partial applications.
func (x *expander) seqFn(v sval, slot string, pos token.Pos) (*value.Func, error) {
	switch v := v.(type) {
	case *sExtern:
		if len(v.args) != 0 {
			return nil, &Error{Pos: pos,
				Msg: slot + " must be an unapplied sequential function (got partial application of " + v.fn.Name + ")"}
		}
		return v.fn, nil
	case *sSkel:
		return nil, &Error{Pos: pos,
			Msg: "skeletons cannot be nested: " + v.name + " cannot be the " + slot + " of another skeleton"}
	case *sClosure:
		return nil, &Error{Pos: pos,
			Msg: slot + " must be a named sequential function, not a lambda (SKiPPER skeletons take C functions as parameters)"}
	}
	return nil, &Error{Pos: pos, Msg: slot + " is not a function"}
}

// expandSkeleton instantiates a process network template.
func (x *expander) expandSkeleton(name string, args []sval, pos token.Pos) (sval, error) {
	switch name {
	case "df", "tf":
		return x.expandFarm(name, args, pos)
	case "scm":
		return x.expandSCM(args, pos)
	case "itermem":
		return x.expandIterMem(args, pos)
	}
	return nil, &Error{Pos: pos, Msg: "unknown skeleton " + name}
}

// expandFarm builds the df/tf PNT of Fig. 1: Master + n Workers. Master
// ports: in 0 = xs, in 1 = z, in 2+i = reply from worker i; out 0 = result,
// out 1+i = dispatch to worker i.
func (x *expander) expandFarm(name string, args []sval, pos token.Pos) (sval, error) {
	n, err := constInt(args[0], name+" worker count", pos)
	if err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, &Error{Pos: pos, Msg: name + " requires at least one worker"}
	}
	comp, err := x.seqFn(args[1], name+" compute function", pos)
	if err != nil {
		return nil, err
	}
	acc, err := x.seqFn(args[2], name+" accumulating function", pos)
	if err != nil {
		return nil, err
	}
	zw, err := x.materialize(args[3], pos)
	if err != nil {
		return nil, err
	}
	xsw, err := x.materialize(args[4], pos)
	if err != nil {
		return nil, err
	}
	sk := x.g.NewSkelID()
	master := x.addNode(&graph.Node{
		Kind: graph.KindMaster, Name: x.unique("Master<" + acc.Name + ">"),
		AccFn: acc.Name, Workers: n, TaskFarm: name == "tf",
		In: 2 + n, Out: 1 + n, SkelID: sk,
	})
	x.g.Connect(xsw.node, xsw.port, master.ID, 0, xsw.typ)
	x.g.Connect(zw.node, zw.port, master.ID, 1, zw.typ)
	inTyp := x.externArgType(comp.Name, 0)
	outTyp := x.externResultType(comp.Name)
	for i := 0; i < n; i++ {
		w := x.addNode(&graph.Node{
			Kind: graph.KindWorker, Name: x.unique("Worker<" + comp.Name + ">"),
			Fn: comp.Name, In: 1, Out: 1, SkelID: sk, Index: i,
		})
		x.g.Connect(master.ID, 1+i, w.ID, 0, inTyp)
		x.g.ConnectIntra(w.ID, 0, master.ID, 2+i, outTyp)
	}
	resTyp := x.externResultType(acc.Name)
	return sWire{node: master.ID, port: 0, typ: resTyp}, nil
}

// expandSCM builds the scm PNT: Split -> n×comp -> Merge, positional order.
func (x *expander) expandSCM(args []sval, pos token.Pos) (sval, error) {
	n, err := constInt(args[0], "scm degree", pos)
	if err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, &Error{Pos: pos, Msg: "scm requires at least one compute process"}
	}
	split, err := x.seqFn(args[1], "scm split function", pos)
	if err != nil {
		return nil, err
	}
	comp, err := x.seqFn(args[2], "scm compute function", pos)
	if err != nil {
		return nil, err
	}
	merge, err := x.seqFn(args[3], "scm merge function", pos)
	if err != nil {
		return nil, err
	}
	xw, err := x.materialize(args[4], pos)
	if err != nil {
		return nil, err
	}
	sk := x.g.NewSkelID()
	sp := x.addNode(&graph.Node{
		Kind: graph.KindSplit, Name: x.unique("Split<" + split.Name + ">"),
		Fn: split.Name, Workers: n, In: 1, Out: n, SkelID: sk,
	})
	x.g.Connect(xw.node, xw.port, sp.ID, 0, xw.typ)
	mg := x.addNode(&graph.Node{
		Kind: graph.KindMerge, Name: x.unique("Merge<" + merge.Name + ">"),
		Fn: merge.Name, Workers: n, In: n, Out: 1, SkelID: sk,
	})
	compIn := x.externArgType(comp.Name, 0)
	compOut := x.externResultType(comp.Name)
	for i := 0; i < n; i++ {
		c := x.addNode(&graph.Node{
			Kind: graph.KindFunc, Name: x.unique(comp.Name), Fn: comp.Name,
			In: 1, Out: 1, SkelID: sk, Index: i,
		})
		x.g.Connect(sp.ID, i, c.ID, 0, compIn)
		x.g.Connect(c.ID, 0, mg.ID, i, compOut)
	}
	return sWire{node: mg.ID, port: 0, typ: x.externResultType(merge.Name)}, nil
}

// expandIterMem builds the Fig. 4 PNT: Input -> loop subgraph -> Output,
// with the MEM node feeding iteration i's state to iteration i+1.
func (x *expander) expandIterMem(args []sval, pos token.Pos) (sval, error) {
	if x.stream {
		return nil, &Error{Pos: pos, Msg: "only one itermem per specification is supported"}
	}
	if x.inSkel {
		return nil, &Error{Pos: pos, Msg: "itermem cannot appear inside another skeleton"}
	}
	inpFn, err := x.seqFn(args[0], "itermem input function", pos)
	if err != nil {
		return nil, err
	}
	outFn, err := x.seqFn(args[2], "itermem output function", pos)
	if err != nil {
		return nil, err
	}
	zw, err := x.materialize(args[3], pos)
	if err != nil {
		return nil, err
	}
	xw, err := x.materialize(args[4], pos)
	if err != nil {
		return nil, err
	}
	x.stream = true

	in := x.addNode(&graph.Node{
		Kind: graph.KindInput, Name: x.unique("In<" + inpFn.Name + ">"),
		Fn: inpFn.Name, In: 1, Out: 1,
	})
	x.g.Connect(xw.node, xw.port, in.ID, 0, xw.typ)

	mem := x.addNode(&graph.Node{
		Kind: graph.KindMem, Name: x.unique("MEM"), In: 2, Out: 1,
	})
	x.g.Connect(zw.node, zw.port, mem.ID, 0, zw.typ) // initial value

	// Inline the loop body: apply it to (MEM out, Input out).
	loopArg := sTuple{
		sWire{node: mem.ID, port: 0, typ: zw.typ},
		sWire{node: in.ID, port: 0, typ: x.externResultType(inpFn.Name)},
	}
	loopRes, err := x.apply(args[1], loopArg, pos)
	if err != nil {
		return nil, err
	}

	// The loop must deliver (state', output).
	var zWire, yWire sWire
	switch lr := loopRes.(type) {
	case sTuple:
		if len(lr) != 2 {
			return nil, &Error{Pos: pos, Msg: "itermem loop must return a pair (state, output)"}
		}
		zWire, err = x.materialize(lr[0], pos)
		if err != nil {
			return nil, err
		}
		yWire, err = x.materialize(lr[1], pos)
		if err != nil {
			return nil, err
		}
	case sWire:
		// A single wire carrying the pair: unpack it.
		un := x.addNode(&graph.Node{
			Kind: graph.KindUnpack, Name: x.unique("unpack"), In: 1, Out: 2,
		})
		x.g.Connect(lr.node, lr.port, un.ID, 0, lr.typ)
		zWire = sWire{node: un.ID, port: 0}
		yWire = sWire{node: un.ID, port: 1}
	default:
		return nil, &Error{Pos: pos, Msg: "itermem loop result is not a dataflow value"}
	}
	x.g.ConnectBack(zWire.node, zWire.port, mem.ID, 1, zWire.typ)

	out := x.addNode(&graph.Node{
		Kind: graph.KindOutput, Name: x.unique("Out<" + outFn.Name + ">"),
		Fn: outFn.Name, In: 1,
	})
	x.g.Connect(yWire.node, yWire.port, out.ID, 0, yWire.typ)
	x.output = out.ID
	return sConst{v: value.Unit{}}, nil
}
