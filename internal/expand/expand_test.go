package expand

import (
	"strings"
	"testing"

	"skipper/internal/dsl/parser"
	"skipper/internal/dsl/token"
	"skipper/internal/dsl/types"
	"skipper/internal/graph"
	"skipper/internal/value"
)

// reg builds a registry with simple stand-in functions for the given
// name -> (sig, arity) table.
func testRegistry() *value.Registry {
	r := value.NewRegistry()
	add := func(name, sig string, arity int) {
		r.Register(&value.Func{
			Name: name, Sig: sig, Arity: arity,
			Fn: func(args []value.Value) value.Value { return value.Unit{} },
		})
	}
	add("read_img", "int * int -> img", 1)
	add("get_windows", "int -> state -> img -> window list", 3)
	add("detect_mark", "window -> mark", 1)
	add("accum_marks", "mark list -> mark -> mark list", 2)
	add("predict", "mark list -> state * mark list", 1)
	add("display_marks", "mark list -> unit", 1)
	r.Register(&value.Func{Name: "init_state", Sig: "unit -> state", Arity: 1,
		Fn: func([]value.Value) value.Value { return "STATE0" }})
	r.Register(&value.Func{Name: "empty_list", Sig: "mark list", Arity: 0,
		Fn: func([]value.Value) value.Value { return value.List{} }})
	add("split_img", "img -> band list", 1)
	add("label_band", "band -> res", 1)
	add("merge_res", "res list -> res", 1)
	add("load_img", "int -> img", 1)
	add("work", "task -> res list * task list", 1)
	add("acc_res", "res list -> res -> res list", 2)
	return r
}

const paperSrc = `
type img;; type state;; type window;; type mark;;
extern read_img : int * int -> img;;
extern init_state : unit -> state;;
extern get_windows : int -> state -> img -> window list;;
extern detect_mark : window -> mark;;
extern accum_marks : mark list -> mark -> mark list;;
extern predict : mark list -> state * mark list;;
extern display_marks : mark list -> unit;;
extern empty_list : mark list;;

let nproc = 8;;
let s0 = init_state ();;
let loop (state, im) =
  let ws = get_windows nproc state im in
  let marks = df nproc detect_mark accum_marks empty_list ws in
  predict marks;;
let main = itermem read_img loop display_marks s0 (512, 512);;
`

func expandSrc(t *testing.T, src string) *Result {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	res, err := Expand(prog, info, testRegistry())
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	return res
}

func expandErr(t *testing.T, src, wantSub string) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	_, err = Expand(prog, info, testRegistry())
	if err == nil {
		t.Fatalf("Expand should fail")
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not mention %q", err, wantSub)
	}
}

func countKind(g *graph.Graph, k graph.NodeKind) int {
	n := 0
	for _, nd := range g.Nodes {
		if nd.Kind == k {
			n++
		}
	}
	return n
}

func TestPaperProgramExpands(t *testing.T) {
	res := expandSrc(t, paperSrc)
	if !res.Stream {
		t.Fatal("paper program should be a stream program")
	}
	g := res.Graph
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := countKind(g, graph.KindWorker); got != 8 {
		t.Fatalf("workers = %d, want 8", got)
	}
	if got := countKind(g, graph.KindMaster); got != 1 {
		t.Fatalf("masters = %d", got)
	}
	if got := countKind(g, graph.KindMem); got != 1 {
		t.Fatalf("mem nodes = %d", got)
	}
	if got := countKind(g, graph.KindInput); got != 1 || countKind(g, graph.KindOutput) != 1 {
		t.Fatalf("input/output nodes = %d/%d", got, countKind(g, graph.KindOutput))
	}
	// The graph includes get_windows and predict function nodes.
	var fns []string
	for _, n := range g.Nodes {
		if n.Kind == graph.KindFunc {
			fns = append(fns, n.Fn)
		}
	}
	joined := strings.Join(fns, ",")
	if !strings.Contains(joined, "get_windows") || !strings.Contains(joined, "predict") {
		t.Fatalf("func nodes = %v", fns)
	}
	// Exactly one back edge (the MEM feedback).
	if s := g.Stats(); s.BackEdges != 1 {
		t.Fatalf("back edges = %d", s.BackEdges)
	}
}

func TestWorkerCountFollowsNproc(t *testing.T) {
	src := strings.Replace(paperSrc, "let nproc = 8;;", "let nproc = 3;;", 1)
	res := expandSrc(t, src)
	if got := countKind(res.Graph, graph.KindWorker); got != 3 {
		t.Fatalf("workers = %d, want 3", got)
	}
}

func TestConstantFolding(t *testing.T) {
	src := strings.Replace(paperSrc, "let nproc = 8;;", "let nproc = 2 * 2 + 1;;", 1)
	res := expandSrc(t, src)
	if got := countKind(res.Graph, graph.KindWorker); got != 5 {
		t.Fatalf("workers = %d, want 5 (constant folding)", got)
	}
}

func TestIfOnConstantsFolds(t *testing.T) {
	src := strings.Replace(paperSrc, "let nproc = 8;;",
		"let big = true;; let nproc = if big then 6 else 2;;", 1)
	res := expandSrc(t, src)
	if got := countKind(res.Graph, graph.KindWorker); got != 6 {
		t.Fatalf("workers = %d, want 6", got)
	}
}

func TestSCMExpansion(t *testing.T) {
	src := `
type img;; type band;; type res;;
extern load_img : int -> img;;
extern split_img : img -> band list;;
extern label_band : band -> res;;
extern merge_res : res list -> res;;
let main = scm 4 split_img label_band merge_res (load_img 0);;
`
	res := expandSrc(t, src)
	if res.Stream {
		t.Fatal("scm program is one-shot, not a stream")
	}
	g := res.Graph
	if countKind(g, graph.KindSplit) != 1 || countKind(g, graph.KindMerge) != 1 {
		t.Fatal("split/merge missing")
	}
	comps := 0
	for _, n := range g.Nodes {
		if n.Kind == graph.KindFunc && n.Fn == "label_band" {
			comps++
		}
	}
	if comps != 4 {
		t.Fatalf("compute nodes = %d, want 4", comps)
	}
	if res.Output < 0 {
		t.Fatal("one-shot program must have an output node")
	}
}

func TestTFExpansion(t *testing.T) {
	src := `
type task;; type res;;
extern work : task -> res list * task list;;
extern acc_res : res list -> res -> res list;;
let main = tf 4 work acc_res [] [];;
`
	res := expandSrc(t, src)
	g := res.Graph
	var master *graph.Node
	for _, n := range g.Nodes {
		if n.Kind == graph.KindMaster {
			master = n
		}
	}
	if master == nil || !master.TaskFarm {
		t.Fatalf("tf master missing or not flagged: %+v", master)
	}
	if countKind(g, graph.KindWorker) != 4 {
		t.Fatal("tf workers missing")
	}
}

func TestConstMainFoldsCompletely(t *testing.T) {
	res := expandSrc(t, "let main = 2 + 3;;")
	if !res.ConstFolded || res.MainConst != 5 {
		t.Fatalf("res = %+v", res)
	}
}

func TestLambdaAsSkeletonArgRejected(t *testing.T) {
	// An eta-wrapped lambda in scm's compute slot typechecks fine but the
	// operational definition requires a named sequential function.
	src := `
type img;; type band;; type res;;
extern split_img : img -> band list;;
extern label_band : band -> res;;
extern merge_res : res list -> res;;
extern load_img : int -> img;;
let main = scm 2 split_img (fun b -> label_band b) merge_res (load_img 1);;
`
	expandErr(t, src, "lambda")
}

func TestPartialSkeletonAsMainRejected(t *testing.T) {
	// tf partially applied as main: not a dataflow value.
	expandErr(t, "let main = tf 2;;", "main must be")
}

func TestNestedFarmInsideFarmRejected(t *testing.T) {
	src := `
type window;; type mark;;
extern detect_mark : window -> mark;;
extern accum_marks : mark list -> mark -> mark list;;
extern concat_marks : mark list -> mark list -> mark list;;
extern empty_list : mark list;;
let inner ws = df 2 detect_mark accum_marks empty_list ws;;
let main = df 2 inner concat_marks empty_list [];;
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	r := testRegistry()
	r.Register(&value.Func{Name: "concat_marks", Sig: "mark list -> mark list -> mark list",
		Arity: 2, Fn: func([]value.Value) value.Value { return value.List{} }})
	_, err = Expand(prog, info, r)
	// `inner` is a closure wrapping a df -> rejected (no-nesting rule).
	if err == nil || !strings.Contains(err.Error(), "named sequential function") {
		t.Fatalf("err = %v", err)
	}
}

func TestRuntimeWorkerCountRejected(t *testing.T) {
	src := `
type window;; type mark;;
extern detect_mark : window -> mark;;
extern accum_marks : mark list -> mark -> mark list;;
extern empty_list : mark list;;
extern nprocs : unit -> int;;
let main = df (nprocs ()) detect_mark accum_marks empty_list [];;
`
	// nprocs is not registered in testRegistry -> registration error comes
	// first; register it instead via a fresh registry path: simply check
	// that the error mentions either registration or compile-time.
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	r := testRegistry()
	r.Register(&value.Func{Name: "nprocs", Sig: "unit -> int", Arity: 1,
		Fn: func([]value.Value) value.Value { return 4 }})
	_, err2 := Expand(prog, info, r)
	// Impure externs never fold, so the worker count is a runtime value —
	// rejected, because the degree of parallelism must be static.
	if err2 == nil || !strings.Contains(err2.Error(), "compile-time integer") {
		t.Fatalf("err = %v", err2)
	}

	// A Pure extern folds through and the program compiles.
	r2 := testRegistry()
	r2.Register(&value.Func{Name: "nprocs", Sig: "unit -> int", Arity: 1, Pure: true,
		Fn: func([]value.Value) value.Value { return 4 }})
	res, err3 := Expand(prog, info, r2)
	if err3 != nil {
		t.Fatalf("pure fold-through failed: %v", err3)
	}
	if got := countKind(res.Graph, graph.KindWorker); got != 4 {
		t.Fatalf("workers = %d", got)
	}
}

func TestDataDependentIfRejected(t *testing.T) {
	src := `
type img;;
extern load_img : int -> img;;
extern pick : img -> bool;;
let main = if pick (load_img 0) then 1 else 2;;
`
	prog, _ := parser.Parse(src)
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	r := testRegistry()
	r.Register(&value.Func{Name: "pick", Sig: "img -> bool", Arity: 1,
		Fn: func([]value.Value) value.Value { return true }})
	// load_img and pick are impure, so the condition is a runtime wire:
	// data-dependent control flow belongs inside sequential functions.
	_, err = Expand(prog, info, r)
	if err == nil || !strings.Contains(err.Error(), "data-dependent control flow") {
		t.Fatalf("err = %v", err)
	}
}

func TestMissingMain(t *testing.T) {
	src := "let x = 1;;"
	prog, _ := parser.Parse(src)
	info, _ := types.Check(prog)
	if _, err := Expand(prog, info, testRegistry()); err == nil ||
		!strings.Contains(err.Error(), "no main") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnregisteredExtern(t *testing.T) {
	src := "extern ghost : int -> int;; let main = ghost 1;;"
	prog, _ := parser.Parse(src)
	info, _ := types.Check(prog)
	if _, err := Expand(prog, info, testRegistry()); err == nil ||
		!strings.Contains(err.Error(), "not registered") {
		t.Fatalf("err = %v", err)
	}
}

func TestTwoItermemRejected(t *testing.T) {
	src := `
type img;;
extern read_img : int * int -> img;;
extern display_marks : mark list -> unit;;
type mark;;
extern stub : img -> unit;;
let main = itermem read_img (fun p -> p) stub 0 (1, 2);;
`
	// Simpler: itermem twice sequentially.
	src = `
type img;;
extern load_img : int -> img;;
extern sink : img -> unit;;
let idloop p = p;;
let a = itermem load_img idloop sink 0 1;;
let main = itermem load_img idloop sink 0 1;;
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	r := testRegistry()
	r.Register(&value.Func{Name: "sink", Sig: "img -> unit", Arity: 1,
		Fn: func([]value.Value) value.Value { return value.Unit{} }})
	_, err = Expand(prog, info, r)
	if err == nil || !strings.Contains(err.Error(), "one itermem") {
		t.Fatalf("err = %v", err)
	}
}

func TestDOTGeneration(t *testing.T) {
	res := expandSrc(t, paperSrc)
	dot := res.Graph.DOT("tracking")
	for _, want := range []string{"Master", "Worker<detect_mark>", "MEM", "In<read_img>", "Out<display_marks>"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q", want)
		}
	}
}

func TestEdgeTypeAnnotations(t *testing.T) {
	res := expandSrc(t, paperSrc)
	found := false
	for _, e := range res.Graph.Edges {
		if e.Type == "window" || e.Type == "mark" {
			found = true
		}
	}
	if !found {
		t.Fatal("expected 'window'/'mark' typed edges from extern signatures")
	}
}

func TestSequentialComposition(t *testing.T) {
	// Two farms in sequence inside the loop (allowed — composition, not
	// nesting).
	src := `
type img;; type state;; type window;; type mark;;
extern read_img : int * int -> img;;
extern init_state : unit -> state;;
extern get_windows : int -> state -> img -> window list;;
extern detect_mark : window -> mark;;
extern accum_marks : mark list -> mark -> mark list;;
extern marks_to_windows : mark list -> window list;;
extern predict : mark list -> state * mark list;;
extern display_marks : mark list -> unit;;
extern empty_list : mark list;;
let loop (state, im) =
  let ws = get_windows 4 state im in
  let marks = df 4 detect_mark accum_marks empty_list ws in
  let ws2 = marks_to_windows marks in
  let marks2 = df 2 detect_mark accum_marks empty_list ws2 in
  predict marks2;;
let main = itermem read_img loop display_marks (init_state ()) (64, 64);;
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	r := testRegistry()
	r.Register(&value.Func{Name: "marks_to_windows", Sig: "mark list -> window list",
		Arity: 1, Fn: func([]value.Value) value.Value { return value.List{} }})
	res, err := Expand(prog, info, r)
	if err != nil {
		t.Fatal(err)
	}
	if countKind(res.Graph, graph.KindMaster) != 2 {
		t.Fatal("expected two masters")
	}
	if countKind(res.Graph, graph.KindWorker) != 6 {
		t.Fatalf("workers = %d, want 6", countKind(res.Graph, graph.KindWorker))
	}
}

func TestRecursionRejectedWithDepthGuard(t *testing.T) {
	src := `
extern load_img : int -> img;;
type img;;
let rec spin n = spin n;;
let main = spin 1;;
`
	// Fix declaration order (types before use).
	src = `
type img;;
extern load_img : int -> img;;
let rec spin n = spin n;;
let main = spin 1;;
`
	expandErr(t, src, "inlining too deep")
}

func TestBoundedRecursionUnrollsAtCompileTime(t *testing.T) {
	// A terminating recursion over compile-time constants is unrolled by
	// the partial evaluator — compile-time loops are legal.
	src := `
let rec pow2 n = if n = 0 then 1 else 2 * pow2 (n - 1);;
let main = pow2 10;;
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Expand(prog, info, testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConstFolded || res.MainConst != 1024 {
		t.Fatalf("res = %+v", res)
	}
}

func TestFloatFolding(t *testing.T) {
	src := "let main = 2.5 *. 4.0 +. 1.0;;"
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Expand(prog, info, testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConstFolded || res.MainConst != 11.0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestFoldBinOpCoverage(t *testing.T) {
	// Exercise every constant operator through complete programs.
	cases := map[string]value.Value{
		"let main = 7 - 3;;":                 4,
		"let main = 8 / 2;;":                 4,
		"let main = 1 = 1;;":                 true,
		"let main = 1 <> 2;;":                true,
		"let main = 1 < 2;;":                 true,
		"let main = 2 > 3;;":                 false,
		"let main = 2 <= 2;;":                true,
		"let main = 3 >= 4;;":                false,
		"let main = 2.0 -. 0.5;;":            1.5,
		"let main = 9.0 /. 3.0;;":            3.0,
		"let main = (1, true) = (1, true);;": true,
	}
	for src, want := range cases {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		info, err := types.Check(prog)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		res, err := Expand(prog, info, testRegistry())
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if !res.ConstFolded || !value.Equal(res.MainConst, want) {
			t.Fatalf("%s => %+v, want %v", src, res.MainConst, want)
		}
	}
}

func TestDivisionByZeroInSpec(t *testing.T) {
	expandErr(t, "let main = 1 / 0;;", "division by zero")
}

func TestTuplePatternAgainstConstTuple(t *testing.T) {
	src := `
let pairc = (3, 4);;
let main = let (a, b) = pairc in a * b;;
`
	prog, _ := parser.Parse(src)
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Expand(prog, info, testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConstFolded || res.MainConst != 12 {
		t.Fatalf("res = %+v", res)
	}
}

func TestTuplePatternAgainstRuntimeTupleWire(t *testing.T) {
	// predict returns a runtime tuple; destructuring it inserts an Unpack.
	src := `
type window;; type mark;; type state;; type img;;
extern detect_mark : window -> mark;;
extern accum_marks : mark list -> mark -> mark list;;
extern empty_list : mark list;;
extern predict : mark list -> state * mark list;;
extern display_marks : mark list -> unit;;
let main =
  let marks = df 2 detect_mark accum_marks empty_list [] in
  let (st, ms) = predict marks in
  display_marks ms;;
`
	res := expandSrc(t, src)
	if countKind(res.Graph, graph.KindUnpack) != 1 {
		t.Fatalf("expected one unpack node")
	}
}

func TestMaterializeTupleOfWires(t *testing.T) {
	// A tuple mixing a wire and a const fed to a 1-arg extern becomes a
	// Pack node.
	src := `
type img;; type state;;
extern load_img : int -> img;;
extern consume : img * int -> state;;
let main = consume (load_img 1, 5);;
`
	prog, _ := parser.Parse(src)
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	r := testRegistry()
	r.Register(&value.Func{Name: "consume", Sig: "img * int -> state", Arity: 1,
		Fn: func([]value.Value) value.Value { return "S" }})
	res, err := Expand(prog, info, r)
	if err != nil {
		t.Fatal(err)
	}
	if countKind(res.Graph, graph.KindPack) != 1 {
		t.Fatal("expected a pack node")
	}
}

func TestSkeletonUsedAsDataRejected(t *testing.T) {
	src := `
type img;;
extern sink : img -> unit;;
extern load_img : int -> img;;
let main = sink (load_img (df 1 (fun x -> x) (fun a b -> a) 0 []));;
`
	// df's comp is a lambda -> rejected earlier; use a simpler shape:
	src = `
type img;;
extern load_img : int -> img;;
let pair = (1, df);;
let main = load_img 1;;
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	// `pair` holds a skeleton inside a tuple; it is never materialized so
	// expansion succeeds — materialization errors only fire on use.
	if _, err := Expand(prog, info, testRegistry()); err != nil {
		t.Fatalf("unused skeleton tuple should be fine: %v", err)
	}
	// Force materialization by passing it to an extern.
	src2 := `
type img;;
extern load_img : int -> img;;
extern weird : (int -> (int -> int) -> (int -> int -> int) -> int -> int list -> int) -> img;;
let main = weird df;;
`
	prog2, err := parser.Parse(src2)
	if err != nil {
		t.Fatal(err)
	}
	info2, err := types.Check(prog2)
	if err != nil {
		t.Fatal(err)
	}
	r := testRegistry()
	r.Register(&value.Func{Name: "weird",
		Sig:   "(int -> (int -> int) -> (int -> int -> int) -> int -> int list -> int) -> img",
		Arity: 1, Fn: func([]value.Value) value.Value { return "X" }})
	_, err = Expand(prog2, info2, r)
	if err == nil || !strings.Contains(err.Error(), "cannot be nested or passed around") {
		t.Fatalf("err = %v", err)
	}
}

func TestPartialExternAsDataRejected(t *testing.T) {
	src := `
type img;;
extern add3 : int -> int -> int -> int;;
extern sink : (int -> int) -> img;;
let main = sink (add3 1 2);;
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	r := testRegistry()
	r.Register(&value.Func{Name: "add3", Sig: "int -> int -> int -> int", Arity: 3,
		Fn: func([]value.Value) value.Value { return 0 }})
	r.Register(&value.Func{Name: "sink", Sig: "(int -> int) -> img", Arity: 1,
		Fn: func([]value.Value) value.Value { return "X" }})
	_, err = Expand(prog, info, r)
	if err == nil || !strings.Contains(err.Error(), "partially applied") {
		t.Fatalf("err = %v", err)
	}
}

func TestSeqFnRejectsNonFunctionValue(t *testing.T) {
	// A constant in a skeleton's function slot: the typechecker would
	// normally forbid this, so call the internals directly.
	x := &expander{g: graph.New(), names: map[string]int{}}
	if _, err := x.seqFn(sConst{v: 3}, "df compute function", token.Pos{}); err == nil {
		t.Fatal("constant accepted as sequential function")
	}
}

func TestApplyNonFunctionValue(t *testing.T) {
	x := &expander{g: graph.New(), names: map[string]int{}}
	if _, err := x.apply(sConst{v: 3}, sConst{v: 4}, token.Pos{}); err == nil {
		t.Fatal("applying a constant should fail")
	}
	if _, err := x.apply(sTuple{sConst{v: 1}}, sConst{v: 4}, token.Pos{}); err == nil {
		t.Fatal("applying a tuple should fail")
	}
}
