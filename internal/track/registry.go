package track

import (
	"fmt"
	"io"

	"skipper/internal/value"
	"skipper/internal/video"
	"skipper/internal/vision"
)

// Detections is the carrier of the DSL's abstract `mark` type: the marks
// detected in one window. Its Bytes method feeds the communication cost
// model (centroid + bounding box + area per mark).
type Detections []Mark

// Bytes returns the transfer size of the detections.
func (d Detections) Bytes() int { return 8 + 40*len(d) }

// Timing calibration for the Transvision target (T9000 @ 20 MHz), expressed
// in processor cycles. See DESIGN.md §4 ("Timing calibration"): with these
// constants the tracking phase of the paper's application lands at ≈30 ms
// and the reinitialization phase at ≈110 ms on an 8-Transputer ring, the
// values reported in paper §4.
const (
	// CyclesPerPixelDetect covers threshold + labelling + moments per
	// window pixel in detect_mark. Recalibrated from 50 after the
	// allocation-free labelling rewrite (dense remap table, reused
	// scratch): the per-pixel cost no longer includes a hash-map update
	// and a per-frame allocation amortisation.
	CyclesPerPixelDetect = 40
	// CyclesPerPixelExtract covers copying one pixel into a window of
	// interest in get_windows (DMA-assisted on the real platform).
	CyclesPerPixelExtract = 1
	// ReadImgCycles is the frame acquisition overhead (the grabber writes
	// the frame concurrently; this is the synchronization cost).
	ReadImgCycles = 20_000
	// PredictCycles covers the 3D trajectory update and rigidity checks.
	PredictCycles = 40_000
	// AccumCycles covers merging one window's detections into the list.
	AccumCycles = 2_000
	// DisplayCycles covers formatting the result for the operator.
	DisplayCycles = 4_000
	// FixedDetectCycles is detect_mark's per-window fixed overhead.
	FixedDetectCycles = 80_000
	// FixedWindowCycles is get_windows' fixed overhead.
	FixedWindowCycles = 10_000
)

// Source is the paper's Caml specification of the vehicle tracking
// application (§4), with the extern declarations standing in for the C
// prototypes. NPROC is substituted by ProgramSource.
const sourceTemplate = `
(* Real-time vehicle detection and tracking -- paper section 4. *)
type img;;
type state;;
type window;;
type mark;;

extern read_img : int * int -> img;;
extern init_state : unit -> state;;
extern get_windows : int -> state -> img -> window list;;
extern detect_mark : window -> mark;;
extern accum_marks : mark list -> mark -> mark list;;
extern predict : mark list -> state * mark list;;
extern display_marks : mark list -> unit;;
extern empty_list : mark list;;

let nproc = NPROC;;
let s0 = init_state ();;
let loop (state, im) =
  let ws = get_windows nproc state im in
  let marks = df nproc detect_mark accum_marks empty_list ws in
  predict marks;;
let main = itermem read_img loop display_marks s0 (WIDTH, HEIGHT);;
`

// ProgramSource renders the tracking specification for a given worker count
// and frame geometry.
func ProgramSource(nproc, w, h int) string {
	out := ""
	for i := 0; i < len(sourceTemplate); i++ {
		switch {
		case hasPrefix(sourceTemplate[i:], "NPROC"):
			out += itoa(nproc)
			i += len("NPROC") - 1
		case hasPrefix(sourceTemplate[i:], "WIDTH"):
			out += itoa(w)
			i += len("WIDTH") - 1
		case hasPrefix(sourceTemplate[i:], "HEIGHT"):
			out += itoa(h)
			i += len("HEIGHT") - 1
		default:
			out += string(sourceTemplate[i])
		}
	}
	return out
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	if neg {
		s = "-" + s
	}
	return s
}

// Recorder collects per-iteration results as the application's display
// function runs (the side channel the experiments read).
type Recorder struct {
	Results []Result
}

// NewRegistry builds the registry of sequential functions for the tracking
// application over the given synthetic scene. Every call produces fresh
// closures — the internal prediction state mirrors the static variables the
// paper's C predict function keeps — so each run (emulation, executive or
// simulation) must use its own registry.
//
// The returned Recorder accumulates the per-iteration Results; out, when
// non-nil, receives one display line per iteration.
func NewRegistry(scene *video.Scene, out io.Writer) (*value.Registry, *Recorder) {
	r := value.NewRegistry()
	rec := &Recorder{}
	state := InitState(scene.W, scene.H, len(scene.Vehicles))

	r.Register(&value.Func{
		Name: "read_img", Sig: "int * int -> img", Arity: 1,
		Fn: func(args []value.Value) value.Value {
			return scene.Next()
		},
		Cost:     func([]value.Value) int64 { return ReadImgCycles },
		EstCost:  ReadImgCycles,
		EstBytes: scene.W * scene.H,
	})
	r.Register(&value.Func{
		Name: "init_state", Sig: "unit -> state", Arity: 1,
		Fn: func([]value.Value) value.Value {
			return InitState(scene.W, scene.H, len(scene.Vehicles))
		},
		EstBytes: 256,
	})
	r.Register(&value.Func{
		Name: "get_windows", Sig: "int -> state -> img -> window list", Arity: 3,
		Fn: func(args []value.Value) value.Value {
			np := args[0].(int)
			s := args[1].(*State)
			im := args[2].(*vision.Image)
			ws := GetWindows(np, s, im)
			out := make(value.List, len(ws))
			for i, w := range ws {
				out[i] = w
			}
			return out
		},
		Cost: func(args []value.Value) int64 {
			s := args[1].(*State)
			im := args[2].(*vision.Image)
			px := 0
			if s.Tracking {
				for _, v := range s.Vehicles {
					d := 2 * windowMargin(v.Scale)
					px += MarksPerVehicle * d * d
				}
			} else {
				px = im.W * im.H
			}
			return FixedWindowCycles + int64(px)*CyclesPerPixelExtract
		},
		EstCost:  FixedWindowCycles + int64(scene.W*scene.H)*CyclesPerPixelExtract,
		EstBytes: scene.W * scene.H,
	})
	r.Register(&value.Func{
		Name: "detect_mark", Sig: "window -> mark", Arity: 1,
		Fn: func(args []value.Value) value.Value {
			w := args[0].(vision.Window)
			return Detections(DetectMarks(w))
		},
		Cost: func(args []value.Value) int64 {
			w := args[0].(vision.Window)
			return FixedDetectCycles + int64(w.Origin.Area())*CyclesPerPixelDetect
		},
		EstCost:  FixedDetectCycles + int64(scene.W*scene.H/8)*CyclesPerPixelDetect,
		EstBytes: 128,
	})
	r.Register(&value.Func{
		Name: "accum_marks", Sig: "mark list -> mark -> mark list", Arity: 2,
		Fn: func(args []value.Value) value.Value {
			acc := args[0].(value.List)
			m := args[1].(Detections)
			return append(append(value.List{}, acc...), m)
		},
		Cost:    func([]value.Value) int64 { return AccumCycles },
		EstCost: AccumCycles,
	})
	r.Register(&value.Func{
		Name: "predict", Sig: "mark list -> state * mark list", Arity: 1,
		Fn: func(args []value.Value) value.Value {
			var marks []Mark
			for _, d := range args[0].(value.List) {
				marks = append(marks, d.(Detections)...)
			}
			ns, res := Predict(state, marks)
			state = ns
			rec.Results = append(rec.Results, res)
			disp := make(value.List, len(res.Marks))
			for i, m := range res.Marks {
				disp[i] = m
			}
			return value.Tuple{ns, disp}
		},
		Cost:     func([]value.Value) int64 { return PredictCycles },
		EstCost:  PredictCycles,
		EstBytes: 256,
	})
	r.Register(&value.Func{
		Name: "display_marks", Sig: "mark list -> unit", Arity: 1,
		Fn: func(args []value.Value) value.Value {
			if out != nil && len(rec.Results) > 0 {
				fmt.Fprintln(out, Display(rec.Results[len(rec.Results)-1]))
			}
			return value.Unit{}
		},
		Cost:    func([]value.Value) int64 { return DisplayCycles },
		EstCost: DisplayCycles,
	})
	r.Register(&value.Func{
		Name: "empty_list", Sig: "mark list", Arity: 0,
		Fn: func([]value.Value) value.Value { return value.List{} },
	})
	return r, rec
}
