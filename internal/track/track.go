// Package track implements the real-time vehicle detection and tracking
// application of paper §4: lead vehicles carry three bright visual marks;
// marks are detected as connected groups of pixels above a threshold and
// characterized by their center of gravity and englobing frame; vehicles are
// then tracked by a classical predict-then-verify method, with a set of
// rigidity criteria to resolve ambiguous cases and a full-image
// reinitialization phase when prediction fails.
//
// The package exposes exactly the sequential functions of the paper's C
// prototype list (read_img, init_state, get_windows, detect_mark,
// accum_marks, predict, display_marks), in Go, so they can be registered as
// extern functions of the SKiPPER DSL program or called directly through the
// skel package.
package track

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"skipper/internal/video"
	"skipper/internal/vision"
)

// Threshold is the mark detection threshold ("pixels with values above a
// given threshold", §4); it matches the synthetic video generator contract.
const Threshold = video.DetectThreshold

// MinMarkArea filters out sub-threshold noise blobs.
const MinMarkArea = 2

// MarksPerVehicle is fixed by the experimental setup: "three visual marks,
// placed on the top and at the back" of each lead vehicle.
const MarksPerVehicle = 3

// Mark is a detected visual mark: center of gravity plus englobing frame,
// in full-frame coordinates.
type Mark struct {
	CX, CY float64
	BBox   vision.Rect
	Area   int
}

// VehicleEst is the tracker's per-vehicle estimate. Positions and
// velocities are per-mark, in pixels/frame (an alpha-beta filter); Scale is
// the apparent mark spacing used by the rigidity criteria and as a proxy for
// the 3D distance of the paper's trajectory model.
type VehicleEst struct {
	Marks [MarksPerVehicle]Mark
	VX    [MarksPerVehicle]float64
	VY    [MarksPerVehicle]float64
	Scale float64
	Age   int // frames tracked continuously
}

// State is the inter-iteration memory value threaded through itermem. It
// contains "all the information required for positioning the windows".
type State struct {
	W, H      int  // frame geometry
	NVehicles int  // number of vehicles to track (1..3)
	Tracking  bool // false => reinitialization phase
	Vehicles  []VehicleEst
	Frame     int
}

// InitState returns the initial state value for initiating the prediction
// algorithm: no vehicle estimates yet, so the first iteration runs the
// reinitialization strategy.
func InitState(w, h, nVehicles int) *State {
	if nVehicles < 1 {
		nVehicles = 1
	}
	if nVehicles > 3 {
		nVehicles = 3
	}
	return &State{W: w, H: h, NVehicles: nVehicles}
}

// windowMargin computes the half-size of a window of interest around a
// predicted mark position. The window must cover one mark (diameter ≈
// scale/6, fixed by the mark/vehicle geometry) plus prediction error and
// inter-frame motion, so a fraction of the triangle base suffices — keeping
// the per-window detection work small, which is what makes the tracking
// phase an order of magnitude cheaper than reinitialization.
func windowMargin(scale float64) int {
	m := int(scale * 0.5)
	if m < 16 {
		m = 16
	}
	return m
}

// GetWindows extracts the windows of the current image. In tracking mode it
// returns one window of interest per predicted mark (3, 6 or 9 windows); in
// reinitialization mode it divides the whole image into np equally-sized
// sub-windows, "where n is typically taken equal to the total number of
// processors" (§4).
func GetWindows(np int, s *State, im *vision.Image) []vision.Window {
	var rects []vision.Rect
	if s.Tracking {
		for vi := range s.Vehicles {
			v := &s.Vehicles[vi]
			for mi := 0; mi < MarksPerVehicle; mi++ {
				m := v.Marks[mi]
				// Predict next position with current velocity, inflate by
				// margin to tolerate estimation error.
				px := m.CX + v.VX[mi]
				py := m.CY + v.VY[mi]
				d := windowMargin(v.Scale)
				r := vision.Rect{
					X0: int(px) - d, Y0: int(py) - d,
					X1: int(px) + d, Y1: int(py) + d,
				}.Intersect(vision.Rect{X0: 0, Y0: 0, X1: im.W, Y1: im.H})
				rects = append(rects, r)
			}
		}
	} else {
		rects = vision.SplitGrid(im.W, im.H, np)
	}
	windows := make([]vision.Window, 0, len(rects))
	for _, r := range rects {
		windows = append(windows, vision.Extract(im, r))
	}
	return windows
}

// DetectMarks detects the marks present in one window: connected groups of
// pixels above the threshold, each characterized by center of gravity and
// englobing frame (translated back to full-frame coordinates). It is the
// compute function handed to the df skeleton. (The paper's C prototype
// returns a single mark per window; the abstract DSL type "mark" is carried
// here as the list of blobs found in the window, which is the faithful
// functional content when a reinitialization band holds several marks.)
// detectScratch pools labelling scratch space across DetectMarks calls:
// detection runs once per window per frame (the paper's per-frame hot
// path), and the label/union-find/moments buffers never escape, so a
// sync.Pool removes all per-call labelling allocations while staying safe
// under the df skeleton's concurrent workers.
var detectScratch = sync.Pool{New: func() any { return new(vision.LabelScratch) }}

func DetectMarks(w vision.Window) []Mark {
	s := detectScratch.Get().(*vision.LabelScratch)
	defer detectScratch.Put(s)
	comps := s.Components(w.Img, Threshold, MinMarkArea)
	marks := make([]Mark, 0, len(comps))
	for _, c := range comps {
		marks = append(marks, Mark{
			CX: c.CX + float64(w.Origin.X0),
			CY: c.CY + float64(w.Origin.Y0),
			BBox: vision.Rect{
				X0: c.BBox.X0 + w.Origin.X0, Y0: c.BBox.Y0 + w.Origin.Y0,
				X1: c.BBox.X1 + w.Origin.X0, Y1: c.BBox.Y1 + w.Origin.Y0,
			},
			Area: c.Area,
		})
	}
	return marks
}

// AccumMarks is the df accumulating function: it merges the marks detected
// in one window into the running list. Duplicate detections of the same
// physical mark (a blob straddling two reinitialization bands is reported by
// both) are coalesced by bounding-box adjacency. The operation is
// commutative and associative up to mark ordering, which MergeDuplicates
// restores canonically; the tracker sorts before use.
func AccumMarks(acc []Mark, ms []Mark) []Mark {
	return append(acc, ms...)
}

// MergeDuplicates coalesces marks whose bounding boxes touch or overlap
// (split detections across window boundaries) and returns marks sorted in
// canonical (CY, CX) order, making the df accumulation order immaterial.
func MergeDuplicates(marks []Mark) []Mark {
	merged := make([]Mark, 0, len(marks))
	used := make([]bool, len(marks))
	for i := range marks {
		if used[i] {
			continue
		}
		cur := marks[i]
		used[i] = true
		for changed := true; changed; {
			changed = false
			for j := range marks {
				if used[j] {
					continue
				}
				if cur.BBox.Inflate(1, 1<<30, 1<<30).Intersect(marks[j].BBox).Area() > 0 {
					cur = fuse(cur, marks[j])
					used[j] = true
					changed = true
				}
			}
		}
		merged = append(merged, cur)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].CY != merged[j].CY {
			return merged[i].CY < merged[j].CY
		}
		return merged[i].CX < merged[j].CX
	})
	return merged
}

// fuse combines two detections of the same physical mark (area-weighted
// centroid, union bounding box).
func fuse(a, b Mark) Mark {
	ta := float64(a.Area)
	tb := float64(b.Area)
	tot := ta + tb
	return Mark{
		CX:   (a.CX*ta + b.CX*tb) / tot,
		CY:   (a.CY*ta + b.CY*tb) / tot,
		BBox: a.BBox.Union(b.BBox),
		Area: a.Area + b.Area,
	}
}

// Result is the per-iteration output handed to the display function: the
// marks retained for each vehicle this frame, plus phase bookkeeping used by
// the experiments.
type Result struct {
	Frame    int
	Tracking bool // phase that produced this result
	Marks    []Mark
	Vehicles int // vehicles currently locked
}

// Predict implements the predict-then-verify step: it takes the marks
// detected at iteration i, verifies them against the rigidity criteria,
// updates the per-vehicle trajectory estimates and decides the phase of
// iteration i+1 ("if less than three marks were detected, it is assumed that
// the prediction failed"). It returns the updated state and the display
// result, matching the paper's
//
//	predict : mark list -> state * mark list
func Predict(s *State, marks []Mark) (*State, Result) {
	ns := *s // copy; State itself is treated as immutable by the tracker
	ns.Vehicles = append([]VehicleEst(nil), s.Vehicles...)
	ns.Frame = s.Frame + 1

	clean := MergeDuplicates(marks)
	var groups [][]Mark
	if s.Tracking {
		groups = assignToVehicles(&ns, clean)
	} else {
		groups = clusterVehicles(clean, s.NVehicles)
	}

	var kept []Mark
	var vehicles []VehicleEst
	for gi, g := range groups {
		if len(g) != MarksPerVehicle || !rigid(g) {
			continue
		}
		est := updateEstimate(prevEstimate(s, gi), g)
		vehicles = append(vehicles, est)
		kept = append(kept, g...)
	}

	ns.Vehicles = vehicles
	ns.Tracking = len(vehicles) > 0
	return &ns, Result{
		Frame:    ns.Frame,
		Tracking: s.Tracking,
		Marks:    kept,
		Vehicles: len(vehicles),
	}
}

// prevEstimate returns the previous estimate for vehicle slot gi, if any.
func prevEstimate(s *State, gi int) *VehicleEst {
	if s.Tracking && gi < len(s.Vehicles) {
		return &s.Vehicles[gi]
	}
	return nil
}

// assignToVehicles matches detected marks to the vehicles of the current
// state by nearest predicted mark position (the "verify" part): each vehicle
// claims at most one mark per predicted position, within a gate radius.
func assignToVehicles(s *State, marks []Mark) [][]Mark {
	groups := make([][]Mark, len(s.Vehicles))
	taken := make([]bool, len(marks))
	for vi := range s.Vehicles {
		v := &s.Vehicles[vi]
		gate := float64(windowMargin(v.Scale)) * 1.5
		for mi := 0; mi < MarksPerVehicle; mi++ {
			px := v.Marks[mi].CX + v.VX[mi]
			py := v.Marks[mi].CY + v.VY[mi]
			best, bestD := -1, gate
			for j, m := range marks {
				if taken[j] {
					continue
				}
				d := math.Hypot(m.CX-px, m.CY-py)
				if d < bestD {
					best, bestD = j, d
				}
			}
			if best >= 0 {
				taken[best] = true
				groups[vi] = append(groups[vi], marks[best])
			}
		}
		groups[vi] = sortTriangle(groups[vi])
	}
	return groups
}

// clusterVehicles groups marks into up to n vehicles during
// reinitialization by searching for mark triples that satisfy the rigidity
// criteria and are mutually size-consistent (the three marks of one vehicle
// are at the same distance, hence the same apparent size — this is how the
// 3D model "resolves ambiguous cases" when vehicle projections overlap).
// Candidate triangles are scored by total area (nearer vehicles first) and
// selected greedily under mark disjointness.
func clusterVehicles(marks []Mark, n int) [][]Mark {
	type cand struct {
		g     []Mark
		used  [MarksPerVehicle]int
		score int
	}
	var cands []cand
	for i := 0; i < len(marks); i++ {
		for j := i + 1; j < len(marks); j++ {
			for k := j + 1; k < len(marks); k++ {
				g := sortTriangle([]Mark{marks[i], marks[j], marks[k]})
				if !rigid(g) || !sizeConsistent(g) {
					continue
				}
				score := g[0].Area + g[1].Area + g[2].Area
				cands = append(cands, cand{g: g, used: [3]int{i, j, k}, score: score})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].score > cands[b].score })
	taken := make([]bool, len(marks))
	var groups [][]Mark
	for _, c := range cands {
		if len(groups) == n {
			break
		}
		if taken[c.used[0]] || taken[c.used[1]] || taken[c.used[2]] {
			continue
		}
		for _, u := range c.used {
			taken[u] = true
		}
		groups = append(groups, c.g)
	}
	return groups
}

// sizeConsistent checks that a canonical triangle's marks have comparable
// apparent sizes and that the triangle base is in the proportion to the mark
// diameter fixed by the physical mark layout (marks ≈ 12 cm across, base
// ≈ 1.6 m, so base/diameter ≈ 6.7; a generous band absorbs rasterization).
func sizeConsistent(g []Mark) bool {
	amin, amax := g[0].Area, g[0].Area
	for _, m := range g[1:] {
		if m.Area < amin {
			amin = m.Area
		}
		if m.Area > amax {
			amax = m.Area
		}
	}
	if amax > 3*amin {
		return false
	}
	avgDiam := 2 * math.Sqrt(float64(amin+amax)/2/math.Pi)
	width := g[2].CX - g[1].CX
	ratio := width / avgDiam
	return ratio > 3 && ratio < 12
}

// sortTriangle orders a 3-mark group canonically: top mark first, then
// bottom-left, then bottom-right. Other group sizes are returned sorted by
// (CY, CX).
func sortTriangle(g []Mark) []Mark {
	sort.Slice(g, func(i, j int) bool {
		if g[i].CY != g[j].CY {
			return g[i].CY < g[j].CY
		}
		return g[i].CX < g[j].CX
	})
	if len(g) == MarksPerVehicle && g[1].CX > g[2].CX {
		g[1], g[2] = g[2], g[1]
	}
	return g
}

// rigid applies the rigidity criteria of the paper's 3D model to a
// canonical 3-mark group (top, bottom-left, bottom-right): the two bottom
// marks are at similar height, the top mark lies horizontally between them
// (with slack), and the triangle's aspect ratio is physically plausible.
func rigid(g []Mark) bool {
	if len(g) != MarksPerVehicle {
		return false
	}
	top, bl, br := g[0], g[1], g[2]
	width := br.CX - bl.CX
	if width <= 0 {
		return false
	}
	// Bottom marks roughly level.
	if math.Abs(bl.CY-br.CY) > 0.5*width+2 {
		return false
	}
	// Top mark above the bottom pair and horizontally between them (slack
	// of half the base on each side).
	if top.CY >= math.Min(bl.CY, br.CY) {
		return false
	}
	mid := (bl.CX + br.CX) / 2
	if math.Abs(top.CX-mid) > 0.75*width {
		return false
	}
	// Height/width ratio of the mark triangle is fixed by the vehicle
	// geometry (0.9m over 1.6m ≈ 0.56); accept a generous band.
	h := (bl.CY+br.CY)/2 - top.CY
	ratio := h / width
	return ratio > 0.2 && ratio < 1.5
}

// updateEstimate runs one alpha-beta filter step per mark.
func updateEstimate(prev *VehicleEst, g []Mark) VehicleEst {
	const alpha, beta = 0.7, 0.3
	var est VehicleEst
	if prev == nil {
		copy(est.Marks[:], g)
		est.Scale = triangleScale(g)
		est.Age = 1
		return est
	}
	est = *prev
	for i := 0; i < MarksPerVehicle; i++ {
		predX := prev.Marks[i].CX + prev.VX[i]
		predY := prev.Marks[i].CY + prev.VY[i]
		rx := g[i].CX - predX
		ry := g[i].CY - predY
		est.Marks[i] = g[i]
		est.Marks[i].CX = predX + alpha*rx
		est.Marks[i].CY = predY + alpha*ry
		est.VX[i] = prev.VX[i] + beta*rx
		est.VY[i] = prev.VY[i] + beta*ry
	}
	est.Scale = triangleScale(g)
	est.Age = prev.Age + 1
	return est
}

// triangleScale is the apparent base width of the mark triangle, the
// tracker's proxy for vehicle distance.
func triangleScale(g []Mark) float64 {
	if len(g) != MarksPerVehicle {
		return 16
	}
	s := g[2].CX - g[1].CX
	if s < 4 {
		s = 4
	}
	return s
}

// Display renders a Result into a human-readable line (the display_marks
// function of the paper, adapted to a console).
func Display(r Result) string {
	phase := "REINIT"
	if r.Tracking {
		phase = "TRACK "
	}
	return fmt.Sprintf("frame %4d  %s  vehicles=%d  marks=%d",
		r.Frame, phase, r.Vehicles, len(r.Marks))
}
