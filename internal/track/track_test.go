package track

import (
	"math"
	"testing"

	"skipper/internal/video"
	"skipper/internal/vision"
)

func frameWithTriangle(w, h int, topX, topY, base, drop int) *vision.Image {
	im := vision.NewImage(w, h)
	vision.FillDisc(im, topX, topY, 2, 250)
	vision.FillDisc(im, topX-base/2, topY+drop, 2, 250)
	vision.FillDisc(im, topX+base/2, topY+drop, 2, 250)
	return im
}

func TestInitState(t *testing.T) {
	s := InitState(512, 512, 2)
	if s.Tracking || s.W != 512 || s.NVehicles != 2 {
		t.Fatalf("bad init state: %+v", s)
	}
	if InitState(10, 10, 0).NVehicles != 1 || InitState(10, 10, 7).NVehicles != 3 {
		t.Fatal("vehicle count not clamped")
	}
}

func TestGetWindowsReinitSplitsFrame(t *testing.T) {
	s := InitState(128, 128, 1)
	im := vision.NewImage(128, 128)
	ws := GetWindows(8, s, im)
	if len(ws) != 8 {
		t.Fatalf("reinit should produce np=8 windows, got %d", len(ws))
	}
	rows := 0
	for _, w := range ws {
		rows += w.Origin.H()
	}
	if rows != 128 {
		t.Fatalf("windows cover %d rows", rows)
	}
}

func TestGetWindowsTrackingFollowsMarks(t *testing.T) {
	s := InitState(256, 256, 1)
	s.Tracking = true
	var est VehicleEst
	est.Marks[0] = Mark{CX: 100, CY: 80}
	est.Marks[1] = Mark{CX: 80, CY: 120}
	est.Marks[2] = Mark{CX: 120, CY: 120}
	est.VX = [3]float64{2, 2, 2}
	est.Scale = 40
	s.Vehicles = []VehicleEst{est}
	ws := GetWindows(8, s, vision.NewImage(256, 256))
	if len(ws) != 3 {
		t.Fatalf("tracking should produce 3 windows, got %d", len(ws))
	}
	// First window is centered near predicted position (102, 80).
	c := ws[0].Origin
	cx := (c.X0 + c.X1) / 2
	if cx < 97 || cx > 107 {
		t.Fatalf("window not centered on prediction: %v", c)
	}
}

func TestDetectMarksTranslatesCoordinates(t *testing.T) {
	im := frameWithTriangle(200, 200, 100, 60, 40, 30)
	w := vision.Extract(im, vision.Rect{X0: 90, Y0: 50, X1: 110, Y1: 70})
	marks := DetectMarks(w)
	if len(marks) != 1 {
		t.Fatalf("expected 1 mark in window, got %d", len(marks))
	}
	if math.Abs(marks[0].CX-100) > 0.6 || math.Abs(marks[0].CY-60) > 0.6 {
		t.Fatalf("mark at (%g,%g), want (100,60)", marks[0].CX, marks[0].CY)
	}
}

func TestMergeDuplicatesFusesSplitBlob(t *testing.T) {
	// The same physical mark reported by two adjacent reinit bands.
	a := Mark{CX: 50, CY: 63.5, BBox: vision.Rect{X0: 48, Y0: 62, X1: 53, Y1: 65}, Area: 10}
	b := Mark{CX: 50, CY: 66.5, BBox: vision.Rect{X0: 48, Y0: 65, X1: 53, Y1: 69}, Area: 10}
	far := Mark{CX: 150, CY: 20, BBox: vision.Rect{X0: 149, Y0: 19, X1: 152, Y1: 22}, Area: 5}
	got := MergeDuplicates([]Mark{far, a, b})
	if len(got) != 2 {
		t.Fatalf("expected 2 marks after merge, got %d", len(got))
	}
	// Canonical order: sorted by CY → far first.
	if got[0].CX != 150 {
		t.Fatalf("canonical order broken: %+v", got)
	}
	fused := got[1]
	if fused.Area != 20 || math.Abs(fused.CY-65) > 1e-9 {
		t.Fatalf("bad fusion: %+v", fused)
	}
}

func TestMergeDuplicatesOrderInvariant(t *testing.T) {
	a := Mark{CX: 10, CY: 10, BBox: vision.Rect{X0: 9, Y0: 9, X1: 12, Y1: 12}, Area: 4}
	b := Mark{CX: 40, CY: 40, BBox: vision.Rect{X0: 39, Y0: 39, X1: 42, Y1: 42}, Area: 4}
	c := Mark{CX: 70, CY: 10, BBox: vision.Rect{X0: 69, Y0: 9, X1: 72, Y1: 12}, Area: 4}
	m1 := MergeDuplicates([]Mark{a, b, c})
	m2 := MergeDuplicates([]Mark{c, a, b})
	if len(m1) != len(m2) {
		t.Fatal("length differs")
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("order dependence: %+v vs %+v", m1, m2)
		}
	}
}

func TestRigidAcceptsTriangle(t *testing.T) {
	g := []Mark{
		{CX: 100, CY: 60},  // top
		{CX: 80, CY: 100},  // bottom-left
		{CX: 120, CY: 100}, // bottom-right
	}
	if !rigid(g) {
		t.Fatal("valid triangle rejected")
	}
}

func TestRigidRejectsDegenerate(t *testing.T) {
	cases := map[string][]Mark{
		"two marks": {{CX: 1}, {CX: 2}},
		"collinear horizontal": {
			{CX: 80, CY: 100}, {CX: 100, CY: 100}, {CX: 120, CY: 100}},
		"top below bottom": {
			{CX: 100, CY: 120}, {CX: 80, CY: 100}, {CX: 120, CY: 100}},
		"top far off-center": {
			{CX: 300, CY: 60}, {CX: 80, CY: 100}, {CX: 120, CY: 100}},
		"too tall": {
			{CX: 100, CY: 10}, {CX: 98, CY: 100}, {CX: 102, CY: 100}},
	}
	for name, g := range cases {
		if rigid(sortTriangle(g)) {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPredictLocksFromReinit(t *testing.T) {
	s := InitState(200, 200, 1)
	im := frameWithTriangle(200, 200, 100, 60, 40, 30)
	ws := GetWindows(8, s, im)
	var marks []Mark
	for _, w := range ws {
		marks = AccumMarks(marks, DetectMarks(w))
	}
	ns, r := Predict(s, marks)
	if !ns.Tracking {
		t.Fatalf("tracker failed to lock: %+v", r)
	}
	if r.Vehicles != 1 || len(r.Marks) != 3 {
		t.Fatalf("result = %+v", r)
	}
	if r.Tracking {
		t.Fatal("result phase should record the producing (reinit) phase")
	}
}

func TestPredictLosesLockOnEmptyFrame(t *testing.T) {
	s := InitState(200, 200, 1)
	im := frameWithTriangle(200, 200, 100, 60, 40, 30)
	ws := GetWindows(8, s, im)
	var marks []Mark
	for _, w := range ws {
		marks = AccumMarks(marks, DetectMarks(w))
	}
	ns, _ := Predict(s, marks)
	if !ns.Tracking {
		t.Fatal("precondition: should lock")
	}
	// Next frame: nothing detected -> prediction failed -> reinit.
	ns2, r2 := Predict(ns, nil)
	if ns2.Tracking {
		t.Fatal("should drop lock with no marks")
	}
	if r2.Vehicles != 0 {
		t.Fatalf("r2 = %+v", r2)
	}
}

func TestPredictDoesNotMutateInputState(t *testing.T) {
	s := InitState(200, 200, 1)
	before := *s
	im := frameWithTriangle(200, 200, 100, 60, 40, 30)
	ws := GetWindows(8, s, im)
	var marks []Mark
	for _, w := range ws {
		marks = AccumMarks(marks, DetectMarks(w))
	}
	Predict(s, marks)
	if s.Tracking != before.Tracking || s.Frame != before.Frame ||
		len(s.Vehicles) != len(before.Vehicles) {
		t.Fatalf("Predict mutated input state: %+v -> %+v", before, *s)
	}
}

func TestAlphaBetaFollowsMotion(t *testing.T) {
	// Triangle translating right 3px/frame: after a few frames the velocity
	// estimate should be ≈3 and predictions should track.
	s := InitState(400, 200, 1)
	for f := 0; f < 12; f++ {
		x := 100 + 3*f
		im := frameWithTriangle(400, 200, x, 60, 40, 30)
		ws := GetWindows(8, s, im)
		var marks []Mark
		for _, w := range ws {
			marks = AccumMarks(marks, DetectMarks(w))
		}
		s, _ = Predict(s, marks)
	}
	if !s.Tracking {
		t.Fatal("lost lock on smooth motion")
	}
	v := s.Vehicles[0]
	for i := 0; i < 3; i++ {
		if v.VX[i] < 1.5 || v.VX[i] > 4.5 {
			t.Fatalf("VX[%d] = %g, want ≈3", i, v.VX[i])
		}
	}
	if v.Age < 10 {
		t.Fatalf("Age = %d", v.Age)
	}
}

func TestAppTracksSyntheticScene(t *testing.T) {
	app := NewApp(256, 256, 8, 1, 3)
	app.Run(40)
	if len(app.Results) != 40 {
		t.Fatalf("got %d results", len(app.Results))
	}
	if lr := app.LockRatio(); lr < 0.6 {
		t.Fatalf("lock ratio %.2f too low", lr)
	}
}

func TestAppParallelMatchesSequential(t *testing.T) {
	seq := NewApp(192, 192, 8, 2, 11)
	par := NewApp(192, 192, 8, 2, 11)
	par.Parallel = true
	seq.Run(25)
	par.Run(25)
	if len(seq.Results) != len(par.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(seq.Results), len(par.Results))
	}
	for i := range seq.Results {
		a, b := seq.Results[i], par.Results[i]
		if a.Vehicles != b.Vehicles || a.Tracking != b.Tracking || len(a.Marks) != len(b.Marks) {
			t.Fatalf("iteration %d diverged: %+v vs %+v", i, a, b)
		}
		for j := range a.Marks {
			if math.Abs(a.Marks[j].CX-b.Marks[j].CX) > 1e-9 ||
				math.Abs(a.Marks[j].CY-b.Marks[j].CY) > 1e-9 {
				t.Fatalf("iteration %d mark %d diverged", i, j)
			}
		}
	}
}

func TestMultiVehicleTracking(t *testing.T) {
	app := NewApp(384, 288, 8, 3, 7)
	app.Run(30)
	locked := 0
	for _, r := range app.Results {
		if r.Vehicles >= 2 {
			locked++
		}
	}
	if locked < 15 {
		t.Fatalf("only %d/30 frames locked >=2 vehicles", locked)
	}
}

func TestDisplayFormatsPhases(t *testing.T) {
	got := Display(Result{Frame: 3, Tracking: true, Vehicles: 2, Marks: make([]Mark, 6)})
	want := "frame    3  TRACK   vehicles=2  marks=6"
	if got != want {
		t.Fatalf("Display = %q, want %q", got, want)
	}
	if Display(Result{})[12:18] != "REINIT" {
		t.Fatalf("reinit label missing: %q", Display(Result{}))
	}
}

func TestThresholdMatchesVideoContract(t *testing.T) {
	if Threshold != video.DetectThreshold {
		t.Fatal("threshold drifted from the video generator contract")
	}
}
