package track

import (
	"testing"

	"skipper/internal/video"
	"skipper/internal/vision"
)

// Choreographed scenarios exercising the predict-then-verify state machine
// beyond the steady state: mark dropout, full occlusion with reacquisition,
// and identity stability across crossing trajectories.

// runFrames drives the tracker over explicit frames and returns the state
// trajectory.
func runFrames(np int, frames []*vision.Image) []*State {
	if len(frames) == 0 {
		return nil
	}
	s := InitState(frames[0].W, frames[0].H, 1)
	var states []*State
	for _, im := range frames {
		ws := GetWindows(np, s, im)
		var marks []Mark
		for _, w := range ws {
			marks = AccumMarks(marks, DetectMarks(w))
		}
		s, _ = Predict(s, marks)
		states = append(states, s)
	}
	return states
}

func TestReacquisitionAfterFullOcclusion(t *testing.T) {
	// Visible for 10 frames, fully occluded for 3, visible again.
	var frames []*vision.Image
	for f := 0; f < 10; f++ {
		frames = append(frames, frameWithTriangle(300, 200, 120+f, 60, 40, 30))
	}
	for f := 0; f < 3; f++ {
		frames = append(frames, vision.NewImage(300, 200)) // blank
	}
	for f := 0; f < 8; f++ {
		frames = append(frames, frameWithTriangle(300, 200, 150, 60, 40, 30))
	}
	states := runFrames(8, frames)
	if !states[9].Tracking {
		t.Fatal("should be locked before occlusion")
	}
	if states[10].Tracking {
		t.Fatal("should drop lock on the first blank frame")
	}
	// Reacquired within two frames of the target reappearing.
	if !states[14].Tracking {
		t.Fatal("failed to reacquire after occlusion")
	}
	// Age restarted (it is a fresh acquisition, not a continuation).
	if states[14].Vehicles[0].Age > 3 {
		t.Fatalf("age after reacquisition = %d", states[14].Vehicles[0].Age)
	}
}

func TestSingleMarkDropoutLosesThenRecoversLock(t *testing.T) {
	// One of the three marks missing -> rigidity cannot hold -> reinit,
	// which immediately relocks once all marks are back.
	mk := func(missing bool) *vision.Image {
		im := vision.NewImage(300, 200)
		vision.FillDisc(im, 150, 60, 2, 250)
		vision.FillDisc(im, 130, 90, 2, 250)
		if !missing {
			vision.FillDisc(im, 170, 90, 2, 250)
		}
		return im
	}
	frames := []*vision.Image{mk(false), mk(false), mk(true), mk(false), mk(false)}
	states := runFrames(8, frames)
	if !states[1].Tracking {
		t.Fatal("precondition: locked")
	}
	if states[2].Tracking {
		t.Fatal("2-of-3 marks must fail the rigidity check and drop lock")
	}
	if !states[3].Tracking {
		t.Fatal("should relock from reinit with all marks visible")
	}
}

func TestTrackingSurvivesSporadicDropout(t *testing.T) {
	// With a small per-mark dropout probability the tracker oscillates
	// between phases but must keep a reasonable lock ratio and never panic.
	scene := video.NewScene(256, 256, 1, 5)
	scene.Dropout = 0.05
	app := &App{NProc: 8, Scene: scene}
	app.Run(60)
	locked := 0
	for _, r := range app.Results {
		if r.Tracking {
			locked++
		}
	}
	if locked < 20 {
		t.Fatalf("lock ratio too low under 5%% dropout: %d/60", locked)
	}
	// Phases alternate: there is at least one reinit besides frame 0.
	reinits := 0
	for _, r := range app.Results[1:] {
		if !r.Tracking {
			reinits++
		}
	}
	if reinits == 0 {
		t.Log("no reinit episodes observed (dropout luck); acceptable but unusual")
	}
}

func TestIdentityStableThroughCrossing(t *testing.T) {
	// Two triangles crossing horizontally; gated nearest-neighbour
	// assignment should keep both locked most of the time even when they
	// pass close to each other.
	var frames []*vision.Image
	for f := 0; f < 30; f++ {
		im := vision.NewImage(400, 200)
		xa := 80 + 6*f  // moves right
		xb := 320 - 6*f // moves left
		for _, x := range []int{xa, xb} {
			vision.FillDisc(im, x, 60, 2, 250)
			vision.FillDisc(im, x-20, 90, 2, 250)
			vision.FillDisc(im, x+20, 90, 2, 250)
		}
		frames = append(frames, im)
	}
	s := InitState(400, 200, 2)
	locked2 := 0
	for _, im := range frames {
		ws := GetWindows(8, s, im)
		var marks []Mark
		for _, w := range ws {
			marks = AccumMarks(marks, DetectMarks(w))
		}
		s, _ = Predict(s, marks)
		if s.Tracking && len(s.Vehicles) == 2 {
			locked2++
		}
	}
	if locked2 < 15 {
		t.Fatalf("both vehicles locked in only %d/30 frames", locked2)
	}
}

func TestStationaryTargetLongRun(t *testing.T) {
	// A perfectly stationary target must stay locked indefinitely with
	// velocities converging to ~0.
	var frames []*vision.Image
	for f := 0; f < 50; f++ {
		frames = append(frames, frameWithTriangle(200, 200, 100, 60, 40, 30))
	}
	states := runFrames(8, frames)
	last := states[len(states)-1]
	if !last.Tracking {
		t.Fatal("lost a stationary target")
	}
	if last.Vehicles[0].Age < 45 {
		t.Fatalf("age = %d, want continuous track", last.Vehicles[0].Age)
	}
	for i := 0; i < MarksPerVehicle; i++ {
		if v := last.Vehicles[0].VX[i]; v > 0.5 || v < -0.5 {
			t.Fatalf("VX[%d] = %g, want ≈0", i, v)
		}
	}
}
