package track

import (
	"skipper/internal/skel"
	"skipper/internal/video"
	"skipper/internal/vision"
)

// App bundles the tracking application exactly as the paper's Caml
// specification composes it:
//
//	let loop (state, im) =
//	  let ws    = get_windows nproc state im in
//	  let marks = df nproc detect_mark accum_marks empty_list ws in
//	  predict marks;;
//	let main = itermem read_img loop display_marks s0 (512,512);;
//
// It is the direct-Go-API face of the case study; the same application also
// runs from its DSL source through the compiler pipeline.
type App struct {
	NProc    int
	Scene    *video.Scene
	Parallel bool // df/itermem operational (goroutines) vs declarative
	Results  []Result
}

// NewApp creates a tracking application over a synthetic scene.
func NewApp(w, h, nproc, nVehicles int, seed int64) *App {
	return &App{
		NProc: nproc,
		Scene: video.NewScene(w, h, nVehicles, seed),
	}
}

// Loop is the paper's loop function: windows, data farm over detect, predict.
func (a *App) Loop(s *State, im *vision.Image) (*State, Result) {
	ws := GetWindows(a.NProc, s, im)
	var marks []Mark
	if a.Parallel {
		marks = skel.DFPar(a.NProc, DetectMarks, AccumMarks, nil, ws)
	} else {
		marks = skel.DFSeq(a.NProc, DetectMarks, AccumMarks, nil, ws)
	}
	return Predict(s, marks)
}

// Run executes iters iterations of the itermem loop, collecting results.
// The frame buffer is reused across iterations: IterMem is strictly
// sequential and nothing downstream of the loop retains the image (windows
// are copies, marks are values), so one buffer serves the whole stream.
func (a *App) Run(iters int) *State {
	s0 := InitState(a.Scene.W, a.Scene.H, len(a.Scene.Vehicles))
	frame := vision.NewImage(a.Scene.W, a.Scene.H)
	inp := func(struct{}) *vision.Image { return a.Scene.NextInto(frame) }
	loop := func(s *State, im *vision.Image) (*State, Result) { return a.Loop(s, im) }
	out := func(r Result) bool {
		a.Results = append(a.Results, r)
		return true
	}
	return skel.IterMem(inp, loop, out, s0, struct{}{}, iters)
}

// LockRatio reports the fraction of iterations spent in tracking phase
// (vehicles locked), a quality metric used by the experiments.
func (a *App) LockRatio() float64 {
	if len(a.Results) == 0 {
		return 0
	}
	n := 0
	for _, r := range a.Results {
		if r.Tracking {
			n++
		}
	}
	return float64(n) / float64(len(a.Results))
}
