package track

import (
	"fmt"

	"skipper/internal/value"
	"skipper/internal/vision"
)

// Codec extensions for the tracking application's opaque values, so the
// TCP executive transport can ship them between processor OS processes:
// Detections (the `mark` carrier, worker replies), bare Marks (display
// lists) and *State (the itermem feedback value, in case a mapping places
// the memory node away from the predictor).

func init() {
	value.RegisterExt(value.Ext{
		Name:   "track.Detections",
		Match:  func(v value.Value) bool { _, ok := v.(Detections); return ok },
		Encode: encodeDetections,
		Decode: decodeDetections,
		Size:   func(v value.Value) int { return 4 + len(v.(Detections))*markBytes },
	})
	value.RegisterExt(value.Ext{
		Name:   "track.Mark",
		Match:  func(v value.Value) bool { _, ok := v.(Mark); return ok },
		Size:   func(value.Value) int { return markBytes },
		Encode: func(buf []byte, v value.Value) ([]byte, error) { return appendMark(buf, v.(Mark)), nil },
		Decode: func(payload []byte) (value.Value, error) {
			m, pos, err := readMark(payload, 0)
			if err != nil {
				return nil, err
			}
			if pos != len(payload) {
				return nil, fmt.Errorf("trailing bytes after mark")
			}
			return m, nil
		},
	})
	value.RegisterExt(value.Ext{
		Name:   "track.State",
		Match:  func(v value.Value) bool { _, ok := v.(*State); return ok },
		Encode: encodeState,
		Decode: decodeState,
		Size:   func(v value.Value) int { return stateBytes + len(v.(*State).Vehicles)*vehicleBytes },
	})
}

const markBytes = 8 + 8 + 4*8 + 8 // CX, CY, BBox, Area

// stateBytes is the fixed State header (W, H, NVehicles, Tracking, Frame,
// vehicle count); vehicleBytes is one VehicleEst (marks, VX, VY, Scale, Age).
const (
	stateBytes   = 8 + 8 + 8 + 1 + 8 + 4
	vehicleBytes = MarksPerVehicle*markBytes + 2*MarksPerVehicle*8 + 8 + 8
)

func appendMark(buf []byte, m Mark) []byte {
	buf = value.AppendF64(buf, m.CX)
	buf = value.AppendF64(buf, m.CY)
	for _, c := range [4]int{m.BBox.X0, m.BBox.Y0, m.BBox.X1, m.BBox.Y1} {
		buf = value.AppendI64(buf, int64(c))
	}
	return value.AppendI64(buf, int64(m.Area))
}

func readMark(data []byte, pos int) (Mark, int, error) {
	var m Mark
	var err error
	if m.CX, pos, err = value.ReadF64(data, pos); err != nil {
		return m, 0, err
	}
	if m.CY, pos, err = value.ReadF64(data, pos); err != nil {
		return m, 0, err
	}
	var coords [4]int64
	for i := range coords {
		if coords[i], pos, err = value.ReadI64(data, pos); err != nil {
			return m, 0, err
		}
	}
	m.BBox = vision.Rect{X0: int(coords[0]), Y0: int(coords[1]), X1: int(coords[2]), Y1: int(coords[3])}
	area, pos, err := value.ReadI64(data, pos)
	if err != nil {
		return m, 0, err
	}
	m.Area = int(area)
	return m, pos, nil
}

func encodeDetections(buf []byte, v value.Value) ([]byte, error) {
	d := v.(Detections)
	buf = value.AppendU32(buf, uint32(len(d)))
	for _, m := range d {
		buf = appendMark(buf, m)
	}
	return buf, nil
}

func decodeDetections(payload []byte) (value.Value, error) {
	count, pos, err := value.ReadU32(payload, 0)
	if err != nil {
		return nil, err
	}
	if int64(count)*markBytes != int64(len(payload)-pos) {
		return nil, fmt.Errorf("detections count %d wants %d bytes, frame has %d",
			count, int64(count)*markBytes, len(payload)-pos)
	}
	d := make(Detections, count)
	for i := range d {
		if d[i], pos, err = readMark(payload, pos); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func encodeState(buf []byte, v value.Value) ([]byte, error) {
	s := v.(*State)
	buf = value.AppendI64(buf, int64(s.W))
	buf = value.AppendI64(buf, int64(s.H))
	buf = value.AppendI64(buf, int64(s.NVehicles))
	b := byte(0)
	if s.Tracking {
		b = 1
	}
	buf = append(buf, b)
	buf = value.AppendI64(buf, int64(s.Frame))
	buf = value.AppendU32(buf, uint32(len(s.Vehicles)))
	for _, ve := range s.Vehicles {
		for _, m := range ve.Marks {
			buf = appendMark(buf, m)
		}
		for i := 0; i < MarksPerVehicle; i++ {
			buf = value.AppendF64(buf, ve.VX[i])
		}
		for i := 0; i < MarksPerVehicle; i++ {
			buf = value.AppendF64(buf, ve.VY[i])
		}
		buf = value.AppendF64(buf, ve.Scale)
		buf = value.AppendI64(buf, int64(ve.Age))
	}
	return buf, nil
}

func decodeState(payload []byte) (value.Value, error) {
	s := &State{}
	var w, h, nv, frame int64
	var err error
	pos := 0
	if w, pos, err = value.ReadI64(payload, pos); err != nil {
		return nil, err
	}
	if h, pos, err = value.ReadI64(payload, pos); err != nil {
		return nil, err
	}
	if nv, pos, err = value.ReadI64(payload, pos); err != nil {
		return nil, err
	}
	if pos >= len(payload) {
		return nil, fmt.Errorf("truncated state tracking flag")
	}
	s.Tracking = payload[pos] == 1
	pos++
	if frame, pos, err = value.ReadI64(payload, pos); err != nil {
		return nil, err
	}
	s.W, s.H, s.NVehicles, s.Frame = int(w), int(h), int(nv), int(frame)
	count, pos, err := value.ReadU32(payload, pos)
	if err != nil {
		return nil, err
	}
	if int64(count)*vehicleBytes != int64(len(payload)-pos) {
		return nil, fmt.Errorf("state vehicle count %d wants %d bytes, frame has %d",
			count, int64(count)*vehicleBytes, len(payload)-pos)
	}
	s.Vehicles = make([]VehicleEst, count)
	for i := range s.Vehicles {
		ve := &s.Vehicles[i]
		for j := 0; j < MarksPerVehicle; j++ {
			if ve.Marks[j], pos, err = readMark(payload, pos); err != nil {
				return nil, err
			}
		}
		for j := 0; j < MarksPerVehicle; j++ {
			if ve.VX[j], pos, err = value.ReadF64(payload, pos); err != nil {
				return nil, err
			}
		}
		for j := 0; j < MarksPerVehicle; j++ {
			if ve.VY[j], pos, err = value.ReadF64(payload, pos); err != nil {
				return nil, err
			}
		}
		if ve.Scale, pos, err = value.ReadF64(payload, pos); err != nil {
			return nil, err
		}
		var age int64
		if age, pos, err = value.ReadI64(payload, pos); err != nil {
			return nil, err
		}
		ve.Age = int(age)
	}
	return s, nil
}
