package track

import (
	"strings"
	"testing"

	"skipper/internal/value"
	"skipper/internal/video"
	"skipper/internal/vision"
)

func TestProgramSourceSubstitution(t *testing.T) {
	src := ProgramSource(6, 320, 240)
	for _, want := range []string{
		"let nproc = 6;;",
		"(320, 240)",
		"extern detect_mark : window -> mark;;",
		"itermem read_img loop display_marks",
	} {
		if !strings.Contains(src, want) {
			t.Fatalf("source missing %q:\n%s", want, src)
		}
	}
	if strings.Contains(src, "NPROC") || strings.Contains(src, "WIDTH") {
		t.Fatal("placeholders not substituted")
	}
}

func TestDetectionsBytes(t *testing.T) {
	d := Detections{{}, {}, {}}
	if d.Bytes() != 8+3*40 {
		t.Fatalf("Bytes = %d", d.Bytes())
	}
	if value.SizeOf(d) != d.Bytes() {
		t.Fatal("SizeOf does not use the Sizer")
	}
}

func TestRegistryFunctionsRoundTrip(t *testing.T) {
	scene := video.NewScene(128, 128, 1, 3)
	reg, rec := NewRegistry(scene, nil)

	// read_img produces frames.
	rd, _ := reg.Lookup("read_img")
	im := rd.Fn([]value.Value{value.Tuple{128, 128}}).(*vision.Image)
	if im.W != 128 {
		t.Fatalf("frame geometry %dx%d", im.W, im.H)
	}
	if rd.CostOf(nil) != ReadImgCycles {
		t.Fatal("read_img cost model")
	}

	// init_state starts in reinit phase.
	is, _ := reg.Lookup("init_state")
	st := is.Fn(nil).(*State)
	if st.Tracking {
		t.Fatal("initial state should not be tracking")
	}

	// get_windows in reinit splits the frame into np bands.
	gw, _ := reg.Lookup("get_windows")
	ws := gw.Fn([]value.Value{8, st, im}).(value.List)
	if len(ws) != 8 {
		t.Fatalf("windows = %d", len(ws))
	}
	if c := gw.CostOf([]value.Value{8, st, im}); c <= FixedWindowCycles {
		t.Fatalf("reinit window cost = %d", c)
	}

	// detect_mark on each band; accumulate.
	dm, _ := reg.Lookup("detect_mark")
	am, _ := reg.Lookup("accum_marks")
	el, _ := reg.Lookup("empty_list")
	acc := el.Fn(nil)
	for _, w := range ws {
		d := dm.Fn([]value.Value{w})
		acc = am.Fn([]value.Value{acc, d})
	}
	if am.CostOf(nil) != AccumCycles {
		t.Fatal("accum cost model")
	}

	// predict returns (state, marks) and records a result.
	pr, _ := reg.Lookup("predict")
	out := pr.Fn([]value.Value{acc}).(value.Tuple)
	if _, ok := out[0].(*State); !ok {
		t.Fatalf("predict state component %T", out[0])
	}
	if len(rec.Results) != 1 {
		t.Fatalf("recorder has %d results", len(rec.Results))
	}

	// display writes a line when given a writer.
	var sb strings.Builder
	reg2, rec2 := NewRegistry(video.NewScene(64, 64, 1, 1), &sb)
	pr2, _ := reg2.Lookup("predict")
	pr2.Fn([]value.Value{value.List{}})
	dpl, _ := reg2.Lookup("display_marks")
	dpl.Fn([]value.Value{value.List{}})
	if !strings.Contains(sb.String(), "REINIT") && !strings.Contains(sb.String(), "TRACK") {
		t.Fatalf("display output: %q", sb.String())
	}
	_ = rec2
}

func TestGetWindowsCostTrackingBranch(t *testing.T) {
	scene := video.NewScene(128, 128, 1, 3)
	reg, _ := NewRegistry(scene, nil)
	gw, _ := reg.Lookup("get_windows")
	st := InitState(128, 128, 1)
	st.Tracking = true
	var est VehicleEst
	est.Scale = 40
	st.Vehicles = []VehicleEst{est}
	im := vision.NewImage(128, 128)
	trackCost := gw.CostOf([]value.Value{8, st, im})
	st2 := InitState(128, 128, 1)
	reinitCost := gw.CostOf([]value.Value{8, st2, im})
	if trackCost >= reinitCost {
		t.Fatalf("tracking windows (%d) should be cheaper than reinit (%d)",
			trackCost, reinitCost)
	}
}

func TestTriangleScaleDegenerate(t *testing.T) {
	if triangleScale(nil) != 16 {
		t.Fatal("nil group default")
	}
	g := []Mark{{CX: 10}, {CX: 10}, {CX: 11}}
	if triangleScale(sortTriangle(g)) != 4 {
		t.Fatal("minimum scale clamp")
	}
}
