package skel

import (
	"runtime"
	"sync"
)

// Pool is a set of persistent worker goroutines that skeleton invocations
// dispatch their compute processes onto. The seed implementation spawned n
// fresh goroutines (plus their channels) on every SCMPar/DFPar/TFPar call;
// on a per-frame hot path that setup cost dominates small skeleton bodies.
// A Pool amortizes it: workers are created once and reused across frames.
//
// The pool uses direct handoff, not queueing: a submitted task is either
// picked up immediately by an idle persistent worker or run on a fresh
// goroutine. This preserves the operational semantics of the skeletons —
// a df with n outstanding packets really has n concurrently running
// compute processes (some tests and user functions rely on that, e.g.
// rendezvous between workers) — and makes nested skeleton calls on the
// same pool deadlock-free by construction. In steady state (frame loop
// with idle workers between frames) no goroutine is ever spawned.
//
// Go does not allow generic methods, so the skeleton entry points over a
// pool are the package-level generic functions SCMOn, DFOn and TFOn; the
// historical one-shot SCMPar/DFPar/TFPar are thin wrappers over a shared
// package-level pool.
type Pool struct {
	jobs   chan func()
	wg     sync.WaitGroup
	size   int
	mu     sync.Mutex
	closed bool
}

// NewPool starts n persistent workers. n < 1 is clamped to 1.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{jobs: make(chan func()), size: n}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p
}

// Size returns the number of persistent workers.
func (p *Pool) Size() int { return p.size }

// Go submits f for execution: an idle persistent worker picks it up
// immediately, or a fresh goroutine is spawned (overflow). f always runs;
// Go never blocks on pool capacity.
func (p *Pool) Go(f func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		go f()
		return
	}
	select {
	case p.jobs <- f:
		p.mu.Unlock()
		return
	default:
	}
	p.mu.Unlock()
	go f()
}

// Close shuts the persistent workers down after their current task. Tasks
// submitted after Close still run (on fresh goroutines), so in-flight
// skeleton invocations complete correctly.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}

// shared is the process-wide pool backing the one-shot SCMPar/DFPar/TFPar
// wrappers. It is sized to the host parallelism and never closed.
var (
	sharedOnce sync.Once
	sharedPool *Pool
)

func shared() *Pool {
	sharedOnce.Do(func() { sharedPool = NewPool(runtime.GOMAXPROCS(0)) })
	return sharedPool
}

// Shared returns the process-wide pool (sized to GOMAXPROCS, never closed).
// It is the dispatch target for library-internal data parallelism that
// should share workers with the skeletons instead of spawning its own —
// the vision layer's row-band kernel tiles ride on it.
func Shared() *Pool { return shared() }

// ---------------------------------------------------------------------------
// Skeletons over a pool. These carry the operational semantics of the paper
// (degree of parallelism n, demand-driven dispatch, arrival-order
// accumulation for df/tf) but borrow workers from p instead of spawning.

// SCMOn is SCMPar's process network run on pool p: sub-domains are fanned
// out to at most n concurrent compute processes and merged positionally.
func SCMOn[A, B, C, D any](p *Pool, n int, split func(A) []B, comp func(B) C, merge func([]C) D, x A) D {
	if n < 1 {
		n = 1
	}
	parts := split(x)
	results := make([]C, len(parts))
	if len(parts) == 0 {
		return merge(results)
	}
	if n > len(parts) {
		n = len(parts)
	}
	done := make(chan struct{}, n)
	next := 0
	dispatch := func(i int) {
		p.Go(func() {
			results[i] = comp(parts[i])
			done <- struct{}{}
		})
	}
	for ; next < n; next++ {
		dispatch(next)
	}
	for c := 0; c < len(parts); c++ {
		<-done
		if next < len(parts) {
			dispatch(next)
			next++
		}
	}
	return merge(results)
}

// DFOn is DFPar's master/worker protocol run on pool p: at most n packets
// are outstanding at any time (demand-driven dispatch) and partial results
// are accumulated in arrival order — hence the usual commutativity and
// associativity requirement on acc. With n = 1 the accumulation is
// deterministic (serial FIFO), matching DFSeq exactly.
func DFOn[A, B, C any](p *Pool, n int, comp func(A) B, acc func(C, B) C, z C, xs []A) C {
	if n < 1 {
		n = 1
	}
	if len(xs) == 0 {
		return z
	}
	if n > len(xs) {
		n = len(xs)
	}
	results := make(chan B, n)
	next := 0
	dispatch := func(x A) {
		p.Go(func() { results <- comp(x) })
	}
	for ; next < n; next++ {
		dispatch(xs[next])
	}
	r := z
	for c := 0; c < len(xs); c++ {
		r = acc(r, <-results)
		if next < len(xs) {
			dispatch(xs[next])
			next++
		}
	}
	return r
}

// TFOn is TFPar's task-farm protocol run on pool p: worker-generated
// packets flow back to the master, which keeps at most n packets
// outstanding and terminates when the task counter reaches zero.
func TFOn[A, B, C any](p *Pool, n int, work func(A) ([]B, []A), acc func(C, B) C, z C, xs []A) C {
	if n < 1 {
		n = 1
	}
	if len(xs) == 0 {
		return z
	}
	type reply struct {
		ys   []B
		more []A
	}
	replies := make(chan reply, n)
	pending := make([]A, len(xs))
	copy(pending, xs)
	head := 0 // consumed prefix of pending (avoids [1:] reslicing retention)
	inflight := 0
	r := z
	for head < len(pending) || inflight > 0 {
		for inflight < n && head < len(pending) {
			x := pending[head]
			head++
			p.Go(func() {
				ys, more := work(x)
				replies <- reply{ys, more}
			})
			inflight++
		}
		if head == len(pending) {
			// Fully consumed: reset so feedback appends reuse the array.
			pending = pending[:0]
			head = 0
		}
		rep := <-replies
		inflight--
		for _, y := range rep.ys {
			r = acc(r, y)
		}
		pending = append(pending, rep.more...)
	}
	return r
}
