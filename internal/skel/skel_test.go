package skel

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// --- scm -------------------------------------------------------------------

func splitChunks(k int) func([]int) [][]int {
	return func(xs []int) [][]int {
		if k < 1 {
			k = 1
		}
		var out [][]int
		for i := 0; i < k; i++ {
			lo, hi := i*len(xs)/k, (i+1)*len(xs)/k
			out = append(out, xs[lo:hi])
		}
		return out
	}
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestSCMSeqSumsChunks(t *testing.T) {
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	got := SCMSeq(4, splitChunks(3), sum, sum, xs)
	if got != 28 {
		t.Fatalf("got %d, want 28", got)
	}
}

func TestSCMParMatchesSeq(t *testing.T) {
	f := func(seed int64, n uint8, k uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]int, rng.Intn(50))
		for i := range xs {
			xs[i] = rng.Intn(1000)
		}
		workers := int(n%8) + 1
		chunks := int(k%10) + 1
		seq := SCMSeq(workers, splitChunks(chunks), sum, sum, xs)
		par := SCMPar(workers, splitChunks(chunks), sum, sum, xs)
		return seq == par
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSCMParPreservesOrder(t *testing.T) {
	// Non-commutative merge (string concat by index) must still be correct:
	// scm's merge is positional.
	split := func(s string) []byte { return []byte(s) }
	comp := func(b byte) string { return string([]byte{b, b}) }
	merge := func(ss []string) string {
		out := ""
		for _, s := range ss {
			out += s
		}
		return out
	}
	for trial := 0; trial < 50; trial++ {
		got := SCMPar(4, split, comp, merge, "abcdef")
		if got != "aabbccddeeff" {
			t.Fatalf("order broken: %q", got)
		}
	}
}

func TestSCMParZeroWorkers(t *testing.T) {
	got := SCMPar(0, splitChunks(2), sum, sum, []int{1, 2, 3})
	if got != 6 {
		t.Fatalf("n=0 should clamp to 1, got %d", got)
	}
}

func TestSCMEmptyInput(t *testing.T) {
	if got := SCMPar(3, splitChunks(2), sum, sum, nil); got != 0 {
		t.Fatalf("empty scm = %d", got)
	}
}

// --- df ---------------------------------------------------------------------

func TestDFSeqIsFoldOfMap(t *testing.T) {
	xs := []int{3, 1, 4, 1, 5}
	got := DFSeq(8, func(x int) int { return x * x }, func(a, b int) int { return a + b }, 0, xs)
	if got != 9+1+16+1+25 {
		t.Fatalf("got %d", got)
	}
}

func TestDFParMatchesSeqCommutative(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]int, rng.Intn(80))
		for i := range xs {
			xs[i] = rng.Intn(100) - 50
		}
		workers := int(n%16) + 1
		comp := func(x int) int { return 2*x + 1 }
		acc := func(a, b int) int { return a + b } // commutative + associative
		return DFSeq(workers, comp, acc, 7, xs) == DFPar(workers, comp, acc, 7, xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDFParCollectsAllResultsAnyOrder(t *testing.T) {
	// Accumulate into a multiset (sorted slice) — order-independent check
	// that every element was processed exactly once.
	xs := make([]int, 200)
	for i := range xs {
		xs[i] = i
	}
	acc := func(a []int, b int) []int { return append(a, b) }
	got := DFPar(7, func(x int) int { return x }, acc, nil, xs)
	sort.Ints(got)
	if len(got) != 200 {
		t.Fatalf("got %d results", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("result set corrupted at %d: %d", i, v)
		}
	}
}

func TestDFParEmptyInputReturnsZ(t *testing.T) {
	got := DFPar(4, func(x int) int { return x }, func(a, b int) int { return a + b }, 99, nil)
	if got != 99 {
		t.Fatalf("got %d, want z=99", got)
	}
}

func TestDFParActuallyUsesMultipleWorkers(t *testing.T) {
	// With n workers and a rendezvous barrier inside comp, progress is only
	// possible if at least 2 workers run concurrently.
	barrier := make(chan struct{})
	comp := func(x int) int {
		select {
		case barrier <- struct{}{}:
		case <-barrier:
		}
		return x
	}
	acc := func(a, b int) int { return a + b }
	got := DFPar(2, comp, acc, 0, []int{1, 2, 3, 4})
	if got != 10 {
		t.Fatalf("got %d", got)
	}
}

// --- tf ---------------------------------------------------------------------

// splitRange recursively splits [lo,hi) ranges until small, then emits their
// sums — a miniature divide-and-conquer workload.
func splitRange(x [2]int) ([]int, [][2]int) {
	lo, hi := x[0], x[1]
	if hi-lo <= 3 {
		s := 0
		for i := lo; i < hi; i++ {
			s += i
		}
		return []int{s}, nil
	}
	mid := (lo + hi) / 2
	return nil, [][2]int{{lo, mid}, {mid, hi}}
}

func TestTFSeqDivideAndConquer(t *testing.T) {
	got := TFSeq(4, splitRange, func(a, b int) int { return a + b }, 0, [][2]int{{0, 100}})
	if got != 4950 {
		t.Fatalf("got %d, want 4950", got)
	}
}

func TestTFParMatchesSeq(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		hi := rng.Intn(500)
		workers := int(n%8) + 1
		acc := func(a, b int) int { return a + b }
		seq := TFSeq(workers, splitRange, acc, 0, [][2]int{{0, hi}})
		par := TFPar(workers, splitRange, acc, 0, [][2]int{{0, hi}})
		return seq == par
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTFParEmptyInput(t *testing.T) {
	got := TFPar(3, splitRange, func(a, b int) int { return a + b }, 11, nil)
	if got != 11 {
		t.Fatalf("got %d, want 11", got)
	}
}

func TestTFParTerminatesWhenWorkersGenerateNothing(t *testing.T) {
	work := func(x int) ([]int, []int) { return []int{x}, nil }
	got := TFPar(4, work, func(a, b int) int { return a + b }, 0, []int{1, 2, 3})
	if got != 6 {
		t.Fatalf("got %d", got)
	}
}

func TestTFWorkerCountInvariant(t *testing.T) {
	// Every generated packet must be processed exactly once.
	var processed int64
	work := func(x int) ([]int, []int) {
		atomic.AddInt64(&processed, 1)
		if x > 0 {
			return nil, []int{x - 1, x - 1}
		}
		return []int{1}, nil
	}
	// x=3 spawns a full binary tree of depth 3: 2^4 - 1 = 15 nodes.
	got := TFPar(5, work, func(a, b int) int { return a + b }, 0, []int{3})
	if got != 8 { // 2^3 leaves
		t.Fatalf("leaf count = %d, want 8", got)
	}
	if processed != 15 {
		t.Fatalf("processed %d packets, want 15", processed)
	}
}

// --- itermem -----------------------------------------------------------------

func TestIterMemThreadsState(t *testing.T) {
	// State is a counter; loop adds the input to it; output records values.
	var outs []int
	z := IterMem(
		func(x int) int { return x },
		func(z, b int) (int, int) { return z + b, z + b },
		func(y int) bool { outs = append(outs, y); return true },
		0, 5, 4)
	if z != 20 {
		t.Fatalf("final state %d, want 20", z)
	}
	want := []int{5, 10, 15, 20}
	for i := range want {
		if outs[i] != want[i] {
			t.Fatalf("outs = %v", outs)
		}
	}
}

func TestIterMemEarlyStop(t *testing.T) {
	n := 0
	IterMem(
		func(x int) int { return x },
		func(z, b int) (int, int) { n++; return z, 0 },
		func(int) bool { return n < 3 },
		0, 1, 1000)
	if n != 3 {
		t.Fatalf("loop ran %d times, want 3", n)
	}
}

func TestIterMemPipeMatchesSeq(t *testing.T) {
	run := func(im func(func(int) int, func(int, int) (int, int), func(int) bool, int, int, int) int) (int, []int) {
		var outs []int
		z := im(
			func(x int) int { return x + 1 },
			func(z, b int) (int, int) { return z*2 + b, z },
			func(y int) bool { outs = append(outs, y); return true },
			1, 3, 6)
		return z, outs
	}
	z1, o1 := run(IterMem[int, int, int, int])
	z2, o2 := run(IterMemPipe[int, int, int, int])
	if z1 != z2 {
		t.Fatalf("states differ: %d vs %d", z1, z2)
	}
	if len(o1) != len(o2) {
		t.Fatalf("output lengths differ: %v vs %v", o1, o2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("outputs differ at %d: %v vs %v", i, o1, o2)
		}
	}
}

func TestIterMemPipeEarlyStopTerminates(t *testing.T) {
	count := 0
	IterMemPipe(
		func(x int) int { return x },
		func(z, b int) (int, int) { return z, b },
		func(y int) bool { count++; return count < 2 },
		0, 7, 1_000_000)
	if count < 2 {
		t.Fatalf("output ran %d times", count)
	}
	// Reaching here at all proves the pipeline shut down early.
}

func TestIterMemPipeZeroIters(t *testing.T) {
	z := IterMemPipe(
		func(x int) int { return x },
		func(z, b int) (int, int) { return z + 1, 0 },
		func(int) bool { return true },
		42, 0, 0)
	if z != 42 {
		t.Fatalf("z = %d, want untouched 42", z)
	}
}

// --- cross-skeleton property: df of scm-equivalent workloads ----------------

func TestDFEquivalentToSCMOnUniformChunks(t *testing.T) {
	// For uniform chunking and commutative merge, scm(split,comp,merge) and
	// df over the pre-split list compute the same value.
	xs := make([]int, 64)
	for i := range xs {
		xs[i] = i * 3
	}
	chunks := splitChunks(8)(xs)
	viaSCM := SCMPar(4, splitChunks(8), sum, sum, xs)
	viaDF := DFPar(4, sum, func(a, b int) int { return a + b }, 0, chunks)
	if viaSCM != viaDF {
		t.Fatalf("scm=%d df=%d", viaSCM, viaDF)
	}
}
