package skel

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPoolSCMMatchesSeq(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	f := func(seed int64, n uint8, k uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]int, rng.Intn(50))
		for i := range xs {
			xs[i] = rng.Intn(1000)
		}
		workers := int(n%8) + 1
		chunks := int(k%10) + 1
		return SCMSeq(workers, splitChunks(chunks), sum, sum, xs) ==
			SCMOn(p, workers, splitChunks(chunks), sum, sum, xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolSCMPreservesOrder(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	split := func(s string) []byte { return []byte(s) }
	comp := func(b byte) string { return string([]byte{b, b}) }
	merge := func(ss []string) string {
		out := ""
		for _, s := range ss {
			out += s
		}
		return out
	}
	for trial := 0; trial < 50; trial++ {
		if got := SCMOn(p, 4, split, comp, merge, "abcdef"); got != "aabbccddeeff" {
			t.Fatalf("order broken: %q", got)
		}
	}
}

func TestPoolDFMatchesSeq(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]int, rng.Intn(80))
		for i := range xs {
			xs[i] = rng.Intn(100) - 50
		}
		workers := int(n%16) + 1
		comp := func(x int) int { return 2*x + 1 }
		acc := func(a, b int) int { return a + b }
		return DFSeq(workers, comp, acc, 7, xs) == DFOn(p, workers, comp, acc, 7, xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolDFSerialWhenNIsOne(t *testing.T) {
	// With n=1 accumulation must be serial FIFO, so even a non-commutative
	// accumulator is deterministic — same contract as the seed DFPar.
	p := NewPool(4)
	defer p.Close()
	xs := []int{1, 2, 3, 4, 5}
	acc := func(a []int, b int) []int { return append(a, b) }
	got := DFOn(p, 1, func(x int) int { return x * 10 }, acc, nil, xs)
	want := []int{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("n=1 df not FIFO: %v", got)
		}
	}
}

func TestPoolDFOverflowBeyondPoolSize(t *testing.T) {
	// A rendezvous inside comp requires 2 truly concurrent workers; a pool
	// of size 1 must still make progress via overflow goroutines.
	p := NewPool(1)
	defer p.Close()
	barrier := make(chan struct{})
	comp := func(x int) int {
		select {
		case barrier <- struct{}{}:
		case <-barrier:
		}
		return x
	}
	acc := func(a, b int) int { return a + b }
	if got := DFOn(p, 2, comp, acc, 0, []int{1, 2, 3, 4}); got != 10 {
		t.Fatalf("got %d", got)
	}
}

func TestPoolTFMatchesSeq(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		hi := rng.Intn(500)
		workers := int(n%8) + 1
		acc := func(a, b int) int { return a + b }
		return TFSeq(workers, splitRange, acc, 0, [][2]int{{0, hi}}) ==
			TFOn(p, workers, splitRange, acc, 0, [][2]int{{0, hi}})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolTFProcessesEveryPacketOnce(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var processed int64
	work := func(x int) ([]int, []int) {
		atomic.AddInt64(&processed, 1)
		if x > 0 {
			return nil, []int{x - 1, x - 1}
		}
		return []int{1}, nil
	}
	got := TFOn(p, 5, work, func(a, b int) int { return a + b }, 0, []int{3})
	if got != 8 {
		t.Fatalf("leaf count = %d, want 8", got)
	}
	if processed != 15 {
		t.Fatalf("processed %d packets, want 15", processed)
	}
}

func TestPoolNestedSkeletonsDoNotDeadlock(t *testing.T) {
	// A comp function that itself runs a skeleton on the same pool: direct
	// handoff + overflow makes this safe even on a size-1 pool.
	p := NewPool(1)
	defer p.Close()
	inner := func(x int) int {
		return DFOn(p, 2, func(y int) int { return y * y }, func(a, b int) int { return a + b }, 0, []int{x, x + 1})
	}
	got := DFOn(p, 2, inner, func(a, b int) int { return a + b }, 0, []int{1, 3})
	// inner(1)=1+4=5, inner(3)=9+16=25
	if got != 30 {
		t.Fatalf("got %d, want 30", got)
	}
}

func TestPoolConcurrentCallers(t *testing.T) {
	// Many goroutines sharing one pool: results must stay call-local.
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			xs := make([]int, 100)
			for i := range xs {
				xs[i] = g*1000 + i
			}
			acc := func(a []int, b int) []int { return append(a, b) }
			got := DFOn(p, 3, func(x int) int { return x }, acc, nil, xs)
			sort.Ints(got)
			for i, v := range got {
				if v != g*1000+i {
					errs <- "cross-call contamination"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestPoolCloseIsIdempotentAndTasksAfterCloseRun(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic
	done := make(chan struct{})
	p.Go(func() { close(done) })
	<-done
	// Skeletons still work after Close (overflow goroutines).
	if got := DFOn(p, 2, func(x int) int { return x }, func(a, b int) int { return a + b }, 0, []int{1, 2, 3}); got != 6 {
		t.Fatalf("got %d", got)
	}
}
