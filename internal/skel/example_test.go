package skel_test

import (
	"fmt"

	"skipper/internal/skel"
)

// The paper's declarative df: fold acc over the mapped list.
func ExampleDFSeq() {
	xs := []int{1, 2, 3, 4}
	sum := skel.DFSeq(8,
		func(x int) int { return x * x },
		func(a, b int) int { return a + b },
		0, xs)
	fmt.Println(sum)
	// Output: 30
}

// The operational df: a master dispatching to a pool of goroutine workers.
// The accumulating function must be commutative and associative, because
// accumulation happens in arrival order.
func ExampleDFPar() {
	xs := []int{1, 2, 3, 4, 5}
	sum := skel.DFPar(3,
		func(x int) int { return 2 * x },
		func(a, b int) int { return a + b },
		0, xs)
	fmt.Println(sum)
	// Output: 30
}

// scm: geometric decomposition with a positional (order-preserving) merge.
func ExampleSCMPar() {
	split := func(s string) []byte { return []byte(s) }
	comp := func(b byte) string { return string([]byte{b - 32}) } // upcase
	merge := func(parts []string) string {
		out := ""
		for _, p := range parts {
			out += p
		}
		return out
	}
	fmt.Println(skel.SCMPar(4, split, comp, merge, "skipper"))
	// Output: SKIPPER
}

// tf: divide and conquer; workers generate new packets until ranges are
// small enough to sum directly.
func ExampleTFSeq() {
	work := func(r [2]int) ([]int, [][2]int) {
		lo, hi := r[0], r[1]
		if hi-lo <= 2 {
			s := 0
			for i := lo; i < hi; i++ {
				s += i
			}
			return []int{s}, nil
		}
		mid := (lo + hi) / 2
		return nil, [][2]int{{lo, mid}, {mid, hi}}
	}
	total := skel.TFSeq(4, work, func(a, b int) int { return a + b }, 0, [][2]int{{0, 10}})
	fmt.Println(total)
	// Output: 45
}

// itermem: the stream iterator with inter-iteration memory. The loop
// receives the state from the previous iteration together with the current
// input.
func ExampleIterMem() {
	inp := func(struct{}) int { return 1 }
	loop := func(z, b int) (int, int) { return z + b, z + b }
	out := func(y int) bool { fmt.Println(y); return true }
	skel.IterMem(inp, loop, out, 0, struct{}{}, 3)
	// Output:
	// 1
	// 2
	// 3
}
