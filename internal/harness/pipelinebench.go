package harness

import (
	"fmt"
	"testing"
	"time"

	"skipper/internal/arch"
	"skipper/internal/dsl/parser"
	"skipper/internal/dsl/types"
	"skipper/internal/exec"
	"skipper/internal/expand"
	"skipper/internal/syndex"
	"skipper/internal/value"
)

// Pipelined-itermem benchmark (DESIGN.md §12): an itermem loop whose grab
// stage blocks — the shape of a real camera, where the frame period is
// wait, not compute — feeding a small df farm. Sequentially each frame
// costs grab + farm; software-pipelined, frame k's farm runs during frame
// k+1's grab wait, so the steady-state frame period drops towards
// max(grab, farm). Because the overlapped stage is a blocking wait, the
// speedup is real even on a single-CPU runner.

// pipeBenchGrabDelay is the simulated camera exposure/DMA wait per frame.
const pipeBenchGrabDelay = 200 * time.Microsecond

// pipeBenchSpin tunes the farm's per-window compute so the back end
// roughly balances the grab wait (6 windows per frame).
const pipeBenchSpin = 30_000

const pipeBenchSrc = `
extern grab : unit -> int;;
extern mkwins : int -> int -> int list;;
extern work : int -> int;;
extern fold : int -> int -> int;;
extern post : int -> int * int;;
extern show : int -> unit;;
let loop (s, x) = post (fold s (df 2 work fold 0 (mkwins s x)));;
let main = itermem grab loop show 1 ();;
`

// pipeBenchRegistry binds pipeBenchSrc's externs: a blocking grab, a
// spinning farm worker, and a non-commutative fold (so the benchmark keeps
// exercising the same deterministic path the equivalence tests pin).
func pipeBenchRegistry() *value.Registry {
	frame := 0
	r := value.NewRegistry()
	r.Register(&value.Func{Name: "grab", Sig: "unit -> int", Arity: 1,
		Fn: func([]value.Value) value.Value {
			time.Sleep(pipeBenchGrabDelay)
			frame++
			return frame
		}})
	r.Register(&value.Func{Name: "mkwins", Sig: "int -> int -> int list", Arity: 2,
		Fn: func(a []value.Value) value.Value {
			s, x := a[0].(int), a[1].(int)
			out := make(value.List, 6)
			for i := range out {
				out[i] = s + x*(i+1)
			}
			return out
		}})
	r.Register(&value.Func{Name: "work", Sig: "int -> int", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			x := a[0].(int)
			for i := 0; i < pipeBenchSpin; i++ {
				x += (i*i ^ x>>3) & 0xff
			}
			return x
		}})
	r.Register(&value.Func{Name: "fold", Sig: "int -> int -> int", Arity: 2,
		Fn: func(a []value.Value) value.Value { return a[0].(int)*31 + a[1].(int) }})
	r.Register(&value.Func{Name: "post", Sig: "int -> int * int", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			m := a[0].(int)
			return value.Tuple{m % 1_000_003, m}
		}})
	r.Register(&value.Func{Name: "show", Sig: "int -> unit", Arity: 1,
		Fn: func([]value.Value) value.Value { return value.Unit{} }})
	return r
}

// compilePipeBench maps the benchmark program on a 2-processor ring with a
// fresh registry (the grab counter is per-machine state).
func compilePipeBench() (*syndex.Schedule, *value.Registry, error) {
	r := pipeBenchRegistry()
	prog, err := parser.Parse(pipeBenchSrc)
	if err != nil {
		return nil, nil, err
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, nil, err
	}
	eres, err := expand.Expand(prog, info, r)
	if err != nil {
		return nil, nil, err
	}
	s, err := syndex.Map(eres.Graph, arch.Ring(2), r, syndex.Structured)
	if err != nil {
		return nil, nil, err
	}
	return s, r, nil
}

// BenchItermemPipelined measures the steady-state frame period of the
// blocking-grab itermem loop with the software pipeline off or on: one
// Run of b.N frames, so ns/op is the per-frame period including fill and
// drain.
func BenchItermemPipelined(b *testing.B, pipeline bool) {
	s, r, err := compilePipeBench()
	if err != nil {
		b.Fatal(err)
	}
	m := exec.NewMachine(s, r)
	m.DeterministicFarm = true
	m.Pipeline = pipeline
	b.ResetTimer()
	res, err := m.Run(b.N)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Outputs) != b.N || res.Outputs[b.N-1] == nil {
		b.Fatal("benchmark run lost outputs")
	}
}

// VerifyItermemPipelineSpeedup runs both modes over a fixed frame count
// and returns (sequential, pipelined) per-frame periods — the tier-1
// guard's handle on the pipeline actually overlapping.
func VerifyItermemPipelineSpeedup(frames int) (seq, pip time.Duration, err error) {
	runOne := func(pipeline bool) (time.Duration, error) {
		s, r, cerr := compilePipeBench()
		if cerr != nil {
			return 0, cerr
		}
		m := exec.NewMachine(s, r)
		m.DeterministicFarm = true
		m.Pipeline = pipeline
		t0 := time.Now()
		if _, rerr := m.Run(frames); rerr != nil {
			return 0, rerr
		}
		return time.Since(t0) / time.Duration(frames), nil
	}
	if seq, err = runOne(false); err != nil {
		return 0, 0, fmt.Errorf("harness: sequential itermem run: %w", err)
	}
	if pip, err = runOne(true); err != nil {
		return 0, 0, fmt.Errorf("harness: pipelined itermem run: %w", err)
	}
	return seq, pip, nil
}
