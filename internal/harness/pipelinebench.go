package harness

import (
	"fmt"
	"testing"
	"time"

	"skipper/internal/arch"
	"skipper/internal/dsl/parser"
	"skipper/internal/dsl/types"
	"skipper/internal/exec"
	"skipper/internal/expand"
	"skipper/internal/syndex"
	"skipper/internal/value"
)

// Pipelined-itermem benchmark (DESIGN.md §12): an itermem loop whose grab
// stage blocks — the shape of a real camera, where the frame period is
// wait, not compute — feeding a small df farm. Sequentially each frame
// costs grab + farm; software-pipelined, frame k's farm runs during frame
// k+1's grab wait, so the steady-state frame period drops towards
// max(grab, farm). Because the overlapped stage is a blocking wait, the
// speedup is real even on a single-CPU runner.

// pipeBenchGrabDelay is the simulated camera exposure/DMA wait per frame.
const pipeBenchGrabDelay = 200 * time.Microsecond

// pipeBenchSpin tunes the farm's per-window compute so the back end
// roughly balances the grab wait (6 windows per frame).
const pipeBenchSpin = 30_000

const pipeBenchSrc = `
extern grab : unit -> int;;
extern mkwins : int -> int -> int list;;
extern work : int -> int;;
extern fold : int -> int -> int;;
extern post : int -> int * int;;
extern show : int -> unit;;
let loop (s, x) = post (fold s (df 2 work fold 0 (mkwins s x)));;
let main = itermem grab loop show 1 ();;
`

// pipeBenchRegistry binds pipeBenchSrc's externs: a blocking grab, a
// spinning farm worker, and a non-commutative fold (so the benchmark keeps
// exercising the same deterministic path the equivalence tests pin).
func pipeBenchRegistry() *value.Registry {
	frame := 0
	r := value.NewRegistry()
	r.Register(&value.Func{Name: "grab", Sig: "unit -> int", Arity: 1,
		Fn: func([]value.Value) value.Value {
			time.Sleep(pipeBenchGrabDelay)
			frame++
			return frame
		}})
	r.Register(&value.Func{Name: "mkwins", Sig: "int -> int -> int list", Arity: 2,
		Fn: func(a []value.Value) value.Value {
			s, x := a[0].(int), a[1].(int)
			out := make(value.List, 6)
			for i := range out {
				out[i] = s + x*(i+1)
			}
			return out
		}})
	r.Register(&value.Func{Name: "work", Sig: "int -> int", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			x := a[0].(int)
			for i := 0; i < pipeBenchSpin; i++ {
				x += (i*i ^ x>>3) & 0xff
			}
			return x
		}})
	r.Register(&value.Func{Name: "fold", Sig: "int -> int -> int", Arity: 2,
		Fn: func(a []value.Value) value.Value { return a[0].(int)*31 + a[1].(int) }})
	r.Register(&value.Func{Name: "post", Sig: "int -> int * int", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			m := a[0].(int)
			return value.Tuple{m % 1_000_003, m}
		}})
	r.Register(&value.Func{Name: "show", Sig: "int -> unit", Arity: 1,
		Fn: func([]value.Value) value.Value { return value.Unit{} }})
	return r
}

// compilePipeBench maps the benchmark program on a 2-processor ring with a
// fresh registry (the grab counter is per-machine state).
func compilePipeBench() (*syndex.Schedule, *value.Registry, error) {
	r := pipeBenchRegistry()
	prog, err := parser.Parse(pipeBenchSrc)
	if err != nil {
		return nil, nil, err
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, nil, err
	}
	eres, err := expand.Expand(prog, info, r)
	if err != nil {
		return nil, nil, err
	}
	s, err := syndex.Map(eres.Graph, arch.Ring(2), r, syndex.Structured)
	if err != nil {
		return nil, nil, err
	}
	return s, r, nil
}

// BenchItermemPipelined measures the steady-state frame period of the
// blocking-grab itermem loop with the software pipeline off or on: one
// Run of b.N frames, so ns/op is the per-frame period including fill and
// drain.
func BenchItermemPipelined(b *testing.B, pipeline bool) {
	s, r, err := compilePipeBench()
	if err != nil {
		b.Fatal(err)
	}
	m := exec.NewMachine(s, r)
	m.DeterministicFarm = true
	m.Pipeline = pipeline
	b.ResetTimer()
	res, err := m.Run(b.N)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Outputs) != b.N || res.Outputs[b.N-1] == nil {
		b.Fatal("benchmark run lost outputs")
	}
}

// Deep-pipeline benchmark: three farms chained inside the itermem loop,
// every stage a blocking wait (sleeping workers — the shape of staged I/O
// or accelerator offload, where the frame period is latency, not compute).
// With the historical two-stage split the whole three-farm chain shares one
// back-end stage, so the period floors at the chain's total latency; cut at
// every master boundary, consecutive frames occupy consecutive farms and
// the period drops towards the slowest single stage. Sleep-based stages
// make that delta real even on a single-CPU runner.

// deepPipeGrabDelay is the simulated camera wait; deepPipeWorkDelay the
// per-window stage latency (4 windows over 2 workers = 2 serial batches,
// so each farm stage costs ~2×deepPipeWorkDelay per frame).
const (
	deepPipeGrabDelay = 200 * time.Microsecond
	deepPipeWorkDelay = 60 * time.Microsecond
)

// The state s is consumed only by the final fold — the shape of a tracking
// loop whose per-frame chain is pure and whose history enters at the very
// end. The executive sinks the MEM read to that last stage, so the
// cross-frame serialization point covers only the final fold, not the farm
// chain.
const deepPipeBenchSrc = `
extern grab : unit -> int;;
extern mkwins : int -> int -> int list;;
extern work : int -> int;;
extern fold : int -> int -> int;;
extern post : int -> int * int;;
extern show : int -> unit;;
let loop (s, x) = post (fold s (df 2 work fold 0 (mkwins (df 2 work fold 0 (mkwins (df 2 work fold 0 (mkwins x x)) x)) x)));;
let main = itermem grab loop show 1 ();;
`

// deepPipeRegistry binds deepPipeBenchSrc's externs with latency-bound
// stages: a blocking grab and sleeping farm workers.
func deepPipeRegistry() *value.Registry {
	frame := 0
	r := value.NewRegistry()
	r.Register(&value.Func{Name: "grab", Sig: "unit -> int", Arity: 1,
		Fn: func([]value.Value) value.Value {
			time.Sleep(deepPipeGrabDelay)
			frame++
			return frame
		}})
	r.Register(&value.Func{Name: "mkwins", Sig: "int -> int -> int list", Arity: 2,
		Fn: func(a []value.Value) value.Value {
			s, x := a[0].(int), a[1].(int)
			out := make(value.List, 4)
			for i := range out {
				out[i] = s + x*(i+1)
			}
			return out
		}})
	r.Register(&value.Func{Name: "work", Sig: "int -> int", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			time.Sleep(deepPipeWorkDelay)
			return a[0].(int)*7 + 3
		}})
	r.Register(&value.Func{Name: "fold", Sig: "int -> int -> int", Arity: 2,
		Fn: func(a []value.Value) value.Value { return a[0].(int)*31 + a[1].(int) }})
	r.Register(&value.Func{Name: "post", Sig: "int -> int * int", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			m := a[0].(int)
			return value.Tuple{m % 1_000_003, m}
		}})
	r.Register(&value.Func{Name: "show", Sig: "int -> unit", Arity: 1,
		Fn: func([]value.Value) value.Value { return value.Unit{} }})
	return r
}

func compileDeepPipeBench() (*syndex.Schedule, *value.Registry, error) {
	r := deepPipeRegistry()
	prog, err := parser.Parse(deepPipeBenchSrc)
	if err != nil {
		return nil, nil, err
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, nil, err
	}
	eres, err := expand.Expand(prog, info, r)
	if err != nil {
		return nil, nil, err
	}
	s, err := syndex.Map(eres.Graph, arch.Ring(2), r, syndex.Structured)
	if err != nil {
		return nil, nil, err
	}
	return s, r, nil
}

// BenchItermemDepth measures the steady-state frame period of the
// three-farm itermem loop at the given pipeline depth cap (0 = cut at
// every master boundary).
func BenchItermemDepth(b *testing.B, depth int) {
	s, r, err := compileDeepPipeBench()
	if err != nil {
		b.Fatal(err)
	}
	m := exec.NewMachine(s, r)
	m.DeterministicFarm = true
	m.Pipeline = true
	m.PipelineDepth = depth
	b.ResetTimer()
	res, err := m.Run(b.N)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Outputs) != b.N || res.Outputs[b.N-1] == nil {
		b.Fatal("benchmark run lost outputs")
	}
}

// VerifyItermemDepthSpeedup runs the three-farm loop at depth 2 and at full
// depth over a fixed frame count and returns the per-frame periods — the
// tier-1 guard's handle on the deeper cut actually overlapping.
func VerifyItermemDepthSpeedup(frames int) (depth2, full time.Duration, err error) {
	runOne := func(depth int) (time.Duration, error) {
		s, r, cerr := compileDeepPipeBench()
		if cerr != nil {
			return 0, cerr
		}
		m := exec.NewMachine(s, r)
		m.DeterministicFarm = true
		m.Pipeline = true
		m.PipelineDepth = depth
		t0 := time.Now()
		if _, rerr := m.Run(frames); rerr != nil {
			return 0, rerr
		}
		return time.Since(t0) / time.Duration(frames), nil
	}
	if depth2, err = runOne(2); err != nil {
		return 0, 0, fmt.Errorf("harness: depth-2 itermem run: %w", err)
	}
	if full, err = runOne(0); err != nil {
		return 0, 0, fmt.Errorf("harness: full-depth itermem run: %w", err)
	}
	return depth2, full, nil
}

// VerifyItermemPipelineSpeedup runs both modes over a fixed frame count
// and returns (sequential, pipelined) per-frame periods — the tier-1
// guard's handle on the pipeline actually overlapping.
func VerifyItermemPipelineSpeedup(frames int) (seq, pip time.Duration, err error) {
	runOne := func(pipeline bool) (time.Duration, error) {
		s, r, cerr := compilePipeBench()
		if cerr != nil {
			return 0, cerr
		}
		m := exec.NewMachine(s, r)
		m.DeterministicFarm = true
		m.Pipeline = pipeline
		t0 := time.Now()
		if _, rerr := m.Run(frames); rerr != nil {
			return 0, rerr
		}
		return time.Since(t0) / time.Duration(frames), nil
	}
	if seq, err = runOne(false); err != nil {
		return 0, 0, fmt.Errorf("harness: sequential itermem run: %w", err)
	}
	if pip, err = runOne(true); err != nil {
		return 0, 0, fmt.Errorf("harness: pipelined itermem run: %w", err)
	}
	return seq, pip, nil
}
