package harness

import (
	"testing"
	"time"

	"skipper/internal/distrib"
	"skipper/internal/serve"
)

// BenchServeJobThroughput measures the control plane's per-job overhead:
// one op is one tiny tracking job travelling the full scheduler path —
// Submit, FIFO queue, dispatch, in-process executive run, terminal status,
// Wait. The deployment itself is deliberately small (3 processors, 48×48
// frames, 2 iterations, ~40µs of executive work) so the figure is
// dominated by what skipper-serve adds around a job, not by the job. The
// envelope guard (bench_guard_test.go) keeps the figure under a generous
// ceiling so scheduler regressions — lock convoys on the server mu,
// lost kicks, per-job goroutine leaks — show up in tier-1.
func BenchServeJobThroughput(b *testing.B, srv *serve.Server) {
	job := distrib.Job{
		Topology: "ring", Procs: 3,
		Width: 48, Height: 48,
		Vehicles: 1, Seed: 1, Iters: 2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := srv.Submit(job)
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.Wait(id, 30*time.Second); err != nil {
			b.Fatal(err)
		}
		view, ok := srv.Job(id)
		if !ok {
			b.Fatalf("job %s vanished", id)
		}
		if view.Status != serve.StatusDone {
			b.Fatalf("job %s finished %s (%s)", id, view.Status, view.Error)
		}
	}
}

// NewBenchServer builds the in-process control plane BenchServeJobThroughput
// drives: no fleet listener, no workers, jobs run on the in-process
// executive so the benchmark isolates scheduler overhead from transport
// cost (Transport_* round trips already price the latter).
func NewBenchServer() (*serve.Server, error) {
	return serve.New(serve.Config{
		InProcess:  true,
		MaxRunning: 1,
		QueueLimit: 4,
		JobTimeout: 30 * time.Second,
	})
}
