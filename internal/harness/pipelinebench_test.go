package harness

import "testing"

// TestPipelinedItermemSpeedup is the live counterpart of the BENCH_5 guard:
// on the blocking-grab benchmark the software-pipelined executive must
// sustain at least 1.3× the sequential frame rate (measured ~5× on a
// single-CPU runner — the farm computes inside the next frame's grab wait,
// see DESIGN.md §12). The margin is wide enough to hold under -race.
func TestPipelinedItermemSpeedup(t *testing.T) {
	const frames = 40
	seq, pip, err := VerifyItermemPipelineSpeedup(frames)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("per-frame period: sequential %v, pipelined %v (%.2fx)",
		seq, pip, float64(seq)/float64(pip))
	if float64(pip) > float64(seq)/1.3 {
		t.Fatalf("pipelined itermem period %v vs sequential %v; want >= 1.3x speedup", pip, seq)
	}
}
