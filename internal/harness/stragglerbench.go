package harness

import (
	"fmt"
	"testing"
	"time"

	"skipper/internal/arch"
	"skipper/internal/dsl/parser"
	"skipper/internal/dsl/types"
	"skipper/internal/exec"
	"skipper/internal/exec/faulttransport"
	"skipper/internal/exec/memtransport"
	"skipper/internal/expand"
	"skipper/internal/syndex"
	"skipper/internal/value"
)

// Straggler-fleet benchmark (DESIGN.md §16): a df farm on a ring(8) where
// one worker's replies are scripted an order of magnitude slower than the
// straggler threshold — slow compute as the cluster sees it, not a death.
// With speculation off the farm's fold gates on the straggler every
// iteration, so the frame period floors at its delay; with speculation on
// the master duplicates the stalled task onto an idle worker after
// stragglerSpecAfter and folds the duplicate's reply, so the period drops
// towards the healthy farm's. The off/on ratio is the measured speculation
// speedup the checkSpeculation guard in bench_guard_test.go keeps honest.

// stragglerSlowFor is the scripted straggler's per-reply delay — 10x the
// speculation threshold, so the duplicate always wins the race.
const stragglerSlowFor = 10 * time.Millisecond

// stragglerSpecAfter is the "on" arm's speculation threshold. The healthy
// workers answer in microseconds, so an idle target always exists by the
// time it fires.
const stragglerSpecAfter = 1 * time.Millisecond

const stragglerSrc = `
extern source : int -> int list;;
extern square : int -> int;;
extern add : int -> int -> int;;
let main = df 4 square add 0 (source 10);;
`

// sum of squares 1..10.
const stragglerWant = 385

func stragglerRegistry() *value.Registry {
	r := value.NewRegistry()
	r.Register(&value.Func{Name: "source", Sig: "int -> int list", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			n := a[0].(int)
			out := make(value.List, n)
			for i := range out {
				out[i] = i + 1
			}
			return out
		}})
	r.Register(&value.Func{Name: "square", Sig: "int -> int", Arity: 1,
		Fn: func(a []value.Value) value.Value { x := a[0].(int); return x * x }})
	r.Register(&value.Func{Name: "add", Sig: "int -> int -> int", Arity: 2,
		Fn: func(a []value.Value) value.Value { return a[0].(int) + a[1].(int) }})
	return r
}

// compileStragglerBench maps the farm on a ring(8) and picks the victim:
// the first processor whose program is all farm-worker ops, so slowing it
// stalls tasks without touching the master or the data path.
func compileStragglerBench() (*syndex.Schedule, *value.Registry, arch.ProcID, error) {
	r := stragglerRegistry()
	prog, err := parser.Parse(stragglerSrc)
	if err != nil {
		return nil, nil, 0, err
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, nil, 0, err
	}
	eres, err := expand.Expand(prog, info, r)
	if err != nil {
		return nil, nil, 0, err
	}
	s, err := syndex.Map(eres.Graph, arch.Ring(8), r, syndex.Structured)
	if err != nil {
		return nil, nil, 0, err
	}
	for p, pr := range s.Programs {
		if len(pr) == 0 {
			continue
		}
		all := true
		for _, op := range pr {
			if op.Kind != syndex.OpWorker {
				all = false
				break
			}
		}
		if all {
			return s, r, arch.ProcID(p), nil
		}
	}
	return nil, nil, 0, fmt.Errorf("harness: straggler schedule maps no worker-only processor")
}

// BenchStragglerFarm measures the per-iteration period of the straggler
// farm with speculation off or on: one Run of b.N iterations, fault
// tolerance armed identically in both arms (MaxRetries 1, no deadline) so
// the delta is speculation alone, not the FT master's bookkeeping.
func BenchStragglerFarm(b *testing.B, speculate bool) {
	s, r, victim, err := compileStragglerBench()
	if err != nil {
		b.Fatal(err)
	}
	a := arch.Ring(8)
	ft := faulttransport.New(memtransport.New(a), faulttransport.Config{
		Faults: map[arch.ProcID]faulttransport.Fault{
			victim: {SlowEveryNth: 1, SlowFor: stragglerSlowFor},
		},
	})
	defer ft.Close()
	procs := make([]arch.ProcID, a.N)
	for i := range procs {
		procs[i] = arch.ProcID(i)
	}
	m := exec.NewMachineOn(s, r, ft, procs)
	spec := stragglerSpecAfter
	if !speculate {
		spec = -1
	}
	m.FT = exec.FaultTolerance{MaxRetries: 1, SpeculateAfter: spec}
	b.ResetTimer()
	res, err := m.Run(b.N)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	for i, out := range res.Outputs {
		if out != stragglerWant {
			b.Fatalf("iteration %d output = %v, want %d (must be bit-identical to a healthy run)",
				i, out, stragglerWant)
		}
	}
	if speculate && res.Speculations < int64(b.N) {
		b.Fatalf("Speculations = %d over %d iterations, want one per iteration", res.Speculations, b.N)
	}
	if !speculate && res.Speculations != 0 {
		b.Fatalf("Speculations = %d with speculation disabled, want 0", res.Speculations)
	}
}
