package harness

import (
	"testing"

	"skipper/internal/vision"
)

// TestReplyWindowsRecycleThroughArenaOverTCP pins the coordinator-side
// recycling contract: on a real socket transport every task and reply
// window is decoded into a fresh arena image, and both the worker (task
// side) and the master (merge side) must hand their decoded copy back via
// Payload.Recycle — otherwise each round trip leaks a 32KB pixel buffer to
// the GC. The arena's hit/miss counters make the contract observable: with
// recycling in place, a warmed-up run of N trips performs 2N decodes that
// are (almost) all pool hits.
func TestReplyWindowsRecycleThroughArenaOverTCP(t *testing.T) {
	pair, err := NewTransportPair("tcp")
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()

	payload := BenchWindowPayload()
	if payload.Recycle == nil {
		t.Fatal("BenchWindowPayload must recycle decoded windows into the arena")
	}

	// Warm-up: the first decodes on each side may miss (fresh buffers);
	// their recycles seed the pool for the measured window.
	if err := FarmRoundTrips(pair, payload, 8); err != nil {
		t.Fatal(err)
	}

	h0, m0 := vision.ArenaStats()
	const trips = 96
	if err := FarmRoundTrips(pair, payload, trips); err != nil {
		t.Fatal(err)
	}
	h1, m1 := vision.ArenaStats()
	hits, misses := h1-h0, m1-m0

	// Exactly two window decodes per trip: the worker decoding the task and
	// the master decoding the reply. Anything less means a decode bypassed
	// the arena; anything more means untracked traffic polluted the window.
	if total := hits + misses; total != 2*trips {
		t.Fatalf("expected %d arena requests for %d round trips, counted %d (hits %d, misses %d)",
			2*trips, trips, total, hits, misses)
	}
	// Steady state must be pool reuse. sync.Pool may drop entries under GC
	// pressure, so allow a small miss budget rather than demanding zero.
	if misses > trips/4 {
		t.Fatalf("decoded windows are not being recycled: %d/%d arena requests missed the pool",
			misses, 2*trips)
	}
}
