package harness

import (
	"fmt"
	"testing"
	"time"

	"skipper/internal/arch"
	"skipper/internal/distrib"
	"skipper/internal/exec/memtransport"
	"skipper/internal/exec/nettransport"
	"skipper/internal/exec/transport"
	"skipper/internal/video"
	"skipper/internal/vision"
)

// benchFingerprint is the schedule fingerprint both ends of the benchmark
// pair agree on; the hub only requires that coordinator and client claim
// the same deployment, not any particular value.
const benchFingerprint uint64 = 0x534b6950_62656e63 // "SKiPbenc"

// TransportPair is a two-processor transport set up for the farm
// round-trip benchmark: a master side hosting processor 0 and a worker
// side hosting processor 1. For "mem" both sides are the same in-process
// transport; for "tcp" they are a hub and a client talking over a real
// localhost socket, so every task and reply pays the codec + syscall cost
// a multi-process deployment pays.
type TransportPair struct {
	Master transport.Transport
	Worker transport.Transport
	close  func()
}

// Close tears the pair down (client before hub for the tcp backend).
func (p *TransportPair) Close() { p.close() }

// NewTransportPair builds the benchmark pair for the named backend
// ("mem", "tcp", "unix" or "shm") on a two-processor ring. The pair's
// round trips ride the control connection (processor 0 lives on the hub),
// which on "shm" is exactly the connection the ring upgrade covers — so
// the bench measures the mmap'd slab path, not a socket.
func NewTransportPair(kind string) (*TransportPair, error) {
	a := arch.Ring(2)
	switch kind {
	case "mem":
		tr := memtransport.New(a)
		return &TransportPair{Master: tr, Worker: tr, close: func() { tr.Close() }}, nil
	case "tcp", "unix", "shm":
		listen, cleanup, err := distrib.HubListenAddr(kind)
		if err != nil {
			return nil, err
		}
		hub, err := nettransport.NewHub(listen, a, benchFingerprint, []arch.ProcID{0})
		if err != nil {
			cleanup()
			return nil, err
		}
		var opts []nettransport.Option
		if kind == "shm" {
			opts = append(opts, nettransport.WithDataPlane("shm"))
		}
		cl, err := nettransport.Dial(hub.Addr(), benchFingerprint, []arch.ProcID{1}, 5*time.Second, opts...)
		if err != nil {
			hub.Close()
			cleanup()
			return nil, err
		}
		return &TransportPair{
			Master: hub,
			Worker: cl,
			close:  func() { cl.Close(); hub.Close(); cleanup() },
		}, nil
	}
	return nil, fmt.Errorf("harness: unknown transport %q", kind)
}

// BenchFarmRoundTrip measures one df-farm task/reply round trip over the
// pair: the master on processor 0 sends a task carrying payload to the
// worker on processor 1, which echoes it back as a reply — exactly the
// message pattern OpMaster/OpWorker exchange per window, so the mem-vs-tcp
// delta is the per-window cost of going multi-process.
func BenchFarmRoundTrip(b *testing.B, pair *TransportPair, payload Payload) {
	stop := startEchoWorker(pair, payload)
	replies := pair.Master.Receiver(0, transport.ReplyKey(benchFarm))
	b.ResetTimer()
	err := masterRoundTrips(pair, payload, replies, b.N)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	stop()
}

// FarmRoundTrips drives n task/reply round trips over the pair outside any
// benchmark timer — the shape the arena-recycling test uses to measure
// ArenaStats deltas around a known number of window decodes.
func FarmRoundTrips(pair *TransportPair, payload Payload, n int) error {
	stop := startEchoWorker(pair, payload)
	replies := pair.Master.Receiver(0, transport.ReplyKey(benchFarm))
	err := masterRoundTrips(pair, payload, replies, n)
	stop()
	return err
}

// benchFarm and benchWidx name the single farm/worker slot the round-trip
// loop exercises.
const benchFarm, benchWidx = 0, 0

// startEchoWorker spawns the worker-side echo loop on processor 1 and
// returns a stop function that sends the sentinel and waits for exit.
func startEchoWorker(pair *TransportPair, payload Payload) (stop func()) {
	taskKey := transport.TaskKey(benchFarm, benchWidx)
	replyKey := transport.ReplyKey(benchFarm)
	done := make(chan struct{})
	go func() {
		defer close(done)
		tasks := pair.Worker.Receiver(1, taskKey)
		for {
			v, ok := tasks.Recv()
			if !ok {
				return
			}
			if _, stop := v.(transport.Sentinel); stop {
				return
			}
			tk := v.(transport.Task)
			pair.Worker.Send(1, 0, replyKey, transport.Reply{Widx: benchWidx, Task: tk.Idx, V: tk.V})
			// Send has captured the payload (net backend) or handed the
			// very value onward by reference (mem backend, where Recycle
			// recognises and skips it) — the worker's decoded copy can go
			// back to the frame arena, as any real consumer would do.
			if payload.Recycle != nil {
				payload.Recycle(tk.V)
			}
		}
	}()
	return func() {
		pair.Master.Send(0, 1, taskKey, transport.Sentinel{})
		<-done
	}
}

// masterRoundTrips runs the master-side send/recv loop: n tasks to the
// worker, each reply recycled the way the coordinator's merge consumes and
// releases its window — the master-side Recycle is what keeps decoded reply
// images cycling through the vision arena instead of leaking to the GC.
func masterRoundTrips(pair *TransportPair, payload Payload, replies transport.Receiver, n int) error {
	taskKey := transport.TaskKey(benchFarm, benchWidx)
	for i := 0; i < n; i++ {
		pair.Master.Send(0, 1, taskKey, transport.Task{Idx: i, V: payload.Gen(i)})
		v, ok := replies.Recv()
		if !ok {
			return fmt.Errorf("harness: reply channel aborted mid-round-trip")
		}
		if payload.Recycle != nil {
			payload.Recycle(v.(transport.Reply).V)
		}
	}
	return nil
}

// Payload drives BenchFarmRoundTrip: Gen produces the value shipped per
// task, Recycle (optional) disposes of a received copy the way a real
// consumer would — returning pooled buffers to their arena.
type Payload struct {
	Gen     func(i int) interface{}
	Recycle func(v interface{})
}

// BenchWindowPayload returns a payload shipping the same 512×64 image band
// the ring(8) tracking schedule sends per df window, so the round-trip
// figures reflect real frame traffic rather than scalar echo. Received
// copies are recycled into the frame arena; the generator's own window is
// recognised by pointer (the mem backend delivers it by reference, still
// owned by the generator) and left alone.
func BenchWindowPayload() Payload {
	frame := video.NewScene(512, 512, 3, 1).Next()
	var win vision.Window
	vision.ExtractInto(&win, frame, vision.Rect{X0: 0, Y0: 0, X1: 512, Y1: 64})
	return Payload{
		Gen: func(int) interface{} { return win },
		Recycle: func(v interface{}) {
			if w, ok := v.(vision.Window); ok && w.Img != nil && w.Img != win.Img {
				vision.PutImage(w.Img)
			}
		},
	}
}

// BenchScalarPayload returns a payload shipping one int — the floor cost
// of a round trip with negligible codec work.
func BenchScalarPayload() Payload {
	return Payload{Gen: func(i int) interface{} { return i }}
}
