package harness

import (
	"io"
	"strings"
	"testing"
)

func TestE1ReproducesPaperEnvelope(t *testing.T) {
	var sb strings.Builder
	res, err := E1(&sb, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 30 ms tracking / 110 ms reinit. Shape requirements:
	if res.TrackingMS < 10 || res.TrackingMS > 60 {
		t.Fatalf("tracking %.1f ms outside [10,60]", res.TrackingMS)
	}
	if res.ReinitMS < 60 || res.ReinitMS > 180 {
		t.Fatalf("reinit %.1f ms outside [60,180]", res.ReinitMS)
	}
	if res.ReinitMS < 2*res.TrackingMS {
		t.Fatal("reinit should dominate tracking")
	}
	if !res.EveryFrameInTracking {
		t.Fatal("tracking should process every frame (latency < 40 ms)")
	}
	if !res.OneOfThreeInReinit {
		t.Fatalf("reinit should take ~3 frame periods, got %.1f ms", res.ReinitMS)
	}
	if !strings.Contains(sb.String(), "E1:") {
		t.Fatal("report missing")
	}
}

func TestE2ScalingShape(t *testing.T) {
	rows, err := E2(io.Discard, 20, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Reinit latency decreases with processors (detection dominates).
	for i := 1; i < len(rows); i++ {
		if rows[i].ReinitMS >= rows[i-1].ReinitMS {
			t.Fatalf("reinit not improving: %+v", rows)
		}
	}
	// 8 procs at least 3x better than 1 on the reinit phase.
	if rows[0].ReinitMS/rows[3].ReinitMS < 3 {
		t.Fatalf("weak scaling: %+v", rows)
	}
}

func TestE3SkeletonOverheadSmall(t *testing.T) {
	res, err := E3(io.Discard, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkeletonMS <= 0 || res.HandcraftMS <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	// Paper: performance "similar" to hand-crafted. Allow up to 40%
	// overhead over the *idealized* baseline (which ignores all control).
	if res.OverheadPct > 40 {
		t.Fatalf("skeleton overhead %.1f%% too high", res.OverheadPct)
	}
}

func TestE4AllPathsIdentical(t *testing.T) {
	res, err := E4(io.Discard, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatal("execution paths diverged")
	}
}

func TestE5DynamicBeatsStaticOnSkew(t *testing.T) {
	res, err := E5(io.Discard, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DFWinsOnSkewed {
		t.Fatalf("df should win on skewed loads: %+v", res)
	}
	if res.DFMS >= res.StaticMS {
		t.Fatalf("df %.1f >= static %.1f", res.DFMS, res.StaticMS)
	}
	// On uniform loads the two are close (within 15%).
	if res.TieOnUniformPct > 15 || res.TieOnUniformPct < -15 {
		t.Fatalf("uniform gap %.1f%% too large", res.TieOnUniformPct)
	}
}

func TestE6FrameSkippingKicksIn(t *testing.T) {
	rows, err := E6(io.Discard, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Light work: every frame. Heavy work: multiple frames per iteration.
	if rows[0].FramesPerIter > 1.05 {
		t.Fatalf("light workload should take every frame: %+v", rows[0])
	}
	last := rows[len(rows)-1]
	if last.FramesPerIter < 2 {
		t.Fatalf("heavy workload should skip frames: %+v", last)
	}
	// Frames per iteration is monotone in work.
	for i := 1; i < len(rows); i++ {
		if rows[i].FramesPerIter < rows[i-1].FramesPerIter-0.01 {
			t.Fatalf("not monotone: %+v", rows)
		}
	}
}

func TestE7LabellingSpeedup(t *testing.T) {
	rows, err := E7(io.Discard, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Speedup != 1 {
		t.Fatalf("baseline speedup = %v", rows[0].Speedup)
	}
	// Monotone improvement, and at least 2.5x on 8 procs (merge-limited).
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup <= rows[i-1].Speedup {
			t.Fatalf("speedup not monotone: %+v", rows)
		}
	}
	if rows[len(rows)-1].Speedup < 2.5 {
		t.Fatalf("8-proc speedup %.2f too low", rows[len(rows)-1].Speedup)
	}
}

func TestE8QuadtreeRuns(t *testing.T) {
	outs, err := E8(io.Discard, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("outs = %+v", outs)
	}
	for _, o := range outs {
		if !o.Correct || o.Tasks < 4 {
			t.Fatalf("bad quadtree result: %+v", o)
		}
	}
	// Same region count regardless of parallelism.
	if outs[0].Tasks != outs[1].Tasks {
		t.Fatalf("region counts differ: %+v", outs)
	}
	// Parallel version at least as fast.
	if outs[1].TotalMS > outs[0].TotalMS*1.05 {
		t.Fatalf("tf on 4 procs slower than 1: %+v", outs)
	}
}

func TestE9Accounting(t *testing.T) {
	res, err := E9(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpecLines < 10 || res.SpecLines > 40 {
		t.Fatalf("spec lines = %d", res.SpecLines)
	}
	if res.GraphNodes < 10 || res.MacroCodeLines < res.SpecLines {
		t.Fatalf("generation accounting looks wrong: %+v", res)
	}
	if res.GeneratedPerSpec < 1 {
		t.Fatalf("generated/spec = %.1f", res.GeneratedPerSpec)
	}
}

func TestSkelAgreement(t *testing.T) {
	if !SkelAgreement() {
		t.Fatal("skeleton operational/declarative mismatch")
	}
}

func TestE10StrategyAblation(t *testing.T) {
	res, err := E10(io.Discard, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.StructuredMS <= 0 || res.ListSchedMS <= 0 {
		t.Fatalf("degenerate: %+v", res)
	}
	// The skeleton-aware placement must not lose badly to the generic
	// scheduler on its home workload.
	if res.AdvantagePct < -20 {
		t.Fatalf("structured placement loses by %.1f%%", -res.AdvantagePct)
	}
}

func TestE11TopologySensitivity(t *testing.T) {
	rows, err := E11(io.Discard, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		if r.ReinitMS <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		byName[r.Topology] = r.ReinitMS
	}
	// Richer interconnects are no slower than the chain (fewer hops,
	// less contention at the scatter).
	if byName["full(8)"] > byName["chain(8)"]+1e-9 {
		t.Fatalf("full slower than chain: %+v", byName)
	}
	if byName["hypercube(3)"] > byName["chain(8)"]+1e-9 {
		t.Fatalf("hypercube slower than chain: %+v", byName)
	}
}
