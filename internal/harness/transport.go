package harness

import (
	"fmt"
	"io"
	"time"

	"skipper/internal/distrib"
	"skipper/internal/exec"
	"skipper/internal/track"
)

// Transports lists the executive communication backends the experiments
// can run over: "mem" is the in-process goroutine executive, "tcp" runs
// the same schedule split across a hub and one node per remaining
// processor over localhost sockets, "unix" is the same multi-process
// split over unix-domain sockets, and "shm" layers the shared-memory
// slab-ring upgrade on the unix plane (DESIGN.md §14) — frames travel
// through mmap'd per-connection rings, sockets carry only doorbells.
var Transports = []string{"mem", "tcp", "unix", "shm"}

// e4Spec is the E4 deployment (ring(8), 256x256, 2 vehicles, seed 21).
func e4Spec(iters int) distrib.Spec {
	return distrib.Spec{Job: distrib.Job{
		Topology: "ring", Procs: 8,
		Width: 256, Height: 256,
		Vehicles: 2, Seed: 21, Iters: iters,
	}}
}

// runExecutiveOn executes the E4 tracking deployment on the named
// transport and returns the per-iteration results recorded at the
// processor hosting the display node, alongside the coordinator's run
// result (transport statistics, optional trace).
func runExecutiveOn(transport string, iters int) ([]track.Result, *exec.RunResult, error) {
	return runExecutiveSpec(transport, e4Spec(iters))
}

// runExecutiveSpec is runExecutiveOn with the caller controlling the full
// deployment spec (pipeline mode, determinism, fault-tolerance knobs).
func runExecutiveSpec(transport string, sp distrib.Spec) ([]track.Result, *exec.RunResult, error) {
	switch transport {
	case "mem":
		rec, res, err := distrib.RunInProcess(sp, 2*time.Minute)
		if err != nil {
			return nil, nil, err
		}
		return rec.Results, res, nil
	case "tcp", "unix", "shm":
		// One hub (processor 0) plus one client per remaining processor,
		// each with its own freshly built registry — the same isolation a
		// per-processor OS process has, over real sockets (localhost TCP or
		// a unix-domain socket per the named transport; "shm" additionally
		// upgrades every connection to a shared-memory ring).
		listen, cleanup, err := distrib.HubListenAddr(transport)
		if err != nil {
			return nil, nil, err
		}
		defer cleanup()
		if transport == "shm" {
			sp.DataPlane = "shm"
		}
		errCh := make(chan error, sp.Procs-1)
		spawn := func(addr string) error {
			for p := 1; p < sp.Procs; p++ {
				go func(p int) {
					errCh <- distrib.RunNode(sp, p, addr, 2*time.Minute)
				}(p)
			}
			return nil
		}
		rec, res, err := distrib.RunCoordinator(sp, listen, spawn, 2*time.Minute)
		if err != nil {
			return nil, nil, err
		}
		for i := 1; i < sp.Procs; i++ {
			if nerr := <-errCh; nerr != nil {
				return nil, nil, nerr
			}
		}
		return rec.Results, res, nil
	}
	return nil, nil, fmt.Errorf("harness: unknown transport %q", transport)
}

// E4On is E4 with the parallel-executive leg running over the named
// transport: the emulation/executive/simulator equivalence must hold
// whether the executive's processors share an address space or talk TCP.
func E4On(w io.Writer, iters int, transport string) (*E4Result, error) {
	emu, err := runE4Mode("emulate", iters)
	if err != nil {
		return nil, err
	}
	par, runRes, err := runExecutiveOn(transport, iters)
	if err != nil {
		return nil, err
	}
	simr, err := runE4Mode("simulate", iters)
	if err != nil {
		return nil, err
	}
	same := resultsIdentical(emu, par) && resultsIdentical(emu, simr)
	out := &E4Result{Iterations: iters, Identical: same}
	if runRes != nil {
		out.Messages, out.Hops, out.Direct = runRes.Messages, runRes.Hops, runRes.Direct
	}
	fmt.Fprintf(w, "E4[%s]: emulation vs executive vs simulator over %d iterations: identical = %v (%d msgs, %d hops, %d direct)\n",
		transport, iters, same, out.Messages, out.Hops, out.Direct)
	return out, nil
}

// resultsIdentical compares two tracking traces field by field.
func resultsIdentical(a, b []track.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Tracking != y.Tracking || x.Vehicles != y.Vehicles || len(x.Marks) != len(y.Marks) {
			return false
		}
		for j := range x.Marks {
			if x.Marks[j] != y.Marks[j] {
				return false
			}
		}
	}
	return true
}
