package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"

	"skipper/internal/exec/transport"
	"skipper/internal/obsv"
	"skipper/internal/skel"
	"skipper/internal/track"
	"skipper/internal/video"
	"skipper/internal/vision"
)

// BenchSchema versions the BENCH_N.json format so the tier-1 guard test and
// future PRs can parse perf snapshots defensively.
const BenchSchema = "skipper-bench/v1"

// BenchEntry is one benchmark measurement in machine-readable form.
type BenchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

// BenchReport is the perf snapshot written to BENCH_1.json: wall-clock and
// allocation figures for the headline experiments (E1, E5, E7) plus the
// hot-path micro-benchmarks, and the E1 latency table in simulated time so
// the envelope guard can keep the calibration honest.
type BenchReport struct {
	Schema     string       `json:"schema"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	E1         *E1Result    `json:"e1"`
	Results    []BenchEntry `json:"results"`
}

// RunBenchReport measures the benchmark suite and returns the report.
// Progress lines go to w (one per benchmark). iters is the stream length
// used by the simulation-backed experiments. A non-empty filter restricts
// the run to benchmarks whose name contains any of its comma-separated
// substrings and skips the E1 latency table — the shape CI smoke jobs use
// to get a quick transport snapshot without paying for the full suite;
// full (unfiltered) runs are what BENCH_<pr>.json snapshots and the
// envelope guard need.
func RunBenchReport(w io.Writer, iters int, filter string) (*BenchReport, error) {
	rep := &BenchReport{
		Schema:     BenchSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	if filter == "" {
		// E1 latency table (simulated time) for the envelope guard.
		e1, err := E1(io.Discard, iters)
		if err != nil {
			return nil, err
		}
		rep.E1 = e1
	}

	var filters []string
	if filter != "" {
		filters = strings.Split(filter, ",")
	}
	matches := func(name string) bool {
		if len(filters) == 0 {
			return true
		}
		for _, f := range filters {
			if strings.Contains(name, f) {
				return true
			}
		}
		return false
	}

	var firstErr error
	record := func(name string, fn func(b *testing.B)) {
		if firstErr != nil {
			return
		}
		if !matches(name) {
			return
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		e := BenchEntry{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		}
		rep.Results = append(rep.Results, e)
		fmt.Fprintf(w, "  %-28s %12.0f ns/op %10d B/op %8d allocs/op\n",
			e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}

	// Experiment-level benchmarks (host wall-clock of the full pipeline).
	record("E1_TrackingLatency", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := E1(io.Discard, iters); err != nil {
				firstErr = err
				b.Skip(err)
			}
		}
	})
	record("E5_LoadBalancing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := E5(io.Discard, 32, 8); err != nil {
				firstErr = err
				b.Skip(err)
			}
		}
	})
	record("E7_Labelling_P8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := E7(io.Discard, []int{8}); err != nil {
				firstErr = err
				b.Skip(err)
			}
		}
	})

	// Hot-path micro-benchmarks: the kernels the tentpole optimizations
	// target, measured with and without scratch/buffer reuse.
	scene := video.NewScene(512, 512, 3, 1)
	frame := scene.Next()
	record("Label512", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vision.Label(frame, video.DetectThreshold)
		}
	})
	record("Label512_Scratch", func(b *testing.B) {
		var s vision.LabelScratch
		for i := 0; i < b.N; i++ {
			s.Label(frame, video.DetectThreshold)
		}
	})
	record("Components512_Scratch", func(b *testing.B) {
		var s vision.LabelScratch
		for i := 0; i < b.N; i++ {
			s.Components(frame, video.DetectThreshold, track.MinMarkArea)
		}
	})
	record("ThresholdInto512", func(b *testing.B) {
		dst := vision.NewImage(frame.W, frame.H)
		for i := 0; i < b.N; i++ {
			vision.ThresholdInto(dst, frame, video.DetectThreshold)
		}
	})
	record("ExtractInto512Band", func(b *testing.B) {
		var win vision.Window
		band := vision.Rect{X0: 0, Y0: 0, X1: 512, Y1: 64}
		for i := 0; i < b.N; i++ {
			vision.ExtractInto(&win, frame, band)
		}
	})
	record("DetectMarks512Band", func(b *testing.B) {
		win := vision.Extract(frame, vision.Rect{X0: 0, Y0: 0, X1: 512, Y1: 64})
		for i := 0; i < b.N; i++ {
			track.DetectMarks(win)
		}
	})
	record("SceneNextInto512", func(b *testing.B) {
		s := video.NewScene(512, 512, 3, 2)
		buf := vision.NewImage(512, 512)
		for i := 0; i < b.N; i++ {
			s.NextInto(buf)
		}
	})

	// Tiled vs naive morphology (DESIGN.md §14): the separable, cache-tiled
	// 3×3 dilate against the straightforward 9-tap loop, same frame. The
	// naive figure is the reference the BENCH_7 guard prices the tiling
	// against — the ratio must hold even on a single CPU, where only the
	// separability and the flat row addressing help.
	record("Dilate512_naive", func(b *testing.B) {
		dst := vision.NewImage(frame.W, frame.H)
		for i := 0; i < b.N; i++ {
			naiveDilate3(dst, frame)
		}
	})
	record("Dilate512_tiled", func(b *testing.B) {
		dst := vision.NewImage(frame.W, frame.H)
		for i := 0; i < b.N; i++ {
			vision.Dilate3Into(dst, frame)
		}
	})

	// Skeleton pool vs per-call goroutine spawning, 8-window frame shape.
	pool := skel.NewPool(8)
	defer pool.Close()
	windows := make([]int, 8)
	for i := range windows {
		windows[i] = 40_000 + i*1_000
	}
	comp := func(n int) int {
		s := 0
		for k := 0; k < n; k++ {
			s += k % 7
		}
		return s
	}
	acc := func(a, b int) int { return a + b }
	record("SkelDF_Pool8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			skel.DFOn(pool, 8, comp, acc, 0, windows)
		}
	})

	// Transport backends: one farm task/reply round trip, in-process vs a
	// real localhost TCP hub/client pair, shipping the 512×64 window band
	// the tracking schedule sends per df window. The delta is the
	// per-window price of running the executive as OS processes.
	for _, tr := range Transports {
		tr := tr
		record("Transport_"+tr+"_FarmRoundTrip", func(b *testing.B) {
			pair, err := NewTransportPair(tr)
			if err != nil {
				firstErr = err
				b.Skip(err)
			}
			defer pair.Close()
			BenchFarmRoundTrip(b, pair, BenchWindowPayload())
		})
	}

	// Tracing overhead: the identical scalar round trip with the event
	// recorder disarmed vs armed. The "off" figure is the hot path with the
	// nil-recorder branches compiled in (the price every untraced run pays —
	// pinned at ~0 by the memtransport alloc guard) and the on/off delta is
	// the cost of actually recording send/recv/enqueue/park/wake events.
	for _, mode := range []string{"off", "on"} {
		mode := mode
		record("Trace_mem_FarmRoundTrip_"+mode, func(b *testing.B) {
			pair, err := NewTransportPair("mem")
			if err != nil {
				firstErr = err
				b.Skip(err)
			}
			defer pair.Close()
			if mode == "on" {
				pair.Master.(transport.TraceSink).SetTrace(obsv.NewRecorder(2, 1<<12))
			}
			BenchFarmRoundTrip(b, pair, BenchScalarPayload())
		})
	}

	// Always-on recorder overhead on the real data plane: the same window-band
	// farm round trip over the shm transport with the flight-sized ring
	// disarmed vs armed on both ends. This is exactly what every fleet worker
	// pays for the flight recorder, so bench_guard_test.go holds the on/off
	// delta to a couple of allocs and a thin latency margin.
	for _, mode := range []string{"off", "on"} {
		mode := mode
		record("Trace_shm_FarmRoundTrip_"+mode, func(b *testing.B) {
			pair, err := NewTransportPair("shm")
			if err != nil {
				firstErr = err
				b.Skip(err)
			}
			defer pair.Close()
			if mode == "on" {
				pair.Master.(transport.TraceSink).SetTrace(obsv.NewRecorder(2, obsv.FlightRingSize))
				pair.Worker.(transport.TraceSink).SetTrace(obsv.NewRecorder(2, obsv.FlightRingSize))
			}
			BenchFarmRoundTrip(b, pair, BenchWindowPayload())
		})
	}

	// Software-pipelined itermem (DESIGN.md §12): the per-frame period of a
	// blocking-grab itermem loop with the pipeline off vs on. Off is the
	// sequential executive (grab + farm per frame); on overlaps frame k+1's
	// grab wait with frame k's farm, so the on/off ratio is the measured
	// pipeline speedup the tier-1 guard keeps honest.
	for _, mode := range []string{"off", "on"} {
		mode := mode
		record("ItermemPipelined_"+mode, func(b *testing.B) {
			BenchItermemPipelined(b, mode == "on")
		})
	}

	// Deep pipelining (DESIGN.md §14): the per-frame period of a three-farm
	// itermem loop at the historical two-stage split vs cut at every farm
	// boundary. The delta is what MEM-read sinking buys: at depth 2 the
	// whole farm chain serializes inside one stage; at full depth
	// consecutive frames occupy consecutive farms.
	for _, depth := range []string{"2", "Full"} {
		depth := depth
		record("ItermemDepth"+depth, func(b *testing.B) {
			d := 0
			if depth == "2" {
				d = 2
			}
			BenchItermemDepth(b, d)
		})
	}

	// Straggler-fleet farm (DESIGN.md §16): one ring(8) worker's replies are
	// scripted 10x slower than the speculation threshold. Off, every
	// iteration's fold gates on the straggler; on, the master duplicates the
	// stalled task onto an idle worker and folds the duplicate's reply. The
	// off/on period ratio is the measured speculation speedup, held >= 1.5x
	// by checkSpeculation in bench_guard_test.go.
	for _, mode := range []string{"off", "on"} {
		mode := mode
		record("StragglerFarm_"+mode, func(b *testing.B) {
			BenchStragglerFarm(b, mode == "on")
		})
	}

	// Skipper-as-a-service scheduler overhead (DESIGN.md §13): one tiny job
	// through the whole control-plane path — Submit, FIFO queue, dispatch,
	// in-process run, terminal status. Guarded by a generous ceiling in
	// bench_guard_test.go so scheduler regressions fail tier-1.
	record("ServeJobThroughput", func(b *testing.B) {
		srv, err := NewBenchServer()
		if err != nil {
			firstErr = err
			b.Skip(err)
		}
		defer srv.Close()
		BenchServeJobThroughput(b, srv)
	})

	if firstErr != nil {
		return nil, firstErr
	}
	return rep, nil
}

// WriteBenchJSON marshals the report and writes it to path.
func WriteBenchJSON(rep *BenchReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// ReadBenchJSON loads a BENCH_N.json snapshot.
func ReadBenchJSON(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	if rep.Schema != BenchSchema {
		return nil, fmt.Errorf("harness: unsupported bench schema %q (want %q)", rep.Schema, BenchSchema)
	}
	return &rep, nil
}

// naiveDilate3 is the textbook 3x3 dilation — a bounds-checked 9-tap max
// per pixel — kept as the pricing reference for Dilate512_tiled. It must
// stay deliberately artless: any cleverness here silently shrinks the
// speedup the BENCH_7 guard asserts.
func naiveDilate3(dst, im *vision.Image) {
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			var m uint8
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if v := im.At(x+dx, y+dy); v > m {
						m = v
					}
				}
			}
			dst.Pix[y*im.W+x] = m
		}
	}
}
