// Package harness regenerates every quantitative claim of the paper's
// evaluation (§4) plus the structural figures, as indexed in DESIGN.md §4.
// Each experiment prints a table to an io.Writer and returns a structured
// result for the benchmarks and tests.
package harness

import (
	"fmt"
	"io"

	"skipper/internal/arch"
	"skipper/internal/dsl/eval"
	"skipper/internal/dsl/parser"
	"skipper/internal/dsl/types"
	"skipper/internal/expand"
	"skipper/internal/sim"
	"skipper/internal/skel"
	"skipper/internal/syndex"
	"skipper/internal/track"
	"skipper/internal/value"
	"skipper/internal/video"
	"skipper/internal/vision"
)

// compileTracking builds a fresh tracking deployment (scene + registry +
// schedule) for the given parameters.
func compileTracking(nproc, w, h, vehicles int, seed int64, a *arch.Arch, strat syndex.Strategy) (*syndex.Schedule, *value.Registry, *track.Recorder, error) {
	scene := video.NewScene(w, h, vehicles, seed)
	reg, rec := track.NewRegistry(scene, nil)
	prog, err := parser.Parse(track.ProgramSource(nproc, w, h))
	if err != nil {
		return nil, nil, nil, err
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := expand.Expand(prog, info, reg)
	if err != nil {
		return nil, nil, nil, err
	}
	s, err := syndex.Map(res.Graph, a, reg, strat)
	if err != nil {
		return nil, nil, nil, err
	}
	return s, reg, rec, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// ---------------------------------------------------------------------------
// E1 — tracking/reinit latency on the 8-Transputer ring (paper §4)

// E1Result reports the phase latencies of the paper's experiment.
type E1Result struct {
	TrackingMS, ReinitMS    float64
	TrackIters, ReinitIters int
	FramesSkipped           int
	EveryFrameInTracking    bool
	OneOfThreeInReinit      bool
}

// E1 reproduces the headline numbers: "minimal latencies obtained is 30ms
// for the tracking phase and 110 ms for the reinitialization phase, with
// the application processing each image of the video stream in first case,
// and one image out of 3 in the second."
func E1(w io.Writer, iters int) (*E1Result, error) {
	s, reg, rec, err := compileTracking(8, 512, 512, 3, 3, arch.Ring(8), syndex.Structured)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(s, reg, sim.Options{Iters: iters, FramePeriod: sim.VideoPeriod})
	if err != nil {
		return nil, err
	}
	var trackLat, reinitLat []float64
	trackFramesOK := true
	for i, r := range rec.Results {
		if i >= len(res.Iters) {
			break
		}
		it := res.Iters[i]
		if r.Tracking {
			trackLat = append(trackLat, it.Latency)
			if i > 0 && rec.Results[i-1].Tracking &&
				it.Frame-res.Iters[i-1].Frame != 1 {
				trackFramesOK = false
			}
		} else {
			reinitLat = append(reinitLat, it.Latency)
		}
	}
	out := &E1Result{
		TrackingMS:           mean(trackLat) * 1000,
		ReinitMS:             mean(reinitLat) * 1000,
		TrackIters:           len(trackLat),
		ReinitIters:          len(reinitLat),
		FramesSkipped:        res.FramesSkipped,
		EveryFrameInTracking: trackFramesOK,
		OneOfThreeInReinit:   mean(reinitLat) > 2*sim.VideoPeriod && mean(reinitLat) < 4*sim.VideoPeriod,
	}
	fmt.Fprintf(w, "E1: vehicle tracking, ring(8) T9000, 512x512 @ 25 Hz, 3 vehicles\n")
	fmt.Fprintf(w, "  phase       paper     measured    iters\n")
	fmt.Fprintf(w, "  tracking    30 ms     %6.1f ms   %5d\n", out.TrackingMS, out.TrackIters)
	fmt.Fprintf(w, "  reinit     110 ms     %6.1f ms   %5d\n", out.ReinitMS, out.ReinitIters)
	fmt.Fprintf(w, "  every frame in tracking: %v   ~1-of-3 in reinit: %v   skipped: %d\n",
		out.EveryFrameInTracking, out.OneOfThreeInReinit, out.FramesSkipped)
	return out, nil
}

// ---------------------------------------------------------------------------
// E2 — latency vs number of processors (scaling / instant retargeting)

// E2Row is one processor count's result.
type E2Row struct {
	Procs      int
	TrackingMS float64
	ReinitMS   float64
}

// E2 regenerates the scaling series: the same source is recompiled for each
// processor count — the paper's "almost instantaneous to get variant
// versions with different numbers of processors".
func E2(w io.Writer, iters int, procCounts []int) ([]E2Row, error) {
	fmt.Fprintf(w, "E2: latency vs processors (tracking app, 512x512, 3 vehicles)\n")
	fmt.Fprintf(w, "  P    tracking     reinit\n")
	var rows []E2Row
	for _, p := range procCounts {
		s, reg, rec, err := compileTracking(p, 512, 512, 3, 3, arch.Ring(p), syndex.Structured)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(s, reg, sim.Options{Iters: iters, FramePeriod: sim.VideoPeriod})
		if err != nil {
			return nil, err
		}
		var tl, rl []float64
		for i, r := range rec.Results {
			if i >= len(res.Iters) {
				break
			}
			if r.Tracking {
				tl = append(tl, res.Iters[i].Latency)
			} else {
				rl = append(rl, res.Iters[i].Latency)
			}
		}
		row := E2Row{Procs: p, TrackingMS: mean(tl) * 1000, ReinitMS: mean(rl) * 1000}
		rows = append(rows, row)
		fmt.Fprintf(w, "  %-3d  %7.1f ms  %7.1f ms\n", row.Procs, row.TrackingMS, row.ReinitMS)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// E3 — skeleton executive vs hand-crafted static partition

// E3Result compares the df farm against an idealized hand-coded version.
type E3Result struct {
	SkeletonMS, HandcraftMS float64
	OverheadPct             float64
}

// E3 quantifies the claim that skeleton performance is "similar to the ones
// obtained by an existing hand-crafted parallel version". The hand-crafted
// baseline is an idealized static partition of the reinitialization
// detection: each processor gets exactly one band, there is no master, no
// demand-driven dispatch and no farm protocol overhead — the best case a
// hand coder can reach on uniform loads.
func E3(w io.Writer, iters int) (*E3Result, error) {
	const P = 8
	s, reg, rec, err := compileTracking(P, 512, 512, 3, 5, arch.Ring(P), syndex.Structured)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(s, reg, sim.Options{Iters: iters})
	if err != nil {
		return nil, err
	}
	// Compare the reinitialization phase (uniform full-image bands), the
	// only phase a static hand-partition expresses directly.
	var reinit []float64
	for i, r := range rec.Results {
		if i < len(res.Iters) && !r.Tracking {
			reinit = append(reinit, res.Iters[i].Latency)
		}
	}
	if len(reinit) == 0 {
		return nil, fmt.Errorf("harness: no reinitialization iterations observed")
	}
	skel := mean(reinit)

	// Idealized hand-crafted reinit iteration on the same platform model:
	// read + extract + scatter (pipelined on both ring directions) + one
	// band of detection per processor + gather + predict.
	a := arch.Ring(P)
	bandPx := 512 * 512 / P
	read := a.CycleSeconds(track.ReadImgCycles)
	extract := a.CycleSeconds(track.FixedWindowCycles + int64(512*512)*track.CyclesPerPixelExtract)
	detect := a.CycleSeconds(track.FixedDetectCycles + int64(bandPx)*track.CyclesPerPixelDetect)
	// Scatter: 4 bands per ring direction, store-and-forward; the farthest
	// band crosses 4 links.
	band := a.TransferSeconds(bandPx + 16)
	scatter := 4 * band
	gather := 4 * a.TransferSeconds(200)
	predict := a.CycleSeconds(track.PredictCycles)
	hand := read + extract + scatter + detect + gather + predict

	out := &E3Result{
		SkeletonMS:  skel * 1000,
		HandcraftMS: hand * 1000,
		OverheadPct: (skel - hand) / hand * 100,
	}
	fmt.Fprintf(w, "E3: df skeleton vs idealized hand-crafted static partition (reinit, ring(8))\n")
	fmt.Fprintf(w, "  skeleton executive : %7.1f ms\n", out.SkeletonMS)
	fmt.Fprintf(w, "  hand-crafted ideal : %7.1f ms\n", out.HandcraftMS)
	fmt.Fprintf(w, "  skeleton overhead  : %7.1f %%   (paper: \"similar\" performance)\n", out.OverheadPct)
	return out, nil
}

// ---------------------------------------------------------------------------
// E4 — sequential emulation ≡ parallel execution

// E4Result reports equivalence of the three execution paths, plus the
// coordinator's transport statistics for the parallel-executive leg (see
// exec.RunResult for the Hops/Direct semantics: hops are forwarder link
// traversals, direct are peer-mesh point-to-point frames).
type E4Result struct {
	Iterations int
	Identical  bool
	Messages   int64
	Hops       int64
	Direct     int64
}

// runE4Mode executes the E4 tracking deployment through the sequential
// emulator or the timing simulator (the parallel-executive path lives in
// runExecutiveOn, parameterized by transport).
func runE4Mode(mode string, iters int) ([]track.Result, error) {
	scene := video.NewScene(256, 256, 2, 21)
	reg, rec := track.NewRegistry(scene, nil)
	prog, err := parser.Parse(track.ProgramSource(8, 256, 256))
	if err != nil {
		return nil, err
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, err
	}
	switch mode {
	case "emulate":
		if _, err := eval.New(reg, eval.Options{MaxIters: iters}).Run(prog); err != nil {
			return nil, err
		}
	case "simulate":
		res, err := expand.Expand(prog, info, reg)
		if err != nil {
			return nil, err
		}
		s, err := syndex.Map(res.Graph, arch.Ring(8), reg, syndex.Structured)
		if err != nil {
			return nil, err
		}
		if _, err := sim.Run(s, reg, sim.Options{Iters: iters}); err != nil {
			return nil, err
		}
	}
	return rec.Results, nil
}

// E4 verifies the debugging claim: the sequential emulation computes
// exactly what the parallel executive computes, iteration by iteration.
func E4(w io.Writer, iters int) (*E4Result, error) {
	return E4On(w, iters, "mem")
}

// ---------------------------------------------------------------------------
// E5 — df dynamic load balancing vs static split on uneven workloads

// E5Result compares makespans on skewed task lists.
type E5Result struct {
	Skew            float64
	DFMS, StaticMS  float64
	DFWinsOnSkewed  bool
	TieOnUniformPct float64
}

// E5 exercises the claim motivating df: window workloads are "very uneven",
// calling for dynamic load balancing. Tasks are synthetic with a controlled
// cost skew; the static baseline assigns tasks round-robin like an scm
// split would.
func E5(w io.Writer, tasks, workers int) (*E5Result, error) {
	// Workers tick at the Transvision clock rate; the makespan model needs
	// only that scale, not a routed topology, so no arch graph is built
	// (this function runs once per benchmark op and is alloc-guarded).
	const secPerCycle = 1 / arch.TransputerHz
	free := make([]float64, workers) // scratch, reset per makespan
	makespan := func(costs []int64, dynamic bool) float64 {
		for i := range free {
			free[i] = 0
		}
		if dynamic {
			// Greedy earliest-available worker = df master in virtual time.
			for _, c := range costs {
				best := 0
				for i := 1; i < workers; i++ {
					if free[i] < free[best] {
						best = i
					}
				}
				free[best] += float64(c) * secPerCycle
			}
		} else {
			// Static round-robin.
			for i, c := range costs {
				free[i%workers] += float64(c) * secPerCycle
			}
		}
		m := 0.0
		for _, f := range free {
			if f > m {
				m = f
			}
		}
		return m
	}
	// Skewed: geometric decay — first window huge (near vehicle), rest tiny.
	// Uniform rides in the same slab.
	costs := make([]int64, 2*tasks)
	skewed, uniform := costs[:tasks], costs[tasks:]
	for i := range skewed {
		skewed[i] = int64(4_000_000 / (1 + 3*i))
	}
	for i := range uniform {
		uniform[i] = 500_000
	}
	dfSkew := makespan(skewed, true)
	stSkew := makespan(skewed, false)
	dfUni := makespan(uniform, true)
	stUni := makespan(uniform, false)
	out := &E5Result{
		Skew:            float64(skewed[0]) / float64(skewed[len(skewed)-1]),
		DFMS:            dfSkew * 1000,
		StaticMS:        stSkew * 1000,
		DFWinsOnSkewed:  dfSkew < stSkew,
		TieOnUniformPct: (dfUni - stUni) / stUni * 100,
	}
	fmt.Fprintf(w, "E5: dynamic (df) vs static split, %d tasks on %d workers\n", tasks, workers)
	fmt.Fprintf(w, "  workload   df          static\n")
	fmt.Fprintf(w, "  skewed     %7.1f ms  %7.1f ms\n", dfSkew*1000, stSkew*1000)
	fmt.Fprintf(w, "  uniform    %7.1f ms  %7.1f ms\n", dfUni*1000, stUni*1000)
	return out, nil
}

// ---------------------------------------------------------------------------
// E6 — itermem stream behaviour (Fig. 4): throughput vs frame period

// E6Row reports frame-consumption behaviour for one workload intensity.
type E6Row struct {
	WorkCycles    int64
	LatencyMS     float64
	FramesPerIter float64 // 1 = every frame, 3 = one image out of 3
}

// E6 sweeps per-iteration work and reports how many camera frames elapse
// per processed image — the mechanism behind "one image out of 3".
func E6(w io.Writer, iters int) ([]E6Row, error) {
	fmt.Fprintf(w, "E6: itermem frame consumption vs loop cost (25 Hz camera)\n")
	fmt.Fprintf(w, "  work/frame    latency     frames consumed per iteration\n")
	var rows []E6Row
	for _, cycles := range []int64{200_000, 800_000, 1_600_000, 3_200_000, 6_400_000} {
		r := value.NewRegistry()
		r.Register(&value.Func{Name: "grab", Sig: "unit -> int", Arity: 1,
			Fn:   func([]value.Value) value.Value { return 1 },
			Cost: func([]value.Value) int64 { return 10_000 }})
		c := cycles
		r.Register(&value.Func{Name: "work", Sig: "int * int -> int * int", Arity: 1,
			Fn: func(a []value.Value) value.Value {
				pr := a[0].(value.Tuple)
				return value.Tuple{pr[0], pr[1]}
			},
			Cost: func([]value.Value) int64 { return c }})
		r.Register(&value.Func{Name: "show", Sig: "int -> unit", Arity: 1,
			Fn: func([]value.Value) value.Value { return value.Unit{} }})
		src := `
extern grab : unit -> int;;
extern work : int * int -> int * int;;
extern show : int -> unit;;
let main = itermem grab work show 0 ();;
`
		prog, err := parser.Parse(src)
		if err != nil {
			return nil, err
		}
		info, err := types.Check(prog)
		if err != nil {
			return nil, err
		}
		eres, err := expand.Expand(prog, info, r)
		if err != nil {
			return nil, err
		}
		s, err := syndex.Map(eres.Graph, arch.Ring(2), r, syndex.Structured)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(s, r, sim.Options{Iters: iters, FramePeriod: sim.VideoPeriod})
		if err != nil {
			return nil, err
		}
		lastFrame := res.Iters[len(res.Iters)-1].Frame
		fpi := float64(lastFrame+1) / float64(len(res.Iters))
		row := E6Row{WorkCycles: cycles, LatencyMS: res.MeanLatency(1) * 1000, FramesPerIter: fpi}
		rows = append(rows, row)
		fmt.Fprintf(w, "  %9d     %7.1f ms   %.2f\n", row.WorkCycles, row.LatencyMS, row.FramesPerIter)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// E7 — scm connected-component labelling speedup (ref [7])

// E7Row is the speedup at one processor count.
type E7Row struct {
	Procs   int
	TotalMS float64
	Speedup float64
}

// E7 reproduces the scm labelling experiment: a 512x512 frame is split into
// horizontal bands, each band labelled independently, and the per-band
// statistics merged. Costs follow the same calibration as detection.
func E7(w io.Writer, procCounts []int) ([]E7Row, error) {
	fmt.Fprintf(w, "E7: scm connected-component labelling, 512x512\n")
	fmt.Fprintf(w, "  P    total        speedup\n")
	var rows []E7Row
	base := 0.0
	for _, p := range procCounts {
		res, err := runLabelling(p)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = res.Total
		}
		row := E7Row{Procs: p, TotalMS: res.Total * 1000, Speedup: base / res.Total}
		rows = append(rows, row)
		fmt.Fprintf(w, "  %-3d  %8.1f ms  %6.2fx\n", row.Procs, row.TotalMS, row.Speedup)
	}
	return rows, nil
}

// runLabelling builds and simulates the scm labelling program on p procs.
func runLabelling(p int) (*sim.Result, error) {
	scene := video.NewScene(512, 512, 3, 17)
	frame := scene.Next()
	r := value.NewRegistry()
	r.Register(&value.Func{Name: "the_img", Sig: "img", Arity: 0,
		Fn: func([]value.Value) value.Value { return frame }})
	r.Register(&value.Func{Name: "split_bands", Sig: "img -> window list", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			im := a[0].(*vision.Image)
			out := make(value.List, 0, p)
			for _, rect := range vision.SplitGrid(im.W, im.H, p) {
				out = append(out, vision.Extract(im, rect))
			}
			return out
		},
		Cost: func(a []value.Value) int64 {
			im := a[0].(*vision.Image)
			return 10_000 + int64(im.W*im.H)*track.CyclesPerPixelExtract
		}})
	r.Register(&value.Func{Name: "label_band", Sig: "window -> mark", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			win := a[0].(vision.Window)
			return track.Detections(track.DetectMarks(win))
		},
		Cost: func(a []value.Value) int64 {
			win := a[0].(vision.Window)
			return track.FixedDetectCycles + int64(win.Origin.Area())*track.CyclesPerPixelDetect
		}})
	r.Register(&value.Func{Name: "merge_bands", Sig: "mark list -> mark", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			var all []track.Mark
			for _, d := range a[0].(value.List) {
				all = append(all, d.(track.Detections)...)
			}
			return track.Detections(track.MergeDuplicates(all))
		},
		Cost: func([]value.Value) int64 { return 50_000 }})
	src := fmt.Sprintf(`
type img;; type window;; type mark;;
extern the_img : img;;
extern split_bands : img -> window list;;
extern label_band : window -> mark;;
extern merge_bands : mark list -> mark;;
let main = scm %d split_bands label_band merge_bands the_img;;
`, p)
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, err
	}
	eres, err := expand.Expand(prog, info, r)
	if err != nil {
		return nil, err
	}
	s, err := syndex.Map(eres.Graph, arch.Ring(max(p, 1)), r, syndex.Structured)
	if err != nil {
		return nil, err
	}
	return sim.Run(s, r, sim.Options{Iters: 1})
}

// ---------------------------------------------------------------------------
// E8 — tf divide-and-conquer

// E8Result reports the task-farm experiment.
type E8Result struct {
	Procs   int
	TotalMS float64
	Tasks   int
	Correct bool
}

// E8 exercises the tf skeleton with a divide-and-conquer workload:
// recursive splitting of image regions until homogeneous (a quadtree-style
// segmentation), with worker-generated tasks flowing back to the master.
func E8(w io.Writer, procCounts []int) ([]E8Result, error) {
	fmt.Fprintf(w, "E8: tf divide-and-conquer region splitting, 256x256\n")
	fmt.Fprintf(w, "  P    total        regions\n")
	var outs []E8Result
	for _, p := range procCounts {
		res, regions, err := runQuadtree(p)
		if err != nil {
			return nil, err
		}
		o := E8Result{Procs: p, TotalMS: res.Total * 1000, Tasks: regions, Correct: regions > 0}
		outs = append(outs, o)
		fmt.Fprintf(w, "  %-3d  %8.1f ms  %6d\n", p, o.TotalMS, o.Tasks)
	}
	return outs, nil
}

func runQuadtree(p int) (*sim.Result, int, error) {
	scene := video.NewScene(256, 256, 2, 23)
	frame := scene.Next()
	r := value.NewRegistry()
	r.Register(&value.Func{Name: "whole", Sig: "window list", Arity: 0,
		Fn: func([]value.Value) value.Value {
			return value.List{vision.Extract(frame, vision.Rect{X0: 0, Y0: 0, X1: frame.W, Y1: frame.H})}
		}})
	r.Register(&value.Func{Name: "split_region", Sig: "window -> window list * window list", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			win := a[0].(vision.Window)
			// Homogeneous (no bright pixel) or small: emit as a region.
			if win.Origin.Area() <= 32*32 || vision.CountAbove(win.Img, video.DetectThreshold) == 0 {
				return value.Tuple{value.List{win}, value.List{}}
			}
			r0 := win.Origin
			mx, my := (r0.X0+r0.X1)/2, (r0.Y0+r0.Y1)/2
			quads := []vision.Rect{
				{X0: r0.X0, Y0: r0.Y0, X1: mx, Y1: my},
				{X0: mx, Y0: r0.Y0, X1: r0.X1, Y1: my},
				{X0: r0.X0, Y0: my, X1: mx, Y1: r0.Y1},
				{X0: mx, Y0: my, X1: r0.X1, Y1: r0.Y1},
			}
			more := make(value.List, 0, 4)
			for _, q := range quads {
				more = append(more, vision.Extract(frame, q))
			}
			return value.Tuple{value.List{}, more}
		},
		Cost: func(a []value.Value) int64 {
			// Homogeneity analysis (variance + gradient) per pixel.
			win := a[0].(vision.Window)
			return 10_000 + int64(win.Origin.Area())*12
		}})
	r.Register(&value.Func{Name: "count_region", Sig: "int -> window -> int", Arity: 2,
		Fn: func(a []value.Value) value.Value {
			return a[0].(int) + 1
		},
		Cost: func([]value.Value) int64 { return 1_000 }})
	src := fmt.Sprintf(`
type window;;
extern whole : window list;;
extern split_region : window -> window list * window list;;
extern count_region : int -> window -> int;;
let main = tf %d split_region count_region 0 whole;;
`, p)
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, 0, err
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, 0, err
	}
	eres, err := expand.Expand(prog, info, r)
	if err != nil {
		return nil, 0, err
	}
	s, err := syndex.Map(eres.Graph, arch.Ring(max(p, 1)), r, syndex.Structured)
	if err != nil {
		return nil, 0, err
	}
	res, err := sim.Run(s, r, sim.Options{Iters: 1})
	if err != nil {
		return nil, 0, err
	}
	regions := 0
	if len(res.Outputs) == 1 {
		if n, ok := res.Outputs[0].(int); ok {
			regions = n
		}
	}
	return res, regions, nil
}

// ---------------------------------------------------------------------------
// E9 — programmability accounting

// E9Result counts what the programmer writes vs what SKiPPER generates.
type E9Result struct {
	SpecLines        int
	UserFunctions    int
	GraphNodes       int
	GraphEdges       int
	MacroCodeLines   int
	GeneratedPerSpec float64
}

// E9 reproduces the programmability claim: "the programmer's work here
// reduced to writing 6 sequential C functions and the caml specification"
// — everything else (process placement, communication scheduling, …) is
// generated.
func E9(w io.Writer) (*E9Result, error) {
	src := track.ProgramSource(8, 512, 512)
	s, _, _, err := compileTracking(8, 512, 512, 3, 3, arch.Ring(8), syndex.Structured)
	if err != nil {
		return nil, err
	}
	specLines := 0
	for _, ln := range splitLines(src) {
		if trimmed := trim(ln); trimmed != "" && !hasPrefixStr(trimmed, "(*") {
			specLines++
		}
	}
	mc := s.MacroCode()
	mcLines := len(splitLines(mc))
	out := &E9Result{
		SpecLines:        specLines,
		UserFunctions:    7, // read_img, init_state, get_windows, detect_mark, accum_marks, predict, display_marks
		GraphNodes:       len(s.Graph.Nodes),
		GraphEdges:       len(s.Graph.Edges),
		MacroCodeLines:   mcLines,
		GeneratedPerSpec: float64(mcLines) / float64(specLines),
	}
	fmt.Fprintf(w, "E9: programmability accounting (tracking app, ring(8))\n")
	fmt.Fprintf(w, "  specification lines (non-blank): %d\n", out.SpecLines)
	fmt.Fprintf(w, "  user sequential functions:       %d (paper: 6 C functions)\n", out.UserFunctions)
	fmt.Fprintf(w, "  generated process graph:         %d nodes, %d edges\n", out.GraphNodes, out.GraphEdges)
	fmt.Fprintf(w, "  generated macro-code lines:      %d (%.1fx the specification)\n",
		out.MacroCodeLines, out.GeneratedPerSpec)
	return out, nil
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, c := range s {
		if c == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(c)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func trim(s string) string {
	i, j := 0, len(s)
	for i < j && (s[i] == ' ' || s[i] == '\t') {
		i++
	}
	for j > i && (s[j-1] == ' ' || s[j-1] == '\t') {
		j--
	}
	return s[i:j]
}

func hasPrefixStr(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// ---------------------------------------------------------------------------
// Skeleton micro-comparison used by the benchmarks: Go-level parallel
// skeletons versus their declarative definitions.

// SkelAgreement runs a quick cross-check of the Go skeleton library
// (operational vs declarative) over a pseudo-random workload; it returns
// true when all skeletons agree.
func SkelAgreement() bool {
	xs := make([]int, 200)
	for i := range xs {
		xs[i] = i * 7 % 31
	}
	comp := func(x int) int { return x*x + 1 }
	acc := func(a, b int) int { return a + b }
	if skel.DFSeq(8, comp, acc, 0, xs) != skel.DFPar(8, comp, acc, 0, xs) {
		return false
	}
	split := func(v []int) [][]int {
		var out [][]int
		for i := 0; i < 8; i++ {
			out = append(out, v[i*len(v)/8:(i+1)*len(v)/8])
		}
		return out
	}
	sum := func(v []int) int {
		s := 0
		for _, x := range v {
			s += x
		}
		return s
	}
	if skel.SCMSeq(8, split, sum, sum, xs) != skel.SCMPar(8, split, sum, sum, xs) {
		return false
	}
	return true
}

// ---------------------------------------------------------------------------
// E10 — ablation: structured skeleton-aware placement vs generic list
// scheduling (a design choice DESIGN.md calls out: SKiPPER's placement
// exploits skeleton structure that a generic scheduler cannot see).

// E10Result compares the two distribution strategies on the tracking app.
type E10Result struct {
	StructuredMS float64
	ListSchedMS  float64
	// Advantage is (list - structured) / structured; positive means the
	// skeleton-aware placement wins.
	AdvantagePct float64
}

// E10 measures the reinitialization-phase latency (the load-heavy phase)
// under both distribution strategies.
func E10(w io.Writer, iters int) (*E10Result, error) {
	measure := func(strat syndex.Strategy) (float64, error) {
		s, reg, rec, err := compileTracking(8, 512, 512, 3, 5, arch.Ring(8), strat)
		if err != nil {
			return 0, err
		}
		res, err := sim.Run(s, reg, sim.Options{Iters: iters})
		if err != nil {
			return 0, err
		}
		var reinit []float64
		for i, r := range rec.Results {
			if i < len(res.Iters) && !r.Tracking {
				reinit = append(reinit, res.Iters[i].Latency)
			}
		}
		if len(reinit) == 0 {
			return 0, fmt.Errorf("harness: no reinit iterations under %v", strat)
		}
		return mean(reinit), nil
	}
	st, err := measure(syndex.Structured)
	if err != nil {
		return nil, err
	}
	ls, err := measure(syndex.ListSched)
	if err != nil {
		return nil, err
	}
	out := &E10Result{
		StructuredMS: st * 1000,
		ListSchedMS:  ls * 1000,
		AdvantagePct: (ls - st) / st * 100,
	}
	fmt.Fprintf(w, "E10 (ablation): distribution strategy, tracking reinit on ring(8)\n")
	fmt.Fprintf(w, "  structured (skeleton-aware): %7.1f ms\n", out.StructuredMS)
	fmt.Fprintf(w, "  list scheduling (generic):   %7.1f ms\n", out.ListSchedMS)
	fmt.Fprintf(w, "  structured advantage:        %7.1f %%\n", out.AdvantagePct)
	return out, nil
}

// ---------------------------------------------------------------------------
// E11 — topology sensitivity: the same application on the physical
// topologies Transvision "can be configured according to" (paper §4/ref 8).

// E11Row is one topology's result.
type E11Row struct {
	Topology string
	ReinitMS float64
}

// E11 measures the reinitialization latency of the tracking application on
// different 8-processor interconnects.
func E11(w io.Writer, iters int) ([]E11Row, error) {
	topos := []*arch.Arch{
		arch.Ring(8), arch.Chain(8), arch.Star(8), arch.Hypercube(3),
		arch.Torus(4, 2), arch.Full(8),
	}
	fmt.Fprintf(w, "E11: topology sensitivity (tracking reinit, 8 processors)\n")
	fmt.Fprintf(w, "  topology       reinit\n")
	var rows []E11Row
	for _, a := range topos {
		s, reg, rec, err := compileTracking(8, 512, 512, 3, 5, a, syndex.Structured)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(s, reg, sim.Options{Iters: iters})
		if err != nil {
			return nil, err
		}
		var reinit []float64
		for i, r := range rec.Results {
			if i < len(res.Iters) && !r.Tracking {
				reinit = append(reinit, res.Iters[i].Latency)
			}
		}
		row := E11Row{Topology: a.Name, ReinitMS: mean(reinit) * 1000}
		rows = append(rows, row)
		fmt.Fprintf(w, "  %-13s %7.1f ms\n", row.Topology, row.ReinitMS)
	}
	return rows, nil
}
