package harness

import (
	"io"
	"testing"
)

// TestE4IdenticalOverAllTransports is the transport acceptance gate: the
// emulation/executive/simulator equivalence (E4) must hold with the
// executive running in-process AND split across TCP node processes.
func TestE4IdenticalOverAllTransports(t *testing.T) {
	for _, tr := range Transports {
		t.Run(tr, func(t *testing.T) {
			res, err := E4On(io.Discard, 6, tr)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Identical {
				t.Fatalf("execution paths diverge over %s transport", tr)
			}
			if res.Messages == 0 {
				t.Fatalf("%s: coordinator reported zero messages", tr)
			}
			// Hops vs Direct semantics (exec.RunResult godoc): hops are
			// forwarder link traversals — store-and-forward routing on mem,
			// hub relays on net; direct counts peer-mesh frames and is always
			// zero on mem and on the hub itself.
			switch tr {
			case "mem":
				if res.Hops == 0 {
					t.Error("mem: ring routing must store-and-forward (Hops == 0)")
				}
				if res.Direct != 0 {
					t.Errorf("mem: Direct must be zero, got %d", res.Direct)
				}
			case "tcp":
				if res.Hops != 0 {
					t.Errorf("tcp: hub relayed %d frames; the peer mesh should carry all node traffic", res.Hops)
				}
				if res.Direct != 0 {
					t.Errorf("tcp: coordinator (hub) counted %d direct frames; Direct is sender-side and the hub never uses the mesh", res.Direct)
				}
			}
		})
	}
}

// TestPipelinedIdenticalOverAllTransports: the software-pipelined itermem
// executive (DESIGN.md §12) must reproduce the sequential executive's
// tracking results bit for bit on every transport — in-process goroutines,
// localhost TCP node processes, and unix-domain-socket node processes.
func TestPipelinedIdenticalOverAllTransports(t *testing.T) {
	const iters = 6
	ref, _, err := runExecutiveOn("mem", iters)
	if err != nil {
		t.Fatal(err)
	}
	sp := e4Spec(iters)
	sp.Pipeline = true
	for _, tr := range Transports {
		t.Run(tr, func(t *testing.T) {
			got, _, err := runExecutiveSpec(tr, sp)
			if err != nil {
				t.Fatal(err)
			}
			if !resultsIdentical(ref, got) {
				t.Fatalf("pipelined executive over %s diverges from the sequential reference", tr)
			}
		})
	}
}

// TestE1E5UnaffectedByTransport pins that the latency (E1) and load
// balancing (E5) experiments still pass alongside the transport-split
// executive: E1 models the network in virtual time and E5 in closed form,
// so their numbers are transport-independent by construction — but they
// must keep reproducing the paper's envelope while the tcp machinery is
// linked in.
func TestE1E5UnaffectedByTransport(t *testing.T) {
	e1, err := E1(io.Discard, 40)
	if err != nil {
		t.Fatal(err)
	}
	if e1.TrackingMS <= 0 || e1.TrackingMS >= 40 {
		t.Fatalf("E1 tracking latency %.1f ms outside envelope", e1.TrackingMS)
	}
	if e1.ReinitMS < 80 || e1.ReinitMS > 120 {
		t.Fatalf("E1 reinit latency %.1f ms outside envelope", e1.ReinitMS)
	}
	e5, err := E5(io.Discard, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !e5.DFWinsOnSkewed {
		t.Fatal("E5: dynamic farm no longer beats static split on skewed loads")
	}
}
