package harness

import (
	"io"
	"testing"
)

// TestE4IdenticalOverAllTransports is the transport acceptance gate: the
// emulation/executive/simulator equivalence (E4) must hold with the
// executive running in-process AND split across TCP node processes.
func TestE4IdenticalOverAllTransports(t *testing.T) {
	for _, tr := range Transports {
		t.Run(tr, func(t *testing.T) {
			res, err := E4On(io.Discard, 6, tr)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Identical {
				t.Fatalf("execution paths diverge over %s transport", tr)
			}
		})
	}
}

// TestE1E5UnaffectedByTransport pins that the latency (E1) and load
// balancing (E5) experiments still pass alongside the transport-split
// executive: E1 models the network in virtual time and E5 in closed form,
// so their numbers are transport-independent by construction — but they
// must keep reproducing the paper's envelope while the tcp machinery is
// linked in.
func TestE1E5UnaffectedByTransport(t *testing.T) {
	e1, err := E1(io.Discard, 40)
	if err != nil {
		t.Fatal(err)
	}
	if e1.TrackingMS <= 0 || e1.TrackingMS >= 40 {
		t.Fatalf("E1 tracking latency %.1f ms outside envelope", e1.TrackingMS)
	}
	if e1.ReinitMS < 80 || e1.ReinitMS > 120 {
		t.Fatalf("E1 reinit latency %.1f ms outside envelope", e1.ReinitMS)
	}
	e5, err := E5(io.Discard, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !e5.DFWinsOnSkewed {
		t.Fatal("E5: dynamic farm no longer beats static split on skewed loads")
	}
}
