// Package repl implements an interactive toplevel for the SKiPPER
// specification language, in the spirit of the Caml toplevel the paper's
// workflow revolves around: declarations accumulate, expressions are
// type-checked and evaluated immediately against the declarative skeleton
// semantics, and the process graph of the current program can be inspected
// at any point.
//
// Extern declarations are stubbed automatically (like skipperc), so the
// toplevel is self-contained; applications embedding the REPL can supply a
// real registry instead.
package repl

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"skipper/internal/dsl/ast"
	"skipper/internal/dsl/eval"
	"skipper/internal/dsl/parser"
	"skipper/internal/dsl/types"
	"skipper/internal/expand"
	"skipper/internal/stubreg"
	"skipper/internal/value"
)

// Session is an interactive toplevel session.
type Session struct {
	decls []ast.Decl
	reg   *value.Registry
	// externReg tracks stubbed externs so re-checking the accumulated
	// program keeps working.
	out io.Writer
	// Iters bounds itermem emulation runs triggered from the REPL.
	Iters int
}

// New returns a session writing results to out. reg may be nil, in which
// case externs are stubbed automatically as they are declared.
func New(out io.Writer, reg *value.Registry) *Session {
	if reg == nil {
		reg = value.NewRegistry()
	}
	return &Session{out: out, reg: reg, Iters: 3}
}

// program returns the accumulated declarations as a Program.
func (s *Session) program() *ast.Program {
	return &ast.Program{Decls: append([]ast.Decl{}, s.decls...)}
}

// Eval processes one complete input (ending in ";;" for program text, or a
// ":" command) and writes the response. It returns false when the session
// should end.
func (s *Session) Eval(input string) bool {
	input = strings.TrimSpace(input)
	switch {
	case input == "":
		return true
	case strings.HasPrefix(input, ":"):
		return s.command(input)
	}
	if err := s.evalProgramText(input); err != nil {
		fmt.Fprintf(s.out, "error: %v\n", err)
	}
	return true
}

func (s *Session) command(input string) bool {
	cmd, arg, _ := strings.Cut(strings.TrimSpace(input), " ")
	arg = strings.TrimSpace(arg)
	switch cmd {
	case ":quit", ":q":
		return false
	case ":help", ":h":
		fmt.Fprint(s.out, `commands:
  <decl>;;        add a declaration (let / type / extern)
  <expr>;;        evaluate an expression (bound to "it")
  :type <expr>    show an expression's inferred type
  :graph          show the process graph of the current main (DOT)
  :list           list accumulated declarations
  :reset          drop all declarations
  :quit           leave the toplevel
`)
	case ":list":
		for _, d := range s.decls {
			fmt.Fprintln(s.out, d.String())
		}
	case ":reset":
		s.decls = nil
		fmt.Fprintln(s.out, "session cleared")
	case ":type":
		if err := s.showType(arg); err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
		}
	case ":graph":
		if err := s.showGraph(); err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
		}
	default:
		fmt.Fprintf(s.out, "unknown command %s (:help for help)\n", cmd)
	}
	return true
}

// evalProgramText parses input either as declarations or, failing that, as
// an expression bound to "it".
func (s *Session) evalProgramText(input string) error {
	if !strings.HasSuffix(input, ";;") {
		input += ";;"
	}
	prog, declErr := parser.Parse(input)
	if declErr != nil {
		// Retry as an expression.
		exprSrc := "let it = (" + strings.TrimSuffix(input, ";;") + ");;"
		prog2, exprErr := parser.Parse(exprSrc)
		if exprErr != nil {
			return declErr
		}
		prog = prog2
	}
	// Tentatively extend the session and type-check the whole program.
	candidate := append(append([]ast.Decl{}, s.decls...), prog.Decls...)
	full := &ast.Program{Decls: candidate}
	info, err := types.Check(full)
	if err != nil {
		return err
	}
	// Stub any newly declared externs.
	for _, d := range prog.Decls {
		if ext, ok := d.(*ast.DExtern); ok {
			s.ensureStub(ext)
		}
	}
	// Evaluate and report the new bindings.
	em := eval.New(s.reg, eval.Options{MaxIters: s.Iters})
	results, err := em.Run(full)
	if err != nil {
		return err
	}
	s.decls = candidate
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.DType:
			fmt.Fprintf(s.out, "type %s\n", d.Name)
		case *ast.DExtern:
			fmt.Fprintf(s.out, "extern %s : %s (stubbed)\n", d.Name, d.Sig)
		case *ast.DLet:
			if d.Name == "_" {
				continue
			}
			sch := info.Types[d.Name]
			ty := "?"
			if sch != nil {
				ty = sch.String()
			}
			fmt.Fprintf(s.out, "val %s : %s = %s\n", d.Name, ty, value.Show(results[d.Name]))
		}
	}
	return nil
}

// ensureStub registers a type-directed placeholder for a declared extern
// if absent.
func (s *Session) ensureStub(ext *ast.DExtern) {
	if _, ok := s.reg.Lookup(ext.Name); ok {
		return
	}
	s.reg.Register(stubreg.FuncFor(ext))
}

func (s *Session) showType(exprSrc string) error {
	if exprSrc == "" {
		return fmt.Errorf(":type needs an expression")
	}
	src := "let it = (" + exprSrc + ");;"
	prog, err := parser.Parse(src)
	if err != nil {
		return err
	}
	full := &ast.Program{Decls: append(append([]ast.Decl{}, s.decls...), prog.Decls...)}
	info, err := types.Check(full)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "%s : %s\n", exprSrc, info.Types["it"])
	return nil
}

func (s *Session) showGraph() error {
	full := s.program()
	info, err := types.Check(full)
	if err != nil {
		return err
	}
	res, err := expand.Expand(full, info, s.reg)
	if err != nil {
		return err
	}
	if res.ConstFolded {
		fmt.Fprintf(s.out, "main folds to the constant %s\n", value.Show(res.MainConst))
		return nil
	}
	fmt.Fprint(s.out, res.Graph.DOT("repl"))
	return nil
}

// Run drives a session over a reader, accumulating lines until a complete
// input (";;" or a ":" command) is available. It is the main loop of the
// skipper-top binary.
func Run(in io.Reader, out io.Writer, banner bool) error {
	s := New(out, nil)
	if banner {
		fmt.Fprintln(out, "SKiPPER toplevel — :help for commands, :quit to exit")
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if banner {
			if pending.Len() == 0 {
				fmt.Fprint(out, "# ")
			} else {
				fmt.Fprint(out, "  ")
			}
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, ":") {
			if !s.Eval(trimmed) {
				return nil
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		if strings.Contains(line, ";;") {
			input := pending.String()
			pending.Reset()
			if !s.Eval(input) {
				return nil
			}
		}
		prompt()
	}
	return sc.Err()
}
