package repl

import (
	"strings"
	"testing"
)

// session runs a sequence of inputs and returns the combined output.
func session(t *testing.T, inputs ...string) string {
	t.Helper()
	var out strings.Builder
	s := New(&out, nil)
	for _, in := range inputs {
		s.Eval(in)
	}
	return out.String()
}

func TestBindAndEvaluate(t *testing.T) {
	out := session(t,
		"let x = 21;;",
		"x + x;;",
	)
	if !strings.Contains(out, "val x : int = 21") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "val it : int = 42") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestExpressionWithoutTerminator(t *testing.T) {
	out := session(t, "1 + 2")
	if !strings.Contains(out, "val it : int = 3") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestDeclarationsAccumulate(t *testing.T) {
	out := session(t,
		"let double x = 2 * x;;",
		"double 10;;",
	)
	if !strings.Contains(out, "val it : int = 20") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestTypeCommand(t *testing.T) {
	out := session(t,
		":type fun x -> (x, x)",
	)
	if !strings.Contains(out, "'a -> 'a * 'a") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestTypeOfSkeleton(t *testing.T) {
	out := session(t, ":type df")
	if !strings.Contains(out, "int -> ('a -> 'b) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestExternIsStubbed(t *testing.T) {
	out := session(t,
		"type img;;",
		"extern load : int -> img;;",
		"load 3;;",
	)
	if !strings.Contains(out, "extern load : int -> img (stubbed)") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, `val it : img = "<load>"`) {
		t.Fatalf("output:\n%s", out)
	}
}

func TestTypeErrorsReported(t *testing.T) {
	out := session(t, "1 + true;;")
	if !strings.Contains(out, "error:") {
		t.Fatalf("output:\n%s", out)
	}
	// A failed input must not pollute the session.
	out2 := session(t, "let x = true;;", "let y = x + 1;;", "x;;")
	if !strings.Contains(out2, "val it : bool = true") {
		t.Fatalf("output:\n%s", out2)
	}
}

func TestGraphCommand(t *testing.T) {
	out := session(t,
		"extern src : int -> int list;;",
		"extern sq : int -> int;;",
		"extern add : int -> int -> int;;",
		"let main = df 2 sq add 0 (src 4);;",
		":graph",
	)
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "Worker<sq>") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestGraphOnConstMain(t *testing.T) {
	out := session(t, "let main = 1 + 1;;", ":graph")
	if !strings.Contains(out, "folds to the constant 2") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestListAndReset(t *testing.T) {
	out := session(t, "let a = 1;;", ":list", ":reset", ":list")
	if !strings.Contains(out, "let a = 1;;") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "session cleared") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestHelpAndUnknown(t *testing.T) {
	out := session(t, ":help", ":wat")
	if !strings.Contains(out, "commands:") || !strings.Contains(out, "unknown command") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestQuit(t *testing.T) {
	var sb strings.Builder
	s := New(&sb, nil)
	if s.Eval(":quit") {
		t.Fatal(":quit should end the session")
	}
}

func TestRunLoop(t *testing.T) {
	in := strings.NewReader(`
let x = 6;;
let y =
  x * 7;;
y;;
:type y
:quit
`)
	var out strings.Builder
	if err := Run(in, &out, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "val y : int = 42") {
		t.Fatalf("output:\n%s", got)
	}
	if !strings.Contains(got, "val it : int = 42") {
		t.Fatalf("output:\n%s", got)
	}
	if !strings.Contains(got, "y : int") {
		t.Fatalf("output:\n%s", got)
	}
}

func TestRunLoopEOF(t *testing.T) {
	var out strings.Builder
	if err := Run(strings.NewReader("let a = 1;;\n"), &out, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SKiPPER toplevel") {
		t.Fatalf("banner missing:\n%s", out.String())
	}
}

func TestRecursionInREPL(t *testing.T) {
	out := session(t,
		"let rec fact n = if n <= 1 then 1 else n * fact (n - 1);;",
		"fact 6;;",
	)
	if !strings.Contains(out, "val it : int = 720") {
		t.Fatalf("output:\n%s", out)
	}
}
