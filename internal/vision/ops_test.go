package vision

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestThreshold(t *testing.T) {
	im := NewImage(3, 1)
	im.Pix = []uint8{10, 128, 250}
	b := Threshold(im, 128)
	want := []uint8{0, 255, 255}
	for i := range want {
		if b.Pix[i] != want[i] {
			t.Fatalf("pix %d = %d, want %d", i, b.Pix[i], want[i])
		}
	}
}

func TestCountAboveAndHistogram(t *testing.T) {
	im := NewImage(4, 1)
	im.Pix = []uint8{0, 5, 5, 200}
	if got := CountAbove(im, 5); got != 3 {
		t.Fatalf("CountAbove = %d, want 3", got)
	}
	h := Histogram(im)
	if h[0] != 1 || h[5] != 2 || h[200] != 1 {
		t.Fatalf("bad histogram: h[0]=%d h[5]=%d h[200]=%d", h[0], h[5], h[200])
	}
}

func TestLabelSimpleShapes(t *testing.T) {
	im := NewImage(8, 4)
	FillRect(im, Rect{0, 0, 2, 2}, 255) // component 1
	FillRect(im, Rect{4, 0, 6, 1}, 255) // component 2
	FillRect(im, Rect{6, 3, 8, 4}, 255) // component 3
	lr := Label(im, 128)
	if lr.N != 3 {
		t.Fatalf("N = %d, want 3", lr.N)
	}
	if lr.Labels[0] != 1 || lr.Labels[4] != 2 || lr.Labels[3*8+6] != 3 {
		t.Fatalf("unexpected labels: %v", lr.Labels)
	}
}

func TestLabelUShapeMerges(t *testing.T) {
	// A 'U' shape forces pass-1 to create two provisional labels that must
	// be merged by union-find when the bottom bar connects them.
	im := NewImage(5, 4)
	FillRect(im, Rect{0, 0, 1, 4}, 255)
	FillRect(im, Rect{4, 0, 5, 4}, 255)
	FillRect(im, Rect{0, 3, 5, 4}, 255)
	lr := Label(im, 1)
	if lr.N != 1 {
		t.Fatalf("U shape should be one component, got %d", lr.N)
	}
}

func TestLabelDiagonalNotConnected(t *testing.T) {
	// 4-connectivity: diagonal pixels are separate components.
	im := NewImage(2, 2)
	im.Set(0, 0, 255)
	im.Set(1, 1, 255)
	if lr := Label(im, 1); lr.N != 2 {
		t.Fatalf("diagonal pixels should be 2 components, got %d", lr.N)
	}
}

func TestComponentsStatistics(t *testing.T) {
	im := NewImage(10, 10)
	FillRect(im, Rect{2, 3, 5, 6}, 200) // 3x3 block
	comps := Components(im, 100, 1)
	if len(comps) != 1 {
		t.Fatalf("got %d components", len(comps))
	}
	c := comps[0]
	if c.Area != 9 {
		t.Fatalf("Area = %d, want 9", c.Area)
	}
	if math.Abs(c.CX-3) > 1e-9 || math.Abs(c.CY-4) > 1e-9 {
		t.Fatalf("centroid (%g,%g), want (3,4)", c.CX, c.CY)
	}
	if c.BBox != (Rect{2, 3, 5, 6}) {
		t.Fatalf("BBox = %v", c.BBox)
	}
	if c.SumVal != 9*200 {
		t.Fatalf("SumVal = %d", c.SumVal)
	}
}

func TestComponentsMinAreaFilter(t *testing.T) {
	im := NewImage(10, 10)
	im.Set(0, 0, 255)                   // 1-pixel noise blob
	FillRect(im, Rect{5, 5, 8, 8}, 255) // real blob
	comps := Components(im, 128, 4)
	if len(comps) != 1 || comps[0].Area != 9 {
		t.Fatalf("minArea filter failed: %+v", comps)
	}
}

func TestComponentsEmptyImage(t *testing.T) {
	if comps := Components(NewImage(16, 16), 1, 1); comps != nil {
		t.Fatalf("expected nil, got %v", comps)
	}
}

// normalize sorts components by centroid so union-find and flood-fill
// results can be compared independent of label ordering.
func normalize(cs []Component) []Component {
	out := make([]Component, len(cs))
	copy(out, cs)
	sort.Slice(out, func(i, j int) bool {
		if out[i].CY != out[j].CY {
			return out[i].CY < out[j].CY
		}
		return out[i].CX < out[j].CX
	})
	for i := range out {
		out[i].Label = 0
	}
	return out
}

func componentsEqual(a, b []Component) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Area != b[i].Area || a[i].BBox != b[i].BBox || a[i].SumVal != b[i].SumVal {
			return false
		}
		if math.Abs(a[i].CX-b[i].CX) > 1e-9 || math.Abs(a[i].CY-b[i].CY) > 1e-9 {
			return false
		}
	}
	return true
}

// Property: union-find labelling agrees with brute-force flood fill on
// random binary images of random sizes.
func TestLabelMatchesFloodFill(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 1+rng.Intn(40), 1+rng.Intn(40)
		im := NewImage(w, h)
		density := rng.Float64()
		for i := range im.Pix {
			if rng.Float64() < density {
				im.Pix[i] = uint8(128 + rng.Intn(128))
			}
		}
		a := normalize(Components(im, 100, 1))
		b := normalize(FloodComponents(im, 100, 1))
		return componentsEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDrawRectOutline(t *testing.T) {
	im := NewImage(6, 6)
	DrawRect(im, Rect{1, 1, 5, 5}, 9)
	if im.At(1, 1) != 9 || im.At(4, 4) != 9 || im.At(1, 4) != 9 {
		t.Fatal("outline corners not drawn")
	}
	if im.At(2, 2) != 0 {
		t.Fatal("interior should be untouched")
	}
}

func TestFillDisc(t *testing.T) {
	im := NewImage(11, 11)
	FillDisc(im, 5, 5, 3, 255)
	if im.At(5, 5) != 255 || im.At(5, 2) != 255 || im.At(2, 5) != 255 {
		t.Fatal("disc pixels missing")
	}
	if im.At(0, 0) != 0 || im.At(8, 8) != 0 {
		t.Fatal("disc painted outside radius")
	}
	// Clipping: disc centered off-image must not panic.
	FillDisc(im, -2, -2, 3, 255)
}

func TestFitLineRecoversSlope(t *testing.T) {
	// x = 2y + 3 exactly.
	var xs, ys []float64
	for y := 0; y < 10; y++ {
		ys = append(ys, float64(y))
		xs = append(xs, 2*float64(y)+3)
	}
	l := FitLine(xs, ys)
	if math.Abs(l.A-2) > 1e-9 || math.Abs(l.B-3) > 1e-9 {
		t.Fatalf("fit = %+v, want A=2 B=3", l)
	}
	if l.N != 10 {
		t.Fatalf("N = %d", l.N)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if l := FitLine(nil, nil); l.N != 0 {
		t.Fatal("empty fit should have N=0")
	}
	// Single point: vertical line through the point.
	l := FitLine([]float64{7}, []float64{3})
	if l.A != 0 || l.B != 7 {
		t.Fatalf("single-point fit = %+v", l)
	}
	// All points on one row: denominator degenerate.
	l = FitLine([]float64{1, 3}, []float64{5, 5})
	if l.A != 0 || math.Abs(l.B-2) > 1e-9 {
		t.Fatalf("same-row fit = %+v", l)
	}
}

func TestRowMaxima(t *testing.T) {
	im := NewImage(10, 5)
	for y := 0; y < 5; y++ {
		im.Set(y+2, y, 255) // bright diagonal: x = y + 2
	}
	xs, ys := RowMaxima(im, Rect{0, 0, 10, 5}, 128)
	if len(xs) != 5 {
		t.Fatalf("got %d maxima", len(xs))
	}
	for i := range xs {
		if xs[i] != ys[i]+2 {
			t.Fatalf("maximum %d at x=%g, want %g", i, xs[i], ys[i]+2)
		}
	}
	// Below threshold: no samples.
	if xs, _ := RowMaxima(im, Rect{0, 0, 10, 5}, 255); len(xs) != 5 {
		t.Fatalf("threshold=255 should still catch 255 pixels, got %d", len(xs))
	}
	if xs, _ := RowMaxima(NewImage(4, 4), Rect{0, 0, 4, 4}, 1); len(xs) != 0 {
		t.Fatal("dark image should yield no maxima")
	}
}

func TestMergeFits(t *testing.T) {
	// Two bands both supporting x = y + 1.
	bands := []Rect{{0, 0, 10, 5}, {0, 5, 10, 10}}
	fits := []Line{{A: 1, B: 1, N: 5}, {A: 1, B: 1, N: 5}}
	l := MergeFits(fits, bands)
	if math.Abs(l.A-1) > 1e-9 || math.Abs(l.B-1) > 1e-9 {
		t.Fatalf("merged fit = %+v", l)
	}
	// A band with no support is ignored.
	fits[1].N = 0
	l = MergeFits(fits, bands)
	if math.Abs(l.A-1) > 1e-9 {
		t.Fatalf("merge with empty band = %+v", l)
	}
}
