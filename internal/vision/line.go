package vision

import "math"

// Line is a 2D line in slope-intercept form x = A*y + B, i.e. parameterized
// by row. Road lane markings are near-vertical in the image, so expressing x
// as a function of y avoids infinite slopes.
type Line struct {
	A, B float64
	N    int // number of supporting points
}

// XAt returns the line's x coordinate at row y.
func (l Line) XAt(y float64) float64 { return l.A*y + l.B }

// FitLine computes the least-squares fit x = A*y + B through the given
// points. With fewer than 2 points (or degenerate geometry) it returns a
// vertical line through the mean x.
func FitLine(xs, ys []float64) Line {
	n := len(xs)
	if n == 0 {
		return Line{}
	}
	var sx, sy, sxy, syy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	fn := float64(n)
	den := fn*syy - sy*sy
	if n < 2 || math.Abs(den) < 1e-9 {
		return Line{A: 0, B: sx / fn, N: n}
	}
	a := (fn*sxy - sx*sy) / den
	b := (sx - a*sy) / fn
	return Line{A: a, B: b, N: n}
}

// RowMaxima scans each row of the band r in im and returns the column of the
// brightest pixel per row, provided it exceeds threshold t. It is the
// per-band feature extractor of the road-following (white line detection)
// application: one sample point per scanned row.
func RowMaxima(im *Image, r Rect, t uint8) (xs, ys []float64) {
	r = r.Intersect(Rect{0, 0, im.W, im.H})
	for y := r.Y0; y < r.Y1; y++ {
		best, bestX := uint8(0), -1
		for x := r.X0; x < r.X1; x++ {
			if p := im.Pix[y*im.W+x]; p > best {
				best, bestX = p, x
			}
		}
		if bestX >= 0 && best >= t {
			xs = append(xs, float64(bestX))
			ys = append(ys, float64(y))
		}
	}
	return xs, ys
}

// MergeFits combines per-band line fits into a single global fit by
// refitting through the band fits' endpoints weighted by support count.
// It is the merge function of the scm-based road-following example.
func MergeFits(fits []Line, bands []Rect) Line {
	var xs, ys []float64
	for i, f := range fits {
		if f.N == 0 {
			continue
		}
		y0, y1 := float64(bands[i].Y0), float64(bands[i].Y1-1)
		for k := 0; k < f.N; k++ { // weight by support
			xs = append(xs, f.XAt(y0), f.XAt(y1))
			ys = append(ys, y0, y1)
		}
	}
	return FitLine(xs, ys)
}
