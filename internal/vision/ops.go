package vision

// Threshold returns a binary image: 255 where the source pixel is >= t,
// 0 elsewhere. "Marks are detected as connected groups of pixels with values
// above a given threshold" (paper §4).
func Threshold(im *Image, t uint8) *Image {
	return ThresholdInto(getImageDirty(im.W, im.H), im, t)
}

// ThresholdInto writes the thresholded image into dst (reshaped to im's
// geometry, reusing its pixel buffer when large enough) and returns dst.
// With a reused dst this is allocation-free — the in-place variant for
// per-frame hot loops. Large frames are processed as row bands across the
// shared skeleton pool (see tile.go); bands write disjoint output rows, so
// the result is identical at any parallelism.
func ThresholdInto(dst *Image, im *Image, t uint8) *Image {
	dst.reset(im.W, im.H)
	if cuts := bandCuts(im.W, im.H); cuts != nil {
		runBands(cuts, func(b, y0, y1 int) { thresholdRows(dst, im, t, y0, y1) })
	} else {
		thresholdRows(dst, im, t, 0, im.H)
	}
	return dst
}

func thresholdRows(dst, im *Image, t uint8, y0, y1 int) {
	w := im.W
	src := im.Pix[y0*w : y1*w]
	out := dst.Pix[y0*w : y1*w]
	for i, p := range src {
		var v uint8
		if p >= t {
			v = 255
		}
		out[i] = v
	}
}

// CountAbove returns the number of pixels with value >= t.
func CountAbove(im *Image, t uint8) int {
	n := 0
	for _, p := range im.Pix {
		if p >= t {
			n++
		}
	}
	return n
}

// Histogram returns the 256-bin gray-level histogram of the image.
func Histogram(im *Image) [256]int {
	var h [256]int
	for _, p := range im.Pix {
		h[p]++
	}
	return h
}

// Component is a connected group of bright pixels together with its first
// order statistics: pixel count, center of gravity and englobing frame
// (bounding box), exactly the per-mark characterization of paper §4.
type Component struct {
	Label  int
	Area   int
	CX, CY float64 // center of gravity
	BBox   Rect    // englobing frame
	SumVal int64   // sum of original gray values (weighted moments)
}

// labelUF is a union-find (disjoint-set) structure over provisional labels,
// with path halving and union by arbitrary order (smaller root wins, which
// keeps labels deterministic). The parent array is reused across frames by
// LabelScratch.
type labelUF struct {
	parent []int32
}

func (u *labelUF) reset() { u.parent = u.parent[:0] }

func (u *labelUF) fresh() int32 {
	l := int32(len(u.parent))
	u.parent = append(u.parent, l)
	return l
}

func (u *labelUF) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

func (u *labelUF) union(a, b int32) int32 {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return ra
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	return ra
}

// LabelResult holds the dense labelling of an image: Labels[i] is 0 for
// background and 1..N for foreground components.
type LabelResult struct {
	W, H   int
	Labels []int32
	N      int
}

// LabelScratch carries every buffer the labelling kernels need — the
// union-find parent array, the provisional→dense remap table, the label
// plane and the per-component statistics — so a caller processing a frame
// stream can reuse one scratch across frames and run the whole
// label+moments pipeline without allocating. The zero value is ready to
// use. A scratch is not safe for concurrent use; results returned by its
// methods alias its buffers and are valid until the next call on the same
// scratch.
type LabelScratch struct {
	uf     labelUF
	bandUF []labelUF // per-band pass-1 union-finds (tiled path)
	off    []int32   // per-band provisional-label offsets
	remap  []int32
	res    LabelResult
	comps  []Component
	sx     []int64
	sy     []int64
}

// labelBand runs the provisional-labelling raster scan over rows [y0,y1),
// merging with the left neighbour and with the up neighbour only when it
// lies inside the band. Provisional label k is stored as k+1 so zero remains
// "background". Labels and union-find entries are band-local: the band reads
// and writes only its own rows, so bands are data-race free.
func labelBand(im *Image, t uint8, labels []int32, uf *labelUF, y0, y1 int) {
	w := im.W
	for y := y0; y < y1; y++ {
		row := y * w
		for x := 0; x < w; x++ {
			if im.Pix[row+x] < t {
				continue
			}
			var left, up int32
			if x > 0 {
				left = labels[row+x-1]
			}
			if y > y0 {
				up = labels[row-w+x]
			}
			switch {
			case left == 0 && up == 0:
				labels[row+x] = uf.fresh() + 1
			case left != 0 && up == 0:
				labels[row+x] = left
			case left == 0 && up != 0:
				labels[row+x] = up
			default:
				labels[row+x] = uf.union(left-1, up-1) + 1
			}
		}
	}
}

// Label performs two-pass 4-connected component labelling with union-find
// on the binary image produced by thresholding im at t. The returned labels
// are dense (1..N) in raster order of first appearance. The result aliases
// the scratch and is valid until the next call on s.
//
// Pass 1 runs as row bands on the shared skeleton pool (tile.go): each band
// labels its rows with a private union-find, then the band structures are
// translated into one global union-find by prefix-sum offsets and the bands
// are stitched with one union per connected pixel pair straddling a cut row.
// Pass 2 resolves every pixel through the global union-find in raster order,
// so the dense output depends only on the connectivity partition — it is
// bit-identical to the sequential labelling at any parallelism.
func (s *LabelScratch) Label(im *Image, t uint8) *LabelResult {
	w, h := im.W, im.H
	res := &s.res
	res.W, res.H = w, h
	if cap(res.Labels) < w*h {
		res.Labels = make([]int32, w*h)
	} else {
		res.Labels = res.Labels[:w*h]
		clear(res.Labels)
	}
	s.uf.reset()
	uf := &s.uf
	cuts := bandCuts(w, h)
	bands := 1
	if cuts != nil {
		bands = len(cuts) - 1
	}
	if cap(s.off) < bands {
		s.off = make([]int32, bands)
	} else {
		s.off = s.off[:bands]
	}
	if cuts == nil {
		// Single band: label straight into the global union-find.
		s.off[0] = 0
		labelBand(im, t, res.Labels, uf, 0, h)
	} else {
		if cap(s.bandUF) < bands {
			bu := make([]labelUF, bands)
			copy(bu, s.bandUF)
			s.bandUF = bu
		} else {
			s.bandUF = s.bandUF[:bands]
		}
		runBands(cuts, func(b, y0, y1 int) {
			bu := &s.bandUF[b]
			bu.reset()
			labelBand(im, t, res.Labels, bu, y0, y1)
		})
		// Translate the band union-finds into the global one: band b's local
		// label l becomes global label off[b]+l, and its parent pointers
		// (band-internal by construction) shift by the same offset.
		for b := 0; b < bands; b++ {
			s.off[b] = int32(len(uf.parent))
			for _, p := range s.bandUF[b].parent {
				uf.parent = append(uf.parent, s.off[b]+p)
			}
		}
		// Stitch the seams: union across every vertically adjacent foreground
		// pair straddling a cut row.
		for b := 1; b < bands; b++ {
			up := (cuts[b] - 1) * w
			down := cuts[b] * w
			for x := 0; x < w; x++ {
				lu, ld := res.Labels[up+x], res.Labels[down+x]
				if lu != 0 && ld != 0 {
					uf.union(s.off[b-1]+lu-1, s.off[b]+ld-1)
				}
			}
		}
	}
	// Pass 2: resolve to dense final labels. Provisional labels are dense
	// (0..len(parent)-1), so a flat remap table replaces the seed's
	// per-frame map[int32]int32 — no hashing, no allocation on reuse.
	nprov := len(uf.parent)
	if cap(s.remap) < nprov {
		s.remap = make([]int32, nprov)
	} else {
		s.remap = s.remap[:nprov]
		clear(s.remap)
	}
	next := int32(1)
	for b := 0; b < bands; b++ {
		y0, y1 := 0, h
		if cuts != nil {
			y0, y1 = cuts[b], cuts[b+1]
		}
		base := s.off[b]
		for i := y0 * w; i < y1*w; i++ {
			l := res.Labels[i]
			if l == 0 {
				continue
			}
			root := uf.find(base + l - 1)
			d := s.remap[root]
			if d == 0 {
				d = next
				next++
				s.remap[root] = d
			}
			res.Labels[i] = d
		}
	}
	res.N = int(next - 1)
	return res
}

// Label is the one-shot form: it labels im with a private scratch. Stream
// processing should hold a LabelScratch and call its Label method instead.
func Label(im *Image, t uint8) *LabelResult {
	var s LabelScratch
	return s.Label(im, t)
}

// Components labels im at threshold t and computes per-component
// statistics, ordered by label (raster order of first appearance). minArea
// filters out small noise blobs (components with Area < minArea are
// dropped; labels of surviving components are NOT renumbered). The returned
// slice aliases the scratch and is valid until the next call on s.
func (s *LabelScratch) Components(im *Image, t uint8, minArea int) []Component {
	lr := s.Label(im, t)
	if lr.N == 0 {
		return nil
	}
	if cap(s.comps) < lr.N {
		s.comps = make([]Component, lr.N)
		s.sx = make([]int64, lr.N)
		s.sy = make([]int64, lr.N)
	} else {
		s.comps = s.comps[:lr.N]
		s.sx = s.sx[:lr.N]
		s.sy = s.sy[:lr.N]
		clear(s.sx)
		clear(s.sy)
	}
	comps, sx, sy := s.comps, s.sx, s.sy
	for i := range comps {
		comps[i] = Component{Label: i + 1, BBox: Rect{X0: lr.W, Y0: lr.H, X1: 0, Y1: 0}}
	}
	for y := 0; y < lr.H; y++ {
		for x := 0; x < lr.W; x++ {
			l := lr.Labels[y*lr.W+x]
			if l == 0 {
				continue
			}
			c := &comps[l-1]
			c.Area++
			sx[l-1] += int64(x)
			sy[l-1] += int64(y)
			c.SumVal += int64(im.Pix[y*lr.W+x])
			if x < c.BBox.X0 {
				c.BBox.X0 = x
			}
			if y < c.BBox.Y0 {
				c.BBox.Y0 = y
			}
			if x+1 > c.BBox.X1 {
				c.BBox.X1 = x + 1
			}
			if y+1 > c.BBox.Y1 {
				c.BBox.Y1 = y + 1
			}
		}
	}
	out := comps[:0]
	for i := range comps {
		if comps[i].Area < minArea {
			continue
		}
		comps[i].CX = float64(sx[i]) / float64(comps[i].Area)
		comps[i].CY = float64(sy[i]) / float64(comps[i].Area)
		out = append(out, comps[i])
	}
	return out
}

// Components is the one-shot form of LabelScratch.Components; the returned
// slice is freshly allocated (safe for callers that retain or append).
func Components(im *Image, t uint8, minArea int) []Component {
	var s LabelScratch
	out := s.Components(im, t, minArea)
	if out == nil {
		return nil
	}
	res := make([]Component, len(out))
	copy(res, out)
	return res
}

// FloodComponents is a brute-force reference implementation of Components
// using BFS flood fill; used by tests to validate the union-find labelling.
func FloodComponents(im *Image, t uint8, minArea int) []Component {
	w, h := im.W, im.H
	seen := make([]bool, w*h)
	var comps []Component
	label := 0
	for y0 := 0; y0 < h; y0++ {
		for x0 := 0; x0 < w; x0++ {
			i0 := y0*w + x0
			if seen[i0] || im.Pix[i0] < t {
				continue
			}
			label++
			c := Component{Label: label, BBox: Rect{x0, y0, x0 + 1, y0 + 1}}
			var sx, sy int64
			queue := []int{i0}
			seen[i0] = true
			for len(queue) > 0 {
				i := queue[0]
				queue = queue[1:]
				x, y := i%w, i/w
				c.Area++
				sx += int64(x)
				sy += int64(y)
				c.SumVal += int64(im.Pix[i])
				c.BBox = c.BBox.Union(Rect{x, y, x + 1, y + 1})
				for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx, ny := x+d[0], y+d[1]
					if nx < 0 || ny < 0 || nx >= w || ny >= h {
						continue
					}
					j := ny*w + nx
					if !seen[j] && im.Pix[j] >= t {
						seen[j] = true
						queue = append(queue, j)
					}
				}
			}
			if c.Area >= minArea {
				c.CX = float64(sx) / float64(c.Area)
				c.CY = float64(sy) / float64(c.Area)
				comps = append(comps, c)
			}
		}
	}
	return comps
}

// DrawRect paints the outline of r with gray value v (used by the display
// function of the tracking demo).
func DrawRect(im *Image, r Rect, v uint8) {
	for x := r.X0; x < r.X1; x++ {
		im.Set(x, r.Y0, v)
		im.Set(x, r.Y1-1, v)
	}
	for y := r.Y0; y < r.Y1; y++ {
		im.Set(r.X0, y, v)
		im.Set(r.X1-1, y, v)
	}
}

// FillRect paints the interior of r with gray value v.
func FillRect(im *Image, r Rect, v uint8) {
	r = r.Intersect(Rect{0, 0, im.W, im.H})
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			im.Pix[y*im.W+x] = v
		}
	}
}

// FillDisc paints a filled disc of radius rad centered at (cx, cy).
func FillDisc(im *Image, cx, cy, rad int, v uint8) {
	for y := cy - rad; y <= cy+rad; y++ {
		for x := cx - rad; x <= cx+rad; x++ {
			dx, dy := x-cx, y-cy
			if dx*dx+dy*dy <= rad*rad {
				im.Set(x, y, v)
			}
		}
	}
}
