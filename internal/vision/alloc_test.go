package vision

import "testing"

// Allocation budgets for the per-frame hot-path kernels: with reused
// destinations/scratch, the in-place variants must be 0-alloc at steady
// state. These tests pin the contract the tracking frame loop relies on.

func allocTestFrame(w, h int) *Image {
	im := NewImage(w, h)
	for i := range im.Pix {
		im.Pix[i] = uint8(i * 37 % 251)
	}
	FillDisc(im, w/3, h/3, 5, 250)
	FillDisc(im, 2*w/3, h/2, 4, 250)
	FillDisc(im, w/2, 2*h/3, 3, 250)
	return im
}

func TestThresholdIntoZeroAlloc(t *testing.T) {
	im := allocTestFrame(128, 128)
	dst := NewImage(128, 128)
	if got := testing.AllocsPerRun(100, func() { ThresholdInto(dst, im, 200) }); got > 0 {
		t.Fatalf("ThresholdInto allocates %.1f allocs/op, want 0", got)
	}
}

func TestLabelScratchZeroAlloc(t *testing.T) {
	im := allocTestFrame(128, 128)
	var s LabelScratch
	s.Label(im, 200) // warm up scratch buffers
	if got := testing.AllocsPerRun(100, func() { s.Label(im, 200) }); got > 0 {
		t.Fatalf("LabelScratch.Label allocates %.1f allocs/op, want 0", got)
	}
}

func TestComponentsScratchZeroAlloc(t *testing.T) {
	im := allocTestFrame(128, 128)
	var s LabelScratch
	s.Components(im, 200, 2)
	if got := testing.AllocsPerRun(100, func() { s.Components(im, 200, 2) }); got > 0 {
		t.Fatalf("LabelScratch.Components allocates %.1f allocs/op, want 0", got)
	}
}

func TestExtractIntoZeroAlloc(t *testing.T) {
	im := allocTestFrame(128, 128)
	var w Window
	r := Rect{X0: 10, Y0: 10, X1: 100, Y1: 90}
	ExtractInto(&w, im, r)
	if got := testing.AllocsPerRun(100, func() { ExtractInto(&w, im, r) }); got > 0 {
		t.Fatalf("ExtractInto allocates %.1f allocs/op, want 0", got)
	}
}

func TestMorphIntoZeroAlloc(t *testing.T) {
	im := allocTestFrame(64, 64)
	dst := NewImage(64, 64)
	if got := testing.AllocsPerRun(50, func() { Dilate3Into(dst, im) }); got > 0 {
		t.Fatalf("Dilate3Into allocates %.1f allocs/op, want 0", got)
	}
	if got := testing.AllocsPerRun(50, func() { Erode3Into(dst, im) }); got > 0 {
		t.Fatalf("Erode3Into allocates %.1f allocs/op, want 0", got)
	}
}

// The in-place variants must agree with their allocating counterparts.
func TestIntoVariantsMatchOneShot(t *testing.T) {
	im := allocTestFrame(96, 80)

	want := Threshold(im, 200)
	dst := NewImage(1, 1) // deliberately too small: reset must grow it
	got := ThresholdInto(dst, im, 200)
	if got.W != want.W || got.H != want.H {
		t.Fatalf("geometry: %dx%d vs %dx%d", got.W, got.H, want.W, want.H)
	}
	for i := range want.Pix {
		if got.Pix[i] != want.Pix[i] {
			t.Fatalf("ThresholdInto differs at %d", i)
		}
	}

	wd := Dilate3(im)
	gd := Dilate3Into(NewImage(0, 0), im)
	for i := range wd.Pix {
		if gd.Pix[i] != wd.Pix[i] {
			t.Fatalf("Dilate3Into differs at %d", i)
		}
	}

	r := Rect{X0: 5, Y0: 7, X1: 60, Y1: 50}
	ww := Extract(im, r)
	var gw Window
	ExtractInto(&gw, im, r)
	if gw.Origin != ww.Origin {
		t.Fatalf("origins differ: %v vs %v", gw.Origin, ww.Origin)
	}
	for i := range ww.Img.Pix {
		if gw.Img.Pix[i] != ww.Img.Pix[i] {
			t.Fatalf("ExtractInto differs at %d", i)
		}
	}
}

// Labelling with scratch reuse must match the one-shot path and the
// brute-force flood-fill oracle across repeated frames.
func TestLabelScratchReuseMatchesOneShot(t *testing.T) {
	var s LabelScratch
	for frame := 0; frame < 5; frame++ {
		im := NewImage(64, 64)
		for i := range im.Pix {
			im.Pix[i] = uint8((i*31 + frame*97) % 256)
		}
		want := Label(im, 180)
		got := s.Label(im, 180)
		if got.N != want.N {
			t.Fatalf("frame %d: N=%d want %d", frame, got.N, want.N)
		}
		for i := range want.Labels {
			if got.Labels[i] != want.Labels[i] {
				t.Fatalf("frame %d: label differs at %d", frame, i)
			}
		}
		gotC := s.Components(im, 180, 1)
		wantC := FloodComponents(im, 180, 1)
		if len(gotC) != len(wantC) {
			t.Fatalf("frame %d: %d components, oracle %d", frame, len(gotC), len(wantC))
		}
	}
}

func TestArenaGetImageIsZeroed(t *testing.T) {
	im := GetImage(32, 32)
	for i := range im.Pix {
		im.Pix[i] = 255
	}
	PutImage(im)
	im2 := GetImage(32, 32)
	for i, p := range im2.Pix {
		if p != 0 {
			t.Fatalf("GetImage returned dirty pixel at %d: %d", i, p)
		}
	}
	PutImage(im2)
	if got := GetImage(8, 4); got.W != 8 || got.H != 4 || len(got.Pix) != 32 {
		t.Fatalf("GetImage geometry wrong: %dx%d len %d", got.W, got.H, len(got.Pix))
	}
}
