package vision

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDilateGrowsBlob(t *testing.T) {
	im := NewImage(7, 7)
	im.Set(3, 3, 255)
	d := Dilate3(im)
	// The single pixel becomes a 3x3 block.
	for y := 2; y <= 4; y++ {
		for x := 2; x <= 4; x++ {
			if d.At(x, y) != 255 {
				t.Fatalf("dilation missing at (%d,%d)", x, y)
			}
		}
	}
	if d.At(1, 1) != 0 || d.At(5, 5) != 0 {
		t.Fatal("dilation leaked")
	}
}

func TestErodeShrinksBlob(t *testing.T) {
	im := NewImage(7, 7)
	FillRect(im, Rect{X0: 2, Y0: 2, X1: 5, Y1: 5}, 255) // 3x3 block
	e := Erode3(im)
	if e.At(3, 3) != 255 {
		t.Fatal("erosion removed the core")
	}
	count := 0
	for _, p := range e.Pix {
		if p == 255 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("erosion left %d pixels, want 1", count)
	}
}

func TestOpenRemovesSpeckle(t *testing.T) {
	im := NewImage(9, 9)
	im.Set(1, 1, 255)                                   // speckle
	FillRect(im, Rect{X0: 4, Y0: 4, X1: 8, Y1: 8}, 255) // real blob (4x4)
	o := Open3(im)
	if o.At(1, 1) != 0 {
		t.Fatal("opening kept the speckle")
	}
	if o.At(5, 5) != 255 || o.At(6, 6) != 255 {
		t.Fatal("opening destroyed the blob core")
	}
}

func TestCloseFillsPinhole(t *testing.T) {
	im := NewImage(9, 9)
	FillRect(im, Rect{X0: 2, Y0: 2, X1: 7, Y1: 7}, 255)
	im.Set(4, 4, 0) // pinhole
	c := Close3(im)
	if c.At(4, 4) != 255 {
		t.Fatal("closing did not fill the pinhole")
	}
}

// Property: erosion ≤ original ≤ dilation, pointwise.
func TestMorphologyOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		im := NewImage(1+rng.Intn(20), 1+rng.Intn(20))
		for i := range im.Pix {
			im.Pix[i] = uint8(rng.Intn(256))
		}
		e, d := Erode3(im), Dilate3(im)
		for i := range im.Pix {
			if e.Pix[i] > im.Pix[i] || im.Pix[i] > d.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: dilation and erosion are duals under complement.
func TestMorphologyDuality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Interior-only check: border behaviour differs because padding is
		// 0 for both operators (not complement-symmetric).
		im := NewImage(8+rng.Intn(10), 8+rng.Intn(10))
		for i := range im.Pix {
			im.Pix[i] = uint8(rng.Intn(256))
		}
		comp := NewImage(im.W, im.H)
		for i := range im.Pix {
			comp.Pix[i] = 255 - im.Pix[i]
		}
		dc := Dilate3(comp)
		e := Erode3(im)
		for y := 1; y < im.H-1; y++ {
			for x := 1; x < im.W-1; x++ {
				if 255-dc.At(x, y) != e.At(x, y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSobelDetectsEdge(t *testing.T) {
	im := NewImage(10, 10)
	FillRect(im, Rect{X0: 5, Y0: 0, X1: 10, Y1: 10}, 200) // vertical edge at x=5
	g := Sobel(im)
	if g.At(5, 5) == 0 || g.At(4, 5) == 0 {
		t.Fatal("edge not detected")
	}
	if g.At(2, 5) != 0 || g.At(8, 5) != 0 {
		t.Fatal("gradient nonzero in flat region")
	}
}

func TestSobelClamps(t *testing.T) {
	im := NewImage(4, 4)
	FillRect(im, Rect{X0: 2, Y0: 0, X1: 4, Y1: 4}, 255)
	g := Sobel(im)
	for _, p := range g.Pix {
		if p > 255 {
			t.Fatal("unclamped") // cannot happen for uint8, kept for clarity
		}
	}
	if g.At(2, 2) != 255 {
		t.Fatalf("strong edge should clamp to 255, got %d", g.At(2, 2))
	}
}

func TestIntegralMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		im := NewImage(1+rng.Intn(25), 1+rng.Intn(25))
		for i := range im.Pix {
			im.Pix[i] = uint8(rng.Intn(256))
		}
		it := NewIntegral(im)
		for trial := 0; trial < 10; trial++ {
			x0, y0 := rng.Intn(im.W+2)-1, rng.Intn(im.H+2)-1
			x1, y1 := x0+rng.Intn(im.W+2), y0+rng.Intn(im.H+2)
			r := Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}
			var want int64
			cl := r.Intersect(Rect{X0: 0, Y0: 0, X1: im.W, Y1: im.H})
			for y := cl.Y0; y < cl.Y1; y++ {
				for x := cl.X0; x < cl.X1; x++ {
					want += int64(im.Pix[y*im.W+x])
				}
			}
			if it.Sum(r) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIntegralMean(t *testing.T) {
	im := NewImage(4, 4)
	im.Fill(10)
	it := NewIntegral(im)
	if got := it.Mean(Rect{X0: 0, Y0: 0, X1: 4, Y1: 4}); got != 10 {
		t.Fatalf("Mean = %v", got)
	}
	if got := it.Mean(Rect{X0: 2, Y0: 2, X1: 2, Y1: 2}); got != 0 {
		t.Fatalf("empty Mean = %v", got)
	}
}

func TestPGMRoundTrip(t *testing.T) {
	im := NewImage(13, 7)
	for i := range im.Pix {
		im.Pix[i] = uint8(i * 5 % 251)
	}
	var buf bytes.Buffer
	if err := EncodePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	back, err := DecodePGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != im.W || back.H != im.H {
		t.Fatalf("geometry %dx%d", back.W, back.H)
	}
	for i := range im.Pix {
		if back.Pix[i] != im.Pix[i] {
			t.Fatalf("pixel %d: %d != %d", i, back.Pix[i], im.Pix[i])
		}
	}
}

func TestPGMDecodeWithComments(t *testing.T) {
	payload := "P5\n# a comment\n2 2\n# another\n255\n\x01\x02\x03\x04"
	im, err := DecodePGM(strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 2 || im.H != 2 || im.Pix[3] != 4 {
		t.Fatalf("decoded %+v", im)
	}
}

func TestPGMDecodeErrors(t *testing.T) {
	cases := []string{
		"P6\n2 2\n255\n\x00\x00\x00\x00", // wrong magic
		"P5\n2 2\n70000\n",               // bad maxval
		"P5\n2 2\n255\n\x00",             // truncated payload
		"P5\n-2 2\n255\n",                // bad integer
		"P5\n0 0\n255\n",                 // degenerate size
		"",                               // empty
	}
	for _, c := range cases {
		if _, err := DecodePGM(strings.NewReader(c)); err == nil {
			t.Fatalf("input %q should fail", c)
		}
	}
}
