package vision

import (
	"strings"
	"testing"
)

func TestNewImageZeroed(t *testing.T) {
	im := NewImage(7, 3)
	if im.W != 7 || im.H != 3 || len(im.Pix) != 21 {
		t.Fatalf("bad image geometry: %+v", im)
	}
	for i, p := range im.Pix {
		if p != 0 {
			t.Fatalf("pixel %d not zeroed: %d", i, p)
		}
	}
}

func TestNewImagePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative size")
		}
	}()
	NewImage(-1, 4)
}

func TestAtSetBounds(t *testing.T) {
	im := NewImage(4, 4)
	im.Set(2, 3, 77)
	if im.At(2, 3) != 77 {
		t.Fatalf("At(2,3) = %d, want 77", im.At(2, 3))
	}
	// Out of bounds reads return 0, writes are no-ops.
	if im.At(-1, 0) != 0 || im.At(0, -1) != 0 || im.At(4, 0) != 0 || im.At(0, 4) != 0 {
		t.Fatal("out-of-bounds At should return 0")
	}
	im.Set(-1, 0, 5)
	im.Set(4, 4, 5)
	for _, p := range im.Pix {
		if p != 0 && p != 77 {
			t.Fatalf("out-of-bounds Set modified image: %d", p)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewImage(3, 3)
	a.Set(1, 1, 9)
	b := a.Clone()
	b.Set(1, 1, 42)
	if a.At(1, 1) != 9 {
		t.Fatal("Clone shares pixel storage with original")
	}
}

func TestFillAndBytes(t *testing.T) {
	im := NewImage(5, 2)
	im.Fill(200)
	for _, p := range im.Pix {
		if p != 200 {
			t.Fatal("Fill missed a pixel")
		}
	}
	if im.Bytes() != 10 {
		t.Fatalf("Bytes = %d, want 10", im.Bytes())
	}
}

func TestRectGeometry(t *testing.T) {
	r := Rect{2, 3, 7, 9}
	if r.W() != 5 || r.H() != 6 || r.Area() != 30 || r.Empty() {
		t.Fatalf("bad rect arithmetic: %v", r)
	}
	if !r.Contains(2, 3) || r.Contains(7, 3) || r.Contains(2, 9) {
		t.Fatal("Contains is not half-open")
	}
	inverted := Rect{5, 5, 1, 1}
	if inverted.W() != 0 || inverted.H() != 0 || !inverted.Empty() {
		t.Fatal("inverted rect should be empty")
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	got := a.Intersect(b)
	if got != (Rect{5, 5, 10, 10}) {
		t.Fatalf("Intersect = %v", got)
	}
	c := Rect{20, 20, 30, 30}
	if !a.Intersect(c).Empty() {
		t.Fatal("disjoint intersect should be empty")
	}
}

func TestRectUnion(t *testing.T) {
	a := Rect{1, 1, 2, 2}
	b := Rect{5, 7, 9, 8}
	if got := a.Union(b); got != (Rect{1, 1, 9, 8}) {
		t.Fatalf("Union = %v", got)
	}
	var empty Rect
	if got := empty.Union(b); got != b {
		t.Fatal("empty union identity failed (left)")
	}
	if got := b.Union(empty); got != b {
		t.Fatal("empty union identity failed (right)")
	}
}

func TestRectInflateClamps(t *testing.T) {
	r := Rect{2, 2, 4, 4}
	got := r.Inflate(3, 5, 5)
	if got != (Rect{0, 0, 5, 5}) {
		t.Fatalf("Inflate = %v", got)
	}
}

func TestExtractWindow(t *testing.T) {
	im := NewImage(8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			im.Set(x, y, uint8(y*8+x))
		}
	}
	w := Extract(im, Rect{2, 3, 5, 6})
	if w.Origin != (Rect{2, 3, 5, 6}) || w.Img.W != 3 || w.Img.H != 3 {
		t.Fatalf("bad window: %+v", w.Origin)
	}
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			want := uint8((y+3)*8 + (x + 2))
			if got := w.Img.At(x, y); got != want {
				t.Fatalf("window pixel (%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
}

func TestExtractClipsToFrame(t *testing.T) {
	im := NewImage(4, 4)
	w := Extract(im, Rect{-5, -5, 100, 2})
	if w.Origin != (Rect{0, 0, 4, 2}) {
		t.Fatalf("clip failed: %v", w.Origin)
	}
	if w.Bytes() != 16+8 {
		t.Fatalf("Bytes = %d", w.Bytes())
	}
}

func TestSplitGridCoversFrame(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 16} {
		bands := SplitGrid(100, 97, n)
		if len(bands) != n {
			t.Fatalf("n=%d: got %d bands", n, len(bands))
		}
		rows := 0
		for i, b := range bands {
			if b.X0 != 0 || b.X1 != 100 {
				t.Fatalf("band %d does not span width: %v", i, b)
			}
			if i > 0 && b.Y0 != bands[i-1].Y1 {
				t.Fatalf("bands %d/%d not contiguous", i-1, i)
			}
			rows += b.H()
		}
		if rows != 97 {
			t.Fatalf("n=%d: bands cover %d rows, want 97", n, rows)
		}
	}
	if SplitGrid(10, 10, 0) != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestASCII(t *testing.T) {
	im := NewImage(10, 10)
	FillRect(im, Rect{0, 0, 5, 10}, 255)
	art := im.ASCII(2, 1)
	if !strings.HasPrefix(art, "@") {
		t.Fatalf("bright half should render '@': %q", art)
	}
	if len(strings.TrimRight(art, "\n")) != 2 {
		t.Fatalf("wrong art width: %q", art)
	}
}
