package vision

import (
	"sync"
	"sync/atomic"
)

// Frame-buffer arena. Per-frame vision pipelines allocate (and immediately
// discard) full-frame images on every iteration; at 512×512 @ 25 Hz that is
// 6.5 MB/s of garbage per stage. The arena recycles pixel buffers through a
// sync.Pool: GetImage is a drop-in replacement for NewImage (the returned
// image is zeroed) and PutImage returns a frame to the pool once the caller
// is done with it. Images that are never Put are simply collected by the
// GC, so the arena is safe to adopt incrementally.

var imagePool = sync.Pool{New: func() any { return &Image{} }}

// arenaHits counts Get calls satisfied by a pooled buffer of sufficient
// capacity; arenaMisses counts those that had to allocate. The ratio is the
// arena's effectiveness gauge on the debug /metrics endpoint.
var arenaHits, arenaMisses atomic.Int64

// ArenaStats reports how many image requests reused pooled pixel memory
// (hits) versus allocated fresh buffers (misses) since process start.
func ArenaStats() (hits, misses int64) {
	return arenaHits.Load(), arenaMisses.Load()
}

// GetImage returns a zeroed W×H image, reusing pooled pixel memory when a
// large-enough buffer is available. Semantics match NewImage exactly.
func GetImage(w, h int) *Image {
	im := getImageDirty(w, h)
	clear(im.Pix)
	return im
}

// getImageDirty returns a W×H image whose pixels may hold stale data. Used
// internally by the *Into kernels that overwrite every pixel anyway.
func getImageDirty(w, h int) *Image {
	if w < 0 || h < 0 {
		panic("vision: invalid image size")
	}
	need := w * h
	im := imagePool.Get().(*Image)
	if cap(im.Pix) < need {
		arenaMisses.Add(1)
		im.Pix = make([]uint8, need)
	} else {
		arenaHits.Add(1)
	}
	im.W, im.H = w, h
	im.Pix = im.Pix[:need]
	return im
}

// PutImage returns im's buffer to the arena. The caller must not use im (or
// any slice of its pixels) afterwards. PutImage(nil) is a no-op.
func PutImage(im *Image) {
	if im == nil {
		return
	}
	imagePool.Put(im)
}
