// Package vision provides the low- and intermediate-level image processing
// primitives that SKiPPER applications are built from: grayscale images,
// thresholding, connected-component labelling, moments, windows of interest
// and simple feature extraction. These are the Go counterparts of the
// "application-specific sequential functions written in C" of the paper.
package vision

import (
	"fmt"
	"strings"
)

// Image is a single-channel 8-bit grayscale image. Pix is stored row-major
// with stride == W, so Pix[y*W+x] addresses pixel (x, y).
type Image struct {
	W, H int
	Pix  []uint8
}

// NewImage returns a zeroed (black) W×H image.
func NewImage(w, h int) *Image {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("vision: invalid image size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y). Out-of-bounds coordinates return 0, which
// keeps window-based code free of border special cases.
func (im *Image) At(x, y int) uint8 {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return 0
	}
	return im.Pix[y*im.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (im *Image) Set(x, y int, v uint8) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = v
}

// reset reshapes im to w×h, reusing the pixel buffer when it is large
// enough; pixel contents are unspecified afterwards. It is the in-place
// kernels' way of adopting a caller-provided destination without
// allocating.
func (im *Image) reset(w, h int) {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("vision: invalid image size %dx%d", w, h))
	}
	need := w * h
	if cap(im.Pix) < need {
		im.Pix = make([]uint8, need)
	} else {
		im.Pix = im.Pix[:need]
	}
	im.W, im.H = w, h
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	out := NewImage(im.W, im.H)
	copy(out.Pix, im.Pix)
	return out
}

// Fill sets every pixel to v.
func (im *Image) Fill(v uint8) {
	for i := range im.Pix {
		im.Pix[i] = v
	}
}

// Bytes returns the in-memory size of the pixel payload, used by the
// communication cost model of the timing simulator.
func (im *Image) Bytes() int { return len(im.Pix) }

// Rect is an axis-aligned rectangle [X0,X1)×[Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 int
}

// W returns the rectangle width (zero for degenerate rectangles).
func (r Rect) W() int {
	if r.X1 < r.X0 {
		return 0
	}
	return r.X1 - r.X0
}

// H returns the rectangle height (zero for degenerate rectangles).
func (r Rect) H() int {
	if r.Y1 < r.Y0 {
		return 0
	}
	return r.Y1 - r.Y0
}

// Area returns W*H.
func (r Rect) Area() int { return r.W() * r.H() }

// Empty reports whether the rectangle contains no pixels.
func (r Rect) Empty() bool { return r.W() == 0 || r.H() == 0 }

// Contains reports whether (x, y) lies inside the rectangle.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{max(r.X0, s.X0), max(r.Y0, s.Y0), min(r.X1, s.X1), min(r.Y1, s.Y1)}
	if out.X1 < out.X0 {
		out.X1 = out.X0
	}
	if out.Y1 < out.Y0 {
		out.Y1 = out.Y0
	}
	return out
}

// Union returns the smallest rectangle containing both r and s. Empty
// rectangles are treated as the identity element.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{min(r.X0, s.X0), min(r.Y0, s.Y0), max(r.X1, s.X1), max(r.Y1, s.Y1)}
}

// Inflate grows the rectangle by d on every side, clamped to [0,w)×[0,h).
func (r Rect) Inflate(d, w, h int) Rect {
	out := Rect{r.X0 - d, r.Y0 - d, r.X1 + d, r.Y1 + d}
	if out.X0 < 0 {
		out.X0 = 0
	}
	if out.Y0 < 0 {
		out.Y0 = 0
	}
	if out.X1 > w {
		out.X1 = w
	}
	if out.Y1 > h {
		out.Y1 = h
	}
	return out
}

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", r.X0, r.X1, r.Y0, r.Y1)
}

// Window is a rectangular region of interest carrying its own copy of the
// pixels, so it can be shipped to a worker processor on its own. Origin
// records where the window sits in the full frame.
type Window struct {
	Origin Rect
	Img    *Image
}

// Extract copies the sub-image of im delimited by r (clipped to the frame)
// into a fresh Window.
func Extract(im *Image, r Rect) Window {
	var w Window
	ExtractInto(&w, im, r)
	return w
}

// ExtractInto copies the sub-image of im delimited by r (clipped to the
// frame) into dst, reusing dst's pixel buffer when large enough. With a
// reused Window this is allocation-free — the hot-path variant for
// per-frame window extraction. Tall windows are copied as row bands across
// the shared skeleton pool (tile.go); bands copy disjoint destination rows,
// so the result is identical at any parallelism.
func ExtractInto(dst *Window, im *Image, r Rect) {
	r = r.Intersect(Rect{0, 0, im.W, im.H})
	if dst.Img == nil {
		dst.Img = &Image{}
	}
	dst.Img.reset(r.W(), r.H())
	w := dst.Img
	if w.W == im.W && r.X0 == 0 {
		// Full-width window: source rows are contiguous, one flat copy.
		copy(w.Pix, im.Pix[r.Y0*im.W:r.Y1*im.W])
	} else if cuts := bandCuts(w.W, w.H); cuts != nil {
		runBands(cuts, func(b, y0, y1 int) { extractRows(w, im, r, y0, y1) })
	} else {
		extractRows(w, im, r, 0, w.H)
	}
	dst.Origin = r
}

// extractRows copies window rows [y0,y1) (window coordinates) out of im.
func extractRows(w, im *Image, r Rect, y0, y1 int) {
	for y := y0; y < y1; y++ {
		src := im.Pix[(r.Y0+y)*im.W+r.X0 : (r.Y0+y)*im.W+r.X1]
		copy(w.Pix[y*w.W:(y+1)*w.W], src)
	}
}

// Bytes returns the transfer size of the window: pixels plus a small
// fixed-size header for the origin rectangle.
func (w Window) Bytes() int {
	if w.Img == nil {
		return 16
	}
	return 16 + w.Img.Bytes()
}

// SplitGrid divides the full frame of size w×h into n near-equal horizontal
// bands (the reinitialization strategy of the paper: "dividing up the whole
// image into n equally-sized sub-windows"). It returns exactly n rectangles,
// the last one absorbing the remainder rows.
func SplitGrid(w, h, n int) []Rect {
	if n <= 0 {
		return nil
	}
	out := make([]Rect, 0, n)
	for i := 0; i < n; i++ {
		y0 := i * h / n
		y1 := (i + 1) * h / n
		out = append(out, Rect{0, y0, w, y1})
	}
	return out
}

// ASCII renders a coarse ASCII-art view of the image (for demo/debug output
// in the examples); each output cell is the maximum of a block of pixels.
func (im *Image) ASCII(cols, rows int) string {
	if cols <= 0 || rows <= 0 || im.W == 0 || im.H == 0 {
		return ""
	}
	const ramp = " .:-=+*#%@"
	var b strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x0, x1 := c*im.W/cols, (c+1)*im.W/cols
			y0, y1 := r*im.H/rows, (r+1)*im.H/rows
			var m uint8
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					if p := im.Pix[y*im.W+x]; p > m {
						m = p
					}
				}
			}
			b.WriteByte(ramp[int(m)*(len(ramp)-1)/255])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
