package vision

import (
	"math/rand"
	"runtime"
	"testing"
)

// The banded kernels must be bit-identical to their straightforward
// sequential counterparts at any parallelism. These tests force a
// multi-worker GOMAXPROCS (so bandCuts actually splits, even on a
// single-CPU host) and compare against naive reference implementations
// over degenerate and awkward geometries.

func withProcs(t *testing.T, n int, f func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

func randomFrame(w, h int, seed int64) *Image {
	im := NewImage(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range im.Pix {
		im.Pix[i] = uint8(rng.Intn(256))
	}
	return im
}

func naiveThreshold(im *Image, t uint8) *Image {
	out := NewImage(im.W, im.H)
	for i, p := range im.Pix {
		if p >= t {
			out.Pix[i] = 255
		}
	}
	return out
}

func naiveDilate3(im *Image) *Image {
	out := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			var m uint8
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if v := im.At(x+dx, y+dy); v > m {
						m = v
					}
				}
			}
			out.Pix[y*im.W+x] = m
		}
	}
	return out
}

func naiveErode3(im *Image) *Image {
	out := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			m := uint8(255)
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if v := im.At(x+dx, y+dy); v < m {
						m = v
					}
				}
			}
			out.Pix[y*im.W+x] = m
		}
	}
	return out
}

func expectPixEqual(t *testing.T, name string, w, h int, got, want []uint8) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s %dx%d: pixel %d (x=%d y=%d) = %d, want %d",
				name, w, h, i, i%w, i/w, got[i], want[i])
		}
	}
}

var tileGeometries = [][2]int{
	{1, 1}, {1, 7}, {7, 1}, {2, 2}, {3, 3}, {2, 200}, {200, 2},
	{17, 129}, {100, 301}, {512, 512},
}

func TestBandCutsProperties(t *testing.T) {
	withProcs(t, 8, func() {
		for _, g := range tileGeometries {
			w, h := g[0], g[1]
			cuts := bandCuts(w, h)
			if cuts == nil {
				continue
			}
			if cuts[0] != 0 || cuts[len(cuts)-1] != h {
				t.Fatalf("%dx%d: cuts %v do not cover [0,%d)", w, h, cuts, h)
			}
			for i := 1; i < len(cuts); i++ {
				if cuts[i] <= cuts[i-1] {
					t.Fatalf("%dx%d: cuts %v not strictly increasing", w, h, cuts)
				}
			}
		}
		if cuts := bandCuts(512, 512); cuts == nil {
			t.Fatalf("512x512 at GOMAXPROCS=8 should band")
		}
	})
	withProcs(t, 1, func() {
		if cuts := bandCuts(512, 512); cuts != nil {
			t.Fatalf("single worker should not band, got %v", cuts)
		}
	})
}

func TestBandedKernelsMatchNaive(t *testing.T) {
	withProcs(t, 8, func() {
		for _, g := range tileGeometries {
			w, h := g[0], g[1]
			im := randomFrame(w, h, int64(w*1000+h))

			got := ThresholdInto(NewImage(0, 0), im, 128)
			expectPixEqual(t, "ThresholdInto", w, h, got.Pix, naiveThreshold(im, 128).Pix)

			got = Dilate3Into(NewImage(0, 0), im)
			expectPixEqual(t, "Dilate3Into", w, h, got.Pix, naiveDilate3(im).Pix)

			got = Erode3Into(NewImage(0, 0), im)
			expectPixEqual(t, "Erode3Into", w, h, got.Pix, naiveErode3(im).Pix)

			if w > 2 && h > 2 {
				r := Rect{X0: 1, Y0: 1, X1: w - 1, Y1: h - 1}
				var win Window
				ExtractInto(&win, im, r)
				for y := 0; y < r.H(); y++ {
					for x := 0; x < r.W(); x++ {
						if win.Img.Pix[y*win.Img.W+x] != im.At(x+1, y+1) {
							t.Fatalf("ExtractInto %dx%d differs at (%d,%d)", w, h, x, y)
						}
					}
				}
			}
		}
	})
}

// Banded labelling must be bit-identical to the single-band labelling: the
// dense output depends only on the connectivity partition, never on how
// pass 1 was split.
func TestBandedLabelMatchesSequential(t *testing.T) {
	for _, g := range tileGeometries {
		w, h := g[0], g[1]
		im := randomFrame(w, h, int64(w*31+h*7))
		// Sparse blobs too, not just dense noise: threshold high.
		for _, thr := range []uint8{100, 240} {
			var want *LabelResult
			withProcs(t, 1, func() {
				var s LabelScratch
				r := s.Label(im, thr)
				want = &LabelResult{W: r.W, H: r.H, N: r.N, Labels: append([]int32(nil), r.Labels...)}
			})
			withProcs(t, 8, func() {
				var s LabelScratch
				got := s.Label(im, thr)
				if got.N != want.N {
					t.Fatalf("%dx%d thr=%d: N=%d want %d", w, h, thr, got.N, want.N)
				}
				for i := range want.Labels {
					if got.Labels[i] != want.Labels[i] {
						t.Fatalf("%dx%d thr=%d: label differs at %d: %d vs %d",
							w, h, thr, i, got.Labels[i], want.Labels[i])
					}
				}
				// Cross-check component count against the flood-fill oracle.
				if comps := FloodComponents(im, thr, 1); len(comps) != got.N {
					t.Fatalf("%dx%d thr=%d: N=%d, oracle %d", w, h, thr, got.N, len(comps))
				}
			})
		}
	}
}

// Scratch reuse across frames of different geometry must stay correct when
// the band count changes between calls.
func TestBandedLabelScratchReuseAcrossGeometries(t *testing.T) {
	withProcs(t, 8, func() {
		var s LabelScratch
		for i, g := range tileGeometries {
			w, h := g[0], g[1]
			im := randomFrame(w, h, int64(i))
			got := s.Label(im, 150)
			if comps := FloodComponents(im, 150, 1); len(comps) != got.N {
				t.Fatalf("%dx%d: N=%d, oracle %d", w, h, got.N, len(comps))
			}
		}
	})
}
