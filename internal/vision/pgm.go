package vision

import (
	"bufio"
	"fmt"
	"io"
)

// EncodePGM writes the image in binary Netpbm P5 format (8-bit grayscale),
// the natural interchange format for the single-channel frames this
// pipeline processes. Any PGM viewer or converter can open the output.
func EncodePGM(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	if _, err := bw.Write(im.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodePGM reads a binary (P5) PGM image with maxval <= 255. Comments and
// arbitrary whitespace in the header are handled per the Netpbm spec.
func DecodePGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := pgmToken(br)
	if err != nil {
		return nil, err
	}
	if magic != "P5" {
		return nil, fmt.Errorf("vision: not a binary PGM (magic %q)", magic)
	}
	w, err := pgmInt(br)
	if err != nil {
		return nil, err
	}
	h, err := pgmInt(br)
	if err != nil {
		return nil, err
	}
	maxval, err := pgmInt(br)
	if err != nil {
		return nil, err
	}
	if w <= 0 || h <= 0 || w*h > 1<<28 {
		return nil, fmt.Errorf("vision: unreasonable PGM geometry %dx%d", w, h)
	}
	if maxval <= 0 || maxval > 255 {
		return nil, fmt.Errorf("vision: unsupported PGM maxval %d", maxval)
	}
	im := NewImage(w, h)
	if _, err := io.ReadFull(br, im.Pix); err != nil {
		return nil, fmt.Errorf("vision: truncated PGM payload: %w", err)
	}
	return im, nil
}

// pgmToken reads the next whitespace-delimited token, skipping # comments.
func pgmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if len(tok) > 0 && err == io.EOF {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case b == '#':
			if _, err := br.ReadString('\n'); err != nil {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

func pgmInt(br *bufio.Reader) (int, error) {
	tok, err := pgmToken(br)
	if err != nil {
		return 0, err
	}
	n := 0
	for i := 0; i < len(tok); i++ {
		if tok[i] < '0' || tok[i] > '9' {
			return 0, fmt.Errorf("vision: bad PGM integer %q", tok)
		}
		n = n*10 + int(tok[i]-'0')
	}
	return n, nil
}
