package vision

// Morphology and gradient primitives of the low-level image processing
// layer. These complete the substrate a vision programmer expects from the
// Transvision library: erosion/dilation for mark cleanup, open/close for
// noise suppression, Sobel gradients and integral images for fast area
// statistics.

// Dilate3 returns the 8-neighbourhood (3×3) morphological dilation of a
// binary or grayscale image: each output pixel is the maximum of its
// neighbourhood.
func Dilate3(im *Image) *Image {
	return Dilate3Into(getImageDirty(im.W, im.H), im)
}

// Dilate3Into writes the 3×3 dilation of im into dst (reshaped, buffer
// reused) and returns dst. dst must not alias im. With a reused dst this
// is allocation-free.
func Dilate3Into(dst *Image, im *Image) *Image {
	dst.reset(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			var m uint8
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if v := im.At(x+dx, y+dy); v > m {
						m = v
					}
				}
			}
			dst.Pix[y*im.W+x] = m
		}
	}
	return dst
}

// Erode3 returns the 8-neighbourhood (3×3) morphological erosion: each
// output pixel is the minimum of its neighbourhood. Pixels outside the
// frame are treated as 0, so the image border erodes (consistent with
// At's zero padding).
func Erode3(im *Image) *Image {
	return Erode3Into(getImageDirty(im.W, im.H), im)
}

// Erode3Into writes the 3×3 erosion of im into dst (reshaped, buffer
// reused) and returns dst. dst must not alias im. With a reused dst this
// is allocation-free.
func Erode3Into(dst *Image, im *Image) *Image {
	dst.reset(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			m := uint8(255)
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if v := im.At(x+dx, y+dy); v < m {
						m = v
					}
				}
			}
			dst.Pix[y*im.W+x] = m
		}
	}
	return dst
}

// Open3 is erosion followed by dilation (removes speckle noise smaller
// than the structuring element). The intermediate image comes from the
// frame arena, so the composite allocates at most the result.
func Open3(im *Image) *Image {
	tmp := Erode3(im)
	out := Dilate3(tmp)
	PutImage(tmp)
	return out
}

// Close3 is dilation followed by erosion (fills pinholes and joins close
// blobs). The intermediate image comes from the frame arena.
func Close3(im *Image) *Image {
	tmp := Dilate3(im)
	out := Erode3(tmp)
	PutImage(tmp)
	return out
}

// Sobel computes the Sobel gradient magnitude (clamped to 255). It is the
// classic edge detector of the low-level processing layer.
func Sobel(im *Image) *Image {
	out := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			gx := -int(im.At(x-1, y-1)) + int(im.At(x+1, y-1)) +
				-2*int(im.At(x-1, y)) + 2*int(im.At(x+1, y)) +
				-int(im.At(x-1, y+1)) + int(im.At(x+1, y+1))
			gy := -int(im.At(x-1, y-1)) - 2*int(im.At(x, y-1)) - int(im.At(x+1, y-1)) +
				int(im.At(x-1, y+1)) + 2*int(im.At(x, y+1)) + int(im.At(x+1, y+1))
			m := abs(gx) + abs(gy) // L1 magnitude, the Transputer-era choice
			if m > 255 {
				m = 255
			}
			out.Pix[y*im.W+x] = uint8(m)
		}
	}
	return out
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Integral is a summed-area table: I[y][x] holds the sum of all pixels in
// the rectangle [0,x)×[0,y). It answers rectangle-sum queries in O(1).
type Integral struct {
	W, H int
	sums []int64 // (W+1)×(H+1)
}

// NewIntegral builds the summed-area table of im.
func NewIntegral(im *Image) *Integral {
	w, h := im.W, im.H
	it := &Integral{W: w, H: h, sums: make([]int64, (w+1)*(h+1))}
	stride := w + 1
	for y := 1; y <= h; y++ {
		var rowSum int64
		for x := 1; x <= w; x++ {
			rowSum += int64(im.Pix[(y-1)*w+(x-1)])
			it.sums[y*stride+x] = it.sums[(y-1)*stride+x] + rowSum
		}
	}
	return it
}

// Sum returns the pixel sum over r (clipped to the frame).
func (it *Integral) Sum(r Rect) int64 {
	r = r.Intersect(Rect{X0: 0, Y0: 0, X1: it.W, Y1: it.H})
	if r.Empty() {
		return 0
	}
	stride := it.W + 1
	a := it.sums[r.Y0*stride+r.X0]
	b := it.sums[r.Y0*stride+r.X1]
	c := it.sums[r.Y1*stride+r.X0]
	d := it.sums[r.Y1*stride+r.X1]
	return d - b - c + a
}

// Mean returns the average gray value over r (0 for empty rectangles).
func (it *Integral) Mean(r Rect) float64 {
	r = r.Intersect(Rect{X0: 0, Y0: 0, X1: it.W, Y1: it.H})
	if r.Empty() {
		return 0
	}
	return float64(it.Sum(r)) / float64(r.Area())
}
