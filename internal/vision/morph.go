package vision

// Morphology and gradient primitives of the low-level image processing
// layer. These complete the substrate a vision programmer expects from the
// Transvision library: erosion/dilation for mark cleanup, open/close for
// noise suppression, Sobel gradients and integral images for fast area
// statistics.

// Dilate3 returns the 8-neighbourhood (3×3) morphological dilation of a
// binary or grayscale image: each output pixel is the maximum of its
// neighbourhood.
func Dilate3(im *Image) *Image {
	return Dilate3Into(getImageDirty(im.W, im.H), im)
}

// Dilate3Into writes the 3×3 dilation of im into dst (reshaped, buffer
// reused) and returns dst. dst must not alias im. With a reused dst this
// is allocation-free in steady state (the row scratch comes from the frame
// arena).
//
// The kernel is separable — max over a 3×3 window is the vertical 3-max of
// horizontal 3-maxes — so each output row costs 4 comparisons per pixel on
// flat slices instead of 9 bounds-checked At calls, and the image is
// processed as cache-sized row bands dispatched over the shared skeleton
// pool (tile.go). Bands only read the source and their private scratch and
// write disjoint destination rows: the output is identical at any
// parallelism.
func Dilate3Into(dst *Image, im *Image) *Image {
	dst.reset(im.W, im.H)
	if im.W == 0 || im.H == 0 {
		return dst
	}
	if cuts := bandCuts(im.W, im.H); cuts != nil {
		runBands(cuts, func(b, y0, y1 int) { dilateBand(dst, im, y0, y1) })
	} else {
		dilateBand(dst, im, 0, im.H)
	}
	return dst
}

// dilateBand computes dilation output rows [y0,y1). It keeps a rolling
// 3-row scratch of horizontal maxes covering rows y0-1..y1 (one overlap row
// recomputed per band seam — cheaper than any cross-band handoff).
func dilateBand(dst, im *Image, y0, y1 int) {
	w, h := im.W, im.H
	scratch := getImageDirty(w, 3)
	defer PutImage(scratch)
	row := func(y int) []uint8 { return scratch.Pix[(y%3)*w : (y%3)*w+w] }
	if y0 > 0 {
		hmax3(row(y0-1), im.Pix[(y0-1)*w:y0*w])
	}
	hmax3(row(y0), im.Pix[y0*w:(y0+1)*w])
	for y := y0; y < y1; y++ {
		if y+1 < h {
			hmax3(row(y+1), im.Pix[(y+1)*w:(y+2)*w])
		}
		out := dst.Pix[y*w : y*w+w]
		mid := row(y)
		copy(out, mid)
		if y > 0 {
			vmax(out, row(y-1))
		}
		if y+1 < h {
			vmax(out, row(y+1))
		}
	}
}

// hmax3 writes the horizontal 3-max of src into dst (same length); pixels
// outside the row are absent from the max (zero padding is a no-op for max).
func hmax3(dst, src []uint8) {
	w := len(src)
	if w == 1 {
		dst[0] = src[0]
		return
	}
	dst[0] = max8(src[0], src[1])
	for x := 1; x < w-1; x++ {
		dst[x] = max8(max8(src[x-1], src[x]), src[x+1])
	}
	dst[w-1] = max8(src[w-2], src[w-1])
}

// vmax folds src into dst elementwise: dst[i] = max(dst[i], src[i]).
func vmax(dst, src []uint8) {
	_ = dst[len(src)-1]
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

func max8(a, b uint8) uint8 {
	if a > b {
		return a
	}
	return b
}

// Erode3 returns the 8-neighbourhood (3×3) morphological erosion: each
// output pixel is the minimum of its neighbourhood. Pixels outside the
// frame are treated as 0, so the image border erodes (consistent with
// At's zero padding).
func Erode3(im *Image) *Image {
	return Erode3Into(getImageDirty(im.W, im.H), im)
}

// Erode3Into writes the 3×3 erosion of im into dst (reshaped, buffer
// reused) and returns dst. dst must not alias im. With a reused dst this
// is allocation-free in steady state.
//
// Zero padding makes every border pixel erode to 0 (its window reaches
// outside the frame), so the kernel writes the one-pixel frame border
// directly and runs the separable min — vertical 3-min of horizontal
// 3-mins — only over the interior, as cache-sized row bands on the shared
// skeleton pool (tile.go, same determinism argument as Dilate3Into).
func Erode3Into(dst *Image, im *Image) *Image {
	dst.reset(im.W, im.H)
	w, h := im.W, im.H
	if w == 0 || h == 0 {
		return dst
	}
	if w <= 2 || h <= 2 {
		// Every pixel's window leaves the frame: all-zero output.
		clear(dst.Pix)
		return dst
	}
	clear(dst.Pix[:w])       // top border row
	clear(dst.Pix[(h-1)*w:]) // bottom border row
	if cuts := bandCuts(w, h); cuts != nil {
		runBands(cuts, func(b, y0, y1 int) { erodeBand(dst, im, y0, y1) })
	} else {
		erodeBand(dst, im, 0, h)
	}
	return dst
}

// erodeBand computes erosion output rows [y0,y1) clipped to the interior
// rows [1,h-1); border columns of each row are written as 0.
func erodeBand(dst, im *Image, y0, y1 int) {
	w, h := im.W, im.H
	if y0 < 1 {
		y0 = 1
	}
	if y1 > h-1 {
		y1 = h - 1
	}
	if y0 >= y1 {
		return
	}
	scratch := getImageDirty(w, 3)
	defer PutImage(scratch)
	row := func(y int) []uint8 { return scratch.Pix[(y%3)*w : (y%3)*w+w] }
	hmin3(row(y0-1), im.Pix[(y0-1)*w:y0*w])
	hmin3(row(y0), im.Pix[y0*w:(y0+1)*w])
	for y := y0; y < y1; y++ {
		hmin3(row(y+1), im.Pix[(y+1)*w:(y+2)*w])
		out := dst.Pix[y*w : y*w+w]
		up, mid, down := row(y-1), row(y), row(y+1)
		out[0], out[w-1] = 0, 0
		for x := 1; x < w-1; x++ {
			out[x] = min8(min8(up[x], mid[x]), down[x])
		}
	}
}

// hmin3 writes the horizontal 3-min of src into dst for interior columns;
// the border entries are unspecified (erodeBand writes those outputs as 0).
func hmin3(dst, src []uint8) {
	w := len(src)
	for x := 1; x < w-1; x++ {
		dst[x] = min8(min8(src[x-1], src[x]), src[x+1])
	}
}

func min8(a, b uint8) uint8 {
	if a < b {
		return a
	}
	return b
}

// Open3 is erosion followed by dilation (removes speckle noise smaller
// than the structuring element). The intermediate image comes from the
// frame arena, so the composite allocates at most the result.
func Open3(im *Image) *Image {
	tmp := Erode3(im)
	out := Dilate3(tmp)
	PutImage(tmp)
	return out
}

// Close3 is dilation followed by erosion (fills pinholes and joins close
// blobs). The intermediate image comes from the frame arena.
func Close3(im *Image) *Image {
	tmp := Dilate3(im)
	out := Erode3(tmp)
	PutImage(tmp)
	return out
}

// Sobel computes the Sobel gradient magnitude (clamped to 255). It is the
// classic edge detector of the low-level processing layer.
func Sobel(im *Image) *Image {
	out := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			gx := -int(im.At(x-1, y-1)) + int(im.At(x+1, y-1)) +
				-2*int(im.At(x-1, y)) + 2*int(im.At(x+1, y)) +
				-int(im.At(x-1, y+1)) + int(im.At(x+1, y+1))
			gy := -int(im.At(x-1, y-1)) - 2*int(im.At(x, y-1)) - int(im.At(x+1, y-1)) +
				int(im.At(x-1, y+1)) + 2*int(im.At(x, y+1)) + int(im.At(x+1, y+1))
			m := abs(gx) + abs(gy) // L1 magnitude, the Transputer-era choice
			if m > 255 {
				m = 255
			}
			out.Pix[y*im.W+x] = uint8(m)
		}
	}
	return out
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Integral is a summed-area table: I[y][x] holds the sum of all pixels in
// the rectangle [0,x)×[0,y). It answers rectangle-sum queries in O(1).
type Integral struct {
	W, H int
	sums []int64 // (W+1)×(H+1)
}

// NewIntegral builds the summed-area table of im.
func NewIntegral(im *Image) *Integral {
	w, h := im.W, im.H
	it := &Integral{W: w, H: h, sums: make([]int64, (w+1)*(h+1))}
	stride := w + 1
	for y := 1; y <= h; y++ {
		var rowSum int64
		for x := 1; x <= w; x++ {
			rowSum += int64(im.Pix[(y-1)*w+(x-1)])
			it.sums[y*stride+x] = it.sums[(y-1)*stride+x] + rowSum
		}
	}
	return it
}

// Sum returns the pixel sum over r (clipped to the frame).
func (it *Integral) Sum(r Rect) int64 {
	r = r.Intersect(Rect{X0: 0, Y0: 0, X1: it.W, Y1: it.H})
	if r.Empty() {
		return 0
	}
	stride := it.W + 1
	a := it.sums[r.Y0*stride+r.X0]
	b := it.sums[r.Y0*stride+r.X1]
	c := it.sums[r.Y1*stride+r.X0]
	d := it.sums[r.Y1*stride+r.X1]
	return d - b - c + a
}

// Mean returns the average gray value over r (0 for empty rectangles).
func (it *Integral) Mean(r Rect) float64 {
	r = r.Intersect(Rect{X0: 0, Y0: 0, X1: it.W, Y1: it.H})
	if r.Empty() {
		return 0
	}
	return float64(it.Sum(r)) / float64(r.Area())
}
