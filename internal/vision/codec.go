package vision

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"skipper/internal/value"
)

// Codec extensions for the vision types that cross processor boundaries in
// distributed runs: full image planes (static edges) and windows of
// interest (farm task payloads). Registered at init so any process linking
// the vision package can decode frames produced by any other.

// maxImagePixels rejects absurd image headers before allocating: 64 MPix
// (a 8192×8192 plane) is far beyond anything the tracking pipeline ships.
const maxImagePixels = 64 << 20

func init() {
	value.RegisterExt(value.Ext{
		Name:       "vision.Image",
		Match:      func(v value.Value) bool { _, ok := v.(*Image); return ok },
		Encode:     encodeImage,
		Decode:     decodeImage,
		Size:       func(v value.Value) int { return 8 + len(v.(*Image).Pix) },
		EncodeTail: encodeImageTail,
		DecodeFrom: decodeImageFrom,
	})
	value.RegisterExt(value.Ext{
		Name:   "vision.Window",
		Match:  func(v value.Value) bool { _, ok := v.(Window); return ok },
		Encode: encodeWindow,
		Decode: decodeWindow,
		Size: func(v value.Value) int {
			win := v.(Window)
			if win.Img == nil {
				return 17
			}
			return 17 + 8 + len(win.Img.Pix)
		},
		EncodeTail: encodeWindowTail,
		DecodeFrom: decodeWindowFrom,
	})
}

func encodeImage(buf []byte, v value.Value) ([]byte, error) {
	im := v.(*Image)
	buf = value.AppendU32(buf, uint32(im.W))
	buf = value.AppendU32(buf, uint32(im.H))
	return append(buf, im.Pix...), nil
}

// encodeImageTail is the zero-copy encode: the fixed header goes into buf,
// the pixel slab is returned by reference so the transport can hand it to a
// vectored write without copying ~W×H bytes per frame.
func encodeImageTail(buf []byte, v value.Value) ([]byte, []byte, error) {
	im := v.(*Image)
	buf = value.AppendU32(buf, uint32(im.W))
	buf = value.AppendU32(buf, uint32(im.H))
	return buf, im.Pix, nil
}

func decodeImage(payload []byte) (value.Value, error) {
	w, pos, err := value.ReadU32(payload, 0)
	if err != nil {
		return nil, err
	}
	h, pos, err := value.ReadU32(payload, pos)
	if err != nil {
		return nil, err
	}
	px := int64(w) * int64(h)
	if px > maxImagePixels {
		return nil, fmt.Errorf("image %dx%d exceeds pixel budget", w, h)
	}
	if px != int64(len(payload)-pos) {
		return nil, fmt.Errorf("image %dx%d wants %d pixel bytes, frame has %d",
			w, h, px, len(payload)-pos)
	}
	// getImageDirty pulls a recycled pixel buffer from the frame arena when
	// one is available and skips the make() zeroing either way — every pixel
	// is overwritten by the copy below.
	im := getImageDirty(int(w), int(h))
	copy(im.Pix, payload[pos:])
	return im, nil
}

// decodeImageFrom is the streaming mirror of decodeImage: the pixel slab is
// read from the wire straight into the arena image, skipping the
// intermediate frame buffer (and its W×H-byte copy) entirely.
func decodeImageFrom(r io.Reader, n int) (value.Value, error) {
	var hdr [8]byte
	if n < 8 {
		return nil, fmt.Errorf("truncated image header (%d bytes)", n)
	}
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	w := binary.BigEndian.Uint32(hdr[0:])
	h := binary.BigEndian.Uint32(hdr[4:])
	px := int64(w) * int64(h)
	if px > maxImagePixels {
		return nil, fmt.Errorf("image %dx%d exceeds pixel budget", w, h)
	}
	if px != int64(n-8) {
		return nil, fmt.Errorf("image %dx%d wants %d pixel bytes, frame has %d",
			w, h, px, n-8)
	}
	im := getImageDirty(int(w), int(h))
	if _, err := io.ReadFull(r, im.Pix); err != nil {
		PutImage(im)
		return nil, err
	}
	return im, nil
}

func encodeWindow(buf []byte, v value.Value) ([]byte, error) {
	win := v.(Window)
	for _, c := range [4]int{win.Origin.X0, win.Origin.Y0, win.Origin.X1, win.Origin.Y1} {
		if c < math.MinInt32 || c > math.MaxInt32 {
			return nil, fmt.Errorf("window origin coordinate %d out of range", c)
		}
		buf = value.AppendU32(buf, uint32(int32(c)))
	}
	if win.Img == nil {
		return append(buf, 0), nil
	}
	return encodeImage(append(buf, 1), win.Img)
}

// encodeWindowTail mirrors encodeWindow but returns the pixel slab by
// reference (see encodeImageTail).
func encodeWindowTail(buf []byte, v value.Value) ([]byte, []byte, error) {
	win := v.(Window)
	for _, c := range [4]int{win.Origin.X0, win.Origin.Y0, win.Origin.X1, win.Origin.Y1} {
		if c < math.MinInt32 || c > math.MaxInt32 {
			return nil, nil, fmt.Errorf("window origin coordinate %d out of range", c)
		}
		buf = value.AppendU32(buf, uint32(int32(c)))
	}
	if win.Img == nil {
		return append(buf, 0), nil, nil
	}
	return encodeImageTail(append(buf, 1), win.Img)
}

func decodeWindow(payload []byte) (value.Value, error) {
	var coords [4]int
	pos := 0
	for i := range coords {
		c, next, err := value.ReadU32(payload, pos)
		if err != nil {
			return nil, err
		}
		coords[i], pos = int(int32(c)), next
	}
	if pos >= len(payload) {
		return nil, fmt.Errorf("truncated window image marker")
	}
	win := Window{Origin: Rect{X0: coords[0], Y0: coords[1], X1: coords[2], Y1: coords[3]}}
	marker := payload[pos]
	pos++
	switch marker {
	case 0:
		if pos != len(payload) {
			return nil, fmt.Errorf("trailing bytes after nil-image window")
		}
		return win, nil
	case 1:
		v, err := decodeImage(payload[pos:])
		if err != nil {
			return nil, err
		}
		win.Img = v.(*Image)
		return win, nil
	}
	return nil, fmt.Errorf("invalid window image marker %#x", marker)
}

// decodeWindowFrom is the streaming mirror of decodeWindow (see
// decodeImageFrom).
func decodeWindowFrom(r io.Reader, n int) (value.Value, error) {
	var hdr [17]byte
	if n < 17 {
		return nil, fmt.Errorf("truncated window header (%d bytes)", n)
	}
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	win := Window{Origin: Rect{
		X0: int(int32(binary.BigEndian.Uint32(hdr[0:]))),
		Y0: int(int32(binary.BigEndian.Uint32(hdr[4:]))),
		X1: int(int32(binary.BigEndian.Uint32(hdr[8:]))),
		Y1: int(int32(binary.BigEndian.Uint32(hdr[12:]))),
	}}
	switch hdr[16] {
	case 0:
		if n != 17 {
			return nil, fmt.Errorf("trailing bytes after nil-image window")
		}
		return win, nil
	case 1:
		v, err := decodeImageFrom(r, n-17)
		if err != nil {
			return nil, err
		}
		win.Img = v.(*Image)
		return win, nil
	}
	return nil, fmt.Errorf("invalid window image marker %#x", hdr[16])
}
