package vision

import (
	"runtime"
	"sync"

	"skipper/internal/skel"
)

// Row-band cache tiling for the per-frame kernels (DESIGN.md §14). The
// in-place kernels (ThresholdInto, Dilate3Into, Erode3Into, ExtractInto,
// labelling's first pass) process frames in horizontal bands sized so a
// band's working set — its source and destination rows — stays resident in
// L2 while the band is processed, and dispatch the bands across the shared
// skeleton pool. Band outputs are disjoint row ranges, so the kernels are
// bit-deterministic regardless of worker scheduling; on a single-worker
// host (or a frame too small to split) the band loop runs inline on the
// caller and costs nothing over the untiled loop.

const (
	// tileTargetBytes bounds a band's working set (one source plus one
	// destination row band) so both stay L2-resident while processed.
	tileTargetBytes = 64 << 10
	// tileMinRows is the smallest band worth handing to another worker;
	// below it the fan-out/fan-in handoff dominates the pixel work.
	tileMinRows = 32
)

// bandCuts returns the row cut points 0 = c[0] < c[1] < ... < c[n] = h
// splitting a w×h frame into cache-sized bands, or nil when the frame
// should be processed as a single band (small frame or single worker).
// The cut points depend only on the frame geometry and host parallelism —
// never on scheduling — so banded kernels stay deterministic.
func bandCuts(w, h int) []int {
	procs := runtime.GOMAXPROCS(0)
	if procs <= 1 || h < 2*tileMinRows || w <= 0 {
		return nil
	}
	rows := tileTargetBytes / (2 * w)
	if rows < tileMinRows {
		rows = tileMinRows
	}
	bands := (h + rows - 1) / rows
	// More bands than workers only adds handoffs once each band is already
	// cache-sized; twice the worker count keeps the tail balanced.
	if bands > 2*procs {
		bands = 2 * procs
	}
	if bands <= 1 {
		return nil
	}
	cuts := make([]int, bands+1)
	for b := 1; b < bands; b++ {
		cuts[b] = b * h / bands
	}
	cuts[bands] = h
	return cuts
}

// runBands dispatches f(band, y0, y1) over the cut points on the shared
// pool, keeping the final band on the calling goroutine.
func runBands(cuts []int, f func(b, y0, y1 int)) {
	bands := len(cuts) - 1
	var wg sync.WaitGroup
	wg.Add(bands - 1)
	pool := skel.Shared()
	for b := 0; b < bands-1; b++ {
		b := b
		pool.Go(func() {
			defer wg.Done()
			f(b, cuts[b], cuts[b+1])
		})
	}
	f(bands-1, cuts[bands-1], cuts[bands])
	wg.Wait()
}
