// Package trans implements transformation rules over the process graph —
// the direction the paper's conclusion singles out for further work
// ("to study inter-skeleton transformational rules, which are needed when
// applications are built by composing and/or nesting a large number of
// skeletons"). The rules here are semantics-preserving rewrites applied
// between expansion and mapping:
//
//   - DeadNodeElimination: drop nodes whose results can never reach an
//     Output or a MEM write (constant-folding leftovers, unused bindings).
//   - ConstDedup: share structurally identical Const nodes.
//   - PackUnpackCancel: cancel a Pack whose only consumer is an Unpack,
//     wiring the producers straight to the projections' consumers.
//
// Every rule preserves the observable behaviour of the executive; the test
// suite verifies this by running programs before and after optimization.
package trans

import (
	"skipper/internal/graph"
	"skipper/internal/value"
)

// Stats reports what a pass changed.
type Stats struct {
	DeadNodes    int
	ConstsMerged int
	PairsCut     int
}

// Total returns the total number of rewrites applied.
func (s Stats) Total() int { return s.DeadNodes + s.ConstsMerged + s.PairsCut }

// Optimize applies all rules to fixpoint and returns the rewritten graph
// together with rewrite statistics. The input graph is not modified.
func Optimize(g *graph.Graph) (*graph.Graph, Stats) {
	out := Clone(g)
	var total Stats
	for {
		changed := 0
		n := PackUnpackCancel(out)
		total.PairsCut += n
		changed += n
		n = ConstDedup(out)
		total.ConstsMerged += n
		changed += n
		n = DeadNodeElimination(out)
		total.DeadNodes += n
		changed += n
		if changed == 0 {
			return out, total
		}
	}
}

// Clone deep-copies a graph (nodes and edges; Const values are shared, as
// they are immutable by convention).
func Clone(g *graph.Graph) *graph.Graph {
	out := graph.New()
	out.NextSkel = g.NextSkel
	for _, n := range g.Nodes {
		cp := *n
		out.Nodes = append(out.Nodes, &cp)
	}
	for _, e := range g.Edges {
		cp := *e
		out.Edges = append(out.Edges, &cp)
	}
	return out
}

// roots returns the node set that anchors liveness: Output nodes and Mem
// nodes (whose feedback writes matter across iterations).
func roots(g *graph.Graph) []graph.NodeID {
	var out []graph.NodeID
	for _, n := range g.Nodes {
		if n.Kind == graph.KindOutput || n.Kind == graph.KindMem {
			out = append(out, n.ID)
		}
	}
	return out
}

// DeadNodeElimination removes nodes from which no Output or Mem node is
// reachable (following edges forward). It returns the number of nodes
// removed. Node and edge IDs are re-assigned.
func DeadNodeElimination(g *graph.Graph) int {
	live := map[graph.NodeID]bool{}
	var mark func(id graph.NodeID)
	// Predecessor closure from the roots, following all edge kinds.
	preds := map[graph.NodeID][]graph.NodeID{}
	for _, e := range g.Edges {
		preds[e.To] = append(preds[e.To], e.From)
	}
	mark = func(id graph.NodeID) {
		if live[id] {
			return
		}
		live[id] = true
		for _, p := range preds[id] {
			mark(p)
		}
	}
	for _, r := range roots(g) {
		mark(r)
	}
	dead := 0
	for _, n := range g.Nodes {
		if !live[n.ID] {
			dead++
		}
	}
	if dead == 0 {
		return 0
	}
	rebuild(g, func(n *graph.Node) bool { return live[n.ID] }, nil)
	return dead
}

// ConstDedup merges Const nodes with equal values, redirecting consumers to
// one representative. Returns the number of nodes merged away.
func ConstDedup(g *graph.Graph) int {
	type rep struct {
		id graph.NodeID
	}
	var reps []rep
	redirect := map[graph.NodeID]graph.NodeID{}
	for _, n := range g.Nodes {
		if n.Kind != graph.KindConst {
			continue
		}
		found := false
		for _, r := range reps {
			if value.Equal(g.Node(r.id).Const, n.Const) {
				redirect[n.ID] = r.id
				found = true
				break
			}
		}
		if !found {
			reps = append(reps, rep{id: n.ID})
		}
	}
	if len(redirect) == 0 {
		return 0
	}
	for _, e := range g.Edges {
		if to, ok := redirect[e.From]; ok {
			e.From = to
		}
	}
	rebuild(g, func(n *graph.Node) bool { _, drop := redirect[n.ID]; return !drop }, nil)
	return len(redirect)
}

// PackUnpackCancel removes Pack nodes whose single consumer is an Unpack
// with matching width, reconnecting producers directly. Returns the number
// of pairs cancelled.
func PackUnpackCancel(g *graph.Graph) int {
	cut := 0
	for _, pk := range g.Nodes {
		if pk.Kind != graph.KindPack {
			continue
		}
		outs := g.OutEdges(pk.ID)
		if len(outs) != 1 {
			continue
		}
		un := g.Node(outs[0].To)
		if un.Kind != graph.KindUnpack || un.Out != pk.In {
			continue
		}
		// Producer of pack port i feeds the consumers of unpack port i.
		srcOf := map[int]*graph.Edge{}
		for _, e := range g.InEdges(pk.ID) {
			srcOf[e.ToPort] = e
		}
		complete := true
		for i := 0; i < pk.In; i++ {
			if srcOf[i] == nil {
				complete = false
			}
		}
		if !complete {
			continue
		}
		for _, e := range g.Edges {
			if e.From == un.ID {
				src := srcOf[e.FromPort]
				e.From = src.From
				e.FromPort = src.FromPort
				if e.Type == "" {
					e.Type = src.Type
				}
			}
		}
		// Drop the pack/unpack pair and their connecting edges.
		dropNodes := map[graph.NodeID]bool{pk.ID: true, un.ID: true}
		rebuild(g, func(n *graph.Node) bool { return !dropNodes[n.ID] }, nil)
		cut++
		// Node IDs changed; restart scanning.
		return cut + PackUnpackCancel(g)
	}
	return cut
}

// rebuild compacts the graph in place, keeping the nodes for which keep
// returns true and every edge whose endpoints survive. extraEdgeFilter, when
// non-nil, can drop additional edges.
func rebuild(g *graph.Graph, keep func(*graph.Node) bool, extraEdgeFilter func(*graph.Edge) bool) {
	remap := map[graph.NodeID]graph.NodeID{}
	var nodes []*graph.Node
	for _, n := range g.Nodes {
		if !keep(n) {
			continue
		}
		remap[n.ID] = graph.NodeID(len(nodes))
		n.ID = graph.NodeID(len(nodes))
		nodes = append(nodes, n)
	}
	var edges []*graph.Edge
	for _, e := range g.Edges {
		from, okF := remap[e.From]
		to, okT := remap[e.To]
		if !okF || !okT {
			continue
		}
		if extraEdgeFilter != nil && !extraEdgeFilter(e) {
			continue
		}
		e.From, e.To = from, to
		e.ID = graph.EdgeID(len(edges))
		edges = append(edges, e)
	}
	g.Nodes = nodes
	g.Edges = edges
}
