package trans

import (
	"testing"

	"skipper/internal/arch"
	"skipper/internal/dsl/parser"
	"skipper/internal/dsl/types"
	"skipper/internal/exec"
	"skipper/internal/expand"
	"skipper/internal/graph"
	"skipper/internal/syndex"
	"skipper/internal/value"
)

func testRegistry() *value.Registry {
	r := value.NewRegistry()
	r.Register(&value.Func{Name: "source", Sig: "int -> int list", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			n := a[0].(int)
			out := make(value.List, n)
			for i := range out {
				out[i] = i + 1
			}
			return out
		}})
	r.Register(&value.Func{Name: "square", Sig: "int -> int", Arity: 1,
		Fn: func(a []value.Value) value.Value { x := a[0].(int); return x * x }})
	r.Register(&value.Func{Name: "add", Sig: "int -> int -> int", Arity: 2,
		Fn: func(a []value.Value) value.Value { return a[0].(int) + a[1].(int) }})
	r.Register(&value.Func{Name: "pairup", Sig: "int * int -> int", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			pr := a[0].(value.Tuple)
			return pr[0].(int)*1000 + pr[1].(int)
		}})
	r.Register(&value.Func{Name: "one", Sig: "unit -> int", Arity: 1,
		Fn: func([]value.Value) value.Value { return 1 }})
	return r
}

func compileSrc(t *testing.T, src string) *graph.Graph {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	res, err := expand.Expand(prog, info, testRegistry())
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	return res.Graph
}

// runGraph executes a one-shot graph and returns its single output.
func runGraph(t *testing.T, g *graph.Graph) value.Value {
	t.Helper()
	s, err := syndex.Map(g, arch.Ring(3), testRegistry(), syndex.Structured)
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	res, err := exec.NewMachine(s, testRegistry()).Run(1)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Outputs) != 1 {
		t.Fatalf("outputs = %v", res.Outputs)
	}
	return res.Outputs[0]
}

const farmSrc = `
extern source : int -> int list;;
extern square : int -> int;;
extern add : int -> int -> int;;
let main = df 2 square add 0 (source 5);;
`

func TestCloneIsDeep(t *testing.T) {
	g := compileSrc(t, farmSrc)
	c := Clone(g)
	c.Nodes[0].Name = "mutated"
	c.Edges[0].Type = "mutated"
	if g.Nodes[0].Name == "mutated" || g.Edges[0].Type == "mutated" {
		t.Fatal("Clone shares node/edge storage")
	}
}

func TestDeadNodeElimination(t *testing.T) {
	// `unused` creates a Func node whose result nobody consumes.
	src := `
extern source : int -> int list;;
extern square : int -> int;;
extern add : int -> int -> int;;
extern one : unit -> int;;
let unused = one ();;
let main = df 2 square add 0 (source 5);;
`
	g := compileSrc(t, src)
	before := runGraph(t, g)
	opt, st := Optimize(g)
	if st.DeadNodes == 0 {
		t.Fatalf("expected dead nodes, stats = %+v", st)
	}
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	after := runGraph(t, opt)
	if !value.Equal(before, after) {
		t.Fatalf("optimization changed result: %v vs %v", before, after)
	}
	if len(opt.Nodes) >= len(g.Nodes) {
		t.Fatalf("graph did not shrink: %d -> %d", len(g.Nodes), len(opt.Nodes))
	}
	// The original graph is untouched.
	if v := runGraph(t, g); !value.Equal(v, before) {
		t.Fatal("Optimize mutated its input")
	}
}

func TestConstDedup(t *testing.T) {
	// Two uses of the same constant 5 in separate positions.
	src := `
extern source : int -> int list;;
extern square : int -> int;;
extern add : int -> int -> int;;
extern pairup : int * int -> int;;
extern one : unit -> int;;
let a = pairup (one (), one ());;
let main = df 2 square add a (source 5);;
`
	g := compileSrc(t, src)
	before := runGraph(t, g)
	consts := 0
	for _, n := range g.Nodes {
		if n.Kind == graph.KindConst {
			consts++
		}
	}
	opt, st := Optimize(g)
	after := runGraph(t, opt)
	if !value.Equal(before, after) {
		t.Fatalf("result changed: %v vs %v", before, after)
	}
	constsAfter := 0
	for _, n := range opt.Nodes {
		if n.Kind == graph.KindConst {
			constsAfter++
		}
	}
	if constsAfter > consts {
		t.Fatalf("consts grew: %d -> %d (stats %+v)", consts, constsAfter, st)
	}
}

func TestPackUnpackCancel(t *testing.T) {
	// `let (x, y) = (one (), one ()) in ...` builds a Pack immediately
	// consumed by an Unpack.
	src := `
extern one : unit -> int;;
extern pairup : int * int -> int;;
extern add : int -> int -> int;;
let main =
  let p = (one (), one ()) in
  pairup p;;
`
	g := compileSrc(t, src)
	before := runGraph(t, g)

	// This program routes the tuple straight into pairup — Pack survives
	// because its consumer is a Func. Build the cancellable shape directly:
	g2 := graph.New()
	c1 := g2.AddNode(&graph.Node{Kind: graph.KindFunc, Name: "one", Fn: "one", In: 1, Out: 1})
	u1 := g2.AddNode(&graph.Node{Kind: graph.KindConst, Name: "u", Const: value.Unit{}, Out: 1})
	g2.Connect(u1.ID, 0, c1.ID, 0, "unit")
	c2 := g2.AddNode(&graph.Node{Kind: graph.KindFunc, Name: "one#1", Fn: "one", In: 1, Out: 1})
	u2 := g2.AddNode(&graph.Node{Kind: graph.KindConst, Name: "u2", Const: value.Unit{}, Out: 1})
	g2.Connect(u2.ID, 0, c2.ID, 0, "unit")
	pk := g2.AddNode(&graph.Node{Kind: graph.KindPack, Name: "pack", In: 2, Out: 1})
	g2.Connect(c1.ID, 0, pk.ID, 0, "int")
	g2.Connect(c2.ID, 0, pk.ID, 1, "int")
	un := g2.AddNode(&graph.Node{Kind: graph.KindUnpack, Name: "unpack", In: 1, Out: 2})
	g2.Connect(pk.ID, 0, un.ID, 0, "int * int")
	addN := g2.AddNode(&graph.Node{Kind: graph.KindFunc, Name: "add", Fn: "add", In: 2, Out: 1})
	g2.Connect(un.ID, 0, addN.ID, 0, "int")
	g2.Connect(un.ID, 1, addN.ID, 1, "int")
	out := g2.AddNode(&graph.Node{Kind: graph.KindOutput, Name: "result", In: 1})
	g2.Connect(addN.ID, 0, out.ID, 0, "int")
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	before2 := runGraph(t, g2)
	opt, st := Optimize(g2)
	if st.PairsCut != 1 {
		t.Fatalf("expected one pack/unpack cancellation, stats %+v", st)
	}
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	after2 := runGraph(t, opt)
	if !value.Equal(before2, after2) {
		t.Fatalf("pack/unpack cancel changed result: %v vs %v", before2, after2)
	}
	for _, n := range opt.Nodes {
		if n.Kind == graph.KindPack || n.Kind == graph.KindUnpack {
			t.Fatal("pack/unpack survived")
		}
	}
	_ = before
}

func TestOptimizeIdempotent(t *testing.T) {
	g := compileSrc(t, farmSrc)
	opt1, _ := Optimize(g)
	opt2, st := Optimize(opt1)
	if st.Total() != 0 {
		t.Fatalf("second pass still rewrites: %+v", st)
	}
	if len(opt2.Nodes) != len(opt1.Nodes) {
		t.Fatal("node count changed on re-optimization")
	}
}

func TestOptimizePreservesStreamPrograms(t *testing.T) {
	src := `
extern one : unit -> int;;
extern step : int * int -> int * int;;
extern sink : int -> unit;;
let main = itermem one step sink 0 ();;
`
	r := testRegistry()
	r.Register(&value.Func{Name: "step", Sig: "int * int -> int * int", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			pr := a[0].(value.Tuple)
			z := pr[0].(int) + pr[1].(int)
			return value.Tuple{z, z}
		}})
	r.Register(&value.Func{Name: "sink", Sig: "int -> unit", Arity: 1,
		Fn: func(a []value.Value) value.Value { return value.Unit{} }})
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := expand.Expand(prog, info, r)
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := Optimize(res.Graph)
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := syndex.Map(opt, arch.Ring(2), r, syndex.Structured)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := exec.NewMachine(s, r).Run(4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4}
	for i, w := range want {
		if mres.Outputs[i] != w {
			t.Fatalf("outputs = %v", mres.Outputs)
		}
	}
	// The MEM loop must survive optimization.
	mems := 0
	for _, n := range opt.Nodes {
		if n.Kind == graph.KindMem {
			mems++
		}
	}
	if mems != 1 {
		t.Fatalf("mem nodes = %d", mems)
	}
}
