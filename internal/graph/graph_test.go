package graph

import (
	"strings"
	"testing"
)

// buildDFGraph constructs the Fig. 1 process network: master + n workers.
func buildDFGraph(n int) *Graph {
	g := New()
	sk := g.NewSkelID()
	src := g.AddNode(&Node{Kind: KindConst, Name: "xs", Out: 1, Const: 1})
	m := g.AddNode(&Node{Kind: KindMaster, Name: "Master<acc,z>", Fn: "",
		AccFn: "acc", Workers: n, In: 1, Out: 1, SkelID: sk})
	g.Connect(src.ID, 0, m.ID, 0, "'a list")
	for i := 0; i < n; i++ {
		w := g.AddNode(&Node{Kind: KindWorker, Name: "Worker<comp>",
			Fn: "comp", In: 1, Out: 1, SkelID: sk, Index: i})
		g.Connect(m.ID, 0, w.ID, 0, "'a")
		// Workers' replies: modelled as separate input ports? No — the
		// master's dispatch port fans out; replies converge on a single
		// logical port is invalid (multiple producers). Use per-worker
		// reply collection via dedicated ports in real expansion; here we
		// give the master n reply ports to exercise validation.
		_ = w
	}
	return g
}

func TestConnectAndPorts(t *testing.T) {
	g := New()
	a := g.AddNode(&Node{Kind: KindFunc, Name: "a", Fn: "fa", Out: 1})
	b := g.AddNode(&Node{Kind: KindFunc, Name: "b", Fn: "fb", In: 1, Out: 1})
	e := g.Connect(a.ID, 0, b.ID, 0, "int")
	if e.From != a.ID || e.To != b.ID || e.Type != "int" {
		t.Fatalf("edge = %+v", e)
	}
	if len(g.InEdges(b.ID)) != 1 || len(g.OutEdges(a.ID)) != 1 {
		t.Fatal("edge queries broken")
	}
}

func TestValidateAcceptsChain(t *testing.T) {
	g := New()
	a := g.AddNode(&Node{Kind: KindFunc, Name: "a", Out: 1})
	b := g.AddNode(&Node{Kind: KindFunc, Name: "b", In: 1, Out: 1})
	c := g.AddNode(&Node{Kind: KindOutput, Name: "out", In: 1})
	g.Connect(a.ID, 0, b.ID, 0, "t")
	g.Connect(b.ID, 0, c.ID, 0, "u")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsUnconnectedPort(t *testing.T) {
	g := New()
	g.AddNode(&Node{Kind: KindFunc, Name: "lonely", In: 1})
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "unconnected") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsDoubleProducer(t *testing.T) {
	g := New()
	a := g.AddNode(&Node{Kind: KindFunc, Name: "a", Out: 1})
	b := g.AddNode(&Node{Kind: KindFunc, Name: "b", Out: 1})
	c := g.AddNode(&Node{Kind: KindFunc, Name: "c", In: 1})
	g.Connect(a.ID, 0, c.ID, 0, "t")
	g.Connect(b.ID, 0, c.ID, 0, "t")
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "multiple producers") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsBadPorts(t *testing.T) {
	g := New()
	a := g.AddNode(&Node{Kind: KindFunc, Name: "a", Out: 1})
	b := g.AddNode(&Node{Kind: KindFunc, Name: "b", In: 1})
	g.Connect(a.ID, 5, b.ID, 0, "t")
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "invalid port") {
		t.Fatalf("err = %v", err)
	}
	g2 := New()
	a2 := g2.AddNode(&Node{Kind: KindFunc, Name: "a", Out: 1})
	b2 := g2.AddNode(&Node{Kind: KindFunc, Name: "b", In: 1})
	g2.Connect(a2.ID, 0, b2.ID, 3, "t")
	if err := g2.Validate(); err == nil || !strings.Contains(err.Error(), "invalid port") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsForwardCycle(t *testing.T) {
	g := New()
	a := g.AddNode(&Node{Kind: KindFunc, Name: "a", In: 1, Out: 1})
	b := g.AddNode(&Node{Kind: KindFunc, Name: "b", In: 1, Out: 1})
	g.Connect(a.ID, 0, b.ID, 0, "t")
	g.Connect(b.ID, 0, a.ID, 0, "t")
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
}

func TestBackEdgeThroughMemAllowed(t *testing.T) {
	// loop -> mem -> loop is legal because the mem edge is a back edge.
	g := New()
	in := g.AddNode(&Node{Kind: KindInput, Name: "in", Fn: "inp", Out: 1})
	loop := g.AddNode(&Node{Kind: KindFunc, Name: "loop", Fn: "loop", In: 2, Out: 2})
	mem := g.AddNode(&Node{Kind: KindMem, Name: "MEM", In: 1, Out: 1})
	out := g.AddNode(&Node{Kind: KindOutput, Name: "out", Fn: "out", In: 1})
	g.Connect(in.ID, 0, loop.ID, 1, "'b")
	g.Connect(mem.ID, 0, loop.ID, 0, "'c")
	g.ConnectBack(loop.ID, 0, mem.ID, 0, "'c")
	g.Connect(loop.ID, 1, out.ID, 0, "'d")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[NodeID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos[in.ID] > pos[loop.ID] || pos[loop.ID] > pos[out.ID] {
		t.Fatalf("topological order wrong: %v", order)
	}
}

func TestBackEdgeRequiresMem(t *testing.T) {
	g := New()
	a := g.AddNode(&Node{Kind: KindFunc, Name: "a", In: 1, Out: 1})
	b := g.AddNode(&Node{Kind: KindFunc, Name: "b", In: 1, Out: 1})
	g.Connect(a.ID, 0, b.ID, 0, "t")
	g.ConnectBack(b.ID, 0, a.ID, 0, "t")
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "mem") {
		t.Fatalf("err = %v", err)
	}
}

func TestStats(t *testing.T) {
	g := buildDFGraph(4)
	s := g.Stats()
	if s.Nodes != 6 || s.WorkerNodes != 4 || s.SkeletonCount != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDOTOutput(t *testing.T) {
	g := New()
	a := g.AddNode(&Node{Kind: KindMaster, Name: "Master<acc,z>", Out: 1, Workers: 2})
	w := g.AddNode(&Node{Kind: KindWorker, Name: "Worker<comp>", In: 1})
	g.Connect(a.ID, 0, w.ID, 0, "'a")
	dot := g.DOT("df")
	for _, want := range []string{
		"digraph \"df\"", "Master<acc,z>", "Worker<comp>", "label=\"'a\"",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestDOTBackEdgeDashed(t *testing.T) {
	g := New()
	m := g.AddNode(&Node{Kind: KindMem, Name: "MEM", In: 1, Out: 1})
	f := g.AddNode(&Node{Kind: KindFunc, Name: "f", In: 1, Out: 1})
	g.Connect(m.ID, 0, f.ID, 0, "t")
	g.ConnectBack(f.ID, 0, m.ID, 0, "t")
	if !strings.Contains(g.DOT("x"), "style=dashed") {
		t.Fatal("back edge not dashed")
	}
}

func TestKindString(t *testing.T) {
	if KindMaster.String() != "master" || NodeKind(99).String() == "" {
		t.Fatal("kind names broken")
	}
}
