// Package graph defines SKiPPER's process graph intermediate representation:
// "a process graph in which nodes correspond to sequential functions and/or
// skeleton control processes and edges to communications" (paper abstract).
// The graph is produced by skeleton expansion (package expand), consumed by
// the mapper/scheduler (package syndex), and rendered to DOT for the
// figures.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"skipper/internal/value"
)

// NodeKind classifies process nodes.
type NodeKind int

// Node kinds. Func nodes run user sequential functions; the others are the
// skeleton control processes instantiated from process network templates.
const (
	KindFunc   NodeKind = iota // user sequential function
	KindConst                  // compile-time constant source
	KindSplit                  // scm: split control process
	KindMerge                  // scm: ordered merge control process
	KindMaster                 // df/tf: master (dispatch + accumulate)
	KindWorker                 // df/tf: worker applying the compute function
	KindInput                  // itermem: stream input process
	KindOutput                 // itermem: stream output process
	KindMem                    // itermem: inter-iteration memory (delay)
	KindPack                   // tuple construction
	KindUnpack                 // tuple projection
)

var kindNames = map[NodeKind]string{
	KindFunc: "func", KindConst: "const", KindSplit: "split",
	KindMerge: "merge", KindMaster: "master", KindWorker: "worker",
	KindInput: "input", KindOutput: "output", KindMem: "mem",
	KindPack: "pack", KindUnpack: "unpack",
}

func (k NodeKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// NodeID identifies a node within its graph.
type NodeID int

// Node is one process of the network.
type Node struct {
	ID   NodeID
	Kind NodeKind
	// Name is the display label, unique per graph (e.g. "detect_mark#2").
	Name string
	// Fn is the registered sequential function executed by Func, Worker,
	// Split (the split function), Merge (the merge function), Input and
	// Output nodes.
	Fn string
	// AccFn is the accumulating function of a Master node.
	AccFn string
	// Workers is the degree of parallelism recorded on Master/Split/Merge
	// control nodes.
	Workers int
	// TaskFarm marks a Master whose workers feed back new tasks (tf).
	TaskFarm bool
	// Const holds the value of a Const node.
	Const value.Value
	// In/Out are the port counts (fixed at construction).
	In, Out int
	// SkelID groups the nodes expanded from one skeleton instance
	// (-1 for plain function nodes).
	SkelID int
	// Index is the worker index within its skeleton instance.
	Index int
}

// EdgeID identifies an edge within its graph.
type EdgeID int

// Edge is a typed point-to-point communication.
type Edge struct {
	ID       EdgeID
	From     NodeID
	FromPort int
	To       NodeID
	ToPort   int
	// Type is the display type of the transported data (from inference).
	Type string
	// Back marks the itermem memory feedback edge, excluded from the
	// acyclicity requirement: it carries data to the *next* iteration.
	Back bool
	// Intra marks an intra-skeleton protocol edge (e.g. the worker->master
	// reply of the df/tf farm). These edges close request/reply cycles that
	// are deadlock-free by construction of the PNT, so they are excluded
	// from the global acyclicity requirement.
	Intra bool
}

// Graph is a process network.
type Graph struct {
	Nodes []*Node
	Edges []*Edge
	// NextSkel numbers skeleton instances.
	NextSkel int
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddNode appends a node, assigning its ID. In and Out must be set by the
// caller (via the n.In/n.Out fields) before validation.
func (g *Graph) AddNode(n *Node) *Node {
	n.ID = NodeID(len(g.Nodes))
	if n.SkelID == 0 {
		n.SkelID = -1
	}
	g.Nodes = append(g.Nodes, n)
	return n
}

// NewSkelID allocates a skeleton instance identifier (>= 1).
func (g *Graph) NewSkelID() int {
	g.NextSkel++
	return g.NextSkel
}

// Connect adds an edge from (from,fromPort) to (to,toPort).
func (g *Graph) Connect(from NodeID, fromPort int, to NodeID, toPort int, typ string) *Edge {
	e := &Edge{
		ID:   EdgeID(len(g.Edges)),
		From: from, FromPort: fromPort,
		To: to, ToPort: toPort,
		Type: typ,
	}
	g.Edges = append(g.Edges, e)
	return e
}

// ConnectBack adds a memory feedback edge (itermem).
func (g *Graph) ConnectBack(from NodeID, fromPort int, to NodeID, toPort int, typ string) *Edge {
	e := g.Connect(from, fromPort, to, toPort, typ)
	e.Back = true
	return e
}

// ConnectIntra adds an intra-skeleton protocol edge (e.g. a farm worker's
// reply to its master).
func (g *Graph) ConnectIntra(from NodeID, fromPort int, to NodeID, toPort int, typ string) *Edge {
	e := g.Connect(from, fromPort, to, toPort, typ)
	e.Intra = true
	return e
}

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) *Node { return g.Nodes[id] }

// InEdges returns the edges arriving at n, ordered by target port.
func (g *Graph) InEdges(n NodeID) []*Edge {
	var out []*Edge
	for _, e := range g.Edges {
		if e.To == n {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ToPort < out[j].ToPort })
	return out
}

// OutEdges returns the edges leaving n, ordered by source port.
func (g *Graph) OutEdges(n NodeID) []*Edge {
	var out []*Edge
	for _, e := range g.Edges {
		if e.From == n {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FromPort < out[j].FromPort })
	return out
}

// Validate checks structural invariants:
//   - every input port of every node has exactly one incoming edge;
//   - edge endpoints reference existing nodes and in-range ports;
//   - back edges originate or terminate only at Mem nodes;
//   - the graph minus back edges is acyclic (deadlock freedom of the
//     static schedule relies on this).
func (g *Graph) Validate() error {
	seen := map[[2]int]bool{} // (node, port) -> has incoming edge
	for _, e := range g.Edges {
		if int(e.From) < 0 || int(e.From) >= len(g.Nodes) ||
			int(e.To) < 0 || int(e.To) >= len(g.Nodes) {
			return fmt.Errorf("graph: edge %d references missing node", e.ID)
		}
		from, to := g.Node(e.From), g.Node(e.To)
		if e.FromPort < 0 || e.FromPort >= from.Out {
			return fmt.Errorf("graph: edge %d leaves invalid port %d of %s",
				e.ID, e.FromPort, from.Name)
		}
		if e.ToPort < 0 || e.ToPort >= to.In {
			return fmt.Errorf("graph: edge %d enters invalid port %d of %s",
				e.ID, e.ToPort, to.Name)
		}
		key := [2]int{int(e.To), e.ToPort}
		if seen[key] {
			return fmt.Errorf("graph: port %d of %s has multiple producers", e.ToPort, to.Name)
		}
		seen[key] = true
		if e.Back && from.Kind != KindMem && to.Kind != KindMem {
			return fmt.Errorf("graph: back edge %d not adjacent to a mem node", e.ID)
		}
		if e.Intra && (from.SkelID < 1 || from.SkelID != to.SkelID) {
			return fmt.Errorf("graph: intra edge %d does not stay within one skeleton instance", e.ID)
		}
	}
	for _, n := range g.Nodes {
		for p := 0; p < n.In; p++ {
			if !seen[[2]int{int(n.ID), p}] {
				return fmt.Errorf("graph: input port %d of %s is unconnected", p, n.Name)
			}
		}
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	return nil
}

// TopoSort returns a topological order of the nodes ignoring back edges, or
// an error if the forward graph has a cycle (which would deadlock the
// executive).
func (g *Graph) TopoSort() ([]NodeID, error) {
	indeg := make([]int, len(g.Nodes))
	succ := make([][]NodeID, len(g.Nodes))
	for _, e := range g.Edges {
		if e.Back || e.Intra {
			continue
		}
		indeg[e.To]++
		succ[e.From] = append(succ[e.From], e.To)
	}
	var queue []NodeID
	for i := range g.Nodes {
		if indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	var order []NodeID
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, s := range succ[n] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("graph: cycle through non-mem nodes (potential deadlock)")
	}
	return order, nil
}

// Stats summarizes a graph for reports.
type Stats struct {
	Nodes, Edges  int
	FuncNodes     int
	ControlNodes  int
	SkeletonCount int
	BackEdges     int
	WorkerNodes   int
}

// Stats computes summary statistics.
func (g *Graph) Stats() Stats {
	s := Stats{Nodes: len(g.Nodes), Edges: len(g.Edges), SkeletonCount: g.NextSkel}
	for _, n := range g.Nodes {
		switch n.Kind {
		case KindFunc, KindConst:
			s.FuncNodes++
		case KindWorker:
			s.WorkerNodes++
			s.ControlNodes++
		default:
			s.ControlNodes++
		}
	}
	for _, e := range g.Edges {
		if e.Back {
			s.BackEdges++
		}
	}
	return s
}

// DOT renders the graph in Graphviz format (the shape language of the
// paper's Fig. 1/2/4: ellipses for processes, labels on edges for types).
func (g *Graph) DOT(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n")
	for _, n := range g.Nodes {
		shape, style := "ellipse", ""
		switch n.Kind {
		case KindConst:
			shape = "plaintext"
		case KindMem:
			shape, style = "box", ` style=filled fillcolor="#dddddd"`
		case KindMaster, KindSplit, KindMerge:
			style = ` style=filled fillcolor="#cfe2f3"`
		case KindWorker:
			style = ` style=filled fillcolor="#d9ead3"`
		case KindInput, KindOutput:
			shape = "house"
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s%s];\n", n.ID, n.Name, shape, style)
	}
	for _, e := range g.Edges {
		attrs := fmt.Sprintf("label=%q", e.Type)
		if e.Back {
			attrs += " style=dashed constraint=false"
		}
		if e.Intra {
			attrs += " constraint=false"
		}
		fmt.Fprintf(&b, "  n%d -> n%d [%s];\n", e.From, e.To, attrs)
	}
	b.WriteString("}\n")
	return b.String()
}
