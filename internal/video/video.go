// Package video synthesizes the road-scene image stream that the Transvision
// platform acquired from a real camera in the paper. It renders 1–3 lead
// vehicles, each carrying three bright visual marks "placed on the top and
// at the back of it" (paper Fig. 3), against a textured road background,
// with a parametric longitudinal/lateral motion model and optional noise.
//
// The generator preserves the two properties the paper's evaluation depends
// on: the apparent mark size varies with distance to the lead vehicle (so
// window workloads are uneven, motivating the df skeleton), and marks can
// leave the tracked windows (forcing the reinitialization phase).
package video

import (
	"math"
	"math/rand"

	"skipper/internal/vision"
)

// Mark geometry: the three marks form a triangle at the back of the vehicle,
// two low outer marks and one high center mark.
const (
	// MarkGray is the rendered brightness of a visual mark.
	MarkGray = 250
	// RoadGrayMax bounds the background texture brightness, keeping a
	// comfortable margin below the detection threshold.
	RoadGrayMax = 120
	// DetectThreshold is the canonical threshold separating marks from road.
	DetectThreshold = 200
)

// Vehicle is the ground-truth state of one lead vehicle: longitudinal
// distance Z (meters ahead of the camera), lateral offset X (meters), and
// their velocities per frame.
type Vehicle struct {
	Z, X   float64 // position (m ahead, m lateral)
	VZ, VX float64 // per-frame deltas
}

// Scene drives a deterministic synthetic stream of frames.
type Scene struct {
	W, H     int
	Vehicles []Vehicle
	Noise    float64 // probability per pixel of a bright noise speck
	// Dropout is the per-mark probability of not being rendered in a
	// frame (glare, occlusion, mud): it stresses the tracker's
	// prediction-failed path and forces reinitialization phases.
	Dropout float64
	rng     *rand.Rand
	frame   int

	// Camera model constants.
	focal float64 // pixels-per-meter at 1 m
}

// NewScene builds a scene with n vehicles (clamped to 1..3, per the paper:
// "one to three, in practice") and deterministic pseudo-random motion
// derived from seed.
func NewScene(w, h, n int, seed int64) *Scene {
	if n < 1 {
		n = 1
	}
	if n > 3 {
		n = 3
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Scene{W: w, H: h, rng: rng, focal: float64(w) * 1.2}
	lateral := []float64{0, -2.5, 2.5}
	for i := 0; i < n; i++ {
		s.Vehicles = append(s.Vehicles, Vehicle{
			Z:  12 + 10*rng.Float64(),
			X:  lateral[i] + 0.5*rng.NormFloat64(),
			VZ: 0.04 * rng.NormFloat64(),
			VX: 0.01 * rng.NormFloat64(),
		})
	}
	return s
}

// Frame returns the current frame index (number of Next calls so far).
func (s *Scene) Frame() int { return s.frame }

// MarkTruth is the ground-truth projection of one mark (for test oracles).
type MarkTruth struct {
	Vehicle int
	CX, CY  float64
	Radius  int
}

// project maps a world point (x lateral, y height, z depth) to pixel
// coordinates with a simple pinhole model centered in the frame.
func (s *Scene) project(x, y, z float64) (px, py float64) {
	px = float64(s.W)/2 + s.focal*x/z
	py = float64(s.H)/2 - s.focal*y/z
	return px, py
}

// Truth returns the ground-truth mark projections for the current vehicle
// states (before any noise). Marks fully outside the frame are omitted.
func (s *Scene) Truth() []MarkTruth {
	var out []MarkTruth
	for vi, v := range s.Vehicles {
		for _, m := range markOffsets() {
			px, py := s.project(v.X+m[0], m[1], v.Z)
			r := markRadius(s.focal, v.Z)
			if px < -float64(r) || py < -float64(r) ||
				px > float64(s.W+r) || py > float64(s.H+r) {
				continue
			}
			out = append(out, MarkTruth{Vehicle: vi, CX: px, CY: py, Radius: r})
		}
	}
	return out
}

// markOffsets gives the three mark positions in vehicle coordinates
// (lateral, height): two low outer marks and one high center mark.
func markOffsets() [3][2]float64 {
	return [3][2]float64{{-0.8, 0.6}, {0.8, 0.6}, {0, 1.5}}
}

// markRadius is the apparent radius in pixels of a 12 cm mark at depth z.
func markRadius(focal, z float64) int {
	r := int(math.Round(focal * 0.12 / z))
	if r < 1 {
		r = 1
	}
	return r
}

// Next advances vehicle states and renders the next frame into a fresh
// image. Frame-loop callers that recycle buffers should use NextInto.
func (s *Scene) Next() *vision.Image {
	return s.NextInto(vision.NewImage(s.W, s.H))
}

// NextInto advances vehicle states and renders the next frame into im,
// which must be a W×H image (every pixel is overwritten, so im need not be
// cleared). It returns im. Combined with the vision arena (GetImage /
// PutImage) or a caller-owned double buffer, a 25 Hz frame loop stops
// allocating a frame per iteration.
func (s *Scene) NextInto(im *vision.Image) *vision.Image {
	if im.W != s.W || im.H != s.H {
		panic("video: NextInto image geometry does not match scene")
	}
	s.renderBackground(im)
	for i := range s.Vehicles {
		s.stepVehicle(&s.Vehicles[i])
		s.renderVehicle(im, s.Vehicles[i])
	}
	if s.Noise > 0 {
		s.renderNoise(im)
	}
	s.frame++
	return im
}

func (s *Scene) stepVehicle(v *Vehicle) {
	// Smooth random walk on velocities, bounded positions.
	v.VZ += 0.01 * s.rng.NormFloat64()
	v.VX += 0.004 * s.rng.NormFloat64()
	v.VZ = clamp(v.VZ, -0.15, 0.15)
	v.VX = clamp(v.VX, -0.05, 0.05)
	v.Z = clamp(v.Z+v.VZ, 6, 60)
	v.X = clamp(v.X+v.VX, -4, 4)
}

func (s *Scene) renderBackground(im *vision.Image) {
	// Horizontal gradient road texture plus lane-ish stripes, all below
	// RoadGrayMax so it never crosses the detection threshold.
	for y := 0; y < s.H; y++ {
		base := uint8(30 + 60*y/s.H)
		for x := 0; x < s.W; x++ {
			v := base
			if (x+y/3)%97 < 3 {
				v += 25
			}
			if v > RoadGrayMax {
				v = RoadGrayMax
			}
			im.Pix[y*s.W+x] = v
		}
	}
}

func (s *Scene) renderVehicle(im *vision.Image, v Vehicle) {
	// Vehicle body: a dark rectangle (keeps marks isolated components).
	bw, bh := 1.8, 1.3
	x0, y1 := s.project(v.X-bw/2, 0.2, v.Z)
	x1, y0 := s.project(v.X+bw/2, 0.2+bh, v.Z)
	vision.FillRect(im, vision.Rect{X0: int(x0), Y0: int(y0), X1: int(x1), Y1: int(y1)}, 15)
	for _, m := range markOffsets() {
		if s.Dropout > 0 && s.rng.Float64() < s.Dropout {
			continue
		}
		px, py := s.project(v.X+m[0], m[1], v.Z)
		vision.FillDisc(im, int(math.Round(px)), int(math.Round(py)), markRadius(s.focal, v.Z), MarkGray)
	}
}

func (s *Scene) renderNoise(im *vision.Image) {
	n := int(s.Noise * float64(len(im.Pix)))
	for i := 0; i < n; i++ {
		im.Pix[s.rng.Intn(len(im.Pix))] = uint8(130 + s.rng.Intn(60))
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
