package video

import (
	"math"
	"testing"

	"skipper/internal/vision"
)

func TestSceneVehicleCountClamped(t *testing.T) {
	if n := len(NewScene(128, 128, 0, 1).Vehicles); n != 1 {
		t.Fatalf("n=0 clamps to 1, got %d", n)
	}
	if n := len(NewScene(128, 128, 9, 1).Vehicles); n != 3 {
		t.Fatalf("n=9 clamps to 3, got %d", n)
	}
	if n := len(NewScene(128, 128, 2, 1).Vehicles); n != 2 {
		t.Fatalf("got %d vehicles, want 2", n)
	}
}

func TestDeterministicStream(t *testing.T) {
	a := NewScene(96, 96, 2, 42)
	b := NewScene(96, 96, 2, 42)
	for i := 0; i < 5; i++ {
		fa, fb := a.Next(), b.Next()
		for j := range fa.Pix {
			if fa.Pix[j] != fb.Pix[j] {
				t.Fatalf("frame %d differs at pixel %d", i, j)
			}
		}
	}
	if a.Frame() != 5 {
		t.Fatalf("Frame() = %d, want 5", a.Frame())
	}
}

func TestBackgroundBelowThreshold(t *testing.T) {
	s := NewScene(160, 120, 1, 7)
	s.Vehicles[0].Z = 60 // push vehicle far away so body is tiny
	f := s.Next()
	over := 0
	for _, p := range f.Pix {
		if p >= DetectThreshold && p != MarkGray {
			over++
		}
	}
	if over != 0 {
		t.Fatalf("%d non-mark pixels above threshold", over)
	}
}

func TestMarksDetectableAndMatchTruth(t *testing.T) {
	s := NewScene(256, 256, 1, 3)
	f := s.Next()
	truth := s.Truth()
	comps := vision.Components(f, DetectThreshold, 1)
	if len(comps) != 3 {
		t.Fatalf("expected 3 mark components, got %d", len(comps))
	}
	if len(truth) != 3 {
		t.Fatalf("expected 3 truth marks, got %d", len(truth))
	}
	for _, tm := range truth {
		best := math.Inf(1)
		for _, c := range comps {
			d := math.Hypot(c.CX-tm.CX, c.CY-tm.CY)
			if d < best {
				best = d
			}
		}
		if best > 1.5 {
			t.Fatalf("no detected mark within 1.5px of truth (%g,%g), best %g",
				tm.CX, tm.CY, best)
		}
	}
}

func TestMarkSizeShrinksWithDistance(t *testing.T) {
	near := NewScene(256, 256, 1, 3)
	near.Vehicles[0].Z = 8
	far := NewScene(256, 256, 1, 3)
	far.Vehicles[0].Z = 40
	nc := vision.Components(near.Next(), DetectThreshold, 1)
	fc := vision.Components(far.Next(), DetectThreshold, 1)
	if len(nc) == 0 || len(fc) == 0 {
		t.Fatalf("marks missing: near=%d far=%d", len(nc), len(fc))
	}
	if nc[0].Area <= fc[0].Area {
		t.Fatalf("near mark area %d should exceed far mark area %d",
			nc[0].Area, fc[0].Area)
	}
}

func TestVehicleStateBounded(t *testing.T) {
	s := NewScene(128, 128, 3, 99)
	for i := 0; i < 300; i++ {
		s.Next()
	}
	for i, v := range s.Vehicles {
		if v.Z < 6 || v.Z > 60 || v.X < -4 || v.X > 4 {
			t.Fatalf("vehicle %d escaped bounds: %+v", i, v)
		}
	}
}

func TestNoiseSprinklesPixels(t *testing.T) {
	s := NewScene(64, 64, 1, 5)
	s.Noise = 0.02
	f := s.Next()
	noisy := 0
	for _, p := range f.Pix {
		if p >= 130 && p < 200 {
			noisy++
		}
	}
	if noisy < 10 {
		t.Fatalf("expected noise specks, found %d", noisy)
	}
	// Noise stays below the detection threshold.
	for _, p := range f.Pix {
		if p >= DetectThreshold && p != MarkGray {
			t.Fatalf("noise pixel %d crossed threshold", p)
		}
	}
}

func TestTruthOmitsOffscreenMarks(t *testing.T) {
	s := NewScene(128, 128, 1, 3)
	s.Vehicles[0].X = 100 // way off to the side
	if tr := s.Truth(); len(tr) != 0 {
		t.Fatalf("off-screen vehicle should have no visible marks, got %d", len(tr))
	}
}

func TestDropoutHidesMarks(t *testing.T) {
	s := NewScene(256, 256, 1, 3)
	s.Dropout = 1.0 // every mark dropped
	f := s.Next()
	if comps := vision.Components(f, DetectThreshold, 1); len(comps) != 0 {
		t.Fatalf("full dropout should hide all marks, found %d", len(comps))
	}
	s2 := NewScene(256, 256, 1, 3)
	s2.Dropout = 0
	if comps := vision.Components(s2.Next(), DetectThreshold, 1); len(comps) != 3 {
		t.Fatalf("no dropout should show 3 marks, found %d", len(comps))
	}
}
