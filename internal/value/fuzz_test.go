package value_test

// FuzzCodecRoundTrip drives the wire codec from two directions:
//
//  1. Structured inputs: a byte string is interpreted as a construction
//     recipe for an arbitrary nested value (tuples, lists, base types,
//     images and windows); decode(encode(v)) must equal v.
//  2. Raw inputs: the same bytes are fed straight to the decoder, which
//     must reject corrupt/truncated/oversized frames with an error —
//     never a panic or a runaway allocation — and anything it does accept
//     must re-encode and re-decode to an equal value.

import (
	"testing"

	"skipper/internal/value"
	"skipper/internal/vision"
)

// buildValue consumes recipe bytes and produces a value. depth bounds
// recursion so adversarial recipes stay small.
func buildValue(recipe []byte, pos *int, depth int) value.Value {
	next := func() byte {
		if *pos >= len(recipe) {
			return 0
		}
		b := recipe[*pos]
		*pos++
		return b
	}
	switch k := next() % 9; k {
	case 0:
		return nil
	case 1:
		return int(int8(next()))<<16 | int(next())
	case 2:
		return float64(int8(next())) / 4
	case 3:
		return next()%2 == 0
	case 4:
		n := int(next()) % 8
		s := make([]byte, n)
		for i := range s {
			s[i] = next()
		}
		return string(s)
	case 5:
		return value.Unit{}
	case 6, 7:
		n := int(next()) % 5
		if depth <= 0 {
			n = 0
		}
		elems := make([]value.Value, n)
		for i := range elems {
			elems[i] = buildValue(recipe, pos, depth-1)
		}
		if k == 6 {
			return value.Tuple(elems)
		}
		return value.List(elems)
	default:
		w, h := int(next())%5, int(next())%5
		im := vision.NewImage(w, h)
		for i := range im.Pix {
			im.Pix[i] = next()
		}
		if next()%2 == 0 {
			return im
		}
		return vision.Window{Origin: vision.Rect{X0: int(int8(next())), Y0: int(int8(next())),
			X1: int(int8(next())), Y1: int(int8(next()))}, Img: im}
	}
}

// windowEqual compares windows structurally (value.Equal cannot: Window
// holds an image pointer, so == compares identities).
func codecEqual(a, b value.Value) bool {
	switch av := a.(type) {
	case *vision.Image:
		bv, ok := b.(*vision.Image)
		if !ok || av.W != bv.W || av.H != bv.H {
			return false
		}
		for i := range av.Pix {
			if av.Pix[i] != bv.Pix[i] {
				return false
			}
		}
		return true
	case vision.Window:
		bv, ok := b.(vision.Window)
		if !ok || av.Origin != bv.Origin || (av.Img == nil) != (bv.Img == nil) {
			return false
		}
		return av.Img == nil || codecEqual(av.Img, bv.Img)
	case value.Tuple:
		bv, ok := b.(value.Tuple)
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if !codecEqual(av[i], bv[i]) {
				return false
			}
		}
		return true
	case value.List:
		bv, ok := b.(value.List)
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if !codecEqual(av[i], bv[i]) {
				return false
			}
		}
		return true
	default:
		return value.Equal(a, b)
	}
}

func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{6, 3, 1, 42, 7, 2, 8, 3, 3, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Add([]byte{8, 4, 4, 1, 2, 3, 4, 5})
	f.Add([]byte{0x07, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x08, 0x00, 0x0c, 'v', 'i', 's', 'i', 'o', 'n', '.', 'I', 'm', 'a', 'g', 'e'})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: data as a construction recipe.
		pos := 0
		v := buildValue(data, &pos, 6)
		enc, err := value.Encode(nil, v)
		if err != nil {
			t.Fatalf("encode of constructed value failed: %v", err)
		}
		dec, err := value.Decode(enc)
		if err != nil {
			t.Fatalf("decode of freshly encoded value failed: %v", err)
		}
		if !codecEqual(v, dec) {
			t.Fatalf("round trip mismatch: %s vs %s", value.Show(v), value.Show(dec))
		}

		// Direction 2: data as a hostile wire frame. Errors are expected;
		// panics and unbounded allocations are not (the length checks in the
		// decoder reject frames whose declared sizes exceed the input).
		got, err := value.Decode(data)
		if err != nil {
			return
		}
		re, err := value.Encode(nil, got)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		got2, err := value.Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !codecEqual(got, got2) {
			t.Fatalf("accepted frame is not stable: %s vs %s", value.Show(got), value.Show(got2))
		}
	})
}
