package value

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Streaming decode: the read-side half of the transport's zero-copy frame
// path. Decode requires the whole encoding in memory, which forces the
// transport to slurp every frame into an intermediate buffer and costs one
// full copy of each pixel slab per hop. DecodeStream instead peeks just the
// extension framing and, when the codec registers a DecodeFrom hook, hands
// the reader to the codec so the slab lands directly in its final buffer.
// Everything else falls back to a pooled in-memory buffer and the plain
// decoder, which owns all format diagnostics.

// maxStreamName bounds the extension names the streaming peek handles with
// a stack buffer; longer names (legal, but none exist in-tree) take the
// in-memory fallback.
const maxStreamName = 64

// streamScratch pools the fallback buffers so steady-state stream decodes
// of non-slab values stay allocation-free.
var streamScratch = sync.Pool{New: func() any { return new([]byte) }}

// DecodeStream decodes one value occupying exactly n encoded bytes from r.
// Extension payloads whose codec registers DecodeFrom are parsed straight
// off the reader; all other shapes are read into a pooled buffer and handed
// to Decode. Any error — format or I/O — leaves r mid-value: callers must
// treat it as fatal for the stream.
func DecodeStream(r io.Reader, n int) (Value, error) {
	if n < 0 {
		return nil, fmt.Errorf("value: negative stream value length")
	}
	var hdr [7 + maxStreamName]byte
	if n >= 1 {
		if _, err := io.ReadFull(r, hdr[:1]); err != nil {
			return nil, err
		}
	}
	// tag + name length + name + payload length is the minimum extension
	// encoding; anything shorter (or a non-extension value) cannot stream.
	if n < 7 || hdr[0] != tagExt {
		pn := 1
		if n < 1 {
			pn = 0
		}
		return slurpDecode(r, n, hdr[:pn])
	}
	if _, err := io.ReadFull(r, hdr[1:3]); err != nil {
		return nil, err
	}
	nameLen := int(binary.BigEndian.Uint16(hdr[1:3]))
	if nameLen > maxStreamName || 7+nameLen > n {
		return slurpDecode(r, n, hdr[:3])
	}
	if _, err := io.ReadFull(r, hdr[3:7+nameLen]); err != nil {
		return nil, err
	}
	e := lookupExtBytes(hdr[3 : 3+nameLen])
	payloadLen := int(binary.BigEndian.Uint32(hdr[3+nameLen:]))
	if e == nil || e.DecodeFrom == nil || 7+nameLen+payloadLen != n {
		// Unknown extension, no streaming hook, or a length mismatch the
		// in-memory decoder will diagnose (trailing bytes / truncation).
		return slurpDecode(r, n, hdr[:7+nameLen])
	}
	v, err := e.DecodeFrom(r, payloadLen)
	if err != nil {
		return nil, fmt.Errorf("value: ext %s: %w", e.Name, err)
	}
	return v, nil
}

// slurpDecode finishes a stream decode in memory: prefix (already consumed
// from r) plus the remaining bytes are reassembled in a pooled buffer and
// decoded by the ordinary path.
func slurpDecode(r io.Reader, n int, prefix []byte) (Value, error) {
	sb := streamScratch.Get().(*[]byte)
	if cap(*sb) < n {
		*sb = make([]byte, 0, n)
	}
	buf := (*sb)[:n]
	copy(buf, prefix)
	if _, err := io.ReadFull(r, buf[len(prefix):]); err != nil {
		*sb = buf
		streamScratch.Put(sb)
		return nil, err
	}
	v, err := Decode(buf)
	*sb = buf
	streamScratch.Put(sb)
	return v, err
}

// lookupExtBytes is lookupExt without the string conversion allocating on
// the hot path (the conversion inside the map index does not escape).
func lookupExtBytes(name []byte) *Ext {
	extMu.RLock()
	defer extMu.RUnlock()
	return extByName[string(name)]
}
