package value_test

// External test package: pulls in the vision and track codec registrations
// (vision imports value, so the registration round-trips can only be
// exercised from outside the value package).

import (
	"bytes"
	"strings"
	"testing"

	"skipper/internal/track"
	"skipper/internal/value"
	"skipper/internal/video"
	"skipper/internal/vision"
)

func roundTrip(t *testing.T, v value.Value) value.Value {
	t.Helper()
	data, err := value.Encode(nil, v)
	if err != nil {
		t.Fatalf("encode %s: %v", value.Show(v), err)
	}
	got, err := value.Decode(data)
	if err != nil {
		t.Fatalf("decode %s: %v", value.Show(v), err)
	}
	return got
}

func TestCodecBaseTypesRoundTrip(t *testing.T) {
	cases := []value.Value{
		nil,
		0, 1, -1, 1 << 40, -(1 << 40),
		0.0, 3.25, -1e300,
		true, false,
		"", "hello", strings.Repeat("x", 70000),
		value.Unit{},
		value.Tuple{}, value.Tuple{1, "a", value.Unit{}},
		value.List{}, value.List{value.Tuple{1, 2}, value.List{3.5, nil}},
	}
	for _, v := range cases {
		if got := roundTrip(t, v); !value.Equal(got, v) {
			t.Fatalf("round trip of %s gave %s", value.Show(v), value.Show(got))
		}
	}
}

func TestCodecImageAndWindowRoundTrip(t *testing.T) {
	scene := video.NewScene(64, 48, 2, 7)
	frame := scene.Next()
	got := roundTrip(t, frame).(*vision.Image)
	if got.W != frame.W || got.H != frame.H {
		t.Fatalf("image geometry %dx%d vs %dx%d", got.W, got.H, frame.W, frame.H)
	}
	for i := range frame.Pix {
		if got.Pix[i] != frame.Pix[i] {
			t.Fatalf("pixel %d differs", i)
		}
	}

	win := vision.Extract(frame, vision.Rect{X0: 3, Y0: 5, X1: 40, Y1: 30})
	gw := roundTrip(t, win).(vision.Window)
	if gw.Origin != win.Origin || gw.Img.W != win.Img.W || gw.Img.H != win.Img.H {
		t.Fatalf("window %v vs %v", gw.Origin, win.Origin)
	}
	// Nil-image windows survive too.
	empty := vision.Window{Origin: vision.Rect{X0: 1, Y0: 2, X1: 3, Y1: 4}}
	ge := roundTrip(t, empty).(vision.Window)
	if ge.Origin != empty.Origin || ge.Img != nil {
		t.Fatalf("empty window came back as %+v", ge)
	}
}

func TestCodecTrackTypesRoundTrip(t *testing.T) {
	d := track.Detections{
		{CX: 10.5, CY: -3.25, BBox: vision.Rect{X0: 1, Y0: 2, X1: 9, Y1: 8}, Area: 17},
		{CX: 0, CY: 0, BBox: vision.Rect{}, Area: 0},
	}
	got := roundTrip(t, d).(track.Detections)
	if len(got) != len(d) || got[0] != d[0] || got[1] != d[1] {
		t.Fatalf("detections %+v vs %+v", got, d)
	}

	s := track.InitState(512, 512, 2)
	s.Tracking = true
	s.Frame = 42
	s.Vehicles = []track.VehicleEst{{
		VX: [3]float64{1, 2, 3}, VY: [3]float64{-1, 0.5, 2}, Scale: 33.5, Age: 9,
	}}
	s.Vehicles[0].Marks[1] = d[0]
	gs := roundTrip(t, s).(*track.State)
	if gs.W != s.W || gs.H != s.H || gs.NVehicles != s.NVehicles ||
		gs.Tracking != s.Tracking || gs.Frame != s.Frame ||
		len(gs.Vehicles) != 1 || gs.Vehicles[0] != s.Vehicles[0] {
		t.Fatalf("state %+v vs %+v", gs, s)
	}
}

func TestCodecFarmValuesNested(t *testing.T) {
	// The shape the farm protocol actually ships: lists of windows in,
	// tuples of (detections, new tasks) out.
	scene := video.NewScene(32, 32, 1, 3)
	frame := scene.Next()
	v := value.Tuple{
		value.List{
			track.Detections{{CX: 1, CY: 2, Area: 3}},
		},
		value.List{
			vision.Extract(frame, vision.Rect{X0: 0, Y0: 0, X1: 16, Y1: 16}),
			vision.Extract(frame, vision.Rect{X0: 16, Y0: 16, X1: 32, Y1: 32}),
		},
	}
	got := roundTrip(t, v).(value.Tuple)
	if len(got) != 2 {
		t.Fatalf("tuple arity %d", len(got))
	}
	if _, ok := got[0].(value.List)[0].(track.Detections); !ok {
		t.Fatalf("nested detections lost their type: %T", got[0].(value.List)[0])
	}
}

// sizeCases covers every shape the presized encoder must get exactly right:
// base types, nested sequences, and the registered exts that declare Size.
func sizeCases() []value.Value {
	scene := video.NewScene(64, 48, 2, 7)
	frame := scene.Next()
	st := track.InitState(512, 512, 2)
	st.Vehicles = []track.VehicleEst{{Scale: 33.5, Age: 9}, {Scale: 1, Age: 2}}
	sized := []value.Value{
		nil, 0, -5, 1 << 40, 3.25, -1e300, true, false,
		"", "hello", strings.Repeat("x", 300),
		value.Unit{},
		value.Tuple{}, value.Tuple{1, "a", 2.5},
		value.List{value.Tuple{1, 2}, nil, value.List{}},
		frame,
		vision.Extract(frame, vision.Rect{X0: 3, Y0: 5, X1: 40, Y1: 30}),
		vision.Window{Origin: vision.Rect{X0: 1, Y0: 2, X1: 3, Y1: 4}}, // nil-image window
		st,
		track.Detections{{CX: 10.5, CY: -3.25, Area: 17}},
	}
	return sized
}

func TestEncodeSizeMatchesEncodedLength(t *testing.T) {
	for _, v := range sizeCases() {
		data, err := value.Encode(nil, v)
		if err != nil {
			t.Fatalf("encode %s: %v", value.Show(v), err)
		}
		if n := value.EncodeSize(v); n != len(data) {
			t.Fatalf("EncodeSize(%s) = %d, encoded length is %d", value.Show(v), n, len(data))
		}
	}
	// Unknown values report -1 ("don't know"), never a wrong size.
	type mystery struct{ x int }
	if n := value.EncodeSize(mystery{1}); n != -1 {
		t.Fatalf("EncodeSize(unregistered opaque) = %d, want -1", n)
	}
}

func TestEncodeTrailingMatchesEncode(t *testing.T) {
	for _, v := range sizeCases() {
		flat, err := value.Encode(nil, v)
		if err != nil {
			t.Fatalf("encode %s: %v", value.Show(v), err)
		}
		head, tail, err := value.EncodeTrailing(nil, v)
		if err != nil {
			t.Fatalf("encode trailing %s: %v", value.Show(v), err)
		}
		got := append(append([]byte(nil), head...), tail...)
		if !bytes.Equal(got, flat) {
			t.Fatalf("EncodeTrailing(%s) produced %d bytes differing from Encode's %d",
				value.Show(v), len(got), len(flat))
		}
	}
}

// TestEncodePresizedZeroAllocs guards the transport hot path's allocation
// budget at the codec layer: with a buffer presized via EncodeSize, encoding
// a full frame must not touch the heap.
func TestEncodePresizedZeroAllocs(t *testing.T) {
	im := vision.GetImage(256, 64)
	defer vision.PutImage(im)
	var v value.Value = im // boxed once, outside the measured loop
	n := value.EncodeSize(v)
	if n < 0 {
		t.Fatalf("EncodeSize(image) = %d, want an exact size", n)
	}
	buf := make([]byte, 0, n)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := value.Encode(buf, v); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("presized Encode allocates %.1f times per op, want 0", allocs)
	}
}

func TestCodecRejectsUnknownOpaque(t *testing.T) {
	type mystery struct{ x int }
	if _, err := value.Encode(nil, mystery{1}); err == nil {
		t.Fatal("encoding an unregistered opaque type should fail")
	}
}

func TestCodecRejectsCorruptFramesWithoutPanic(t *testing.T) {
	// Truncations of a valid frame must all fail cleanly.
	data, err := value.Encode(nil, value.Tuple{1, "abc", value.List{2.5, true}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := value.Decode(data); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := value.Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	// Oversized sequence counts are rejected before allocation.
	huge := []byte{0x07, 0xff, 0xff, 0xff, 0xff} // list of 4 billion elements
	if _, err := value.Decode(huge); err == nil {
		t.Fatal("oversized list count decoded successfully")
	}
	// Oversized image headers are rejected before allocation.
	img, err := value.Encode(nil, vision.NewImage(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-16-4] = 0x7f // corrupt the width field deep inside the ext payload
	if _, err := value.Decode(img); err == nil {
		t.Fatal("corrupt image header decoded successfully")
	}
}

func TestCodecTrailingBytesRejected(t *testing.T) {
	data, err := value.Encode(nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := value.Decode(append(data, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}
