// Package value defines the dynamic value model shared by the sequential
// emulator, the distributed executive and the timing simulator, together
// with the registry of user sequential functions. Registered functions are
// the Go counterpart of the paper's "application-specific sequential
// functions written in C": each carries its DSL type signature, its
// implementation, and the cost/size models used by the timing simulator.
package value

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a dynamic SKiPPER value. The concrete representations are:
//
//	int, float64, bool, string — the base types
//	Unit                        — the unit value ()
//	Tuple                       — tuples
//	List                        — lists
//	anything else               — an opaque value of an abstract type
type Value = any

// Unit is the unit value ().
type Unit struct{}

// Tuple is a tuple value.
type Tuple []Value

// List is a list value.
type List []Value

// Show renders a value for debugging and program output.
func Show(v Value) string {
	switch v := v.(type) {
	case nil:
		return "<nil>"
	case int:
		return fmt.Sprintf("%d", v)
	case float64:
		return fmt.Sprintf("%g", v)
	case bool:
		return fmt.Sprintf("%t", v)
	case string:
		return fmt.Sprintf("%q", v)
	case Unit:
		return "()"
	case Tuple:
		parts := make([]string, len(v))
		for i, e := range v {
			parts[i] = Show(e)
		}
		return "(" + strings.Join(parts, ", ") + ")"
	case List:
		parts := make([]string, len(v))
		for i, e := range v {
			parts[i] = Show(e)
		}
		return "[" + strings.Join(parts, "; ") + "]"
	default:
		if str, ok := v.(fmt.Stringer); ok {
			return str.String()
		}
		return fmt.Sprintf("<%T>", v)
	}
}

// Sizer lets opaque values report their transfer size in bytes.
type Sizer interface {
	Bytes() int
}

// SizeOf estimates the number of bytes needed to transmit v between
// processors, used by the communication cost model. Opaque values may
// implement Sizer; otherwise a fixed default is charged.
func SizeOf(v Value) int {
	const header = 4
	switch v := v.(type) {
	case nil:
		return header
	case int:
		return 4
	case float64:
		return 8
	case bool:
		return 1
	case string:
		return header + len(v)
	case Unit:
		return 1
	case Tuple:
		n := header
		for _, e := range v {
			n += SizeOf(e)
		}
		return n
	case List:
		n := header
		for _, e := range v {
			n += SizeOf(e)
		}
		return n
	case Sizer:
		return v.Bytes()
	default:
		return 64
	}
}

// Func is a registered user sequential function (or constant, when Arity
// is 0).
type Func struct {
	// Name is the extern name the DSL program refers to.
	Name string
	// Sig is the function's DSL type signature, e.g.
	// "int -> state -> img -> window list".
	Sig string
	// Arity is the number of curried arguments.
	Arity int
	// Fn is the implementation. It receives exactly Arity arguments.
	Fn func(args []Value) Value
	// Cost estimates the execution time of a call in processor cycles on
	// the modelled target, given the actual arguments. Nil means DefaultCost.
	Cost func(args []Value) int64
	// EstCost is the static (data-independent) cycle estimate used by the
	// mapper/scheduler before any data exists. Zero means DefaultCost.
	EstCost int64
	// EstBytes is the static estimate of the result's transfer size in
	// bytes, used for static communication scheduling. Zero means 64.
	EstBytes int
	// Pure marks a side-effect-free function the compiler may fold at
	// expansion time when all arguments are compile-time constants.
	// Functions are impure by default (a C function reading a camera must
	// never run at compile time).
	Pure bool
}

// EstCostOf returns the static cost estimate.
func (f *Func) EstCostOf() int64 {
	if f.EstCost > 0 {
		return f.EstCost
	}
	return DefaultCost
}

// EstBytesOf returns the static result size estimate.
func (f *Func) EstBytesOf() int {
	if f.EstBytes > 0 {
		return f.EstBytes
	}
	return 64
}

// DefaultCost is charged by the simulator for functions without a cost
// model: a fixed small overhead.
const DefaultCost = 1000

// CostOf evaluates the function's cost model on args.
func (f *Func) CostOf(args []Value) int64 {
	if f.Cost != nil {
		return f.Cost(args)
	}
	return DefaultCost
}

// Registry holds the user functions available to a program.
type Registry struct {
	funcs map[string]*Func
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{funcs: map[string]*Func{}}
}

// Register adds f; it panics on duplicate or malformed registrations, which
// are programming errors in the host application.
func (r *Registry) Register(f *Func) {
	if f.Name == "" {
		panic("value: Register with empty name")
	}
	if f.Arity < 0 {
		panic("value: negative arity for " + f.Name)
	}
	if f.Fn == nil {
		panic("value: nil implementation for " + f.Name)
	}
	if _, dup := r.funcs[f.Name]; dup {
		panic("value: duplicate registration of " + f.Name)
	}
	r.funcs[f.Name] = f
}

// Lookup returns the function registered under name.
func (r *Registry) Lookup(name string) (*Func, bool) {
	f, ok := r.funcs[name]
	return f, ok
}

// Names returns all registered names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.funcs))
	for n := range r.funcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ExternDecls renders `extern` declarations for every registered function,
// ready to prepend to a DSL source (so applications keep signatures in one
// place, the registry).
func (r *Registry) ExternDecls() string {
	var b strings.Builder
	for _, n := range r.Names() {
		f := r.funcs[n]
		if f.Sig == "" {
			continue
		}
		fmt.Fprintf(&b, "extern %s : %s;;\n", f.Name, f.Sig)
	}
	return b.String()
}

// Equal compares two values structurally. Opaque values are compared with
// Go ==  when possible; incomparable opaque values are never equal.
func Equal(a, b Value) bool {
	switch av := a.(type) {
	case Tuple:
		bv, ok := b.(Tuple)
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if !Equal(av[i], bv[i]) {
				return false
			}
		}
		return true
	case List:
		bv, ok := b.(List)
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if !Equal(av[i], bv[i]) {
				return false
			}
		}
		return true
	default:
		return safeEqual(a, b)
	}
}

// safeEqual applies Go == and treats incomparable dynamic types (which make
// == panic) as unequal.
func safeEqual(a, b Value) (eq bool) {
	defer func() {
		if recover() != nil {
			eq = false
		}
	}()
	return a == b
}
