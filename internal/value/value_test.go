package value

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestShow(t *testing.T) {
	cases := map[string]Value{
		"42":                42,
		"3.5":               3.5,
		"true":              true,
		`"hi"`:              "hi",
		"()":                Unit{},
		"(1, false)":        Tuple{1, false},
		"[1; 2]":            List{1, 2},
		"[]":                List{},
		"<nil>":             nil,
		"[(1, ()); [true]]": List{Tuple{1, Unit{}}, List{true}},
	}
	for want, v := range cases {
		if got := Show(v); got != want {
			t.Errorf("Show(%v) = %q, want %q", v, got, want)
		}
	}
	if !strings.HasPrefix(Show(struct{ X int }{1}), "<struct") {
		t.Errorf("opaque Show = %q", Show(struct{ X int }{1}))
	}
}

type sized struct{ n int }

func (s sized) Bytes() int { return s.n }

func TestSizeOf(t *testing.T) {
	cases := []struct {
		v    Value
		want int
	}{
		{42, 4},
		{3.14, 8},
		{true, 1},
		{"abcd", 8},
		{Unit{}, 1},
		{Tuple{1, 2}, 12},
		{List{1, 2, 3}, 16},
		{sized{n: 777}, 777},
		{nil, 4},
		{struct{}{}, 64},
	}
	for _, c := range cases {
		if got := SizeOf(c.v); got != c.want {
			t.Errorf("SizeOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSizeOfNested(t *testing.T) {
	v := List{Tuple{1, "ab"}, sized{100}}
	// 4 (list hdr) + [4 (tuple hdr) + 4 + (4+2)] + 100 = 118
	if got := SizeOf(v); got != 118 {
		t.Fatalf("SizeOf = %d", got)
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Tuple{1, List{true}}, Tuple{1, List{true}}) {
		t.Fatal("deep equal failed")
	}
	if Equal(Tuple{1}, Tuple{2}) || Equal(List{1}, List{1, 2}) {
		t.Fatal("inequality missed")
	}
	if Equal(Tuple{1}, List{1}) {
		t.Fatal("tuple/list confusion")
	}
	// Incomparable dynamic types must not panic.
	if Equal([]int{1}, []int{1}) {
		t.Fatal("incomparable opaque values should be unequal")
	}
	if !Equal(Unit{}, Unit{}) {
		t.Fatal("unit equality")
	}
}

func TestEqualReflexiveOnStructured(t *testing.T) {
	f := func(a int, b bool, s string) bool {
		v := Tuple{a, List{b, s}, Unit{}}
		return Equal(v, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	f := &Func{Name: "f", Sig: "int -> int", Arity: 1,
		Fn: func(a []Value) Value { return a[0] }}
	r.Register(f)
	got, ok := r.Lookup("f")
	if !ok || got != f {
		t.Fatal("lookup failed")
	}
	if _, ok := r.Lookup("ghost"); ok {
		t.Fatal("phantom lookup")
	}
	names := r.Names()
	if len(names) != 1 || names[0] != "f" {
		t.Fatalf("names = %v", names)
	}
}

func TestRegistryPanicsOnBadRegistration(t *testing.T) {
	check := func(name string, f *Func) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		r := NewRegistry()
		if name == "duplicate" {
			r.Register(&Func{Name: "dup", Arity: 0, Fn: func([]Value) Value { return 0 }})
		}
		r.Register(f)
	}
	check("empty name", &Func{Arity: 1, Fn: func([]Value) Value { return 0 }})
	check("negative arity", &Func{Name: "f", Arity: -1, Fn: func([]Value) Value { return 0 }})
	check("nil fn", &Func{Name: "f", Arity: 1})
	check("duplicate", &Func{Name: "dup", Arity: 0, Fn: func([]Value) Value { return 0 }})
}

func TestExternDecls(t *testing.T) {
	r := NewRegistry()
	r.Register(&Func{Name: "b", Sig: "int -> int", Arity: 1, Fn: func(a []Value) Value { return 0 }})
	r.Register(&Func{Name: "a", Sig: "unit -> img", Arity: 1, Fn: func(a []Value) Value { return 0 }})
	r.Register(&Func{Name: "nosig", Arity: 1, Fn: func(a []Value) Value { return 0 }})
	got := r.ExternDecls()
	want := "extern a : unit -> img;;\nextern b : int -> int;;\n"
	if got != want {
		t.Fatalf("ExternDecls = %q", got)
	}
}

func TestCostAndEstimates(t *testing.T) {
	f := &Func{Name: "f", Arity: 1, Fn: func(a []Value) Value { return 0 }}
	if f.CostOf(nil) != DefaultCost {
		t.Fatal("default cost")
	}
	if f.EstCostOf() != DefaultCost || f.EstBytesOf() != 64 {
		t.Fatal("default estimates")
	}
	f.Cost = func([]Value) int64 { return 777 }
	f.EstCost = 555
	f.EstBytes = 333
	if f.CostOf(nil) != 777 || f.EstCostOf() != 555 || f.EstBytesOf() != 333 {
		t.Fatal("explicit models ignored")
	}
}
