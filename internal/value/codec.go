package value

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// Binary value codec: the wire format the TCP executive transport uses to
// ship values between processor OS processes. The format is length-safe
// (every variable-size field is validated against the remaining input before
// any allocation, so truncated or corrupted frames fail with an error
// instead of a panic or an unbounded allocation) and extensible: opaque
// application types register a named extension codec, mirroring how the
// paper's kernel-level communication primitives are parameterized by
// user-supplied marshalling for abstract C types.
//
// Layout (integers big-endian): one tag byte, then a tag-specific payload.
//
//	0x00 nil
//	0x01 int      8-byte two's complement
//	0x02 float64  8-byte IEEE-754 bits
//	0x03 bool     1 byte (0/1)
//	0x04 string   u32 length + bytes
//	0x05 unit
//	0x06 tuple    u32 count + encoded elements
//	0x07 list     u32 count + encoded elements
//	0x08 ext      u16 name length + name + u32 payload length + payload
const (
	tagNil byte = iota
	tagInt
	tagFloat
	tagBool
	tagString
	tagUnit
	tagTuple
	tagList
	tagExt
)

// maxDecodeDepth bounds the nesting of tuples/lists a decoder accepts, so a
// crafted frame cannot overflow the stack.
const maxDecodeDepth = 512

// Ext is a named extension codec for one opaque value type. Encode appends
// the payload bytes for v; Decode parses exactly the payload written by
// Encode (it receives the length-delimited payload slice and must consume
// all of it). Match reports whether the extension handles v.
//
// Size and EncodeTail are optional hot-path accelerators. Size returns the
// exact payload byte count Encode will produce for v (or a negative value
// when it cannot tell), letting callers presize buffers so the append path
// never reallocates. EncodeTail is the zero-copy variant of Encode for
// values whose encoding ends in one large raw byte slab (image pixels): it
// appends everything up to the slab and returns the slab by reference, so
// a transport can hand both pieces to a vectored write without ever
// copying the slab. The concatenation head[start:]+tail must be byte
// identical to what Encode appends.
//
// DecodeFrom is the read-side mirror of EncodeTail: it parses the same
// payload Decode would, but straight from a reader positioned at the
// payload's first byte, consuming exactly n bytes. A codec whose payload
// ends in a raw slab reads the slab into its final buffer (an arena image)
// instead of an intermediate frame buffer — the transport's zero-copy read
// path. Wrapper codecs (farm tasks) read their fixed fields and recurse via
// DecodeStream. On error the reader's position is unspecified; stream
// decoders must treat any error as fatal for the connection.
type Ext struct {
	Name       string
	Match      func(v Value) bool
	Encode     func(buf []byte, v Value) ([]byte, error)
	Decode     func(payload []byte) (Value, error)
	Size       func(v Value) int
	EncodeTail func(buf []byte, v Value) (head, tail []byte, err error)
	DecodeFrom func(r io.Reader, n int) (Value, error)
}

var (
	extMu     sync.RWMutex
	extByName = map[string]*Ext{}
	extOrder  []*Ext
)

// RegisterExt adds an extension codec; it panics on duplicate or malformed
// registrations, which are programming errors (registration happens in
// package init functions).
func RegisterExt(e Ext) {
	if e.Name == "" || e.Match == nil || e.Encode == nil || e.Decode == nil {
		panic("value: malformed extension codec registration")
	}
	extMu.Lock()
	defer extMu.Unlock()
	if _, dup := extByName[e.Name]; dup {
		panic("value: duplicate extension codec " + e.Name)
	}
	ext := &e
	extByName[e.Name] = ext
	extOrder = append(extOrder, ext)
}

// ExtNames returns the registered extension names, sorted (for diagnostics).
func ExtNames() []string {
	extMu.RLock()
	defer extMu.RUnlock()
	out := make([]string, 0, len(extByName))
	for n := range extByName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func matchExt(v Value) *Ext {
	extMu.RLock()
	defer extMu.RUnlock()
	for _, e := range extOrder {
		if e.Match(v) {
			return e
		}
	}
	return nil
}

func lookupExt(name string) *Ext {
	extMu.RLock()
	defer extMu.RUnlock()
	return extByName[name]
}

// Encode appends the encoding of v to buf and returns the extended slice.
// Values that are neither base types nor registered extensions are an error.
func Encode(buf []byte, v Value) ([]byte, error) {
	switch v := v.(type) {
	case nil:
		return append(buf, tagNil), nil
	case int:
		return AppendI64(append(buf, tagInt), int64(v)), nil
	case float64:
		return AppendF64(append(buf, tagFloat), v), nil
	case bool:
		b := byte(0)
		if v {
			b = 1
		}
		return append(buf, tagBool, b), nil
	case string:
		buf = AppendU32(append(buf, tagString), uint32(len(v)))
		return append(buf, v...), nil
	case Unit:
		return append(buf, tagUnit), nil
	case Tuple:
		return encodeSeq(buf, tagTuple, v)
	case List:
		return encodeSeq(buf, tagList, v)
	}
	e := matchExt(v)
	if e == nil {
		return nil, fmt.Errorf("value: no codec for %T (register a codec extension)", v)
	}
	if len(e.Name) > math.MaxUint16 {
		return nil, fmt.Errorf("value: extension name %q too long", e.Name)
	}
	buf = append(buf, tagExt)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Name)))
	buf = append(buf, e.Name...)
	// Reserve the payload length and backpatch once the payload is written.
	lenAt := len(buf)
	buf = AppendU32(buf, 0)
	buf, err := e.Encode(buf, v)
	if err != nil {
		return nil, fmt.Errorf("value: ext %s: %w", e.Name, err)
	}
	payload := len(buf) - lenAt - 4
	if payload < 0 || payload > math.MaxUint32 {
		return nil, fmt.Errorf("value: ext %s payload size %d out of range", e.Name, payload)
	}
	binary.BigEndian.PutUint32(buf[lenAt:], uint32(payload))
	return buf, nil
}

// EncodeSize returns the exact number of bytes Encode will append for v, or
// -1 when the size cannot be computed without encoding (an extension codec
// without a Size model). Callers use it to presize buffers: with a reused
// buffer of EncodeSize(v) capacity, Encode performs zero allocations.
func EncodeSize(v Value) int {
	switch v := v.(type) {
	case nil:
		return 1
	case int:
		return 9
	case float64:
		return 9
	case bool:
		return 2
	case string:
		return 5 + len(v)
	case Unit:
		return 1
	case Tuple:
		return seqSize(v)
	case List:
		return seqSize(v)
	}
	e := matchExt(v)
	if e == nil || e.Size == nil {
		return -1
	}
	n := e.Size(v)
	if n < 0 {
		return -1
	}
	return 1 + 2 + len(e.Name) + 4 + n
}

func seqSize(elems []Value) int {
	n := 5
	for _, el := range elems {
		s := EncodeSize(el)
		if s < 0 {
			return -1
		}
		n += s
	}
	return n
}

// EncodeTrailing encodes v like Encode, but when v (or the value it wraps)
// registers an EncodeTail fast path, the trailing raw slab of the encoding
// is returned by reference in tail instead of being copied into the buffer.
// head[len(buf):] followed by tail is byte identical to Encode's output; a
// nil tail means the whole encoding is in head. The caller must treat tail
// as borrowed from v: it stays valid only as long as v is not mutated.
func EncodeTrailing(buf []byte, v Value) (head, tail []byte, err error) {
	e := matchExt(v)
	if e == nil || e.EncodeTail == nil {
		head, err = Encode(buf, v)
		return head, nil, err
	}
	if len(e.Name) > math.MaxUint16 {
		return nil, nil, fmt.Errorf("value: extension name %q too long", e.Name)
	}
	buf = append(buf, tagExt)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Name)))
	buf = append(buf, e.Name...)
	lenAt := len(buf)
	buf = AppendU32(buf, 0)
	head, tail, err = e.EncodeTail(buf, v)
	if err != nil {
		return nil, nil, fmt.Errorf("value: ext %s: %w", e.Name, err)
	}
	payload := len(head) - lenAt - 4 + len(tail)
	if payload < 0 || payload > math.MaxUint32 {
		return nil, nil, fmt.Errorf("value: ext %s payload size %d out of range", e.Name, payload)
	}
	binary.BigEndian.PutUint32(head[lenAt:], uint32(payload))
	return head, tail, nil
}

func encodeSeq(buf []byte, tag byte, elems []Value) ([]byte, error) {
	buf = AppendU32(append(buf, tag), uint32(len(elems)))
	var err error
	for _, e := range elems {
		if buf, err = Encode(buf, e); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Decode parses a single encoded value occupying all of data.
func Decode(data []byte) (Value, error) {
	v, rest, err := DecodePrefix(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("value: %d trailing bytes after value", len(rest))
	}
	return v, nil
}

// DecodePrefix parses one encoded value from the front of data and returns
// the remainder, for consumers (and extension codecs) that concatenate
// encodings.
func DecodePrefix(data []byte) (Value, []byte, error) {
	v, n, err := decodeAt(data, 0, 0)
	if err != nil {
		return nil, nil, err
	}
	return v, data[n:], nil
}

func decodeAt(data []byte, pos, depth int) (Value, int, error) {
	if depth > maxDecodeDepth {
		return nil, 0, fmt.Errorf("value: nesting deeper than %d", maxDecodeDepth)
	}
	if pos >= len(data) {
		return nil, 0, fmt.Errorf("value: truncated input (no tag at offset %d)", pos)
	}
	tag := data[pos]
	pos++
	switch tag {
	case tagNil:
		return nil, pos, nil
	case tagInt:
		x, pos, err := ReadI64(data, pos)
		return int(x), pos, err
	case tagFloat:
		x, pos, err := ReadF64(data, pos)
		return x, pos, err
	case tagBool:
		if pos >= len(data) {
			return nil, 0, fmt.Errorf("value: truncated bool")
		}
		switch data[pos] {
		case 0:
			return false, pos + 1, nil
		case 1:
			return true, pos + 1, nil
		}
		return nil, 0, fmt.Errorf("value: invalid bool byte %#x", data[pos])
	case tagString:
		n, pos, err := readLen(data, pos)
		if err != nil {
			return nil, 0, fmt.Errorf("value: string: %w", err)
		}
		return string(data[pos : pos+n]), pos + n, nil
	case tagUnit:
		return Unit{}, pos, nil
	case tagTuple, tagList:
		count, pos, err := ReadU32(data, pos)
		if err != nil {
			return nil, 0, err
		}
		// Each element takes at least one byte: a count beyond the
		// remaining input is corrupt, reject before allocating.
		if int64(count) > int64(len(data)-pos) {
			return nil, 0, fmt.Errorf("value: sequence count %d exceeds remaining %d bytes",
				count, len(data)-pos)
		}
		elems := make([]Value, count)
		for i := range elems {
			var err error
			elems[i], pos, err = decodeAt(data, pos, depth+1)
			if err != nil {
				return nil, 0, err
			}
		}
		if tag == tagTuple {
			return Tuple(elems), pos, nil
		}
		return List(elems), pos, nil
	case tagExt:
		if pos+2 > len(data) {
			return nil, 0, fmt.Errorf("value: truncated extension name length")
		}
		nameLen := int(binary.BigEndian.Uint16(data[pos:]))
		pos += 2
		if pos+nameLen > len(data) {
			return nil, 0, fmt.Errorf("value: truncated extension name")
		}
		name := string(data[pos : pos+nameLen])
		pos += nameLen
		n, pos, err := readLen(data, pos)
		if err != nil {
			return nil, 0, fmt.Errorf("value: ext %s: %w", name, err)
		}
		e := lookupExt(name)
		if e == nil {
			return nil, 0, fmt.Errorf("value: unknown codec extension %q (registered: %v)",
				name, ExtNames())
		}
		v, err := e.Decode(data[pos : pos+n])
		if err != nil {
			return nil, 0, fmt.Errorf("value: ext %s: %w", name, err)
		}
		return v, pos + n, nil
	}
	return nil, 0, fmt.Errorf("value: unknown tag %#x", tag)
}

// readLen reads a u32 length and validates it against the remaining input.
func readLen(data []byte, pos int) (int, int, error) {
	n, pos, err := ReadU32(data, pos)
	if err != nil {
		return 0, 0, err
	}
	if int64(n) > int64(len(data)-pos) {
		return 0, 0, fmt.Errorf("length %d exceeds remaining %d bytes", n, len(data)-pos)
	}
	return int(n), pos, nil
}

// ---------------------------------------------------------------------------
// Primitive helpers shared with extension codecs.

// AppendU32 appends x big-endian.
func AppendU32(buf []byte, x uint32) []byte { return binary.BigEndian.AppendUint32(buf, x) }

// AppendI64 appends x big-endian.
func AppendI64(buf []byte, x int64) []byte {
	return binary.BigEndian.AppendUint64(buf, uint64(x))
}

// AppendF64 appends the IEEE-754 bits of x big-endian.
func AppendF64(buf []byte, x float64) []byte {
	return binary.BigEndian.AppendUint64(buf, math.Float64bits(x))
}

// ReadU32 reads a big-endian u32 at pos.
func ReadU32(data []byte, pos int) (uint32, int, error) {
	if pos+4 > len(data) {
		return 0, 0, fmt.Errorf("truncated u32 at offset %d", pos)
	}
	return binary.BigEndian.Uint32(data[pos:]), pos + 4, nil
}

// ReadI64 reads a big-endian i64 at pos.
func ReadI64(data []byte, pos int) (int64, int, error) {
	if pos+8 > len(data) {
		return 0, 0, fmt.Errorf("truncated i64 at offset %d", pos)
	}
	return int64(binary.BigEndian.Uint64(data[pos:])), pos + 8, nil
}

// ReadF64 reads big-endian IEEE-754 bits at pos.
func ReadF64(data []byte, pos int) (float64, int, error) {
	if pos+8 > len(data) {
		return 0, 0, fmt.Errorf("truncated f64 at offset %d", pos)
	}
	return math.Float64frombits(binary.BigEndian.Uint64(data[pos:])), pos + 8, nil
}
