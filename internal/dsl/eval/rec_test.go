package eval

import (
	"strings"
	"testing"

	"skipper/internal/dsl/parser"
	"skipper/internal/dsl/types"
	"skipper/internal/value"
)

func TestLetRecFactorial(t *testing.T) {
	out := run(t, value.NewRegistry(), Options{}, `
let rec fact n = if n <= 1 then 1 else n * fact (n - 1);;
let a = fact 10;;
`)
	if out["a"] != 3628800 {
		t.Fatalf("fact 10 = %v", out["a"])
	}
}

func TestLetRecExpressionLevel(t *testing.T) {
	out := run(t, value.NewRegistry(), Options{}, `
let a =
  let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) in
  fib 15;;
`)
	if out["a"] != 610 {
		t.Fatalf("fib 15 = %v", out["a"])
	}
}

func TestLetRecMutualViaHigherOrder(t *testing.T) {
	// Even/odd encoded through a single recursive dispatcher.
	out := run(t, value.NewRegistry(), Options{}, `
let rec even n = if n = 0 then true else if n = 1 then false else even (n - 2);;
let a = even 40;;
let b = even 41;;
`)
	if out["a"] != true || out["b"] != false {
		t.Fatalf("a=%v b=%v", out["a"], out["b"])
	}
}

func TestPaperItermemDefinitionInDSL(t *testing.T) {
	// The paper defines itermem with let rec (Fig. 4):
	//   let itermem inp loop out z x =
	//     let rec f z = let (z', y) = loop (z, inp x) in out y; f z'
	// Sequencing (out y; ...) is emulated by binding to _. We bound the
	// recursion with an explicit countdown to keep the emulation finite.
	var shown []value.Value
	reg := value.NewRegistry()
	reg.Register(&value.Func{Name: "grab", Sig: "unit -> int", Arity: 1,
		Fn: func([]value.Value) value.Value { return 2 }})
	reg.Register(&value.Func{Name: "emit", Sig: "int -> unit", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			shown = append(shown, a[0])
			return value.Unit{}
		}})
	run(t, reg, Options{}, `
extern grab : unit -> int;;
extern emit : int -> unit;;
let step (z, b) = (z + b, z + b);;
let myitermem inp loop out z x =
  let rec f zn =
    let (z, n) = zn in
    if n = 0 then () else
    let (z2, y) = loop (z, inp x) in
    let _ = out y in
    f (z2, n - 1) in
  f (z, 4);;
let main = myitermem grab step emit 0 ();;
`)
	// grab always returns 2: cumulative sums 2, 4, 6, 8.
	want := []int{2, 4, 6, 8}
	if len(shown) != len(want) {
		t.Fatalf("shown = %v", shown)
	}
	for i, w := range want {
		if shown[i] != w {
			t.Fatalf("shown = %v", shown)
		}
	}
}

func TestFloatArithmetic(t *testing.T) {
	out := run(t, value.NewRegistry(), Options{}, `
let a = 1.5 +. 2.25;;
let b = 10.0 /. 4.0;;
let c = 3.0 *. 2.0 -. 1.0;;
`)
	if out["a"] != 3.75 || out["b"] != 2.5 || out["c"] != 5.0 {
		t.Fatalf("a=%v b=%v c=%v", out["a"], out["b"], out["c"])
	}
}

func TestFloatOpsTypeChecked(t *testing.T) {
	prog, err := parser.Parse("let bad = 1 +. 2.0;;")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := types.Check(prog); err == nil ||
		!strings.Contains(err.Error(), "requires float") {
		t.Fatalf("err = %v", err)
	}
	prog2, err := parser.Parse("let f x y = x *. y;;")
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(prog2)
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Types["f"].String(); got != "float -> float -> float" {
		t.Fatalf("f : %q", got)
	}
}

func TestLetRecTyping(t *testing.T) {
	prog, err := parser.Parse("let rec len n = if n = 0 then 0 else 1 + len (n - 1);;")
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Types["len"].String(); got != "int -> int" {
		t.Fatalf("len : %q", got)
	}
}

func TestNonRecLetStillNotSelfVisible(t *testing.T) {
	prog, err := parser.Parse("let f n = f n;;")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := types.Check(prog); err == nil ||
		!strings.Contains(err.Error(), "unbound identifier") {
		t.Fatalf("err = %v", err)
	}
}

func TestRecursionRejectedAtExpansion(t *testing.T) {
	// Expansion (the parallel path) cannot inline unbounded recursion.
	src := "let rec loopy n = loopy n;;\nlet main = loopy 1;;"
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := types.Check(prog); err != nil {
		t.Fatal(err)
	}
	// Checked at the façade level via StubRegistry-free compile path in
	// the expand package; here just ensure the emulator also detects the
	// infinite loop is *not* run (we don't run main through eval).
	_ = prog
}

func TestRunawayRecursionCaught(t *testing.T) {
	prog, err := parser.Parse("let rec spin n = spin (n + 1);;\nlet main = spin 0;;")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := types.Check(prog); err != nil {
		t.Fatal(err)
	}
	_, err = New(value.NewRegistry(), Options{}).Run(prog)
	if err == nil || !strings.Contains(err.Error(), "call depth exceeded") {
		t.Fatalf("err = %v", err)
	}
}

func TestClosureShowsAsFun(t *testing.T) {
	out := run(t, value.NewRegistry(), Options{}, "let f x = x;;")
	if value.Show(out["f"]) != "<fun>" {
		t.Fatalf("Show = %q", value.Show(out["f"]))
	}
}

func TestSequencingEvaluatesInOrder(t *testing.T) {
	var order []int
	reg := value.NewRegistry()
	reg.Register(&value.Func{Name: "emit1", Sig: "int -> unit", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			order = append(order, a[0].(int))
			return value.Unit{}
		}})
	run(t, reg, Options{}, `
extern emit1 : int -> unit;;
let main = emit1 1; emit1 2; emit1 3;;
`)
	if len(order) != 3 || order[0] != 1 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}
