package eval

import (
	"strings"
	"testing"

	"skipper/internal/dsl/ast"
	"skipper/internal/dsl/parser"
	"skipper/internal/dsl/types"
	"skipper/internal/value"
)

// run parses, type-checks and emulates src, returning top-level bindings.
func run(t *testing.T, reg *value.Registry, opts Options, src string) map[string]value.Value {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := types.Check(prog); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	out, err := New(reg, opts).Run(prog)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out
}

func TestLiteralBindings(t *testing.T) {
	out := run(t, value.NewRegistry(), Options{}, `
let a = 41 + 1;;
let b = (1, true);;
let c = [1; 2; 3];;
let d = "str";;
`)
	if out["a"] != 42 {
		t.Fatalf("a = %v", out["a"])
	}
	if tp := out["b"].(value.Tuple); tp[0] != 1 || tp[1] != true {
		t.Fatalf("b = %v", out["b"])
	}
	if l := out["c"].(value.List); len(l) != 3 || l[2] != 3 {
		t.Fatalf("c = %v", out["c"])
	}
	if out["d"] != "str" {
		t.Fatalf("d = %v", out["d"])
	}
}

func TestArithmetic(t *testing.T) {
	out := run(t, value.NewRegistry(), Options{}, `
let a = 2 * 3 + 10 / 2 - 1;;
let b = -4;;
`)
	if out["a"] != 10 {
		t.Fatalf("a = %v", out["a"])
	}
	if out["b"] != -4 {
		t.Fatalf("b = %v", out["b"])
	}
}

func TestDivisionByZero(t *testing.T) {
	prog, _ := parser.Parse("let a = 1 / 0;;")
	_, err := New(value.NewRegistry(), Options{}).Run(prog)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestComparisons(t *testing.T) {
	out := run(t, value.NewRegistry(), Options{}, `
let a = 1 < 2;;
let b = 2 <= 1;;
let c = (1, 2) = (1, 2);;
let d = [1] <> [2];;
let e = "a" < "b";;
`)
	for n, want := range map[string]bool{"a": true, "b": false, "c": true, "d": true, "e": true} {
		if out[n] != want {
			t.Errorf("%s = %v, want %v", n, out[n], want)
		}
	}
}

func TestClosuresAndCurrying(t *testing.T) {
	out := run(t, value.NewRegistry(), Options{}, `
let add x y = x + y;;
let inc = add 1;;
let a = inc 41;;
`)
	if out["a"] != 42 {
		t.Fatalf("a = %v", out["a"])
	}
}

func TestLexicalScope(t *testing.T) {
	out := run(t, value.NewRegistry(), Options{}, `
let x = 10;;
let f y = x + y;;
let x = 999;;
let a = f 1;;
`)
	// f captured the first x.
	if out["a"] != 11 {
		t.Fatalf("a = %v", out["a"])
	}
}

func TestLetInAndTuplePattern(t *testing.T) {
	out := run(t, value.NewRegistry(), Options{}, `
let a = let (x, y) = (3, 4) in x * y;;
let b = let f n = n + 1 in f 41;;
`)
	if out["a"] != 12 || out["b"] != 42 {
		t.Fatalf("a=%v b=%v", out["a"], out["b"])
	}
}

func TestIfEvaluatesOneBranch(t *testing.T) {
	// The untaken branch would divide by zero.
	out := run(t, value.NewRegistry(), Options{}, `
let a = if true then 1 else 1 / 0;;
`)
	if out["a"] != 1 {
		t.Fatalf("a = %v", out["a"])
	}
}

func TestMapFold(t *testing.T) {
	out := run(t, value.NewRegistry(), Options{}, `
let xs = [1; 2; 3; 4];;
let doubled = map (fun x -> 2 * x) xs;;
let total = fold_left (fun a b -> a + b) 0 doubled;;
`)
	if out["total"] != 20 {
		t.Fatalf("total = %v", out["total"])
	}
}

func TestSCMDeclarative(t *testing.T) {
	reg := value.NewRegistry()
	reg.Register(&value.Func{
		Name: "split3", Sig: "int -> int list", Arity: 1,
		Fn: func(args []value.Value) value.Value {
			n := args[0].(int)
			return value.List{n, n + 1, n + 2}
		},
	})
	out := run(t, reg, Options{}, `
extern split3 : int -> int list;;
let r = scm 4 split3 (fun x -> x * x) (fold_left (fun a b -> a + b) 0) 10;;
`)
	if out["r"] != 100+121+144 {
		t.Fatalf("r = %v", out["r"])
	}
}

func TestDFDeclarative(t *testing.T) {
	out := run(t, value.NewRegistry(), Options{}, `
let r = df 8 (fun x -> x + 1) (fun a b -> a + b) 0 [10; 20; 30];;
`)
	if out["r"] != 63 {
		t.Fatalf("r = %v", out["r"])
	}
}

func TestTFDeclarative(t *testing.T) {
	// Split ranges (lo, hi) until small, then emit hi - lo.
	out := run(t, value.NewRegistry(), Options{}, `
let work r =
  let (lo, hi) = r in
  if hi - lo <= 2 then ([hi - lo], [])
  else ([], [(lo, lo + (hi - lo) / 2); (lo + (hi - lo) / 2, hi)]);;
let r = tf 4 work (fun a b -> a + b) 0 [(0, 10)];;
`)
	if out["r"] != 10 {
		t.Fatalf("r = %v", out["r"])
	}
}

func TestItermemThreadsMemory(t *testing.T) {
	reg := value.NewRegistry()
	var outputs []value.Value
	frame := 0
	reg.Register(&value.Func{
		Name: "next", Sig: "unit -> int", Arity: 1,
		Fn: func([]value.Value) value.Value { frame++; return frame },
	})
	reg.Register(&value.Func{
		Name: "emit", Sig: "int -> unit", Arity: 1,
		Fn: func(args []value.Value) value.Value {
			outputs = append(outputs, args[0])
			return value.Unit{}
		},
	})
	run(t, reg, Options{MaxIters: 4}, `
extern next : unit -> int;;
extern emit : int -> unit;;
let loop (z, b) = (z + b, z + b);;
let main = itermem next loop emit 0 ();;
`)
	// inputs 1,2,3,4; cumulative sums 1,3,6,10.
	want := []int{1, 3, 6, 10}
	if len(outputs) != 4 {
		t.Fatalf("outputs = %v", outputs)
	}
	for i, w := range want {
		if outputs[i] != w {
			t.Fatalf("outputs = %v", outputs)
		}
	}
}

func TestItermemTraceCallback(t *testing.T) {
	reg := value.NewRegistry()
	reg.Register(&value.Func{Name: "id", Sig: "int -> int", Arity: 1,
		Fn: func(a []value.Value) value.Value { return a[0] }})
	reg.Register(&value.Func{Name: "sink", Sig: "int -> unit", Arity: 1,
		Fn: func([]value.Value) value.Value { return value.Unit{} }})
	traced := 0
	run(t, reg, Options{MaxIters: 3, Trace: func(int, value.Value) { traced++ }}, `
extern id : int -> int;;
extern sink : int -> unit;;
let main = itermem id (fun p -> let (z, b) = p in (z, b)) sink 0 7;;
`)
	if traced != 3 {
		t.Fatalf("traced %d iterations", traced)
	}
}

func TestExternConstantAndPartialApplication(t *testing.T) {
	reg := value.NewRegistry()
	reg.Register(&value.Func{Name: "zero", Sig: "int", Arity: 0,
		Fn: func([]value.Value) value.Value { return 0 }})
	reg.Register(&value.Func{Name: "add3", Sig: "int -> int -> int -> int", Arity: 3,
		Fn: func(a []value.Value) value.Value {
			return a[0].(int) + a[1].(int) + a[2].(int)
		}})
	out := run(t, reg, Options{}, `
extern zero : int;;
extern add3 : int -> int -> int -> int;;
let f = add3 1 2;;
let a = f 39 + zero;;
`)
	if out["a"] != 42 {
		t.Fatalf("a = %v", out["a"])
	}
}

func TestMissingExternRegistration(t *testing.T) {
	prog, _ := parser.Parse("extern ghost : int -> int;;")
	_, err := New(value.NewRegistry(), Options{}).Run(prog)
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnboundIdentifierAtRuntime(t *testing.T) {
	// Bypass the type checker to exercise the interpreter's own guard.
	prog := &ast.Program{Decls: []ast.Decl{
		&ast.DLet{Name: "a", Rhs: &ast.Ident{Name: "ghost"}},
	}}
	_, err := New(value.NewRegistry(), Options{}).Run(prog)
	if err == nil || !strings.Contains(err.Error(), "unbound identifier") {
		t.Fatalf("err = %v", err)
	}
}

func TestApplyNonFunction(t *testing.T) {
	prog := &ast.Program{Decls: []ast.Decl{
		&ast.DLet{Name: "a", Rhs: &ast.App{
			Fn:  &ast.IntLit{Value: 3},
			Arg: &ast.IntLit{Value: 4},
		}},
	}}
	_, err := New(value.NewRegistry(), Options{}).Run(prog)
	if err == nil || !strings.Contains(err.Error(), "non-function") {
		t.Fatalf("err = %v", err)
	}
}

func TestEvalExpr(t *testing.T) {
	prog, err := parser.Parse("let twice x = 2 * x;;")
	if err != nil {
		t.Fatal(err)
	}
	em := New(value.NewRegistry(), Options{})
	v, err := em.EvalExpr(prog, &ast.App{
		Fn:  &ast.Ident{Name: "twice"},
		Arg: &ast.IntLit{Value: 21},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("v = %v", v)
	}
}

func TestShowValues(t *testing.T) {
	if got := value.Show(value.Tuple{1, value.List{true, false}, value.Unit{}}); got != "(1, [true; false], ())" {
		t.Fatalf("Show = %q", got)
	}
}

func TestCompareAllTypesAndErrors(t *testing.T) {
	out := run(t, value.NewRegistry(), Options{}, `
let a = 2.5 < 3.0;;
let b = 3.0 >= 3.0;;
let c = "abc" > "abd";;
let d = 1 <= 1;;
`)
	if out["a"] != true || out["b"] != true || out["c"] != false || out["d"] != true {
		t.Fatalf("out = %v", out)
	}
	// Mixed comparisons are runtime errors (bypassing the typechecker).
	em := New(value.NewRegistry(), Options{})
	mixed := &ast.Program{Decls: []ast.Decl{
		&ast.DLet{Name: "x", Rhs: &ast.BinOp{Op: "<",
			L: &ast.IntLit{Value: 1}, R: &ast.FloatLit{Value: 2.0}}},
	}}
	if _, err := em.Run(mixed); err == nil {
		t.Fatal("int<float comparison should fail at runtime")
	}
	unordered := &ast.Program{Decls: []ast.Decl{
		&ast.DLet{Name: "x", Rhs: &ast.BinOp{Op: ">",
			L: &ast.BoolLit{Value: true}, R: &ast.BoolLit{Value: false}}},
	}}
	if _, err := em.Run(unordered); err == nil {
		t.Fatal("bool ordering should fail at runtime")
	}
	floatMixed := &ast.Program{Decls: []ast.Decl{
		&ast.DLet{Name: "x", Rhs: &ast.BinOp{Op: "<=",
			L: &ast.FloatLit{Value: 1.0}, R: &ast.IntLit{Value: 2}}},
	}}
	if _, err := em.Run(floatMixed); err == nil {
		t.Fatal("float<=int should fail at runtime")
	}
	strMixed := &ast.Program{Decls: []ast.Decl{
		&ast.DLet{Name: "x", Rhs: &ast.BinOp{Op: ">=",
			L: &ast.StringLit{Value: "a"}, R: &ast.IntLit{Value: 2}}},
	}}
	if _, err := em.Run(strMixed); err == nil {
		t.Fatal("string>=int should fail at runtime")
	}
}

func TestEvalExprWithExternsAndErrors(t *testing.T) {
	reg := value.NewRegistry()
	reg.Register(&value.Func{Name: "ten", Sig: "int", Arity: 0,
		Fn: func([]value.Value) value.Value { return 10 }})
	reg.Register(&value.Func{Name: "inc", Sig: "int -> int", Arity: 1,
		Fn: func(a []value.Value) value.Value { return a[0].(int) + 1 }})
	prog, err := parser.Parse("extern ten : int;;\nextern inc : int -> int;;\nlet base = inc ten;;")
	if err != nil {
		t.Fatal(err)
	}
	em := New(reg, Options{})
	v, err := em.EvalExpr(prog, &ast.App{Fn: &ast.Ident{Name: "inc"}, Arg: &ast.Ident{Name: "base"}})
	if err != nil {
		t.Fatal(err)
	}
	if v != 12 {
		t.Fatalf("v = %v", v)
	}
	// Missing registration propagates through EvalExpr too.
	prog2, _ := parser.Parse("extern ghost : int;;")
	if _, err := em.EvalExpr(prog2, &ast.IntLit{Value: 1}); err == nil {
		t.Fatal("missing extern should fail")
	}
	// A failing declaration aborts EvalExpr.
	prog3, _ := parser.Parse("let boom = 1 / 0;;")
	if _, err := em.EvalExpr(prog3, &ast.IntLit{Value: 1}); err == nil {
		t.Fatal("failing decl should abort")
	}
}

func TestBindPatternMismatches(t *testing.T) {
	// Tuple pattern against a non-tuple (bypassing types).
	em := New(value.NewRegistry(), Options{})
	prog := &ast.Program{Decls: []ast.Decl{
		&ast.DLet{Name: "x", Rhs: &ast.Let{
			Pat: &ast.PTuple{Elems: []ast.Pattern{
				&ast.PVar{Name: "a"}, &ast.PVar{Name: "b"},
			}},
			Rhs:  &ast.IntLit{Value: 3},
			Body: &ast.IntLit{Value: 0},
		}},
	}}
	if _, err := em.Run(prog); err == nil {
		t.Fatal("tuple pattern against int should fail")
	}
	// Unit pattern binds nothing and succeeds.
	out := run(t, value.NewRegistry(), Options{}, "let f () = 9;;\nlet a = f ();;")
	if out["a"] != 9 {
		t.Fatalf("a = %v", out["a"])
	}
}

func TestStringersOnFunctionValues(t *testing.T) {
	reg := value.NewRegistry()
	reg.Register(&value.Func{Name: "two", Sig: "int -> int -> int", Arity: 2,
		Fn: func(a []value.Value) value.Value { return 0 }})
	out := run(t, reg, Options{}, `
extern two : int -> int -> int;;
let part = two 1;;
let lam = fun x -> x;;
`)
	if value.Show(out["part"]) != "<extern two>" {
		t.Fatalf("partial extern shows as %q", value.Show(out["part"]))
	}
	if value.Show(out["lam"]) != "<fun>" {
		t.Fatalf("lambda shows as %q", value.Show(out["lam"]))
	}
	out2 := run(t, value.NewRegistry(), Options{}, "let d = df;;")
	if value.Show(out2["d"]) != "<df>" {
		t.Fatalf("builtin shows as %q", value.Show(out2["d"]))
	}
}
