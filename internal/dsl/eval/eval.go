// Package eval is the sequential emulator of SKiPPER (the right-hand path
// of paper Fig. 2): it interprets a type-checked specification directly
// against the skeletons' declarative definitions, calling the registered Go
// user functions. "This gives the programmer the opportunity to sequentially
// emulate a parallel program on traditional stock hardware before trying it
// out on a dedicated parallel target" (paper §2).
package eval

import (
	"fmt"

	"skipper/internal/dsl/ast"
	"skipper/internal/dsl/token"
	"skipper/internal/value"
)

// Error is a runtime error raised during emulation.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: runtime error: %s", e.Pos, e.Msg) }

// Options tunes the emulation.
type Options struct {
	// MaxIters bounds itermem iterations (the paper's loop is infinite, fed
	// by a camera; emulation needs a horizon). Zero means 1.
	MaxIters int
	// Trace, when non-nil, receives one line per itermem iteration.
	Trace func(iter int, out value.Value)
}

// MaxCallDepth bounds the interpreter's call depth so runaway recursion in
// a specification surfaces as a runtime error instead of crashing the host.
const MaxCallDepth = 10_000

// Emulator interprets programs.
type Emulator struct {
	reg   *value.Registry
	opts  Options
	depth int
}

// New returns an emulator over the given registry of user functions.
func New(reg *value.Registry, opts Options) *Emulator {
	if opts.MaxIters <= 0 {
		opts.MaxIters = 1
	}
	return &Emulator{reg: reg, opts: opts}
}

// env is a lexically scoped value environment.
type env struct {
	parent *env
	vars   map[string]value.Value
}

func newEnv(parent *env) *env { return &env{parent: parent, vars: map[string]value.Value{}} }

func (e *env) lookup(name string) (value.Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// closure is a user lambda with its captured environment.
type closure struct {
	params []ast.Pattern
	body   ast.Expr
	env    *env
	ev     *Emulator
}

func (*closure) String() string { return "<fun>" }

// extern is a registered function, partially applied.
type extern struct {
	fn   *value.Func
	args []value.Value
}

func (e *extern) String() string { return "<extern " + e.fn.Name + ">" }

// builtin is a skeleton or higher-order builtin, partially applied.
type builtin struct {
	name  string
	arity int
	args  []value.Value
}

func (b *builtin) String() string { return "<" + b.name + ">" }

// Run evaluates every top-level binding in order and returns the final
// value environment (name -> value). Evaluating `main` drives itermem
// programs for Options.MaxIters iterations.
func (ev *Emulator) Run(prog *ast.Program) (map[string]value.Value, error) {
	genv := newEnv(nil)
	results := map[string]value.Value{}
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.DType:
			// Abstract types have no runtime content.
		case *ast.DExtern:
			f, ok := ev.reg.Lookup(d.Name)
			if !ok {
				return nil, &Error{Pos: d.Pos, Msg: "extern " + d.Name + " not registered"}
			}
			if f.Arity == 0 {
				genv.vars[d.Name] = f.Fn(nil)
			} else {
				genv.vars[d.Name] = &extern{fn: f}
			}
		case *ast.DLet:
			// Each top-level let opens a new scope, so closures made
			// earlier keep seeing the binding they captured even when a
			// later let shadows the name (Caml toplevel semantics). For
			// recursive bindings the rhs is evaluated inside the new frame
			// so the closure can resolve its own name.
			frame := genv
			if d.Rec && d.Name != "_" {
				frame = newEnv(genv)
			}
			v, err := ev.eval(frame, d.Rhs)
			if err != nil {
				return nil, err
			}
			if d.Name != "_" {
				if frame != genv {
					frame.vars[d.Name] = v
					genv = frame
				} else {
					genv = newEnv(genv)
					genv.vars[d.Name] = v
				}
				results[d.Name] = v
			}
		}
	}
	return results, nil
}

// EvalExpr evaluates a single expression in the context of a program's
// global bindings (used by tests and the REPL-style tooling).
func (ev *Emulator) EvalExpr(prog *ast.Program, e ast.Expr) (value.Value, error) {
	genv := newEnv(nil)
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.DExtern:
			f, ok := ev.reg.Lookup(d.Name)
			if !ok {
				return nil, &Error{Pos: d.Pos, Msg: "extern " + d.Name + " not registered"}
			}
			if f.Arity == 0 {
				genv.vars[d.Name] = f.Fn(nil)
			} else {
				genv.vars[d.Name] = &extern{fn: f}
			}
		case *ast.DLet:
			v, err := ev.eval(genv, d.Rhs)
			if err != nil {
				return nil, err
			}
			if d.Name != "_" {
				genv = newEnv(genv)
				genv.vars[d.Name] = v
			}
		}
	}
	return ev.eval(genv, e)
}

var builtinArity = map[string]int{
	"map":       2,
	"fold_left": 3,
	"scm":       5,
	"df":        5,
	"tf":        5,
	"itermem":   5,
}

func (ev *Emulator) eval(en *env, e ast.Expr) (value.Value, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, nil
	case *ast.FloatLit:
		return e.Value, nil
	case *ast.BoolLit:
		return e.Value, nil
	case *ast.StringLit:
		return e.Value, nil
	case *ast.UnitLit:
		return value.Unit{}, nil

	case *ast.Ident:
		if v, ok := en.lookup(e.Name); ok {
			return v, nil
		}
		if arity, ok := builtinArity[e.Name]; ok {
			return &builtin{name: e.Name, arity: arity}, nil
		}
		return nil, &Error{Pos: e.NamePos, Msg: "unbound identifier " + e.Name}

	case *ast.Tuple:
		out := make(value.Tuple, len(e.Elems))
		for i, el := range e.Elems {
			v, err := ev.eval(en, el)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil

	case *ast.ListLit:
		out := make(value.List, len(e.Elems))
		for i, el := range e.Elems {
			v, err := ev.eval(en, el)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil

	case *ast.Lambda:
		return &closure{params: e.Params, body: e.Body, env: en, ev: ev}, nil

	case *ast.Let:
		if e.Rec {
			// Recursive binding: evaluate the rhs in a frame where the
			// name resolves to the (eventually bound) closure. Closures
			// capture the frame by reference, so the knot ties itself.
			pv, ok := e.Pat.(*ast.PVar)
			if !ok {
				return nil, &Error{Pos: e.LetPos, Msg: "let rec requires a simple name"}
			}
			frame := newEnv(en)
			rhs, err := ev.eval(frame, e.Rhs)
			if err != nil {
				return nil, err
			}
			frame.vars[pv.Name] = rhs
			return ev.eval(frame, e.Body)
		}
		rhs, err := ev.eval(en, e.Rhs)
		if err != nil {
			return nil, err
		}
		inner := newEnv(en)
		if err := bindPattern(inner, e.Pat, rhs, e.LetPos); err != nil {
			return nil, err
		}
		return ev.eval(inner, e.Body)

	case *ast.If:
		c, err := ev.eval(en, e.Cond)
		if err != nil {
			return nil, err
		}
		b, ok := c.(bool)
		if !ok {
			return nil, &Error{Pos: e.Cond.Pos(), Msg: "if condition is not a bool"}
		}
		if b {
			return ev.eval(en, e.Then)
		}
		return ev.eval(en, e.Else)

	case *ast.BinOp:
		l, err := ev.eval(en, e.L)
		if err != nil {
			return nil, err
		}
		r, err := ev.eval(en, e.R)
		if err != nil {
			return nil, err
		}
		return ev.binop(e, l, r)

	case *ast.App:
		fn, err := ev.eval(en, e.Fn)
		if err != nil {
			return nil, err
		}
		arg, err := ev.eval(en, e.Arg)
		if err != nil {
			return nil, err
		}
		return ev.apply(fn, arg, e.Pos())
	}
	return nil, fmt.Errorf("eval: unknown expression %T", e)
}

func (ev *Emulator) binop(e *ast.BinOp, l, r value.Value) (value.Value, error) {
	switch e.Op {
	case "+.", "-.", "*.", "/.":
		lf, lok := l.(float64)
		rf, rok := r.(float64)
		if !lok || !rok {
			return nil, &Error{Pos: e.Pos(), Msg: "float arithmetic on non-float"}
		}
		switch e.Op {
		case "+.":
			return lf + rf, nil
		case "-.":
			return lf - rf, nil
		case "*.":
			return lf * rf, nil
		default:
			return lf / rf, nil
		}
	case "+", "-", "*", "/":
		li, lok := l.(int)
		ri, rok := r.(int)
		if !lok || !rok {
			return nil, &Error{Pos: e.Pos(), Msg: "arithmetic on non-int"}
		}
		switch e.Op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		default:
			if ri == 0 {
				return nil, &Error{Pos: e.Pos(), Msg: "division by zero"}
			}
			return li / ri, nil
		}
	case "=":
		return value.Equal(l, r), nil
	case "<>":
		return !value.Equal(l, r), nil
	case "<", ">", "<=", ">=":
		cmp, err := compare(l, r)
		if err != nil {
			return nil, &Error{Pos: e.Pos(), Msg: err.Error()}
		}
		switch e.Op {
		case "<":
			return cmp < 0, nil
		case ">":
			return cmp > 0, nil
		case "<=":
			return cmp <= 0, nil
		default:
			return cmp >= 0, nil
		}
	}
	return nil, &Error{Pos: e.Pos(), Msg: "unknown operator " + e.Op}
}

func compare(l, r value.Value) (int, error) {
	switch lv := l.(type) {
	case int:
		rv, ok := r.(int)
		if !ok {
			return 0, fmt.Errorf("comparison of int with %T", r)
		}
		switch {
		case lv < rv:
			return -1, nil
		case lv > rv:
			return 1, nil
		}
		return 0, nil
	case float64:
		rv, ok := r.(float64)
		if !ok {
			return 0, fmt.Errorf("comparison of float with %T", r)
		}
		switch {
		case lv < rv:
			return -1, nil
		case lv > rv:
			return 1, nil
		}
		return 0, nil
	case string:
		rv, ok := r.(string)
		if !ok {
			return 0, fmt.Errorf("comparison of string with %T", r)
		}
		switch {
		case lv < rv:
			return -1, nil
		case lv > rv:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("values of type %T are not ordered", l)
}

// apply applies a function value to one argument (curried application).
func (ev *Emulator) apply(fn, arg value.Value, pos token.Pos) (value.Value, error) {
	switch fn := fn.(type) {
	case *closure:
		ev.depth++
		defer func() { ev.depth-- }()
		if ev.depth > MaxCallDepth {
			return nil, &Error{Pos: pos,
				Msg: "call depth exceeded (runaway recursion in the specification?)"}
		}
		inner := newEnv(fn.env)
		if err := bindPattern(inner, fn.params[0], arg, pos); err != nil {
			return nil, err
		}
		if len(fn.params) == 1 {
			return ev.eval(inner, fn.body)
		}
		return &closure{params: fn.params[1:], body: fn.body, env: inner, ev: ev}, nil

	case *extern:
		args := append(append([]value.Value{}, fn.args...), arg)
		if len(args) == fn.fn.Arity {
			return fn.fn.Fn(args), nil
		}
		return &extern{fn: fn.fn, args: args}, nil

	case *builtin:
		args := append(append([]value.Value{}, fn.args...), arg)
		if len(args) == fn.arity {
			return ev.applyBuiltin(fn.name, args, pos)
		}
		return &builtin{name: fn.name, arity: fn.arity, args: args}, nil
	}
	return nil, &Error{Pos: pos, Msg: fmt.Sprintf("cannot apply non-function value %s", value.Show(fn))}
}

// applyBuiltin executes a fully applied builtin using the declarative
// skeleton semantics of paper §2.
func (ev *Emulator) applyBuiltin(name string, args []value.Value, pos token.Pos) (value.Value, error) {
	call := func(f value.Value, xs ...value.Value) (value.Value, error) {
		cur := f
		for _, x := range xs {
			v, err := ev.apply(cur, x, pos)
			if err != nil {
				return nil, err
			}
			cur = v
		}
		return cur, nil
	}
	asList := func(v value.Value, what string) (value.List, error) {
		l, ok := v.(value.List)
		if !ok {
			return nil, &Error{Pos: pos, Msg: what + " is not a list"}
		}
		return l, nil
	}

	switch name {
	case "map": // map f xs
		xs, err := asList(args[1], "map argument")
		if err != nil {
			return nil, err
		}
		out := make(value.List, len(xs))
		for i, x := range xs {
			v, err := call(args[0], x)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil

	case "fold_left": // fold_left f z xs
		xs, err := asList(args[2], "fold_left argument")
		if err != nil {
			return nil, err
		}
		accv := args[1]
		for _, x := range xs {
			v, err := call(args[0], accv, x)
			if err != nil {
				return nil, err
			}
			accv = v
		}
		return accv, nil

	case "scm": // scm n split comp merge x
		parts, err := call(args[1], args[4])
		if err != nil {
			return nil, err
		}
		lst, err := asList(parts, "scm split result")
		if err != nil {
			return nil, err
		}
		results := make(value.List, len(lst))
		for i, p := range lst {
			v, err := call(args[2], p)
			if err != nil {
				return nil, err
			}
			results[i] = v
		}
		return call(args[3], results)

	case "df": // df n comp acc z xs = fold_left acc z (map comp xs)
		xs, err := asList(args[4], "df input")
		if err != nil {
			return nil, err
		}
		accv := args[3]
		for _, x := range xs {
			y, err := call(args[1], x)
			if err != nil {
				return nil, err
			}
			accv, err = call(args[2], accv, y)
			if err != nil {
				return nil, err
			}
		}
		return accv, nil

	case "tf": // tf n work acc z xs — FIFO task queue
		xs, err := asList(args[4], "tf input")
		if err != nil {
			return nil, err
		}
		queue := append(value.List{}, xs...)
		accv := args[3]
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			res, err := call(args[1], x)
			if err != nil {
				return nil, err
			}
			pair, ok := res.(value.Tuple)
			if !ok || len(pair) != 2 {
				return nil, &Error{Pos: pos, Msg: "tf worker must return (results, new-tasks)"}
			}
			ys, err := asList(pair[0], "tf results")
			if err != nil {
				return nil, err
			}
			more, err := asList(pair[1], "tf new tasks")
			if err != nil {
				return nil, err
			}
			for _, y := range ys {
				accv, err = call(args[2], accv, y)
				if err != nil {
					return nil, err
				}
			}
			queue = append(queue, more...)
		}
		return accv, nil

	case "itermem": // itermem inp loop out z x
		z := args[3]
		for i := 0; i < ev.opts.MaxIters; i++ {
			b, err := call(args[0], args[4])
			if err != nil {
				return nil, err
			}
			res, err := call(args[1], value.Tuple{z, b})
			if err != nil {
				return nil, err
			}
			pair, ok := res.(value.Tuple)
			if !ok || len(pair) != 2 {
				return nil, &Error{Pos: pos, Msg: "itermem loop must return (state, output)"}
			}
			z = pair[0]
			if _, err := call(args[2], pair[1]); err != nil {
				return nil, err
			}
			if ev.opts.Trace != nil {
				ev.opts.Trace(i, pair[1])
			}
		}
		return value.Unit{}, nil
	}
	return nil, &Error{Pos: pos, Msg: "unknown builtin " + name}
}

// bindPattern destructures v against p, extending en.
func bindPattern(en *env, p ast.Pattern, v value.Value, pos token.Pos) error {
	switch p := p.(type) {
	case *ast.PVar:
		en.vars[p.Name] = v
		return nil
	case *ast.PWild:
		return nil
	case *ast.PUnit:
		return nil
	case *ast.PTuple:
		tv, ok := v.(value.Tuple)
		if !ok || len(tv) != len(p.Elems) {
			return &Error{Pos: pos, Msg: "tuple pattern mismatch against " + value.Show(v)}
		}
		for i, sub := range p.Elems {
			if err := bindPattern(en, sub, tv[i], pos); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown pattern %T", p)
}
