// Package golden runs the specification-language conformance corpus:
// every testdata/*.skl file declares its expectations in header comments —
//
//	(* EXPECT-TYPE name : type *)   the binding must infer to exactly this
//	(* EXPECT-ERROR substring *)    checking must fail mentioning this
//
// and the driver verifies them. The corpus doubles as living documentation
// of the language accepted by the compiler.
package golden

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"skipper/internal/dsl/parser"
	"skipper/internal/dsl/types"
)

type expectation struct {
	kind string // "type" or "error"
	name string // binding name for "type"
	want string // type string or error substring
}

// parseExpectations extracts EXPECT- directives from comment headers.
func parseExpectations(src string) []expectation {
	var out []expectation
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "(*") {
			continue
		}
		body := strings.TrimSuffix(strings.TrimPrefix(line, "(*"), "*)")
		body = strings.TrimSpace(body)
		switch {
		case strings.HasPrefix(body, "EXPECT-TYPE "):
			rest := strings.TrimPrefix(body, "EXPECT-TYPE ")
			name, ty, ok := strings.Cut(rest, ":")
			if !ok {
				continue
			}
			out = append(out, expectation{
				kind: "type",
				name: strings.TrimSpace(name),
				want: strings.TrimSpace(ty),
			})
		case strings.HasPrefix(body, "EXPECT-ERROR "):
			out = append(out, expectation{
				kind: "error",
				want: strings.TrimSpace(strings.TrimPrefix(body, "EXPECT-ERROR ")),
			})
		}
	}
	return out
}

func TestGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob("testdata/*.skl")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("corpus too small: %d files", len(files))
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			raw, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			src := string(raw)
			exps := parseExpectations(src)
			if len(exps) == 0 {
				t.Fatalf("%s declares no expectations", file)
			}

			prog, perr := parser.Parse(src)
			var info *types.Info
			var cerr error
			if perr == nil {
				info, cerr = types.Check(prog)
			}
			failure := perr
			if failure == nil {
				failure = cerr
			}

			for _, e := range exps {
				switch e.kind {
				case "error":
					if failure == nil {
						t.Fatalf("expected failure mentioning %q, but program checked", e.want)
					}
					if !strings.Contains(failure.Error(), e.want) {
						t.Fatalf("failure %q does not mention %q", failure, e.want)
					}
				case "type":
					if failure != nil {
						t.Fatalf("unexpected failure: %v", failure)
					}
					sch, ok := info.Types[e.name]
					if !ok {
						t.Fatalf("no binding %q", e.name)
					}
					if got := sch.String(); got != e.want {
						t.Fatalf("%s : %q, want %q", e.name, got, e.want)
					}
				}
			}
		})
	}
}

// TestCorpusPrettyPrintStable: every valid corpus program survives a
// print/reparse/print round trip.
func TestCorpusPrettyPrintStable(t *testing.T) {
	files, _ := filepath.Glob("testdata/*.skl")
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := parser.Parse(string(raw))
		if err != nil {
			continue // error-corpus entries
		}
		printed := prog.String()
		prog2, err := parser.Parse(printed)
		if err != nil {
			t.Fatalf("%s: pretty output does not reparse: %v", file, err)
		}
		if prog2.String() != printed {
			t.Fatalf("%s: printer unstable", file)
		}
	}
}
