// Package ast defines the abstract syntax tree of the SKiPPER specification
// language: expressions, patterns, type expressions (for extern signatures)
// and top-level declarations.
package ast

import (
	"fmt"
	"strings"

	"skipper/internal/dsl/token"
)

// Expr is any expression node.
type Expr interface {
	Pos() token.Pos
	String() string
	exprNode()
}

// Ident is a variable reference.
type Ident struct {
	Name    string
	NamePos token.Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Value   int
	ValPos  token.Pos
	Literal string
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Value   float64
	ValPos  token.Pos
	Literal string
}

// BoolLit is true or false.
type BoolLit struct {
	Value  bool
	ValPos token.Pos
}

// StringLit is a string literal.
type StringLit struct {
	Value  string
	ValPos token.Pos
}

// UnitLit is ().
type UnitLit struct {
	ValPos token.Pos
}

// Tuple is (e1, e2, ...) with at least two elements.
type Tuple struct {
	Elems  []Expr
	LParen token.Pos
}

// ListLit is [e1; e2; ...] (possibly empty).
type ListLit struct {
	Elems    []Expr
	LBracket token.Pos
}

// App is curried function application: Fn Arg.
type App struct {
	Fn  Expr
	Arg Expr
}

// Lambda is fun p1 p2 ... -> body.
type Lambda struct {
	Params []Pattern
	Body   Expr
	FunPos token.Pos
}

// Let is let [rec] pat = rhs in body.
type Let struct {
	Pat    Pattern
	Rhs    Expr
	Body   Expr
	LetPos token.Pos
	// Rec marks a recursive binding: Pat's name is visible inside Rhs.
	Rec bool
}

// If is if cond then a else b.
type If struct {
	Cond, Then, Else Expr
	IfPos            token.Pos
}

// BinOp is a binary primitive: + - * / = <> < > <= >=.
type BinOp struct {
	Op   string
	L, R Expr
}

func (e *Ident) exprNode()     {}
func (e *IntLit) exprNode()    {}
func (e *FloatLit) exprNode()  {}
func (e *BoolLit) exprNode()   {}
func (e *StringLit) exprNode() {}
func (e *UnitLit) exprNode()   {}
func (e *Tuple) exprNode()     {}
func (e *ListLit) exprNode()   {}
func (e *App) exprNode()       {}
func (e *Lambda) exprNode()    {}
func (e *Let) exprNode()       {}
func (e *If) exprNode()        {}
func (e *BinOp) exprNode()     {}

func (e *Ident) Pos() token.Pos     { return e.NamePos }
func (e *IntLit) Pos() token.Pos    { return e.ValPos }
func (e *FloatLit) Pos() token.Pos  { return e.ValPos }
func (e *BoolLit) Pos() token.Pos   { return e.ValPos }
func (e *StringLit) Pos() token.Pos { return e.ValPos }
func (e *UnitLit) Pos() token.Pos   { return e.ValPos }
func (e *Tuple) Pos() token.Pos     { return e.LParen }
func (e *ListLit) Pos() token.Pos   { return e.LBracket }
func (e *App) Pos() token.Pos       { return e.Fn.Pos() }
func (e *Lambda) Pos() token.Pos    { return e.FunPos }
func (e *Let) Pos() token.Pos       { return e.LetPos }
func (e *If) Pos() token.Pos        { return e.IfPos }
func (e *BinOp) Pos() token.Pos     { return e.L.Pos() }

func (e *Ident) String() string     { return e.Name }
func (e *IntLit) String() string    { return e.Literal }
func (e *FloatLit) String() string  { return e.Literal }
func (e *BoolLit) String() string   { return fmt.Sprintf("%t", e.Value) }
func (e *StringLit) String() string { return fmt.Sprintf("%q", e.Value) }
func (e *UnitLit) String() string   { return "()" }

func (e *Tuple) String() string {
	parts := make([]string, len(e.Elems))
	for i, el := range e.Elems {
		parts[i] = el.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func (e *ListLit) String() string {
	parts := make([]string, len(e.Elems))
	for i, el := range e.Elems {
		parts[i] = el.String()
	}
	return "[" + strings.Join(parts, "; ") + "]"
}

func (e *App) String() string {
	arg := e.Arg.String()
	switch e.Arg.(type) {
	case *App, *Lambda, *Let, *If, *BinOp:
		arg = "(" + arg + ")"
	}
	return e.Fn.String() + " " + arg
}

func (e *Lambda) String() string {
	parts := make([]string, len(e.Params))
	for i, p := range e.Params {
		parts[i] = p.String()
	}
	return "fun " + strings.Join(parts, " ") + " -> " + e.Body.String()
}

func (e *Let) String() string {
	kw := "let "
	if e.Rec {
		kw = "let rec "
	}
	return kw + e.Pat.String() + " = " + e.Rhs.String() + " in " + e.Body.String()
}

func (e *If) String() string {
	return "if " + e.Cond.String() + " then " + e.Then.String() + " else " + e.Else.String()
}

func (e *BinOp) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}

// Pattern is a binding pattern.
type Pattern interface {
	String() string
	patNode()
}

// PVar binds a name.
type PVar struct {
	Name string
	Pos  token.Pos
}

// PTuple destructures a tuple.
type PTuple struct {
	Elems []Pattern
}

// PWild is the wildcard _.
type PWild struct {
	Pos token.Pos
}

// PUnit matches ().
type PUnit struct {
	Pos token.Pos
}

func (*PVar) patNode()   {}
func (*PTuple) patNode() {}
func (*PWild) patNode()  {}
func (*PUnit) patNode()  {}

func (p *PVar) String() string { return p.Name }
func (p *PTuple) String() string {
	parts := make([]string, len(p.Elems))
	for i, el := range p.Elems {
		parts[i] = el.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
func (p *PWild) String() string { return "_" }
func (p *PUnit) String() string { return "()" }

// TypeExpr is a surface-syntax type, used in extern declarations.
type TypeExpr interface {
	String() string
	typeNode()
}

// TEVar is a type variable 'a.
type TEVar struct {
	Name string // without the quote
}

// TECon is a (possibly parameterized, postfix) type constructor:
// int, img, 'a list, window list.
type TECon struct {
	Name string
	Args []TypeExpr
}

// TEArrow is t1 -> t2.
type TEArrow struct {
	From, To TypeExpr
}

// TETuple is t1 * t2 * ...
type TETuple struct {
	Elems []TypeExpr
}

func (*TEVar) typeNode()   {}
func (*TECon) typeNode()   {}
func (*TEArrow) typeNode() {}
func (*TETuple) typeNode() {}

func (t *TEVar) String() string { return "'" + t.Name }
func (t *TECon) String() string {
	if len(t.Args) == 0 {
		return t.Name
	}
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.String()
		switch a.(type) {
		case *TEArrow, *TETuple:
			parts[i] = "(" + parts[i] + ")"
		}
	}
	return strings.Join(parts, " ") + " " + t.Name
}
func (t *TEArrow) String() string {
	from := t.From.String()
	if _, ok := t.From.(*TEArrow); ok {
		from = "(" + from + ")"
	}
	return from + " -> " + t.To.String()
}
func (t *TETuple) String() string {
	parts := make([]string, len(t.Elems))
	for i, el := range t.Elems {
		parts[i] = el.String()
		switch el.(type) {
		case *TEArrow, *TETuple:
			parts[i] = "(" + parts[i] + ")"
		}
	}
	return strings.Join(parts, " * ")
}

// Decl is a top-level declaration.
type Decl interface {
	String() string
	declNode()
}

// DType declares an abstract type: type img;;
type DType struct {
	Name string
	Pos  token.Pos
}

// DExtern declares a user (Go-registered) function: extern f : t;;
type DExtern struct {
	Name string
	Sig  TypeExpr
	Pos  token.Pos
}

// DLet is a top-level binding: let [rec] name p1 p2 = e;; (params already
// desugared into a Lambda when present).
type DLet struct {
	Name string
	Rhs  Expr
	Pos  token.Pos
	// Rec marks a recursive binding.
	Rec bool
}

func (*DType) declNode()   {}
func (*DExtern) declNode() {}
func (*DLet) declNode()    {}

func (d *DType) String() string   { return "type " + d.Name + ";;" }
func (d *DExtern) String() string { return "extern " + d.Name + " : " + d.Sig.String() + ";;" }
func (d *DLet) String() string {
	kw := "let "
	if d.Rec {
		kw = "let rec "
	}
	return kw + d.Name + " = " + d.Rhs.String() + ";;"
}

// Program is a parsed source file.
type Program struct {
	Decls []Decl
}

func (p *Program) String() string {
	parts := make([]string, len(p.Decls))
	for i, d := range p.Decls {
		parts[i] = d.String()
	}
	return strings.Join(parts, "\n")
}
