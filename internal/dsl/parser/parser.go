// Package parser builds SKiPPER ASTs from token streams. The grammar is the
// Caml subset described in DESIGN.md §3: top-level type/extern/let
// declarations terminated by ";;", with let-in, fun, if, curried
// application, tuples, lists and arithmetic/comparison operators.
package parser

import (
	"fmt"

	"skipper/internal/dsl/ast"
	"skipper/internal/dsl/lexer"
	"skipper/internal/dsl/token"
)

// Error is a syntax error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: syntax error: %s", e.Pos, e.Msg) }

type parser struct {
	toks []token.Token
	pos  int
}

// Parse tokenizes and parses a complete source file.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.program()
}

// ParseTypeExpr parses a standalone type expression (used by the registry to
// declare extern signatures programmatically).
func ParseTypeExpr(src string) (ast.TypeExpr, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	t, err := p.typeExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != token.EOF {
		return nil, p.errf("trailing input after type: %s", p.peek())
	}
	return t, nil
}

func (p *parser) peek() token.Token { return p.toks[p.pos] }
func (p *parser) peek2() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.peek().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return token.Token{}, p.errf("expected %s, found %s", k, p.peek())
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Pos: p.peek().Pos, Msg: fmt.Sprintf(format, args...)}
}

// --- declarations -----------------------------------------------------------

func (p *parser) program() (*ast.Program, error) {
	prog := &ast.Program{}
	for !p.at(token.EOF) {
		d, err := p.decl()
		if err != nil {
			return nil, err
		}
		prog.Decls = append(prog.Decls, d)
	}
	return prog, nil
}

func (p *parser) decl() (ast.Decl, error) {
	switch p.peek().Kind {
	case token.TYPE:
		pos := p.next().Pos
		name, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.SEMISEMI); err != nil {
			return nil, err
		}
		return &ast.DType{Name: name.Text, Pos: pos}, nil

	case token.EXTERN:
		pos := p.next().Pos
		name, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.COLON); err != nil {
			return nil, err
		}
		sig, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.SEMISEMI); err != nil {
			return nil, err
		}
		return &ast.DExtern{Name: name.Text, Sig: sig, Pos: pos}, nil

	case token.LET:
		pos := p.next().Pos
		rec := p.accept(token.REC)
		var name string
		switch p.peek().Kind {
		case token.IDENT:
			name = p.next().Text
		case token.UNDERSCOR:
			p.next()
			name = "_"
		default:
			return nil, p.errf("expected binding name, found %s", p.peek())
		}
		params, err := p.patternsUntil(token.EQ)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.EQ); err != nil {
			return nil, err
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.SEMISEMI); err != nil {
			return nil, err
		}
		if len(params) > 0 {
			rhs = &ast.Lambda{Params: params, Body: rhs, FunPos: pos}
		}
		return &ast.DLet{Name: name, Rhs: rhs, Pos: pos, Rec: rec}, nil
	}
	return nil, p.errf("expected declaration, found %s", p.peek())
}

// --- patterns ----------------------------------------------------------------

func (p *parser) patternsUntil(stop token.Kind) ([]ast.Pattern, error) {
	var out []ast.Pattern
	for !p.at(stop) && !p.at(token.ARROW) {
		pat, err := p.pattern()
		if err != nil {
			return nil, err
		}
		out = append(out, pat)
	}
	return out, nil
}

func (p *parser) pattern() (ast.Pattern, error) {
	switch p.peek().Kind {
	case token.IDENT:
		t := p.next()
		return &ast.PVar{Name: t.Text, Pos: t.Pos}, nil
	case token.UNDERSCOR:
		t := p.next()
		return &ast.PWild{Pos: t.Pos}, nil
	case token.LPAREN:
		t := p.next()
		if p.accept(token.RPAREN) {
			return &ast.PUnit{Pos: t.Pos}, nil
		}
		first, err := p.pattern()
		if err != nil {
			return nil, err
		}
		if p.accept(token.RPAREN) {
			return first, nil
		}
		elems := []ast.Pattern{first}
		for p.accept(token.COMMA) {
			e, err := p.pattern()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		return &ast.PTuple{Elems: elems}, nil
	}
	return nil, p.errf("expected pattern, found %s", p.peek())
}

// --- expressions --------------------------------------------------------------

// expr parses a sequence expression: e1 ; e2 ; … desugars to
// let _ = e1 in e2 (Caml sequencing, used by the paper's itermem
// definition: "out y; f z'"). List literals parse their elements with
// exprNoSeq, where ';' is the element separator instead.
func (p *parser) expr() (ast.Expr, error) {
	first, err := p.exprNoSeq()
	if err != nil {
		return nil, err
	}
	if !p.at(token.SEMI) {
		return first, nil
	}
	pos := p.peek().Pos
	p.next() // ';'
	rest, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &ast.Let{
		Pat:    &ast.PWild{Pos: pos},
		Rhs:    first,
		Body:   rest,
		LetPos: pos,
	}, nil
}

func (p *parser) exprNoSeq() (ast.Expr, error) {
	switch p.peek().Kind {
	case token.LET:
		pos := p.next().Pos
		rec := p.accept(token.REC)
		// let [rec] <pattern> <params>* = rhs in body
		head, err := p.pattern()
		if err != nil {
			return nil, err
		}
		params, err := p.patternsUntil(token.EQ)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.EQ); err != nil {
			return nil, err
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.IN); err != nil {
			return nil, err
		}
		body, err := p.expr()
		if err != nil {
			return nil, err
		}
		if len(params) > 0 {
			if _, ok := head.(*ast.PVar); !ok {
				return nil, &Error{Pos: pos, Msg: "function binding requires a simple name"}
			}
			rhs = &ast.Lambda{Params: params, Body: rhs, FunPos: pos}
		}
		if rec {
			if _, ok := head.(*ast.PVar); !ok {
				return nil, &Error{Pos: pos, Msg: "let rec requires a simple name"}
			}
		}
		return &ast.Let{Pat: head, Rhs: rhs, Body: body, LetPos: pos, Rec: rec}, nil

	case token.FUN:
		pos := p.next().Pos
		params, err := p.patternsUntil(token.ARROW)
		if err != nil {
			return nil, err
		}
		if len(params) == 0 {
			return nil, p.errf("fun requires at least one parameter")
		}
		if _, err := p.expect(token.ARROW); err != nil {
			return nil, err
		}
		body, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ast.Lambda{Params: params, Body: body, FunPos: pos}, nil

	case token.IF:
		pos := p.next().Pos
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.THEN); err != nil {
			return nil, err
		}
		thn, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.ELSE); err != nil {
			return nil, err
		}
		els, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ast.If{Cond: cond, Then: thn, Else: els, IfPos: pos}, nil
	}
	return p.cmp()
}

func (p *parser) cmp() (ast.Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	switch p.peek().Kind {
	case token.EQ, token.NE, token.LT, token.GT, token.LE, token.GE:
		op := p.next().Text
		r, err := p.additive()
		if err != nil {
			return nil, err
		}
		return &ast.BinOp{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) additive() (ast.Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(token.PLUS) || p.at(token.MINUS) || p.at(token.PLUSDOT) || p.at(token.MINUSDOT) {
		op := p.next().Text
		r, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		l = &ast.BinOp{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) multiplicative() (ast.Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.at(token.STAR) || p.at(token.SLASH) || p.at(token.STARDOT) || p.at(token.SLASHDOT) {
		op := p.next().Text
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &ast.BinOp{Op: op, L: l, R: r}
	}
	return l, nil
}

// unary parses an optional prefix minus (desugared to 0 - e, so the rest of
// the pipeline only sees binary operators).
func (p *parser) unary() (ast.Expr, error) {
	if p.at(token.MINUS) {
		pos := p.next().Pos
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &ast.BinOp{Op: "-", L: &ast.IntLit{Value: 0, ValPos: pos, Literal: "0"}, R: r}, nil
	}
	return p.application()
}

func (p *parser) application() (ast.Expr, error) {
	fn, err := p.atom()
	if err != nil {
		return nil, err
	}
	for p.atomStart() {
		arg, err := p.atom()
		if err != nil {
			return nil, err
		}
		fn = &ast.App{Fn: fn, Arg: arg}
	}
	return fn, nil
}

func (p *parser) atomStart() bool {
	switch p.peek().Kind {
	case token.IDENT, token.INT, token.FLOAT, token.STRING,
		token.TRUE, token.FALSE, token.LPAREN, token.LBRACKET:
		return true
	}
	return false
}

func (p *parser) atom() (ast.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case token.IDENT:
		p.next()
		return &ast.Ident{Name: t.Text, NamePos: t.Pos}, nil
	case token.INT:
		p.next()
		var v int
		if _, err := fmt.Sscanf(t.Text, "%d", &v); err != nil {
			return nil, &Error{Pos: t.Pos, Msg: "bad integer literal " + t.Text}
		}
		return &ast.IntLit{Value: v, ValPos: t.Pos, Literal: t.Text}, nil
	case token.FLOAT:
		p.next()
		var v float64
		if _, err := fmt.Sscanf(t.Text, "%g", &v); err != nil {
			return nil, &Error{Pos: t.Pos, Msg: "bad float literal " + t.Text}
		}
		return &ast.FloatLit{Value: v, ValPos: t.Pos, Literal: t.Text}, nil
	case token.STRING:
		p.next()
		return &ast.StringLit{Value: t.Text, ValPos: t.Pos}, nil
	case token.TRUE, token.FALSE:
		p.next()
		return &ast.BoolLit{Value: t.Kind == token.TRUE, ValPos: t.Pos}, nil
	case token.LPAREN:
		p.next()
		if p.accept(token.RPAREN) {
			return &ast.UnitLit{ValPos: t.Pos}, nil
		}
		first, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.accept(token.RPAREN) {
			return first, nil
		}
		elems := []ast.Expr{first}
		for p.accept(token.COMMA) {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		return &ast.Tuple{Elems: elems, LParen: t.Pos}, nil
	case token.LBRACKET:
		p.next()
		lst := &ast.ListLit{LBracket: t.Pos}
		if p.accept(token.RBRACKET) {
			return lst, nil
		}
		for {
			e, err := p.exprNoSeq()
			if err != nil {
				return nil, err
			}
			lst.Elems = append(lst.Elems, e)
			if !p.accept(token.SEMI) {
				break
			}
		}
		if _, err := p.expect(token.RBRACKET); err != nil {
			return nil, err
		}
		return lst, nil
	}
	return nil, p.errf("expected expression, found %s", t)
}

// --- type expressions ----------------------------------------------------------

// typeExpr := tuple ("->" typeExpr)?      (arrow is right associative)
func (p *parser) typeExpr() (ast.TypeExpr, error) {
	l, err := p.typeTuple()
	if err != nil {
		return nil, err
	}
	if p.accept(token.ARROW) {
		r, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		return &ast.TEArrow{From: l, To: r}, nil
	}
	return l, nil
}

// typeTuple := postfix ("*" postfix)*
func (p *parser) typeTuple() (ast.TypeExpr, error) {
	first, err := p.typePostfix()
	if err != nil {
		return nil, err
	}
	if !p.at(token.STAR) {
		return first, nil
	}
	elems := []ast.TypeExpr{first}
	for p.accept(token.STAR) {
		e, err := p.typePostfix()
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
	}
	return &ast.TETuple{Elems: elems}, nil
}

// typePostfix := atom IDENT*      ('a list, window list, 'a list list)
func (p *parser) typePostfix() (ast.TypeExpr, error) {
	t, err := p.typeAtom()
	if err != nil {
		return nil, err
	}
	for p.at(token.IDENT) {
		name := p.next().Text
		t = &ast.TECon{Name: name, Args: []ast.TypeExpr{t}}
	}
	return t, nil
}

func (p *parser) typeAtom() (ast.TypeExpr, error) {
	switch p.peek().Kind {
	case token.QUOTE:
		p.next()
		name, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		return &ast.TEVar{Name: name.Text}, nil
	case token.IDENT:
		return &ast.TECon{Name: p.next().Text}, nil
	case token.LPAREN:
		p.next()
		t, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		return t, nil
	}
	return nil, p.errf("expected type, found %s", p.peek())
}
