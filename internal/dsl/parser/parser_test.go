package parser

import (
	"strings"
	"testing"

	"skipper/internal/dsl/ast"
)

func parseOne(t *testing.T, src string) ast.Decl {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	if len(prog.Decls) != 1 {
		t.Fatalf("got %d decls", len(prog.Decls))
	}
	return prog.Decls[0]
}

func mustFail(t *testing.T, src string) {
	t.Helper()
	if _, err := Parse(src); err == nil {
		t.Fatalf("Parse(%q) should fail", src)
	}
}

func TestTypeDecl(t *testing.T) {
	d := parseOne(t, "type img;;").(*ast.DType)
	if d.Name != "img" {
		t.Fatalf("name = %q", d.Name)
	}
}

func TestExternDecl(t *testing.T) {
	d := parseOne(t, "extern f : int -> img list;;").(*ast.DExtern)
	if d.Name != "f" {
		t.Fatalf("name = %q", d.Name)
	}
	if got := d.Sig.String(); got != "int -> img list" {
		t.Fatalf("sig = %q", got)
	}
}

func TestExternTupleArrowPrecedence(t *testing.T) {
	d := parseOne(t, "extern predict : mark list -> mark list * state;;").(*ast.DExtern)
	arrow, ok := d.Sig.(*ast.TEArrow)
	if !ok {
		t.Fatalf("sig is %T", d.Sig)
	}
	if _, ok := arrow.To.(*ast.TETuple); !ok {
		t.Fatalf("result is %T, want tuple", arrow.To)
	}
}

func TestExternHigherOrderSig(t *testing.T) {
	d := parseOne(t, "extern apply : ('a -> 'b) -> 'a -> 'b;;").(*ast.DExtern)
	if got := d.Sig.String(); got != "('a -> 'b) -> 'a -> 'b" {
		t.Fatalf("sig = %q", got)
	}
}

func TestPostfixTypeConstructors(t *testing.T) {
	d := parseOne(t, "extern x : 'a list list;;").(*ast.DExtern)
	outer := d.Sig.(*ast.TECon)
	if outer.Name != "list" {
		t.Fatalf("outer %q", outer.Name)
	}
	inner := outer.Args[0].(*ast.TECon)
	if inner.Name != "list" {
		t.Fatalf("inner %q", inner.Name)
	}
	if _, ok := inner.Args[0].(*ast.TEVar); !ok {
		t.Fatalf("innermost %T", inner.Args[0])
	}
}

func TestSimpleLet(t *testing.T) {
	d := parseOne(t, "let nproc = 8;;").(*ast.DLet)
	if d.Name != "nproc" {
		t.Fatalf("name %q", d.Name)
	}
	if lit, ok := d.Rhs.(*ast.IntLit); !ok || lit.Value != 8 {
		t.Fatalf("rhs %v", d.Rhs)
	}
}

func TestFunctionLetDesugarsToLambda(t *testing.T) {
	d := parseOne(t, "let f x y = x;;").(*ast.DLet)
	lam, ok := d.Rhs.(*ast.Lambda)
	if !ok {
		t.Fatalf("rhs %T", d.Rhs)
	}
	if len(lam.Params) != 2 {
		t.Fatalf("%d params", len(lam.Params))
	}
}

func TestTuplePatternParam(t *testing.T) {
	d := parseOne(t, "let loop (state, im) = state;;").(*ast.DLet)
	lam := d.Rhs.(*ast.Lambda)
	pt, ok := lam.Params[0].(*ast.PTuple)
	if !ok || len(pt.Elems) != 2 {
		t.Fatalf("param %v", lam.Params[0])
	}
}

func TestApplicationLeftAssociative(t *testing.T) {
	d := parseOne(t, "let x = f a b c;;").(*ast.DLet)
	// ((f a) b) c
	app1 := d.Rhs.(*ast.App)
	app2 := app1.Fn.(*ast.App)
	app3 := app2.Fn.(*ast.App)
	if app3.Fn.(*ast.Ident).Name != "f" {
		t.Fatalf("innermost fn %v", app3.Fn)
	}
	if app1.Arg.(*ast.Ident).Name != "c" {
		t.Fatalf("outermost arg %v", app1.Arg)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	d := parseOne(t, "let x = 1 + 2 * 3;;").(*ast.DLet)
	add := d.Rhs.(*ast.BinOp)
	if add.Op != "+" {
		t.Fatalf("top op %q", add.Op)
	}
	mul := add.R.(*ast.BinOp)
	if mul.Op != "*" {
		t.Fatalf("inner op %q", mul.Op)
	}
}

func TestComparisonBindsLoosest(t *testing.T) {
	d := parseOne(t, "let x = a + 1 < b * 2;;").(*ast.DLet)
	cmp := d.Rhs.(*ast.BinOp)
	if cmp.Op != "<" {
		t.Fatalf("top op %q", cmp.Op)
	}
}

func TestUnaryMinus(t *testing.T) {
	d := parseOne(t, "let x = -3 + 1;;").(*ast.DLet)
	add := d.Rhs.(*ast.BinOp)
	if add.Op != "+" {
		t.Fatalf("top %q", add.Op)
	}
	neg := add.L.(*ast.BinOp)
	if neg.Op != "-" || neg.L.(*ast.IntLit).Value != 0 || neg.R.(*ast.IntLit).Value != 3 {
		t.Fatalf("neg %v", neg)
	}
}

func TestApplicationBindsTighterThanOps(t *testing.T) {
	d := parseOne(t, "let x = f a + g b;;").(*ast.DLet)
	add := d.Rhs.(*ast.BinOp)
	if _, ok := add.L.(*ast.App); !ok {
		t.Fatalf("left %T", add.L)
	}
	if _, ok := add.R.(*ast.App); !ok {
		t.Fatalf("right %T", add.R)
	}
}

func TestLetIn(t *testing.T) {
	d := parseOne(t, "let x = let y = 1 in y + y;;").(*ast.DLet)
	le := d.Rhs.(*ast.Let)
	if le.Pat.(*ast.PVar).Name != "y" {
		t.Fatalf("pat %v", le.Pat)
	}
}

func TestLetInWithTuplePattern(t *testing.T) {
	d := parseOne(t, "let x = let (a, b) = p in a;;").(*ast.DLet)
	le := d.Rhs.(*ast.Let)
	if _, ok := le.Pat.(*ast.PTuple); !ok {
		t.Fatalf("pat %T", le.Pat)
	}
}

func TestLocalFunctionLet(t *testing.T) {
	d := parseOne(t, "let x = let g n = n + 1 in g 4;;").(*ast.DLet)
	le := d.Rhs.(*ast.Let)
	if _, ok := le.Rhs.(*ast.Lambda); !ok {
		t.Fatalf("local fn rhs %T", le.Rhs)
	}
}

func TestFunExpression(t *testing.T) {
	d := parseOne(t, "let f = fun x y -> x;;").(*ast.DLet)
	lam := d.Rhs.(*ast.Lambda)
	if len(lam.Params) != 2 {
		t.Fatalf("params %d", len(lam.Params))
	}
}

func TestIfThenElse(t *testing.T) {
	d := parseOne(t, "let x = if a < b then 1 else 2;;").(*ast.DLet)
	ife := d.Rhs.(*ast.If)
	if _, ok := ife.Cond.(*ast.BinOp); !ok {
		t.Fatalf("cond %T", ife.Cond)
	}
}

func TestTupleExpr(t *testing.T) {
	d := parseOne(t, "let x = (1, 2.5, a);;").(*ast.DLet)
	tp := d.Rhs.(*ast.Tuple)
	if len(tp.Elems) != 3 {
		t.Fatalf("elems %d", len(tp.Elems))
	}
}

func TestParenNotTuple(t *testing.T) {
	d := parseOne(t, "let x = (1);;").(*ast.DLet)
	if _, ok := d.Rhs.(*ast.IntLit); !ok {
		t.Fatalf("rhs %T, want IntLit (no 1-tuple)", d.Rhs)
	}
}

func TestListLiterals(t *testing.T) {
	d := parseOne(t, "let x = [1; 2; 3];;").(*ast.DLet)
	lst := d.Rhs.(*ast.ListLit)
	if len(lst.Elems) != 3 {
		t.Fatalf("elems %d", len(lst.Elems))
	}
	d2 := parseOne(t, "let e = [];;").(*ast.DLet)
	if len(d2.Rhs.(*ast.ListLit).Elems) != 0 {
		t.Fatal("empty list not empty")
	}
}

func TestUnitLiteralAndWildcardLet(t *testing.T) {
	d := parseOne(t, "let _ = output ();;").(*ast.DLet)
	if d.Name != "_" {
		t.Fatalf("name %q", d.Name)
	}
	app := d.Rhs.(*ast.App)
	if _, ok := app.Arg.(*ast.UnitLit); !ok {
		t.Fatalf("arg %T", app.Arg)
	}
}

func TestPaperProgramParses(t *testing.T) {
	src := `
(* the vehicle tracking application, paper section 4 *)
type img;;
type state;;
type window;;
type mark;;
extern read_img : int * int -> img;;
extern init_state : unit -> state;;
extern get_windows : int -> state -> img -> window list;;
extern detect_mark : window -> mark;;
extern accum_marks : mark list -> mark -> mark list;;
extern predict : mark list -> state * mark list;;
extern display_marks : mark list -> unit;;
extern empty_list : mark list;;

let nproc = 8;;
let s0 = init_state ();;
let loop (state, im) =
  let ws = get_windows nproc state im in
  let marks = df nproc detect_mark accum_marks empty_list ws in
  predict marks;;
let main = itermem read_img loop display_marks s0 (512, 512);;
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Decls) != 16 {
		t.Fatalf("decls = %d, want 16", len(prog.Decls))
	}
	// Round-trip: printing and reparsing is stable.
	printed := prog.String()
	prog2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, printed)
	}
	if prog2.String() != printed {
		t.Fatal("pretty printer not idempotent")
	}
}

func TestErrorsCarryPosition(t *testing.T) {
	_, err := Parse("let x =\n  ;;")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error lacks line info: %v", err)
	}
}

func TestSyntaxErrors(t *testing.T) {
	for _, src := range []string{
		"let = 3;;",
		"let x = ;;",
		"type ;;",
		"extern f int;;",
		"let x = (1, 2;;",
		"let x = [1; ;;",
		"let x = if a then b;;",
		"let x = fun -> 1;;",
		"let x = let y = 1;;",    // missing in
		"let (a,b) c = a in b;;", // function with tuple head at expr level is inside decl
		"let x = 1",              // missing ;;
		"99;;",                   // not a declaration
	} {
		mustFail(t, src)
	}
}

func TestParseTypeExpr(t *testing.T) {
	te, err := ParseTypeExpr("int -> 'a list -> ('a * int) list")
	if err != nil {
		t.Fatal(err)
	}
	want := "int -> 'a list -> ('a * int) list"
	if te.String() != want {
		t.Fatalf("got %q", te.String())
	}
	if _, err := ParseTypeExpr("int -> ;;"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ParseTypeExpr("int int -> bool extra ("); err == nil {
		t.Fatal("expected trailing-input error")
	}
}

func TestSequencingDesugarsToLet(t *testing.T) {
	d := parseOne(t, "let f x = g x; h x;;").(*ast.DLet)
	lam := d.Rhs.(*ast.Lambda)
	seq, ok := lam.Body.(*ast.Let)
	if !ok {
		t.Fatalf("body %T, want desugared let", lam.Body)
	}
	if _, ok := seq.Pat.(*ast.PWild); !ok {
		t.Fatalf("pattern %T, want wildcard", seq.Pat)
	}
	if _, ok := seq.Rhs.(*ast.App); !ok {
		t.Fatalf("rhs %T", seq.Rhs)
	}
}

func TestSequencingChains(t *testing.T) {
	d := parseOne(t, "let x = a; b; c;;").(*ast.DLet)
	// a; (b; c)
	outer := d.Rhs.(*ast.Let)
	if _, ok := outer.Body.(*ast.Let); !ok {
		t.Fatalf("inner %T", outer.Body)
	}
}

func TestSemicolonStillSeparatesListElements(t *testing.T) {
	d := parseOne(t, "let x = [f 1; 2; g 3];;").(*ast.DLet)
	lst := d.Rhs.(*ast.ListLit)
	if len(lst.Elems) != 3 {
		t.Fatalf("elems = %d", len(lst.Elems))
	}
}

func TestPaperItermemBodySyntax(t *testing.T) {
	// The paper's Fig. 4 inner recursion, verbatim shape:
	//   let rec f z = let (z', y) = loop (z, inp x) in out y; f z'
	src := `
let mk inp loop out z x =
  let rec f z =
    let (z', y) = loop (z, inp x) in
    out y; f z' in
  f z;;
`
	if _, err := Parse(src); err != nil {
		t.Fatalf("paper syntax rejected: %v", err)
	}
}
