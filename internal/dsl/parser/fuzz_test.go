package parser

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"skipper/internal/dsl/lexer"
)

// fragmentAlphabet biases random inputs toward syntactically interesting
// material so the robustness test exercises deep parser paths, not just the
// first error.
var fragments = []string{
	"let", "in", "fun", "if", "then", "else", "type", "extern", "rec",
	"true", "false", ";;", ";", "->", "(", ")", "[", "]", ",", "*", "+",
	"-", "/", "=", "<", ">", "<=", ">=", "<>", "'", "_", ":",
	"x", "f", "df", "scm", "itermem", "main", "42", "3.14", `"s"`,
	" ", "\n", "(*", "*)",
}

func randomSource(rng *rand.Rand, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(fragments[rng.Intn(len(fragments))])
		if rng.Intn(3) == 0 {
			b.WriteByte(' ')
		}
	}
	return b.String()
}

// TestParserNeverPanics feeds random token soup to the full front end; any
// outcome is acceptable except a panic.
func TestParserNeverPanics(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomSource(rng, int(size%120)+1)
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on input %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestLexerNeverPanics feeds fully random bytes to the tokenizer.
func TestLexerNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		src := string(raw)
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on input %q: %v", src, r)
			}
		}()
		_, _ = lexer.Tokenize(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestParsePrintReparse: any program that parses pretty-prints to something
// that parses to the same rendering (printer/parser agreement).
func TestParsePrintReparse(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomSource(rng, int(size%120)+1)
		prog, err := Parse(src)
		if err != nil {
			return true // only well-formed programs are in scope
		}
		printed := prog.String()
		prog2, err := Parse(printed)
		if err != nil {
			t.Fatalf("pretty output does not reparse: %q -> %q: %v", src, printed, err)
		}
		if prog2.String() != printed {
			t.Fatalf("printer not stable: %q vs %q", printed, prog2.String())
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
