// Package types implements the polymorphic type discipline of the SKiPPER
// specification language: Hindley–Milner inference (Algorithm W) with
// let-polymorphism, exactly the "parsing and polymorphic type-checking"
// stage of the paper's custom Caml compiler. Type variables ('a, 'b, …)
// "introduce polymorphism, i.e. the ability for the skeleton to accommodate
// arguments with various (but related) types" (paper §2).
package types

import (
	"fmt"
	"sort"
	"strings"
)

// Type is the internal representation of a type: a mutable-variable graph
// pruned through union-find style reference chasing.
type Type interface{ typ() }

// Var is a unification variable; Ref is non-nil once bound.
type Var struct {
	ID  int
	Ref Type
}

// Con is a type constructor application: int, img, list(t), …
type Con struct {
	Name string
	Args []Type
}

// Arrow is the function type From -> To.
type Arrow struct {
	From, To Type
}

// Tuple is the product type t1 * t2 * …
type Tuple struct {
	Elems []Type
}

func (*Var) typ()   {}
func (*Con) typ()   {}
func (*Arrow) typ() {}
func (*Tuple) typ() {}

// Base type constructors.
var (
	Int    = &Con{Name: "int"}
	Float  = &Con{Name: "float"}
	Bool   = &Con{Name: "bool"}
	String = &Con{Name: "string"}
	Unit   = &Con{Name: "unit"}
)

// List returns the type t list.
func List(t Type) Type { return &Con{Name: "list", Args: []Type{t}} }

// Abstract returns a user-declared abstract base type.
func Abstract(name string) Type { return &Con{Name: name} }

// ArrowN folds a0 -> a1 -> ... -> r.
func ArrowN(args []Type, r Type) Type {
	t := r
	for i := len(args) - 1; i >= 0; i-- {
		t = &Arrow{From: args[i], To: t}
	}
	return t
}

// prune follows bound variables to the representative type.
func prune(t Type) Type {
	for {
		v, ok := t.(*Var)
		if !ok || v.Ref == nil {
			return t
		}
		t = v.Ref
	}
}

// Prune exposes pruning for clients that inspect inferred types.
func Prune(t Type) Type { return prune(t) }

// occurs reports whether variable v appears in t.
func occurs(v *Var, t Type) bool {
	switch t := prune(t).(type) {
	case *Var:
		return t == v
	case *Con:
		for _, a := range t.Args {
			if occurs(v, a) {
				return true
			}
		}
	case *Arrow:
		return occurs(v, t.From) || occurs(v, t.To)
	case *Tuple:
		for _, e := range t.Elems {
			if occurs(v, e) {
				return true
			}
		}
	}
	return false
}

// UnifyError reports a failed unification with the two offending types.
type UnifyError struct {
	A, B Type
}

func (e *UnifyError) Error() string {
	return fmt.Sprintf("cannot unify %s with %s", TypeString(e.A), TypeString(e.B))
}

// Unify makes a and b equal, binding variables as needed.
func Unify(a, b Type) error {
	a, b = prune(a), prune(b)
	if av, ok := a.(*Var); ok {
		if bv, ok := b.(*Var); ok && av == bv {
			return nil
		}
		if occurs(av, b) {
			return &UnifyError{A: a, B: b}
		}
		av.Ref = b
		return nil
	}
	if _, ok := b.(*Var); ok {
		return Unify(b, a)
	}
	switch at := a.(type) {
	case *Con:
		bt, ok := b.(*Con)
		if !ok || at.Name != bt.Name || len(at.Args) != len(bt.Args) {
			return &UnifyError{A: a, B: b}
		}
		for i := range at.Args {
			if err := Unify(at.Args[i], bt.Args[i]); err != nil {
				return &UnifyError{A: a, B: b}
			}
		}
		return nil
	case *Arrow:
		bt, ok := b.(*Arrow)
		if !ok {
			return &UnifyError{A: a, B: b}
		}
		if err := Unify(at.From, bt.From); err != nil {
			return &UnifyError{A: a, B: b}
		}
		if err := Unify(at.To, bt.To); err != nil {
			return &UnifyError{A: a, B: b}
		}
		return nil
	case *Tuple:
		bt, ok := b.(*Tuple)
		if !ok || len(at.Elems) != len(bt.Elems) {
			return &UnifyError{A: a, B: b}
		}
		for i := range at.Elems {
			if err := Unify(at.Elems[i], bt.Elems[i]); err != nil {
				return &UnifyError{A: a, B: b}
			}
		}
		return nil
	}
	return &UnifyError{A: a, B: b}
}

// Scheme is a polymorphic type scheme ∀ vars . Body.
type Scheme struct {
	Vars []*Var
	Body Type
}

// Mono wraps a monomorphic type as a scheme with no quantified variables.
func Mono(t Type) *Scheme { return &Scheme{Body: t} }

// TypeString renders a type with canonical 'a, 'b, … variable names, in the
// Caml convention: arrows associate right, tuples bind tighter than arrows,
// constructor application binds tightest.
func TypeString(t Type) string {
	names := map[*Var]string{}
	return typeString(t, names)
}

// SchemeString renders a scheme's body (quantified variables are displayed
// the same way Caml displays them: implicitly).
func (s *Scheme) String() string { return TypeString(s.Body) }

func varName(i int) string {
	name := string(rune('a' + i%26))
	if i >= 26 {
		name = fmt.Sprintf("%s%d", name, i/26)
	}
	return "'" + name
}

func typeString(t Type, names map[*Var]string) string {
	switch t := prune(t).(type) {
	case *Var:
		n, ok := names[t]
		if !ok {
			n = varName(len(names))
			names[t] = n
		}
		return n
	case *Con:
		if len(t.Args) == 0 {
			return t.Name
		}
		parts := make([]string, len(t.Args))
		for i, a := range t.Args {
			parts[i] = typeString(a, names)
			switch prune(a).(type) {
			case *Arrow, *Tuple:
				parts[i] = "(" + parts[i] + ")"
			}
		}
		return strings.Join(parts, " ") + " " + t.Name
	case *Arrow:
		from := typeString(t.From, names)
		if _, ok := prune(t.From).(*Arrow); ok {
			from = "(" + from + ")"
		}
		return from + " -> " + typeString(t.To, names)
	case *Tuple:
		parts := make([]string, len(t.Elems))
		for i, e := range t.Elems {
			parts[i] = typeString(e, names)
			switch prune(e).(type) {
			case *Arrow, *Tuple:
				parts[i] = "(" + parts[i] + ")"
			}
		}
		return strings.Join(parts, " * ")
	}
	return "?"
}

// freeVars appends the unbound variables of t to acc (deduplicated).
func freeVars(t Type, acc map[*Var]bool) {
	switch t := prune(t).(type) {
	case *Var:
		acc[t] = true
	case *Con:
		for _, a := range t.Args {
			freeVars(a, acc)
		}
	case *Arrow:
		freeVars(t.From, acc)
		freeVars(t.To, acc)
	case *Tuple:
		for _, e := range t.Elems {
			freeVars(e, acc)
		}
	}
}

// FreeVars returns the unbound variables of t in deterministic (ID) order.
func FreeVars(t Type) []*Var {
	acc := map[*Var]bool{}
	freeVars(t, acc)
	out := make([]*Var, 0, len(acc))
	for v := range acc {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
