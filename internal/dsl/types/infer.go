package types

import (
	"fmt"

	"skipper/internal/dsl/ast"
	"skipper/internal/dsl/token"
)

// Error is a type error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: type error: %s", e.Pos, e.Msg) }

// Env maps names to type schemes.
type Env struct {
	parent *Env
	vars   map[string]*Scheme
}

// NewEnv returns an empty environment with the given parent (nil for root).
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent, vars: map[string]*Scheme{}}
}

// Lookup finds a name in the environment chain.
func (e *Env) Lookup(name string) (*Scheme, bool) {
	for env := e; env != nil; env = env.parent {
		if s, ok := env.vars[name]; ok {
			return s, true
		}
	}
	return nil, false
}

// Bind adds a binding to this frame.
func (e *Env) Bind(name string, s *Scheme) { e.vars[name] = s }

// free collects the free variables of every scheme in the chain.
func (e *Env) free() map[*Var]bool {
	acc := map[*Var]bool{}
	for env := e; env != nil; env = env.parent {
		for _, s := range env.vars {
			inner := map[*Var]bool{}
			freeVars(s.Body, inner)
			bound := map[*Var]bool{}
			for _, v := range s.Vars {
				bound[v] = true
			}
			for v := range inner {
				if !bound[v] {
					acc[v] = true
				}
			}
		}
	}
	return acc
}

// Info is the result of type checking a program.
type Info struct {
	// Types holds the inferred scheme of every top-level binding in
	// declaration order (later bindings shadow earlier ones in Env).
	Types map[string]*Scheme
	// Order lists top-level binding names in declaration order.
	Order []string
	// AbstractTypes lists the names declared with `type t;;`.
	AbstractTypes []string
	// Externs maps extern names to their declared schemes.
	Externs map[string]*Scheme
}

// Checker carries inference state.
type Checker struct {
	nextID   int
	abstract map[string]bool
	env      *Env
	info     *Info
}

// Builtin skeleton and higher-order function signatures; fresh instances are
// created per Checker so unification cannot leak between programs.
func (c *Checker) installBuiltins() {
	// map : ('a -> 'b) -> 'a list -> 'b list
	a, b := c.fresh(), c.fresh()
	c.env.Bind("map", &Scheme{Vars: []*Var{a, b},
		Body: ArrowN([]Type{&Arrow{From: a, To: b}, List(a)}, List(b))})

	// fold_left : ('c -> 'b -> 'c) -> 'c -> 'b list -> 'c
	cc, bb := c.fresh(), c.fresh()
	c.env.Bind("fold_left", &Scheme{Vars: []*Var{cc, bb},
		Body: ArrowN([]Type{ArrowN([]Type{cc, bb}, cc), cc, List(bb)}, cc)})

	// scm : int -> ('a -> 'b list) -> ('b -> 'c) -> ('c list -> 'd) -> 'a -> 'd
	sa, sb, sc, sd := c.fresh(), c.fresh(), c.fresh(), c.fresh()
	c.env.Bind("scm", &Scheme{Vars: []*Var{sa, sb, sc, sd},
		Body: ArrowN([]Type{
			Int,
			&Arrow{From: sa, To: List(sb)},
			&Arrow{From: sb, To: sc},
			&Arrow{From: List(sc), To: sd},
			sa,
		}, sd)})

	// df : int -> ('a -> 'b) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c
	da, db, dc := c.fresh(), c.fresh(), c.fresh()
	c.env.Bind("df", &Scheme{Vars: []*Var{da, db, dc},
		Body: ArrowN([]Type{
			Int,
			&Arrow{From: da, To: db},
			ArrowN([]Type{dc, db}, dc),
			dc,
			List(da),
		}, dc)})

	// tf : int -> ('a -> 'b list * 'a list) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c
	ta, tb, tc := c.fresh(), c.fresh(), c.fresh()
	c.env.Bind("tf", &Scheme{Vars: []*Var{ta, tb, tc},
		Body: ArrowN([]Type{
			Int,
			&Arrow{From: ta, To: &Tuple{Elems: []Type{List(tb), List(ta)}}},
			ArrowN([]Type{tc, tb}, tc),
			tc,
			List(ta),
		}, tc)})

	// itermem : ('a -> 'b) -> ('c * 'b -> 'c * 'd) -> ('d -> unit) -> 'c -> 'a -> unit
	ia, ib, ic, id := c.fresh(), c.fresh(), c.fresh(), c.fresh()
	c.env.Bind("itermem", &Scheme{Vars: []*Var{ia, ib, ic, id},
		Body: ArrowN([]Type{
			&Arrow{From: ia, To: ib},
			&Arrow{From: &Tuple{Elems: []Type{ic, ib}}, To: &Tuple{Elems: []Type{ic, id}}},
			&Arrow{From: id, To: Unit},
			ic,
			ia,
		}, Unit)})
}

// SkeletonNames are the identifiers reserved for skeletons.
var SkeletonNames = map[string]bool{"scm": true, "df": true, "tf": true, "itermem": true}

// Check type-checks a program and returns the inference results.
func Check(prog *ast.Program) (*Info, error) {
	c := &Checker{
		abstract: map[string]bool{},
		env:      NewEnv(nil),
		info: &Info{
			Types:   map[string]*Scheme{},
			Externs: map[string]*Scheme{},
		},
	}
	c.installBuiltins()
	for _, d := range prog.Decls {
		if err := c.decl(d); err != nil {
			return nil, err
		}
	}
	return c.info, nil
}

func (c *Checker) fresh() *Var {
	c.nextID++
	return &Var{ID: c.nextID}
}

func (c *Checker) errf(pos token.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (c *Checker) decl(d ast.Decl) error {
	switch d := d.(type) {
	case *ast.DType:
		if c.abstract[d.Name] || isBuiltinCon(d.Name) {
			return c.errf(d.Pos, "type %s already declared", d.Name)
		}
		c.abstract[d.Name] = true
		c.info.AbstractTypes = append(c.info.AbstractTypes, d.Name)
		return nil

	case *ast.DExtern:
		sch, err := c.convertSig(d.Sig, d.Pos)
		if err != nil {
			return err
		}
		c.env.Bind(d.Name, sch)
		c.info.Externs[d.Name] = sch
		return nil

	case *ast.DLet:
		rhsEnv := c.env
		var recVar *Var
		if d.Rec && d.Name != "_" {
			// Monomorphic recursion: the name is visible in its own body
			// at a fresh monotype, unified with the inferred type.
			recVar = c.fresh()
			rhsEnv = NewEnv(c.env)
			rhsEnv.Bind(d.Name, Mono(recVar))
		}
		t, err := c.infer(rhsEnv, d.Rhs)
		if err != nil {
			return err
		}
		if recVar != nil {
			if err := Unify(recVar, t); err != nil {
				return c.errf(d.Pos, "recursive binding %s: %v", d.Name, err)
			}
		}
		sch := c.generalize(c.env, t)
		if d.Name != "_" {
			c.env.Bind(d.Name, sch)
			c.info.Types[d.Name] = sch
			c.info.Order = append(c.info.Order, d.Name)
		}
		return nil
	}
	return fmt.Errorf("unknown declaration %T", d)
}

func isBuiltinCon(name string) bool {
	switch name {
	case "int", "float", "bool", "string", "unit", "list":
		return true
	}
	return false
}

// convertSig converts a surface type expression to a Scheme, creating one
// quantified variable per distinct 'a name and validating constructor names.
func (c *Checker) convertSig(te ast.TypeExpr, pos token.Pos) (*Scheme, error) {
	vars := map[string]*Var{}
	t, err := c.convertType(te, vars, pos)
	if err != nil {
		return nil, err
	}
	qs := make([]*Var, 0, len(vars))
	for _, v := range vars {
		qs = append(qs, v)
	}
	return &Scheme{Vars: qs, Body: t}, nil
}

func (c *Checker) convertType(te ast.TypeExpr, vars map[string]*Var, pos token.Pos) (Type, error) {
	switch te := te.(type) {
	case *ast.TEVar:
		v, ok := vars[te.Name]
		if !ok {
			v = c.fresh()
			vars[te.Name] = v
		}
		return v, nil
	case *ast.TECon:
		args := make([]Type, len(te.Args))
		for i, a := range te.Args {
			t, err := c.convertType(a, vars, pos)
			if err != nil {
				return nil, err
			}
			args[i] = t
		}
		switch {
		case te.Name == "list":
			if len(args) != 1 {
				return nil, c.errf(pos, "list expects 1 argument, got %d", len(args))
			}
			return &Con{Name: "list", Args: args}, nil
		case isBuiltinCon(te.Name):
			if len(args) != 0 {
				return nil, c.errf(pos, "type %s takes no arguments", te.Name)
			}
			return &Con{Name: te.Name}, nil
		case c.abstract[te.Name]:
			if len(args) != 0 {
				return nil, c.errf(pos, "abstract type %s takes no arguments", te.Name)
			}
			return &Con{Name: te.Name}, nil
		default:
			return nil, c.errf(pos, "unknown type constructor %q", te.Name)
		}
	case *ast.TEArrow:
		from, err := c.convertType(te.From, vars, pos)
		if err != nil {
			return nil, err
		}
		to, err := c.convertType(te.To, vars, pos)
		if err != nil {
			return nil, err
		}
		return &Arrow{From: from, To: to}, nil
	case *ast.TETuple:
		elems := make([]Type, len(te.Elems))
		for i, e := range te.Elems {
			t, err := c.convertType(e, vars, pos)
			if err != nil {
				return nil, err
			}
			elems[i] = t
		}
		return &Tuple{Elems: elems}, nil
	}
	return nil, c.errf(pos, "unsupported type expression %T", te)
}

// instantiate replaces a scheme's quantified variables by fresh ones.
func (c *Checker) instantiate(s *Scheme) Type {
	if len(s.Vars) == 0 {
		return s.Body
	}
	subst := map[*Var]Type{}
	for _, v := range s.Vars {
		subst[v] = c.fresh()
	}
	return substitute(s.Body, subst)
}

func substitute(t Type, subst map[*Var]Type) Type {
	switch t := prune(t).(type) {
	case *Var:
		if r, ok := subst[t]; ok {
			return r
		}
		return t
	case *Con:
		if len(t.Args) == 0 {
			return t
		}
		args := make([]Type, len(t.Args))
		for i, a := range t.Args {
			args[i] = substitute(a, subst)
		}
		return &Con{Name: t.Name, Args: args}
	case *Arrow:
		return &Arrow{From: substitute(t.From, subst), To: substitute(t.To, subst)}
	case *Tuple:
		elems := make([]Type, len(t.Elems))
		for i, e := range t.Elems {
			elems[i] = substitute(e, subst)
		}
		return &Tuple{Elems: elems}
	}
	return t
}

// generalize quantifies the variables of t that are not free in env.
func (c *Checker) generalize(env *Env, t Type) *Scheme {
	envFree := env.free()
	var qs []*Var
	for _, v := range FreeVars(t) {
		if !envFree[v] {
			qs = append(qs, v)
		}
	}
	return &Scheme{Vars: qs, Body: t}
}

// bindPattern unifies a pattern against a type and binds its variables
// (monomorphically) in env.
func (c *Checker) bindPattern(env *Env, p ast.Pattern, t Type) error {
	switch p := p.(type) {
	case *ast.PVar:
		env.Bind(p.Name, Mono(t))
		return nil
	case *ast.PWild:
		return nil
	case *ast.PUnit:
		if err := Unify(t, Unit); err != nil {
			return c.errf(p.Pos, "pattern () requires unit, got %s", TypeString(t))
		}
		return nil
	case *ast.PTuple:
		elems := make([]Type, len(p.Elems))
		for i := range elems {
			elems[i] = c.fresh()
		}
		if err := Unify(t, &Tuple{Elems: elems}); err != nil {
			return c.errf(token.Pos{}, "tuple pattern %s does not match %s", p, TypeString(t))
		}
		for i, sub := range p.Elems {
			if err := c.bindPattern(env, sub, elems[i]); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown pattern %T", p)
}

// infer implements Algorithm W over the expression language.
func (c *Checker) infer(env *Env, e ast.Expr) (Type, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return Int, nil
	case *ast.FloatLit:
		return Float, nil
	case *ast.BoolLit:
		return Bool, nil
	case *ast.StringLit:
		return String, nil
	case *ast.UnitLit:
		return Unit, nil

	case *ast.Ident:
		s, ok := env.Lookup(e.Name)
		if !ok {
			return nil, c.errf(e.NamePos, "unbound identifier %q", e.Name)
		}
		return c.instantiate(s), nil

	case *ast.Tuple:
		elems := make([]Type, len(e.Elems))
		for i, el := range e.Elems {
			t, err := c.infer(env, el)
			if err != nil {
				return nil, err
			}
			elems[i] = t
		}
		return &Tuple{Elems: elems}, nil

	case *ast.ListLit:
		elem := Type(c.fresh())
		for _, el := range e.Elems {
			t, err := c.infer(env, el)
			if err != nil {
				return nil, err
			}
			if err := Unify(elem, t); err != nil {
				return nil, c.errf(el.Pos(), "list elements disagree: %v", err)
			}
		}
		return List(elem), nil

	case *ast.App:
		fn, err := c.infer(env, e.Fn)
		if err != nil {
			return nil, err
		}
		arg, err := c.infer(env, e.Arg)
		if err != nil {
			return nil, err
		}
		res := c.fresh()
		if err := Unify(fn, &Arrow{From: arg, To: res}); err != nil {
			return nil, c.errf(e.Pos(), "cannot apply %s to argument of type %s",
				TypeString(fn), TypeString(arg))
		}
		return res, nil

	case *ast.Lambda:
		inner := NewEnv(env)
		params := make([]Type, len(e.Params))
		for i, p := range e.Params {
			pv := c.fresh()
			params[i] = pv
			if err := c.bindPattern(inner, p, pv); err != nil {
				return nil, err
			}
		}
		body, err := c.infer(inner, e.Body)
		if err != nil {
			return nil, err
		}
		return ArrowN(params, body), nil

	case *ast.Let:
		rhsEnv := env
		var recVar *Var
		if e.Rec {
			pv, ok := e.Pat.(*ast.PVar)
			if !ok {
				return nil, c.errf(e.LetPos, "let rec requires a simple name")
			}
			recVar = c.fresh()
			rhsEnv = NewEnv(env)
			rhsEnv.Bind(pv.Name, Mono(recVar))
		}
		rhs, err := c.infer(rhsEnv, e.Rhs)
		if err != nil {
			return nil, err
		}
		if recVar != nil {
			if err := Unify(recVar, rhs); err != nil {
				return nil, c.errf(e.LetPos, "recursive binding: %v", err)
			}
		}
		inner := NewEnv(env)
		if pv, ok := e.Pat.(*ast.PVar); ok {
			// let-polymorphism on simple bindings
			inner.Bind(pv.Name, c.generalize(env, rhs))
		} else if err := c.bindPattern(inner, e.Pat, rhs); err != nil {
			return nil, err
		}
		return c.infer(inner, e.Body)

	case *ast.If:
		cond, err := c.infer(env, e.Cond)
		if err != nil {
			return nil, err
		}
		if err := Unify(cond, Bool); err != nil {
			return nil, c.errf(e.Cond.Pos(), "if condition must be bool, got %s", TypeString(cond))
		}
		thn, err := c.infer(env, e.Then)
		if err != nil {
			return nil, err
		}
		els, err := c.infer(env, e.Else)
		if err != nil {
			return nil, err
		}
		if err := Unify(thn, els); err != nil {
			return nil, c.errf(e.Pos(), "if branches disagree: %s vs %s",
				TypeString(thn), TypeString(els))
		}
		return thn, nil

	case *ast.BinOp:
		l, err := c.infer(env, e.L)
		if err != nil {
			return nil, err
		}
		r, err := c.infer(env, e.R)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "+", "-", "*", "/":
			if err := Unify(l, Int); err != nil {
				return nil, c.errf(e.L.Pos(), "operator %s requires int, got %s", e.Op, TypeString(l))
			}
			if err := Unify(r, Int); err != nil {
				return nil, c.errf(e.R.Pos(), "operator %s requires int, got %s", e.Op, TypeString(r))
			}
			return Int, nil
		case "+.", "-.", "*.", "/.":
			if err := Unify(l, Float); err != nil {
				return nil, c.errf(e.L.Pos(), "operator %s requires float, got %s", e.Op, TypeString(l))
			}
			if err := Unify(r, Float); err != nil {
				return nil, c.errf(e.R.Pos(), "operator %s requires float, got %s", e.Op, TypeString(r))
			}
			return Float, nil
		case "=", "<>", "<", ">", "<=", ">=":
			if err := Unify(l, r); err != nil {
				return nil, c.errf(e.Pos(), "comparison of %s with %s",
					TypeString(l), TypeString(r))
			}
			return Bool, nil
		}
		return nil, c.errf(e.Pos(), "unknown operator %q", e.Op)
	}
	return nil, fmt.Errorf("unknown expression %T", e)
}
