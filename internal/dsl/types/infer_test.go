package types

import (
	"strings"
	"testing"

	"skipper/internal/dsl/parser"
)

func inferProgram(t *testing.T, src string) *Info {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info
}

func typeOf(t *testing.T, src, name string) string {
	t.Helper()
	info := inferProgram(t, src)
	s, ok := info.Types[name]
	if !ok {
		t.Fatalf("no type for %q", name)
	}
	return s.String()
}

func mustFailCheck(t *testing.T, src, wantSub string) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Check(prog)
	if err == nil {
		t.Fatalf("Check(%q) should fail", src)
	}
	if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not mention %q", err, wantSub)
	}
}

func TestLiteralTypes(t *testing.T) {
	cases := map[string]string{
		"let a = 1;;":       "int",
		"let a = 1.5;;":     "float",
		"let a = true;;":    "bool",
		`let a = "s";;`:     "string",
		"let a = ();;":      "unit",
		"let a = (1, 2);;":  "int * int",
		"let a = [1; 2];;":  "int list",
		"let a = [];;":      "'a list",
		"let a = [(1,2)];;": "(int * int) list",
	}
	for src, want := range cases {
		if got := typeOf(t, src, "a"); got != want {
			t.Errorf("%s: got %q, want %q", src, got, want)
		}
	}
}

func TestIdentityIsPolymorphic(t *testing.T) {
	if got := typeOf(t, "let id x = x;;", "id"); got != "'a -> 'a" {
		t.Fatalf("id : %q", got)
	}
}

func TestLetPolymorphism(t *testing.T) {
	// id used at two different types in one body.
	src := "let a = let id = fun x -> x in (id 1, id true);;"
	if got := typeOf(t, src, "a"); got != "int * bool" {
		t.Fatalf("a : %q", got)
	}
}

func TestLambdaParamIsMonomorphic(t *testing.T) {
	// A lambda-bound variable must not be polymorphic.
	mustFailCheck(t, "let bad = fun f -> (f 1, f true);;", "")
}

func TestComposition(t *testing.T) {
	src := "let compose f g x = f (g x);;"
	if got := typeOf(t, src, "compose"); got != "('a -> 'b) -> ('c -> 'a) -> 'c -> 'b" {
		t.Fatalf("compose : %q", got)
	}
}

func TestArithmeticAndComparison(t *testing.T) {
	if got := typeOf(t, "let f x = x + 1;;", "f"); got != "int -> int" {
		t.Fatalf("f : %q", got)
	}
	if got := typeOf(t, "let g x y = x < y;;", "g"); got != "'a -> 'a -> bool" {
		t.Fatalf("g : %q", got)
	}
	mustFailCheck(t, "let bad = 1 + true;;", "requires int")
	mustFailCheck(t, `let bad = 1 = "x";;`, "comparison")
}

func TestIfTyping(t *testing.T) {
	if got := typeOf(t, "let f x = if x then 1 else 2;;", "f"); got != "bool -> int" {
		t.Fatalf("f : %q", got)
	}
	mustFailCheck(t, "let bad = if 1 then 2 else 3;;", "bool")
	mustFailCheck(t, "let bad = if true then 1 else false;;", "branches")
}

func TestListElementAgreement(t *testing.T) {
	mustFailCheck(t, "let bad = [1; true];;", "list elements")
}

func TestTuplePatternTyping(t *testing.T) {
	src := "let swap (a, b) = (b, a);;"
	if got := typeOf(t, src, "swap"); got != "'a * 'b -> 'b * 'a" {
		t.Fatalf("swap : %q", got)
	}
}

func TestUnboundIdentifier(t *testing.T) {
	mustFailCheck(t, "let a = nope;;", "unbound identifier")
}

func TestOccursCheck(t *testing.T) {
	mustFailCheck(t, "let f x = x x;;", "")
}

func TestBuiltinMapFold(t *testing.T) {
	if got := typeOf(t, "let f = map;;", "f"); got != "('a -> 'b) -> 'a list -> 'b list" {
		t.Fatalf("map : %q", got)
	}
	src := "let sum xs = fold_left (fun a b -> a + b) 0 xs;;"
	if got := typeOf(t, src, "sum"); got != "int list -> int" {
		t.Fatalf("sum : %q", got)
	}
}

func TestDFSignatureMatchesPaper(t *testing.T) {
	// val df : int -> ('a -> 'b) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c
	if got := typeOf(t, "let d = df;;", "d"); got != "int -> ('a -> 'b) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c" {
		t.Fatalf("df : %q", got)
	}
}

func TestDFDeclarativeDefinitionChecks(t *testing.T) {
	// The paper's own declarative definition must typecheck against the
	// builtin combinators: let df n comp acc z xs = fold_left acc z (map comp xs)
	src := "let mydf n comp acc z xs = fold_left acc z (map comp xs);;"
	got := typeOf(t, src, "mydf")
	if got != "'a -> ('b -> 'c) -> ('d -> 'c -> 'd) -> 'd -> 'b list -> 'd" {
		t.Fatalf("mydf : %q", got)
	}
}

func TestItermemSignatureMatchesPaper(t *testing.T) {
	want := "('a -> 'b) -> ('c * 'b -> 'c * 'd) -> ('d -> unit) -> 'c -> 'a -> unit"
	if got := typeOf(t, "let i = itermem;;", "i"); got != want {
		t.Fatalf("itermem : %q, want %q", got, want)
	}
}

func TestAbstractTypesAndExterns(t *testing.T) {
	src := `
type img;;
extern read_img : int * int -> img;;
let im = read_img (512, 512);;
`
	if got := typeOf(t, src, "im"); got != "img" {
		t.Fatalf("im : %q", got)
	}
}

func TestExternUnknownTypeRejected(t *testing.T) {
	mustFailCheck(t, "extern f : nothere -> int;;", "unknown type constructor")
}

func TestDuplicateTypeDeclRejected(t *testing.T) {
	mustFailCheck(t, "type img;; type img;;", "already declared")
	mustFailCheck(t, "type int;;", "already declared")
}

func TestAbstractTypeArityRejected(t *testing.T) {
	mustFailCheck(t, "type img;; extern f : int img -> int;;", "takes no arguments")
	mustFailCheck(t, "extern f : int int -> bool;;", "takes no arguments")
}

func TestExternPolymorphicSignature(t *testing.T) {
	src := `
extern choose : 'a -> 'a -> 'a;;
let a = choose 1 2;;
let b = choose true false;;
`
	info := inferProgram(t, src)
	if info.Types["a"].String() != "int" || info.Types["b"].String() != "bool" {
		t.Fatalf("a : %s, b : %s", info.Types["a"], info.Types["b"])
	}
}

func TestPaperProgramTypes(t *testing.T) {
	src := `
type img;;
type state;;
type window;;
type mark;;
extern read_img : int * int -> img;;
extern init_state : unit -> state;;
extern get_windows : int -> state -> img -> window list;;
extern detect_mark : window -> mark;;
extern accum_marks : mark list -> mark -> mark list;;
extern predict : mark list -> state * mark list;;
extern display_marks : mark list -> unit;;
extern empty_list : mark list;;

let nproc = 8;;
let s0 = init_state ();;
let loop (state, im) =
  let ws = get_windows nproc state im in
  let marks = df nproc detect_mark accum_marks empty_list ws in
  predict marks;;
let main = itermem read_img loop display_marks s0 (512, 512);;
`
	info := inferProgram(t, src)
	if got := info.Types["loop"].String(); got != "state * img -> state * mark list" {
		t.Fatalf("loop : %q", got)
	}
	if got := info.Types["main"].String(); got != "unit" {
		t.Fatalf("main : %q", got)
	}
	if got := info.Types["nproc"].String(); got != "int" {
		t.Fatalf("nproc : %q", got)
	}
	if len(info.AbstractTypes) != 4 {
		t.Fatalf("abstract types: %v", info.AbstractTypes)
	}
	if len(info.Order) != 4 {
		t.Fatalf("order: %v", info.Order)
	}
}

func TestPaperProgramWrongWiringRejected(t *testing.T) {
	// Swapping detect_mark and accum_marks must be a type error.
	src := `
type window;;
type mark;;
extern detect_mark : window -> mark;;
extern accum_marks : mark list -> mark -> mark list;;
extern empty_list : mark list;;
let bad ws = df 8 accum_marks detect_mark empty_list ws;;
`
	mustFailCheck(t, src, "")
}

func TestShadowing(t *testing.T) {
	src := "let a = 1;; let a = true;; let b = a;;"
	if got := typeOf(t, src, "b"); got != "bool" {
		t.Fatalf("b : %q", got)
	}
}

func TestWildcardTopLevelNotRecorded(t *testing.T) {
	info := inferProgram(t, "let _ = 1;;")
	if len(info.Order) != 0 {
		t.Fatalf("wildcard binding recorded: %v", info.Order)
	}
}

func TestUnifyErrorMessage(t *testing.T) {
	err := Unify(Int, Bool)
	if err == nil || !strings.Contains(err.Error(), "int") || !strings.Contains(err.Error(), "bool") {
		t.Fatalf("err = %v", err)
	}
}

func TestTypeStringCanonicalNames(t *testing.T) {
	v1, v2 := &Var{ID: 100}, &Var{ID: 200}
	s := TypeString(&Arrow{From: v1, To: &Arrow{From: v2, To: v1}})
	if s != "'a -> 'b -> 'a" {
		t.Fatalf("got %q", s)
	}
}

func TestAlphaEquivalenceOfInference(t *testing.T) {
	// Renaming bound variables must not change the inferred type string.
	a := typeOf(t, "let f x y = (y, x);;", "f")
	b := typeOf(t, "let f u v = (v, u);;", "f")
	if a != b {
		t.Fatalf("alpha-variance: %q vs %q", a, b)
	}
}
