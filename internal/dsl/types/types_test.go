package types

import (
	"strings"
	"testing"
)

func TestUnifyStructuralMismatches(t *testing.T) {
	cases := []struct{ a, b Type }{
		{Int, Bool},
		{List(Int), List(Bool)},
		{List(Int), Int},
		{&Arrow{From: Int, To: Int}, Int},
		{&Tuple{Elems: []Type{Int, Int}}, &Tuple{Elems: []Type{Int}}},
		{&Tuple{Elems: []Type{Int}}, Int},
		{&Arrow{From: Int, To: Int}, &Arrow{From: Bool, To: Int}},
		{&Arrow{From: Int, To: Int}, &Arrow{From: Int, To: Bool}},
	}
	for _, c := range cases {
		if err := Unify(c.a, c.b); err == nil {
			t.Errorf("Unify(%s, %s) should fail", TypeString(c.a), TypeString(c.b))
		}
	}
}

func TestUnifySuccessAndIdempotence(t *testing.T) {
	v := &Var{ID: 1}
	if err := Unify(v, Int); err != nil {
		t.Fatal(err)
	}
	// Unifying again with the same binding succeeds.
	if err := Unify(v, Int); err != nil {
		t.Fatal(err)
	}
	// Same variable both sides.
	w := &Var{ID: 2}
	if err := Unify(w, w); err != nil {
		t.Fatal(err)
	}
	// Var on the right.
	u := &Var{ID: 3}
	if err := Unify(Bool, u); err != nil {
		t.Fatal(err)
	}
	if TypeString(u) != "bool" {
		t.Fatalf("u = %s", TypeString(u))
	}
}

func TestOccursCheckDirect(t *testing.T) {
	v := &Var{ID: 1}
	if err := Unify(v, List(v)); err == nil {
		t.Fatal("occurs check missed v = v list")
	}
	w := &Var{ID: 2}
	if err := Unify(w, &Arrow{From: w, To: Int}); err == nil {
		t.Fatal("occurs check missed arrow")
	}
	x := &Var{ID: 3}
	if err := Unify(x, &Tuple{Elems: []Type{Int, x}}); err == nil {
		t.Fatal("occurs check missed tuple")
	}
}

func TestTypeStringManyVariables(t *testing.T) {
	// Variable 26 wraps to 'a1.
	vars := make([]Type, 28)
	for i := range vars {
		vars[i] = &Var{ID: i + 1}
	}
	s := TypeString(&Tuple{Elems: vars})
	if !strings.Contains(s, "'a") || !strings.Contains(s, "'a1") {
		t.Fatalf("naming: %s", s)
	}
}

func TestTypeStringNestedShapes(t *testing.T) {
	ft := &Arrow{From: &Arrow{From: Int, To: Bool}, To: List(&Tuple{Elems: []Type{Int, Float}})}
	if got := TypeString(ft); got != "(int -> bool) -> (int * float) list" {
		t.Fatalf("got %q", got)
	}
	inner := &Tuple{Elems: []Type{&Tuple{Elems: []Type{Int, Int}}, Bool}}
	if got := TypeString(inner); got != "(int * int) * bool" {
		t.Fatalf("got %q", got)
	}
}

func TestFreeVarsOrderAndDedup(t *testing.T) {
	a, b := &Var{ID: 5}, &Var{ID: 2}
	ty := &Arrow{From: a, To: &Tuple{Elems: []Type{b, a, List(b)}}}
	vs := FreeVars(ty)
	if len(vs) != 2 || vs[0].ID != 2 || vs[1].ID != 5 {
		t.Fatalf("FreeVars = %+v", vs)
	}
	// Bound variables are pruned away.
	if err := Unify(a, Int); err != nil {
		t.Fatal(err)
	}
	vs2 := FreeVars(ty)
	if len(vs2) != 1 || vs2[0].ID != 2 {
		t.Fatalf("FreeVars after binding = %+v", vs2)
	}
}

func TestArrowNAndHelpers(t *testing.T) {
	ty := ArrowN([]Type{Int, Bool}, String)
	if got := TypeString(ty); got != "int -> bool -> string" {
		t.Fatalf("got %q", got)
	}
	if got := TypeString(ArrowN(nil, Unit)); got != "unit" {
		t.Fatalf("got %q", got)
	}
	if got := TypeString(Abstract("img")); got != "img" {
		t.Fatalf("got %q", got)
	}
	if (&Scheme{Body: Int}).String() != "int" {
		t.Fatal("scheme string")
	}
	if Mono(Int).Vars != nil {
		t.Fatal("Mono should not quantify")
	}
}

func TestEnvLookupChainAndShadow(t *testing.T) {
	root := NewEnv(nil)
	root.Bind("x", Mono(Int))
	child := NewEnv(root)
	child.Bind("x", Mono(Bool))
	if s, ok := child.Lookup("x"); !ok || s.String() != "bool" {
		t.Fatal("shadowing broken")
	}
	if s, ok := root.Lookup("x"); !ok || s.String() != "int" {
		t.Fatal("parent binding lost")
	}
	if _, ok := child.Lookup("ghost"); ok {
		t.Fatal("phantom binding")
	}
}

func TestPruneExposed(t *testing.T) {
	v := &Var{ID: 9}
	if err := Unify(v, List(Int)); err != nil {
		t.Fatal(err)
	}
	if _, ok := Prune(v).(*Con); !ok {
		t.Fatalf("Prune(v) = %T", Prune(v))
	}
}
