package lexer

import (
	"testing"

	"skipper/internal/dsl/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	out := make([]token.Kind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func expectKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	got := kinds(t, src)
	want = append(want, token.EOF)
	if len(got) != len(want) {
		t.Fatalf("%q: got %v, want %v", src, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%q: token %d = %v, want %v", src, i, got[i], want[i])
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	expectKinds(t, "let rec in fun if then else type extern true false",
		token.LET, token.REC, token.IN, token.FUN, token.IF, token.THEN,
		token.ELSE, token.TYPE, token.EXTERN, token.TRUE, token.FALSE)
	expectKinds(t, "foo read_img x2 z'", token.IDENT, token.IDENT, token.IDENT, token.IDENT)
}

func TestPrimeInIdentifier(t *testing.T) {
	toks, err := Tokenize("z'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "z'" {
		t.Fatalf("ident = %q", toks[0].Text)
	}
}

func TestNumbers(t *testing.T) {
	expectKinds(t, "42 3.14 0", token.INT, token.FLOAT, token.INT)
	toks, _ := Tokenize("512")
	if toks[0].Text != "512" {
		t.Fatalf("text = %q", toks[0].Text)
	}
}

func TestMalformedNumber(t *testing.T) {
	if _, err := Tokenize("12abc"); err == nil {
		t.Fatal("expected error for 12abc")
	}
}

func TestOperators(t *testing.T) {
	expectKinds(t, "-> - = <> <= >= < > + * / ; ;; , : ( ) [ ] _",
		token.ARROW, token.MINUS, token.EQ, token.NE, token.LE, token.GE,
		token.LT, token.GT, token.PLUS, token.STAR, token.SLASH, token.SEMI,
		token.SEMISEMI, token.COMMA, token.COLON, token.LPAREN, token.RPAREN,
		token.LBRACKET, token.RBRACKET, token.UNDERSCOR)
}

func TestStrings(t *testing.T) {
	toks, err := Tokenize(`"hello\nworld" "tab\t" "q\"q"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "hello\nworld" || toks[1].Text != "tab\t" || toks[2].Text != `q"q` {
		t.Fatalf("bad strings: %q %q %q", toks[0].Text, toks[1].Text, toks[2].Text)
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := Tokenize(`"oops`); err == nil {
		t.Fatal("expected error")
	}
}

func TestUnknownEscape(t *testing.T) {
	if _, err := Tokenize(`"\q"`); err == nil {
		t.Fatal("expected error")
	}
}

func TestComments(t *testing.T) {
	expectKinds(t, "(* plain *) x", token.IDENT)
	expectKinds(t, "(* nested (* inner *) outer *) y", token.IDENT)
	expectKinds(t, "a (* mid *) b", token.IDENT, token.IDENT)
}

func TestUnterminatedComment(t *testing.T) {
	if _, err := Tokenize("(* never ends"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Tokenize("(* outer (* inner *)"); err == nil {
		t.Fatal("expected error for half-closed nested comment")
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("let x =\n  42")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (token.Pos{Line: 1, Col: 1}) {
		t.Fatalf("let at %v", toks[0].Pos)
	}
	if toks[3].Pos != (token.Pos{Line: 2, Col: 3}) {
		t.Fatalf("42 at %v", toks[3].Pos)
	}
}

func TestQuoteTypeVariable(t *testing.T) {
	// A quote NOT glued to a preceding identifier starts a type variable.
	expectKinds(t, "'a", token.QUOTE, token.IDENT)
}

func TestUnexpectedCharacter(t *testing.T) {
	if _, err := Tokenize("let # = 1"); err == nil {
		t.Fatal("expected error for #")
	}
	var lerr *Error
	_, err := Tokenize("@")
	if err == nil {
		t.Fatal("expected error")
	}
	if e, ok := err.(*Error); ok {
		lerr = e
	} else {
		t.Fatalf("error type %T", err)
	}
	if lerr.Pos.Line != 1 || lerr.Pos.Col != 1 {
		t.Fatalf("error position %v", lerr.Pos)
	}
}

func TestPaperProgramLexes(t *testing.T) {
	src := `
let nproc = 8;;
let s0 = init_state ();;
let loop (state, im) =
  let ws = get_windows nproc state im in
  let marks = df nproc detect_mark accum_marks empty_list ws in
  predict marks;;
let main = itermem read_img loop display_marks s0 (512,512);;
`
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) < 40 {
		t.Fatalf("suspiciously few tokens: %d", len(toks))
	}
}
