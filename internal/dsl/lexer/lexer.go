// Package lexer tokenizes SKiPPER specification sources. It handles nested
// Caml comments (* like (* this *) one *), string literals, numeric
// literals, and the operator set of the subset language.
package lexer

import (
	"fmt"
	"strings"
	"unicode"

	"skipper/internal/dsl/token"
)

// Error is a lexical error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: lexical error: %s", e.Pos, e.Msg) }

// Lexer scans an input string into tokens.
type Lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

// Tokenize scans the whole input and returns the token stream terminated by
// an EOF token, or the first lexical error.
func Tokenize(src string) ([]token.Token, error) {
	lx := New(src)
	var out []token.Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == token.EOF {
			return out, nil
		}
	}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() rune {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) here() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func (l *Lexer) errf(pos token.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// skipSpaceAndComments consumes whitespace and (possibly nested) comments.
func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		switch {
		case unicode.IsSpace(l.peek()):
			l.advance()
		case l.peek() == '(' && l.peek2() == '*':
			start := l.here()
			l.advance()
			l.advance()
			depth := 1
			for depth > 0 {
				if l.pos >= len(l.src) {
					return l.errf(start, "unterminated comment")
				}
				if l.peek() == '(' && l.peek2() == '*' {
					l.advance()
					l.advance()
					depth++
				} else if l.peek() == '*' && l.peek2() == ')' {
					l.advance()
					l.advance()
					depth--
				} else {
					l.advance()
				}
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (token.Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token.Token{}, err
	}
	pos := l.here()
	if l.pos >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}, nil
	}
	r := l.peek()
	switch {
	case unicode.IsLetter(r):
		return l.ident(pos), nil
	case unicode.IsDigit(r):
		return l.number(pos)
	case r == '"':
		return l.str(pos)
	}
	l.advance()
	two := func(second rune, k2, k1 token.Kind) token.Token {
		if l.peek() == second {
			l.advance()
			return token.Token{Kind: k2, Text: string(r) + string(second), Pos: pos}
		}
		return token.Token{Kind: k1, Text: string(r), Pos: pos}
	}
	switch r {
	case '(':
		return token.Token{Kind: token.LPAREN, Text: "(", Pos: pos}, nil
	case ')':
		return token.Token{Kind: token.RPAREN, Text: ")", Pos: pos}, nil
	case '[':
		return token.Token{Kind: token.LBRACKET, Text: "[", Pos: pos}, nil
	case ']':
		return token.Token{Kind: token.RBRACKET, Text: "]", Pos: pos}, nil
	case ',':
		return token.Token{Kind: token.COMMA, Text: ",", Pos: pos}, nil
	case ';':
		return two(';', token.SEMISEMI, token.SEMI), nil
	case '=':
		return token.Token{Kind: token.EQ, Text: "=", Pos: pos}, nil
	case ':':
		return token.Token{Kind: token.COLON, Text: ":", Pos: pos}, nil
	case '*':
		return two('.', token.STARDOT, token.STAR), nil
	case '+':
		return two('.', token.PLUSDOT, token.PLUS), nil
	case '-':
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.ARROW, Text: "->", Pos: pos}, nil
		}
		return two('.', token.MINUSDOT, token.MINUS), nil
	case '/':
		return two('.', token.SLASHDOT, token.SLASH), nil
	case '<':
		if l.peek() == '=' {
			l.advance()
			return token.Token{Kind: token.LE, Text: "<=", Pos: pos}, nil
		}
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.NE, Text: "<>", Pos: pos}, nil
		}
		return token.Token{Kind: token.LT, Text: "<", Pos: pos}, nil
	case '>':
		return two('=', token.GE, token.GT), nil
	case '\'':
		return token.Token{Kind: token.QUOTE, Text: "'", Pos: pos}, nil
	case '_':
		return token.Token{Kind: token.UNDERSCOR, Text: "_", Pos: pos}, nil
	}
	return token.Token{}, l.errf(pos, "unexpected character %q", r)
}

func (l *Lexer) ident(pos token.Pos) token.Token {
	var b strings.Builder
	for l.pos < len(l.src) {
		r := l.peek()
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\'' {
			b.WriteRune(r)
			l.advance()
		} else {
			break
		}
	}
	text := b.String()
	if k, ok := token.Keywords[text]; ok {
		return token.Token{Kind: k, Text: text, Pos: pos}
	}
	return token.Token{Kind: token.IDENT, Text: text, Pos: pos}
}

func (l *Lexer) number(pos token.Pos) (token.Token, error) {
	var b strings.Builder
	isFloat := false
	for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
		b.WriteRune(l.advance())
	}
	if l.peek() == '.' && unicode.IsDigit(l.peek2()) {
		isFloat = true
		b.WriteRune(l.advance())
		for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
			b.WriteRune(l.advance())
		}
	}
	if r := l.peek(); unicode.IsLetter(r) {
		return token.Token{}, l.errf(pos, "malformed number: %q followed by %q", b.String(), r)
	}
	k := token.INT
	if isFloat {
		k = token.FLOAT
	}
	return token.Token{Kind: k, Text: b.String(), Pos: pos}, nil
}

func (l *Lexer) str(pos token.Pos) (token.Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return token.Token{}, l.errf(pos, "unterminated string literal")
		}
		r := l.advance()
		if r == '"' {
			return token.Token{Kind: token.STRING, Text: b.String(), Pos: pos}, nil
		}
		if r == '\\' {
			if l.pos >= len(l.src) {
				return token.Token{}, l.errf(pos, "unterminated escape in string")
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteRune('\n')
			case 't':
				b.WriteRune('\t')
			case '\\', '"':
				b.WriteRune(e)
			default:
				return token.Token{}, l.errf(pos, "unknown escape \\%c", e)
			}
			continue
		}
		b.WriteRune(r)
	}
}
