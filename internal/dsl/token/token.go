// Package token defines the lexical tokens of the SKiPPER specification
// language, the Caml subset in which applications are written (paper §3).
package token

import "fmt"

// Kind identifies a class of lexical token.
type Kind int

// Token kinds. Keywords mirror the Caml constructs the paper's source
// programs use; EXTERN and TYPE replace the out-of-band C prototypes.
const (
	EOF Kind = iota
	IDENT
	INT
	FLOAT
	STRING

	// Keywords
	LET
	REC
	IN
	FUN
	IF
	THEN
	ELSE
	TYPE
	EXTERN
	TRUE
	FALSE

	// Punctuation and operators
	LPAREN    // (
	RPAREN    // )
	LBRACKET  // [
	RBRACKET  // ]
	COMMA     // ,
	SEMI      // ;
	SEMISEMI  // ;;
	ARROW     // ->
	EQ        // =
	COLON     // :
	STAR      // *
	PLUS      // +
	MINUS     // -
	SLASH     // /
	LT        // <
	GT        // >
	LE        // <=
	GE        // >=
	NE        // <>
	QUOTE     // ' (type variables)
	UNDERSCOR // _
	PLUSDOT   // +.
	MINUSDOT  // -.
	STARDOT   // *.
	SLASHDOT  // /.
)

var names = map[Kind]string{
	EOF: "EOF", IDENT: "IDENT", INT: "INT", FLOAT: "FLOAT", STRING: "STRING",
	LET: "let", REC: "rec", IN: "in", FUN: "fun", IF: "if", THEN: "then",
	ELSE: "else", TYPE: "type", EXTERN: "extern", TRUE: "true", FALSE: "false",
	LPAREN: "(", RPAREN: ")", LBRACKET: "[", RBRACKET: "]", COMMA: ",",
	SEMI: ";", SEMISEMI: ";;", ARROW: "->", EQ: "=", COLON: ":", STAR: "*",
	PLUS: "+", MINUS: "-", SLASH: "/", LT: "<", GT: ">", LE: "<=", GE: ">=",
	NE: "<>", QUOTE: "'", UNDERSCOR: "_",
	PLUSDOT: "+.", MINUSDOT: "-.", STARDOT: "*.", SLASHDOT: "/.",
}

// String returns the display name of the kind.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their kinds.
var Keywords = map[string]Kind{
	"let": LET, "rec": REC, "in": IN, "fun": FUN, "if": IF, "then": THEN,
	"else": ELSE, "type": TYPE, "extern": EXTERN, "true": TRUE, "false": FALSE,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, FLOAT, STRING:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
