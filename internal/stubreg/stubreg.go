// Package stubreg builds placeholder implementations for extern
// declarations from their type signatures: arity is the number of
// top-level arrows, and the returned value is the declared result type's
// default (0, false, empty list, tuple of defaults, or an opaque token for
// abstract types). Type-directed defaults keep stub-driven emulation
// well-typed, so specifications can be explored in the toplevel before any
// real sequential function exists.
package stubreg

import (
	"skipper/internal/dsl/ast"
	"skipper/internal/value"
)

// FuncFor builds the stub for one extern declaration.
func FuncFor(ext *ast.DExtern) *value.Func {
	arity := 0
	result := ext.Sig
	for {
		arrow, ok := result.(*ast.TEArrow)
		if !ok {
			break
		}
		arity++
		result = arrow.To
	}
	name := ext.Name
	def := DefaultFor(result, name)
	return &value.Func{
		Name:  name,
		Sig:   ext.Sig.String(),
		Arity: arity,
		Fn:    func([]value.Value) value.Value { return def },
	}
}

// DefaultFor returns the default value of a surface type: zero for base
// types, empty for lists, component-wise for tuples, and an opaque
// "<name>" token for abstract types, type variables and functions.
func DefaultFor(te ast.TypeExpr, name string) value.Value {
	switch te := te.(type) {
	case *ast.TECon:
		switch te.Name {
		case "int":
			return 0
		case "float":
			return 0.0
		case "bool":
			return false
		case "string":
			return ""
		case "unit":
			return value.Unit{}
		case "list":
			return value.List{}
		default: // abstract type
			return "<" + name + ">"
		}
	case *ast.TETuple:
		out := make(value.Tuple, len(te.Elems))
		for i, e := range te.Elems {
			out[i] = DefaultFor(e, name)
		}
		return out
	default: // type variables, function types
		return "<" + name + ">"
	}
}

// Registry stubs every extern in a parsed program.
func Registry(prog *ast.Program) *value.Registry {
	reg := value.NewRegistry()
	for _, d := range prog.Decls {
		if ext, ok := d.(*ast.DExtern); ok {
			reg.Register(FuncFor(ext))
		}
	}
	return reg
}
