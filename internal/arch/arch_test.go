package arch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRingGeometry(t *testing.T) {
	a := Ring(8)
	if a.N != 8 || a.Name != "ring(8)" {
		t.Fatalf("arch = %+v", a)
	}
	for p := 0; p < 8; p++ {
		if len(a.Neighbors(ProcID(p))) != 2 {
			t.Fatalf("proc %d has %d neighbors", p, len(a.Neighbors(ProcID(p))))
		}
	}
	// Opposite side of an 8-ring is 4 hops away.
	if a.Hops(0, 4) != 4 {
		t.Fatalf("Hops(0,4) = %d", a.Hops(0, 4))
	}
	if a.Hops(0, 1) != 1 || a.Hops(0, 7) != 1 {
		t.Fatal("adjacent hops wrong")
	}
}

func TestRingOfTwoAndOne(t *testing.T) {
	a := Ring(2)
	if a.Hops(0, 1) != 1 {
		t.Fatalf("ring(2) hops = %d", a.Hops(0, 1))
	}
	if len(a.Neighbors(0)) != 1 {
		t.Fatalf("ring(2) should deduplicate the double link: %v", a.Neighbors(0))
	}
	b := Ring(1)
	if b.Hops(0, 0) != 0 || !b.Connected() {
		t.Fatal("singleton ring broken")
	}
}

func TestChainRouting(t *testing.T) {
	a := Chain(5)
	r := a.Route(0, 4)
	want := []ProcID{0, 1, 2, 3, 4}
	if len(r) != len(want) {
		t.Fatalf("route = %v", r)
	}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("route = %v", r)
		}
	}
}

func TestStarRouting(t *testing.T) {
	a := Star(6)
	if a.Hops(1, 2) != 2 {
		t.Fatalf("leaf-to-leaf = %d hops", a.Hops(1, 2))
	}
	if a.NextHop(3, 5) != 0 {
		t.Fatal("leaf should route via hub")
	}
}

func TestFullIsSingleHop(t *testing.T) {
	a := Full(5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j && a.Hops(ProcID(i), ProcID(j)) != 1 {
				t.Fatalf("Hops(%d,%d) = %d", i, j, a.Hops(ProcID(i), ProcID(j)))
			}
		}
	}
}

func TestGridRouting(t *testing.T) {
	a := Grid(3, 3)
	if a.N != 9 {
		t.Fatalf("N = %d", a.N)
	}
	// Manhattan distance between corners.
	if a.Hops(0, 8) != 4 {
		t.Fatalf("corner distance = %d", a.Hops(0, 8))
	}
	if !a.Connected() {
		t.Fatal("grid should be connected")
	}
}

// Property: on every topology, routes exist, start and end correctly, follow
// adjacency, and have length Hops+1.
func TestRoutesWellFormed(t *testing.T) {
	archs := []*Arch{Ring(8), Chain(6), Star(7), Full(4), Grid(3, 4)}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := archs[rng.Intn(len(archs))]
		src := ProcID(rng.Intn(a.N))
		dst := ProcID(rng.Intn(a.N))
		r := a.Route(src, dst)
		if r == nil || r[0] != src || r[len(r)-1] != dst {
			return false
		}
		if len(r)-1 != a.Hops(src, dst) {
			return false
		}
		for i := 0; i+1 < len(r); i++ {
			adjacent := false
			for _, n := range a.Neighbors(r[i]) {
				if n == r[i+1] {
					adjacent = true
				}
			}
			if !adjacent {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: ring routes take the shorter way round.
func TestRingShortestPath(t *testing.T) {
	a := Ring(10)
	for s := 0; s < 10; s++ {
		for d := 0; d < 10; d++ {
			cw := (d - s + 10) % 10
			ccw := (s - d + 10) % 10
			want := cw
			if ccw < cw {
				want = ccw
			}
			if got := a.Hops(ProcID(s), ProcID(d)); got != want {
				t.Fatalf("Hops(%d,%d) = %d, want %d", s, d, got, want)
			}
		}
	}
}

func TestLinksEnumeratesBothDirections(t *testing.T) {
	a := Ring(4)
	links := a.Links()
	if len(links) != 8 { // 4 bidirectional links = 8 directed
		t.Fatalf("got %d directed links", len(links))
	}
	seen := map[LinkID]bool{}
	for _, l := range links {
		seen[l] = true
	}
	if !seen[LinkID{0, 1}] || !seen[LinkID{1, 0}] {
		t.Fatal("missing directions")
	}
}

func TestTimingHelpers(t *testing.T) {
	a := Ring(4)
	// 20 MHz: 20e6 cycles = 1 second.
	if got := a.CycleSeconds(20_000_000); got != 1.0 {
		t.Fatalf("CycleSeconds = %g", got)
	}
	// 10 MB over a 10 MB/s link ≈ 1 s + latency.
	got := a.TransferSeconds(10_000_000)
	if got < 1.0 || got > 1.01 {
		t.Fatalf("TransferSeconds = %g", got)
	}
}

func TestInvalidProcCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Ring(0)
}

func TestHypercube(t *testing.T) {
	a := Hypercube(3)
	if a.N != 8 {
		t.Fatalf("N = %d", a.N)
	}
	for p := 0; p < 8; p++ {
		if len(a.Neighbors(ProcID(p))) != 3 {
			t.Fatalf("proc %d degree = %d", p, len(a.Neighbors(ProcID(p))))
		}
	}
	// Distance equals Hamming distance.
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			ham := 0
			for b := 0; b < 3; b++ {
				if (s^d)&(1<<b) != 0 {
					ham++
				}
			}
			if got := a.Hops(ProcID(s), ProcID(d)); got != ham {
				t.Fatalf("Hops(%d,%d) = %d, want %d", s, d, got, ham)
			}
		}
	}
	if !a.Connected() {
		t.Fatal("hypercube disconnected")
	}
	// Degenerate: 0-dim hypercube is a single processor.
	if Hypercube(0).N != 1 {
		t.Fatal("hypercube(0)")
	}
}

func TestHypercubePanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Hypercube(-1)
}

func TestTorus(t *testing.T) {
	a := Torus(4, 3)
	if a.N != 12 || !a.Connected() {
		t.Fatalf("torus geometry broken: %+v", a.N)
	}
	// Wrap-around: (0,0) to (3,0) is one hop, not three.
	if got := a.Hops(0, 3); got != 1 {
		t.Fatalf("wrap hop = %d", got)
	}
	// (0,0) to (2,0) is two hops either way.
	if got := a.Hops(0, 2); got != 2 {
		t.Fatalf("Hops(0,2) = %d", got)
	}
	// Vertical wrap: (0,0)=0 to (0,2)=8 is one hop.
	if got := a.Hops(0, 8); got != 1 {
		t.Fatalf("vertical wrap = %d", got)
	}
}

func TestTorusDegenerate(t *testing.T) {
	// 1x1 torus: one proc, self-links filtered.
	a := Torus(1, 1)
	if a.N != 1 || len(a.Neighbors(0)) != 0 {
		t.Fatalf("torus(1x1): %+v", a.Neighbors(0))
	}
	// 2x1 torus deduplicates the double link.
	b := Torus(2, 1)
	if len(b.Neighbors(0)) != 1 {
		t.Fatalf("torus(2x1) neighbors = %v", b.Neighbors(0))
	}
}
