// Package arch describes target MIMD-DM architectures as graphs: "the
// target architecture … is also described as a graph, with nodes associated
// to processors and edges representing communication channels" (paper §3).
// It provides the physical topologies the Transvision platform "can be
// configured according to" (ring, chain, star, grid, fully connected) and
// all-pairs shortest-path routing tables used for store-and-forward
// multi-hop communication.
package arch

import (
	"fmt"
)

// ProcID identifies a processor (0-based).
type ProcID int

// LinkID identifies a directed link (an ordered processor pair).
type LinkID struct {
	From, To ProcID
}

// Arch is an architecture description plus hardware timing constants.
type Arch struct {
	// Name describes the topology, e.g. "ring(8)".
	Name string
	// N is the processor count.
	N int
	// CPUHz is the clock rate of every (homogeneous) processor.
	CPUHz float64
	// LinkBytesPerSec is the usable payload bandwidth of one link.
	LinkBytesPerSec float64
	// LinkLatency is the fixed per-message per-hop startup time in seconds.
	LinkLatency float64

	adj  [][]ProcID // adjacency lists (bidirectional links stored both ways)
	next [][]ProcID // next[src][dst] = neighbor on a shortest path, -1 self
}

// Transvision hardware constants: T9000 Transputers at 20 MHz with DS-links
// delivering roughly 10 MB/s of usable payload bandwidth and a few
// microseconds of per-message startup (paper §4 and ref [8]).
const (
	TransputerHz      = 20e6
	TransputerLinkBps = 10e6
	TransputerLinkLat = 5e-6
)

// newArch allocates an architecture with Transvision timing defaults.
func newArch(name string, n int) *Arch {
	if n < 1 {
		panic(fmt.Sprintf("arch: invalid processor count %d", n))
	}
	a := &Arch{
		Name:            name,
		N:               n,
		CPUHz:           TransputerHz,
		LinkBytesPerSec: TransputerLinkBps,
		LinkLatency:     TransputerLinkLat,
		adj:             make([][]ProcID, n),
	}
	return a
}

func (a *Arch) addLink(i, j ProcID) {
	if i == j {
		return
	}
	for _, k := range a.adj[i] {
		if k == j {
			return
		}
	}
	a.adj[i] = append(a.adj[i], j)
	a.adj[j] = append(a.adj[j], i)
}

// Ring returns an n-processor ring (the topology of the paper's experiment).
func Ring(n int) *Arch {
	a := newArch(fmt.Sprintf("ring(%d)", n), n)
	for i := 0; i < n; i++ {
		a.addLink(ProcID(i), ProcID((i+1)%n))
	}
	a.buildRoutes()
	return a
}

// Chain returns an n-processor linear chain.
func Chain(n int) *Arch {
	a := newArch(fmt.Sprintf("chain(%d)", n), n)
	for i := 0; i+1 < n; i++ {
		a.addLink(ProcID(i), ProcID(i+1))
	}
	a.buildRoutes()
	return a
}

// Star returns a star with processor 0 as hub.
func Star(n int) *Arch {
	a := newArch(fmt.Sprintf("star(%d)", n), n)
	for i := 1; i < n; i++ {
		a.addLink(0, ProcID(i))
	}
	a.buildRoutes()
	return a
}

// Full returns a fully connected architecture.
func Full(n int) *Arch {
	a := newArch(fmt.Sprintf("full(%d)", n), n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a.addLink(ProcID(i), ProcID(j))
		}
	}
	a.buildRoutes()
	return a
}

// Grid returns a w×h mesh; processors are numbered row-major.
func Grid(w, h int) *Arch {
	a := newArch(fmt.Sprintf("grid(%dx%d)", w, h), w*h)
	id := func(x, y int) ProcID { return ProcID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				a.addLink(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				a.addLink(id(x, y), id(x, y+1))
			}
		}
	}
	a.buildRoutes()
	return a
}

// buildRoutes computes all-pairs next-hop tables with BFS from every source.
func (a *Arch) buildRoutes() {
	a.next = make([][]ProcID, a.N)
	for src := 0; src < a.N; src++ {
		nxt := make([]ProcID, a.N)
		for i := range nxt {
			nxt[i] = -1
		}
		// BFS from src; parent pointers give the first hop.
		dist := make([]int, a.N)
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []ProcID{ProcID(src)}
		parent := make([]ProcID, a.N)
		for i := range parent {
			parent[i] = -1
		}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range a.adj[u] {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		for dst := 0; dst < a.N; dst++ {
			if dst == src || dist[dst] == -1 {
				continue
			}
			// Walk back from dst to the neighbor of src.
			v := ProcID(dst)
			for parent[v] != ProcID(src) {
				v = parent[v]
			}
			nxt[dst] = v
		}
		a.next[src] = nxt
	}
}

// Connected reports whether every processor can reach every other.
func (a *Arch) Connected() bool {
	for dst := 0; dst < a.N; dst++ {
		if dst != 0 && a.next[0][dst] == -1 {
			return false
		}
	}
	return true
}

// NextHop returns the neighbor src forwards to on a shortest path to dst,
// or -1 when src == dst or dst is unreachable.
func (a *Arch) NextHop(src, dst ProcID) ProcID {
	if src == dst {
		return -1
	}
	return a.next[src][dst]
}

// Route returns the full processor path from src to dst, inclusive of both
// endpoints. Route(p, p) = [p].
func (a *Arch) Route(src, dst ProcID) []ProcID {
	path := []ProcID{src}
	for src != dst {
		n := a.NextHop(src, dst)
		if n == -1 {
			return nil
		}
		path = append(path, n)
		src = n
	}
	return path
}

// Hops returns the number of link traversals between src and dst
// (0 for src == dst, -1 if unreachable).
func (a *Arch) Hops(src, dst ProcID) int {
	r := a.Route(src, dst)
	if r == nil {
		return -1
	}
	return len(r) - 1
}

// Neighbors returns the processors adjacent to p.
func (a *Arch) Neighbors(p ProcID) []ProcID { return a.adj[p] }

// Links enumerates every directed link.
func (a *Arch) Links() []LinkID {
	var out []LinkID
	for i := 0; i < a.N; i++ {
		for _, j := range a.adj[i] {
			out = append(out, LinkID{From: ProcID(i), To: j})
		}
	}
	return out
}

// CycleSeconds converts processor cycles to seconds on this architecture.
func (a *Arch) CycleSeconds(cycles int64) float64 {
	return float64(cycles) / a.CPUHz
}

// TransferSeconds returns the time to push a message of the given size over
// one link (startup latency plus serialization).
func (a *Arch) TransferSeconds(bytes int) float64 {
	return a.LinkLatency + float64(bytes)/a.LinkBytesPerSec
}

// Hypercube returns a 2^dim-processor hypercube (processors are adjacent
// when their indices differ in exactly one bit) — a classic Transputer
// network configuration.
func Hypercube(dim int) *Arch {
	if dim < 0 || dim > 16 {
		panic(fmt.Sprintf("arch: invalid hypercube dimension %d", dim))
	}
	n := 1 << dim
	a := newArch(fmt.Sprintf("hypercube(%d)", dim), n)
	for i := 0; i < n; i++ {
		for b := 0; b < dim; b++ {
			a.addLink(ProcID(i), ProcID(i^(1<<b)))
		}
	}
	a.buildRoutes()
	return a
}

// Torus returns a w×h 2D torus (a grid with wrap-around links), numbered
// row-major.
func Torus(w, h int) *Arch {
	a := newArch(fmt.Sprintf("torus(%dx%d)", w, h), w*h)
	id := func(x, y int) ProcID { return ProcID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			a.addLink(id(x, y), id((x+1)%w, y))
			a.addLink(id(x, y), id(x, (y+1)%h))
		}
	}
	a.buildRoutes()
	return a
}
