// Package serve is skipper-as-a-service: the long-lived control plane that
// turns the one-deployment-per-process executive into a multi-job scheduler
// over an elastic worker fleet. One Server owns three listeners — the HTTP
// API clients submit jobs to, the fleet control channel workers join over
// (distrib.FleetMsg lines), and a shared nettransport.FleetHub carrying
// every job's frame traffic in fingerprint-salted sessions. Jobs queue
// FIFO, run concurrently up to MaxRunning, survive worker deaths by
// re-running from scratch under a fresh session salt (deterministic specs
// therefore reproduce bit-identical results), and cancel cleanly through
// the executive's abort path.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"skipper/internal/arch"
	"skipper/internal/distrib"
	"skipper/internal/exec"
	"skipper/internal/exec/memtransport"
	"skipper/internal/exec/nettransport"
	"skipper/internal/obsv"
	"skipper/internal/track"
)

// Job statuses, in lifecycle order. A job is terminal in done, failed or
// cancelled; queued→running can repeat (re-queue after a worker death).
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// ErrQueueFull rejects a submission when the FIFO queue is at QueueLimit;
// the HTTP layer maps it to 429.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrClosed rejects submissions to a control plane that is shutting down.
var ErrClosed = errors.New("serve: server closed")

// Config tunes a Server. The zero value works: every listener picks a free
// loopback port and the queue/concurrency limits take their defaults.
type Config struct {
	// HTTPAddr is the job API bind address (default "127.0.0.1:0"). The
	// observability endpoints (/metrics, /healthz, /varz) share it.
	HTTPAddr string
	// FleetAddr is the worker control-channel bind address (default
	// "127.0.0.1:0"; "unix:" paths work).
	FleetAddr string
	// HubAddr is the frame-traffic fleet hub bind address (default
	// "127.0.0.1:0"; "unix:" paths work).
	HubAddr string
	// QueueLimit bounds the FIFO queue (default 64); submissions beyond it
	// are rejected with ErrQueueFull.
	QueueLimit int
	// MaxRunning caps concurrently executing jobs (default 8).
	MaxRunning int
	// JobRequeues is how many times one job may be re-run from scratch
	// after a worker death before it is declared failed (default 2).
	JobRequeues int
	// JobTimeout is the per-attempt executive watchdog (default 2m).
	JobTimeout time.Duration
	// MaxRetries, TaskDeadline, Heartbeat and SpeculateAfter are the
	// deployment-wide executive tuning applied to every job (distrib.Spec
	// fields). A job may override SpeculateAfter via its speculateAfterMs
	// field.
	MaxRetries     int
	TaskDeadline   time.Duration
	Heartbeat      time.Duration
	SpeculateAfter time.Duration
	// InProcess runs jobs on the in-process executive instead of the fleet:
	// no workers, no network, every processor hosted by the server. The
	// scheduler (queue, limits, cancellation, statuses) is exercised
	// unchanged — the mode skipper-bench measures scheduler overhead with.
	InProcess bool
	// FlightDir arms the control plane's always-on flight recorder: hub-side
	// executive and transport events land in a bounded ring at all times, and
	// any fault — worker death, job re-queue, cancel, abort — auto-dumps the
	// last few seconds as a trace artifact (raw JSON, Chrome JSON, SVG) under
	// this directory. Empty disables it (library/test default); skipper-serve
	// defaults it on.
	FlightDir string
}

func (c *Config) fillDefaults() {
	if c.HTTPAddr == "" {
		c.HTTPAddr = "127.0.0.1:0"
	}
	if c.FleetAddr == "" {
		c.FleetAddr = "127.0.0.1:0"
	}
	if c.HubAddr == "" {
		c.HubAddr = "127.0.0.1:0"
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 64
	}
	if c.MaxRunning <= 0 {
		c.MaxRunning = 8
	}
	if c.JobRequeues < 0 {
		c.JobRequeues = 0
	} else if c.JobRequeues == 0 {
		c.JobRequeues = 2
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
}

// jobState is one job's full scheduler record.
type jobState struct {
	id       string
	job      distrib.Job
	status   string
	err      string
	salt     uint64
	requeues int
	workers  []string
	results  []track.Result
	digest   uint64
	mach     *exec.Machine
	// cancelled marks a user DELETE; workerDied marks a fleet-member death
	// observed on the control channel. Both abort the run through
	// Machine.Cancel — the flags decide whether the outcome is "cancelled"
	// or "re-queue/fail". placementFailed marks an attempt whose assignment
	// never reached its worker (dead before the run started): it re-queues
	// without burning the requeue budget.
	cancelled       bool
	workerDied      bool
	placementFailed bool
	freeRequeues    int
	done            chan struct{} // closed when the job reaches a terminal status
	submitted       time.Time
	enqueued        time.Time // last time the job (re-)entered the queue
	started         time.Time
	finished        time.Time
	// attempts collects a traced job's per-attempt timelines (nil for
	// untraced jobs); a re-queued job grows one record per dispatch.
	attempts []*jobAttempt
}

// jobAttempt is one traced attempt of a job: the hub-side recorder (live
// while the attempt runs, sealed into hub when it settles) plus whatever
// worker snapshots came home on done messages carrying the attempt's salt.
// Guarded by the server mu.
type jobAttempt struct {
	salt    uint64
	rec     *obsv.Recorder // live hub-side recorder, nil once sealed
	hub     *obsv.Trace    // sealed hub-side snapshot
	workers []*obsv.Trace  // per-worker snapshots, arrival order
}

// workerState is one fleet member as the control plane sees it.
type workerState struct {
	name  string
	conn  net.Conn
	encMu sync.Mutex
	enc   *json.Encoder
	// guarded by the server mu:
	lastSeen time.Time
	jobs     map[string]bool // job ids with assignments on this worker
	left     bool            // clean leave (vs death)
}

func (w *workerState) send(msg distrib.FleetMsg) error {
	w.encMu.Lock()
	defer w.encMu.Unlock()
	return w.enc.Encode(msg)
}

// Server is the control plane. Build with New, stop with Close.
type Server struct {
	cfg Config

	hub     *nettransport.FleetHub
	fleetLn net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	mu      sync.Mutex
	workers map[string]*workerState
	jobs    map[string]*jobState
	order   []string // job ids in submission order, for GET /jobs
	queue   []*jobState
	running int
	seq     uint64
	saltSeq uint64
	closing bool

	kick chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup

	metrics       *obsv.Metrics
	mSubmitted    *obsv.Counter
	mDone         *obsv.Counter
	mFailed       *obsv.Counter
	mCancelled    *obsv.Counter
	mRejected     *obsv.Counter
	mRequeues     *obsv.Counter
	mJoined       *obsv.Counter
	mWorkersDead  *obsv.Counter
	mWorkerErrors *obsv.Counter
	mSpeculations *obsv.Counter
	mSpecWins     *obsv.Counter
	mFalseSusp    *obsv.Counter
	hJobSeconds   *obsv.Histogram
	hQueueWait    *obsv.Histogram
	stageLat      func(stage int, seconds float64)

	// flight is the always-on flight recorder (nil unless Config.FlightDir).
	flight *obsv.Flight
}

// New builds and starts a control plane: listeners bound, scheduler
// running, ready for workers and submissions.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	s := &Server{
		cfg:     cfg,
		workers: map[string]*workerState{},
		jobs:    map[string]*jobState{},
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	s.initMetrics()
	if cfg.FlightDir != "" {
		s.flight = obsv.NewFlight(cfg.FlightDir, "serve", obsv.FlightOptions{
			Procs: 16,
			Extra: s.liveAttemptTraces,
		})
	}

	var hubOpts []nettransport.Option
	if cfg.Heartbeat > 0 {
		hubOpts = append(hubOpts, nettransport.WithHeartbeat(cfg.Heartbeat))
	}
	hub, err := nettransport.NewFleetHub(cfg.HubAddr, hubOpts...)
	if err != nil {
		return nil, fmt.Errorf("serve: hub: %w", err)
	}
	s.hub = hub

	if !cfg.InProcess {
		network, address := splitAddr(cfg.FleetAddr)
		ln, err := net.Listen(network, address)
		if err != nil {
			hub.Close()
			return nil, fmt.Errorf("serve: fleet listener: %w", err)
		}
		s.fleetLn = ln
		s.wg.Add(1)
		go s.acceptFleet()
	}

	if err := s.startHTTP(); err != nil {
		s.shutdownListeners()
		return nil, err
	}

	s.wg.Add(1)
	go s.scheduler()
	return s, nil
}

func splitAddr(addr string) (network, address string) {
	if strings.HasPrefix(addr, "unix:") {
		return "unix", strings.TrimPrefix(addr, "unix:")
	}
	return "tcp", addr
}

func (s *Server) initMetrics() {
	m := obsv.NewMetrics()
	s.metrics = m
	s.mSubmitted = m.Counter("skipper_serve_jobs_submitted_total", "jobs accepted into the queue")
	s.mDone = m.Counter("skipper_serve_jobs_done_total", "jobs completed successfully")
	s.mFailed = m.Counter("skipper_serve_jobs_failed_total", "jobs that exhausted their re-queues or hit a non-recoverable error")
	s.mCancelled = m.Counter("skipper_serve_jobs_cancelled_total", "jobs cancelled by DELETE")
	s.mRejected = m.Counter("skipper_serve_jobs_rejected_total", "submissions refused because the queue was full")
	s.mRequeues = m.Counter("skipper_serve_job_requeues_total", "job re-runs triggered by worker deaths")
	s.mJoined = m.Counter("skipper_serve_workers_joined_total", "workers that completed the fleet join handshake")
	s.mWorkersDead = m.Counter("skipper_serve_workers_dead_total", "workers whose control channel dropped without a leave")
	s.mWorkerErrors = m.Counter("skipper_serve_assignment_errors_total", "failed assignment completions reported by workers")
	s.mSpeculations = m.Counter("skipper_task_speculations_total", "straggler tasks speculatively duplicated onto idle workers, summed over job attempts")
	s.mSpecWins = m.Counter("skipper_speculation_wins_total", "speculative duplicates whose reply beat the original worker's, summed over job attempts")
	s.mFalseSusp = m.Counter("skipper_false_suspicions_total", "deadline-suspected workers whose reply later arrived, summed over job attempts")
	s.hJobSeconds = m.Histogram("skipper_serve_job_seconds", "wall-clock duration of successful jobs",
		[]float64{0.01, 0.05, 0.25, 1, 5, 30, 120})
	s.hQueueWait = m.Histogram("skipper_serve_queue_wait_seconds",
		"time jobs spent queued before each dispatch",
		[]float64{0.001, 0.01, 0.05, 0.25, 1, 5, 30})
	s.stageLat = m.StageObserver("skipper_pipeline_stage",
		"Pipelined itermem stage busy time per frame in seconds.")
	m.GaugeFunc("skipper_serve_jobs_queued", "jobs waiting in the FIFO queue", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.queue))
	})
	m.GaugeFunc("skipper_serve_jobs_running", "jobs currently executing", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.running)
	})
	m.GaugeFunc("skipper_serve_workers_live", "fleet members currently joined", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.workers))
	})
	m.GaugeFunc("skipper_serve_hub_sessions", "active frame-traffic sessions on the fleet hub", func() float64 {
		return float64(s.hub.SessionCount())
	})
}

// Addr returns the HTTP API address; FleetAddr and HubAddr the worker and
// frame listeners (scheme-prefixed when unix).
func (s *Server) Addr() string { return s.httpLn.Addr().String() }

// FleetAddr is the bound worker control-channel address ("" in InProcess mode).
func (s *Server) FleetAddr() string {
	if s.fleetLn == nil {
		return ""
	}
	if s.fleetLn.Addr().Network() == "unix" {
		return "unix:" + s.fleetLn.Addr().String()
	}
	return s.fleetLn.Addr().String()
}

// HubAddr is the bound frame-traffic hub address.
func (s *Server) HubAddr() string { return s.hub.Addr() }

func (s *Server) kickScheduler() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Flight exposes the control plane's flight recorder (nil unless armed).
func (s *Server) Flight() *obsv.Flight { return s.flight }

// flightRecord lands a scheduler-level event in the flight ring; fault
// kinds trigger an auto-dump through the recorder's hook.
func (s *Server) flightRecord(kind obsv.EventKind, peer int32, arg int64) {
	if s.flight != nil {
		s.flight.Recorder().Record(-1, kind, 0, peer, arg)
	}
}

// liveAttemptTraces snapshots the running traced attempts' hub-side
// recorders at flight-dump time, so a fault artifact carries the in-flight
// job timelines alongside the scheduler's own ring. Best-effort mid-run
// snapshots — fine for a post-mortem artifact.
func (s *Server) liveAttemptTraces() []*obsv.Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*obsv.Trace
	for _, st := range s.jobs {
		if st.status != StatusRunning || len(st.attempts) == 0 {
			continue
		}
		if att := st.attempts[len(st.attempts)-1]; att.rec != nil {
			out = append(out, att.rec.Snapshot())
		}
	}
	return out
}

// Submit validates and enqueues a job, returning its id. ErrQueueFull when
// the FIFO is at QueueLimit, ErrClosed during shutdown.
func (s *Server) Submit(job distrib.Job) (string, error) {
	if err := job.Validate(); err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return "", ErrClosed
	}
	if len(s.queue) >= s.cfg.QueueLimit {
		s.mu.Unlock()
		s.mRejected.Inc()
		return "", ErrQueueFull
	}
	s.seq++
	now := time.Now()
	st := &jobState{
		id:        fmt.Sprintf("j%d", s.seq),
		job:       job,
		status:    StatusQueued,
		done:      make(chan struct{}),
		submitted: now,
		enqueued:  now,
	}
	s.jobs[st.id] = st
	s.order = append(s.order, st.id)
	s.queue = append(s.queue, st)
	s.mu.Unlock()
	s.mSubmitted.Inc()
	s.kickScheduler()
	return st.id, nil
}

// Cancel aborts a job: a queued one leaves the queue immediately, a running
// one is aborted through the executive (every blocked communication
// unblocks, fleet workers see the abort broadcast). Terminal jobs are left
// untouched (reported by the bool).
func (s *Server) Cancel(id string) (bool, error) {
	s.mu.Lock()
	st, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return false, fmt.Errorf("serve: no job %q", id)
	}
	switch st.status {
	case StatusQueued:
		for i, q := range s.queue {
			if q == st {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		st.cancelled = true
		st.status = StatusCancelled
		st.finished = time.Now()
		close(st.done)
		s.mu.Unlock()
		s.mCancelled.Inc()
		s.kickScheduler()
		return true, nil
	case StatusRunning:
		st.cancelled = true
		mach := st.mach
		s.mu.Unlock()
		s.flightRecord(obsv.EvCancel, -1, 0)
		if mach != nil {
			mach.Cancel()
		}
		return true, nil
	}
	s.mu.Unlock()
	return false, nil
}

// Wait blocks until the job reaches a terminal status or d elapses.
func (s *Server) Wait(id string, d time.Duration) error {
	s.mu.Lock()
	st, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: no job %q", id)
	}
	select {
	case <-st.done:
		return nil
	case <-time.After(d):
		return fmt.Errorf("serve: job %s still %s after %v", id, s.snapshotJob(st).Status, d)
	}
}

// Results returns a terminal job's tracking results (nil while running) —
// the in-process channel equivalence tests compare bit for bit.
func (s *Server) Results(id string) []track.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.jobs[id]
	if !ok {
		return nil
	}
	return st.results
}

// scheduler is the dispatch loop: every kick (submission, worker join, job
// completion, cancellation) drains the queue as far as limits and fleet
// capacity allow.
func (s *Server) scheduler() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.kick:
		}
		for s.dispatchOne() {
		}
	}
}

// dispatchOne starts the queue head if a slot and (fleet mode) at least one
// live worker are available. FIFO is strict: a head job that cannot place
// blocks the queue rather than being overtaken.
func (s *Server) dispatchOne() bool {
	s.mu.Lock()
	if s.closing || len(s.queue) == 0 || s.running >= s.cfg.MaxRunning {
		s.mu.Unlock()
		return false
	}
	st := s.queue[0]
	var placement map[*workerState][]int
	if !s.cfg.InProcess && st.job.Procs > 1 {
		live := make([]*workerState, 0, len(s.workers))
		for _, w := range s.workers {
			live = append(live, w)
		}
		if len(live) == 0 {
			s.mu.Unlock()
			return false
		}
		// Deterministic worker order (map iteration is not), so placement
		// depends only on fleet membership.
		for i := 1; i < len(live); i++ {
			for j := i; j > 0 && live[j-1].name > live[j].name; j-- {
				live[j-1], live[j] = live[j], live[j-1]
			}
		}
		placement = map[*workerState][]int{}
		for p := 1; p < st.job.Procs; p++ {
			w := live[(p-1)%len(live)]
			placement[w] = append(placement[w], p)
		}
		st.workers = st.workers[:0]
		for w := range placement {
			st.workers = append(st.workers, w.name)
			w.jobs[st.id] = true
		}
	}
	s.queue = s.queue[1:]
	st.status = StatusRunning
	st.started = time.Now()
	wait := st.started.Sub(st.enqueued)
	st.workerDied = false
	st.placementFailed = false
	s.saltSeq++
	st.salt = s.saltSeq
	s.running++
	s.mu.Unlock()
	s.hQueueWait.Observe(wait.Seconds())

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.runJob(st, placement)
	}()
	return true
}

// runJob executes one attempt of a job and settles its outcome: done,
// cancelled, re-queued (worker death, budget left) or failed.
func (s *Server) runJob(st *jobState, placement map[*workerState][]int) {
	results, err := s.executeJob(st, placement)

	s.mu.Lock()
	cancelled := st.cancelled
	workerDied := st.workerDied
	placementFailed := st.placementFailed
	for _, name := range st.workers {
		if w, ok := s.workers[name]; ok {
			delete(w.jobs, st.id)
		}
	}
	s.mu.Unlock()

	switch {
	case err == nil:
		s.finish(st, StatusDone, "", results)
		s.mDone.Inc()
		s.hJobSeconds.Observe(time.Since(st.started).Seconds())
	case cancelled || (errors.Is(err, exec.ErrCancelled) && !workerDied):
		s.finish(st, StatusCancelled, exec.ErrCancelled.Error(), nil)
		s.mCancelled.Inc()
	default:
		// Worker death or any other mid-run failure: deterministic re-run
		// from scratch under a fresh salt, up to the budget. A failed
		// placement re-queues for free — the run never started.
		s.mu.Lock()
		requeue := !s.closing && (placementFailed || st.requeues < s.cfg.JobRequeues)
		var attempt int
		if requeue {
			if !placementFailed {
				st.requeues++
			}
			attempt = st.requeues
			st.status = StatusQueued
			st.err = err.Error()
			st.workers = nil
			st.mach = nil
			st.enqueued = time.Now()
			s.queue = append(s.queue, st)
			s.running--
		}
		s.mu.Unlock()
		if requeue {
			s.mRequeues.Inc()
			// A fault kind: the flight recorder auto-dumps the scheduler's
			// last few seconds (plus in-flight attempt timelines) on re-queue.
			s.flightRecord(obsv.EvRequeue, -1, int64(attempt))
			s.kickScheduler()
			return
		}
		s.finish(st, StatusFailed, err.Error(), nil)
		s.mFailed.Inc()
	}
	s.kickScheduler()
}

// executeJob runs one attempt: compile, open the job's salted session on
// the shared hub, assign remote processors to the fleet, host processor 0.
func (s *Server) executeJob(st *jobState, placement map[*workerState][]int) ([]track.Result, error) {
	sp := distrib.Spec{
		Job:            st.job,
		MaxRetries:     s.cfg.MaxRetries,
		TaskDeadline:   s.cfg.TaskDeadline,
		Heartbeat:      s.cfg.Heartbeat,
		SpeculateAfter: s.cfg.SpeculateAfter,
	}
	sched, reg, rec, err := sp.Compile()
	if err != nil {
		return nil, err
	}

	var mach *exec.Machine
	var sess *nettransport.Session
	var cleanup func()
	var hubProcs []int
	if s.cfg.InProcess || st.job.Procs == 1 {
		t := memtransport.New(sched.Arch)
		local := make([]arch.ProcID, sched.Arch.N)
		for i := range local {
			local[i] = arch.ProcID(i)
			hubProcs = append(hubProcs, i)
		}
		mach = exec.NewMachineOn(sched, reg, t, local)
		cleanup = func() { t.Close() }
	} else {
		sess, err = s.hub.OpenSession(sched.Arch, sched.Fingerprint()^st.salt, []arch.ProcID{0})
		if err != nil {
			return nil, err
		}
		mach = exec.NewMachineOn(sched, reg, sess, []arch.ProcID{0})
		cleanup = func() { sess.Close() }
		hubProcs = []int{0}
	}
	mach.DeterministicFarm = sp.Deterministic
	mach.FT = sp.FT()
	mach.Pipeline = sp.Pipeline
	mach.PipelineDepth = sp.PipelineDepth
	mach.StageLatency = s.stageLat
	defer cleanup()

	// A traced job records the hub-side attempt into its own full-size ring;
	// the snapshot seals into the attempt record when this attempt settles
	// (before cleanup closes the session), and worker snapshots merge in as
	// their done messages arrive. Faults route through the flight recorder's
	// dump path either way.
	if st.job.Trace {
		rec := obsv.NewRecorder(sched.Arch.N, 0)
		if s.flight != nil {
			rec.SetFaultHook(s.flight.Trigger)
		}
		if sess != nil {
			sess.SetTrace(rec)
		}
		mach.Trace = rec
		att := &jobAttempt{salt: st.salt, rec: rec}
		s.mu.Lock()
		st.attempts = append(st.attempts, att)
		s.mu.Unlock()
		defer func() {
			tr := rec.Snapshot()
			if len(tr.Procs) == 0 {
				tr.Procs = hubProcs
			}
			tr.Meta = sp.TraceMeta()
			tr.Meta["job"] = st.id
			tr.Meta["role"] = "hub"
			s.mu.Lock()
			att.hub = tr
			att.rec = nil
			s.mu.Unlock()
		}()
	}

	s.mu.Lock()
	if st.cancelled {
		s.mu.Unlock()
		return nil, exec.ErrCancelled
	}
	st.mach = mach
	s.mu.Unlock()

	for w, procs := range placement {
		msg := distrib.FleetMsg{
			Type:             distrib.MsgRun,
			JobID:            st.id,
			Salt:             st.salt,
			Procs:            procs,
			HubAddr:          s.hub.Addr(),
			Job:              &st.job,
			MaxRetries:       s.cfg.MaxRetries,
			TaskDeadlineMS:   s.cfg.TaskDeadline.Milliseconds(),
			HeartbeatMS:      s.cfg.Heartbeat.Milliseconds(),
			SpeculateAfterMS: s.cfg.SpeculateAfter.Milliseconds(),
			TimeoutMS:        s.cfg.JobTimeout.Milliseconds(),
		}
		if err := w.send(msg); err != nil {
			// The worker died between placement and assignment (the
			// control-channel teardown races this dispatch). Evict it now,
			// mark the attempt as a free re-queue — the run never started,
			// so it must not burn the budget — and abort so this attempt
			// does not wait out the whole watchdog.
			s.mu.Lock()
			st.workerDied = true
			st.placementFailed = true
			s.mu.Unlock()
			s.removeWorker(w, false)
			mach.Cancel()
			break
		}
	}

	res, runErr := mach.RunWithTimeout(st.job.Iters, s.cfg.JobTimeout)
	if res != nil {
		// Speculation runs on the master — hosted here — so the hub machine
		// holds the whole deployment's straggler accounting.
		s.mSpeculations.Add(res.Speculations)
		s.mSpecWins.Add(res.SpeculationWins)
		s.mFalseSusp.Add(res.FalseSuspicions)
	}
	if runErr != nil {
		// A failed attempt whose deployment never became ready — the
		// assigned workers died before attaching — never actually started,
		// so it re-queues without burning the budget (up to a hard cap, so
		// a pathologically broken fleet cannot loop the job forever).
		if sess != nil && !sess.Ready() {
			s.mu.Lock()
			if !st.cancelled && st.freeRequeues < maxFreeRequeues {
				st.freeRequeues++
				st.placementFailed = true
			}
			s.mu.Unlock()
		}
		return nil, runErr
	}
	return rec.Results, nil
}

// maxFreeRequeues bounds never-became-ready re-queues per job.
const maxFreeRequeues = 8

// finish settles a terminal status under the lock and wakes waiters.
func (s *Server) finish(st *jobState, status, errMsg string, results []track.Result) {
	s.mu.Lock()
	st.status = status
	st.err = errMsg
	st.results = results
	if results != nil {
		st.digest = Digest(results)
	}
	st.finished = time.Now()
	s.running--
	close(st.done)
	s.mu.Unlock()
}

// acceptFleet owns the worker control listener.
func (s *Server) acceptFleet() {
	defer s.wg.Done()
	for {
		c, err := s.fleetLn.Accept()
		if err != nil {
			return // listener closed on shutdown
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveWorker(c)
		}()
	}
}

// serveWorker handles one fleet member's control channel for its lifetime:
// join handshake, ping/done bookkeeping, then either a clean leave or a
// death (EOF without leave), which marks every job with an assignment on
// the worker for abort-and-re-queue.
func (s *Server) serveWorker(c net.Conn) {
	dec := json.NewDecoder(c)
	w := &workerState{conn: c, enc: json.NewEncoder(c), jobs: map[string]bool{}}

	var join distrib.FleetMsg
	if err := dec.Decode(&join); err != nil || join.Type != distrib.MsgJoin || join.Name == "" {
		w.send(distrib.FleetMsg{Type: distrib.MsgJoin, Error: "serve: expected a join message with a name"})
		c.Close()
		return
	}
	w.name = join.Name
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		w.send(distrib.FleetMsg{Type: distrib.MsgStop})
		c.Close()
		return
	}
	if _, dup := s.workers[w.name]; dup {
		s.mu.Unlock()
		w.send(distrib.FleetMsg{Type: distrib.MsgJoin, Error: fmt.Sprintf("serve: worker %q already joined", w.name)})
		c.Close()
		return
	}
	w.lastSeen = time.Now()
	s.workers[w.name] = w
	s.mu.Unlock()
	if err := w.send(distrib.FleetMsg{Type: distrib.MsgWelcome}); err != nil {
		s.removeWorker(w, false)
		c.Close()
		return
	}
	s.mJoined.Inc()
	s.kickScheduler()

	for {
		var msg distrib.FleetMsg
		if err := dec.Decode(&msg); err != nil {
			s.removeWorker(w, w.left)
			c.Close()
			return
		}
		switch msg.Type {
		case distrib.MsgPing:
			s.mu.Lock()
			w.lastSeen = time.Now()
			s.mu.Unlock()
		case distrib.MsgDone:
			if msg.Error != "" {
				s.mWorkerErrors.Inc()
			}
			s.mu.Lock()
			delete(w.jobs, msg.JobID)
			// A traced assignment ships its event snapshot home; attach it to
			// the attempt whose salt it echoes (a requeued job has several).
			if msg.Trace != nil {
				if st, ok := s.jobs[msg.JobID]; ok {
					for _, att := range st.attempts {
						if att.salt == msg.Salt {
							att.workers = append(att.workers, msg.Trace)
							break
						}
					}
				}
			}
			s.mu.Unlock()
		case distrib.MsgLeave:
			w.left = true
			s.removeWorker(w, true)
			c.Close()
			return
		}
	}
}

// removeWorker unregisters a fleet member. A death (clean=false) marks its
// assigned jobs and aborts their machines so the scheduler re-queues them
// now instead of waiting out the watchdog; the data-plane failure (EOF on
// the job session) races this and either one settles the attempt.
func (s *Server) removeWorker(w *workerState, clean bool) {
	s.mu.Lock()
	if s.workers[w.name] != w {
		s.mu.Unlock()
		return
	}
	delete(s.workers, w.name)
	var aborts []*exec.Machine
	if !clean {
		for id := range w.jobs {
			if st, ok := s.jobs[id]; ok && st.status == StatusRunning {
				st.workerDied = true
				if st.mach != nil {
					aborts = append(aborts, st.mach)
				}
			}
		}
	}
	s.mu.Unlock()
	if !clean {
		s.mWorkersDead.Inc()
		// A fault kind: auto-dumps the flight ring with the death on record.
		s.flightRecord(obsv.EvPeerDown, -1, int64(len(aborts)))
		for _, m := range aborts {
			m.Cancel()
		}
	}
	s.kickScheduler()
}

// shutdownListeners closes every listener; safe to call repeatedly.
func (s *Server) shutdownListeners() {
	if s.fleetLn != nil {
		s.fleetLn.Close()
	}
	if s.hub != nil {
		s.hub.Close()
	}
}

// Close drains the control plane: no new submissions, running jobs
// aborted, workers told to stop, listeners released.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil
	}
	s.closing = true
	// Queued jobs will never run now.
	for _, st := range s.queue {
		st.status = StatusCancelled
		st.err = ErrClosed.Error()
		st.finished = time.Now()
		close(st.done)
	}
	s.queue = nil
	var aborts []*exec.Machine
	var ws []*workerState
	for _, st := range s.jobs {
		if st.status == StatusRunning && st.mach != nil {
			aborts = append(aborts, st.mach)
		}
	}
	for _, w := range s.workers {
		ws = append(ws, w)
	}
	s.mu.Unlock()

	for _, m := range aborts {
		m.Cancel()
	}
	for _, w := range ws {
		w.send(distrib.FleetMsg{Type: distrib.MsgStop})
	}
	close(s.stop)
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	s.shutdownListeners()
	// Worker channels close on their own once the stop lands or the conns
	// drop; nudge the stragglers.
	time.AfterFunc(2*time.Second, func() {
		s.mu.Lock()
		for _, w := range s.workers {
			w.conn.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	if s.flight != nil {
		s.flight.Close()
	}
	return nil
}

// Digest folds tracking results into one FNV-1a value — the cheap
// bit-identity token /jobs responses and the CI smoke test compare, exactly
// the fields resultsIdentical checks.
func Digest(rs []track.Result) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(len(rs)))
	for _, r := range rs {
		put(uint64(int64(r.Frame)))
		if r.Tracking {
			put(1)
		} else {
			put(0)
		}
		put(uint64(int64(r.Vehicles)))
		put(uint64(len(r.Marks)))
		for _, mk := range r.Marks {
			put(math.Float64bits(mk.CX))
			put(math.Float64bits(mk.CY))
			put(uint64(int64(mk.Area)))
			put(uint64(int64(mk.BBox.X0)))
			put(uint64(int64(mk.BBox.Y0)))
			put(uint64(int64(mk.BBox.X1)))
			put(uint64(int64(mk.BBox.Y1)))
		}
	}
	return h.Sum64()
}
