package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"skipper/internal/distrib"
	"skipper/internal/obsv"
)

// JobView is the API representation of one job.
//
//	POST   /jobs      — body distrib.Job, reply 202 {"id":...} (429 queue full)
//	GET    /jobs      — every job, submission order
//	GET    /jobs/{id} — one job
//	DELETE /jobs/{id} — cancel (queued: immediate; running: executive abort)
//
// /metrics, /healthz and /varz ride the same listener.
type JobView struct {
	ID     string      `json:"id"`
	Status string      `json:"status"`
	Spec   distrib.Job `json:"spec"`
	// Workers are the fleet members hosting the job's remote processors.
	Workers []string `json:"workers,omitempty"`
	// Requeues counts re-runs forced by worker deaths.
	Requeues int    `json:"requeues,omitempty"`
	Error    string `json:"error,omitempty"`
	// Frames and Digest summarize a done job's results: iteration count and
	// the FNV-1a fold of every tracked mark — equal digests mean
	// bit-identical tracking output.
	Frames int    `json:"frames,omitempty"`
	Digest string `json:"digest,omitempty"`
	// Vehicles is the number of locked vehicles in the final frame.
	Vehicles  int    `json:"vehicles,omitempty"`
	ElapsedMS int64  `json:"elapsedMs,omitempty"`
	Submitted string `json:"submitted,omitempty"`
	// Started is the last dispatch time (re-dispatches overwrite it); its
	// ordering across jobs is the FIFO evidence the scheduler tests pin.
	Started string `json:"started,omitempty"`
}

// snapshotJob renders a job under the server lock.
func (s *Server) snapshotJob(st *jobState) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotJobLocked(st)
}

func (s *Server) snapshotJobLocked(st *jobState) JobView {
	v := JobView{
		ID:        st.id,
		Status:    st.status,
		Spec:      st.job,
		Requeues:  st.requeues,
		Error:     st.err,
		Submitted: st.submitted.Format(time.RFC3339Nano),
	}
	v.Workers = append(v.Workers, st.workers...)
	sort.Strings(v.Workers)
	if st.status == StatusDone {
		v.Frames = len(st.results)
		v.Digest = fmt.Sprintf("%016x", st.digest)
		if n := len(st.results); n > 0 {
			v.Vehicles = st.results[n-1].Vehicles
		}
	}
	if !st.started.IsZero() {
		v.Started = st.started.Format(time.RFC3339Nano)
	}
	if !st.finished.IsZero() && !st.started.IsZero() {
		v.ElapsedMS = st.finished.Sub(st.started).Milliseconds()
	}
	return v
}

// Job returns the API view of one job.
func (s *Server) Job(id string) (JobView, bool) {
	s.mu.Lock()
	st, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, false
	}
	return s.snapshotJob(st), true
}

// JobTrace assembles a traced job's per-attempt timelines, oldest attempt
// first: each entry merges the hub-side snapshot (or a live mid-run
// snapshot) with every worker snapshot that came home for that attempt,
// clock-aligned onto the hub's wall clock. ok reports whether the job
// exists; a job submitted without "trace":true yields an empty slice.
func (s *Server) JobTrace(id string) ([]*obsv.Trace, bool) {
	s.mu.Lock()
	st, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	type attSnap struct {
		salt   uint64
		traces []*obsv.Trace
		sealed bool
	}
	snaps := make([]attSnap, 0, len(st.attempts))
	for _, att := range st.attempts {
		sn := attSnap{salt: att.salt, sealed: att.hub != nil}
		if att.hub != nil {
			sn.traces = append(sn.traces, att.hub)
		} else if att.rec != nil {
			sn.traces = append(sn.traces, att.rec.Snapshot())
		}
		sn.traces = append(sn.traces, att.workers...)
		snaps = append(snaps, sn)
	}
	s.mu.Unlock()

	out := make([]*obsv.Trace, 0, len(snaps))
	for i, sn := range snaps {
		m := obsv.Merge(sn.traces)
		if m == nil {
			continue
		}
		if m.Meta == nil {
			m.Meta = map[string]string{}
		}
		m.Meta["job"] = id
		m.Meta["attempt"] = fmt.Sprintf("%d", i+1)
		m.Meta["salt"] = fmt.Sprintf("%d", sn.salt)
		if !sn.sealed {
			m.Meta["partial"] = "true" // attempt still running at snapshot time
		}
		out = append(out, m)
	}
	return out, true
}

// Jobs returns every job in submission order.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.snapshotJobLocked(s.jobs[id]))
	}
	return out
}

func (s *Server) startHTTP() error {
	mux := obsv.DebugMux(s.metrics, s.health, s.varz)
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
	if err != nil {
		return fmt.Errorf("serve: http listener: %w", err)
	}
	s.httpLn = ln
	s.httpSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.httpSrv.Serve(ln)
	}()
	return nil
}

func (s *Server) health() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return ErrClosed
	}
	return nil
}

// varz is the free-form status page: the fleet roster and every job.
func (s *Server) varz() map[string]any {
	s.mu.Lock()
	workers := make([]map[string]any, 0, len(s.workers))
	names := make([]string, 0, len(s.workers))
	for name := range s.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := s.workers[name]
		jobs := make([]string, 0, len(w.jobs))
		for id := range w.jobs {
			jobs = append(jobs, id)
		}
		sort.Strings(jobs)
		workers = append(workers, map[string]any{
			"name":          name,
			"jobs":          jobs,
			"lastSeenMsAgo": time.Since(w.lastSeen).Milliseconds(),
		})
	}
	// Per-session rows: one per running job attempt, so /varz shows what
	// each hub session is (job, attempt, salt, placement, tracing), not just
	// the roster aggregate.
	sessions := make([]map[string]any, 0, s.running)
	for _, id := range s.order {
		st := s.jobs[id]
		if st.status != StatusRunning {
			continue
		}
		ws := append([]string(nil), st.workers...)
		sort.Strings(ws)
		row := map[string]any{
			"job":     st.id,
			"attempt": st.requeues + 1,
			"salt":    st.salt,
			"workers": ws,
			"traced":  st.job.Trace,
		}
		if !st.started.IsZero() {
			row["runningMs"] = time.Since(st.started).Milliseconds()
		}
		sessions = append(sessions, row)
	}
	queued := len(s.queue)
	running := s.running
	s.mu.Unlock()
	return map[string]any{
		"fleet": map[string]any{
			"workers":  workers,
			"hubAddr":  s.hub.Addr(),
			"sessions": s.hub.SessionCount(),
		},
		"sessions": sessions,
		"jobs":     s.Jobs(),
		"queued":   queued,
		"running":  running,
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// handleJobs serves the collection: POST submits, GET lists.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var job distrib.Job
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&job); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
			return
		}
		id, err := s.Submit(job)
		switch {
		case errors.Is(err, ErrQueueFull):
			writeErr(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrClosed):
			writeErr(w, http.StatusServiceUnavailable, err)
		case err != nil:
			writeErr(w, http.StatusBadRequest, err)
		default:
			writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "status": StatusQueued})
		}
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.Jobs())
	default:
		w.Header().Set("Allow", "GET, POST")
		writeErr(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
	}
}

// handleJob serves one job: GET inspects, DELETE cancels, and the
// /jobs/{id}/trace and /jobs/{id}/trace.svg sub-resources serve a traced
// job's merged timeline (Chrome trace JSON with one pid per attempt, and
// the measured chronogram).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	if sub := ""; strings.Contains(id, "/") {
		if i := strings.IndexByte(id, '/'); i >= 0 {
			id, sub = id[:i], id[i+1:]
		}
		if id == "" || (sub != "trace" && sub != "trace.svg") {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
			return
		}
		s.handleJobTrace(w, r, id, sub == "trace.svg")
		return
	}
	if id == "" {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	switch r.Method {
	case http.MethodGet:
		v, ok := s.Job(id)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
			return
		}
		writeJSON(w, http.StatusOK, v)
	case http.MethodDelete:
		changed, err := s.Cancel(id)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		v, _ := s.Job(id)
		if !changed {
			// Already terminal: idempotent no-op, report the state as is.
			writeJSON(w, http.StatusConflict, v)
			return
		}
		writeJSON(w, http.StatusOK, v)
	default:
		w.Header().Set("Allow", "GET, DELETE")
		writeErr(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
	}
}

// handleJobTrace serves a traced job's merged timeline: Chrome trace JSON
// with one pid per attempt (svg=false) or the chronogram of every attempt
// on one clock (svg=true). 404 for unknown jobs, 409 for jobs submitted
// without tracing.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request, id string, svg bool) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		writeErr(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
		return
	}
	attempts, ok := s.JobTrace(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	if len(attempts) == 0 {
		writeErr(w, http.StatusConflict, fmt.Errorf("job %q was not submitted with \"trace\":true (or has not started)", id))
		return
	}
	if svg {
		merged := obsv.Merge(attempts)
		if merged == nil {
			writeErr(w, http.StatusConflict, fmt.Errorf("job %q has no trace events yet", id))
			return
		}
		w.Header().Set("Content-Type", "image/svg+xml")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, merged.ChronogramSVG(1200, 22))
		return
	}
	data, err := obsv.ChromeJSONAttempts(attempts)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}
