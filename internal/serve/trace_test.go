package serve

import (
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"skipper/internal/distrib"
	"skipper/internal/obsv"
)

// TestServeTracedJobSurvivesWorkerKill is the observability acceptance
// drill: a job submitted with "trace":true loses a worker mid-run, and
// without any restart or flag change the control plane yields (a) a
// fault-triggered flight-recorder artifact on disk, (b) a merged
// GET /jobs/{id}/trace covering both attempts, (c) the chronogram SVG, and
// (d) per-stage latency histograms plus queue-wait on /metrics.
func TestServeTracedJobSurvivesWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet kill drill")
	}
	flightDir := t.TempDir()
	s, err := New(Config{JobRequeues: 3, JobTimeout: 30 * time.Second, FlightDir: flightDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	startWorker(t, s, "w1")
	victim := startWorker(t, s, "w2")

	job := distrib.Job{Topology: "ring", Procs: 4, Width: 64, Height: 64,
		Vehicles: 1, Seed: 2, Iters: 4000, Deterministic: true,
		Pipeline: true, Trace: true}
	id := postJob(t, base, job)
	waitStatus(t, base, id, StatusRunning, 10*time.Second)
	time.Sleep(100 * time.Millisecond) // let frames start flowing
	victim.Kill()

	// The attempt settles, the job re-queues onto the survivor and finishes.
	if err := s.Wait(id, time.Minute); err != nil {
		t.Fatal(err)
	}
	v := getJob(t, base, id)
	if v.Status != StatusDone {
		t.Fatalf("traced job = %q (err %q), want done", v.Status, v.Error)
	}
	if v.Requeues < 1 {
		t.Fatalf("kill did not force a re-queue (requeues=%d)", v.Requeues)
	}

	// (a) The fault auto-dumped a flight artifact — no restart, no flag.
	var dump []string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if dump = s.Flight().LastDump(); len(dump) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(dump) == 0 {
		t.Fatal("worker kill never triggered a flight-recorder dump")
	}
	for _, p := range dump {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("flight artifact %s: %v", p, err)
		}
	}
	ftr, err := obsv.ReadFile(dump[0])
	if err != nil {
		t.Fatalf("flight artifact unreadable: %v", err)
	}
	if len(ftr.Events) == 0 {
		t.Fatal("flight artifact is empty")
	}
	var sawFault bool
	for _, ev := range ftr.Events {
		if ev.Kind.IsFault() {
			sawFault = true
			break
		}
	}
	if !sawFault {
		t.Fatal("flight artifact records no fault event")
	}

	// (b) The merged job trace covers both attempts, one chrome pid each.
	attempts, ok := s.JobTrace(id)
	if !ok {
		t.Fatal("job vanished")
	}
	if len(attempts) < 2 {
		t.Fatalf("job trace has %d attempts, want >= 2 (one per dispatch)", len(attempts))
	}
	resp, err := http.Get(base + "/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s/trace = %d: %s", id, resp.StatusCode, body)
	}
	ct, err := obsv.ParseChromeJSON(body)
	if err != nil {
		t.Fatalf("job trace does not parse: %v", err)
	}
	pids := map[int]bool{}
	for _, ev := range ct.TraceEvents {
		pids[ev.PID] = true
	}
	if len(pids) < 2 {
		t.Fatalf("job trace spans %d pids, want one per attempt (>= 2)", len(pids))
	}

	// (c) The chronogram endpoint renders.
	resp, err = http.Get(base + "/jobs/" + id + "/trace.svg")
	if err != nil {
		t.Fatal(err)
	}
	svg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(svg), "<svg") {
		t.Fatalf("GET trace.svg = %d, body %.60s", resp.StatusCode, svg)
	}

	// (d) Stage-level telemetry reached /metrics.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"skipper_pipeline_stage",
		"skipper_serve_queue_wait_seconds",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServeUntracedJobHasNoTrace pins the opt-in: a plain job yields 409 on
// the trace endpoint, and tracing one job does not leak into another.
func TestServeUntracedJobHasNoTrace(t *testing.T) {
	s, err := New(Config{InProcess: true, JobTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	plain := postJob(t, base, tinyJob(2))
	traced := tinyJob(2)
	traced.Trace = true
	tracedID := postJob(t, base, traced)
	for _, id := range []string{plain, tracedID} {
		if err := s.Wait(id, time.Minute); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(base + "/jobs/" + plain + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("untraced job trace = %d, want 409", resp.StatusCode)
	}

	attempts, ok := s.JobTrace(tracedID)
	if !ok || len(attempts) != 1 {
		t.Fatalf("traced in-process job: attempts=%d ok=%v, want 1", len(attempts), ok)
	}
	if len(attempts[0].Events) == 0 {
		t.Fatal("traced in-process job recorded no events")
	}
	if resp, err = http.Get(base + "/jobs/" + tracedID + "/trace"); err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced job trace = %d: %s", resp.StatusCode, body)
	}
	if _, err := obsv.ParseChromeJSON(body); err != nil {
		t.Fatal(err)
	}

	// Unknown sub-resources still 404.
	if resp, err = http.Get(base + "/jobs/" + tracedID + "/bogus"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus sub-resource = %d, want 404", resp.StatusCode)
	}
}
