package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"skipper/internal/distrib"
	"skipper/internal/track"
)

// resultsIdentical mirrors the harness E4 comparator: field-by-field
// equality of the tracking traces.
func resultsIdentical(a, b []track.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Tracking != y.Tracking || x.Vehicles != y.Vehicles || len(x.Marks) != len(y.Marks) {
			return false
		}
		for j := range x.Marks {
			if x.Marks[j] != y.Marks[j] {
				return false
			}
		}
	}
	return true
}

// startWorker joins an in-process fleet worker and serves assignments in
// the background, returning the handle (for Kill) and a done channel.
func startWorker(t *testing.T, s *Server, name string) *distrib.Worker {
	t.Helper()
	w, err := distrib.JoinFleet(s.FleetAddr(), name, 5*time.Second)
	if err != nil {
		t.Fatalf("worker %s join: %v", name, err)
	}
	go w.Serve()
	return w
}

// postJob submits a job over the real HTTP API and returns the assigned id.
func postJob(t *testing.T, baseURL string, job distrib.Job) string {
	t.Helper()
	body, _ := json.Marshal(job)
	resp, err := http.Post(baseURL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /jobs = %d: %s", resp.StatusCode, b)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

func getJob(t *testing.T, baseURL, id string) JobView {
	t.Helper()
	resp, err := http.Get(baseURL + "/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitStatus polls the HTTP API until the job reaches status (or any
// terminal one, if status is terminal and the job went elsewhere the caller
// sees it) or the deadline passes.
func waitStatus(t *testing.T, baseURL, id, status string, d time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		v := getJob(t, baseURL, id)
		if v.Status == status {
			return v
		}
		switch v.Status {
		case StatusDone, StatusFailed, StatusCancelled:
			t.Fatalf("job %s reached %q (err %q) while waiting for %q", id, v.Status, v.Error, status)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q after %v, want %q", id, v.Status, d, status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeEquivalenceElasticFleet is the acceptance drill of the control
// plane: two jobs with different topologies share one fleet, a worker joins
// mid-run and another is killed mid-run, and both jobs still finish with
// tracking output bit-identical to solo in-process runs of the same specs.
func TestServeEquivalenceElasticFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-job fleet run")
	}
	jobA := distrib.Job{Topology: "ring", Procs: 6, Width: 128, Height: 128,
		Vehicles: 2, Seed: 5, Iters: 12, Deterministic: true}
	jobB := distrib.Job{Topology: "star", Procs: 4, Width: 96, Height: 96,
		Vehicles: 1, Seed: 9, Iters: 10, Deterministic: true}

	// Solo references first: fresh scenes, plain in-process executive.
	recA, _, err := distrib.RunInProcess(distrib.Spec{Job: jobA}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	recB, _, err := distrib.RunInProcess(distrib.Spec{Job: jobB}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{JobTimeout: 30 * time.Second, JobRequeues: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	startWorker(t, s, "w1")
	w2 := startWorker(t, s, "w2")
	startWorker(t, s, "w3")

	idA := postJob(t, base, jobA)
	idB := postJob(t, base, jobB)
	waitStatus(t, base, idA, StatusRunning, 10*time.Second)
	waitStatus(t, base, idB, StatusRunning, 10*time.Second)

	// Elasticity, both directions: a fourth worker joins the live fleet and
	// an original member dies abruptly (severed sockets, no detach).
	startWorker(t, s, "w4")
	w2.Kill()

	if err := s.Wait(idA, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(idB, time.Minute); err != nil {
		t.Fatal(err)
	}
	vA, vB := getJob(t, base, idA), getJob(t, base, idB)
	if vA.Status != StatusDone {
		t.Fatalf("job A = %q (err %q), want done", vA.Status, vA.Error)
	}
	if vB.Status != StatusDone {
		t.Fatalf("job B = %q (err %q), want done", vB.Status, vB.Error)
	}
	if !resultsIdentical(recA.Results, s.Results(idA)) {
		t.Fatalf("job A results differ from solo in-process run (frames %d vs %d)",
			len(recA.Results), len(s.Results(idA)))
	}
	if !resultsIdentical(recB.Results, s.Results(idB)) {
		t.Fatalf("job B results differ from solo in-process run (frames %d vs %d)",
			len(recB.Results), len(s.Results(idB)))
	}
	if want := fmt.Sprintf("%016x", Digest(recA.Results)); vA.Digest != want {
		t.Fatalf("job A digest %s, want %s", vA.Digest, want)
	}
	if want := fmt.Sprintf("%016x", Digest(recB.Results)); vB.Digest != want {
		t.Fatalf("job B digest %s, want %s", vB.Digest, want)
	}

	// The fleet metrics saw the churn: one worker dead, jobs done.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"skipper_serve_jobs_done_total 2",
		"skipper_serve_workers_dead_total 1",
		"skipper_serve_workers_live 3",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func tinyJob(iters int) distrib.Job {
	return distrib.Job{Topology: "ring", Procs: 3, Width: 48, Height: 48,
		Vehicles: 1, Seed: 1, Iters: iters}
}

// TestServeBackpressureFIFO pins the queue semantics: a fleet with no
// workers parks every job in the queue (the deterministic way to fill it),
// submissions beyond QueueLimit get 429, and once a worker joins, dispatch
// order is strictly first-in-first-out.
func TestServeBackpressureFIFO(t *testing.T) {
	s, err := New(Config{MaxRunning: 1, QueueLimit: 3, JobTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	// No workers yet: all three sit queued, filling the FIFO.
	id1 := postJob(t, base, tinyJob(2))
	id2 := postJob(t, base, tinyJob(2))
	id3 := postJob(t, base, tinyJob(2))
	for _, id := range []string{id1, id2, id3} {
		if v := getJob(t, base, id); v.Status != StatusQueued {
			t.Fatalf("job %s = %q with no workers, want queued", id, v.Status)
		}
	}

	body, _ := json.Marshal(tinyJob(2))
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	over, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("POST beyond QueueLimit = %d (%s), want 429", resp.StatusCode, over)
	}

	// One worker drains the queue, one job at a time, in order.
	startWorker(t, s, "w1")
	for _, id := range []string{id1, id2, id3} {
		if err := s.Wait(id, time.Minute); err != nil {
			t.Fatal(err)
		}
		if v := getJob(t, base, id); v.Status != StatusDone {
			t.Fatalf("job %s = %q (err %q), want done", id, v.Status, v.Error)
		}
	}
	// With one slot, FIFO means start times follow submission order.
	var starts []time.Time
	for _, id := range []string{id1, id2, id3} {
		st, err := time.Parse(time.RFC3339Nano, getJob(t, base, id).Started)
		if err != nil {
			t.Fatal(err)
		}
		starts = append(starts, st)
	}
	if !starts[0].Before(starts[1]) || !starts[1].Before(starts[2]) {
		t.Fatalf("dispatch order not FIFO: %v", starts)
	}
}

// TestServeCancel pins both cancellation paths: a queued job leaves the
// queue without ever running, a running one is aborted through the
// executive and reports cancelled — and the freed slot dispatches the next
// job.
func TestServeCancel(t *testing.T) {
	s, err := New(Config{InProcess: true, MaxRunning: 1, JobTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	id1 := postJob(t, base, tinyJob(100000)) // ~5s: still mid-run when the DELETE lands
	waitStatus(t, base, id1, StatusRunning, 10*time.Second)
	id2 := postJob(t, base, tinyJob(2))

	del := func(id string) JobView {
		req, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v JobView
		json.NewDecoder(resp.Body).Decode(&v)
		return v
	}
	if v := del(id2); v.Status != StatusCancelled {
		t.Fatalf("queued job after DELETE = %q, want cancelled", v.Status)
	}
	del(id1)
	if err := s.Wait(id1, time.Minute); err != nil {
		t.Fatal(err)
	}
	if v := getJob(t, base, id1); v.Status != StatusCancelled {
		t.Fatalf("running job after DELETE = %q (err %q), want cancelled", v.Status, v.Error)
	}

	// The slot is free again: a fresh job runs to completion.
	id3 := postJob(t, base, tinyJob(2))
	if err := s.Wait(id3, time.Minute); err != nil {
		t.Fatal(err)
	}
	if v := getJob(t, base, id3); v.Status != StatusDone {
		t.Fatalf("job after cancels = %q (err %q), want done", v.Status, v.Error)
	}
}

// TestServeRequeueBudgetExhausted: when every attempt dies (a worker that
// joins, receives the assignment and is killed each time), the job fails
// after JobRequeues re-runs instead of looping forever.
func TestServeRequeueBudgetExhausted(t *testing.T) {
	s, err := New(Config{JobRequeues: 1, JobTimeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	id := postJob(t, base, distrib.Job{Topology: "ring", Procs: 3, Width: 64,
		Height: 64, Vehicles: 1, Seed: 2, Iters: 5000})
	// Attempt 1 and the single re-queue both lose their worker mid-run.
	for i := 0; i < 2; i++ {
		w := startWorker(t, s, fmt.Sprintf("doomed%d", i))
		waitStatus(t, base, id, StatusRunning, 15*time.Second)
		time.Sleep(50 * time.Millisecond) // let frames start flowing
		w.Kill()
		deadline := time.Now().Add(15 * time.Second)
		for getJob(t, base, id).Status == StatusRunning {
			if time.Now().After(deadline) {
				t.Fatal("attempt never settled after worker kill")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if err := s.Wait(id, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	v := getJob(t, base, id)
	if v.Status != StatusFailed {
		t.Fatalf("job = %q (err %q), want failed after exhausted re-queues", v.Status, v.Error)
	}
	if v.Requeues != 1 {
		t.Fatalf("requeues = %d, want 1", v.Requeues)
	}
}
