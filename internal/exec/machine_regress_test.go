package exec

import (
	"testing"

	"skipper/internal/arch"
	"skipper/internal/exec/memtransport"
	"skipper/internal/exec/transport"
	"skipper/internal/graph"
	"skipper/internal/syndex"
)

// TestMachineReuseAcrossRuns is the regression test for the stale-state
// bug: the outputs map was created once in NewMachine and never cleared,
// so a second Run on the same machine returned the first run's outputs
// mixed with (or instead of) its own.
func TestMachineReuseAcrossRuns(t *testing.T) {
	r := baseRegistry()
	s := compile(t, farmSrc, r, arch.Ring(4), syndex.Structured)
	m := NewMachine(s, r)
	for run := 0; run < 3; run++ {
		res, err := m.Run(2)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if len(res.Outputs) != 2 {
			t.Fatalf("run %d: %d outputs, want 2 (stale state from a previous run?)",
				run, len(res.Outputs))
		}
		for i, v := range res.Outputs {
			if v != farmWant {
				t.Fatalf("run %d iteration %d: output %v, want %d", run, i, v, farmWant)
			}
		}
		// Message accounting must also restart from zero each run.
		if run > 0 && res.Messages > 3*int64(res.Hops+100) {
			t.Fatalf("run %d: messages %d look cumulative", run, res.Messages)
		}
	}
}

// TestOutputsKeepIterationSlots pins the Outputs indexing contract:
// Outputs always has one slot per iteration, and an iteration whose output
// never reached this machine leaves a nil hole instead of shifting later
// outputs down. A machine hosting only processors without the Output node
// must report all-nil outputs of full length, not a short slice.
func TestOutputsKeepIterationSlots(t *testing.T) {
	r := baseRegistry()
	a := arch.Ring(4)
	s := compile(t, farmSrc, r, a, syndex.Structured)

	outProc := arch.ProcID(-1)
	for _, n := range s.Graph.Nodes {
		if n.Kind == graph.KindOutput {
			outProc = s.Assign[n.ID]
		}
	}
	if outProc < 0 {
		t.Fatal("no output node in schedule")
	}
	var withOut, without []arch.ProcID
	for i := 0; i < a.N; i++ {
		if arch.ProcID(i) == outProc {
			withOut = append(withOut, arch.ProcID(i))
		} else {
			without = append(without, arch.ProcID(i))
		}
	}

	// Split the executive across two machines sharing one transport: the
	// same deployment shape as one-OS-process-per-processor, minus TCP.
	tr := memtransport.New(a)
	defer tr.Close()
	const iters = 3
	type out struct {
		res *RunResult
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := NewMachineOn(s, r, tr, without).Run(iters)
		ch <- out{res, err}
	}()
	res, err := NewMachineOn(s, r, tr, withOut).Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	other := <-ch
	if other.err != nil {
		t.Fatal(other.err)
	}

	if len(res.Outputs) != iters {
		t.Fatalf("output-hosting machine: %d output slots, want %d", len(res.Outputs), iters)
	}
	for i, v := range res.Outputs {
		if v != farmWant {
			t.Fatalf("iteration %d: output %v, want %d", i, v, farmWant)
		}
	}
	if len(other.res.Outputs) != iters {
		t.Fatalf("outputless machine: %d output slots, want %d (holes must be kept)",
			len(other.res.Outputs), iters)
	}
	for i, v := range other.res.Outputs {
		if v != nil {
			t.Fatalf("outputless machine iteration %d: output %v, want nil hole", i, v)
		}
	}
}

// TestSharedTransportFarmFrames sanity-checks that the farm protocol's
// task/reply/sentinel frames flow between machines over a shared transport
// exactly as they do inside one machine (run with -race).
func TestSharedTransportFarmFrames(t *testing.T) {
	tr := memtransport.New(arch.Ring(2))
	defer tr.Close()
	k := transport.TaskKey(graph.NodeID(5), 0)
	tr.Send(0, 1, k, transport.Task{Idx: 2, V: 9})
	tr.Send(0, 1, k, transport.Sentinel{})
	v, ok := tr.Recv(1, k)
	if !ok {
		t.Fatal("recv failed")
	}
	if tk := v.(transport.Task); tk.Idx != 2 || tk.V != 9 {
		t.Fatalf("task mangled: %+v", tk)
	}
	v, ok = tr.Recv(1, k)
	if !ok {
		t.Fatal("recv failed")
	}
	if _, isSentinel := v.(transport.Sentinel); !isSentinel {
		t.Fatalf("expected sentinel, got %#v", v)
	}
}
