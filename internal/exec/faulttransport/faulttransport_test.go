package faulttransport

import (
	"testing"

	"skipper/internal/arch"
	"skipper/internal/exec/memtransport"
	"skipper/internal/exec/transport"
	"skipper/internal/graph"
	"skipper/internal/value"
)

func key() transport.Key { return transport.EdgeKey(graph.EdgeID(1)) }

// TestKillAfterSends: the Nth send is delivered, the N+1th triggers the
// death — handler notified, everything from and to the processor dropped,
// its blocked receives unwound.
func TestKillAfterSends(t *testing.T) {
	a := arch.Ring(3)
	ft := New(memtransport.New(a), Config{
		Faults: map[arch.ProcID]Fault{1: {KillAfterSends: 2}},
	})
	defer ft.Close()
	var down []arch.ProcID
	ft.OnPeerDown(func(ps []arch.ProcID) { down = append(down, ps...) })

	ft.Send(1, 0, key(), "a")
	ft.Send(1, 0, key(), "b")
	ft.Send(1, 0, key(), "dropped-and-dies")
	if len(down) != 1 || down[0] != 1 {
		t.Fatalf("peer-down notifications = %v, want [1]", down)
	}
	for _, want := range []string{"a", "b"} {
		v, ok := ft.Recv(0, key())
		if !ok || v != want {
			t.Fatalf("Recv = %v/%v, want %q", v, ok, want)
		}
	}
	// Traffic to the dead processor vanishes; its receive stream is killed.
	ft.Send(0, 1, key(), "into-the-void")
	if v, ok := ft.Recv(1, key()); ok {
		t.Fatalf("Recv on dead processor delivered %v", v)
	}
}

// TestDropEveryNth drops exactly the scripted sends and declares nothing
// dead.
func TestDropEveryNth(t *testing.T) {
	a := arch.Ring(2)
	ft := New(memtransport.New(a), Config{
		Faults: map[arch.ProcID]Fault{1: {DropEveryNth: 2}},
	})
	defer ft.Close()
	notified := false
	ft.OnPeerDown(func([]arch.ProcID) { notified = true })
	for i := 0; i < 4; i++ {
		ft.Send(1, 0, key(), i)
	}
	for _, want := range []int{0, 2} { // sends 1 and 3 (1-based 2nd, 4th) dropped
		v, ok := ft.Recv(0, key())
		if !ok || v != want {
			t.Fatalf("Recv = %v/%v, want %d", v, ok, want)
		}
	}
	if notified {
		t.Fatal("drops must not announce deaths")
	}
	if got := ft.Stats().Messages; got != 2 {
		t.Fatalf("Messages = %d, want 2 (drops are uncounted)", got)
	}
}

// recorder is a null inner transport that just logs forwarded payloads.
type recorder struct {
	transport.Transport
	got []int
}

func (r *recorder) Send(_, _ arch.ProcID, _ transport.Key, v value.Value) {
	r.got = append(r.got, v.(int))
}
func (r *recorder) Close() error { return nil }

// TestSeededDropsReproduce: equal seeds inject identical loss patterns.
func TestSeededDropsReproduce(t *testing.T) {
	run := func(seed int64) []int {
		rec := &recorder{}
		ft := New(rec, Config{
			Seed:   seed,
			Faults: map[arch.ProcID]Fault{1: {DropProb: 0.5}},
		})
		defer ft.Close()
		for i := 0; i < 32; i++ {
			ft.Send(1, 0, key(), i)
		}
		return rec.got
	}
	a, b := run(42), run(42)
	if len(a) == 0 || len(a) == 32 {
		t.Fatalf("seeded run delivered %d/32 — drop probability not applied", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different loss: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different loss at %d: %v vs %v", i, a, b)
		}
	}
}

// TestOnKillOverride: a custom OnKill replaces the default mark-and-notify
// (the distributed harness uses it to exit the whole process).
func TestOnKillOverride(t *testing.T) {
	a := arch.Ring(2)
	var killed []arch.ProcID
	var cfg Config
	cfg.Faults = map[arch.ProcID]Fault{1: {KillAfterSends: 1}}
	cfg.OnKill = func(p arch.ProcID) { killed = append(killed, p) }
	ft := New(memtransport.New(a), cfg)
	defer ft.Close()
	notified := false
	ft.OnPeerDown(func([]arch.ProcID) { notified = true })
	ft.Send(1, 0, key(), "a")
	ft.Send(1, 0, key(), "trigger")
	if len(killed) != 1 || killed[0] != 1 {
		t.Fatalf("OnKill calls = %v, want [1]", killed)
	}
	if notified {
		t.Fatal("OnKill must replace the default notification, not add to it")
	}
}
