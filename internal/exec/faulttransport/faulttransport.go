// Package faulttransport wraps any transport backend with deterministic,
// scripted fault injection: per-processor kill-after-N-sends, periodic and
// seeded-probabilistic frame drops, and send delays. It exists so the
// executive's failure detection and farm re-dispatch (DESIGN.md §11) can
// be exercised in ordinary unit tests — same-process, no OS processes to
// kill, reproducible run to run — against both the mem and net backends.
//
// The injected failure model is process death as the surviving cluster
// perceives it: once a processor's kill trigger fires, everything it sends
// vanishes, everything addressed to it vanishes, its blocked receives
// unwind, and the registered peer-down handler is told — exactly the
// sequence a real node crash produces through the TCP control plane, minus
// the wire.
package faulttransport

import (
	"math/rand"
	"sync"
	"time"

	"skipper/internal/arch"
	"skipper/internal/exec/transport"
	"skipper/internal/obsv"
	"skipper/internal/value"
)

// Fault scripts the failures injected at one processor's sends.
type Fault struct {
	// KillAfterSends, when positive, declares the processor dead once it
	// has performed this many Sends: the Nth send is delivered, the N+1th
	// and everything after it is dropped, and the death is announced.
	KillAfterSends int
	// DropEveryNth, when positive, silently drops every Nth send (counted
	// per processor) without declaring anything dead — lossy-link chaos,
	// for exercising deadline-based recovery.
	DropEveryNth int
	// DropProb, in [0,1), drops each send with this probability using the
	// config's seeded generator, so a given seed replays the same loss
	// pattern every run.
	DropProb float64
	// SlowEveryNth, when positive (and SlowFor > 0), delays every Nth send
	// from this processor by SlowFor before delivering it — a deterministic
	// straggler script. The sleep happens on the sender's goroutine, so a
	// scripted farm worker models slow compute: its reply (a worker-only
	// processor's only send) arrives late but intact, exactly the signature
	// speculation and false-suspicion accounting must tolerate. Counted per
	// processor like DropEveryNth; 1 slows every send.
	SlowEveryNth int
	// SlowFor is the delay SlowEveryNth applies.
	SlowFor time.Duration
}

// Config scripts a reproducible chaos scenario.
type Config struct {
	// Seed feeds the probabilistic drops; runs with equal seeds and equal
	// send sequences inject identical faults.
	Seed int64
	// Faults maps processors to their scripted failures.
	Faults map[arch.ProcID]Fault
	// OnKill, when set, replaces the default kill behavior (mark the
	// processor dead on the inner transport and notify the peer-down
	// handler). A distributed chaos harness sets it to exit the whole OS
	// process, turning the scripted trigger into a real node death that
	// the TCP control plane must detect on its own.
	OnKill func(p arch.ProcID)
}

// Transport decorates an inner transport with the scripted faults.
type Transport struct {
	inner transport.Transport
	cfg   Config

	mu     sync.Mutex
	rng    *rand.Rand
	sends  map[arch.ProcID]int
	killed map[arch.ProcID]bool

	pdMu sync.Mutex
	pdFn transport.PeerDown
}

var (
	_ transport.Transport       = (*Transport)(nil)
	_ transport.FailureNotifier = (*Transport)(nil)
	_ transport.PeerDowner      = (*Transport)(nil)
	_ transport.TraceSink       = (*Transport)(nil)
)

// New wraps inner with cfg's scripted faults.
func New(inner transport.Transport, cfg Config) *Transport {
	return &Transport{
		inner:  inner,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		sends:  map[arch.ProcID]int{},
		killed: map[arch.ProcID]bool{},
	}
}

// Send applies src's scripted faults, then forwards to the inner backend.
// Dropped and post-death sends vanish before the inner transport counts
// them, matching how real backends treat traffic to and from the dead.
func (t *Transport) Send(src, dst arch.ProcID, key transport.Key, payload value.Value) {
	t.mu.Lock()
	if t.killed[src] || t.killed[dst] {
		t.mu.Unlock()
		return
	}
	f, scripted := t.cfg.Faults[src]
	if !scripted {
		t.mu.Unlock()
		t.inner.Send(src, dst, key, payload)
		return
	}
	t.sends[src]++
	n := t.sends[src]
	if f.KillAfterSends > 0 && n > f.KillAfterSends {
		t.killed[src] = true
		t.mu.Unlock()
		t.kill(src)
		return
	}
	drop := (f.DropEveryNth > 0 && n%f.DropEveryNth == 0) ||
		(f.DropProb > 0 && t.rng.Float64() < f.DropProb)
	slow := f.SlowEveryNth > 0 && f.SlowFor > 0 && n%f.SlowEveryNth == 0
	t.mu.Unlock()
	if drop {
		return
	}
	if slow {
		// Outside the lock: other processors' sends must not stall behind
		// the straggler. If the processor is declared dead mid-sleep, the
		// inner backend drops the late frame itself, as it would any send
		// from the dead.
		time.Sleep(f.SlowFor)
	}
	t.inner.Send(src, dst, key, payload)
}

// kill performs the death announcement for p, outside the transport lock
// (the handler typically sends).
func (t *Transport) kill(p arch.ProcID) {
	if t.cfg.OnKill != nil {
		t.cfg.OnKill(p)
		return
	}
	if pd, ok := t.inner.(transport.PeerDowner); ok {
		pd.MarkPeerDown(p)
	}
	t.pdMu.Lock()
	fn := t.pdFn
	t.pdMu.Unlock()
	if fn != nil {
		fn([]arch.ProcID{p})
	}
}

// OnPeerDown registers the failure handler for injected kills and chains
// it to the inner transport, so organically detected deaths (a real TCP
// EOF underneath) reach the same handler.
func (t *Transport) OnPeerDown(fn transport.PeerDown) {
	t.pdMu.Lock()
	t.pdFn = fn
	t.pdMu.Unlock()
	if n, ok := t.inner.(transport.FailureNotifier); ok {
		n.OnPeerDown(fn)
	}
}

// MarkPeerDown forwards the executive's own death verdicts (deadline
// suspicions) to the inner backend and stops routing for p here too.
func (t *Transport) MarkPeerDown(p arch.ProcID) {
	t.mu.Lock()
	t.killed[p] = true
	t.mu.Unlock()
	if pd, ok := t.inner.(transport.PeerDowner); ok {
		pd.MarkPeerDown(p)
	}
}

// Recv delegates to the inner backend.
func (t *Transport) Recv(p arch.ProcID, key transport.Key) (value.Value, bool) {
	return t.inner.Recv(p, key)
}

// Receiver delegates to the inner backend.
func (t *Transport) Receiver(p arch.ProcID, key transport.Key) transport.Receiver {
	return t.inner.Receiver(p, key)
}

// Abort delegates to the inner backend.
func (t *Transport) Abort() { t.inner.Abort() }

// Close delegates to the inner backend.
func (t *Transport) Close() error { return t.inner.Close() }

// Err delegates to the inner backend.
func (t *Transport) Err() error { return t.inner.Err() }

// Stats delegates to the inner backend; injected drops are uncounted.
func (t *Transport) Stats() transport.Stats { return t.inner.Stats() }

// SetTrace forwards trace recording to the inner backend when supported.
func (t *Transport) SetTrace(r *obsv.Recorder) {
	if ts, ok := t.inner.(transport.TraceSink); ok {
		ts.SetTrace(r)
	}
}

// QueueDepth forwards the inner backend's mailbox-depth gauge when it has
// one (both built-in backends do; metrics endpoints scrape it).
func (t *Transport) QueueDepth() int {
	if qd, ok := t.inner.(interface{ QueueDepth() int }); ok {
		return qd.QueueDepth()
	}
	return 0
}
