// Package exec implements SKiPPER's distributed executive: the kernel
// primitives ("thread creation, communication and synchronisation and
// sequentialisation of user supplied computation functions and of
// inter-processor communications", paper §3) and a goroutine-based backend
// in which each processor of the architecture graph is a goroutine, each
// physical link a channel, and store-and-forward routing is performed by
// per-processor router processes (the M->W / W->M auxiliary processes of
// paper Fig. 1).
package exec

import (
	"fmt"

	"skipper/internal/graph"
	"skipper/internal/value"
)

// NodeError reports a failure while executing one process node.
type NodeError struct {
	Node string
	Err  error
}

func (e *NodeError) Error() string { return fmt.Sprintf("exec: node %s: %v", e.Node, e.Err) }
func (e *NodeError) Unwrap() error { return e.Err }

// EvalNode computes the output port values of a static node from its input
// port values. It covers every node kind except Master, Worker (dynamic
// protocol) and Mem (stateful); those are handled by their dedicated
// executive operations. The same semantics is shared by the goroutine
// backend and the timing simulator, which is what makes their functional
// results identical by construction.
func EvalNode(n *graph.Node, reg *value.Registry, inputs []value.Value) ([]value.Value, error) {
	switch n.Kind {
	case graph.KindConst:
		return []value.Value{n.Const}, nil

	case graph.KindFunc, graph.KindInput:
		f, ok := reg.Lookup(n.Fn)
		if !ok {
			return nil, &NodeError{Node: n.Name, Err: fmt.Errorf("function %q not registered", n.Fn)}
		}
		if len(inputs) != f.Arity {
			return nil, &NodeError{Node: n.Name,
				Err: fmt.Errorf("arity mismatch: %d inputs for %q/%d", len(inputs), n.Fn, f.Arity)}
		}
		return []value.Value{f.Fn(inputs)}, nil

	case graph.KindOutput:
		// Output nodes deliver their input to the host; when a display
		// function is attached it runs first.
		if n.Fn != "" {
			f, ok := reg.Lookup(n.Fn)
			if !ok {
				return nil, &NodeError{Node: n.Name, Err: fmt.Errorf("function %q not registered", n.Fn)}
			}
			f.Fn(inputs)
		}
		return nil, nil

	case graph.KindSplit:
		f, ok := reg.Lookup(n.Fn)
		if !ok {
			return nil, &NodeError{Node: n.Name, Err: fmt.Errorf("split function %q not registered", n.Fn)}
		}
		res := f.Fn(inputs)
		parts, ok := res.(value.List)
		if !ok {
			return nil, &NodeError{Node: n.Name, Err: fmt.Errorf("split did not return a list")}
		}
		if len(parts) != n.Out {
			return nil, &NodeError{Node: n.Name,
				Err: fmt.Errorf("scm split produced %d sub-domains for %d compute processes", len(parts), n.Out)}
		}
		return parts, nil

	case graph.KindMerge:
		f, ok := reg.Lookup(n.Fn)
		if !ok {
			return nil, &NodeError{Node: n.Name, Err: fmt.Errorf("merge function %q not registered", n.Fn)}
		}
		return []value.Value{f.Fn([]value.Value{value.List(inputs)})}, nil

	case graph.KindPack:
		return []value.Value{value.Tuple(append([]value.Value{}, inputs...))}, nil

	case graph.KindUnpack:
		t, ok := inputs[0].(value.Tuple)
		if !ok {
			return nil, &NodeError{Node: n.Name, Err: fmt.Errorf("unpack of non-tuple %s", value.Show(inputs[0]))}
		}
		if len(t) < n.Out {
			return nil, &NodeError{Node: n.Name, Err: fmt.Errorf("unpack of %d-tuple into %d ports", len(t), n.Out)}
		}
		return t[:n.Out], nil
	}
	return nil, &NodeError{Node: n.Name, Err: fmt.Errorf("EvalNode cannot run a %s node", n.Kind)}
}

// CostOfNode estimates the cycles consumed by running a static node on the
// given inputs (used by the timing simulator).
func CostOfNode(n *graph.Node, reg *value.Registry, inputs []value.Value) int64 {
	switch n.Kind {
	case graph.KindConst, graph.KindPack, graph.KindUnpack, graph.KindMem:
		return 200
	case graph.KindFunc, graph.KindInput, graph.KindSplit, graph.KindMerge, graph.KindOutput:
		if n.Fn == "" {
			return 200
		}
		if f, ok := reg.Lookup(n.Fn); ok {
			return f.CostOf(inputs)
		}
		return value.DefaultCost
	}
	return value.DefaultCost
}
