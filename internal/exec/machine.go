package exec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"skipper/internal/arch"
	"skipper/internal/exec/memtransport"
	"skipper/internal/exec/transport"
	"skipper/internal/graph"
	"skipper/internal/obsv"
	"skipper/internal/skel"
	"skipper/internal/syndex"
	"skipper/internal/value"
)

// RunResult is the outcome of executing a schedule.
type RunResult struct {
	// Outputs holds the value delivered to the Output node at each
	// iteration: Outputs[i] is iteration i's output, and always has length
	// iters. An iteration whose output was never delivered — or whose
	// Output node lives on a processor this machine does not host — leaves
	// a nil hole at its slot rather than silently shifting later outputs
	// down. For Output nodes with a display function, the function has
	// also been called.
	Outputs []value.Value
	// Messages is the number of payloads this machine's processors
	// injected into the network (tasks, replies, sentinels and static
	// communications).
	Messages int64
	// Hops counts link traversals performed on those messages' behalf by
	// intermediate forwarders: store-and-forward router forwards over the
	// architecture graph on the mem backend (a message between adjacent
	// processors costs one hop, non-adjacent ones more), frames relayed by
	// the hub on the net backend. It is zero on the net backend once the
	// peer mesh is up — nothing is relayed any more — and nonzero on the
	// mem backend whenever any message crossed processors.
	Hops int64
	// Direct counts frames this machine's processors shipped point-to-point
	// over the net backend's peer mesh, bypassing the hub. It is the
	// complement of Hops: a cross-process frame on the net backend is
	// either relayed (Hops, at the hub) or direct (Direct, at the sender).
	// Always zero on the mem backend (every in-process delivery is already
	// direct) and on the hub itself, whose control connections are one hop.
	Direct int64
	// Trace is the run's event-trace snapshot when the machine was given a
	// recorder (Machine.Trace), nil otherwise. It covers the processors
	// this machine hosts; distributed runs merge one trace per process via
	// obsv.Merge.
	Trace *obsv.Trace
	// Failures counts processors this machine declared dead during the run
	// (transport-detected deaths plus task-deadline suspicions). Zero
	// unless Machine.FT enabled fault tolerance.
	Failures int64
	// Redispatches counts farm tasks re-enqueued onto surviving workers
	// after their original worker died. A run that lost a worker but
	// completed has Failures > 0, and Redispatches > 0 if that worker held
	// a task at death.
	Redispatches int64
	// Speculations counts speculative duplicate dispatches: tasks that sat
	// unanswered past FaultTolerance.SpeculateAfter and were duplicated
	// onto an idle worker without suspecting the original dead.
	Speculations int64
	// SpeculationWins counts speculations whose duplicate's reply arrived
	// before the original's — the duplication bought latency. A speculation
	// the original still won costs one redundant task execution and nothing
	// else.
	SpeculationWins int64
	// FalseSuspicions counts deadline-suspected workers whose same-
	// generation reply arrived after the death verdict: the worker was slow,
	// not dead. It stays marked down for the run, but a nonzero count tells
	// the operator TaskDeadline is too tight (or SpeculateAfter should
	// absorb the stragglers first).
	FalseSuspicions int64
}

// Machine executes a static schedule: each hosted processor interprets its
// compiled op program, communicating through a transport.Transport. The
// default (NewMachine) hosts every processor of the architecture over an
// in-process transport — the operational realization of the process graph
// on goroutines. NewMachineOn hosts a subset over a caller-supplied
// transport, which is how one OS process runs its share of a distributed
// deployment.
type Machine struct {
	sched *syndex.Schedule
	reg   *value.Registry

	// DeterministicFarm makes df masters accumulate results in input-list
	// order instead of arrival order. The paper requires the accumulating
	// function to be commutative and associative precisely because arrival
	// order is unpredictable; this mode lifts that requirement (at the cost
	// of buffering all results), making the executive bit-identical to the
	// sequential emulation even for non-commutative accumulators. tf farms
	// are unaffected (their task order is itself dynamic).
	DeterministicFarm bool

	// Trace, when set before Run, records op start/end events (and, via
	// the transport's TraceSink, send/recv/mailbox events) into the given
	// recorder; the run's snapshot lands in RunResult.Trace. Nil — the
	// default — keeps the executive on its untraced path, which costs one
	// branch per op and nothing else.
	Trace *obsv.Recorder
	// OpLatency, when set, receives every op's duration in seconds. It is
	// independent of Trace (metrics without tracing and vice versa).
	OpLatency *obsv.Histogram
	// StageLatency, when set and the pipelined interpreter is active,
	// receives each pipeline stage's busy time per frame in seconds — the
	// measured per-stage period a latency/throughput re-mapper consumes.
	// Like OpLatency it is independent of Trace (which records the same
	// hand-offs as EvStageHand events).
	StageLatency func(stage int, seconds float64)

	// FT, when enabled (MaxRetries > 0) and the transport supports failure
	// notification, makes farm-worker death survivable: in-flight tasks are
	// re-dispatched to surviving workers and the run completes on the
	// shrunken cluster. Disabled (the default), any peer death aborts the
	// cluster.
	FT FaultTolerance

	// Pipeline software-pipelines the itermem outer loop (DESIGN.md §12):
	// a processor's program is cut at every farm-master boundary into a
	// chain of stages — front end (frame grab, preprocessing), one stage
	// per farm, trailing merge/display — and consecutive frames occupy
	// consecutive stages concurrently: frame k+1's grab overlaps frame k's
	// first farm, which overlaps frame k-1's second farm, and so on. The
	// loop-carried MEM state stays single-buffered — a capacity-1 token
	// serializes frame k+1's MEM read after frame k's MEM write — so
	// outputs are bit-identical to the sequential executive. Processors
	// whose program does not satisfy the pipelineCuts conditions fall back
	// to the sequential interpreter, as does everything when the flag is
	// off (the default).
	Pipeline bool

	// PipelineDepth caps the number of pipeline stages. Values below 2
	// (the zero value included) leave the depth unbounded — one stage per
	// master boundary; 2 restores the historical front-end/back-end split.
	// It exists for measurement (depth sweeps in the benchmark suite), not
	// tuning: deeper is never slower, because an unused stage is just an
	// empty goroutine handoff.
	PipelineDepth int

	t     transport.Transport
	ownT  bool          // machine creates/destroys the transport per run
	local []arch.ProcID // processors this machine hosts

	ft      *ftState     // per-run fault-tolerance state; nil when FT is off
	farmGen atomic.Int64 // master invocation generations, for stale-reply rejection

	ftFailures        atomic.Int64 // cumulative across runs, for metrics
	ftRedispatches    atomic.Int64
	ftSpeculations    atomic.Int64
	ftSpecWins        atomic.Int64
	ftFalseSuspicions atomic.Int64

	// pool hosts the per-iteration farm-worker processes. The seed spawned
	// a fresh goroutine per worker node per iteration; persistent pool
	// workers make steady-state frame iterations goroutine-setup-free.
	pool *skel.Pool

	// opLabels[p][i] is the interned trace label of Programs[p][i],
	// precomputed at run start so the op loop never formats a label.
	opLabels [][]uint32

	outMu   sync.Mutex
	outputs map[int]value.Value // iteration -> output, reset every run

	errMu sync.Mutex
	err   error
	wg    sync.WaitGroup // farm worker goroutines
}

// NewMachine prepares an executive hosting every processor of the
// schedule's architecture over a fresh in-process transport per run.
func NewMachine(sched *syndex.Schedule, reg *value.Registry) *Machine {
	local := make([]arch.ProcID, sched.Arch.N)
	for i := range local {
		local[i] = arch.ProcID(i)
	}
	return &Machine{sched: sched, reg: reg, ownT: true, local: local}
}

// NewMachineOn prepares an executive hosting only the given processors,
// communicating over t. The caller owns t's lifecycle: the machine aborts
// it on failure but never closes it after a successful run, so several
// machines (or OS processes, via the net backend) can share one transport.
func NewMachineOn(sched *syndex.Schedule, reg *value.Registry, t transport.Transport, local []arch.ProcID) *Machine {
	return &Machine{sched: sched, reg: reg, t: t, local: local}
}

// Run executes iters iterations of the distributed program (1 for one-shot
// graphs) and returns the collected outputs.
func (m *Machine) Run(iters int) (*RunResult, error) {
	return m.RunWithTimeout(iters, 0)
}

// RunWithTimeout is Run with a watchdog: if the executive has not completed
// within d, every blocked communication is aborted and a timeout error is
// returned. A zero duration disables the watchdog. The watchdog can only
// interrupt communication waits — a user sequential function that never
// returns cannot be cancelled.
func (m *Machine) RunWithTimeout(iters int, d time.Duration) (*RunResult, error) {
	if iters < 1 {
		iters = 1
	}
	// Per-run state: a machine is reusable, so the previous run's outputs
	// and error must not leak into this one.
	m.outMu.Lock()
	m.outputs = map[int]value.Value{}
	m.outMu.Unlock()
	m.errMu.Lock()
	m.err = nil
	m.errMu.Unlock()

	if m.ownT {
		m.t = memtransport.New(m.sched.Arch)
	}
	if m.Trace != nil {
		if ts, ok := m.t.(transport.TraceSink); ok {
			ts.SetTrace(m.Trace)
		}
		m.buildOpLabels()
	}
	// Arm fault tolerance: registering a peer-down handler is what switches
	// the transport from abort-the-cluster to contain-and-notify, so with FT
	// off the handler is never installed and legacy behavior is untouched.
	m.ft = nil
	if m.FT.enabled() {
		if fn, ok := m.t.(transport.FailureNotifier); ok {
			m.ft = newFTState()
			fn.OnPeerDown(m.handlePeerDown)
		}
	}
	statsBefore := m.t.Stats()

	m.pool = skel.NewPool(len(m.local))
	defer m.pool.Close()

	// Processors.
	var procWG sync.WaitGroup
	for _, p := range m.local {
		procWG.Add(1)
		go func(p arch.ProcID) {
			defer procWG.Done()
			if m.Pipeline {
				if cuts := m.pipelineCuts(p); len(cuts) > 0 {
					m.runProcessorPipelined(p, iters, cuts)
					return
				}
			}
			m.runProcessor(p, iters)
		}(p)
	}
	// Watchdog: abort all communication waits if the deadline passes.
	var watchdog *time.Timer
	if d > 0 {
		watchdog = time.AfterFunc(d, func() {
			m.fail(fmt.Errorf("exec: executive did not complete within %v (communication stalled)", d))
		})
	}
	procWG.Wait()
	if watchdog != nil {
		watchdog.Stop()
	}
	m.wg.Wait() // farm workers
	stats := m.t.Stats()
	terr := m.t.Err()
	if m.ownT {
		m.t.Close()
	}
	// A transport failure (routing, connection, codec) is the root cause of
	// any "receive aborted" the processors observed — report it first.
	if terr != nil {
		return nil, terr
	}
	if err := m.firstErr(); err != nil {
		return nil, err
	}
	res := &RunResult{
		Outputs:  make([]value.Value, iters),
		Messages: stats.Messages - statsBefore.Messages,
		Hops:     stats.Hops - statsBefore.Hops,
		Direct:   stats.Direct - statsBefore.Direct,
	}
	if m.ft != nil {
		// The per-run counters snapshot this run; the cumulative machine
		// counters (the /metrics sources) are bumped at event time in ft.go,
		// so a scrape that lands mid-run already sees them.
		res.Failures = m.ft.failures.Load()
		res.Redispatches = m.ft.redispatches.Load()
		res.Speculations = m.ft.speculations.Load()
		res.SpeculationWins = m.ft.specWins.Load()
		res.FalseSuspicions = m.ft.falseSuspicions.Load()
	}
	for i := 0; i < iters; i++ {
		res.Outputs[i] = m.outputs[i]
	}
	if m.Trace != nil {
		res.Trace = m.Trace.Snapshot()
		res.Trace.Procs = make([]int, len(m.local))
		for i, p := range m.local {
			res.Trace.Procs[i] = int(p)
		}
	}
	return res, nil
}

// buildOpLabels interns every scheduled op's label up front, so recording
// an op boundary on the hot path is an array index, not a format call.
func (m *Machine) buildOpLabels() {
	m.opLabels = make([][]uint32, m.sched.Arch.N)
	for _, p := range m.local {
		prog := m.sched.Programs[p]
		labels := make([]uint32, len(prog))
		for i, op := range prog {
			labels[i] = m.Trace.Intern(m.sched.OpLabel(op))
		}
		m.opLabels[p] = labels
	}
}

// ErrCancelled is the error a run returns after Cancel. Callers that kill
// jobs on purpose (a scheduler honoring DELETE /jobs) match on it with
// errors.Is to tell deliberate cancellation from genuine failure — only the
// latter warrants a re-queue.
var ErrCancelled = errors.New("exec: run cancelled")

// Cancel aborts the in-flight run: every blocked communication unblocks and
// the run returns ErrCancelled. Like the watchdog, it cannot interrupt a
// user sequential function that never returns. Cancel is for machines built
// with NewMachineOn, whose transport is fixed at construction; on an
// own-transport machine a Cancel racing run start may find no transport yet
// and only record the error.
func (m *Machine) Cancel() {
	m.errMu.Lock()
	already := m.err != nil
	if !already {
		m.err = ErrCancelled
	}
	t := m.t
	m.errMu.Unlock()
	if already || t == nil {
		return
	}
	if m.Trace != nil {
		m.Trace.Record(-1, obsv.EvCancel, 0, -1, 0)
	}
	t.Abort()
}

// fail records the first error and unblocks everything.
func (m *Machine) fail(err error) {
	m.errMu.Lock()
	already := m.err != nil
	if !already {
		m.err = err
	}
	m.errMu.Unlock()
	if already {
		return
	}
	m.t.Abort()
}

// firstErr returns the recorded error, if any.
func (m *Machine) firstErr() error {
	m.errMu.Lock()
	defer m.errMu.Unlock()
	return m.err
}

// FTFailures reports the processors declared dead across every run of this
// machine; FTRedispatches the farm tasks re-enqueued after worker deaths.
// Cumulative (unlike the per-run RunResult fields), for metrics endpoints.
func (m *Machine) FTFailures() int64 { return m.ftFailures.Load() }

// FTRedispatches reports tasks re-dispatched across every run; see FTFailures.
func (m *Machine) FTRedispatches() int64 { return m.ftRedispatches.Load() }

// FTSpeculations reports speculative duplicate dispatches across every run;
// see FTFailures.
func (m *Machine) FTSpeculations() int64 { return m.ftSpeculations.Load() }

// FTSpeculationWins reports speculations whose duplicate beat the original
// reply across every run; see FTFailures.
func (m *Machine) FTSpeculationWins() int64 { return m.ftSpecWins.Load() }

// FTFalseSuspicions reports deadline suspicions later contradicted by the
// suspected worker's own reply, across every run; see FTFailures.
func (m *Machine) FTFalseSuspicions() int64 { return m.ftFalseSuspicions.Load() }

// runFarmWorker runs a farm worker body on the persistent pool, pinning the
// processor identity the body was launched from.
func (m *Machine) runFarmWorker(p arch.ProcID, body func(arch.ProcID)) {
	m.pool.Go(func() { body(p) })
}

// procState is the per-processor, per-iteration execution context.
type procState struct {
	p    arch.ProcID
	outs map[graph.NodeID][]value.Value // local node outputs this iteration
	recv map[graph.EdgeID]value.Value   // received static edge values
}

// runProcessor interprets the processor's static program iters times.
func (m *Machine) runProcessor(p arch.ProcID, iters int) {
	prog := m.sched.Programs[p]
	mem := map[graph.NodeID]value.Value{} // Mem node state, persists
	trace, hist := m.Trace, m.OpLatency
	var labels []uint32
	if trace != nil {
		labels = m.opLabels[p]
	}
	for iter := 0; iter < iters; iter++ {
		st := &procState{
			p:    p,
			outs: map[graph.NodeID][]value.Value{},
			recv: map[graph.EdgeID]value.Value{},
		}
		if trace == nil && hist == nil {
			for _, op := range prog {
				if m.firstErr() != nil {
					return
				}
				if err := m.step(st, op, mem, iter); err != nil {
					m.fail(err)
					return
				}
			}
			continue
		}
		for i, op := range prog {
			if m.firstErr() != nil {
				return
			}
			// Bracket the op with start/end events; the end is recorded even
			// for a failing op, so traces of aborted runs stay pairable.
			var t0, durNS int64
			var w0 time.Time
			if trace != nil {
				t0 = trace.Record(int32(p), obsv.EvOpStart, labels[i], -1, int64(iter))
			} else {
				w0 = time.Now()
			}
			err := m.step(st, op, mem, iter)
			if trace != nil {
				durNS = trace.Record(int32(p), obsv.EvOpEnd, labels[i], -1, int64(iter)) - t0
			} else {
				durNS = int64(time.Since(w0))
			}
			if hist != nil {
				hist.Observe(float64(durNS) / 1e9)
			}
			if err != nil {
				m.fail(err)
				return
			}
		}
	}
}

// pipelineCuts returns the ascending cut indices splitting processor p's
// program into pipeline stages prog[:c1), prog[c1:c2), ..., prog[ck:], or
// nil when the program does not pipeline. A cut falls just before each farm
// master (its worker spawns ride with their master, so task streams of
// consecutive frames never interleave), giving one stage per farm plus the
// front end — the deepest cut the op program admits.
//
// Validity conditions: the front end must be non-empty — otherwise there is
// nothing to overlap — and must contain no MEM write (state updates belong
// to the frame that computed them) and no stray worker spawn or master of
// another farm. MEM accesses at or beyond the first cut must all land in
// the final stage: the MEM ownership baton is taken by the front end and
// returned by the final stage, so a MEM touch in a middle stage would race
// a neighbouring frame. Cuts that would strand one there are dropped
// (merging those farms into the final stage) rather than giving up on
// pipelining entirely.
func (m *Machine) pipelineCuts(p arch.ProcID) []int {
	prog := m.sched.Programs[p]
	g := m.sched.Graph
	var cuts []int
	for i, op := range prog {
		if op.Kind != syndex.OpMaster {
			continue
		}
		c := i
		for c > 0 && prog[c-1].Kind == syndex.OpWorker {
			c--
		}
		cuts = append(cuts, c)
	}
	if len(cuts) == 0 || cuts[0] == 0 {
		return nil
	}
	for _, op := range prog[:cuts[0]] {
		switch op.Kind {
		case syndex.OpMemWrite, syndex.OpWorker, syndex.OpMaster:
			return nil
		}
	}
	// First MEM access at or beyond the first cut bounds every later cut.
	memBound := len(prog)
	for i := cuts[0]; i < len(prog); i++ {
		op := prog[i]
		if op.Kind == syndex.OpMemWrite ||
			(op.Kind == syndex.OpExec && g.Node(op.Node).Kind == graph.KindMem) {
			memBound = i
			break
		}
	}
	kept := cuts[:1]
	for _, c := range cuts[1:] {
		if c <= memBound {
			kept = append(kept, c)
		}
	}
	cuts = kept
	if d := m.PipelineDepth; d >= 2 && len(cuts) > d-1 {
		cuts = cuts[:d-1]
	}
	return cuts
}

// pipeFrame is one in-flight iteration handed from stage to stage down the
// pipeline. Ownership of st transfers with each send.
type pipeFrame struct {
	st   *procState
	iter int
}

// runProcessorPipelined interprets processor p's program as an N-stage
// software pipeline over the stage boundaries from pipelineCuts: the
// front-end stage (this goroutine) runs prog[:cuts[0]] — grab,
// preprocessing, splits — for frame k+N-1 while each successive stage
// goroutine runs its slice for an earlier frame, down to the final stage —
// last farm, merge, display, MEM writes — on frame k. Frames ride a baton
// chain of capacity-1 hand channels, so each stage holds exactly one frame
// and frames leave every stage in order.
//
// The loop-carried dependency is the itermem delay state: frame k+1's MEM
// read must observe frame k's MEM write. A capacity-1 token channel,
// seeded with one token, enforces exactly that — the token is taken just
// before the frame's first MEM-touching op and returned by the final stage
// after the frame completes (pipelineCuts guarantees all MEM writes are
// the final stage's own ops). The linear schedule places the MEM read at
// the top of the program (it is a topological source), which would pin the
// take — and therefore the serialization point — to the front end even
// when the state's first consumer is the final merge; the read is
// therefore sunk to the stage of its earliest consumer, so every stage
// before that one pipelines freely across frames. Front-end ops that are
// transitively state-independent are additionally hoisted before the take
// (grab k+1 overlaps farm k). Transport ops are never reordered, so their
// relative order — the basis of the schedule's deadlock-freedom — is
// preserved exactly. All mem-map accesses are ordered through the token
// and hand channels, so the interleaving is deterministic and outputs are
// bit-identical to runProcessor's.
func (m *Machine) runProcessorPipelined(p arch.ProcID, iters int, cuts []int) {
	prog := m.sched.Programs[p]
	g := m.sched.Graph
	mem := map[graph.NodeID]value.Value{} // owned alternately via memTok/hand
	var labels []uint32
	if m.Trace != nil {
		labels = m.opLabels[p]
	}

	// Stage j starts out as prog[bounds[j]:bounds[j+1]); stage 0 is this
	// goroutine. stageOps materializes the op order per stage so MEM reads
	// can migrate between stages below.
	stages := len(cuts) + 1
	bounds := make([]int, 0, stages+1)
	bounds = append(append(bounds, 0), cuts...)
	bounds = append(bounds, len(prog))
	stageOps := make([][]int, stages)
	for j := 0; j < stages; j++ {
		for i := bounds[j]; i < bounds[j+1]; i++ {
			stageOps[j] = append(stageOps[j], i)
		}
	}
	stageOf := func(i int) int {
		for j := stages - 1; j >= 0; j-- {
			if i >= bounds[j] {
				return j
			}
		}
		return 0
	}
	// minConsumerStage returns the earliest stage holding an op that reads
	// node nid's output — an exec or master input, or a send of it.
	minConsumerStage := func(nid graph.NodeID) int {
		min := stages - 1 // an unconsumed state serializes nothing: sink all the way
		for i, op := range prog {
			consumes := false
			switch op.Kind {
			case syndex.OpExec, syndex.OpMaster:
				for _, e := range g.InEdges(op.Node) {
					if !e.Back && !e.Intra && e.From == nid {
						consumes = true
						break
					}
				}
			case syndex.OpSend:
				consumes = g.Edges[op.Edge].From == nid
			}
			if consumes {
				if s := stageOf(i); s < min {
					min = s
				}
			}
		}
		return min
	}
	// Sink each front-end MEM read to the stage of its earliest consumer:
	// the read is a pure copy of the delay state into the frame context, so
	// delaying it past stages that never look at the state is safe — and it
	// moves the cross-frame serialization point (the baton take below) as
	// late as the dataflow allows.
	var sunk []int
	sinkTo := map[int]int{}
	keep := stageOps[0][:0]
	for _, i := range stageOps[0] {
		op := prog[i]
		if op.Kind == syndex.OpExec && g.Node(op.Node).Kind == graph.KindMem {
			if s := minConsumerStage(op.Node); s > 0 {
				sinkTo[i] = s
				sunk = append(sunk, i)
				continue
			}
		}
		keep = append(keep, i)
	}
	stageOps[0] = keep
	for k := len(sunk) - 1; k >= 0; k-- { // reverse prepend keeps read order
		i := sunk[k]
		stageOps[sinkTo[i]] = append([]int{i}, stageOps[sinkTo[i]]...)
	}

	// Baton geometry: the take sits immediately before the first
	// MEM-touching op of the earliest MEM-touching stage; the return is the
	// end of the final stage. takeStage < 0 means no local MEM at all.
	takeStage, takeIdx := -1, -1
	for j := 0; j < stages && takeStage < 0; j++ {
		for _, i := range stageOps[j] {
			op := prog[i]
			if op.Kind == syndex.OpMemWrite ||
				(op.Kind == syndex.OpExec && g.Node(op.Node).Kind == graph.KindMem) {
				takeStage, takeIdx = j, i
				break
			}
		}
	}

	// hoist[i] marks front-end ops safe to run before the baton-ordered
	// pass: pure local computation whose inputs all come from other hoisted
	// local ops — transitively independent of the delay state.
	hoist := make([]bool, len(prog))
	hoisted := map[graph.NodeID]bool{}
	for _, i := range stageOps[0] {
		op := prog[i]
		if op.Kind != syndex.OpExec {
			continue
		}
		n := g.Node(op.Node)
		if n.Kind == graph.KindMem {
			continue
		}
		ok := true
		for _, e := range g.InEdges(n.ID) {
			if e.Back || e.Intra {
				continue
			}
			if m.sched.Assign[e.From] != p || !hoisted[e.From] {
				ok = false
				break
			}
		}
		if ok {
			hoist[i] = true
			hoisted[n.ID] = true
		}
	}

	hands := make([]chan pipeFrame, stages) // hands[j]: stage j-1 → stage j
	done := make([]chan struct{}, stages)   // done[j] closed when stage j exits
	for j := 1; j < stages; j++ {
		hands[j] = make(chan pipeFrame, 1)
		done[j] = make(chan struct{})
	}
	memTok := make(chan struct{}, 1) // MEM ownership baton
	memTok <- struct{}{}             // frame 0 reads the initial state

	trace, stageLat := m.Trace, m.StageLatency
	var bwg sync.WaitGroup
	for j := 1; j < stages; j++ {
		bwg.Add(1)
		go func(j int) {
			defer bwg.Done()
			defer close(done[j])
			last := j == stages-1
			if !last {
				defer close(hands[j+1])
			}
			for f := range hands[j] {
				var s0 time.Time
				if stageLat != nil {
					s0 = time.Now()
				}
				for _, i := range stageOps[j] {
					if m.firstErr() != nil {
						return
					}
					if j == takeStage && i == takeIdx {
						if last {
							// The final stage returned the token itself at
							// the end of the previous frame, so this never
							// blocks — but it still orders the mem map.
							<-memTok
						} else {
							select {
							case <-memTok:
							case <-done[stages-1]: // final stage died
								return
							}
						}
					}
					if err := m.stepBracketed(f.st, i, prog[i], mem, f.iter, labels); err != nil {
						m.fail(err)
						return
					}
				}
				// The frame leaves this stage: record the baton hand-off and
				// the stage's busy time — the measured per-stage period.
				if trace != nil {
					trace.Record(int32(p), obsv.EvStageHand, 0, int32(j), int64(f.iter))
				}
				if stageLat != nil {
					stageLat(j, time.Since(s0).Seconds())
				}
				if last {
					// Frame done (MEM writes included): hand the state baton
					// to the next frame's take. Non-blocking because with no
					// local MEM the token is never taken and the buffer is
					// still full.
					select {
					case memTok <- struct{}{}:
					default:
					}
					continue
				}
				select {
				case hands[j+1] <- f:
				case <-done[j+1]: // downstream died; error already recorded
					return
				}
			}
		}(j)
	}
	lastDone := done[stages-1]

	for iter := 0; iter < iters; iter++ {
		st := &procState{
			p:    p,
			outs: map[graph.NodeID][]value.Value{},
			recv: map[graph.EdgeID]value.Value{},
		}
		var s0 time.Time
		if stageLat != nil {
			s0 = time.Now()
		}
		fail := false
		// Pass 1: the hoisted state-independent ops — this is the work
		// that overlaps the previous frame's downstream stages.
		for _, i := range stageOps[0] {
			if !hoist[i] {
				continue
			}
			if m.firstErr() != nil {
				fail = true
				break
			}
			if err := m.stepBracketed(st, i, prog[i], mem, iter, labels); err != nil {
				m.fail(err)
				fail = true
				break
			}
		}
		// Pass 2: everything else in program order, taking the MEM baton
		// just before the state read when it stayed in the front end.
		if !fail {
			for _, i := range stageOps[0] {
				if hoist[i] {
					continue
				}
				if m.firstErr() != nil {
					fail = true
					break
				}
				if takeStage == 0 && i == takeIdx {
					select {
					case <-memTok:
					case <-lastDone: // final stage died; error already recorded
						fail = true
					}
					if fail {
						break
					}
				}
				if err := m.stepBracketed(st, i, prog[i], mem, iter, labels); err != nil {
					m.fail(err)
					fail = true
					break
				}
			}
		}
		if fail {
			break
		}
		if trace != nil {
			trace.Record(int32(p), obsv.EvStageHand, 0, 0, int64(iter))
		}
		if stageLat != nil {
			stageLat(0, time.Since(s0).Seconds())
		}
		select {
		case hands[1] <- pipeFrame{st: st, iter: iter}:
		case <-done[1]:
			iter = iters // next stage died; stop producing
		}
	}
	close(hands[1])
	bwg.Wait()
}

// stepBracketed is step with the runProcessor trace/latency bracketing, for
// the pipelined interpreter's two op loops.
func (m *Machine) stepBracketed(st *procState, i int, op syndex.Op, mem map[graph.NodeID]value.Value, iter int, labels []uint32) error {
	trace, hist := m.Trace, m.OpLatency
	if trace == nil && hist == nil {
		return m.step(st, op, mem, iter)
	}
	var t0, durNS int64
	var w0 time.Time
	if trace != nil {
		t0 = trace.Record(int32(st.p), obsv.EvOpStart, labels[i], -1, int64(iter))
	} else {
		w0 = time.Now()
	}
	err := m.step(st, op, mem, iter)
	if trace != nil {
		durNS = trace.Record(int32(st.p), obsv.EvOpEnd, labels[i], -1, int64(iter)) - t0
	} else {
		durNS = int64(time.Since(w0))
	}
	if hist != nil {
		hist.Observe(float64(durNS) / 1e9)
	}
	return err
}

// inputsOf gathers a node's input values, in port order, from local outputs
// or received packets. Back edges are excluded (Mem handles them).
func (m *Machine) inputsOf(st *procState, id graph.NodeID) ([]value.Value, error) {
	g := m.sched.Graph
	var inputs []value.Value
	for _, e := range g.InEdges(id) {
		if e.Back || e.Intra {
			continue
		}
		if m.sched.Assign[e.From] == st.p {
			outs, ok := st.outs[e.From]
			if !ok || e.FromPort >= len(outs) {
				return nil, fmt.Errorf("exec: value for edge %d not yet produced at %s",
					e.ID, g.Node(id).Name)
			}
			inputs = append(inputs, outs[e.FromPort])
		} else {
			v, ok := st.recv[e.ID]
			if !ok {
				return nil, fmt.Errorf("exec: edge %d consumed before receive at %s",
					e.ID, g.Node(id).Name)
			}
			inputs = append(inputs, v)
		}
	}
	return inputs, nil
}

func (m *Machine) step(st *procState, op syndex.Op, mem map[graph.NodeID]value.Value, iter int) error {
	g := m.sched.Graph
	switch op.Kind {
	case syndex.OpRecv:
		v, ok := m.t.Recv(st.p, transport.EdgeKey(op.Edge))
		if !ok {
			return fmt.Errorf("exec: receive aborted")
		}
		st.recv[op.Edge] = v
		return nil

	case syndex.OpSend:
		e := g.Edges[op.Edge]
		outs, ok := st.outs[e.From]
		if !ok || e.FromPort >= len(outs) {
			return fmt.Errorf("exec: send of unproduced edge %d", e.ID)
		}
		m.t.Send(st.p, op.Peer, transport.EdgeKey(e.ID), outs[e.FromPort])
		return nil

	case syndex.OpExec:
		n := g.Node(op.Node)
		if n.Kind == graph.KindMem {
			// Read: iteration 0 uses the init input; later iterations use
			// the stored feedback value.
			v, ok := mem[n.ID]
			if !ok {
				inputs, err := m.inputsOf(st, n.ID)
				if err != nil {
					return err
				}
				v = inputs[0]
			}
			st.outs[n.ID] = []value.Value{v}
			return nil
		}
		inputs, err := m.inputsOf(st, n.ID)
		if err != nil {
			return err
		}
		outs, err := EvalNode(n, m.reg, inputs)
		if err != nil {
			return err
		}
		st.outs[n.ID] = outs
		if n.Kind == graph.KindOutput {
			m.outMu.Lock()
			m.outputs[iter] = inputs[0]
			m.outMu.Unlock()
		}
		return nil

	case syndex.OpMemWrite:
		n := g.Node(op.Node)
		for _, e := range g.InEdges(n.ID) {
			if !e.Back {
				continue
			}
			var v value.Value
			if m.sched.Assign[e.From] == st.p {
				outs, ok := st.outs[e.From]
				if !ok || e.FromPort >= len(outs) {
					return fmt.Errorf("exec: mem feedback not produced")
				}
				v = outs[e.FromPort]
			} else {
				rv, ok := st.recv[e.ID]
				if !ok {
					return fmt.Errorf("exec: mem feedback edge %d not received", e.ID)
				}
				v = rv
			}
			mem[n.ID] = v
		}
		return nil

	case syndex.OpWorker:
		w := g.Node(op.Node)
		masterID, comp, err := m.workerWiring(w)
		if err != nil {
			return err
		}
		masterProc := m.sched.Assign[masterID]
		trace := m.Trace
		var wlabel uint32
		if trace != nil {
			// Label worker compute spans by function name — the same label
			// the simulator gives its predicted worker spans, so measured
			// and predicted chronograms line up block for block.
			wlabel = trace.Intern(comp.Name)
		}
		m.wg.Add(1)
		m.runFarmWorker(st.p, func(p arch.ProcID) {
			defer m.wg.Done()
			// Hoist the task receiver: the loop always waits on one key.
			tasks := m.t.Receiver(p, transport.TaskKey(masterID, w.Index))
			replyKey := transport.ReplyKey(masterID)
			for {
				tv, ok := tasks.Recv()
				if !ok {
					return
				}
				if _, done := tv.(transport.Sentinel); done {
					return
				}
				tk, ok := tv.(transport.Task)
				if !ok {
					m.fail(fmt.Errorf("exec: worker received non-task payload"))
					return
				}
				if trace != nil {
					trace.Record(int32(p), obsv.EvOpStart, wlabel, -1, int64(tk.Idx))
				}
				y := comp.Fn([]value.Value{tk.V})
				if trace != nil {
					trace.Record(int32(p), obsv.EvOpEnd, wlabel, -1, int64(tk.Idx))
				}
				m.t.Send(p, masterProc, replyKey,
					transport.Reply{Widx: w.Index, Task: tk.Idx, Gen: tk.Gen, V: y})
			}
		})
		return nil

	case syndex.OpMaster:
		if m.ft != nil {
			return m.runMasterFT(st, op.Node)
		}
		return m.runMaster(st, op.Node)
	}
	return fmt.Errorf("exec: unknown op kind %v", op.Kind)
}

// workerWiring finds a worker's master and compute function.
func (m *Machine) workerWiring(w *graph.Node) (graph.NodeID, *value.Func, error) {
	g := m.sched.Graph
	var masterID graph.NodeID = -1
	for _, e := range g.InEdges(w.ID) {
		if g.Node(e.From).Kind == graph.KindMaster {
			masterID = e.From
		}
	}
	if masterID < 0 {
		return -1, nil, fmt.Errorf("exec: worker %s has no master", w.Name)
	}
	comp, ok := m.reg.Lookup(w.Fn)
	if !ok {
		return -1, nil, fmt.Errorf("exec: worker function %q not registered", w.Fn)
	}
	return masterID, comp, nil
}

// runMaster executes the dynamic farm protocol: demand-driven dispatch of
// the input list to the worker pool, accumulation of results in arrival
// order, task feedback for tf, and sentinel-based termination.
func (m *Machine) runMaster(st *procState, id graph.NodeID) error {
	g := m.sched.Graph
	n := g.Node(id)
	inputs, err := m.inputsOf(st, id)
	if err != nil {
		return err
	}
	xs, ok := inputs[0].(value.List)
	if !ok {
		return fmt.Errorf("exec: farm input of %s is not a list", n.Name)
	}
	acc := inputs[1]
	accFn, ok := m.reg.Lookup(n.AccFn)
	if !ok {
		return fmt.Errorf("exec: accumulate function %q not registered", n.AccFn)
	}

	// Worker processor table, indexed by worker index.
	workerProc := make([]arch.ProcID, n.Workers)
	for _, e := range g.OutEdges(id) {
		if w := g.Node(e.To); w.Kind == graph.KindWorker {
			workerProc[w.Index] = m.sched.Assign[w.ID]
		}
	}
	sendTask := func(widx int, t transport.Task) {
		m.t.Send(st.p, workerProc[widx], transport.TaskKey(id, widx), t)
	}
	sendSentinel := func(widx int) {
		m.t.Send(st.p, workerProc[widx], transport.TaskKey(id, widx), transport.Sentinel{})
	}

	pending := make([]transport.Task, 0, len(xs))
	for i, x := range xs {
		pending = append(pending, transport.Task{Idx: i, V: x})
	}
	// In deterministic mode, buffer df results by task index and fold at
	// the end in input order.
	var buffered []value.Value
	deterministic := m.DeterministicFarm && !n.TaskFarm
	if deterministic {
		buffered = make([]value.Value, len(xs))
	}
	outstanding := 0
	idle := make([]int, 0, n.Workers)
	// Hoist the reply receiver: every receive in this farm loop uses one key.
	replies := m.t.Receiver(st.p, transport.ReplyKey(id))
	// Initial dispatch: one task per worker while tasks remain.
	for w := 0; w < n.Workers; w++ {
		if len(pending) > 0 {
			sendTask(w, pending[0])
			pending = pending[1:]
			outstanding++
		} else {
			idle = append(idle, w)
		}
	}
	for outstanding > 0 {
		rv, ok := replies.Recv()
		if !ok {
			return fmt.Errorf("exec: master receive aborted")
		}
		rep, ok := rv.(transport.Reply)
		if !ok {
			return fmt.Errorf("exec: master %s received non-reply", n.Name)
		}
		outstanding--
		if n.TaskFarm {
			pair, ok := rep.V.(value.Tuple)
			if !ok || len(pair) != 2 {
				return fmt.Errorf("exec: tf worker must return (results, new-tasks)")
			}
			ys, ok1 := pair[0].(value.List)
			more, ok2 := pair[1].(value.List)
			if !ok1 || !ok2 {
				return fmt.Errorf("exec: tf worker returned non-lists")
			}
			for _, y := range ys {
				acc = accFn.Fn([]value.Value{acc, y})
			}
			for _, x := range more {
				pending = append(pending, transport.Task{Idx: -1, V: x})
			}
		} else if deterministic {
			buffered[rep.Task] = rep.V
		} else {
			acc = accFn.Fn([]value.Value{acc, rep.V})
		}
		if len(pending) > 0 {
			sendTask(rep.Widx, pending[0])
			pending = pending[1:]
			outstanding++
		} else {
			idle = append(idle, rep.Widx)
		}
		// Re-dispatch to idle workers when tf feedback refills the queue.
		for len(pending) > 0 && len(idle) > 0 {
			w := idle[len(idle)-1]
			idle = idle[:len(idle)-1]
			sendTask(w, pending[0])
			pending = pending[1:]
			outstanding++
		}
	}
	// Terminate every worker for this iteration.
	for w := 0; w < n.Workers; w++ {
		sendSentinel(w)
	}
	if deterministic {
		for _, y := range buffered {
			acc = accFn.Fn([]value.Value{acc, y})
		}
	}
	st.outs[id] = []value.Value{acc}
	return nil
}
