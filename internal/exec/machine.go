package exec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"skipper/internal/arch"
	"skipper/internal/graph"
	"skipper/internal/skel"
	"skipper/internal/syndex"
	"skipper/internal/value"
)

// sentinel terminates a farm worker's task loop for one iteration.
type sentinel struct{}

// reply is a worker's answer to its master.
type reply struct {
	widx int
	task int // index of the task within this iteration's input list
	v    value.Value
}

// task couples a packet of work with its position in the input list.
type task struct {
	idx int
	v   value.Value
}

// mailKey addresses a mailbox slot: static edges, farm tasks (per worker)
// and farm replies (per master).
type mailKey struct {
	kind byte // 'e' static edge, 't' farm task, 'r' farm reply
	edge graph.EdgeID
	farm graph.NodeID
	widx int
}

func ekey(e graph.EdgeID) mailKey        { return mailKey{kind: 'e', edge: e} }
func tkey(m graph.NodeID, w int) mailKey { return mailKey{kind: 't', farm: m, widx: w} }
func rkey(m graph.NodeID) mailKey        { return mailKey{kind: 'r', farm: m} }

// packet travels between processors through the routers.
type packet struct {
	dst     arch.ProcID
	key     mailKey
	payload value.Value
}

// queue is an unbounded MPSC queue with abort support; routers never block
// on delivery, which (together with the topologically ordered static
// schedule) rules out store-and-forward deadlock. Consumption advances a
// head index over the backing array instead of reslicing items[1:], which
// would keep every consumed packet reachable and force the append path to
// reallocate; once the queue drains, the array is reset and reused.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []packet
	head   int
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) put(p packet) {
	q.mu.Lock()
	q.items = append(q.items, p)
	q.mu.Unlock()
	q.cond.Signal()
}

func (q *queue) get() (packet, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.items) && !q.closed {
		q.cond.Wait()
	}
	if q.head == len(q.items) {
		return packet{}, false
	}
	p := q.items[q.head]
	q.items[q.head] = packet{} // release payload for GC
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return p, true
}

func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// mslot is one mailbox key's FIFO buffer with its own lock and condition
// variable. Sharding the mailbox per key removes the seed implementation's
// single global mutex and its cond.Broadcast thundering herd: a delivery
// wakes only the consumer of that key (Signal — each key has a single
// logical consumer in the executive), and waiters on other keys are never
// scheduled spuriously. Consumption uses the same head-index discipline as
// queue, so steady-state traffic through a key is allocation-free.
type mslot struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []value.Value
	head   int
	closed bool
}

func (s *mslot) deliver(v value.Value) {
	s.mu.Lock()
	s.buf = append(s.buf, v)
	s.mu.Unlock()
	s.cond.Signal()
}

func (s *mslot) get() (value.Value, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.head == len(s.buf) && !s.closed {
		s.cond.Wait()
	}
	if s.head == len(s.buf) {
		return nil, false
	}
	v := s.buf[s.head]
	s.buf[s.head] = nil // release for GC
	s.head++
	if s.head == len(s.buf) {
		s.buf = s.buf[:0]
		s.head = 0
	}
	return v, true
}

// mailbox holds delivered payloads per key, FIFO per key, sharded into one
// independently locked slot per key. The map itself is guarded by a mutex
// taken only for slot lookup/creation; hot paths hoist the *mslot once and
// bypass the map entirely (see slot).
type mailbox struct {
	mu     sync.Mutex
	slots  map[mailKey]*mslot
	closed bool
}

func newMailbox() *mailbox {
	return &mailbox{slots: map[mailKey]*mslot{}}
}

// slot returns (creating if needed) the slot for k. The returned pointer is
// stable for the mailbox's lifetime, so callers looping on one key should
// call slot once and then deliver/get on it directly.
func (m *mailbox) slot(k mailKey) *mslot {
	m.mu.Lock()
	s, ok := m.slots[k]
	if !ok {
		s = &mslot{}
		s.cond = sync.NewCond(&s.mu)
		s.closed = m.closed // mailbox already shut down: new slots are born closed
		m.slots[k] = s
	}
	m.mu.Unlock()
	return s
}

func (m *mailbox) deliver(k mailKey, v value.Value) {
	m.slot(k).deliver(v)
}

func (m *mailbox) get(k mailKey) (value.Value, bool) {
	return m.slot(k).get()
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	slots := make([]*mslot, 0, len(m.slots))
	for _, s := range m.slots {
		slots = append(slots, s)
	}
	m.mu.Unlock()
	for _, s := range slots {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.cond.Broadcast()
	}
}

// RunResult is the outcome of executing a schedule.
type RunResult struct {
	// Outputs collects the value delivered to the Output node at each
	// iteration, in iteration order. For Output nodes with a display
	// function, the function has also been called.
	Outputs []value.Value
	// Messages is the total number of packets injected into the network
	// (tasks, replies, sentinels and static communications).
	Messages int64
	// Hops is the total number of link traversals performed by the
	// routers (Messages <= Hops on multi-hop topologies).
	Hops int64
}

// Machine executes a static schedule on goroutine "processors" connected by
// channel "links" — the operational realization of the process graph.
type Machine struct {
	sched *syndex.Schedule
	reg   *value.Registry

	// DeterministicFarm makes df masters accumulate results in input-list
	// order instead of arrival order. The paper requires the accumulating
	// function to be commutative and associative precisely because arrival
	// order is unpredictable; this mode lifts that requirement (at the cost
	// of buffering all results), making the executive bit-identical to the
	// sequential emulation even for non-commutative accumulators. tf farms
	// are unaffected (their task order is itself dynamic).
	DeterministicFarm bool

	queues []*queue
	boxes  []*mailbox

	// pool hosts the per-iteration farm-worker processes. The seed spawned
	// a fresh goroutine per worker node per iteration; persistent pool
	// workers make steady-state frame iterations goroutine-setup-free.
	pool *skel.Pool

	outMu   sync.Mutex
	outputs map[int]value.Value // iteration -> output

	errMu sync.Mutex
	err   error
	wg    sync.WaitGroup // worker goroutines

	messages atomic.Int64
	hops     atomic.Int64
}

// NewMachine prepares an executive for the given schedule and registry.
func NewMachine(sched *syndex.Schedule, reg *value.Registry) *Machine {
	return &Machine{sched: sched, reg: reg, outputs: map[int]value.Value{}}
}

// Run executes iters iterations of the distributed program (1 for one-shot
// graphs) and returns the collected outputs.
func (m *Machine) Run(iters int) (*RunResult, error) {
	return m.RunWithTimeout(iters, 0)
}

// RunWithTimeout is Run with a watchdog: if the executive has not completed
// within d, every blocked communication is aborted and a timeout error is
// returned. A zero duration disables the watchdog. The watchdog can only
// interrupt communication waits — a user sequential function that never
// returns cannot be cancelled.
func (m *Machine) RunWithTimeout(iters int, d time.Duration) (*RunResult, error) {
	if iters < 1 {
		iters = 1
	}
	n := m.sched.Arch.N
	m.pool = skel.NewPool(n)
	defer m.pool.Close()
	m.queues = make([]*queue, n)
	m.boxes = make([]*mailbox, n)
	for i := 0; i < n; i++ {
		m.queues[i] = newQueue()
		m.boxes[i] = newMailbox()
	}
	// Routers: one per processor, forwarding store-and-forward packets.
	var routerWG sync.WaitGroup
	for i := 0; i < n; i++ {
		routerWG.Add(1)
		go func(p arch.ProcID) {
			defer routerWG.Done()
			for {
				pkt, ok := m.queues[p].get()
				if !ok {
					return
				}
				if pkt.dst == p {
					m.boxes[p].deliver(pkt.key, pkt.payload)
					continue
				}
				next := m.sched.Arch.NextHop(p, pkt.dst)
				if next < 0 {
					m.fail(fmt.Errorf("exec: no route from %d to %d", p, pkt.dst))
					return
				}
				m.hops.Add(1)
				m.queues[next].put(pkt)
			}
		}(arch.ProcID(i))
	}
	// Processors.
	var procWG sync.WaitGroup
	for i := 0; i < n; i++ {
		procWG.Add(1)
		go func(p arch.ProcID) {
			defer procWG.Done()
			m.runProcessor(p, iters)
		}(arch.ProcID(i))
	}
	// Watchdog: abort all communication waits if the deadline passes.
	var watchdog *time.Timer
	if d > 0 {
		watchdog = time.AfterFunc(d, func() {
			m.fail(fmt.Errorf("exec: executive did not complete within %v (communication stalled)", d))
		})
	}
	procWG.Wait()
	if watchdog != nil {
		watchdog.Stop()
	}
	m.wg.Wait() // farm workers
	for i := 0; i < n; i++ {
		m.queues[i].close()
		m.boxes[i].close()
	}
	routerWG.Wait()
	if err := m.firstErr(); err != nil {
		return nil, err
	}
	res := &RunResult{Messages: m.messages.Load(), Hops: m.hops.Load()}
	for i := 0; i < iters; i++ {
		if v, ok := m.outputs[i]; ok {
			res.Outputs = append(res.Outputs, v)
		}
	}
	return res, nil
}

// fail records the first error and unblocks everything.
func (m *Machine) fail(err error) {
	m.errMu.Lock()
	already := m.err != nil
	if !already {
		m.err = err
	}
	m.errMu.Unlock()
	if already {
		return
	}
	for _, q := range m.queues {
		q.close()
	}
	for _, b := range m.boxes {
		b.close()
	}
}

// firstErr returns the recorded error, if any.
func (m *Machine) firstErr() error {
	m.errMu.Lock()
	defer m.errMu.Unlock()
	return m.err
}

// runFarmWorker runs a farm worker body on the persistent pool, pinning the
// processor identity the body was launched from.
func (m *Machine) runFarmWorker(p arch.ProcID, body func(arch.ProcID)) {
	m.pool.Go(func() { body(p) })
}

// send injects a packet at processor p; the routers take it from there.
func (m *Machine) send(p arch.ProcID, pkt packet) {
	m.messages.Add(1)
	m.queues[p].put(pkt)
}

// procState is the per-processor, per-iteration execution context.
type procState struct {
	p    arch.ProcID
	outs map[graph.NodeID][]value.Value // local node outputs this iteration
	recv map[graph.EdgeID]value.Value   // received static edge values
}

// runProcessor interprets the processor's static program iters times.
func (m *Machine) runProcessor(p arch.ProcID, iters int) {
	prog := m.sched.Programs[p]
	mem := map[graph.NodeID]value.Value{} // Mem node state, persists
	for iter := 0; iter < iters; iter++ {
		st := &procState{
			p:    p,
			outs: map[graph.NodeID][]value.Value{},
			recv: map[graph.EdgeID]value.Value{},
		}
		for _, op := range prog {
			if m.firstErr() != nil {
				return
			}
			if err := m.step(st, op, mem, iter); err != nil {
				m.fail(err)
				return
			}
		}
	}
}

// inputsOf gathers a node's input values, in port order, from local outputs
// or received packets. Back edges are excluded (Mem handles them).
func (m *Machine) inputsOf(st *procState, id graph.NodeID) ([]value.Value, error) {
	g := m.sched.Graph
	var inputs []value.Value
	for _, e := range g.InEdges(id) {
		if e.Back || e.Intra {
			continue
		}
		if m.sched.Assign[e.From] == st.p {
			outs, ok := st.outs[e.From]
			if !ok || e.FromPort >= len(outs) {
				return nil, fmt.Errorf("exec: value for edge %d not yet produced at %s",
					e.ID, g.Node(id).Name)
			}
			inputs = append(inputs, outs[e.FromPort])
		} else {
			v, ok := st.recv[e.ID]
			if !ok {
				return nil, fmt.Errorf("exec: edge %d consumed before receive at %s",
					e.ID, g.Node(id).Name)
			}
			inputs = append(inputs, v)
		}
	}
	return inputs, nil
}

func (m *Machine) step(st *procState, op syndex.Op, mem map[graph.NodeID]value.Value, iter int) error {
	g := m.sched.Graph
	switch op.Kind {
	case syndex.OpRecv:
		v, ok := m.boxes[st.p].get(ekey(op.Edge))
		if !ok {
			return fmt.Errorf("exec: receive aborted")
		}
		st.recv[op.Edge] = v
		return nil

	case syndex.OpSend:
		e := g.Edges[op.Edge]
		outs, ok := st.outs[e.From]
		if !ok || e.FromPort >= len(outs) {
			return fmt.Errorf("exec: send of unproduced edge %d", e.ID)
		}
		m.send(st.p, packet{dst: op.Peer, key: ekey(e.ID), payload: outs[e.FromPort]})
		return nil

	case syndex.OpExec:
		n := g.Node(op.Node)
		if n.Kind == graph.KindMem {
			// Read: iteration 0 uses the init input; later iterations use
			// the stored feedback value.
			v, ok := mem[n.ID]
			if !ok {
				inputs, err := m.inputsOf(st, n.ID)
				if err != nil {
					return err
				}
				v = inputs[0]
			}
			st.outs[n.ID] = []value.Value{v}
			return nil
		}
		inputs, err := m.inputsOf(st, n.ID)
		if err != nil {
			return err
		}
		outs, err := EvalNode(n, m.reg, inputs)
		if err != nil {
			return err
		}
		st.outs[n.ID] = outs
		if n.Kind == graph.KindOutput {
			m.outMu.Lock()
			m.outputs[iter] = inputs[0]
			m.outMu.Unlock()
		}
		return nil

	case syndex.OpMemWrite:
		n := g.Node(op.Node)
		for _, e := range g.InEdges(n.ID) {
			if !e.Back {
				continue
			}
			var v value.Value
			if m.sched.Assign[e.From] == st.p {
				outs, ok := st.outs[e.From]
				if !ok || e.FromPort >= len(outs) {
					return fmt.Errorf("exec: mem feedback not produced")
				}
				v = outs[e.FromPort]
			} else {
				rv, ok := st.recv[e.ID]
				if !ok {
					return fmt.Errorf("exec: mem feedback edge %d not received", e.ID)
				}
				v = rv
			}
			mem[n.ID] = v
		}
		return nil

	case syndex.OpWorker:
		w := g.Node(op.Node)
		masterID, comp, err := m.workerWiring(w)
		if err != nil {
			return err
		}
		masterProc := m.sched.Assign[masterID]
		m.wg.Add(1)
		m.runFarmWorker(st.p, func(p arch.ProcID) {
			defer m.wg.Done()
			// Hoist the task slot: the loop always waits on the same key.
			tasks := m.boxes[p].slot(tkey(masterID, w.Index))
			for {
				tv, ok := tasks.get()
				if !ok {
					return
				}
				if _, done := tv.(sentinel); done {
					return
				}
				tk, ok := tv.(task)
				if !ok {
					m.fail(fmt.Errorf("exec: worker received non-task payload"))
					return
				}
				y := comp.Fn([]value.Value{tk.v})
				m.send(p, packet{dst: masterProc, key: rkey(masterID),
					payload: reply{widx: w.Index, task: tk.idx, v: y}})
			}
		})
		return nil

	case syndex.OpMaster:
		return m.runMaster(st, op.Node)
	}
	return fmt.Errorf("exec: unknown op kind %v", op.Kind)
}

// workerWiring finds a worker's master and compute function.
func (m *Machine) workerWiring(w *graph.Node) (graph.NodeID, *value.Func, error) {
	g := m.sched.Graph
	var masterID graph.NodeID = -1
	for _, e := range g.InEdges(w.ID) {
		if g.Node(e.From).Kind == graph.KindMaster {
			masterID = e.From
		}
	}
	if masterID < 0 {
		return -1, nil, fmt.Errorf("exec: worker %s has no master", w.Name)
	}
	comp, ok := m.reg.Lookup(w.Fn)
	if !ok {
		return -1, nil, fmt.Errorf("exec: worker function %q not registered", w.Fn)
	}
	return masterID, comp, nil
}

// runMaster executes the dynamic farm protocol: demand-driven dispatch of
// the input list to the worker pool, accumulation of results in arrival
// order, task feedback for tf, and sentinel-based termination.
func (m *Machine) runMaster(st *procState, id graph.NodeID) error {
	g := m.sched.Graph
	n := g.Node(id)
	inputs, err := m.inputsOf(st, id)
	if err != nil {
		return err
	}
	xs, ok := inputs[0].(value.List)
	if !ok {
		return fmt.Errorf("exec: farm input of %s is not a list", n.Name)
	}
	acc := inputs[1]
	accFn, ok := m.reg.Lookup(n.AccFn)
	if !ok {
		return fmt.Errorf("exec: accumulate function %q not registered", n.AccFn)
	}

	// Worker processor table, indexed by worker index.
	workerProc := make([]arch.ProcID, n.Workers)
	for _, e := range g.OutEdges(id) {
		if w := g.Node(e.To); w.Kind == graph.KindWorker {
			workerProc[w.Index] = m.sched.Assign[w.ID]
		}
	}
	sendTask := func(widx int, t task) {
		m.send(st.p, packet{dst: workerProc[widx], key: tkey(id, widx), payload: t})
	}
	sendSentinel := func(widx int) {
		m.send(st.p, packet{dst: workerProc[widx], key: tkey(id, widx), payload: sentinel{}})
	}

	pending := make([]task, 0, len(xs))
	for i, x := range xs {
		pending = append(pending, task{idx: i, v: x})
	}
	// In deterministic mode, buffer df results by task index and fold at
	// the end in input order.
	var buffered []value.Value
	deterministic := m.DeterministicFarm && !n.TaskFarm
	if deterministic {
		buffered = make([]value.Value, len(xs))
	}
	outstanding := 0
	idle := make([]int, 0, n.Workers)
	// Hoist the reply slot: every receive in this farm loop uses one key.
	replies := m.boxes[st.p].slot(rkey(id))
	// Initial dispatch: one task per worker while tasks remain.
	for w := 0; w < n.Workers; w++ {
		if len(pending) > 0 {
			sendTask(w, pending[0])
			pending = pending[1:]
			outstanding++
		} else {
			idle = append(idle, w)
		}
	}
	for outstanding > 0 {
		rv, ok := replies.get()
		if !ok {
			return fmt.Errorf("exec: master receive aborted")
		}
		rep, ok := rv.(reply)
		if !ok {
			return fmt.Errorf("exec: master %s received non-reply", n.Name)
		}
		outstanding--
		if n.TaskFarm {
			pair, ok := rep.v.(value.Tuple)
			if !ok || len(pair) != 2 {
				return fmt.Errorf("exec: tf worker must return (results, new-tasks)")
			}
			ys, ok1 := pair[0].(value.List)
			more, ok2 := pair[1].(value.List)
			if !ok1 || !ok2 {
				return fmt.Errorf("exec: tf worker returned non-lists")
			}
			for _, y := range ys {
				acc = accFn.Fn([]value.Value{acc, y})
			}
			for _, x := range more {
				pending = append(pending, task{idx: -1, v: x})
			}
		} else if deterministic {
			buffered[rep.task] = rep.v
		} else {
			acc = accFn.Fn([]value.Value{acc, rep.v})
		}
		if len(pending) > 0 {
			sendTask(rep.widx, pending[0])
			pending = pending[1:]
			outstanding++
		} else {
			idle = append(idle, rep.widx)
		}
		// Re-dispatch to idle workers when tf feedback refills the queue.
		for len(pending) > 0 && len(idle) > 0 {
			w := idle[len(idle)-1]
			idle = idle[:len(idle)-1]
			sendTask(w, pending[0])
			pending = pending[1:]
			outstanding++
		}
	}
	// Terminate every worker for this iteration.
	for w := 0; w < n.Workers; w++ {
		sendSentinel(w)
	}
	if deterministic {
		for _, y := range buffered {
			acc = accFn.Fn([]value.Value{acc, y})
		}
	}
	st.outs[id] = []value.Value{acc}
	return nil
}
