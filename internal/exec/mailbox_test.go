package exec

import (
	"sync"
	"testing"

	"skipper/internal/graph"
)

// TestMailboxSteadyStateAllocationFree is the regression test for the seed
// retention bug: m.slots[k] = m.slots[k][1:] kept every consumed head
// element reachable and forced append to grow a fresh backing array, so
// pumping packets through one key allocated without bound. The sharded
// slot consumes via a head index and resets the backing array on drain:
// after warm-up, a deliver/get pair through one key must not allocate.
func TestMailboxSteadyStateAllocationFree(t *testing.T) {
	m := newMailbox()
	k := ekey(graph.EdgeID(1))
	s := m.slot(k)
	payload := struct{}{} // zero-size: boxing never allocates
	// Warm up: let the slot buffer reach steady state.
	for i := 0; i < 100; i++ {
		s.deliver(payload)
		if _, ok := s.get(); !ok {
			t.Fatal("get failed during warm-up")
		}
	}
	allocs := testing.AllocsPerRun(10_000, func() {
		s.deliver(payload)
		if _, ok := s.get(); !ok {
			t.Fatal("get failed")
		}
	})
	if allocs > 0 {
		t.Fatalf("deliver/get through one key allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestMailboxBurstBoundedMemory pushes 10k packets through a single key in
// bursts and checks the slot's backing buffer stays bounded by the largest
// burst rather than growing with total traffic.
func TestMailboxBurstBoundedMemory(t *testing.T) {
	m := newMailbox()
	k := rkey(graph.NodeID(7))
	s := m.slot(k)
	const burst = 64
	for round := 0; round < 10_000/burst; round++ {
		for i := 0; i < burst; i++ {
			s.deliver(i)
		}
		for i := 0; i < burst; i++ {
			v, ok := s.get()
			if !ok {
				t.Fatal("get failed")
			}
			if v.(int) != i {
				t.Fatalf("FIFO broken: got %v at position %d", v, i)
			}
		}
	}
	if got := cap(s.buf); got > 2*burst {
		t.Fatalf("slot buffer grew to cap %d after 10k packets; want bounded by burst size %d", got, burst)
	}
}

// TestMailboxFIFOPerKeyUnderConcurrency checks per-key FIFO order with many
// keys delivered and consumed concurrently (run with -race).
func TestMailboxFIFOPerKeyUnderConcurrency(t *testing.T) {
	m := newMailbox()
	const keys = 16
	const perKey = 2000
	var wg sync.WaitGroup
	for ki := 0; ki < keys; ki++ {
		k := ekey(graph.EdgeID(ki))
		wg.Add(2)
		go func() { // producer: one ordered stream per key
			defer wg.Done()
			for i := 0; i < perKey; i++ {
				m.deliver(k, i)
			}
		}()
		go func() { // consumer
			defer wg.Done()
			for i := 0; i < perKey; i++ {
				v, ok := m.get(k)
				if !ok {
					t.Errorf("key %v: get failed at %d", k, i)
					return
				}
				if v.(int) != i {
					t.Errorf("key %v: FIFO broken, got %v want %d", k, v, i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestMailboxCloseUnblocksWaiters checks clean shutdown: blocked getters on
// any key return ok=false once the mailbox closes, and values delivered
// before close are still drained first.
func TestMailboxCloseUnblocksWaiters(t *testing.T) {
	m := newMailbox()
	kEmpty := ekey(graph.EdgeID(1))
	kFull := ekey(graph.EdgeID(2))
	m.deliver(kFull, "leftover")

	var wg sync.WaitGroup
	wg.Add(1)
	started := make(chan struct{})
	go func() {
		defer wg.Done()
		close(started)
		if _, ok := m.get(kEmpty); ok {
			t.Error("get on empty key returned ok after close")
		}
	}()
	<-started
	m.close()
	wg.Wait()

	// Delivered-before-close values drain, then the key reports closed.
	if v, ok := m.get(kFull); !ok || v.(string) != "leftover" {
		t.Fatalf("pre-close value lost: %v %v", v, ok)
	}
	if _, ok := m.get(kFull); ok {
		t.Fatal("drained closed key still returns ok")
	}
	// Keys first touched after close are born closed.
	if _, ok := m.get(ekey(graph.EdgeID(3))); ok {
		t.Fatal("new key on closed mailbox returned ok")
	}
}
