package transport

import (
	"encoding/binary"
	"fmt"
	"io"

	"skipper/internal/value"
)

// Farm protocol frames. These travel through the transport like any other
// payload: over the mem backend they are passed by reference, over the net
// backend they are flattened by the codec extensions registered below, so a
// master and its workers can sit in different OS processes.

// Sentinel terminates a farm worker's task loop for one iteration.
type Sentinel struct{}

// Task couples a packet of work with its position in the input list
// (Idx = -1 for tasks spawned dynamically by tf feedback). Gen tags the
// master invocation that dispatched it: workers echo it back in the Reply,
// and a fault-tolerant master ignores replies from other generations — a
// deadline-suspected worker may deliver its answer late, after the task was
// re-dispatched or even after the next iteration's farm started, and task
// indices repeat across iterations.
type Task struct {
	Idx int
	Gen int64
	V   value.Value
}

// Reply is a worker's answer to its master.
type Reply struct {
	Widx int
	Task int   // index of the task within this iteration's input list
	Gen  int64 // echoed from the Task, see Task.Gen
	V    value.Value
}

func init() {
	value.RegisterExt(value.Ext{
		Name:   "exec.Sentinel",
		Match:  func(v value.Value) bool { _, ok := v.(Sentinel); return ok },
		Encode: func(buf []byte, v value.Value) ([]byte, error) { return buf, nil },
		Size:   func(value.Value) int { return 0 },
		Decode: func(payload []byte) (value.Value, error) {
			if len(payload) != 0 {
				return nil, fmt.Errorf("sentinel frame carries %d payload bytes", len(payload))
			}
			return Sentinel{}, nil
		},
	})
	value.RegisterExt(value.Ext{
		Name:  "exec.Task",
		Match: func(v value.Value) bool { _, ok := v.(Task); return ok },
		Encode: func(buf []byte, v value.Value) ([]byte, error) {
			t := v.(Task)
			buf = value.AppendI64(buf, int64(t.Idx))
			buf = value.AppendI64(buf, t.Gen)
			return value.Encode(buf, t.V)
		},
		Size: func(v value.Value) int {
			n := value.EncodeSize(v.(Task).V)
			if n < 0 {
				return -1
			}
			return 16 + n
		},
		EncodeTail: func(buf []byte, v value.Value) ([]byte, []byte, error) {
			t := v.(Task)
			buf = value.AppendI64(buf, int64(t.Idx))
			buf = value.AppendI64(buf, t.Gen)
			return value.EncodeTrailing(buf, t.V)
		},
		Decode: func(payload []byte) (value.Value, error) {
			idx, pos, err := value.ReadI64(payload, 0)
			if err != nil {
				return nil, err
			}
			gen, pos, err := value.ReadI64(payload, pos)
			if err != nil {
				return nil, err
			}
			v, rest, err := value.DecodePrefix(payload[pos:])
			if err != nil {
				return nil, err
			}
			if len(rest) != 0 {
				return nil, fmt.Errorf("trailing bytes after task frame")
			}
			return Task{Idx: int(idx), Gen: gen, V: v}, nil
		},
		DecodeFrom: func(r io.Reader, n int) (value.Value, error) {
			var hdr [16]byte
			if n < len(hdr) {
				return nil, fmt.Errorf("truncated task header (%d bytes)", n)
			}
			if _, err := io.ReadFull(r, hdr[:]); err != nil {
				return nil, err
			}
			v, err := value.DecodeStream(r, n-len(hdr))
			if err != nil {
				return nil, err
			}
			return Task{
				Idx: int(int64(binary.BigEndian.Uint64(hdr[0:]))),
				Gen: int64(binary.BigEndian.Uint64(hdr[8:])),
				V:   v,
			}, nil
		},
	})
	value.RegisterExt(value.Ext{
		Name:  "exec.Reply",
		Match: func(v value.Value) bool { _, ok := v.(Reply); return ok },
		Encode: func(buf []byte, v value.Value) ([]byte, error) {
			r := v.(Reply)
			buf = value.AppendI64(buf, int64(r.Widx))
			buf = value.AppendI64(buf, int64(r.Task))
			buf = value.AppendI64(buf, r.Gen)
			return value.Encode(buf, r.V)
		},
		Size: func(v value.Value) int {
			n := value.EncodeSize(v.(Reply).V)
			if n < 0 {
				return -1
			}
			return 24 + n
		},
		EncodeTail: func(buf []byte, v value.Value) ([]byte, []byte, error) {
			r := v.(Reply)
			buf = value.AppendI64(buf, int64(r.Widx))
			buf = value.AppendI64(buf, int64(r.Task))
			buf = value.AppendI64(buf, r.Gen)
			return value.EncodeTrailing(buf, r.V)
		},
		Decode: func(payload []byte) (value.Value, error) {
			widx, pos, err := value.ReadI64(payload, 0)
			if err != nil {
				return nil, err
			}
			task, pos, err := value.ReadI64(payload, pos)
			if err != nil {
				return nil, err
			}
			gen, pos, err := value.ReadI64(payload, pos)
			if err != nil {
				return nil, err
			}
			v, rest, err := value.DecodePrefix(payload[pos:])
			if err != nil {
				return nil, err
			}
			if len(rest) != 0 {
				return nil, fmt.Errorf("trailing bytes after reply frame")
			}
			return Reply{Widx: int(widx), Task: int(task), Gen: gen, V: v}, nil
		},
		DecodeFrom: func(r io.Reader, n int) (value.Value, error) {
			var hdr [24]byte
			if n < len(hdr) {
				return nil, fmt.Errorf("truncated reply header (%d bytes)", n)
			}
			if _, err := io.ReadFull(r, hdr[:]); err != nil {
				return nil, err
			}
			v, err := value.DecodeStream(r, n-len(hdr))
			if err != nil {
				return nil, err
			}
			return Reply{
				Widx: int(int64(binary.BigEndian.Uint64(hdr[0:]))),
				Task: int(int64(binary.BigEndian.Uint64(hdr[8:]))),
				Gen:  int64(binary.BigEndian.Uint64(hdr[16:])),
				V:    v,
			}, nil
		},
	})
}
