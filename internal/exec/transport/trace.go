package transport

import (
	"sync"

	"skipper/internal/obsv"
)

// TraceSink is implemented by transports that can record their traffic into
// an event recorder. SetTrace must be called before the run's traffic
// starts; a nil recorder (or never calling SetTrace) keeps the transport on
// its untraced path, which costs one predictable branch per operation and
// zero allocations.
type TraceSink interface {
	SetTrace(r *obsv.Recorder)
}

// KeyLabels caches the interned label id of each mailbox key so the send
// and receive hot paths never format a Key (Key.String allocates). Lookup
// is a shared-read map access; misses take the write lock once per distinct
// key per run.
type KeyLabels struct {
	mu  sync.RWMutex
	rec *obsv.Recorder
	ids map[Key]uint32
}

// Reset binds the cache to recorder r and clears previously cached ids.
func (kl *KeyLabels) Reset(r *obsv.Recorder) {
	kl.mu.Lock()
	kl.rec = r
	kl.ids = map[Key]uint32{}
	kl.mu.Unlock()
}

// Of returns the interned label id for k, interning k.String() on first use.
func (kl *KeyLabels) Of(k Key) uint32 {
	kl.mu.RLock()
	id, ok := kl.ids[k]
	kl.mu.RUnlock()
	if ok {
		return id
	}
	kl.mu.Lock()
	defer kl.mu.Unlock()
	if id, ok := kl.ids[k]; ok {
		return id
	}
	id = kl.rec.Intern(k.String())
	kl.ids[k] = id
	return id
}
