// Package transport defines the communication substrate of the distributed
// executive. The paper's executive is kernel-portable by construction: the
// same macro-code runs on any MIMD-DM kernel that supplies "thread creation,
// communication and synchronisation" primitives (§3). This package is that
// seam in Go form — the scheduler core in internal/exec is written against
// the Transport interface, and interchangeable backends supply the
// primitives:
//
//   - memtransport: goroutine processors, sharded in-process mailboxes and
//     store-and-forward router loops over the architecture graph (the
//     seed's original substrate, factored out);
//   - nettransport: one OS process per processor, length-prefixed binary
//     frames over TCP with a hub routing process.
//
// Contract (see DESIGN.md §8): messages addressed to the same (processor,
// key) pair are delivered FIFO with respect to one sender; Send never
// blocks on the consumer; Recv blocks until a message arrives or the
// transport is aborted; after Abort every blocked and future Recv returns
// ok=false. Payload values are owned by the receiver once delivered —
// senders must not mutate a payload after Send (the mem backend passes
// references, the net backend copies through the wire codec).
package transport

import (
	"fmt"

	"skipper/internal/arch"
	"skipper/internal/graph"
	"skipper/internal/value"
)

// Key addresses one mailbox FIFO on a processor: a static edge, a farm
// worker's task stream, or a farm master's reply stream.
type Key struct {
	Kind byte // 'e' static edge, 't' farm task, 'r' farm reply
	Edge graph.EdgeID
	Farm graph.NodeID
	Widx int
}

// EdgeKey addresses the mailbox of a statically scheduled communication.
func EdgeKey(e graph.EdgeID) Key { return Key{Kind: 'e', Edge: e} }

// TaskKey addresses worker w's task stream within master m's farm.
func TaskKey(m graph.NodeID, w int) Key { return Key{Kind: 't', Farm: m, Widx: w} }

// ReplyKey addresses master m's reply stream.
func ReplyKey(m graph.NodeID) Key { return Key{Kind: 'r', Farm: m} }

func (k Key) String() string {
	switch k.Kind {
	case 'e':
		return fmt.Sprintf("edge(%d)", k.Edge)
	case 't':
		return fmt.Sprintf("task(m%d,w%d)", k.Farm, k.Widx)
	case 'r':
		return fmt.Sprintf("reply(m%d)", k.Farm)
	}
	return fmt.Sprintf("key(%q)", k.Kind)
}

// Stats reports the traffic a transport carried. Backends maintain every
// field with atomics, so Stats may be called concurrently with traffic
// (e.g. by a metrics scrape mid-run); each field is individually coherent,
// though the snapshot as a whole is not taken atomically across fields.
type Stats struct {
	// Messages is the number of payloads injected via Send.
	Messages int64
	// Hops is the number of link traversals (mem backend: router forwards
	// over the architecture graph; net backend: frames relayed by the hub).
	Hops int64
	// Direct is the number of frames shipped point-to-point over the net
	// backend's peer mesh, bypassing the hub entirely. Always zero for the
	// mem backend (every in-process delivery is already direct).
	Direct int64
	// BytesSent is the payload volume injected via Send, and BytesRecv the
	// volume delivered to local consumers. The mem backend sizes payloads
	// with value.SizeOf; the net backend counts encoded wire bytes
	// (excluding frame headers). In a steady single-process run the two
	// converge; mid-run BytesRecv trails BytesSent by the in-flight volume.
	BytesSent int64
	BytesRecv int64
}

// Receiver is a single-key receive endpoint, hoisted out of hot loops so
// steady-state farm traffic skips the per-receive key lookup (the mem
// backend returns the mailbox slot itself, preserving the 0-alloc contract).
type Receiver interface {
	Recv() (value.Value, bool)
}

// Transport is the communication substrate a Machine executes over. A
// transport instance serves a fixed set of locally attached processors
// (all of them for the in-process backend, this OS process's share for the
// distributed one); Send accepts any destination, Recv only local ones.
type Transport interface {
	// Send injects a message at local processor src addressed to processor
	// dst (possibly src itself). It never blocks on the consumer.
	Send(src, dst arch.ProcID, key Key, payload value.Value)
	// Recv blocks until a message for local processor p on key arrives.
	// ok=false means the transport was aborted or closed.
	Recv(p arch.ProcID, key Key) (value.Value, bool)
	// Receiver returns a dedicated receive endpoint for (p, key).
	Receiver(p arch.ProcID, key Key) Receiver
	// Abort unblocks every pending and future Recv with ok=false. It is
	// idempotent and safe to call concurrently with traffic.
	Abort()
	// Close releases the transport's resources (connections, router
	// goroutines). The transport must not be used afterwards.
	Close() error
	// Err returns the first internal transport failure (routing error,
	// connection loss, codec mismatch), or nil.
	Err() error
	// Stats reports the traffic carried so far.
	Stats() Stats
}
