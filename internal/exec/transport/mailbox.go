package transport

import (
	"sync"

	"skipper/internal/obsv"
	"skipper/internal/value"
)

// Slot is one mailbox key's FIFO buffer with its own lock and condition
// variable. Sharding the mailbox per key removes a single global mutex and
// its cond.Broadcast thundering herd: a delivery wakes only the consumer of
// that key (Signal — each key has a single logical consumer in the
// executive), and waiters on other keys are never scheduled spuriously.
// Consumption advances a head index over the backing array instead of
// reslicing buf[1:], which would keep every consumed payload reachable and
// force the append path to reallocate; once the buffer drains, the array is
// reset and reused, so steady-state traffic through a key is
// allocation-free.
type Slot struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []value.Value
	head   int
	closed bool
	killed bool // processor declared dead: drop buffered and future values

	// Tracing (set once via Mailbox.SetTrace before traffic; read under mu).
	// rec == nil is the common case and costs one branch per operation.
	rec   *obsv.Recorder
	proc  int32
	label uint32
}

// Deliver appends v to the slot's FIFO and wakes its consumer. Deliveries
// to a killed slot are dropped — a dead processor consumes nothing.
func (s *Slot) Deliver(v value.Value) {
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return
	}
	s.buf = append(s.buf, v)
	if s.rec != nil {
		s.rec.Record(s.proc, obsv.EvEnqueue, s.label, -1, int64(len(s.buf)-s.head))
	}
	s.mu.Unlock()
	s.cond.Signal()
}

// Recv blocks until a value is available or the slot is closed. Values
// delivered before close are still drained in order; afterwards ok=false.
func (s *Slot) Recv() (value.Value, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.head == len(s.buf) && !s.closed {
		// Only an actual park is evented; an immediate hit stays silent so
		// steady-state traffic doesn't flood the ring with park/wake pairs.
		if s.rec != nil {
			s.rec.Record(s.proc, obsv.EvPark, s.label, -1, 0)
		}
		for s.head == len(s.buf) && !s.closed {
			s.cond.Wait()
		}
		if s.rec != nil {
			s.rec.Record(s.proc, obsv.EvWake, s.label, -1, int64(len(s.buf)-s.head))
		}
	}
	if s.head == len(s.buf) {
		return nil, false
	}
	v := s.buf[s.head]
	s.buf[s.head] = nil // release for GC
	s.head++
	if s.head == len(s.buf) {
		s.buf = s.buf[:0]
		s.head = 0
	}
	return v, true
}

// kill drops everything: buffered values are discarded, future deliveries
// are ignored, and every blocked or future Recv returns ok=false at once.
// This is death semantics, distinct from Close's drain-then-false shutdown.
func (s *Slot) kill() {
	s.mu.Lock()
	s.killed = true
	s.closed = true
	for i := range s.buf {
		s.buf[i] = nil
	}
	s.buf = s.buf[:0]
	s.head = 0
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Cap exposes the backing buffer capacity for boundedness tests.
func (s *Slot) Cap() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return cap(s.buf)
}

// Depth reports the number of delivered-but-unconsumed values.
func (s *Slot) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf) - s.head
}

// Mailbox holds delivered payloads per key, FIFO per key, sharded into one
// independently locked Slot per key. The map itself is guarded by a mutex
// taken only for slot lookup/creation; hot paths hoist the *Slot once and
// bypass the map entirely (see Slot).
type Mailbox struct {
	mu     sync.Mutex
	slots  map[Key]*Slot
	closed bool
	killed bool // processor declared dead; new slots are born killed

	// Tracing wiring applied to every slot (existing and future); see
	// SetTrace.
	rec  *obsv.Recorder
	proc int32
	kl   *KeyLabels
}

// NewMailbox returns an empty open mailbox.
func NewMailbox() *Mailbox {
	return &Mailbox{slots: map[Key]*Slot{}}
}

// Slot returns (creating if needed) the slot for k. The returned pointer is
// stable for the mailbox's lifetime, so callers looping on one key should
// call Slot once and then Deliver/Recv on it directly.
func (m *Mailbox) Slot(k Key) *Slot {
	m.mu.Lock()
	s, ok := m.slots[k]
	if !ok {
		s = &Slot{}
		s.cond = sync.NewCond(&s.mu)
		s.closed = m.closed // mailbox already shut down: new slots are born closed
		s.killed = m.killed
		if m.rec != nil {
			s.rec, s.proc, s.label = m.rec, m.proc, m.kl.Of(k)
		}
		m.slots[k] = s
	}
	m.mu.Unlock()
	return s
}

// SetTrace arms mailbox-event recording (enqueue depth, consumer park/wake)
// for processor proc on recorder r, labelling events through kl. It applies
// to existing slots and to slots created afterwards, and must be called
// before traffic starts.
func (m *Mailbox) SetTrace(r *obsv.Recorder, proc int32, kl *KeyLabels) {
	m.mu.Lock()
	m.rec, m.proc, m.kl = r, proc, kl
	for k, s := range m.slots {
		s.mu.Lock()
		s.rec, s.proc, s.label = r, proc, kl.Of(k)
		s.mu.Unlock()
	}
	m.mu.Unlock()
}

// Depth reports the total number of delivered-but-unconsumed values across
// all slots (a point-in-time queue-depth gauge for metrics).
func (m *Mailbox) Depth() int {
	m.mu.Lock()
	slots := make([]*Slot, 0, len(m.slots))
	for _, s := range m.slots {
		slots = append(slots, s)
	}
	m.mu.Unlock()
	n := 0
	for _, s := range slots {
		n += s.Depth()
	}
	return n
}

// Deliver appends v to key k's FIFO.
func (m *Mailbox) Deliver(k Key, v value.Value) {
	m.Slot(k).Deliver(v)
}

// Recv blocks on key k; see Slot.Recv.
func (m *Mailbox) Recv(k Key) (value.Value, bool) {
	return m.Slot(k).Recv()
}

// Kill declares the mailbox's processor dead: buffered values are dropped,
// future deliveries are ignored, and every blocked or future Recv returns
// ok=false immediately. Unlike Close, nothing is drained — a dead processor
// does not get to finish consuming its backlog.
func (m *Mailbox) Kill() {
	m.mu.Lock()
	m.closed = true
	m.killed = true
	slots := make([]*Slot, 0, len(m.slots))
	for _, s := range m.slots {
		slots = append(slots, s)
	}
	m.mu.Unlock()
	for _, s := range slots {
		s.kill()
	}
}

// Close shuts the mailbox down: every blocked Recv returns ok=false once
// its slot drains, and slots first touched after Close are born closed.
func (m *Mailbox) Close() {
	m.mu.Lock()
	m.closed = true
	slots := make([]*Slot, 0, len(m.slots))
	for _, s := range m.slots {
		slots = append(slots, s)
	}
	m.mu.Unlock()
	for _, s := range slots {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.cond.Broadcast()
	}
}
