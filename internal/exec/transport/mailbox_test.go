package transport

import (
	"sync"
	"testing"

	"skipper/internal/graph"
	"skipper/internal/value"
)

// TestMailboxSteadyStateAllocationFree is the regression test for the seed
// retention bug: m.slots[k] = m.slots[k][1:] kept every consumed head
// element reachable and forced append to grow a fresh backing array, so
// pumping packets through one key allocated without bound. The sharded
// slot consumes via a head index and resets the backing array on drain:
// after warm-up, a Deliver/Recv pair through one key must not allocate.
func TestMailboxSteadyStateAllocationFree(t *testing.T) {
	m := NewMailbox()
	k := EdgeKey(graph.EdgeID(1))
	s := m.Slot(k)
	payload := struct{}{} // zero-size: boxing never allocates
	// Warm up: let the slot buffer reach steady state.
	for i := 0; i < 100; i++ {
		s.Deliver(payload)
		if _, ok := s.Recv(); !ok {
			t.Fatal("recv failed during warm-up")
		}
	}
	allocs := testing.AllocsPerRun(10_000, func() {
		s.Deliver(payload)
		if _, ok := s.Recv(); !ok {
			t.Fatal("recv failed")
		}
	})
	if allocs > 0 {
		t.Fatalf("deliver/recv through one key allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestMailboxBurstBoundedMemory pushes 10k packets through a single key in
// bursts and checks the slot's backing buffer stays bounded by the largest
// burst rather than growing with total traffic.
func TestMailboxBurstBoundedMemory(t *testing.T) {
	m := NewMailbox()
	k := ReplyKey(graph.NodeID(7))
	s := m.Slot(k)
	const burst = 64
	for round := 0; round < 10_000/burst; round++ {
		for i := 0; i < burst; i++ {
			s.Deliver(i)
		}
		for i := 0; i < burst; i++ {
			v, ok := s.Recv()
			if !ok {
				t.Fatal("recv failed")
			}
			if v.(int) != i {
				t.Fatalf("FIFO broken: got %v at position %d", v, i)
			}
		}
	}
	if got := s.Cap(); got > 2*burst {
		t.Fatalf("slot buffer grew to cap %d after 10k packets; want bounded by burst size %d", got, burst)
	}
}

// TestMailboxFIFOPerKeyUnderConcurrency checks per-key FIFO order with many
// keys delivered and consumed concurrently (run with -race).
func TestMailboxFIFOPerKeyUnderConcurrency(t *testing.T) {
	m := NewMailbox()
	const keys = 16
	const perKey = 2000
	var wg sync.WaitGroup
	for ki := 0; ki < keys; ki++ {
		k := EdgeKey(graph.EdgeID(ki))
		wg.Add(2)
		go func() { // producer: one ordered stream per key
			defer wg.Done()
			for i := 0; i < perKey; i++ {
				m.Deliver(k, i)
			}
		}()
		go func() { // consumer
			defer wg.Done()
			for i := 0; i < perKey; i++ {
				v, ok := m.Recv(k)
				if !ok {
					t.Errorf("key %v: recv failed at %d", k, i)
					return
				}
				if v.(int) != i {
					t.Errorf("key %v: FIFO broken, got %v want %d", k, v, i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestMailboxCloseUnblocksWaiters checks clean shutdown: blocked receivers
// on any key return ok=false once the mailbox closes, and values delivered
// before close are still drained first.
func TestMailboxCloseUnblocksWaiters(t *testing.T) {
	m := NewMailbox()
	kEmpty := EdgeKey(graph.EdgeID(1))
	kFull := EdgeKey(graph.EdgeID(2))
	m.Deliver(kFull, "leftover")

	var wg sync.WaitGroup
	wg.Add(1)
	started := make(chan struct{})
	go func() {
		defer wg.Done()
		close(started)
		if _, ok := m.Recv(kEmpty); ok {
			t.Error("recv on empty key returned ok after close")
		}
	}()
	<-started
	m.Close()
	wg.Wait()

	// Delivered-before-close values drain, then the key reports closed.
	if v, ok := m.Recv(kFull); !ok || v.(string) != "leftover" {
		t.Fatalf("pre-close value lost: %v %v", v, ok)
	}
	if _, ok := m.Recv(kFull); ok {
		t.Fatal("drained closed key still returns ok")
	}
	// Keys first touched after close are born closed.
	if _, ok := m.Recv(EdgeKey(graph.EdgeID(3))); ok {
		t.Fatal("new key on closed mailbox returned ok")
	}
}

// TestFarmFrameCodecRoundTrip checks the farm protocol frames survive the
// wire codec — the property the distributed backend depends on.
func TestFarmFrameCodecRoundTrip(t *testing.T) {
	cases := []struct {
		in    interface{}
		check func(got interface{}) bool
	}{
		{Sentinel{}, func(got interface{}) bool { _, ok := got.(Sentinel); return ok }},
		{Task{Idx: 3, V: 42}, func(got interface{}) bool {
			tk, ok := got.(Task)
			return ok && tk.Idx == 3 && tk.V == 42
		}},
		{Task{Idx: -1, V: nil}, func(got interface{}) bool {
			tk, ok := got.(Task)
			return ok && tk.Idx == -1 && tk.V == nil
		}},
		{Reply{Widx: 2, Task: 7, V: "done"}, func(got interface{}) bool {
			r, ok := got.(Reply)
			return ok && r.Widx == 2 && r.Task == 7 && r.V == "done"
		}},
	}
	for _, c := range cases {
		data, err := value.Encode(nil, c.in)
		if err != nil {
			t.Fatalf("encode %#v: %v", c.in, err)
		}
		got, err := value.Decode(data)
		if err != nil {
			t.Fatalf("decode %#v: %v", c.in, err)
		}
		if !c.check(got) {
			t.Fatalf("round trip of %#v gave %#v", c.in, got)
		}
	}
}
