package transport

import "skipper/internal/arch"

// Fault-tolerance seam. The data-farm skeletons are stateless per task, so
// a task lost to a died worker can be re-executed on a surviving one — the
// property that makes farms fault-tolerant by construction (DESIGN.md §11).
// A transport that can localize a failure to one process surfaces it
// through PeerDown instead of (only) a cluster-wide abort; the executive
// then contains the damage via MarkPeerDown and re-dispatches the dead
// workers' in-flight tasks.

// PeerDown notifies the executive that the process hosting the given
// processors died (connection loss without a clean detach, heartbeat
// staleness, or an injected fault). The callback runs on a transport
// goroutine: it must not block indefinitely, and it may call back into the
// transport (Send, MarkPeerDown, Abort).
type PeerDown func(procs []arch.ProcID)

// FailureNotifier is implemented by transports that can attribute a failure
// to a single process. Registering a handler switches the transport from
// abort-the-cluster to notify-and-contain for peer deaths; with no handler
// registered, a peer death still aborts the whole cluster (the pre-FT
// behavior, and the only safe default — without re-dispatch the remaining
// processors would deadlock waiting on the dead one).
type FailureNotifier interface {
	// OnPeerDown registers fn, replacing any previous handler. Must be
	// called before the failure occurs (in practice: before the run starts).
	OnPeerDown(fn PeerDown)
}

// PeerDowner is implemented by transports that can contain a known-dead
// processor: sends to or from it are silently dropped, its local mailboxes
// (if hosted here) are killed so blocked receivers unblock with ok=false,
// and connection errors attributable to it no longer abort the cluster.
type PeerDowner interface {
	// MarkPeerDown declares p dead. Idempotent and safe to call
	// concurrently with traffic.
	MarkPeerDown(p arch.ProcID)
}

// ProcsDown is a local-only control value: the executive's peer-down
// handler self-sends it to each active farm master's reply stream so a
// master blocked in Recv wakes up and re-dispatches the dead workers'
// in-flight tasks. It never crosses the wire (the handler runs in every
// process, and each wakes only its own masters), so it has no codec.
type ProcsDown struct {
	Procs []arch.ProcID
}

// DeadlineTick is a local-only control value: the per-master deadline
// watchdog self-sends it to the master's reply stream so the master scans
// its in-flight tasks for deadline overruns even when no reply arrives.
// Never crosses the wire; no codec.
type DeadlineTick struct{}
