package exec

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"skipper/internal/arch"
	"skipper/internal/dsl/eval"
	"skipper/internal/dsl/parser"
	"skipper/internal/dsl/types"
	"skipper/internal/expand"
	"skipper/internal/graph"
	"skipper/internal/syndex"
	"skipper/internal/value"
)

// compile compiles a source against a registry and maps it on an arch.
func compile(t *testing.T, src string, reg *value.Registry, a *arch.Arch, strat syndex.Strategy) *syndex.Schedule {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	res, err := expand.Expand(prog, info, reg)
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	s, err := syndex.Map(res.Graph, a, reg, strat)
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	return s
}

func baseRegistry() *value.Registry {
	r := value.NewRegistry()
	r.Register(&value.Func{Name: "source", Sig: "int -> int list", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			n := a[0].(int)
			out := make(value.List, n)
			for i := range out {
				out[i] = i + 1
			}
			return out
		}})
	r.Register(&value.Func{Name: "square", Sig: "int -> int", Arity: 1,
		Fn: func(a []value.Value) value.Value { x := a[0].(int); return x * x }})
	r.Register(&value.Func{Name: "add", Sig: "int -> int -> int", Arity: 2,
		Fn: func(a []value.Value) value.Value { return a[0].(int) + a[1].(int) }})
	return r
}

const farmSrc = `
extern source : int -> int list;;
extern square : int -> int;;
extern add : int -> int -> int;;
let main = df 4 square add 0 (source 10);;
`

// sum of squares 1..10 = 385.
const farmWant = 385

func TestFarmOnVariousTopologies(t *testing.T) {
	for _, a := range []*arch.Arch{
		arch.Ring(1), arch.Ring(2), arch.Ring(4), arch.Ring(8),
		arch.Chain(3), arch.Star(5), arch.Full(4), arch.Grid(2, 2),
		arch.Hypercube(3), arch.Torus(3, 2),
	} {
		s := compile(t, farmSrc, baseRegistry(), a, syndex.Structured)
		res, err := NewMachine(s, baseRegistry()).Run(1)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if len(res.Outputs) != 1 || res.Outputs[0] != farmWant {
			t.Fatalf("%s: outputs = %v", a.Name, res.Outputs)
		}
	}
}

func TestFarmListSchedStrategy(t *testing.T) {
	s := compile(t, farmSrc, baseRegistry(), arch.Ring(4), syndex.ListSched)
	res, err := NewMachine(s, baseRegistry()).Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != farmWant {
		t.Fatalf("outputs = %v", res.Outputs)
	}
}

func TestFarmMoreWorkersThanTasks(t *testing.T) {
	src := strings.Replace(farmSrc, "(source 10)", "(source 2)", 1)
	s := compile(t, src, baseRegistry(), arch.Ring(8), syndex.Structured)
	res, err := NewMachine(s, baseRegistry()).Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 5 {
		t.Fatalf("outputs = %v", res.Outputs)
	}
}

func TestFarmEmptyInput(t *testing.T) {
	src := strings.Replace(farmSrc, "(source 10)", "(source 0)", 1)
	s := compile(t, src, baseRegistry(), arch.Ring(4), syndex.Structured)
	res, err := NewMachine(s, baseRegistry()).Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 0 {
		t.Fatalf("outputs = %v", res.Outputs)
	}
}

func scmTestRegistry() *value.Registry {
	r := baseRegistry()
	r.Register(&value.Func{Name: "chunk4", Sig: "int list -> int list list", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			xs := a[0].(value.List)
			out := make(value.List, 4)
			for i := 0; i < 4; i++ {
				lo, hi := i*len(xs)/4, (i+1)*len(xs)/4
				out[i] = value.List(append(value.List{}, xs[lo:hi]...))
			}
			return out
		}})
	r.Register(&value.Func{Name: "suml", Sig: "int list -> int", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			s := 0
			for _, v := range a[0].(value.List) {
				s += v.(int)
			}
			return s
		}})
	return r
}

const scmSrc = `
extern source : int -> int list;;
extern chunk4 : int list -> int list list;;
extern suml : int list -> int;;
let main = scm 4 chunk4 suml suml (source 16);;
`

func TestSCMExecutive(t *testing.T) {
	// sum 1..16 = 136 (sum of per-chunk sums).
	for _, a := range []*arch.Arch{arch.Ring(1), arch.Ring(4), arch.Ring(6)} {
		s := compile(t, scmSrc, scmTestRegistry(), a, syndex.Structured)
		res, err := NewMachine(s, scmTestRegistry()).Run(1)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if res.Outputs[0] != 136 {
			t.Fatalf("%s: outputs = %v", a.Name, res.Outputs)
		}
	}
}

func TestSCMSplitArityMismatch(t *testing.T) {
	r := scmTestRegistry()
	r.Register(&value.Func{Name: "badchunk", Sig: "int list -> int list list", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			return value.List{a[0]} // 1 part for 4 compute processes
		}})
	src := strings.Replace(scmSrc, "chunk4 suml", "badchunk suml", 1)
	src = strings.Replace(src, "extern chunk4", "extern badchunk", 1)
	s := compile(t, src, r, arch.Ring(4), syndex.Structured)
	_, err := NewMachine(s, r).Run(1)
	if err == nil || !strings.Contains(err.Error(), "sub-domains") {
		t.Fatalf("err = %v", err)
	}
}

func tfRegistry() *value.Registry {
	r := baseRegistry()
	// Recursively split (lo, hi); emit hi-lo when small.
	r.Register(&value.Func{Name: "splitrange", Sig: "int * int -> int list * (int * int) list",
		Arity: 1,
		Fn: func(a []value.Value) value.Value {
			pr := a[0].(value.Tuple)
			lo, hi := pr[0].(int), pr[1].(int)
			if hi-lo <= 3 {
				s := 0
				for i := lo; i < hi; i++ {
					s += i
				}
				return value.Tuple{value.List{s}, value.List{}}
			}
			mid := (lo + hi) / 2
			return value.Tuple{value.List{}, value.List{
				value.Tuple{lo, mid}, value.Tuple{mid, hi},
			}}
		}})
	r.Register(&value.Func{Name: "ranges", Sig: "int -> (int * int) list", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			return value.List{value.Tuple{0, a[0].(int)}}
		}})
	return r
}

const tfSrc = `
extern splitrange : int * int -> int list * (int * int) list;;
extern add : int -> int -> int;;
extern ranges : int -> (int * int) list;;
let main = tf 3 splitrange add 0 (ranges 100);;
`

func TestTFExecutive(t *testing.T) {
	for _, a := range []*arch.Arch{arch.Ring(1), arch.Ring(4)} {
		s := compile(t, tfSrc, tfRegistry(), a, syndex.Structured)
		res, err := NewMachine(s, tfRegistry()).Run(1)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if res.Outputs[0] != 4950 {
			t.Fatalf("%s: outputs = %v", a.Name, res.Outputs)
		}
	}
}

// streamRegistry drives an itermem loop with a stateful frame counter.
func streamRegistry(frames *int64, outs *[]value.Value) *value.Registry {
	r := value.NewRegistry()
	r.Register(&value.Func{Name: "grab", Sig: "unit -> int", Arity: 1,
		Fn: func([]value.Value) value.Value {
			return int(atomic.AddInt64(frames, 1))
		}})
	r.Register(&value.Func{Name: "step", Sig: "int * int -> int * int", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			pr := a[0].(value.Tuple)
			z, b := pr[0].(int), pr[1].(int)
			return value.Tuple{z + b, z + b}
		}})
	r.Register(&value.Func{Name: "show", Sig: "int -> unit", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			*outs = append(*outs, a[0])
			return value.Unit{}
		}})
	return r
}

const streamSrc = `
extern grab : unit -> int;;
extern step : int * int -> int * int;;
extern show : int -> unit;;
let main = itermem grab step show 0 ();;
`

func TestStreamItermemThreadsState(t *testing.T) {
	var frames int64
	var shown []value.Value
	r := streamRegistry(&frames, &shown)
	s := compile(t, streamSrc, r, arch.Ring(2), syndex.Structured)
	res, err := NewMachine(s, r).Run(4)
	if err != nil {
		t.Fatal(err)
	}
	// Inputs 1,2,3,4 -> cumulative sums 1,3,6,10.
	want := []int{1, 3, 6, 10}
	if len(res.Outputs) != 4 {
		t.Fatalf("outputs = %v", res.Outputs)
	}
	for i, w := range want {
		if res.Outputs[i] != w {
			t.Fatalf("outputs = %v, want %v", res.Outputs, want)
		}
	}
	if len(shown) != 4 {
		t.Fatalf("display function called %d times", len(shown))
	}
}

func TestStreamMatchesEmulator(t *testing.T) {
	// The same program through the sequential emulator (declarative
	// semantics) and the distributed executive must agree — experiment E4.
	var f1 int64
	var o1 []value.Value
	r1 := streamRegistry(&f1, &o1)
	prog, err := parser.Parse(streamSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := types.Check(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := eval.New(r1, eval.Options{MaxIters: 6}).Run(prog); err != nil {
		t.Fatal(err)
	}

	var f2 int64
	var o2 []value.Value
	r2 := streamRegistry(&f2, &o2)
	s := compile(t, streamSrc, r2, arch.Ring(3), syndex.Structured)
	res, err := NewMachine(s, r2).Run(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(o1) != len(res.Outputs) {
		t.Fatalf("emulator %d outputs vs executive %d", len(o1), len(res.Outputs))
	}
	for i := range o1 {
		if !value.Equal(o1[i], res.Outputs[i]) {
			t.Fatalf("iteration %d: emulator %v vs executive %v",
				i, o1[i], res.Outputs[i])
		}
	}
}

func TestMachineReportsNodeErrors(t *testing.T) {
	r := baseRegistry()
	r.Register(&value.Func{Name: "boom", Sig: "int -> int", Arity: 1,
		Fn: func(a []value.Value) value.Value { return a[0] }})
	src := `
extern source : int -> int list;;
extern boom : int -> int;;
extern add : int -> int -> int;;
let main = df 2 boom add 0 (source 3);;
`
	s := compile(t, src, r, arch.Ring(2), syndex.Structured)
	// Sabotage: run with a registry missing `boom`.
	r2 := baseRegistry()
	_, err := NewMachine(s, r2).Run(1)
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("err = %v", err)
	}
}

func TestEvalNodeUnpack(t *testing.T) {
	n := &graph.Node{Kind: graph.KindUnpack, Name: "u", In: 1, Out: 2}
	outs, err := EvalNode(n, value.NewRegistry(), []value.Value{value.Tuple{1, 2}})
	if err != nil || outs[0] != 1 || outs[1] != 2 {
		t.Fatalf("outs = %v, err = %v", outs, err)
	}
	if _, err := EvalNode(n, value.NewRegistry(), []value.Value{42}); err == nil {
		t.Fatal("unpack of non-tuple should fail")
	}
}

func TestEvalNodePack(t *testing.T) {
	n := &graph.Node{Kind: graph.KindPack, Name: "p", In: 2, Out: 1}
	outs, err := EvalNode(n, value.NewRegistry(), []value.Value{1, true})
	if err != nil {
		t.Fatal(err)
	}
	tp := outs[0].(value.Tuple)
	if tp[0] != 1 || tp[1] != true {
		t.Fatalf("pack = %v", outs)
	}
}

func TestCostOfNodeDefaults(t *testing.T) {
	r := value.NewRegistry()
	r.Register(&value.Func{Name: "f", Arity: 1,
		Fn:   func([]value.Value) value.Value { return 0 },
		Cost: func([]value.Value) int64 { return 12345 }})
	fn := &graph.Node{Kind: graph.KindFunc, Fn: "f"}
	if got := CostOfNode(fn, r, nil); got != 12345 {
		t.Fatalf("cost = %d", got)
	}
	cn := &graph.Node{Kind: graph.KindConst}
	if got := CostOfNode(cn, r, nil); got != 200 {
		t.Fatalf("const cost = %d", got)
	}
	ghost := &graph.Node{Kind: graph.KindFunc, Fn: "ghost"}
	if got := CostOfNode(ghost, r, nil); got != value.DefaultCost {
		t.Fatalf("ghost cost = %d", got)
	}
}

func TestMessageAccounting(t *testing.T) {
	s := compile(t, farmSrc, baseRegistry(), arch.Ring(4), syndex.Structured)
	res, err := NewMachine(s, baseRegistry()).Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// 10 tasks + 10 replies + 4 sentinels at minimum.
	if res.Messages < 24 {
		t.Fatalf("messages = %d, want >= 24", res.Messages)
	}
	if res.Hops < res.Messages-4 { // co-located worker traffic has 0 hops
		t.Logf("hops %d vs messages %d (fine on small rings)", res.Hops, res.Messages)
	}
	// A single-processor run routes nothing.
	s1 := compile(t, farmSrc, baseRegistry(), arch.Ring(1), syndex.Structured)
	res1, err := NewMachine(s1, baseRegistry()).Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Hops != 0 {
		t.Fatalf("1-proc run should have 0 hops, got %d", res1.Hops)
	}
}

func TestRunWithTimeoutCompletesNormally(t *testing.T) {
	s := compile(t, farmSrc, baseRegistry(), arch.Ring(4), syndex.Structured)
	res, err := NewMachine(s, baseRegistry()).RunWithTimeout(1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != farmWant {
		t.Fatalf("outputs = %v", res.Outputs)
	}
}

func TestRunWithTimeoutAbortsStalledExecutive(t *testing.T) {
	// Hand-craft a schedule whose single processor waits for a message
	// nobody sends: the watchdog must abort it.
	g := graph.New()
	src := g.AddNode(&graph.Node{Kind: graph.KindFunc, Name: "never", Fn: "never", Out: 1})
	dst := g.AddNode(&graph.Node{Kind: graph.KindOutput, Name: "out", In: 1})
	e := g.Connect(src.ID, 0, dst.ID, 0, "int")
	r := value.NewRegistry()
	r.Register(&value.Func{Name: "never", Arity: 0,
		Fn: func([]value.Value) value.Value { return 0 }})
	sched := &syndex.Schedule{
		Graph:  g,
		Arch:   arch.Ring(2),
		Assign: []arch.ProcID{0, 1},
		Topo:   []graph.NodeID{src.ID, dst.ID},
		Programs: [][]syndex.Op{
			{}, // processor 0 never sends
			{
				{Kind: syndex.OpRecv, Node: dst.ID, Edge: e.ID, Peer: 0},
				{Kind: syndex.OpExec, Node: dst.ID},
			},
		},
	}
	start := time.Now()
	_, err := NewMachine(sched, r).RunWithTimeout(1, 100*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "did not complete") {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("watchdog too slow")
	}
}

func TestDeterministicFarmMatchesSequentialFoldOrder(t *testing.T) {
	// Non-commutative accumulator: string concatenation. Only the
	// deterministic mode is guaranteed to match the emulator's fold order.
	r := value.NewRegistry()
	r.Register(&value.Func{Name: "letters", Sig: "unit -> string list", Arity: 1,
		Fn: func([]value.Value) value.Value {
			return value.List{"a", "b", "c", "d", "e", "f", "g", "h"}
		}})
	r.Register(&value.Func{Name: "upper", Sig: "string -> string", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			s := a[0].(string)
			return strings.ToUpper(s)
		}})
	r.Register(&value.Func{Name: "cat", Sig: "string -> string -> string", Arity: 2,
		Fn: func(a []value.Value) value.Value {
			return a[0].(string) + a[1].(string)
		}})
	src := `
extern letters : unit -> string list;;
extern upper : string -> string;;
extern cat : string -> string -> string;;
let main = df 4 upper cat "" (letters ());;
`
	s := compile(t, src, r, arch.Ring(4), syndex.Structured)
	for trial := 0; trial < 10; trial++ {
		m := NewMachine(s, r)
		m.DeterministicFarm = true
		res, err := m.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outputs[0] != "ABCDEFGH" {
			t.Fatalf("trial %d: %v", trial, res.Outputs[0])
		}
	}
}

func TestDeterministicFarmKeepsCommutativeResults(t *testing.T) {
	s := compile(t, farmSrc, baseRegistry(), arch.Ring(4), syndex.Structured)
	m := NewMachine(s, baseRegistry())
	m.DeterministicFarm = true
	res, err := m.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != farmWant {
		t.Fatalf("outputs = %v", res.Outputs)
	}
}

func TestDeterministicModeDoesNotBreakTF(t *testing.T) {
	s := compile(t, tfSrc, tfRegistry(), arch.Ring(4), syndex.Structured)
	m := NewMachine(s, tfRegistry())
	m.DeterministicFarm = true
	res, err := m.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 4950 {
		t.Fatalf("outputs = %v", res.Outputs)
	}
}

func TestStreamManyIterationsStress(t *testing.T) {
	// A long stream over a farm exercises the unbounded-queue design and
	// cross-iteration mailbox FIFO ordering (run-ahead of fast processors).
	var frames int64
	var outs []value.Value
	r := streamRegistry(&frames, &outs)
	r.Register(&value.Func{Name: "sq", Sig: "int -> int", Arity: 1,
		Fn: func(a []value.Value) value.Value { x := a[0].(int); return x * x }})
	r.Register(&value.Func{Name: "plus", Sig: "int -> int -> int", Arity: 2,
		Fn: func(a []value.Value) value.Value { return a[0].(int) + a[1].(int) }})
	r.Register(&value.Func{Name: "tolist", Sig: "int -> int list", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			n := a[0].(int)
			return value.List{n, n + 1, n + 2}
		}})
	r.Register(&value.Func{Name: "wrap", Sig: "int * int -> int * int", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			pr := a[0].(value.Tuple)
			return value.Tuple{pr[0].(int) + pr[1].(int), pr[0].(int) + pr[1].(int)}
		}})
	src := `
extern grab : unit -> int;;
extern tolist : int -> int list;;
extern sq : int -> int;;
extern plus : int -> int -> int;;
extern wrap : int * int -> int * int;;
extern show : int -> unit;;
let loop (z, b) =
  let s = df 3 sq plus 0 (tolist b) in
  wrap (z, s);;
let main = itermem grab loop show 0 ();;
`
	s := compile(t, src, r, arch.Ring(4), syndex.Structured)
	const iters = 400
	res, err := NewMachine(s, r).RunWithTimeout(iters, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != iters {
		t.Fatalf("outputs = %d", len(res.Outputs))
	}
	// Verify against the closed form: input frame i is i+1; farm computes
	// (i+1)^2 + (i+2)^2 + (i+3)^2; z accumulates.
	z := 0
	for i := 0; i < iters; i++ {
		n := i + 1
		z += n*n + (n+1)*(n+1) + (n+2)*(n+2)
		if res.Outputs[i] != z {
			t.Fatalf("iteration %d: %v != %d", i, res.Outputs[i], z)
		}
	}
}
