package memtransport

import (
	"sync"
	"testing"

	"skipper/internal/arch"
	"skipper/internal/exec/transport"
	"skipper/internal/graph"
)

func TestSendRecvAcrossRing(t *testing.T) {
	a := arch.Ring(8)
	tr := New(a)
	defer tr.Close()
	k := transport.EdgeKey(graph.EdgeID(1))
	// 0 -> 4 is the longest route on a ring of 8 (4 hops).
	tr.Send(0, 4, k, "hello")
	v, ok := tr.Recv(4, k)
	if !ok || v.(string) != "hello" {
		t.Fatalf("recv gave %v %v", v, ok)
	}
	st := tr.Stats()
	if st.Messages != 1 {
		t.Fatalf("messages = %d, want 1", st.Messages)
	}
	if st.Hops != 4 {
		t.Fatalf("hops = %d, want 4 (store-and-forward on ring(8))", st.Hops)
	}
}

func TestLocalDeliveryCountsNoHops(t *testing.T) {
	tr := New(arch.Ring(4))
	defer tr.Close()
	k := transport.EdgeKey(graph.EdgeID(9))
	tr.Send(2, 2, k, 7)
	if v, ok := tr.Recv(2, k); !ok || v.(int) != 7 {
		t.Fatalf("recv gave %v %v", v, ok)
	}
	if st := tr.Stats(); st.Hops != 0 {
		t.Fatalf("self-delivery took %d hops", st.Hops)
	}
}

func TestFIFOPerSenderAcrossHops(t *testing.T) {
	tr := New(arch.Ring(6))
	defer tr.Close()
	k := transport.ReplyKey(graph.NodeID(3))
	const n = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			tr.Send(0, 3, k, i)
		}
	}()
	r := tr.Receiver(3, k)
	for i := 0; i < n; i++ {
		v, ok := r.Recv()
		if !ok {
			t.Fatalf("recv aborted at %d", i)
		}
		if v.(int) != i {
			t.Fatalf("FIFO broken across hops: got %v want %d", v, i)
		}
	}
	wg.Wait()
}

func TestAbortUnblocksRecv(t *testing.T) {
	tr := New(arch.Ring(4))
	done := make(chan bool)
	go func() {
		_, ok := tr.Recv(1, transport.EdgeKey(graph.EdgeID(5)))
		done <- ok
	}()
	tr.Abort()
	if ok := <-done; ok {
		t.Fatal("recv returned ok after abort")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}
