package memtransport

import (
	"testing"

	"skipper/internal/arch"
	"skipper/internal/exec/transport"
	"skipper/internal/graph"
	"skipper/internal/obsv"
	"skipper/internal/value"
)

// roundTripper builds a transport with a one-hop send/recv round trip, the
// executive's steady-state hot path.
func roundTripper(t *testing.T, tr *Transport) func() {
	t.Helper()
	k := transport.EdgeKey(graph.EdgeID(2))
	r := tr.Receiver(1, k)
	var payload value.Value = "frame"
	return func() {
		tr.Send(0, 1, k, payload)
		if _, ok := r.Recv(); !ok {
			t.Fatal("recv aborted")
		}
	}
}

// TestSendRecvNoAllocsUntraced pins the hot-path allocation budget with
// tracing disabled: a steady-state send/hop/deliver/recv round trip must
// not allocate at all — the nil-recorder checks must compile down to
// branches, not interface conversions or closures.
func TestSendRecvNoAllocsUntraced(t *testing.T) {
	tr := New(arch.Ring(4))
	defer tr.Close()
	rt := roundTripper(t, tr)
	for i := 0; i < 100; i++ {
		rt() // warm up: grow the queue and mailbox backing arrays
	}
	if allocs := testing.AllocsPerRun(200, rt); allocs != 0 {
		t.Errorf("untraced round trip allocates %.1f times/op, want 0", allocs)
	}
}

// TestSendRecvAllocBudgetTraced pins the cost of event recording on the
// same path: with a recorder armed (send, recv, enqueue, park and wake
// events per round trip) the budget is at most 2 allocations/op.
func TestSendRecvAllocBudgetTraced(t *testing.T) {
	tr := New(arch.Ring(4))
	defer tr.Close()
	tr.SetTrace(obsv.NewRecorder(4, 1<<14))
	rt := roundTripper(t, tr)
	for i := 0; i < 100; i++ {
		rt() // warm up: also interns the key label
	}
	if allocs := testing.AllocsPerRun(200, rt); allocs > 2 {
		t.Errorf("traced round trip allocates %.1f times/op, want <= 2", allocs)
	}
}
