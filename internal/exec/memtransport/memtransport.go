// Package memtransport is the in-process communication backend of the
// executive: goroutine "processors" connected through sharded mailboxes,
// with one store-and-forward router goroutine per processor emulating the
// architecture graph's links (packets between non-adjacent processors are
// relayed hop by hop, exactly as the paper's executive does on a ring or
// torus). This is the seed Machine's original substrate, factored out
// behind the transport.Transport seam. Payloads are passed by reference —
// zero copies, and the mailbox's head-index FIFOs keep steady-state
// traffic allocation-free.
package memtransport

import (
	"fmt"
	"sync"
	"sync/atomic"

	"skipper/internal/arch"
	"skipper/internal/exec/transport"
	"skipper/internal/obsv"
	"skipper/internal/value"
)

// packet travels between processors through the routers. bytes carries the
// payload size computed once at Send, so delivery accounting doesn't walk
// the value a second time.
type packet struct {
	dst     arch.ProcID
	key     transport.Key
	payload value.Value
	bytes   int
}

// queue is an unbounded MPSC queue with abort support; routers never block
// on delivery, which (together with the topologically ordered static
// schedule) rules out store-and-forward deadlock. Consumption advances a
// head index over the backing array instead of reslicing items[1:], which
// would keep every consumed packet reachable and force the append path to
// reallocate; once the queue drains, the array is reset and reused.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []packet
	head   int
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) put(p packet) {
	q.mu.Lock()
	q.items = append(q.items, p)
	q.mu.Unlock()
	q.cond.Signal()
}

func (q *queue) get() (packet, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.items) && !q.closed {
		q.cond.Wait()
	}
	if q.head == len(q.items) {
		return packet{}, false
	}
	p := q.items[q.head]
	q.items[q.head] = packet{} // release payload for GC
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return p, true
}

func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Transport is the in-process backend. All processors of the architecture
// are local to it.
type Transport struct {
	a      *arch.Arch
	queues []*queue
	boxes  []*transport.Mailbox

	// dead[p] marks processor p as failed (MarkPeerDown): sends to or from
	// it are dropped and its mailbox is killed. The routers stay alive — in
	// this in-process emulation a "dead" processor loses its endpoints, not
	// its relaying role on the architecture graph (real process death is the
	// net backend's concern; here death is injected by a fault wrapper).
	dead []atomic.Bool

	routerWG sync.WaitGroup

	errMu sync.Mutex
	err   error

	closeOnce sync.Once

	messages  atomic.Int64
	hops      atomic.Int64
	bytesSent atomic.Int64
	bytesRecv atomic.Int64

	// rec, when set via SetTrace before traffic starts, receives
	// send/recv/abort events; mailbox events are wired through the boxes.
	rec *obsv.Recorder
	kl  transport.KeyLabels
}

var _ transport.Transport = (*Transport)(nil)

// New builds a transport over the architecture graph and starts its
// routers. Callers must Close it to reclaim the router goroutines.
func New(a *arch.Arch) *Transport {
	t := &Transport{
		a:      a,
		queues: make([]*queue, a.N),
		boxes:  make([]*transport.Mailbox, a.N),
		dead:   make([]atomic.Bool, a.N),
	}
	for i := 0; i < a.N; i++ {
		t.queues[i] = newQueue()
		t.boxes[i] = transport.NewMailbox()
	}
	for i := 0; i < a.N; i++ {
		t.routerWG.Add(1)
		go t.route(arch.ProcID(i))
	}
	return t
}

// route is processor p's store-and-forward loop: local packets go straight
// to p's mailbox, remote ones are forwarded to the next hop on the
// architecture graph.
func (t *Transport) route(p arch.ProcID) {
	defer t.routerWG.Done()
	for {
		pkt, ok := t.queues[p].get()
		if !ok {
			return
		}
		if pkt.dst == p {
			t.bytesRecv.Add(int64(pkt.bytes))
			if t.rec != nil {
				t.rec.Record(int32(p), obsv.EvRecv, t.kl.Of(pkt.key), -1, int64(pkt.bytes))
			}
			t.boxes[p].Deliver(pkt.key, pkt.payload)
			continue
		}
		next := t.a.NextHop(p, pkt.dst)
		if next < 0 {
			t.failf("memtransport: no route from %d to %d", p, pkt.dst)
			return
		}
		t.hops.Add(1)
		t.queues[next].put(pkt)
	}
}

func (t *Transport) failf(format string, args ...any) {
	t.errMu.Lock()
	if t.err == nil {
		t.err = fmt.Errorf(format, args...)
	}
	t.errMu.Unlock()
	if t.rec != nil {
		t.rec.Record(-1, obsv.EvAbort, 0, -1, 0)
	}
	t.Abort()
}

// SetTrace arms event recording on r: send/recv with byte sizes here,
// enqueue/park/wake through the mailboxes. Call before traffic starts.
func (t *Transport) SetTrace(r *obsv.Recorder) {
	t.kl.Reset(r)
	t.rec = r
	for i, b := range t.boxes {
		b.SetTrace(r, int32(i), &t.kl)
	}
}

// QueueDepth reports the total delivered-but-unconsumed values across all
// processors' mailboxes (a point-in-time gauge for metrics).
func (t *Transport) QueueDepth() int {
	n := 0
	for _, b := range t.boxes {
		n += b.Depth()
	}
	return n
}

// MarkPeerDown declares processor p dead: its mailbox is killed (blocked
// receivers unblock with ok=false, nothing further is delivered) and
// packets to or from it are dropped at Send. Idempotent.
func (t *Transport) MarkPeerDown(p arch.ProcID) {
	if int(p) < 0 || int(p) >= t.a.N {
		return
	}
	t.dead[p].Store(true)
	t.boxes[p].Kill()
}

var _ transport.PeerDowner = (*Transport)(nil)

// Send injects a packet at processor src; the routers take it from there.
// Packets to or from a dead processor are dropped silently, uncounted —
// exactly what a wire to a dead machine does.
func (t *Transport) Send(src, dst arch.ProcID, key transport.Key, payload value.Value) {
	if t.dead[src].Load() || t.dead[dst].Load() {
		return
	}
	t.messages.Add(1)
	n := value.SizeOf(payload)
	t.bytesSent.Add(int64(n))
	if t.rec != nil {
		t.rec.Record(int32(src), obsv.EvSend, t.kl.Of(key), int32(dst), int64(n))
	}
	t.queues[src].put(packet{dst: dst, key: key, payload: payload, bytes: n})
}

// Recv blocks on processor p's mailbox slot for key.
func (t *Transport) Recv(p arch.ProcID, key transport.Key) (value.Value, bool) {
	return t.boxes[p].Recv(key)
}

// Receiver returns (p, key)'s mailbox slot directly: the hot loops in the
// farm protocol hoist this once and then receive with no map lookups and
// no allocations.
func (t *Transport) Receiver(p arch.ProcID, key transport.Key) transport.Receiver {
	return t.boxes[p].Slot(key)
}

// Abort unblocks every pending and future Recv; idempotent.
func (t *Transport) Abort() {
	t.closeOnce.Do(func() {
		for _, q := range t.queues {
			q.close()
		}
		for _, b := range t.boxes {
			b.Close()
		}
	})
}

// Close aborts the transport and waits for the routers to exit.
func (t *Transport) Close() error {
	t.Abort()
	t.routerWG.Wait()
	return nil
}

// Err reports the first routing failure, or nil.
func (t *Transport) Err() error {
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return t.err
}

// Stats reports injected messages, router link traversals and payload
// volume; safe to call concurrently with traffic.
func (t *Transport) Stats() transport.Stats {
	return transport.Stats{
		Messages:  t.messages.Load(),
		Hops:      t.hops.Load(),
		BytesSent: t.bytesSent.Load(),
		BytesRecv: t.bytesRecv.Load(),
	}
}
