package exec

import (
	"strings"
	"testing"
	"time"

	"skipper/internal/arch"
	"skipper/internal/exec/faulttransport"
	"skipper/internal/exec/memtransport"
	"skipper/internal/syndex"
)

// workerOnlyProcs lists the processors whose program consists solely of
// farm-worker ops — the ones whose death fault tolerance can survive.
func workerOnlyProcs(s *syndex.Schedule) []arch.ProcID {
	var out []arch.ProcID
	for p, prog := range s.Programs {
		if len(prog) == 0 {
			continue
		}
		all := true
		for _, op := range prog {
			if op.Kind != syndex.OpWorker {
				all = false
				break
			}
		}
		if all {
			out = append(out, arch.ProcID(p))
		}
	}
	return out
}

func allProcs(a *arch.Arch) []arch.ProcID {
	ps := make([]arch.ProcID, a.N)
	for i := range ps {
		ps[i] = arch.ProcID(i)
	}
	return ps
}

// TestFarmSurvivesWorkerKill is the core fault-tolerance regression: one
// farm worker's process dies mid-run (scripted kill after its first reply)
// and the run must still complete, bit-identical to a healthy run, with
// the loss visible in RunResult. Three iterations exercise the degraded
// steady state after the death, plus the generation guard against the dead
// worker's stragglers.
func TestFarmSurvivesWorkerKill(t *testing.T) {
	a := arch.Ring(8)
	s := compile(t, farmSrc, baseRegistry(), a, syndex.Structured)
	victims := workerOnlyProcs(s)
	if len(victims) == 0 {
		t.Fatal("schedule has no worker-only processor to kill")
	}
	// The victim answers one task, then dies delivering its second reply.
	// With 10 tasks over 4 workers every worker is dispatched at least two
	// tasks, so the kill always fires and always strands a task.
	ft := faulttransport.New(memtransport.New(a), faulttransport.Config{
		Faults: map[arch.ProcID]faulttransport.Fault{
			victims[0]: {KillAfterSends: 1},
		},
	})
	defer ft.Close()
	m := NewMachineOn(s, baseRegistry(), ft, allProcs(a))
	m.FT = FaultTolerance{MaxRetries: 2}
	res, err := m.Run(3)
	if err != nil {
		t.Fatalf("run did not survive the worker kill: %v", err)
	}
	for i, out := range res.Outputs {
		if out != farmWant {
			t.Fatalf("iteration %d output = %v, want %d (must be bit-identical to a healthy run)", i, out, farmWant)
		}
	}
	if res.Failures < 1 {
		t.Fatalf("Failures = %d, want >= 1", res.Failures)
	}
	if res.Redispatches < 1 {
		t.Fatalf("Redispatches = %d, want >= 1", res.Redispatches)
	}
	if m.FTFailures() != res.Failures || m.FTRedispatches() != res.Redispatches {
		t.Fatalf("cumulative counters (%d, %d) disagree with run result (%d, %d)",
			m.FTFailures(), m.FTRedispatches(), res.Failures, res.Redispatches)
	}
}

// TestFarmDeadlineRedispatch covers the failure no transport can see: a
// worker that hangs (here: every reply silently dropped) instead of
// crashing. The task deadline must declare it dead and re-dispatch.
func TestFarmDeadlineRedispatch(t *testing.T) {
	a := arch.Ring(8)
	s := compile(t, farmSrc, baseRegistry(), a, syndex.Structured)
	victims := workerOnlyProcs(s)
	if len(victims) == 0 {
		t.Fatal("schedule has no worker-only processor")
	}
	ft := faulttransport.New(memtransport.New(a), faulttransport.Config{
		Faults: map[arch.ProcID]faulttransport.Fault{
			victims[0]: {DropEveryNth: 1}, // the worker "hangs": all replies vanish
		},
	})
	defer ft.Close()
	m := NewMachineOn(s, baseRegistry(), ft, allProcs(a))
	m.FT = FaultTolerance{MaxRetries: 2, TaskDeadline: 150 * time.Millisecond}
	res, err := m.Run(1)
	if err != nil {
		t.Fatalf("run did not survive the hung worker: %v", err)
	}
	if res.Outputs[0] != farmWant {
		t.Fatalf("output = %v, want %d", res.Outputs[0], farmWant)
	}
	if res.Redispatches < 1 {
		t.Fatalf("Redispatches = %d, want >= 1 (deadline should have re-dispatched)", res.Redispatches)
	}
}

// TestFarmDegradesWhenRetriesExhausted: when workers die faster than the
// retry budget allows, the run must fail with a diagnostic rather than
// hang or return a wrong result.
func TestFarmDegradesWhenRetriesExhausted(t *testing.T) {
	a := arch.Ring(8)
	s := compile(t, farmSrc, baseRegistry(), a, syndex.Structured)
	faults := map[arch.ProcID]faulttransport.Fault{}
	for _, p := range workerOnlyProcs(s) {
		faults[p] = faulttransport.Fault{KillAfterSends: 1} // every worker dies on its 2nd reply
	}
	ft := faulttransport.New(memtransport.New(a), faulttransport.Config{Faults: faults})
	defer ft.Close()
	m := NewMachineOn(s, baseRegistry(), ft, allProcs(a))
	m.FT = FaultTolerance{MaxRetries: 1}
	if _, err := m.RunWithTimeout(1, 10*time.Second); err == nil {
		t.Fatal("run succeeded although every worker died with tasks unfinished")
	}
}

// TestNonWorkerDeathIsFatal pins the recovery boundary: only processors
// hosting nothing but farm workers are expendable. The death of a
// processor with any other op must abort the run even with FT enabled.
func TestNonWorkerDeathIsFatal(t *testing.T) {
	a := arch.Ring(8)
	s := compile(t, farmSrc, baseRegistry(), a, syndex.Structured)
	// Proc 0 hosts the source/master/output chain — never just workers.
	ft := faulttransport.New(memtransport.New(a), faulttransport.Config{
		Faults: map[arch.ProcID]faulttransport.Fault{
			0: {KillAfterSends: 1},
		},
	})
	defer ft.Close()
	m := NewMachineOn(s, baseRegistry(), ft, allProcs(a))
	m.FT = FaultTolerance{MaxRetries: 2}
	_, err := m.RunWithTimeout(1, 10*time.Second)
	if err == nil {
		t.Fatal("run succeeded although a non-worker processor died")
	}
	if !strings.Contains(err.Error(), "cannot recover") {
		t.Fatalf("error = %v, want the cannot-recover diagnostic", err)
	}
}

// TestWorkerKillWithoutFTFails pins the default: with fault tolerance off
// no peer-down handler is registered, so a worker death is not silently
// recovered — the run fails (by watchdog here; by transport abort on the
// TCP backend).
func TestWorkerKillWithoutFTFails(t *testing.T) {
	a := arch.Ring(8)
	s := compile(t, farmSrc, baseRegistry(), a, syndex.Structured)
	victims := workerOnlyProcs(s)
	ft := faulttransport.New(memtransport.New(a), faulttransport.Config{
		Faults: map[arch.ProcID]faulttransport.Fault{
			victims[0]: {KillAfterSends: 1},
		},
	})
	defer ft.Close()
	m := NewMachineOn(s, baseRegistry(), ft, allProcs(a))
	if _, err := m.RunWithTimeout(1, 1500*time.Millisecond); err == nil {
		t.Fatal("run succeeded without FT although a worker died mid-farm")
	}
}
