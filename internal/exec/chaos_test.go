package exec

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skipper/internal/arch"
	"skipper/internal/exec/faulttransport"
	"skipper/internal/exec/memtransport"
	"skipper/internal/exec/transport"
	"skipper/internal/syndex"
	"skipper/internal/value"
)

// workerOnlyProcs lists the processors whose program consists solely of
// farm-worker ops — the ones whose death fault tolerance can survive.
func workerOnlyProcs(s *syndex.Schedule) []arch.ProcID {
	var out []arch.ProcID
	for p, prog := range s.Programs {
		if len(prog) == 0 {
			continue
		}
		all := true
		for _, op := range prog {
			if op.Kind != syndex.OpWorker {
				all = false
				break
			}
		}
		if all {
			out = append(out, arch.ProcID(p))
		}
	}
	return out
}

func allProcs(a *arch.Arch) []arch.ProcID {
	ps := make([]arch.ProcID, a.N)
	for i := range ps {
		ps[i] = arch.ProcID(i)
	}
	return ps
}

// TestFarmSurvivesWorkerKill is the core fault-tolerance regression: one
// farm worker's process dies mid-run (scripted kill after its first reply)
// and the run must still complete, bit-identical to a healthy run, with
// the loss visible in RunResult. Three iterations exercise the degraded
// steady state after the death, plus the generation guard against the dead
// worker's stragglers.
func TestFarmSurvivesWorkerKill(t *testing.T) {
	a := arch.Ring(8)
	s := compile(t, farmSrc, baseRegistry(), a, syndex.Structured)
	victims := workerOnlyProcs(s)
	if len(victims) == 0 {
		t.Fatal("schedule has no worker-only processor to kill")
	}
	// The victim answers one task, then dies delivering its second reply.
	// With 10 tasks over 4 workers every worker is dispatched at least two
	// tasks, so the kill always fires and always strands a task.
	ft := faulttransport.New(memtransport.New(a), faulttransport.Config{
		Faults: map[arch.ProcID]faulttransport.Fault{
			victims[0]: {KillAfterSends: 1},
		},
	})
	defer ft.Close()
	m := NewMachineOn(s, baseRegistry(), ft, allProcs(a))
	m.FT = FaultTolerance{MaxRetries: 2}
	res, err := m.Run(3)
	if err != nil {
		t.Fatalf("run did not survive the worker kill: %v", err)
	}
	for i, out := range res.Outputs {
		if out != farmWant {
			t.Fatalf("iteration %d output = %v, want %d (must be bit-identical to a healthy run)", i, out, farmWant)
		}
	}
	if res.Failures < 1 {
		t.Fatalf("Failures = %d, want >= 1", res.Failures)
	}
	if res.Redispatches < 1 {
		t.Fatalf("Redispatches = %d, want >= 1", res.Redispatches)
	}
	if m.FTFailures() != res.Failures || m.FTRedispatches() != res.Redispatches {
		t.Fatalf("cumulative counters (%d, %d) disagree with run result (%d, %d)",
			m.FTFailures(), m.FTRedispatches(), res.Failures, res.Redispatches)
	}
}

// TestFarmDeadlineRedispatch covers the failure no transport can see: a
// worker that hangs (here: every reply silently dropped) instead of
// crashing. The task deadline must declare it dead and re-dispatch.
func TestFarmDeadlineRedispatch(t *testing.T) {
	a := arch.Ring(8)
	s := compile(t, farmSrc, baseRegistry(), a, syndex.Structured)
	victims := workerOnlyProcs(s)
	if len(victims) == 0 {
		t.Fatal("schedule has no worker-only processor")
	}
	ft := faulttransport.New(memtransport.New(a), faulttransport.Config{
		Faults: map[arch.ProcID]faulttransport.Fault{
			victims[0]: {DropEveryNth: 1}, // the worker "hangs": all replies vanish
		},
	})
	defer ft.Close()
	m := NewMachineOn(s, baseRegistry(), ft, allProcs(a))
	// SpeculateAfter < 0 pins the pure deadline path: with the default
	// (TaskDeadline/2) a speculative duplicate would rescue the task before
	// the hard deadline ever fires and no redispatch would be recorded.
	m.FT = FaultTolerance{MaxRetries: 2, TaskDeadline: 150 * time.Millisecond, SpeculateAfter: -1}
	res, err := m.Run(1)
	if err != nil {
		t.Fatalf("run did not survive the hung worker: %v", err)
	}
	if res.Outputs[0] != farmWant {
		t.Fatalf("output = %v, want %d", res.Outputs[0], farmWant)
	}
	if res.Redispatches < 1 {
		t.Fatalf("Redispatches = %d, want >= 1 (deadline should have re-dispatched)", res.Redispatches)
	}
}

// TestFarmDegradesWhenRetriesExhausted: when workers die faster than the
// retry budget allows, the run must fail with a diagnostic rather than
// hang or return a wrong result.
func TestFarmDegradesWhenRetriesExhausted(t *testing.T) {
	a := arch.Ring(8)
	s := compile(t, farmSrc, baseRegistry(), a, syndex.Structured)
	faults := map[arch.ProcID]faulttransport.Fault{}
	for _, p := range workerOnlyProcs(s) {
		faults[p] = faulttransport.Fault{KillAfterSends: 1} // every worker dies on its 2nd reply
	}
	ft := faulttransport.New(memtransport.New(a), faulttransport.Config{Faults: faults})
	defer ft.Close()
	m := NewMachineOn(s, baseRegistry(), ft, allProcs(a))
	m.FT = FaultTolerance{MaxRetries: 1}
	if _, err := m.RunWithTimeout(1, 10*time.Second); err == nil {
		t.Fatal("run succeeded although every worker died with tasks unfinished")
	}
}

// TestNonWorkerDeathIsFatal pins the recovery boundary: only processors
// hosting nothing but farm workers are expendable. The death of a
// processor with any other op must abort the run even with FT enabled.
func TestNonWorkerDeathIsFatal(t *testing.T) {
	a := arch.Ring(8)
	s := compile(t, farmSrc, baseRegistry(), a, syndex.Structured)
	// Proc 0 hosts the source/master/output chain — never just workers.
	ft := faulttransport.New(memtransport.New(a), faulttransport.Config{
		Faults: map[arch.ProcID]faulttransport.Fault{
			0: {KillAfterSends: 1},
		},
	})
	defer ft.Close()
	m := NewMachineOn(s, baseRegistry(), ft, allProcs(a))
	m.FT = FaultTolerance{MaxRetries: 2}
	_, err := m.RunWithTimeout(1, 10*time.Second)
	if err == nil {
		t.Fatal("run succeeded although a non-worker processor died")
	}
	if !strings.Contains(err.Error(), "cannot recover") {
		t.Fatalf("error = %v, want the cannot-recover diagnostic", err)
	}
}

// chaosWrap forwards the whole transport surface method by method. Test
// wrappers embed it and override what they need. It deliberately does NOT
// embed the transport.Transport interface: the executive arms fault
// tolerance only when the transport type-asserts as a FailureNotifier, and
// interface embedding would not promote OnPeerDown/MarkPeerDown — FT would
// silently stay off and the tests would pass vacuously.
type chaosWrap struct {
	inner transport.Transport
}

func (c *chaosWrap) Send(src, dst arch.ProcID, key transport.Key, v value.Value) {
	c.inner.Send(src, dst, key, v)
}
func (c *chaosWrap) Recv(p arch.ProcID, key transport.Key) (value.Value, bool) {
	return c.inner.Recv(p, key)
}
func (c *chaosWrap) Receiver(p arch.ProcID, key transport.Key) transport.Receiver {
	return c.inner.Receiver(p, key)
}
func (c *chaosWrap) Abort()                 { c.inner.Abort() }
func (c *chaosWrap) Close() error           { return c.inner.Close() }
func (c *chaosWrap) Err() error             { return c.inner.Err() }
func (c *chaosWrap) Stats() transport.Stats { return c.inner.Stats() }
func (c *chaosWrap) OnPeerDown(fn transport.PeerDown) {
	if n, ok := c.inner.(transport.FailureNotifier); ok {
		n.OnPeerDown(fn)
	}
}
func (c *chaosWrap) MarkPeerDown(p arch.ProcID) {
	if pd, ok := c.inner.(transport.PeerDowner); ok {
		pd.MarkPeerDown(p)
	}
}

// TestFarmSpeculationRescuesStraggler is the speculation acceptance run on
// the mem backend: one worker is scripted 10x slower than the straggler
// threshold, so its task must be duplicated onto an idle worker, the
// duplicate's reply must win, and the slow worker must keep its good
// standing — no death, no redispatch, no retry charged. The straggler's
// late same-generation reply then races in and must be discarded by the
// done check, leaving the fold bit-identical to a healthy run.
func TestFarmSpeculationRescuesStraggler(t *testing.T) {
	a := arch.Ring(8)
	s := compile(t, farmSrc, baseRegistry(), a, syndex.Structured)
	victims := workerOnlyProcs(s)
	if len(victims) == 0 {
		t.Fatal("schedule has no worker-only processor")
	}
	ft := faulttransport.New(memtransport.New(a), faulttransport.Config{
		Faults: map[arch.ProcID]faulttransport.Fault{
			victims[0]: {SlowEveryNth: 1, SlowFor: 400 * time.Millisecond},
		},
	})
	defer ft.Close()
	m := NewMachineOn(s, baseRegistry(), ft, allProcs(a))
	m.FT = FaultTolerance{MaxRetries: 2, SpeculateAfter: 40 * time.Millisecond}
	res, err := m.RunWithTimeout(1, 10*time.Second)
	if err != nil {
		t.Fatalf("run did not survive the straggler: %v", err)
	}
	if res.Outputs[0] != farmWant {
		t.Fatalf("output = %v, want %d (must be bit-identical: no double-fold of the duplicated task)", res.Outputs[0], farmWant)
	}
	if res.Speculations != 1 || res.SpeculationWins != 1 {
		t.Fatalf("Speculations = %d, SpeculationWins = %d, want exactly 1 and 1", res.Speculations, res.SpeculationWins)
	}
	if res.Failures != 0 || res.Redispatches != 0 {
		t.Fatalf("Failures = %d, Redispatches = %d, want 0 and 0 (a straggler is slow, not dead)", res.Failures, res.Redispatches)
	}
	if res.FalseSuspicions != 0 {
		t.Fatalf("FalseSuspicions = %d, want 0 (no deadline armed, no verdicts issued)", res.FalseSuspicions)
	}
	if m.FTSpeculations() != res.Speculations || m.FTSpeculationWins() != res.SpeculationWins {
		t.Fatalf("cumulative counters (%d, %d) disagree with run result (%d, %d)",
			m.FTSpeculations(), m.FTSpeculationWins(), res.Speculations, res.SpeculationWins)
	}
}

// heldFrame is a send captured in flight by lateReplyTransport.
type heldFrame struct {
	src, dst arch.ProcID
	key      transport.Key
	v        value.Value
}

// lateReplyTransport holds the victim's first reply until the executive
// condemns the victim, then delivers it immediately before the mark lands —
// the deterministic realization of "the suspected worker was merely slow
// and its reply arrived after the verdict".
type lateReplyTransport struct {
	*chaosWrap
	victim arch.ProcID

	mu    sync.Mutex
	held  *heldFrame
	fired bool
}

func (l *lateReplyTransport) Send(src, dst arch.ProcID, key transport.Key, v value.Value) {
	if src == l.victim {
		if _, isReply := v.(transport.Reply); isReply {
			l.mu.Lock()
			if !l.fired {
				l.fired = true
				l.held = &heldFrame{src: src, dst: dst, key: key, v: v}
				l.mu.Unlock()
				return
			}
			l.mu.Unlock()
		}
	}
	l.chaosWrap.Send(src, dst, key, v)
}

func (l *lateReplyTransport) MarkPeerDown(p arch.ProcID) {
	if p == l.victim {
		l.mu.Lock()
		h := l.held
		l.held = nil
		l.mu.Unlock()
		if h != nil {
			// The verdict races the reply and the reply squeaks in first.
			// Injected as a master-local send (src = dst): re-injecting at the
			// victim would race the verdict's own ProcsDown through the ring's
			// store-and-forward hops, while this models the reply already
			// sitting in the master's mailbox when the verdict lands.
			l.chaosWrap.Send(h.dst, h.dst, h.key, h.v)
		}
	}
	l.chaosWrap.MarkPeerDown(p)
}

// TestFalseSuspicionCounted pins the accounting for a wrong deadline
// verdict: a worker whose same-generation reply arrives after it was
// condemned must be counted as a false suspicion (the operator's signal
// that TaskDeadline is too tight), its reply must still fold exactly once,
// and no redispatch may be charged for a task that in fact completed.
func TestFalseSuspicionCounted(t *testing.T) {
	a := arch.Ring(8)
	s := compile(t, farmSrc, baseRegistry(), a, syndex.Structured)
	victims := workerOnlyProcs(s)
	if len(victims) == 0 {
		t.Fatal("schedule has no worker-only processor")
	}
	inner := memtransport.New(a)
	defer inner.Close()
	lt := &lateReplyTransport{chaosWrap: &chaosWrap{inner: inner}, victim: victims[0]}
	m := NewMachineOn(s, baseRegistry(), lt, allProcs(a))
	// SpeculateAfter < 0 isolates the deadline path under test.
	m.FT = FaultTolerance{MaxRetries: 2, TaskDeadline: 80 * time.Millisecond, SpeculateAfter: -1}
	res, err := m.RunWithTimeout(1, 10*time.Second)
	if err != nil {
		t.Fatalf("run did not survive the false suspicion: %v", err)
	}
	if res.Outputs[0] != farmWant {
		t.Fatalf("output = %v, want %d (the late reply must fold exactly once)", res.Outputs[0], farmWant)
	}
	if res.FalseSuspicions != 1 {
		t.Fatalf("FalseSuspicions = %d, want 1", res.FalseSuspicions)
	}
	if res.Failures != 1 {
		t.Fatalf("Failures = %d, want 1 (the verdict itself still stands)", res.Failures)
	}
	if res.Redispatches != 0 {
		t.Fatalf("Redispatches = %d, want 0 (the task completed; nothing to re-enqueue)", res.Redispatches)
	}
	if m.FTFalseSuspicions() != res.FalseSuspicions {
		t.Fatalf("cumulative counter %d disagrees with run result %d", m.FTFalseSuspicions(), res.FalseSuspicions)
	}
}

// tickCountTransport counts the watchdog's DeadlineTick self-sends.
type tickCountTransport struct {
	*chaosWrap
	ticks atomic.Int64
}

func (c *tickCountTransport) Send(src, dst arch.ProcID, key transport.Key, v value.Value) {
	if _, ok := v.(transport.DeadlineTick); ok {
		c.ticks.Add(1)
	}
	c.chaosWrap.Send(src, dst, key, v)
}

// slowFoldRegistry is baseRegistry with the accumulate function slowed
// down, stretching the master's post-loop deterministic fold — the window
// in which the old watchdog kept ticking (and could even tick after the
// master returned) although nothing was in flight.
func slowFoldRegistry(d time.Duration) *value.Registry {
	r := value.NewRegistry()
	r.Register(&value.Func{Name: "source", Sig: "int -> int list", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			n := a[0].(int)
			out := make(value.List, n)
			for i := range out {
				out[i] = i + 1
			}
			return out
		}})
	r.Register(&value.Func{Name: "square", Sig: "int -> int", Arity: 1,
		Fn: func(a []value.Value) value.Value { x := a[0].(int); return x * x }})
	r.Register(&value.Func{Name: "add", Sig: "int -> int -> int", Arity: 2,
		Fn: func(a []value.Value) value.Value {
			time.Sleep(d)
			return a[0].(int) + a[1].(int)
		}})
	return r
}

// TestWatchdogQuiescesWhenIdle is the watchdog regression test: with every
// reply in and the master folding (deterministic mode folds after the
// dispatch loop), the watchdog must stop self-sending DeadlineTicks — and
// none may land after the master returns, where the next iteration's
// master would consume them off the shared reply key. The old watchdog
// ticked unconditionally until its goroutine noticed the stop channel.
func TestWatchdogQuiescesWhenIdle(t *testing.T) {
	a := arch.Ring(8)
	reg := slowFoldRegistry(6 * time.Millisecond)
	s := compile(t, farmSrc, reg, a, syndex.Structured)
	inner := memtransport.New(a)
	defer inner.Close()
	ct := &tickCountTransport{chaosWrap: &chaosWrap{inner: inner}}
	m := NewMachineOn(s, reg, ct, allProcs(a))
	m.DeterministicFarm = true
	m.FT = FaultTolerance{MaxRetries: 2, TaskDeadline: 40 * time.Millisecond, SpeculateAfter: -1}
	res, err := m.RunWithTimeout(2, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range res.Outputs {
		if out != farmWant {
			t.Fatalf("iteration %d output = %v, want %d", i, out, farmWant)
		}
	}
	if m.ft == nil {
		t.Fatal("fault tolerance never armed; the watchdog was not under test")
	}
	// Each iteration's tasks complete in microseconds, then the master folds
	// for ~60ms with a 10ms tick interval: the old code sent ~6 idle ticks
	// per iteration, the fixed one sends none (a couple are tolerated for
	// scheduler jitter between dispatch and the replies landing).
	during := ct.ticks.Load()
	if during > 2 {
		t.Fatalf("watchdog sent %d DeadlineTicks while nothing was in flight, want <= 2", during)
	}
	// And strictly none after the run: the master has returned, so any late
	// tick would sit under the shared reply key for a future master.
	time.Sleep(150 * time.Millisecond)
	if after := ct.ticks.Load(); after != during {
		t.Fatalf("watchdog sent %d DeadlineTicks after the run returned", after-during)
	}
}

// taskCountTransport counts farm Task dispatches per destination processor.
type taskCountTransport struct {
	*chaosWrap
	mu    sync.Mutex
	tasks map[arch.ProcID]int
}

func (c *taskCountTransport) Send(src, dst arch.ProcID, key transport.Key, v value.Value) {
	if _, ok := v.(transport.Task); ok {
		c.mu.Lock()
		if c.tasks == nil {
			c.tasks = map[arch.ProcID]int{}
		}
		c.tasks[dst]++
		c.mu.Unlock()
	}
	c.chaosWrap.Send(src, dst, key, v)
}

// chainRegistry drives a tf farm whose frontier never exceeds one task:
// each task spawns exactly one child until the chain bottoms out. With only
// one task in the system at a time, every dispatch is a queue refill — the
// pattern that exposed fill()'s scan-from-0 bias.
func chainRegistry() *value.Registry {
	r := baseRegistry()
	r.Register(&value.Func{Name: "chainstep", Sig: "int -> int list * int list", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			k := a[0].(int)
			if k == 0 {
				return value.Tuple{value.List{1}, value.List{}}
			}
			return value.Tuple{value.List{}, value.List{k - 1}}
		}})
	r.Register(&value.Func{Name: "rootof", Sig: "int -> int list", Arity: 1,
		Fn: func(a []value.Value) value.Value { return value.List{a[0].(int)} }})
	return r
}

const chainSrc = `
extern chainstep : int -> int list * int list;;
extern add : int -> int -> int;;
extern rootof : int -> int list;;
let main = tf 4 chainstep add 0 (rootof 16);;
`

// TestFillRotatesAcrossWorkers pins the fill() distribution fix: queue
// refills must rotate round-robin over the live pool instead of always
// rescanning from worker 0. A 17-task chain with exactly one task in the
// system at a time lands every dispatch on the scan's first candidate — the
// old code would put all 17 on one worker; the rotation spreads them.
func TestFillRotatesAcrossWorkers(t *testing.T) {
	a := arch.Ring(8)
	reg := chainRegistry()
	s := compile(t, chainSrc, reg, a, syndex.Structured)
	workers := workerOnlyProcs(s)
	if len(workers) < 2 {
		t.Fatalf("schedule maps %d worker-only processors, need >= 2 to observe the distribution", len(workers))
	}
	inner := memtransport.New(a)
	defer inner.Close()
	ct := &taskCountTransport{chaosWrap: &chaosWrap{inner: inner}}
	m := NewMachineOn(s, reg, ct, allProcs(a))
	m.FT = FaultTolerance{MaxRetries: 1}
	res, err := m.RunWithTimeout(1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 1 {
		t.Fatalf("output = %v, want 1", res.Outputs[0])
	}
	if m.ft == nil {
		t.Fatal("fault tolerance never armed; the legacy master was under test instead of fill()")
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	for _, p := range workers {
		if ct.tasks[p] < 2 {
			t.Fatalf("worker processor %d received %d of 17 chained tasks (distribution %v): refills are not rotating",
				p, ct.tasks[p], ct.tasks)
		}
	}
}

// TestWorkerKillWithoutFTFails pins the default: with fault tolerance off
// no peer-down handler is registered, so a worker death is not silently
// recovered — the run fails (by watchdog here; by transport abort on the
// TCP backend).
func TestWorkerKillWithoutFTFails(t *testing.T) {
	a := arch.Ring(8)
	s := compile(t, farmSrc, baseRegistry(), a, syndex.Structured)
	victims := workerOnlyProcs(s)
	ft := faulttransport.New(memtransport.New(a), faulttransport.Config{
		Faults: map[arch.ProcID]faulttransport.Fault{
			victims[0]: {KillAfterSends: 1},
		},
	})
	defer ft.Close()
	m := NewMachineOn(s, baseRegistry(), ft, allProcs(a))
	if _, err := m.RunWithTimeout(1, 1500*time.Millisecond); err == nil {
		t.Fatal("run succeeded without FT although a worker died mid-farm")
	}
}
