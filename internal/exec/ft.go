package exec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"skipper/internal/arch"
	"skipper/internal/exec/transport"
	"skipper/internal/graph"
	"skipper/internal/obsv"
	"skipper/internal/syndex"
	"skipper/internal/value"
)

// FaultTolerance configures farm-level failure recovery (DESIGN.md §11).
// Data-farm skeletons are fault-tolerant by construction: a task is a pure
// function of its input, so re-executing it on a surviving worker is
// semantically free. The executive exploits that — when a worker processor
// dies (transport-detected) or a task deadline fires (executive-detected),
// the in-flight task is re-enqueued on the surviving pool and the run
// completes bit-identically on the shrunken cluster. Processors hosting
// anything other than farm-worker ops carry irreplaceable state, so their
// death remains a cluster-wide fatal error.
type FaultTolerance struct {
	// MaxRetries bounds how many times one task may be re-dispatched after
	// its worker died or its deadline fired. Zero disables fault tolerance
	// entirely (the default): any peer death aborts the cluster, exactly
	// the legacy behavior.
	MaxRetries int
	// TaskDeadline, when positive, bounds how long a dispatched task may
	// stay outstanding before the executive suspects its worker dead and
	// re-dispatches — catching workers that hang rather than crash, which
	// no transport-level detector can see. Must comfortably exceed the
	// slowest legitimate task, or healthy workers get declared dead.
	TaskDeadline time.Duration
	// SpeculateAfter is the straggler threshold (DESIGN.md §16): when a
	// dispatched task sits unanswered this long and an idle live worker
	// exists, the master duplicates the task onto it. The first valid
	// same-generation reply wins, the loser's reply is discarded by the
	// done check, and the slow worker keeps its good standing — no
	// MarkPeerDown, no retry-budget charge — unless the hard TaskDeadline
	// later fires. Zero defaults to TaskDeadline/2 when a deadline is set
	// (speculation rides the same watchdog); a negative value disables
	// speculation explicitly.
	SpeculateAfter time.Duration
}

func (ft FaultTolerance) enabled() bool { return ft.MaxRetries > 0 }

// speculateAfter resolves the effective speculation threshold: an explicit
// positive value wins, zero inherits half the hard deadline, negative (or
// no deadline to inherit from) disables.
func (ft FaultTolerance) speculateAfter() time.Duration {
	switch {
	case ft.SpeculateAfter > 0:
		return ft.SpeculateAfter
	case ft.SpeculateAfter < 0:
		return 0
	case ft.TaskDeadline > 0:
		return ft.TaskDeadline / 2
	}
	return 0
}

// masterReg is one active farm master's wake-up address: peer-down
// notifications are delivered as transport.ProcsDown values self-sent to
// the master's reply stream, so the master learns of deaths at the same
// point it learns of everything else, with no extra synchronization in its
// dispatch loop.
type masterReg struct {
	proc arch.ProcID
	key  transport.Key
}

// ftState is the per-run fault-tolerance bookkeeping.
type ftState struct {
	mu      sync.Mutex
	dead    map[arch.ProcID]bool
	masters map[*masterReg]bool

	failures        atomic.Int64 // processors declared dead this run
	redispatches    atomic.Int64 // tasks re-enqueued this run
	speculations    atomic.Int64 // speculative duplicate dispatches this run
	specWins        atomic.Int64 // duplicates whose reply beat the original
	falseSuspicions atomic.Int64 // deadline-suspected workers that later replied
}

func newFTState() *ftState {
	return &ftState{
		dead:    map[arch.ProcID]bool{},
		masters: map[*masterReg]bool{},
	}
}

// markDead records p as dead; reports whether this was fresh news.
func (f *ftState) markDead(p arch.ProcID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead[p] {
		return false
	}
	f.dead[p] = true
	return true
}

func (f *ftState) isDead(p arch.ProcID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead[p]
}

func (f *ftState) register(r *masterReg) {
	f.mu.Lock()
	f.masters[r] = true
	f.mu.Unlock()
}

func (f *ftState) unregister(r *masterReg) {
	f.mu.Lock()
	delete(f.masters, r)
	f.mu.Unlock()
}

func (f *ftState) snapshotMasters() []*masterReg {
	f.mu.Lock()
	defer f.mu.Unlock()
	rs := make([]*masterReg, 0, len(f.masters))
	for r := range f.masters {
		rs = append(rs, r)
	}
	return rs
}

// procTolerable reports whether p's death is survivable: its program must
// consist solely of farm-worker ops, whose tasks are stateless and
// re-executable elsewhere. Anything else on the processor — sends,
// receives, memory nodes, masters — is irreplaceable.
func (m *Machine) procTolerable(p arch.ProcID) bool {
	if int(p) < 0 || int(p) >= len(m.sched.Programs) {
		return false
	}
	for _, op := range m.sched.Programs[p] {
		if op.Kind != syndex.OpWorker {
			return false
		}
	}
	return true
}

// handlePeerDown is the transport's failure callback: classify the deaths
// (tolerable or fatal), record them, and wake every active farm master so
// it can re-dispatch the dead workers' in-flight tasks.
func (m *Machine) handlePeerDown(procs []arch.ProcID) {
	ft := m.ft
	if ft == nil {
		return
	}
	var fresh []arch.ProcID
	for _, p := range procs {
		if ft.markDead(p) {
			fresh = append(fresh, p)
		}
	}
	if len(fresh) == 0 {
		return
	}
	for _, p := range fresh {
		if !m.procTolerable(p) {
			m.fail(fmt.Errorf("exec: processor %d died hosting ops other than farm workers; the cluster cannot recover", p))
			return
		}
	}
	for _, p := range fresh {
		ft.failures.Add(1)
		m.ftFailures.Add(1)
		if m.Trace != nil {
			m.Trace.Record(int32(p), obsv.EvPeerDown, 0, -1, 0)
		}
	}
	for _, r := range ft.snapshotMasters() {
		m.t.Send(r.proc, r.proc, r.key, transport.ProcsDown{Procs: fresh})
	}
}

// suspectDeadline declares a worker's processor dead after a task deadline
// overrun, going through the same path a transport-detected death takes:
// the transport stops routing to it (and, on the hub, tells every node),
// and handlePeerDown classifies, records and wakes the masters. The
// current master re-dispatches when its own ProcsDown arrives.
func (m *Machine) suspectDeadline(p arch.ProcID) {
	if pd, ok := m.t.(transport.PeerDowner); ok {
		pd.MarkPeerDown(p)
	}
	m.handlePeerDown([]arch.ProcID{p})
}

// ftTask is one farm task's recovery state.
type ftTask struct {
	val   value.Value // retained until done, for re-dispatch
	tries int         // dispatch count (1 = first attempt; speculation uncounted)
	done  bool        // a valid reply was folded
	specW int         // worker index of the active speculative duplicate, -1 none
}

// runMasterFT is the fault-tolerant variant of the farm-master protocol.
// It differs from runMaster (the legacy path, kept byte-for-byte intact so
// FT-disabled runs produce identical message sequences) in that it tracks
// which task is in flight on which worker, reacts to ProcsDown and
// DeadlineTick control values interleaved into its reply stream, and
// re-enqueues the in-flight tasks of dead workers — bounded by
// FaultTolerance.MaxRetries per task — onto the surviving pool.
func (m *Machine) runMasterFT(st *procState, id graph.NodeID) error {
	g := m.sched.Graph
	n := g.Node(id)
	inputs, err := m.inputsOf(st, id)
	if err != nil {
		return err
	}
	xs, ok := inputs[0].(value.List)
	if !ok {
		return fmt.Errorf("exec: farm input of %s is not a list", n.Name)
	}
	acc := inputs[1]
	accFn, ok := m.reg.Lookup(n.AccFn)
	if !ok {
		return fmt.Errorf("exec: accumulate function %q not registered", n.AccFn)
	}

	workerProc := make([]arch.ProcID, n.Workers)
	for _, e := range g.OutEdges(id) {
		if w := g.Node(e.To); w.Kind == graph.KindWorker {
			workerProc[w.Index] = m.sched.Assign[w.ID]
		}
	}

	// gen tags this master invocation: reply keys are shared across
	// iterations, and a deadline-suspected worker that was merely slow can
	// deliver its reply arbitrarily late — without the generation check it
	// would be folded into a later iteration's accumulator.
	gen := m.farmGen.Add(1)
	replyKey := transport.ReplyKey(id)

	// Register for death notifications before reading the dead set: a death
	// landing between the two is then delivered as ProcsDown rather than
	// lost.
	reg := &masterReg{proc: st.p, key: replyKey}
	m.ft.register(reg)
	defer m.ft.unregister(reg)

	tasks := make([]ftTask, 0, len(xs))
	queue := make([]int, 0, len(xs))
	for i, x := range xs {
		tasks = append(tasks, ftTask{val: x, specW: -1})
		queue = append(queue, i)
	}
	remaining := len(tasks)

	var buffered []value.Value
	deterministic := m.DeterministicFarm && !n.TaskFarm
	if deterministic {
		buffered = make([]value.Value, len(xs))
	}

	alive := make([]bool, n.Workers)
	inflight := make([]int, n.Workers)
	deadlines := make([]time.Time, n.Workers)
	dispatched := make([]time.Time, n.Workers) // when inflight[w] was handed out
	suspected := make([]bool, n.Workers)       // deadline verdicts issued, for false-suspicion accounting
	aliveCount := 0
	for w := 0; w < n.Workers; w++ {
		alive[w] = !m.ft.isDead(workerProc[w])
		if alive[w] {
			aliveCount++
		}
		inflight[w] = -1
	}
	// outstanding mirrors the number of in-flight dispatches for the
	// watchdog goroutine, which must not tick while nothing is waiting.
	var outstanding atomic.Int32

	send := func(w, idx int) {
		inflight[w] = idx
		dispatched[w] = time.Now()
		if m.FT.TaskDeadline > 0 {
			deadlines[w] = dispatched[w].Add(m.FT.TaskDeadline)
		}
		outstanding.Add(1)
		m.t.Send(st.p, workerProc[w], transport.TaskKey(id, w),
			transport.Task{Idx: idx, Gen: gen, V: tasks[idx].val})
	}
	dispatch := func(w, idx int) {
		tasks[idx].tries++
		send(w, idx)
	}
	// speculate duplicates a slow task onto an idle worker. Unlike dispatch
	// it charges no retry — the original worker is slow, not suspected — and
	// the generation/done machinery discards whichever reply loses the race.
	speculate := func(w, idx int) {
		tasks[idx].specW = w
		m.ft.speculations.Add(1)
		m.ftSpeculations.Add(1)
		if m.Trace != nil {
			m.Trace.Record(int32(st.p), obsv.EvSpeculate, 0, int32(workerProc[w]), int64(idx))
		}
		send(w, idx)
	}
	// clearInflight retires w's dispatch (reply arrived or worker died) and
	// returns the task index it held, -1 if it was idle.
	clearInflight := func(w int) int {
		idx := inflight[w]
		if idx >= 0 {
			inflight[w] = -1
			outstanding.Add(-1)
		}
		return idx
	}
	// requeue returns a dead worker's in-flight task to the queue (retry
	// budget permitting) and records the re-dispatch.
	requeue := func(w int) error {
		idx := clearInflight(w)
		if idx < 0 || tasks[idx].done {
			return nil
		}
		if tasks[idx].specW == w {
			// The speculative copy died; the original still carries the task.
			tasks[idx].specW = -1
		}
		for w2 := 0; w2 < n.Workers; w2++ {
			// A live duplicate still runs the task: nothing to re-enqueue and
			// no retry charged — speculation already covers this loss.
			if w2 != w && inflight[w2] == idx {
				return nil
			}
		}
		if tasks[idx].tries > m.FT.MaxRetries {
			if m.Trace != nil {
				m.Trace.Record(int32(st.p), obsv.EvDegrade, 0, -1, int64(idx))
			}
			return fmt.Errorf("exec: farm %s task %d lost its worker %d times (max-retries %d exhausted)",
				n.Name, idx, tasks[idx].tries, m.FT.MaxRetries)
		}
		m.ft.redispatches.Add(1)
		m.ftRedispatches.Add(1)
		if m.Trace != nil {
			m.Trace.Record(int32(st.p), obsv.EvRedispatch, 0, -1, int64(idx))
		}
		queue = append(queue, idx)
		return nil
	}
	// fill hands queued tasks to idle surviving workers. The scan start
	// rotates (round-robin over the worker array) so queue refills spread
	// across the pool instead of systematically favoring low indices — on a
	// heterogeneous fleet the old scan-from-0 piled refills and speculative
	// duplicates onto the same few workers.
	fillNext := 0
	idleWorker := func() int {
		for k := 0; k < n.Workers; k++ {
			w := (fillNext + k) % n.Workers
			if alive[w] && inflight[w] < 0 {
				return w
			}
		}
		return -1
	}
	fill := func() {
		start := fillNext
		for k := 0; k < n.Workers && len(queue) > 0; k++ {
			w := (start + k) % n.Workers
			if alive[w] && inflight[w] < 0 {
				idx := queue[0]
				queue = queue[1:]
				dispatch(w, idx)
				fillNext = (w + 1) % n.Workers
			}
		}
	}
	// markWorkersDead contains a set of processor deaths inside the farm.
	markWorkersDead := func(dead map[arch.ProcID]bool) error {
		for w := 0; w < n.Workers; w++ {
			if alive[w] && dead[workerProc[w]] {
				alive[w] = false
				aliveCount--
				if err := requeue(w); err != nil {
					return err
				}
			}
		}
		if aliveCount == 0 && remaining > 0 {
			return fmt.Errorf("exec: every worker of farm %s is dead with %d tasks unfinished", n.Name, remaining)
		}
		return nil
	}

	if err := markWorkersDead(map[arch.ProcID]bool{}); err != nil {
		return err // degenerate: started with zero live workers
	}
	fill()

	// The watchdog self-sends ticks into the reply stream so the master
	// checks deadline overruns and speculation thresholds without a second
	// blocking point; ticking at a quarter of the tightest armed threshold
	// bounds detection latency to 1.25 thresholds. Two guards keep stale
	// ticks out of the shared reply key: the goroutine skips the send while
	// nothing is in flight, and stopTicks — called when the dispatch loop
	// exits and again (idempotently) on any return path — excludes further
	// sends under tickMu, so no DeadlineTick can land after the master
	// returns for the next iteration's master to consume.
	specAfter := m.FT.speculateAfter()
	stopTicks := func() {}
	watch := m.FT.TaskDeadline
	if specAfter > 0 && (watch <= 0 || specAfter < watch) {
		watch = specAfter
	}
	if watch > 0 {
		stop := make(chan struct{})
		var tickMu sync.Mutex
		ticksStopped := false
		stopTicks = func() {
			tickMu.Lock()
			ticksStopped = true
			tickMu.Unlock()
		}
		defer func() {
			stopTicks()
			close(stop)
		}()
		tick := watch / 4
		if tick <= 0 {
			tick = watch
		}
		go func() {
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					tickMu.Lock()
					if !ticksStopped && outstanding.Load() > 0 {
						m.t.Send(st.p, st.p, replyKey, transport.DeadlineTick{})
					}
					tickMu.Unlock()
				}
			}
		}()
	}

	replies := m.t.Receiver(st.p, replyKey)
	for remaining > 0 {
		rv, ok := replies.Recv()
		if !ok {
			return fmt.Errorf("exec: master receive aborted")
		}
		switch rep := rv.(type) {
		case transport.ProcsDown:
			dead := make(map[arch.ProcID]bool, len(rep.Procs))
			for _, p := range rep.Procs {
				dead[p] = true
			}
			if err := markWorkersDead(dead); err != nil {
				return err
			}
			fill()

		case transport.DeadlineTick:
			now := time.Now()
			if m.FT.TaskDeadline > 0 {
				var overrun []arch.ProcID
				for w := 0; w < n.Workers; w++ {
					if alive[w] && inflight[w] >= 0 && now.After(deadlines[w]) {
						suspected[w] = true
						overrun = append(overrun, workerProc[w])
					}
				}
				for _, p := range overrun {
					// Routes back to this master as a ProcsDown on the reply
					// stream (and to every other master), where the
					// re-dispatch happens.
					m.suspectDeadline(p)
				}
			}
			if specAfter > 0 {
				// Straggler speculation: a task outstanding past the
				// threshold on a worker still considered live is duplicated
				// onto an idle worker — at most one active copy beyond the
				// original, placed with the same rotating scan fill uses.
				for w := 0; w < n.Workers; w++ {
					idx := inflight[w]
					if !alive[w] || idx < 0 || tasks[idx].done ||
						tasks[idx].specW >= 0 || now.Sub(dispatched[w]) < specAfter {
						continue
					}
					duplicated := false
					for w2 := 0; w2 < n.Workers; w2++ {
						if w2 != w && inflight[w2] == idx {
							duplicated = true
							break
						}
					}
					if duplicated {
						continue
					}
					tgt := idleWorker()
					if tgt < 0 {
						break // the pool is saturated; nothing to speculate on
					}
					fillNext = (tgt + 1) % n.Workers
					speculate(tgt, idx)
				}
			}

		case transport.Reply:
			if rep.Gen != gen {
				continue // a previous invocation's straggler
			}
			if rep.Widx >= 0 && rep.Widx < n.Workers {
				if inflight[rep.Widx] == rep.Task {
					clearInflight(rep.Widx)
				}
				if suspected[rep.Widx] {
					// The deadline verdict was wrong: the worker was slow,
					// not dead. It stays marked down (the transport already
					// tore its routes) but the operator learns the deadline
					// is too tight.
					suspected[rep.Widx] = false
					m.ft.falseSuspicions.Add(1)
					m.ftFalseSuspicions.Add(1)
				}
			}
			if rep.Task < 0 || rep.Task >= len(tasks) {
				return fmt.Errorf("exec: master %s received reply for unknown task %d", n.Name, rep.Task)
			}
			if !tasks[rep.Task].done {
				if sw := tasks[rep.Task].specW; sw >= 0 {
					if rep.Widx == sw {
						m.ft.specWins.Add(1)
						m.ftSpecWins.Add(1)
						if m.Trace != nil {
							m.Trace.Record(int32(st.p), obsv.EvSpecWin, 0, int32(workerProc[sw]), int64(rep.Task))
						}
					}
					tasks[rep.Task].specW = -1 // the race is settled
				}
				tasks[rep.Task].done = true
				tasks[rep.Task].val = nil
				remaining--
				if n.TaskFarm {
					pair, ok := rep.V.(value.Tuple)
					if !ok || len(pair) != 2 {
						return fmt.Errorf("exec: tf worker must return (results, new-tasks)")
					}
					ys, ok1 := pair[0].(value.List)
					more, ok2 := pair[1].(value.List)
					if !ok1 || !ok2 {
						return fmt.Errorf("exec: tf worker returned non-lists")
					}
					for _, y := range ys {
						acc = accFn.Fn([]value.Value{acc, y})
					}
					for _, x := range more {
						tasks = append(tasks, ftTask{val: x, specW: -1})
						queue = append(queue, len(tasks)-1)
						remaining++
					}
				} else if deterministic {
					buffered[rep.Task] = rep.V
				} else {
					acc = accFn.Fn([]value.Value{acc, rep.V})
				}
			}
			fill()
			if aliveCount == 0 && remaining > 0 {
				return fmt.Errorf("exec: every worker of farm %s is dead with %d tasks unfinished", n.Name, remaining)
			}

		default:
			return fmt.Errorf("exec: master %s received non-reply", n.Name)
		}
	}
	// Every task is folded: silence the watchdog before the post-loop work
	// (sentinels, deterministic fold) so no tick lands under the shared
	// reply key for the next iteration's master to consume.
	stopTicks()
	for w := 0; w < n.Workers; w++ {
		// Sentinels go to every worker, dead ones included: the transport
		// drops frames to the dead, and a falsely-suspected survivor's task
		// stream was already killed with its mailbox.
		m.t.Send(st.p, workerProc[w], transport.TaskKey(id, w), transport.Sentinel{})
	}
	if deterministic {
		for _, y := range buffered {
			acc = accFn.Fn([]value.Value{acc, y})
		}
	}
	st.outs[id] = []value.Value{acc}
	return nil
}
