package nettransport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// Shared-memory slab ring: the third same-host data plane (DESIGN.md §14).
// BENCH_5 established that the unix-domain transport's remaining cost is the
// kernel itself — the raw socketpair floor bench pins ~8µs per 32KB
// ping-pong on copies and wakeups no userspace framing can avoid. The shm
// plane removes the kernel from the frame path entirely: each upgraded
// connection maps a tmpfs file holding a fixed-slot slab ring
// (single-producer/single-consumer, atomic head/tail slot counters), the
// producer writes every frame's wire image straight into the slab, and the
// consumer parses it with the exact same frame/batch/stream-decode machinery
// that reads a socket — the ring's consumer side is an io.Reader, so a
// bufio.Reader over it is indistinguishable from a bufio.Reader over a
// net.Conn to the rest of the backend. The socket the connection started on
// is kept as the doorbell: after the shm handshake it carries only wakeup
// bytes (data-available toward the consumer, slots-available toward the
// producer), and its EOF remains the death signal, so fault containment is
// unchanged — a dead peer's socket closes, the bell loop marks the ring
// closed, and a producer blocked on a full ring unwedges with an error that
// feeds the same MarkPeerDown/containment path a failed socket write does.
//
// Record format inside the slab: records start on a slot (cache line)
// boundary — [u32 length][length bytes of frame stream], padded to the next
// slot. A record never wraps: the producer sizes each record's chunk to the
// contiguous slots left before the ring's end, so both cursors stay simple
// monotonic slot counters. Records chunk the byte stream arbitrarily (a
// frame may span records, a record may hold several small frames); frame
// boundaries come from the frame stream's own length prefixes, exactly as
// on a socket.

const (
	// shmMagic opens every ring header: "SKRING1\0".
	shmMagic = 0x534b52494e473100
	// shmHdrSize is the header page; slab slots start right after it.
	shmHdrSize = 4096
	// shmSlotSize is one slot: a cache line, the unit of cursor arithmetic.
	shmSlotSize = 64
	// shmDefaultSlots sizes a ring at 1Ki slots = 64KB of slab per
	// direction. Deliberately small: both cursors march through the slab, so
	// a slab that fits L2 keeps every record copy on warm cache lines — the
	// 4MiB first cut measured ~2x slower per round trip purely on cache
	// misses. Frames larger than the slab stream through it in chunks; the
	// producer blocks only while the consumer lags a full slab behind.
	shmDefaultSlots = 1 << 10
	// shmChunkMax caps a single record's payload so a giant frame releases
	// slots incrementally instead of holding the whole ring hostage.
	shmChunkMax = 1 << 20

	// Header field offsets. Producer- and consumer-written fields sit on
	// separate cache lines so cursor updates never false-share.
	shmOffMagic     = 0   // u64, creator-written
	shmOffSlots     = 8   // u64, creator-written
	shmOffTail      = 64  // u64, producer cursor: slots published
	shmOffProdSleep = 128 // u32, producer armed the doorbell (ring full)
	shmOffHead      = 192 // u64, consumer cursor: slots consumed
	shmOffConsSleep = 256 // u32, consumer armed the doorbell (ring empty)
	shmOffClosed    = 320 // u32, either side is gone; set once, never cleared
	shmOffLocal     = 384 // u32, the opener lives in the creator's process

	// shmSpinWait bounds the consumer's pre-sleep spin. An empty ring spins
	// this long before arming the doorbell and blocking: in a busy exchange
	// the next frame lands well inside the window, so the cross-process
	// steady state does zero syscalls — the whole point of the plane.
	shmSpinWait = 40 * time.Microsecond
	// shmFullSpin bounds the producer's pre-sleep spin on a full ring
	// (rare: the consumer drains into unbounded mailboxes).
	shmFullSpin = 10 * time.Microsecond
	// shmPollInterval is the blocked waiters' fallback re-check period —
	// insurance against a lost doorbell byte, never the primary wakeup.
	shmPollInterval = 10 * time.Millisecond

	// shmReadBufSize sizes the bufio.Reader over an upgraded connection.
	// A socket's 8KB buffer amortizes read syscalls; ring reads cost no
	// syscall at all, and a big buffer only double-copies payload bytes
	// (fill from the ring, copy out again on the next large ReadFull), so
	// the shm reader keeps just enough for frame headers and batch walking —
	// large payload reads bypass it and drain the ring directly.
	shmReadBufSize = 1 << 10
)

// shmSpin gates the pre-sleep spin: on a single-CPU machine a spinning
// consumer only steals the producer's timeslice (Gosched round-robins
// through every runnable goroutine), so blocking immediately is strictly
// better there.
var shmSpin = runtime.NumCPU() > 1

// shmSeq disambiguates ring segment names minted by one process.
var shmSeq atomic.Int64

// Process-wide doorbell telemetry, exported to /metrics via ShmStats: how
// often a waiter armed its sleep flag before blocking (arms — each one is a
// spin window that expired), and how often a producer/consumer actually
// rang the socket doorbell to wake an armed peer (rings — each one is a
// syscall round trip the busy-exchange fast path avoided). Unconditional
// atomic adds on paths that are about to block or syscall anyway.
var (
	shmDoorbellArms  atomic.Int64
	shmDoorbellRings atomic.Int64
)

// ShmStats reports the cumulative armed-sleep and doorbell-ring counts
// across every shm connection of the process.
func ShmStats() (arms, rings int64) {
	return shmDoorbellArms.Load(), shmDoorbellRings.Load()
}

// ringBells is the in-process fast path for a ring's wakeups. The creator
// registers a pair of cap-1 channels under the segment path; an opener in
// the same process (the in-process deployments every test harness and the
// bench pair run) finds them in the registry, marks the ring local in its
// header, and from then on both ends signal through the channels — a ~20ns
// nonblocking send — instead of the socket doorbell's syscall round trip.
// A true cross-process opener misses the registry (it is per-process) and
// both ends stay on the socket doorbell.
type ringBells struct {
	data  chan struct{} // producer → consumer: a record was published
	space chan struct{} // consumer → producer: slots were released
}

var shmBells sync.Map // segment path → *ringBells

// shmDir picks where ring segments live: the tmpfs mount when the platform
// has one (pages never touch a disk), the short temp dir otherwise.
func shmDir() string {
	if st, err := os.Stat("/dev/shm"); err == nil && st.IsDir() {
		return "/dev/shm"
	}
	return shortTempDir()
}

// shmRingPath mints a fingerprint-checked segment name. The fingerprint
// keeps deployments apart the same way the peer hello does — a process
// cannot be handed a ring minted for a different schedule without the
// mismatch being visible in the name — and the pid+sequence keeps names
// unique within a host. Kept short: segment names travel through the same
// handshake fields as socket paths.
func shmRingPath(fingerprint uint64) string {
	return fmt.Sprintf("%s/skr-%08x-%d-%d", shmDir(),
		uint32(fingerprint^(fingerprint>>32)), os.Getpid(), shmSeq.Add(1))
}

// shmRing is one mapped direction of a connection: a fixed-slot SPSC slab.
// One process holds the producer role, the other the consumer role; both
// embed the ring in an shmConn, which supplies the blocking protocol.
type shmRing struct {
	path  string
	mem   []byte // the full mapping: header page + slab
	slots uint64
	// bells is non-nil on the creator (registered) and on a same-process
	// opener (found in the registry); nil on a cross-process opener. Used
	// for wakeups only when the shared local flag confirms both ends hold it.
	bells *ringBells
	// recOff is consumer-local: bytes of the current record already yielded
	// to Read (a record larger than the caller's buffer drains over several
	// calls; its slots are released only when the record is done).
	recOff int
}

func (r *shmRing) u64(off int) *uint64 { return (*uint64)(unsafe.Pointer(&r.mem[off])) }
func (r *shmRing) u32(off int) *uint32 { return (*uint32)(unsafe.Pointer(&r.mem[off])) }

// createShmRing creates, sizes and maps a fresh ring segment, initializing
// the header. The creator may hold either role; the header layout is
// symmetric.
func createShmRing(fingerprint uint64, slots uint64) (*shmRing, error) {
	path := shmRingPath(fingerprint)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, fmt.Errorf("nettransport: shm segment: %w", err)
	}
	size := shmHdrSize + int(slots)*shmSlotSize
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("nettransport: sizing shm segment: %w", err)
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	f.Close()
	if err != nil {
		os.Remove(path)
		return nil, fmt.Errorf("nettransport: mapping shm segment: %w", err)
	}
	r := &shmRing{path: path, mem: mem, slots: slots,
		bells: &ringBells{data: make(chan struct{}, 1), space: make(chan struct{}, 1)}}
	shmBells.Store(path, r.bells)
	atomic.StoreUint64(r.u64(shmOffSlots), slots)
	atomic.StoreUint64(r.u64(shmOffMagic), shmMagic)
	// Backstop for paths that drop a mapped ring without an explicit close
	// (a detached connection the session never revisits): the address space
	// and tmpfs pages are reclaimed when the ring is collected.
	runtime.SetFinalizer(r, func(fr *shmRing) { fr.unmap() })
	return r, nil
}

// openShmRing maps a ring segment created by the other end of a handshake
// and validates its header.
func openShmRing(path string) (*shmRing, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("nettransport: opening shm segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("nettransport: shm segment: %w", err)
	}
	size := int(st.Size())
	if size < shmHdrSize+shmSlotSize {
		f.Close()
		return nil, fmt.Errorf("nettransport: shm segment %s truncated (%d bytes)", path, size)
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("nettransport: mapping shm segment: %w", err)
	}
	r := &shmRing{path: path, mem: mem}
	if m := atomic.LoadUint64(r.u64(shmOffMagic)); m != shmMagic {
		r.unmap()
		return nil, fmt.Errorf("nettransport: shm segment %s: bad magic %#x", path, m)
	}
	r.slots = atomic.LoadUint64(r.u64(shmOffSlots))
	if r.slots == 0 || shmHdrSize+int(r.slots)*shmSlotSize > size {
		r.unmap()
		return nil, fmt.Errorf("nettransport: shm segment %s: slot count %d out of range", path, r.slots)
	}
	if b, ok := shmBells.LoadAndDelete(path); ok {
		// The creator is this very process: share its bell channels and tell
		// it so through the header — wakeups in both directions go through
		// channels from here on, never the socket.
		r.bells = b.(*ringBells)
		atomic.StoreUint32(r.u32(shmOffLocal), 1)
	}
	runtime.SetFinalizer(r, func(fr *shmRing) { fr.unmap() })
	return r, nil
}

// local reports whether both ends of the ring share this process — set by
// the opener at map time when it found the creator's bells in the registry.
func (r *shmRing) local() bool {
	return r.bells != nil && atomic.LoadUint32(r.u32(shmOffLocal)) != 0
}

func (r *shmRing) unmap() {
	if r.mem != nil {
		runtime.SetFinalizer(r, nil)
		shmBells.Delete(r.path)
		syscall.Munmap(r.mem)
		r.mem = nil
	}
}

// remove unlinks the segment name; the mappings live on. Called once both
// ends hold the ring.
func (r *shmRing) remove() { os.Remove(r.path) }

// free reports the unpublished slots (producer side).
func (r *shmRing) free() uint64 {
	tail := atomic.LoadUint64(r.u64(shmOffTail))
	head := atomic.LoadUint64(r.u64(shmOffHead))
	return r.slots - (tail - head)
}

// readable reports whether any published record awaits the consumer.
func (r *shmRing) readable() bool {
	return atomic.LoadUint64(r.u64(shmOffTail)) != atomic.LoadUint64(r.u64(shmOffHead))
}

// closedFlag reports whether either side marked the ring closed.
func (r *shmRing) closedFlag() bool { return atomic.LoadUint32(r.u32(shmOffClosed)) != 0 }

// setClosed marks the ring closed in shared memory, visible to both ends.
func (r *shmRing) setClosed() { atomic.StoreUint32(r.u32(shmOffClosed), 1) }

// tryWrite publishes one record holding a prefix of p, sized to the free
// contiguous slots, and returns how many bytes it took (0 = ring full, the
// caller must wait). Single producer: tail is ours to advance; only head is
// read from the other side.
func (r *shmRing) tryWrite(p []byte) int {
	tail := atomic.LoadUint64(r.u64(shmOffTail))
	head := atomic.LoadUint64(r.u64(shmOffHead))
	free := r.slots - (tail - head)
	if free == 0 {
		return 0
	}
	pos := tail % r.slots
	avail := r.slots - pos // records never wrap: bound by contiguous slots
	if free < avail {
		avail = free
	}
	n := int(avail*shmSlotSize) - 4
	if n > len(p) {
		n = len(p)
	}
	if n > shmChunkMax {
		n = shmChunkMax
	}
	off := shmHdrSize + int(pos)*shmSlotSize
	binary.LittleEndian.PutUint32(r.mem[off:], uint32(n))
	copy(r.mem[off+4:], p[:n])
	used := uint64(4+n+shmSlotSize-1) / shmSlotSize
	// The release store publishes the record bytes before the cursor moves.
	atomic.StoreUint64(r.u64(shmOffTail), tail+used)
	return n
}

// tryRead copies published record bytes into p and returns the count (0 =
// ring empty). Slots are released (head advanced) only when the current
// record is fully drained. A record length that does not fit the mapping is
// a corrupt ring and poisons it closed.
func (r *shmRing) tryRead(p []byte) int {
	head := atomic.LoadUint64(r.u64(shmOffHead))
	tail := atomic.LoadUint64(r.u64(shmOffTail))
	if tail == head {
		return 0
	}
	pos := head % r.slots
	off := shmHdrSize + int(pos)*shmSlotSize
	n := int(binary.LittleEndian.Uint32(r.mem[off:]))
	if n <= 0 || off+4+n > len(r.mem) {
		r.setClosed()
		return 0
	}
	c := copy(p, r.mem[off+4+r.recOff:off+4+n])
	r.recOff += c
	if r.recOff == n {
		r.recOff = 0
		used := uint64(4+n+shmSlotSize-1) / shmSlotSize
		atomic.StoreUint64(r.u64(shmOffHead), head+used)
	}
	return c
}

// shmConn binds a connection's ring(s) to its doorbell socket. A control
// connection holds both directions (in and out); a peer-mesh connection is
// unidirectional and holds one. It implements the wconn's wire on the
// producer side and io.Reader on the consumer side, so the rest of the
// backend cannot tell it from a socket.
type shmConn struct {
	sock net.Conn
	in   *shmRing // consumed here; nil on a produce-only peer connection
	out  *shmRing // produced here; nil on a consume-only peer connection

	inBell  chan struct{}
	outBell chan struct{}

	closed   atomic.Bool
	wdl      atomic.Int64 // write deadline, UnixNano; 0 = none
	bellDone chan struct{}

	// bellRings counts doorbell bytes this connection actually wrote to
	// wake an armed peer; the wconn reads it to record EvDoorbell deltas.
	bellRings atomic.Int64

	// inTimer/outTimer are the cached poll-fallback timers for waitData and
	// waitSpace. Reads are serialized (one bufio.Reader loop) and writes are
	// serialized (the wconn), so each timer has a single user and the cache
	// keeps blocking waits allocation-free.
	inTimer  *time.Timer
	outTimer *time.Timer

	closeOnce sync.Once
}

func newShmConn(sock net.Conn, in, out *shmRing) *shmConn {
	c := &shmConn{
		sock:     sock,
		in:       in,
		out:      out,
		inBell:   make(chan struct{}, 1),
		outBell:  make(chan struct{}, 1),
		bellDone: make(chan struct{}),
	}
	go c.bellLoop()
	return c
}

// bellLoop owns all reads on the doorbell socket: any byte means "re-check
// your cursors", EOF or error means the other process is gone — frames
// already in the ring stay readable (a clean detach's last frames are in
// flight here), new writes fail.
func (c *shmConn) bellLoop() {
	defer close(c.bellDone)
	var buf [64]byte
	for {
		_, err := c.sock.Read(buf[:])
		if err != nil {
			c.closed.Store(true)
			if c.out != nil {
				c.out.setClosed()
			}
			c.ring(c.inBell)
			c.ring(c.outBell)
			// Local-mode waiters block on the shared bells alone; make the
			// death visible there too.
			if c.in != nil && c.in.bells != nil {
				c.ring(c.in.bells.data)
			}
			if c.out != nil && c.out.bells != nil {
				c.ring(c.out.bells.space)
			}
			return
		}
		c.ring(c.inBell)
		c.ring(c.outBell)
	}
}

func (c *shmConn) ring(bell chan struct{}) {
	select {
	case bell <- struct{}{}:
	default:
	}
}

// doorbell wakes the other end if it armed the given sleep flag. The CAS
// makes each armed sleep cost at most one byte on the socket; an unarmed
// (spinning or busy) peer costs nothing.
func (c *shmConn) doorbell(r *shmRing, flagOff int) {
	if atomic.LoadUint32(r.u32(flagOff)) != 0 &&
		atomic.CompareAndSwapUint32(r.u32(flagOff), 1, 0) {
		c.bellRings.Add(1)
		shmDoorbellRings.Add(1)
		var b [1]byte
		c.sock.Write(b[:]) // best effort: a dead socket is handled by bellLoop
	}
}

// outOccupancy reports the bytes currently published-but-unconsumed in the
// out ring — the occupancy sample the wconn records as EvRingOcc after a
// coalesced drain. Zero on a consume-only connection.
func (c *shmConn) outOccupancy() int64 {
	r := c.out
	if r == nil {
		return 0
	}
	tail := atomic.LoadUint64(r.u64(shmOffTail))
	head := atomic.LoadUint64(r.u64(shmOffHead))
	return int64(tail-head) * shmSlotSize
}

// wakeConsumer signals the ring's consumer after a publish: a nonblocking
// channel send when the peer shares this process, the socket doorbell
// otherwise.
func (c *shmConn) wakeConsumer(r *shmRing) {
	if r.local() {
		c.ring(r.bells.data)
		return
	}
	c.doorbell(r, shmOffConsSleep)
}

// wakeProducer signals the ring's producer after slots were released.
func (c *shmConn) wakeProducer(r *shmRing) {
	if r.local() {
		c.ring(r.bells.space)
		return
	}
	c.doorbell(r, shmOffProdSleep)
}

// pollTimer returns the cached fallback timer, armed; stop must be deferred.
func pollTimer(slot **time.Timer) (t *time.Timer, stop func()) {
	t = *slot
	if t == nil {
		t = time.NewTimer(shmPollInterval)
		*slot = t
	} else {
		t.Reset(shmPollInterval)
	}
	return t, func() {
		if !t.Stop() {
			select {
			case <-t.C:
			default:
			}
		}
	}
}

// dead reports whether the ring is finished for its blocking waiters:
// locally closed, remotely closed, or poisoned.
func (c *shmConn) dead(r *shmRing) bool {
	return c.closed.Load() || r.closedFlag()
}

// Write copies p into the out ring as one or more records, blocking while
// the ring is full — first a short spin, then armed-doorbell sleep. The
// block mirrors a socket write blocking on a full kernel buffer: it cannot
// deadlock the executive because the consumer drains into unbounded
// mailboxes, and it unwedges with an error the moment the peer dies (bell
// loop EOF) or the write deadline passes (teardown flush).
func (c *shmConn) Write(p []byte) (int, error) {
	if c.dead(c.out) {
		return 0, net.ErrClosed
	}
	total := 0
	for len(p) > 0 {
		n := c.out.tryWrite(p)
		if n == 0 {
			if err := c.waitSpace(); err != nil {
				return total, err
			}
			continue
		}
		total += n
		p = p[n:]
		c.wakeConsumer(c.out)
	}
	return total, nil
}

// writev publishes the gathered buffers with a single consumer wakeup at
// the end. Over the head+tail shape of a payload frame (and the writer's
// multi-frame batches), Write's per-chunk wake would bounce a same-process
// consumer awake after the head record just to block again on the missing
// tail — an extra scheduler handoff per message. The one place an interim
// wake is mandatory is a full ring: the consumer must hear about the data
// already published before the producer sleeps waiting for it to drain.
func (c *shmConn) writev(bufs net.Buffers) error {
	if c.dead(c.out) {
		return net.ErrClosed
	}
	for _, p := range bufs {
		if err := c.writeQuiet(p); err != nil {
			return err
		}
	}
	c.wakeConsumer(c.out)
	return nil
}

// writev2 is writev for the dominant head+tail frame shape, shaped so the
// caller needs no net.Buffers slice (which escapes to the heap per frame).
func (c *shmConn) writev2(head, tail []byte) error {
	if c.dead(c.out) {
		return net.ErrClosed
	}
	if err := c.writeQuiet(head); err != nil {
		return err
	}
	if err := c.writeQuiet(tail); err != nil {
		return err
	}
	c.wakeConsumer(c.out)
	return nil
}

// writeQuiet copies p into the out ring without the trailing wake — the
// vectored writers wake once per gather, except when a full ring forces the
// consumer to drain mid-write.
func (c *shmConn) writeQuiet(p []byte) error {
	for len(p) > 0 {
		n := c.out.tryWrite(p)
		if n == 0 {
			c.wakeConsumer(c.out)
			if err := c.waitSpace(); err != nil {
				return err
			}
			continue
		}
		p = p[n:]
	}
	return nil
}

// waitSpace blocks until the out ring has free slots: spin briefly (only
// worthwhile with a second CPU for the consumer to run on), then arm the
// producer sleep flag and wait for the consumer's wakeup — its bell channel
// for a same-process peer, the socket doorbell otherwise, with the poll
// fallback as lost-wakeup insurance.
func (c *shmConn) waitSpace() error {
	if shmSpin {
		for start := time.Now(); ; {
			if c.out.free() > 0 {
				return nil
			}
			if c.dead(c.out) {
				return net.ErrClosed
			}
			if time.Since(start) > shmFullSpin {
				break
			}
			runtime.Gosched()
		}
	}
	var spaceBell chan struct{}
	if c.out.bells != nil {
		spaceBell = c.out.bells.space
	}
	t, stop := pollTimer(&c.outTimer)
	defer stop()
	for {
		atomic.StoreUint32(c.out.u32(shmOffProdSleep), 1)
		shmDoorbellArms.Add(1)
		// Re-check after arming: the consumer drains, then checks the flag —
		// both orders of the race end with either free slots visible here or
		// the flag visible there (the sequentially consistent atomics forbid
		// the lost-wakeup interleaving). The channel path is race-free on its
		// own: a local consumer rings after every drain, so a token is either
		// pending or the re-check sees the slots.
		if c.out.free() > 0 {
			atomic.StoreUint32(c.out.u32(shmOffProdSleep), 0)
			return nil
		}
		if c.dead(c.out) {
			return net.ErrClosed
		}
		if dl := c.wdl.Load(); dl != 0 && time.Now().UnixNano() > dl {
			return os.ErrDeadlineExceeded
		}
		select {
		case <-spaceBell:
		case <-c.outBell:
		case <-t.C:
			t.Reset(shmPollInterval)
		}
	}
}

// Read yields published bytes from the in ring, blocking while it is empty.
// On a closed ring the remaining records drain first and then Read returns
// io.EOF — exactly a socket's close semantics, so a detach frame written
// just before the peer closed still arrives.
func (c *shmConn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	for {
		head := atomic.LoadUint64(c.in.u64(shmOffHead))
		if n := c.in.tryRead(p); n > 0 {
			// Wake the producer only when slots were actually released — a
			// partial drain of a large record frees nothing to write into.
			if atomic.LoadUint64(c.in.u64(shmOffHead)) != head {
				c.wakeProducer(c.in)
			}
			return n, nil
		}
		if c.dead(c.in) {
			return 0, io.EOF
		}
		c.waitData()
	}
}

// waitData blocks until the in ring has a record or the ring dies: spin
// inside shmSpinWait when a second CPU can make the producer progress — the
// zero-syscall fast path a busy cross-process exchange lives on — then arm
// the consumer sleep flag and wait for the producer's wakeup (bell channel
// for a same-process peer, socket doorbell otherwise).
func (c *shmConn) waitData() {
	if c.in.local() {
		// Same-process peer: the producer rings the shared data bell after
		// every publish and every terminal transition (Close) rings it too,
		// so a plain check-then-receive loop cannot lose a wakeup and the
		// poll-timer insurance (and its Reset cost per block) is not needed.
		for {
			if c.in.readable() || c.dead(c.in) {
				return
			}
			// A bare receive, no select: the producer tops the cap-1 bell up
			// after every publish and every death path rings it (Close here or
			// on the peer, bellLoop EOF), so the token either is pending or
			// arrives after our re-check — never lost, and cheaper than
			// select's per-case locking on the hot block.
			<-c.in.bells.data
		}
	}
	if shmSpin {
		for start := time.Now(); ; {
			if c.in.readable() || c.dead(c.in) {
				return
			}
			if time.Since(start) > shmSpinWait {
				break
			}
			runtime.Gosched()
		}
	}
	var dataBell chan struct{}
	if c.in.bells != nil {
		dataBell = c.in.bells.data
	}
	t, stop := pollTimer(&c.inTimer)
	defer stop()
	for {
		atomic.StoreUint32(c.in.u32(shmOffConsSleep), 1)
		shmDoorbellArms.Add(1)
		if c.in.readable() || c.dead(c.in) {
			atomic.StoreUint32(c.in.u32(shmOffConsSleep), 0)
			return
		}
		select {
		case <-dataBell:
		case <-c.inBell:
		case <-t.C:
			t.Reset(shmPollInterval)
		}
	}
}

// SetWriteDeadline bounds how long a blocked Write waits for slots — the
// teardown flush uses it exactly as it would on a socket.
func (c *shmConn) SetWriteDeadline(t time.Time) error {
	if t.IsZero() {
		c.wdl.Store(0)
	} else {
		c.wdl.Store(t.UnixNano())
	}
	return nil
}

// Close marks the rings closed (the shared flag reaches the other process
// even if the socket teardown races), closes the doorbell socket and wakes
// every waiter. The mappings themselves stay mapped until the rings are
// collected (the SetFinalizer backstop): a ring is ~68KB of address space,
// and leaving the unmap to the GC keeps Read/Write free of any fence a
// racing eager munmap would demand. Idempotent.
func (c *shmConn) Close() error {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		if c.out != nil {
			c.out.setClosed()
			c.doorbell(c.out, shmOffConsSleep)
		}
		if c.in != nil {
			c.in.setClosed()
			c.doorbell(c.in, shmOffProdSleep)
		}
		c.sock.Close()
		c.ring(c.inBell)
		c.ring(c.outBell)
		// A same-process peer blocked in a wait listens on the shared bells,
		// not our inBell/outBell — ring those too so it re-checks the closed
		// flag without waiting out a poll interval.
		for _, r := range []*shmRing{c.in, c.out} {
			if r != nil && r.bells != nil {
				c.ring(r.bells.data)
				c.ring(r.bells.space)
			}
		}
	})
	return nil
}
