package nettransport_test

import (
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"skipper/internal/arch"
	"skipper/internal/exec/nettransport"
	"skipper/internal/exec/transport"
	"skipper/internal/graph"
)

// waitCluster polls a session's ClusterInfo until cond holds or the
// deadline passes; detach bookkeeping happens on the hub's read loop,
// asynchronously to the client's Close.
func waitCluster(t *testing.T, s *nettransport.Session, cond func(nettransport.ClusterInfo) bool) nettransport.ClusterInfo {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ci := s.ClusterInfo()
		if cond(ci) {
			return ci
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never reached expected state: %+v", ci)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWorkerChurnFreshSession drills the elastic-fleet contract on one
// session: a worker that detaches cleanly and re-attaches under the same
// processor ID must get a fresh epoch — no resurrected pending frames, no
// stale peers-map entry — and the deployment must become ready again.
func TestWorkerChurnFreshSession(t *testing.T) {
	a := arch.Ring(3)
	hub, err := nettransport.NewHub("127.0.0.1:0", a, 0xc0ffee, []arch.ProcID{0})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	c1, err := nettransport.Dial(hub.Addr(), 0xc0ffee, []arch.ProcID{1}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	ci := waitCluster(t, hub.Session, func(ci nettransport.ClusterInfo) bool {
		return len(ci.Attached) == 0
	})
	if len(ci.Departed) != 1 || ci.Departed[0] != 1 {
		t.Fatalf("departed = %v, want [1]", ci.Departed)
	}

	// A frame addressed to the departed processor belongs to the epoch that
	// ended with the detach: it must be dropped, not buffered for the next
	// attach under the same ID.
	k := transport.EdgeKey(graph.EdgeID(4))
	hub.Send(0, 1, k, "stale")

	c1b, err := nettransport.Dial(hub.Addr(), 0xc0ffee, []arch.ProcID{1}, time.Second)
	if err != nil {
		t.Fatalf("re-attach after clean detach rejected: %v", err)
	}
	defer c1b.Close()
	c2, err := nettransport.Dial(hub.Addr(), 0xc0ffee, []arch.ProcID{2}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := hub.WaitReady(2 * time.Second); err != nil {
		t.Fatalf("session not ready after churn: %v", err)
	}
	ci = hub.ClusterInfo()
	if len(ci.Departed) != 0 {
		t.Fatalf("departed = %v after re-attach, want none", ci.Departed)
	}

	// First frame out of the mailbox must be the fresh one; a resurrected
	// "stale" would have been flushed at attach time, ahead of it.
	hub.Send(0, 1, k, "fresh")
	if v, ok := c1b.Recv(1, k); !ok || v.(string) != "fresh" {
		t.Fatalf("recv after re-attach = %v %v, want \"fresh\"", v, ok)
	}

	// The peers map handed to c2 must point at the re-attached listener:
	// a mesh frame from 2 reaches the new client 1.
	km := transport.EdgeKey(graph.EdgeID(5))
	c2.Send(2, 1, km, "mesh")
	if v, ok := c1b.Recv(1, km); !ok || v.(string) != "mesh" {
		t.Fatalf("mesh frame after churn = %v %v, want \"mesh\"", v, ok)
	}
}

// TestCrossJobFrameIsolation pins the multi-job invariant of the fleet hub:
// two sessions share one listener and even the same processor IDs, yet a
// frame keyed for job A is never delivered to job B.
func TestCrossJobFrameIsolation(t *testing.T) {
	f, err := nettransport.NewFleetHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	a := arch.Ring(3)
	const fpA, fpB = 0xa0a0, 0xb1b1
	sa, err := f.OpenSession(a, fpA, []arch.ProcID{0})
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	sb, err := f.OpenSession(a, fpB, []arch.ProcID{0})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()

	dial := func(fp uint64, p arch.ProcID) *nettransport.Client {
		t.Helper()
		cl, err := nettransport.Dial(f.Addr(), fp, []arch.ProcID{p}, time.Second)
		if err != nil {
			t.Fatalf("dial fp %#x proc %d: %v", fp, p, err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}
	a1, a2 := dial(fpA, 1), dial(fpA, 2)
	b1, b2 := dial(fpB, 1), dial(fpB, 2)
	if err := sa.WaitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sb.WaitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Same key, same processor pair, different jobs — over both the control
	// plane (0→1) and the peer mesh (1→2).
	k := transport.EdgeKey(graph.EdgeID(7))
	sa.Send(0, 1, k, "ctl-A")
	sb.Send(0, 1, k, "ctl-B")
	a1.Send(1, 2, k, "mesh-A")
	b1.Send(1, 2, k, "mesh-B")
	if v, ok := a1.Recv(1, k); !ok || v.(string) != "ctl-A" {
		t.Fatalf("job A control frame = %v %v, want \"ctl-A\"", v, ok)
	}
	if v, ok := b1.Recv(1, k); !ok || v.(string) != "ctl-B" {
		t.Fatalf("job B control frame = %v %v, want \"ctl-B\"", v, ok)
	}
	if v, ok := a2.Recv(2, k); !ok || v.(string) != "mesh-A" {
		t.Fatalf("job A mesh frame = %v %v, want \"mesh-A\"", v, ok)
	}
	if v, ok := b2.Recv(2, k); !ok || v.(string) != "mesh-B" {
		t.Fatalf("job B mesh frame = %v %v, want \"mesh-B\"", v, ok)
	}
	// Every mailbox has been drained exactly once: nothing crossed.
	for name, n := range map[string]int{
		"a1": a1.QueueDepth(), "a2": a2.QueueDepth(),
		"b1": b1.QueueDepth(), "b2": b2.QueueDepth(),
		"sa": sa.QueueDepth(), "sb": sb.QueueDepth(),
	} {
		if n != 0 {
			t.Fatalf("%s holds %d undelivered values — a frame crossed jobs", name, n)
		}
	}

	// An abort in job A must not touch job B.
	sa.Abort()
	k2 := transport.EdgeKey(graph.EdgeID(8))
	sb.Send(0, 1, k2, "still-alive")
	if v, ok := b1.Recv(1, k2); !ok || v.(string) != "still-alive" {
		t.Fatalf("job B after job A abort = %v %v, want \"still-alive\"", v, ok)
	}
}

// TestFleetHubSessionRegistry covers the registry contract: unknown
// fingerprints are rejected per-connection, duplicates are refused, and a
// closed session frees its fingerprint for reuse.
func TestFleetHubSessionRegistry(t *testing.T) {
	f, err := nettransport.NewFleetHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a := arch.Ring(2)
	s1, err := f.OpenSession(a, 42, []arch.ProcID{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.OpenSession(a, 42, []arch.ProcID{0}); err == nil {
		t.Fatal("duplicate fingerprint accepted")
	}
	if _, err := nettransport.Dial(f.Addr(), 999, []arch.ProcID{1}, 500*time.Millisecond); err == nil ||
		!strings.Contains(err.Error(), "no active deployment") {
		t.Fatalf("unknown fingerprint dial err = %v, want rejection", err)
	}
	if n := f.SessionCount(); n != 1 {
		t.Fatalf("SessionCount = %d, want 1", n)
	}
	s1.Close()
	if n := f.SessionCount(); n != 0 {
		t.Fatalf("SessionCount after close = %d, want 0", n)
	}
	s2, err := f.OpenSession(a, 42, []arch.ProcID{0})
	if err != nil {
		t.Fatalf("fingerprint not freed by session close: %v", err)
	}
	s2.Close()
}

// TestStaleUnixSocketRecovered pins the bind-time hygiene fix: a socket
// file left behind by a SIGKILLed process (simulated by closing a listener
// with unlink-on-close disabled) must not make the next bind fail — the
// connect-refused probe identifies it as dead and it is unlinked. A path
// with a *live* listener must still be refused.
func TestStaleUnixSocketRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hub.sock")
	ln, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	ln.(*net.UnixListener).SetUnlinkOnClose(false)
	ln.Close() // the socket file survives, with nobody accepting

	f, err := nettransport.NewFleetHub("unix:" + path)
	if err != nil {
		t.Fatalf("bind over stale socket file: %v", err)
	}
	// The recovered listener works end to end.
	a := arch.Ring(2)
	s, err := f.OpenSession(a, 7, []arch.ProcID{0})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := nettransport.Dial(f.Addr(), 7, []arch.ProcID{1}, time.Second)
	if err != nil {
		t.Fatalf("dial recovered socket: %v", err)
	}
	k := transport.EdgeKey(graph.EdgeID(1))
	s.Send(0, 1, k, "over-unix")
	if v, ok := cl.Recv(1, k); !ok || v.(string) != "over-unix" {
		t.Fatalf("recv = %v %v, want \"over-unix\"", v, ok)
	}
	cl.Close()

	// Live listener on the path: the probe connects, so the bind error
	// stands instead of yanking a working hub's socket out from under it.
	if _, err := nettransport.NewFleetHub("unix:" + path); err == nil {
		t.Fatal("second hub bound over a live unix listener")
	}
	f.Close()
}
