// Package nettransport is the multi-process communication backend of the
// executive: each OS process hosts a subset of the architecture's
// processors and exchanges length-prefixed binary frames over TCP. The
// topology is a hub: the coordinator process listens and routes, node
// processes dial in, identify their processors in a handshake, and every
// inter-process frame takes at most two TCP legs (sender → hub → owner).
// Frames addressed to processors that have not attached yet are buffered
// at the hub, so no start-order barrier is needed; readers always drain
// into unbounded mailboxes, so the network never backpressures into a
// routing deadlock (the same argument that makes the paper's
// store-and-forward executive deadlock-free).
package nettransport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"skipper/internal/arch"
	"skipper/internal/exec/transport"
	"skipper/internal/graph"
	"skipper/internal/value"
)

const (
	// magic opens every handshake: "SKiP".
	magic = 0x534b6950
	// wireVersion is bumped on any incompatible frame-format change.
	wireVersion = 1
	// abortDst is a control frame that propagates Abort across processes.
	abortDst = 0xffffffff
	// maxFrame bounds a declared frame length before allocation: a corrupt
	// or hostile peer cannot make us allocate more than this per frame.
	maxFrame = 256 << 20
	// frameHeader is dst + key (kind, edge, farm, widx) in bytes.
	frameHeader = 4 + 1 + 4 + 4 + 4
)

// appendFrame serializes one message frame: u32 length of the rest, u32
// dst, the key (u8 kind + 3×u32), then the codec payload.
func appendFrame(buf []byte, dst uint32, key transport.Key, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(frameHeader+len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, dst)
	buf = append(buf, key.Kind)
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(key.Edge)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(key.Farm)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(key.Widx)))
	return append(buf, payload...)
}

// encodeMessage builds a full frame for (dst, key, v), running v through
// the value codec.
func encodeMessage(dst arch.ProcID, key transport.Key, v value.Value) ([]byte, error) {
	payload, err := value.Encode(nil, v)
	if err != nil {
		return nil, err
	}
	return appendFrame(make([]byte, 0, 4+frameHeader+len(payload)), uint32(dst), key, payload), nil
}

// abortFrame is the serialized cluster-wide abort control frame.
func abortFrame() []byte {
	return appendFrame(nil, abortDst, transport.Key{}, nil)
}

// readFrame reads one length-prefixed frame and splits it into the raw
// frame bytes (length prefix included, for cheap re-forwarding), the
// destination, the key and the payload slice. io.EOF is returned verbatim
// on a clean close between frames.
func readFrame(br *bufio.Reader) (raw []byte, dst uint32, key transport.Key, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(br, lenBuf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("nettransport: truncated frame length")
		}
		return
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < frameHeader || n > maxFrame {
		err = fmt.Errorf("nettransport: frame length %d out of range", n)
		return
	}
	raw = make([]byte, 4+n)
	copy(raw, lenBuf[:])
	if _, err = io.ReadFull(br, raw[4:]); err != nil {
		err = fmt.Errorf("nettransport: truncated frame body: %w", err)
		return
	}
	dst = binary.BigEndian.Uint32(raw[4:])
	key = transport.Key{
		Kind: raw[8],
		Edge: graph.EdgeID(int32(binary.BigEndian.Uint32(raw[9:]))),
		Farm: graph.NodeID(int32(binary.BigEndian.Uint32(raw[13:]))),
		Widx: int(int32(binary.BigEndian.Uint32(raw[17:]))),
	}
	payload = raw[4+frameHeader:]
	return
}

// wconn serializes frame writes on one connection: a mutex over a buffered
// writer, flushed per frame so a frame is never half-visible to the peer.
type wconn struct {
	mu sync.Mutex
	c  net.Conn
	bw *bufio.Writer
}

func newWConn(c net.Conn) *wconn {
	return &wconn{c: c, bw: bufio.NewWriterSize(c, 64<<10)}
}

func (w *wconn) writeFrame(frame []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.bw.Write(frame); err != nil {
		return err
	}
	return w.bw.Flush()
}
