// Package nettransport is the multi-process communication backend of the
// executive: each OS process hosts a subset of the architecture's
// processors and exchanges length-prefixed binary frames over TCP. The
// topology splits into two planes (DESIGN.md §9):
//
//   - control plane: the coordinator process runs a Hub that listens,
//     validates handshakes (schedule fingerprint, processor claims),
//     buffers frames for processors that have not attached yet, brokers
//     the peer address map and broadcasts cluster-wide aborts;
//   - data plane: once every processor is attached the hub distributes
//     the address map of every node's peer listener and node↔node frames
//     travel one TCP hop, point to point, never through the hub. Frames
//     to and from hub-hosted processors ride the control connection,
//     which is already a single hop.
//
// Readers always drain into unbounded mailboxes, so the network never
// backpressures into a routing deadlock (the same argument that makes the
// paper's store-and-forward executive deadlock-free). The hot path is
// allocation-free: frame buffers come from a shared sync.Pool arena,
// payload encoding is presized via value.EncodeSize, raw pixel slabs are
// shipped by reference through vectored writes (value.EncodeTrailing), and
// each connection coalesces queued frames into a single writev.
package nettransport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"skipper/internal/arch"
	"skipper/internal/exec/transport"
	"skipper/internal/graph"
	"skipper/internal/obsv"
	"skipper/internal/value"
)

// Process-wide batching telemetry, exported to /metrics via BatchStats: how
// often the writer coalesced a multi-frame backlog into one drain, and how
// many sub-frames those drains carried. Unconditional (two atomic adds per
// coalesced drain, nothing per lone frame), so the series exists whether or
// not a recorder is armed.
var (
	batchFlushes   atomic.Int64
	batchSubFrames atomic.Int64
)

// BatchStats reports the cumulative coalesced-drain count and the total
// sub-frames those drains carried, across every connection of the process.
func BatchStats() (flushes, subFrames int64) {
	return batchFlushes.Load(), batchSubFrames.Load()
}

const (
	// magic opens every handshake: "SKiP".
	magic = 0x534b6950
	// wireVersion is bumped on any incompatible frame-format change.
	// Version 2: peer-to-peer data plane (hello carries a data-listener
	// address, peers/detach control frames).
	// Version 3: the hello reply's accept branch carries the hub's wall
	// clock, so each node can estimate its clock offset for trace alignment.
	// Version 4: fault tolerance — heartbeat and peer-down control frames,
	// and farm Task/Reply payloads carry a dispatch generation.
	// Version 5: frame batching (batchDst frames whose payload is a run of
	// complete frames) and unix-scheme data-plane addresses in the hello.
	// Version 6: shared-memory upgrade — the hello and peer hello carry an
	// optional shm ring-segment request, the hello reply acknowledges it,
	// and an upgraded connection moves its frame stream into the mmap'd
	// slab ring while the socket degrades to a doorbell (DESIGN.md §14).
	wireVersion = 6
	// abortDst is a control frame that propagates Abort across processes.
	abortDst = 0xffffffff
	// peersDst is a hub→node control frame carrying the address map of
	// every node's peer data listener.
	peersDst = 0xfffffffe
	// detachDst is a node→hub control frame announcing a clean shutdown.
	// A connection that hits EOF without a preceding detach is a node
	// death: the hub aborts the cluster, or — when a peer-down handler is
	// registered — contains the failure and notifies the executive.
	detachDst = 0xfffffffd
	// heartbeatDst is a node→hub control frame proving liveness. A hub
	// running with a heartbeat interval declares a connection dead when no
	// frame (heartbeat or data) has arrived for several intervals, catching
	// silent deaths TCP would take minutes to surface.
	heartbeatDst = 0xfffffffc
	// peerDownDst is a hub→node control frame listing processors whose
	// process died; surviving nodes mark them dead and notify the executive.
	peerDownDst = 0xfffffffb
	// batchDst marks a batch frame: its payload is a concatenation of
	// complete frames (each with its own length prefix and routing header),
	// coalesced by the writer so a burst of small frames costs the receiver
	// one length-prefixed read instead of one per frame. Batches never nest.
	batchDst = 0xfffffffa
	// maxFrame bounds a declared frame length before allocation: a corrupt
	// or hostile peer cannot make us allocate more than this per frame.
	maxFrame = 256 << 20
	// batchFragMax is the largest individual frame the writer will fold into
	// a batch: big frames (pixel slabs) already amortize their syscall and
	// would only delay the batch's first byte.
	batchFragMax = 16 << 10
	// batchMaxBytes caps a batch frame's total payload, bounding the
	// receive-side arena buffer a burst can demand.
	batchMaxBytes = 1 << 20
	// frameHeader is dst + key (kind, edge, farm, widx) in bytes.
	frameHeader = 4 + 1 + 4 + 4 + 4
	// maxPooled caps the buffers the frame arena retains: anything larger
	// (a degenerate giant frame) is left for the GC rather than pinned.
	maxPooled = 4 << 20
	// readBufSize is each connection reader's bufio buffer. Frame headers
	// and scalar frames are absorbed in one fill; pixel slabs — larger than
	// the buffer — bypass it once it drains and are read straight into their
	// destination (value.DecodeStream), so only a slab's first buffered
	// bytes are ever copied twice on the read side.
	readBufSize = 8 << 10
	// flushTimeout bounds how long a teardown waits for a connection's
	// queued frames to drain before closing it anyway.
	flushTimeout = 5 * time.Second
)

// defaultMeshWaitTimeout bounds how long a remote Send waits for the hub's
// peers frame. The map only arrives once every processor has attached, so a
// node process that never starts would otherwise hang every sender
// silently; past the deadline the cluster fails with a diagnostic instead.
// Per-client (WithMeshWaitTimeout), not a package var: tests tuning it
// must not race other clients.
const defaultMeshWaitTimeout = 30 * time.Second

// frameBuf is one arena buffer. The pool stores *frameBuf rather than
// []byte so Put never heap-allocates a slice header.
type frameBuf struct{ b []byte }

var framePool = sync.Pool{New: func() any { return new(frameBuf) }}

// getBuf returns an arena buffer with zero length and at least n capacity.
func getBuf(n int) *frameBuf {
	fb := framePool.Get().(*frameBuf)
	if cap(fb.b) < n {
		fb.b = make([]byte, 0, n)
	}
	fb.b = fb.b[:0]
	return fb
}

// putBuf recycles an arena buffer. nil and oversized buffers are dropped.
func putBuf(fb *frameBuf) {
	if fb == nil || cap(fb.b) > maxPooled {
		return
	}
	framePool.Put(fb)
}

// outFrame is one frame queued for writing: head holds the length prefix,
// routing header and leading payload bytes (owned by the arena, returned
// after the write); tail optionally references a trailing raw slab — a
// pixel plane borrowed from the payload value — that is shipped by a
// vectored write without ever being copied.
type outFrame struct {
	head *frameBuf
	tail []byte
}

// capture folds the borrowed tail into the owned head buffer. Called
// before a frame is parked in a queue or backlog, so the transport never
// holds a reference into caller memory past Send: a sender may recycle a
// payload's buffers as soon as Send returns. The head was presized for the
// full frame (value.EncodeSize), so this append does not allocate.
func (f *outFrame) capture() {
	if len(f.tail) > 0 {
		f.head.b = append(f.head.b, f.tail...)
		f.tail = nil
	}
}

var zeroKey [frameHeader - 4]byte

// appendHeader appends the routing header (dst + key) to buf. The 4-byte
// length prefix must already be reserved by the caller.
func appendHeader(buf []byte, dst uint32, key transport.Key) []byte {
	buf = binary.BigEndian.AppendUint32(buf, dst)
	buf = append(buf, key.Kind)
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(key.Edge)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(key.Farm)))
	return binary.BigEndian.AppendUint32(buf, uint32(int32(key.Widx)))
}

// encodeMessage builds the frame for (dst, key, v): an arena head buffer
// presized from value.EncodeSize plus, for payloads with a raw-slab fast
// path, a borrowed tail. In the steady state (reused arena buffer, sized
// codec) this performs zero heap allocations.
func encodeMessage(dst arch.ProcID, key transport.Key, v value.Value) (outFrame, error) {
	hint := 4 + frameHeader + 64
	if n := value.EncodeSize(v); n >= 0 {
		hint = 4 + frameHeader + n
	}
	fb := getBuf(hint)
	buf := append(fb.b, 0, 0, 0, 0) // length prefix, backpatched below
	buf = appendHeader(buf, uint32(dst), key)
	head, tail, err := value.EncodeTrailing(buf, v)
	if err != nil {
		fb.b = buf
		putBuf(fb)
		return outFrame{}, err
	}
	n := len(head) - 4 + len(tail)
	if n > maxFrame {
		fb.b = head
		putBuf(fb)
		return outFrame{}, fmt.Errorf("nettransport: frame length %d exceeds limit", n)
	}
	binary.BigEndian.PutUint32(head, uint32(n))
	fb.b = head
	return outFrame{head: fb, tail: tail}, nil
}

// controlFrame builds a zero-key control frame (abort, detach, peers map).
func controlFrame(dst uint32, payload []byte) outFrame {
	fb := getBuf(4 + frameHeader + len(payload))
	buf := binary.BigEndian.AppendUint32(fb.b, uint32(frameHeader+len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, dst)
	buf = append(buf, zeroKey[:]...)
	fb.b = append(buf, payload...)
	return outFrame{head: fb}
}

// readFrameHeader reads one frame's length prefix and routing header,
// leaving the payload (n - frameHeader bytes) unread on br. The split lets
// a read loop choose per frame between slurping the payload into an arena
// buffer (readFrameRest — control frames, batches, hub relays) and
// stream-decoding it straight into its final value (value.DecodeStream, the
// zero-copy path for pixel slabs bound for a local mailbox). io.EOF is
// returned verbatim on a clean close between frames.
func readFrameHeader(br *bufio.Reader) (n int, dst uint32, key transport.Key, err error) {
	var hdr [4 + frameHeader]byte
	if _, err = io.ReadFull(br, hdr[:4]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("nettransport: truncated frame length")
		}
		return
	}
	ln := binary.BigEndian.Uint32(hdr[:4])
	if ln < frameHeader || ln > maxFrame {
		err = fmt.Errorf("nettransport: frame length %d out of range", ln)
		return
	}
	if _, err = io.ReadFull(br, hdr[4:]); err != nil {
		err = fmt.Errorf("nettransport: truncated frame body: %w", err)
		return
	}
	n = int(ln)
	dst = binary.BigEndian.Uint32(hdr[4:])
	key = transport.Key{
		Kind: hdr[8],
		Edge: graph.EdgeID(int32(binary.BigEndian.Uint32(hdr[9:]))),
		Farm: graph.NodeID(int32(binary.BigEndian.Uint32(hdr[13:]))),
		Widx: int(int32(binary.BigEndian.Uint32(hdr[17:]))),
	}
	return
}

// readFrameRest materializes the remainder of a frame whose header
// readFrameHeader consumed, rebuilding the full wire image (length prefix +
// header + payload) in an arena buffer so the hub can relay it without
// re-framing. Ownership of fb passes to the caller: putBuf it once the
// payload is consumed, or hand it to a wconn.
func readFrameRest(br *bufio.Reader, n int, dst uint32, key transport.Key) (fb *frameBuf, payload []byte, err error) {
	fb = getBuf(4 + n)
	buf := binary.BigEndian.AppendUint32(fb.b, uint32(n))
	buf = appendHeader(buf, dst, key)
	raw := buf[:4+n]
	if _, err = io.ReadFull(br, raw[4+frameHeader:]); err != nil {
		putBuf(fb)
		return nil, nil, fmt.Errorf("nettransport: truncated frame body: %w", err)
	}
	fb.b = raw
	return fb, raw[4+frameHeader:], nil
}

// readFrame reads one whole length-prefixed frame into an arena buffer —
// readFrameHeader + readFrameRest for callers with no streaming fast path.
func readFrame(br *bufio.Reader) (fb *frameBuf, dst uint32, key transport.Key, payload []byte, err error) {
	n, dst, key, err := readFrameHeader(br)
	if err != nil {
		return nil, dst, key, nil, err
	}
	fb, payload, err = readFrameRest(br, n, dst, key)
	return fb, dst, key, payload, err
}

// wire is what a wconn writes to: a net.Conn, or an shm-upgraded
// connection whose Write lands frames in the mapped slab ring instead of
// the kernel. Everything the write side of the backend needs — streaming
// writes, a bounded teardown flush, a close that unblocks a stuck writer —
// is in this surface; net.Buffers.WriteTo discovers writev on real
// sockets through its own dynamic check, so the narrowing costs nothing.
type wire interface {
	io.Writer
	Close() error
	SetWriteDeadline(t time.Time) error
}

// writeBuffers is the wconn's vectored write: on an shm connection the
// gathered buffers land in the slab with one consumer wakeup at the end
// (an interim wake per buffer would cost a scheduler handoff per message);
// on a socket, net.Buffers discovers writev through its own dynamic check.
// Advances the elements of bufs either way — callers reset it after.
func writeBuffers(c wire, bufs net.Buffers) error {
	if sc, ok := c.(*shmConn); ok {
		return sc.writev(bufs)
	}
	_, err := bufs.WriteTo(c)
	return err
}

// wconn owns all writes on one connection. Senders enqueue frames and never
// block on the socket; a dedicated writer drains the whole queue into a
// single vectored write (net.Buffers → writev), so bursts of frames —
// a master scattering tasks, a backlog flush — coalesce into one syscall
// and raw payload tails are written straight from the payload value's
// memory. Head buffers return to the arena after the write.
type wconn struct {
	c     wire
	onErr func(error) // invoked once, from the writer, on a write failure

	// noBatch disables batch-frame wrapping: on a shared-memory ring there
	// is no syscall for a batch to amortize — every frame is a memcpy into
	// the slab either way — so the wrap would spend a header and a
	// capture-copy per burst to save nothing. Queued frames still drain in
	// one writer pass; they just go out back-to-back instead of nested.
	noBatch bool

	// rec, when non-nil, points at the owning Client/Session's recorder
	// slot: the writer loop loads it per drain to record batch-flush and
	// shm-ring telemetry events. A pointer to the atomic slot (not a copy)
	// so connections built before SetTrace see the arming.
	rec *atomic.Pointer[obsv.Recorder]
	// lastRings is the doorbell-ring count already reported as EvDoorbell
	// events, so each drain records only the delta. Writer-loop only.
	lastRings int64

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []outFrame
	writing bool  // a write (inline or batch) is on the wire
	closed  bool  // flushClose called: drain queue, then exit
	err     error // first write error; queued and future frames are dropped

	done chan struct{} // writer exited
}

func newWConn(c wire, onErr func(error), rec *atomic.Pointer[obsv.Recorder]) *wconn {
	_, shm := c.(*shmConn)
	w := &wconn{c: c, onErr: onErr, noBatch: shm, rec: rec, done: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	go w.writeLoop()
	return w
}

// recorder resolves the armed recorder, if any. Never called on the inline
// send fast path — only from the writer loop's batch drains.
func (w *wconn) recorder() *obsv.Recorder {
	if w.rec == nil {
		return nil
	}
	return w.rec.Load()
}

// send ships one frame. When the connection is idle (nothing queued, no
// write in flight) the frame goes straight to the socket from the calling
// goroutine — the latency fast path, saving a writer wakeup per frame.
// Otherwise it is enqueued and the writer coalesces the backlog into one
// vectored write once the wire frees up. After a write error or flushClose
// the frame is dropped and its head returned to the arena (the connection
// is dead or detaching; frame loss past that point is equivalent to loss
// in flight).
func (w *wconn) send(f outFrame) error {
	w.mu.Lock()
	if w.err != nil || w.closed {
		err := w.err
		w.mu.Unlock()
		putBuf(f.head)
		if err == nil {
			err = net.ErrClosed
		}
		return err
	}
	if !w.writing && len(w.queue) == 0 {
		w.writing = true
		w.mu.Unlock()
		var err error
		if len(f.tail) > 0 {
			if sc, ok := w.c.(*shmConn); ok {
				// Two-buffer fast path: no net.Buffers slice to heap-box.
				err = sc.writev2(f.head.b, f.tail)
			} else {
				bufs := net.Buffers{f.head.b, f.tail}
				_, err = bufs.WriteTo(w.c)
			}
		} else {
			_, err = w.c.Write(f.head.b)
		}
		putBuf(f.head)
		w.mu.Lock()
		w.writing = false
		w.mu.Unlock()
		w.cond.Signal() // backlog may have built up, or flushClose may be waiting
		if err != nil {
			w.fail(err)
		}
		return err
	}
	f.capture()
	w.queue = append(w.queue, f)
	w.mu.Unlock()
	w.cond.Signal()
	return nil
}

// enqueue parks one frame on the writer queue and never touches the socket
// from the calling goroutine. send's inline fast path can block on the wire
// and, on failure, invokes onErr synchronously — so enqueue is the only safe
// way to ship a frame while holding a lock that onErr may take (the hub
// flushes the attach backlog under its registration lock). Any write error
// surfaces later, from the writer goroutine. Frames enqueued after a failure
// or flushClose are dropped, exactly as in send.
func (w *wconn) enqueue(f outFrame) {
	w.mu.Lock()
	if w.err != nil || w.closed {
		w.mu.Unlock()
		putBuf(f.head)
		return
	}
	f.capture()
	w.queue = append(w.queue, f)
	w.mu.Unlock()
	w.cond.Signal()
}

func (w *wconn) writeLoop() {
	defer close(w.done)
	var batch []outFrame
	var bufs net.Buffers
	for {
		w.mu.Lock()
		// Proceed when a batch is writable (frames queued, wire free) or it
		// is time to exit (failed, or closed with everything drained).
		for {
			canWrite := len(w.queue) > 0 && !w.writing
			exit := w.err != nil || (w.closed && len(w.queue) == 0 && !w.writing)
			if canWrite || exit {
				break
			}
			w.cond.Wait()
		}
		if w.err != nil || (w.closed && len(w.queue) == 0 && !w.writing) {
			w.mu.Unlock()
			return
		}
		batch, w.queue = w.queue, batch[:0]
		w.writing = true
		w.mu.Unlock()

		// A run of small frames is wrapped into one length-delimited batch
		// frame: the receiver then pays one prefixed read for the whole
		// burst instead of one per frame. Lone and oversized frames go out
		// bare (the inline fast path in send never sees a batch either).
		bufs = bufs[:0]
		var hdr *frameBuf
		if n := batchableBytes(batch); n > 0 && !w.noBatch {
			hdr = getBuf(4 + frameHeader)
			b := binary.BigEndian.AppendUint32(hdr.b, uint32(frameHeader+n))
			b = binary.BigEndian.AppendUint32(b, batchDst)
			hdr.b = append(b, zeroKey[:]...)
			bufs = append(bufs, hdr.b)
		}
		for _, f := range batch {
			bufs = append(bufs, f.head.b)
			if len(f.tail) > 0 {
				bufs = append(bufs, f.tail)
			}
		}
		nsub := len(batch)
		err := writeBuffers(w.c, bufs)
		putBuf(hdr)
		for i, f := range batch {
			putBuf(f.head)
			batch[i] = outFrame{}
		}
		if err == nil && nsub >= 2 {
			// A coalesced drain — wrapped in a batch frame on sockets, written
			// back-to-back on shm — is the event the batching telemetry counts.
			batchFlushes.Add(1)
			batchSubFrames.Add(int64(nsub))
			if r := w.recorder(); r != nil {
				r.Record(-1, obsv.EvBatchFlush, 0, -1, int64(nsub))
			}
		}
		if err == nil {
			if sc, ok := w.c.(*shmConn); ok {
				if r := w.recorder(); r != nil {
					r.Record(-1, obsv.EvRingOcc, 0, -1, sc.outOccupancy())
					if rings := sc.bellRings.Load(); rings > w.lastRings {
						r.Record(-1, obsv.EvDoorbell, 0, -1, rings)
						w.lastRings = rings
					}
				}
			}
		}
		w.mu.Lock()
		w.writing = false
		w.mu.Unlock()
		if err != nil {
			w.fail(err)
			return
		}
	}
}

// batchableBytes reports the total wire bytes of batch if it should be
// wrapped in a batch frame — at least two frames, none above batchFragMax,
// batchMaxBytes in total — and 0 otherwise.
func batchableBytes(batch []outFrame) int {
	if len(batch) < 2 {
		return 0
	}
	total := 0
	for _, f := range batch {
		n := len(f.head.b) + len(f.tail)
		if n > batchFragMax {
			return 0
		}
		total += n
	}
	if total > batchMaxBytes {
		return 0
	}
	return total
}

// forEachBatched walks the complete frames packed into a batch frame's
// payload, invoking fn with each sub-frame's destination, key and payload.
// Sub-frame payloads alias the batch buffer: consumers must decode or copy
// before returning, never retain. Nested batches and truncated sub-frames
// are framing errors.
func forEachBatched(payload []byte, fn func(dst uint32, key transport.Key, payload []byte) error) error {
	for len(payload) > 0 {
		if len(payload) < 4 {
			return fmt.Errorf("nettransport: truncated batch sub-frame length")
		}
		n := binary.BigEndian.Uint32(payload)
		if n < frameHeader || uint64(n) > uint64(len(payload)-4) {
			return fmt.Errorf("nettransport: batch sub-frame length %d out of range", n)
		}
		raw := payload[4 : 4+n]
		dst := binary.BigEndian.Uint32(raw)
		if dst == batchDst {
			return fmt.Errorf("nettransport: nested batch frame")
		}
		key := transport.Key{
			Kind: raw[4],
			Edge: graph.EdgeID(int32(binary.BigEndian.Uint32(raw[5:]))),
			Farm: graph.NodeID(int32(binary.BigEndian.Uint32(raw[9:]))),
			Widx: int(int32(binary.BigEndian.Uint32(raw[13:]))),
		}
		if err := fn(dst, key, raw[frameHeader:]); err != nil {
			return err
		}
		payload = payload[4+n:]
	}
	return nil
}

// fail records the first write error, drops the queue and notifies onErr
// (once: a concurrent inline and batch write can both error).
func (w *wconn) fail(err error) {
	w.mu.Lock()
	first := w.err == nil
	if first {
		w.err = err
	}
	dropped := w.queue
	w.queue = nil
	w.mu.Unlock()
	w.cond.Broadcast()
	for _, f := range dropped {
		putBuf(f.head)
	}
	if first && w.onErr != nil {
		w.onErr(err)
	}
}

// flushClose drains the queue (bounded by flushTimeout via a write
// deadline), stops the writer and closes the connection. Idempotent.
func (w *wconn) flushClose() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	w.cond.Broadcast()
	w.c.SetWriteDeadline(time.Now().Add(flushTimeout))
	select {
	case <-w.done:
	case <-time.After(flushTimeout):
	}
	w.c.Close()
}
