package nettransport

import (
	"bufio"
	"io"
	"net"
	"time"

	"skipper/internal/arch"
	"skipper/internal/exec/transport"
)

// Peer mesh: the data plane between node processes. Every client binds a
// data listener at Dial time and reports it in the handshake; once all
// processors are attached the hub broadcasts the address map and each
// client lazily dials the peers its schedule sends to. Peer connections
// are unidirectional — the dialer writes, the acceptor reads — so two
// nodes exchanging traffic in both directions hold two sockets. Liveness
// is a control-plane concern: a node death is detected by the hub (EOF
// without a detach frame on the control connection) and propagated as a
// cluster abort, so an EOF on a peer connection is always treated as the
// dialer having finished.

// peerConn returns the write connection to addr, dialing it on first use.
// The dial retries with jittered backoff inside the flushTimeout budget: a
// peer that attached to the hub has already bound its listener, so a
// refused connection here is a transient (SYN backlog pressure when the
// whole mesh comes up at once) far more often than a death.
func (cl *Client) peerConn(addr string) (*wconn, error) {
	cl.pcMu.Lock()
	defer cl.pcMu.Unlock()
	if w, ok := cl.pconns[addr]; ok {
		return w, nil
	}
	network, address := splitNetAddr(addr)
	deadline := time.Now().Add(flushTimeout)
	bo := newBackoff()
	var c net.Conn
	var err error
	for {
		c, err = net.DialTimeout(network, address, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) || cl.closing.Load() || cl.aborted.Load() {
			return nil, err
		}
		bo.sleep()
	}
	setNoDelay(c)
	// The shm peer upgrade: a unix-socket peer is by definition on this
	// host, so a client on the shm plane creates a ring it will produce
	// into and offers it in the hello. The ack byte is read straight off
	// the conn — the dialing side of a peer connection never reads frames,
	// so no buffered reader may over-read into the doorbell stream.
	var cw wire = c
	var ring *shmRing
	shmPath := ""
	if cl.shmPlane && network == "unix" {
		if r, rerr := createShmRing(cl.fp, shmDefaultSlots); rerr == nil {
			ring, shmPath = r, r.path
		}
	}
	if err := writePeerHello(c, cl.fp, shmPath); err != nil {
		if ring != nil {
			ring.remove()
			ring.unmap()
		}
		c.Close()
		return nil, err
	}
	if ring != nil {
		var ack [1]byte
		if _, err := io.ReadFull(c, ack[:]); err != nil {
			ring.remove()
			ring.unmap()
			c.Close()
			return nil, err
		}
		ring.remove()
		if ack[0] == peerShmAck {
			cw = newShmConn(c, nil, ring)
		} else {
			ring.unmap()
		}
	}
	w := newWConn(cw, func(err error) {
		if cl.closing.Load() || cl.aborted.Load() || cl.containsPeerFailure(addr) {
			return
		}
		cl.failf("nettransport: peer %s: %v", addr, err)
	}, &cl.rec)
	cl.pconns[addr] = w
	return w, nil
}

// acceptLoop admits inbound peer connections until the listener closes.
func (cl *Client) acceptLoop() {
	defer cl.readerWG.Done()
	for {
		c, err := cl.ln.Accept()
		if err != nil {
			return // listener closed
		}
		cl.inMu.Lock()
		cl.inbound = append(cl.inbound, c)
		cl.inMu.Unlock()
		// Close snapshots inbound before closing the conns in it: a conn
		// appended after the snapshot would never be closed and its reader
		// could block until the remote side exits. Re-checking closing after
		// the append covers that window (Close sets closing first).
		if cl.closing.Load() {
			c.Close()
			continue
		}
		cl.readerWG.Add(1)
		go cl.servePeer(c)
	}
}

// servePeer validates one inbound peer preamble and delivers its frames to
// local mailboxes until the dialer closes.
func (cl *Client) servePeer(c net.Conn) {
	defer cl.readerWG.Done()
	setNoDelay(c)
	br := bufio.NewReaderSize(c, readBufSize)
	shmPath, err := readPeerHello(br, cl.fp)
	if err != nil {
		c.Close()
		return
	}
	closer := io.Closer(c)
	if shmPath != "" {
		// The dialer offered a ring; ack whether it mapped. The dialer sends
		// no frames until the ack arrives, so the socket br cannot have
		// buffered past the hello, and after a positive ack the frame stream
		// continues from the ring instead.
		ring, rerr := openShmRing(shmPath)
		ack := byte(peerShmNak)
		if rerr == nil {
			ack = peerShmAck
		}
		if _, werr := c.Write([]byte{ack}); werr != nil {
			if ring != nil {
				ring.unmap()
			}
			c.Close()
			return
		}
		if rerr == nil {
			sc := newShmConn(c, ring, nil)
			closer = sc
			br = bufio.NewReaderSize(sc, shmReadBufSize)
		}
	}
	defer closer.Close()
	for {
		n, dst, key, err := readFrameHeader(br)
		if err != nil {
			if err != io.EOF && !cl.closing.Load() && !cl.aborted.Load() && !cl.hasPeerDownHandler() {
				// A peer dying mid-write leaves a truncated frame here; with a
				// failure handler registered that is containable noise (the
				// control plane reports the death), without one it is fatal.
				cl.failf("nettransport: reading from peer: %v", err)
			}
			return
		}
		// Data frames stream-decode straight off the socket; aborts and
		// batches are slurped and dispatched in memory.
		if cl.localSet[arch.ProcID(dst)] {
			if err := cl.deliverStream(br, arch.ProcID(dst), key, n-frameHeader); err != nil {
				if !cl.closing.Load() && !cl.aborted.Load() && !cl.hasPeerDownHandler() {
					cl.failf("nettransport: reading from peer: %v", err)
				}
				return
			}
			continue
		}
		fb, payload, err := readFrameRest(br, n, dst, key)
		if err != nil {
			if !cl.closing.Load() && !cl.aborted.Load() && !cl.hasPeerDownHandler() {
				cl.failf("nettransport: reading from peer: %v", err)
			}
			return
		}
		if dst == batchDst {
			err = forEachBatched(payload, cl.peerFrame)
		} else {
			err = cl.peerFrame(dst, key, payload)
		}
		putBuf(fb)
		if err == errStopRead {
			return
		}
		if err != nil {
			// Corrupt batch framing: same treatment as a truncated frame.
			if !cl.closing.Load() && !cl.aborted.Load() && !cl.hasPeerDownHandler() {
				cl.failf("nettransport: reading from peer: %v", err)
			}
			return
		}
	}
}

// peerFrame dispatches one data-plane frame — read directly off the wire or
// unpacked from a batch.
func (cl *Client) peerFrame(dst uint32, key transport.Key, payload []byte) error {
	if dst == abortDst {
		cl.Abort()
		return errStopRead
	}
	if !cl.deliver(arch.ProcID(dst), key, payload) {
		return errStopRead
	}
	return nil
}
