package nettransport

import (
	"bufio"
	"io"
	"net"
	"time"

	"skipper/internal/arch"
)

// Peer mesh: the data plane between node processes. Every client binds a
// data listener at Dial time and reports it in the handshake; once all
// processors are attached the hub broadcasts the address map and each
// client lazily dials the peers its schedule sends to. Peer connections
// are unidirectional — the dialer writes, the acceptor reads — so two
// nodes exchanging traffic in both directions hold two sockets. Liveness
// is a control-plane concern: a node death is detected by the hub (EOF
// without a detach frame on the control connection) and propagated as a
// cluster abort, so an EOF on a peer connection is always treated as the
// dialer having finished.

// peerConn returns the write connection to addr, dialing it on first use.
// The dial retries with jittered backoff inside the flushTimeout budget: a
// peer that attached to the hub has already bound its listener, so a
// refused connection here is a transient (SYN backlog pressure when the
// whole mesh comes up at once) far more often than a death.
func (cl *Client) peerConn(addr string) (*wconn, error) {
	cl.pcMu.Lock()
	defer cl.pcMu.Unlock()
	if w, ok := cl.pconns[addr]; ok {
		return w, nil
	}
	deadline := time.Now().Add(flushTimeout)
	bo := newBackoff()
	var c net.Conn
	var err error
	for {
		c, err = net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) || cl.closing.Load() || cl.aborted.Load() {
			return nil, err
		}
		bo.sleep()
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if err := writePeerHello(c, cl.fp); err != nil {
		c.Close()
		return nil, err
	}
	w := newWConn(c, func(err error) {
		if cl.closing.Load() || cl.aborted.Load() || cl.containsPeerFailure(addr) {
			return
		}
		cl.failf("nettransport: peer %s: %v", addr, err)
	})
	cl.pconns[addr] = w
	return w, nil
}

// acceptLoop admits inbound peer connections until the listener closes.
func (cl *Client) acceptLoop() {
	defer cl.readerWG.Done()
	for {
		c, err := cl.ln.Accept()
		if err != nil {
			return // listener closed
		}
		cl.inMu.Lock()
		cl.inbound = append(cl.inbound, c)
		cl.inMu.Unlock()
		// Close snapshots inbound before closing the conns in it: a conn
		// appended after the snapshot would never be closed and its reader
		// could block until the remote side exits. Re-checking closing after
		// the append covers that window (Close sets closing first).
		if cl.closing.Load() {
			c.Close()
			continue
		}
		cl.readerWG.Add(1)
		go cl.servePeer(c)
	}
}

// servePeer validates one inbound peer preamble and delivers its frames to
// local mailboxes until the dialer closes.
func (cl *Client) servePeer(c net.Conn) {
	defer cl.readerWG.Done()
	defer c.Close()
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	br := bufio.NewReaderSize(c, 8<<10)
	if err := readPeerHello(br, cl.fp); err != nil {
		return
	}
	for {
		fb, dst, key, payload, err := readFrame(br)
		if err != nil {
			if err != io.EOF && !cl.closing.Load() && !cl.aborted.Load() && !cl.hasPeerDownHandler() {
				// A peer dying mid-write leaves a truncated frame here; with a
				// failure handler registered that is containable noise (the
				// control plane reports the death), without one it is fatal.
				cl.failf("nettransport: reading from peer: %v", err)
			}
			return
		}
		if dst == abortDst {
			putBuf(fb)
			cl.Abort()
			return
		}
		ok := cl.deliver(arch.ProcID(dst), key, payload)
		putBuf(fb)
		if !ok {
			return
		}
	}
}
