package nettransport

import (
	"net"
	"path/filepath"
	"strings"
	"testing"
)

// Regression for the sun_path overflow: a deep $TMPDIR (nested CI
// workspaces, per-test MkdirTemp trees) used to produce socket paths longer
// than the kernel's sun_path, which bind either rejects or — worse —
// silently truncates. Every path the package mints must fit the budget and
// actually bind, no matter how hostile the environment's temp dir is.
func TestShortSockPathFitsSunPath(t *testing.T) {
	deep := t.TempDir()
	for len(deep) < 300 {
		deep = filepath.Join(deep, "deeply-nested-ci-workspace-component")
	}
	t.Setenv("TMPDIR", deep)

	seen := map[string]bool{}
	for _, tag := range []string{
		"skipper-peer",
		// A tag long enough to overflow even the short temp dir forces the
		// hashed-basename fallback.
		"skipper-" + strings.Repeat("x", 2*sunPathMax),
	} {
		for i := 0; i < 3; i++ {
			p := ShortSockPath(tag)
			if len(p) > sunPathMax {
				t.Fatalf("ShortSockPath(%.20q…) = %q: %d bytes, over the %d-byte sun_path budget",
					tag, p, len(p), sunPathMax)
			}
			if seen[p] {
				t.Fatalf("ShortSockPath(%.20q…) repeated %q", tag, p)
			}
			seen[p] = true
			ln, err := net.Listen("unix", p)
			if err != nil {
				t.Fatalf("ShortSockPath(%.20q…) = %q does not bind: %v", tag, p, err)
			}
			ln.Close()
		}
	}
}

// The shm segment names travel through the same fixed-size handshake fields
// as socket paths, so they share the sun_path budget — including when the
// platform has no /dev/shm and the segment falls back to the temp dir.
func TestShmRingPathFitsHandshake(t *testing.T) {
	deep := t.TempDir()
	for len(deep) < 300 {
		deep = filepath.Join(deep, "deeply-nested-ci-workspace-component")
	}
	t.Setenv("TMPDIR", deep)
	for i := 0; i < 3; i++ {
		p := shmRingPath(0xdeadbeefcafef00d)
		if len(p) > sunPathMax {
			t.Fatalf("shmRingPath = %q: %d bytes, over the %d-byte budget", p, len(p), sunPathMax)
		}
	}
}
