package nettransport

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"skipper/internal/arch"
	"skipper/internal/exec/transport"
	"skipper/internal/graph"
)

// TestShmRingSlotExhaustion fills the ring to the last slot and drains it,
// repeatedly, crossing the wrap boundary many times over: tryWrite must
// report a full ring with 0 (never overwrite unconsumed slots), and every
// drained byte must come back in order. The payload is larger than the slab,
// so the producer sees exhaustion on every lap.
func TestShmRingSlotExhaustion(t *testing.T) {
	const slots = 64 // 4KB slab: exhaustion every few records
	ring, err := createShmRing(42, slots)
	if err != nil {
		t.Fatal(err)
	}
	defer ring.unmap()
	defer ring.remove()

	src := make([]byte, 64*1024)
	for i := range src {
		src[i] = byte(i*7 + i>>8)
	}
	var got bytes.Buffer
	rbuf := make([]byte, 777) // odd size: reads straddle records
	w := src
	sawFull := false
	for got.Len() < len(src) {
		for len(w) > 0 {
			n := ring.tryWrite(w)
			if n == 0 {
				sawFull = true
				if free := ring.free(); free != 0 {
					t.Fatalf("tryWrite returned 0 with %d free slots", free)
				}
				break
			}
			w = w[n:]
		}
		if !ring.readable() {
			t.Fatal("ring neither writable nor readable: cursors corrupted")
		}
		for ring.readable() {
			n := ring.tryRead(rbuf)
			if n == 0 {
				break
			}
			got.Write(rbuf[:n])
		}
	}
	if !sawFull {
		t.Fatal("payload larger than the slab never filled the ring")
	}
	if !bytes.Equal(got.Bytes(), src) {
		t.Fatal("bytes drained from the exhausted ring differ from the bytes written")
	}
}

// TestShmConnBlockedProducerPreservesStream pushes a stream many times the
// slab size through an shmConn pair: the producer must block on the full
// ring (never drop or corrupt) and the consumer must read back the exact
// byte stream. Closing the producer after the last write must let the
// consumer drain the tail and then see EOF — the socket-close semantics the
// frame reader depends on.
func TestShmConnBlockedProducerPreservesStream(t *testing.T) {
	ring, err := createShmRing(43, shmDefaultSlots)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := openShmRing(ring.path)
	if err != nil {
		t.Fatal(err)
	}
	ring.remove()
	sa, sb := net.Pipe()
	prod := newShmConn(sa, nil, ring)
	cons := newShmConn(sb, opened, nil)
	defer prod.Close()
	defer cons.Close()

	src := make([]byte, 16*shmDefaultSlots*shmSlotSize) // 16 slabs
	for i := range src {
		src[i] = byte(i ^ i>>9)
	}
	go func() {
		for off := 0; off < len(src); off += 4096 {
			end := off + 4096
			if end > len(src) {
				end = len(src)
			}
			if _, werr := prod.Write(src[off:end]); werr != nil {
				return
			}
		}
		prod.Close()
	}()

	var got bytes.Buffer
	buf := make([]byte, 1500)
	for {
		n, rerr := cons.Read(buf)
		got.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	if got.Len() != len(src) {
		t.Fatalf("consumer drained %d bytes, want %d", got.Len(), len(src))
	}
	if !bytes.Equal(got.Bytes(), src) {
		t.Fatal("stream through the blocking ring is corrupted")
	}
}

// TestShmPeerFIFOUnderControlTraffic is the shm cut of the batching
// integration test: several goroutines blast small frames peer-to-peer over
// the shm data plane (where the writer drains its queue without batch
// wrapping — noBatch) while heartbeats tick on the control plane and a
// third node is severed mid-stream. Per-sender FIFO must hold across the
// unwrapped bursts, every frame must arrive, and the survivor must see the
// contained death.
func TestShmPeerFIFOUnderControlTraffic(t *testing.T) {
	const hb = 10 * time.Millisecond
	a := arch.Ring(4)
	hub, err := NewHub(unixScheme+ShortSockPath("skipper-shmfifo"), a, 7,
		[]arch.ProcID{0}, WithHeartbeat(hb))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	hub.OnPeerDown(func([]arch.ProcID) {}) // contain, not abort

	dialOpts := []Option{WithHeartbeat(hb), WithDataPlane("shm")}
	c1, err := Dial(hub.Addr(), 7, []arch.ProcID{1}, time.Second, dialOpts...)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(hub.Addr(), 7, []arch.ProcID{2}, time.Second, dialOpts...)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	downCh := make(chan []arch.ProcID, 1)
	c2.OnPeerDown(func(procs []arch.ProcID) {
		select {
		case downCh <- procs:
		default:
		}
	})
	victim, err := Dial(hub.Addr(), 7, []arch.ProcID{3}, time.Second, dialOpts...)
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	if err := hub.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	const senders, perSender = 4, 64
	key := transport.EdgeKey(graph.EdgeID(9))
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				c1.Send(1, 2, key, s*1_000_000+i)
				if s == 0 && i == perSender/2 {
					victim.Sever() // mid-stream death between bursts
				}
			}
		}(s)
	}

	next := make([]int, senders)
	rx := c2.Receiver(2, key)
	for n := 0; n < senders*perSender; n++ {
		v, ok := rx.Recv()
		if !ok {
			t.Fatalf("receiver aborted after %d/%d frames: %v", n, senders*perSender, c2.Err())
		}
		s, i := v.(int)/1_000_000, v.(int)%1_000_000
		if i != next[s] {
			t.Fatalf("sender %d frame %d arrived out of order (want %d); shm plane broke FIFO", s, i, next[s])
		}
		next[s]++
	}
	wg.Wait()

	// The frames must actually have traveled a ring, not a silent unix
	// fallback: the sender's peer connection writer must be in noBatch mode,
	// which newWConn sets only for an shmConn.
	c1.pcMu.Lock()
	sawShm := false
	for _, w := range c1.pconns {
		if w.noBatch {
			sawShm = true
		}
	}
	c1.pcMu.Unlock()
	if !sawShm {
		t.Fatal("no peer connection upgraded to shm; the FIFO ran over the wrong plane")
	}

	select {
	case procs := <-downCh:
		if fmt.Sprint(procs) != "[3]" {
			t.Fatalf("survivor notified of %v, want [3]", procs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("survivor never saw the peer-down broadcast")
	}
	if err := hub.Err(); err != nil {
		t.Fatalf("contained death must not fail the hub: %v", err)
	}
}
