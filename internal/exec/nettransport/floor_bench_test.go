package nettransport

import (
	"io"
	"net"
	"path/filepath"
	"testing"
)

// Platform floor benchmarks: a bare two-goroutine ping-pong over a raw
// socket, no framing, no codec, no mailboxes. These put the transport's
// farm round-trip figures in context — on a single-CPU runner the 32KiB
// floor alone can exceed an idealized multi-core budget, because every
// write/read pays its kernel copy serially on the one core. The delta
// between Transport_*_FarmRoundTrip and the matching floor is the price of
// the executive's framing, codec and mailbox indirection.

func benchSocketFloor(b *testing.B, network string, size int) {
	addr := "127.0.0.1:0"
	if network == "unix" {
		addr = filepath.Join(b.TempDir(), "floor.sock")
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		setNoDelay(c)
		buf := make([]byte, size)
		for {
			if _, err := io.ReadFull(c, buf); err != nil {
				return
			}
			if _, err := c.Write(buf); err != nil {
				return
			}
		}
	}()
	c, err := net.Dial(network, ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	setNoDelay(c)
	buf := make([]byte, size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Write(buf); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(c, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	c.Close()
	<-done
}

func BenchmarkSocketFloor(b *testing.B) {
	for _, bc := range []struct {
		name    string
		network string
		size    int
	}{
		{"unix/64B", "unix", 64},
		{"unix/32KiB", "unix", 32 << 10},
		{"tcp/64B", "tcp", 64},
		{"tcp/32KiB", "tcp", 32 << 10},
	} {
		b.Run(bc.name, func(b *testing.B) { benchSocketFloor(b, bc.network, bc.size) })
	}
}
