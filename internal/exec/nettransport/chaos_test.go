package nettransport_test

import (
	"sync"
	"testing"
	"time"

	"skipper/internal/arch"
	"skipper/internal/exec"
	"skipper/internal/exec/faulttransport"
	"skipper/internal/exec/nettransport"
	"skipper/internal/exec/transport"
	"skipper/internal/graph"
	"skipper/internal/syndex"
)

// workerOnly reports whether processor p's program is non-empty and all
// farm-worker ops — the kind of processor fault tolerance can lose.
func workerOnly(s *syndex.Schedule, p arch.ProcID) bool {
	prog := s.Programs[p]
	if len(prog) == 0 {
		return false
	}
	for _, op := range prog {
		if op.Kind != syndex.OpWorker {
			return false
		}
	}
	return true
}

// TestTCPFarmSurvivesWorkerKill is the TCP acceptance run for fault
// tolerance: one node process of a ring(8) farm deployment dies mid-run
// (its client severed after its first reply, the in-process equivalent of
// kill -9) and the coordinator must finish every iteration bit-identical
// to a healthy run, with the loss visible in the run result.
func TestTCPFarmSurvivesWorkerKill(t *testing.T) {
	a := arch.Ring(8)
	s := compile(t, farmSrc, baseRegistry(), a)
	victim := arch.ProcID(-1)
	for p := 1; p < a.N; p++ {
		if workerOnly(s, arch.ProcID(p)) {
			victim = arch.ProcID(p)
			break
		}
	}
	if victim < 0 {
		t.Fatal("schedule maps no worker-only processor onto a node")
	}

	const fp = 0xfa17
	hub, err := nettransport.NewHub("127.0.0.1:0", a, fp, []arch.ProcID{0})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	var wg sync.WaitGroup
	for p := 1; p < a.N; p++ {
		wg.Add(1)
		go func(p arch.ProcID) {
			defer wg.Done()
			reg := baseRegistry()
			ns := compile(t, farmSrc, reg, a)
			cl, err := nettransport.Dial(hub.Addr(), fp, []arch.ProcID{p}, 5*time.Second)
			if err != nil {
				hub.Abort()
				return
			}
			m := exec.NewMachineOn(ns, reg, cl, []arch.ProcID{p})
			if p == victim {
				// The victim answers one task, then its whole client is severed
				// delivering the second — socket torn, no detach — so the hub
				// must detect the death on the control plane by itself.
				ft := faulttransport.New(cl, faulttransport.Config{
					Faults: map[arch.ProcID]faulttransport.Fault{p: {KillAfterSends: 1}},
					OnKill: func(arch.ProcID) { cl.Sever() },
				})
				m = exec.NewMachineOn(ns, reg, ft, []arch.ProcID{p})
			}
			m.FT = exec.FaultTolerance{MaxRetries: 2}
			// The victim's run errors when its mailboxes are killed; survivors
			// must finish clean. Either way the coordinator is the arbiter.
			if _, err := m.RunWithTimeout(3, 20*time.Second); err != nil && p != victim {
				t.Errorf("surviving node %d: %v", p, err)
			}
			if p != victim {
				cl.Close()
			}
		}(arch.ProcID(p))
	}

	m := exec.NewMachineOn(s, baseRegistry(), hub, []arch.ProcID{0})
	m.FT = exec.FaultTolerance{MaxRetries: 2}
	res, err := m.RunWithTimeout(3, 20*time.Second)
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator did not survive the node kill: %v", err)
	}
	for i, out := range res.Outputs {
		if out != farmWant {
			t.Fatalf("iteration %d output = %v, want %d (must match a healthy run)", i, out, farmWant)
		}
	}
	if res.Failures < 1 || res.Redispatches < 1 {
		t.Fatalf("Failures = %d, Redispatches = %d, want both >= 1", res.Failures, res.Redispatches)
	}
}

// TestFarmSpeculationOverSockets is the speculation acceptance run over
// real sockets, on both the unix and shm data planes: one node of a
// ring(8) farm is scripted 10x slower than the straggler threshold, so
// each iteration the coordinator must duplicate its task onto an idle
// node and fold the duplicate's reply — while the straggler's late reply
// (same generation in iteration 1, stale generation once iteration 2 has
// begun) crosses the wire mid-race and must be discarded without a double
// fold. The slow node is never declared dead: it finishes its run clean.
func TestFarmSpeculationOverSockets(t *testing.T) {
	for _, plane := range []string{"unix", "shm"} {
		t.Run(plane, func(t *testing.T) {
			a := arch.Ring(8)
			s := compile(t, farmSrc, baseRegistry(), a)
			victim := arch.ProcID(-1)
			for p := 1; p < a.N; p++ {
				if workerOnly(s, arch.ProcID(p)) {
					victim = arch.ProcID(p)
					break
				}
			}
			if victim < 0 {
				t.Fatal("schedule maps no worker-only processor onto a node")
			}

			const fp = 0x59ec
			hub, err := nettransport.NewHub("unix:"+nettransport.ShortSockPath("skipper-spec"),
				a, fp, []arch.ProcID{0})
			if err != nil {
				t.Fatal(err)
			}
			defer hub.Close()

			var wg sync.WaitGroup
			for p := 1; p < a.N; p++ {
				wg.Add(1)
				go func(p arch.ProcID) {
					defer wg.Done()
					reg := baseRegistry()
					ns := compile(t, farmSrc, reg, a)
					cl, err := nettransport.Dial(hub.Addr(), fp, []arch.ProcID{p},
						5*time.Second, nettransport.WithDataPlane(plane))
					if err != nil {
						hub.Abort()
						return
					}
					defer cl.Close()
					var tr transport.Transport = cl
					if p == victim {
						// The straggler: every reply it sends is delayed 600ms on
						// its own goroutine — slow compute as the cluster sees it.
						tr = faulttransport.New(cl, faulttransport.Config{
							Faults: map[arch.ProcID]faulttransport.Fault{
								p: {SlowEveryNth: 1, SlowFor: 600 * time.Millisecond},
							},
						})
					}
					m := exec.NewMachineOn(ns, reg, tr, []arch.ProcID{p})
					m.FT = exec.FaultTolerance{MaxRetries: 2, SpeculateAfter: 60 * time.Millisecond}
					// Nobody dies in this scenario: every node, the straggler
					// included, must finish its run clean.
					if _, err := m.RunWithTimeout(2, 30*time.Second); err != nil {
						t.Errorf("node %d: %v", p, err)
					}
				}(arch.ProcID(p))
			}

			m := exec.NewMachineOn(s, baseRegistry(), hub, []arch.ProcID{0})
			m.FT = exec.FaultTolerance{MaxRetries: 2, SpeculateAfter: 60 * time.Millisecond}
			res, err := m.RunWithTimeout(2, 30*time.Second)
			wg.Wait()
			if err != nil {
				t.Fatalf("coordinator failed: %v", err)
			}
			for i, out := range res.Outputs {
				if out != farmWant {
					t.Fatalf("iteration %d output = %v, want %d (must be bit-identical to a healthy run)", i, out, farmWant)
				}
			}
			if res.Speculations < 1 || res.SpeculationWins < 1 {
				t.Fatalf("Speculations = %d, SpeculationWins = %d, want both >= 1", res.Speculations, res.SpeculationWins)
			}
			if res.Failures != 0 || res.Redispatches != 0 {
				t.Fatalf("Failures = %d, Redispatches = %d, want 0 and 0 (the straggler must keep its good standing)",
					res.Failures, res.Redispatches)
			}
		})
	}
}

// TestHeartbeatDetectsSilentNode: a node that hangs without closing its
// socket produces no EOF, so only the heartbeat monitor can declare it
// dead. A non-heartbeating idle client stands in for the hang; the
// heartbeating one must survive the same monitor.
func TestHeartbeatDetectsSilentNode(t *testing.T) {
	a := arch.Ring(3)
	const hb = 25 * time.Millisecond
	hub, err := nettransport.NewHub("127.0.0.1:0", a, 7, []arch.ProcID{0}, nettransport.WithHeartbeat(hb))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	downCh := make(chan []arch.ProcID, 4)
	hub.OnPeerDown(func(ps []arch.ProcID) { downCh <- ps })

	alive, err := nettransport.Dial(hub.Addr(), 7, []arch.ProcID{1}, time.Second, nettransport.WithHeartbeat(hb))
	if err != nil {
		t.Fatal(err)
	}
	defer alive.Close()
	silent, err := nettransport.Dial(hub.Addr(), 7, []arch.ProcID{2}, time.Second) // no heartbeat: plays dead
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	if err := hub.WaitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	select {
	case ps := <-downCh:
		if len(ps) != 1 || ps[0] != 2 {
			t.Fatalf("peer-down = %v, want [2]", ps)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("monitor never condemned the silent node")
	}
	// The heartbeating client must not be condemned alongside it.
	select {
	case ps := <-downCh:
		t.Fatalf("monitor condemned a heartbeating node: %v", ps)
	case <-time.After(6 * hb):
	}
	if err := hub.Err(); err != nil {
		t.Fatalf("contained death still failed the hub: %v", err)
	}
}

// TestWaitReadyFailsFast pins the satellite fix: a cluster failure during
// attach must surface through WaitReady immediately, not after the caller
// burns the whole attach timeout.
func TestWaitReadyFailsFast(t *testing.T) {
	a := arch.Ring(3)
	hub, err := nettransport.NewHub("127.0.0.1:0", a, 7, []arch.ProcID{0})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	cl, err := nettransport.Dial(hub.Addr(), 7, []arch.ProcID{1}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Processor 2 never attaches; node 1 dies. Without a peer-down handler
	// that is a cluster failure, and WaitReady must report it well before
	// its 30s budget.
	go func() {
		time.Sleep(50 * time.Millisecond)
		cl.Sever()
	}()
	start := time.Now()
	err = hub.WaitReady(30 * time.Second)
	if err == nil {
		t.Fatal("WaitReady succeeded with a processor missing")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("WaitReady took %v to report a failure recorded immediately", el)
	}
}

// TestCoordinatorDeathAbortsClient: fault tolerance only spares worker
// processors — the coordinator process itself is irreplaceable, and its
// death must still unblock attached nodes promptly even when they have a
// peer-down handler registered.
func TestCoordinatorDeathAbortsClient(t *testing.T) {
	a := arch.Ring(2)
	hub, err := nettransport.NewHub("127.0.0.1:0", a, 7, []arch.ProcID{0})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := nettransport.Dial(hub.Addr(), 7, []arch.ProcID{1}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.OnPeerDown(func([]arch.ProcID) {})
	if err := hub.WaitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	done := make(chan bool, 1)
	go func() {
		_, ok := cl.Recv(1, transport.EdgeKey(graph.EdgeID(1)))
		done <- ok
	}()
	hub.Sever() // coordinator crash: abrupt socket close, no abort frame
	select {
	case ok := <-done:
		if ok {
			t.Fatal("recv returned a value after the coordinator died")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client did not unblock within 5s of coordinator death")
	}
}
