package nettransport

import (
	"bufio"
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"skipper/internal/arch"
	"skipper/internal/exec/transport"
	"skipper/internal/graph"
	"skipper/internal/value"
	"skipper/internal/vision"
)

// TestPeerDeathAbortsCluster checks the control-plane death detector: over
// the mesh the hub never sees data traffic stop, so a control connection
// hitting EOF without a detach frame must abort the whole cluster.
func TestPeerDeathAbortsCluster(t *testing.T) {
	a := arch.Ring(3)
	hub, err := NewHub("127.0.0.1:0", a, 7, []arch.ProcID{0})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	c1, err := Dial(hub.Addr(), 7, []arch.ProcID{1}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	// A hand-rolled node claims processor 2: handshake only, then it "dies"
	// (closes the control connection without detaching).
	c, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := writeHello(c, hello{fingerprint: 7, procs: []arch.ProcID{2}, dataAddr: "127.0.0.1:9"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readHelloReply(bufio.NewReader(c)); err != nil {
		t.Fatal(err)
	}
	if err := hub.WaitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	recvDone := make(chan bool, 1)
	go func() {
		_, ok := c1.Recv(1, transport.EdgeKey(graph.EdgeID(1)))
		recvDone <- ok
	}()
	c.Close()
	select {
	case ok := <-recvDone:
		if ok {
			t.Fatal("recv delivered a value after node death")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("node death did not abort the cluster within 5s")
	}
	if err := hub.Err(); err == nil || !strings.Contains(err.Error(), "died") {
		t.Fatalf("hub error = %v, want a node-death report", err)
	}
}

// TestAbortSurvivesDeadControlConnection pins the abort re-entrancy guard:
// Abort's best-effort abort frame is sent on the control connection, which
// in real aborts is often already dead, so the inline write fails on the
// aborting goroutine itself. The wconn's onErr must not re-enter Abort
// (sync.Once.Do would self-deadlock and the mailboxes would never unblock).
func TestAbortSurvivesDeadControlConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := net.Pipe()
	cl := newClient(7, []arch.ProcID{1}, c1, bufio.NewReader(c1), ln, 0, buildOptions(nil))
	c2.Close() // control writes now fail synchronously on the caller's goroutine
	done := make(chan struct{})
	go func() {
		cl.Abort()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Abort deadlocked when the abort-frame send failed inline")
	}
	if _, ok := cl.Recv(1, transport.EdgeKey(graph.EdgeID(1))); ok {
		t.Fatal("mailbox delivered a value after abort")
	}
	cl.Close()
}

// TestEnqueueNeverBlocksOnSocket pins the enqueue-only wconn path the hub
// uses to flush the attach backlog under its registration lock: unlike
// send's inline fast path, enqueue must return without touching the socket
// (net.Pipe writes block until the other end reads, so an inline write here
// would hang).
func TestEnqueueNeverBlocksOnSocket(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	w := newWConn(c1, nil, nil)
	done := make(chan struct{})
	go func() {
		w.enqueue(controlFrame(abortDst, nil))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("enqueue blocked on the socket")
	}
	fb, dst, _, _, err := readFrame(bufio.NewReader(c2))
	if err != nil {
		t.Fatal(err)
	}
	putBuf(fb)
	if dst != abortDst {
		t.Fatalf("dst = %#x, want abortDst", dst)
	}
	w.flushClose()
}

// TestSendFailsWithoutPeersMap checks that a remote Send does not hang
// forever when the peers map never arrives (a node process that never
// starts): past the mesh-wait timeout the client must abort with a
// diagnostic.
func TestSendFailsWithoutPeersMap(t *testing.T) {
	a := arch.Ring(3)
	hub, err := NewHub("127.0.0.1:0", a, 7, []arch.ProcID{0})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	c1, err := Dial(hub.Addr(), 7, []arch.ProcID{1}, time.Second,
		WithMeshWaitTimeout(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	// Processor 2 never attaches, so the hub never broadcasts the map; even
	// a Send to the hub-hosted processor 0 waits on it (FIFO across the
	// mesh cutover) and must time out rather than hang silently.
	done := make(chan struct{})
	go func() {
		c1.Send(1, 0, transport.EdgeKey(graph.EdgeID(1)), "stuck")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Send hung waiting for a peers map that never comes")
	}
	if err := c1.Err(); err == nil || !strings.Contains(err.Error(), "peers map") {
		t.Fatalf("client error = %v, want a peers-map timeout diagnostic", err)
	}
}

// TestFrameRoundTripWithRawTail pins the vectored-write wire format: a frame
// whose payload takes the raw-slab fast path (head + borrowed pixel tail)
// must read back identical to one written contiguously.
func TestFrameRoundTripWithRawTail(t *testing.T) {
	im := vision.GetImage(64, 8)
	for i := range im.Pix {
		im.Pix[i] = byte(i)
	}
	key := transport.TaskKey(2, 5)
	f, err := encodeMessage(3, key, transport.Task{Idx: 9, V: im})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.tail) == 0 {
		t.Fatal("image payload did not take the raw-slab fast path")
	}
	wire := append(append([]byte(nil), f.head.b...), f.tail...)
	putBuf(f.head)

	fb, dst, gotKey, payload, err := readFrame(bufio.NewReader(bytes.NewReader(wire)))
	if err != nil {
		t.Fatal(err)
	}
	defer putBuf(fb)
	if dst != 3 || gotKey != key {
		t.Fatalf("routing header dst=%d key=%+v, want dst=3 key=%+v", dst, gotKey, key)
	}
	v, err := value.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	tk, ok := v.(transport.Task)
	if !ok {
		t.Fatalf("decoded %T, want transport.Task", v)
	}
	got, ok := tk.V.(*vision.Image)
	if !ok || tk.Idx != 9 {
		t.Fatalf("decoded task %+v, want Idx=9 carrying *vision.Image", tk)
	}
	if got.W != im.W || got.H != im.H || !bytes.Equal(got.Pix, im.Pix) {
		t.Fatalf("decoded image %dx%d differs from original %dx%d", got.W, got.H, im.W, im.H)
	}
}

// TestEncodeMessageZeroAllocs guards the allocation-free hot path: with a
// warm arena and the presized codec, flattening a task that carries a full
// image must not touch the heap at all.
func TestEncodeMessageZeroAllocs(t *testing.T) {
	im := vision.GetImage(512, 64)
	defer vision.PutImage(im)
	var v value.Value = transport.Task{Idx: 3, V: im} // boxed once, outside the loop
	key := transport.TaskKey(0, 0)
	f, err := encodeMessage(2, key, v) // warm the arena
	if err != nil {
		t.Fatal(err)
	}
	putBuf(f.head)
	allocs := testing.AllocsPerRun(200, func() {
		f, err := encodeMessage(2, key, v)
		if err != nil {
			t.Fatal(err)
		}
		putBuf(f.head)
	})
	if allocs != 0 {
		t.Fatalf("encodeMessage allocates %.1f times per op, want 0", allocs)
	}
}
