package nettransport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"skipper/internal/arch"
)

// hello is the client side of the control-connection handshake: it
// identifies the schedule the process was compiled against (fingerprint),
// the processors the process hosts, and the address of the process's peer
// data listener, which the hub folds into the cluster address map once
// every processor is attached. The hub rejects mismatched fingerprints —
// two processes running different deployments of "the same" program would
// otherwise exchange frames that decode into the wrong graph edges.
type hello struct {
	fingerprint uint64
	procs       []arch.ProcID
	dataAddr    string
	// shmToHub/shmFromHub request the shared-memory upgrade of this control
	// connection (DESIGN.md §14): the client creates both ring segments
	// before saying hello — shmToHub is the ring it will produce into,
	// shmFromHub the one it will consume — and the hub's reply says whether
	// it mapped them. Empty paths mean no upgrade requested.
	shmToHub   string
	shmFromHub string
}

// appendString appends a u16-length-prefixed string to buf.
func appendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// readString reads a u16-length-prefixed string.
func readString(br *bufio.Reader) (string, error) {
	var lb [2]byte
	if _, err := io.ReadFull(br, lb[:]); err != nil {
		return "", err
	}
	b := make([]byte, binary.BigEndian.Uint16(lb[:]))
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func writeHello(c net.Conn, h hello) error {
	buf := binary.BigEndian.AppendUint32(nil, magic)
	buf = binary.BigEndian.AppendUint16(buf, wireVersion)
	buf = binary.BigEndian.AppendUint64(buf, h.fingerprint)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(h.procs)))
	for _, p := range h.procs {
		buf = binary.BigEndian.AppendUint32(buf, uint32(p))
	}
	if len(h.dataAddr) > 0xffff {
		return fmt.Errorf("nettransport: data address %q too long", h.dataAddr)
	}
	buf = appendString(buf, h.dataAddr)
	if h.shmToHub != "" {
		buf = append(buf, 1)
		buf = appendString(buf, h.shmToHub)
		buf = appendString(buf, h.shmFromHub)
	} else {
		buf = append(buf, 0)
	}
	_, err := c.Write(buf)
	return err
}

func readHello(br *bufio.Reader) (hello, error) {
	var h hello
	var head [16]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return h, fmt.Errorf("nettransport: truncated handshake: %w", err)
	}
	if m := binary.BigEndian.Uint32(head[0:]); m != magic {
		return h, fmt.Errorf("nettransport: bad handshake magic %#x", m)
	}
	if v := binary.BigEndian.Uint16(head[4:]); v != wireVersion {
		return h, fmt.Errorf("nettransport: wire version %d, want %d", v, wireVersion)
	}
	h.fingerprint = binary.BigEndian.Uint64(head[6:])
	count := binary.BigEndian.Uint16(head[14:])
	h.procs = make([]arch.ProcID, count)
	for i := range h.procs {
		var pb [4]byte
		if _, err := io.ReadFull(br, pb[:]); err != nil {
			return h, fmt.Errorf("nettransport: truncated handshake procs: %w", err)
		}
		h.procs[i] = arch.ProcID(binary.BigEndian.Uint32(pb[:]))
	}
	addr, err := readString(br)
	if err != nil {
		return h, fmt.Errorf("nettransport: truncated handshake data address: %w", err)
	}
	h.dataAddr = addr
	flag, err := br.ReadByte()
	if err != nil {
		return h, fmt.Errorf("nettransport: truncated handshake shm flag: %w", err)
	}
	if flag != 0 {
		if h.shmToHub, err = readString(br); err != nil {
			return h, fmt.Errorf("nettransport: truncated handshake shm path: %w", err)
		}
		if h.shmFromHub, err = readString(br); err != nil {
			return h, fmt.Errorf("nettransport: truncated handshake shm path: %w", err)
		}
	}
	return h, nil
}

// writeHelloReply acknowledges (msg == "") or rejects a handshake. The
// accept branch carries the hub's wall clock (UnixNano at reply time) —
// the client brackets the handshake with its own wall-clock reads and
// derives an NTP-style offset onto the hub's clock, which trace merging
// uses to place every process's events on one timeline — plus a byte
// saying whether the hub mapped the hello's shm rings: the client falls
// back to the plain socket when it is 0, so a mapping failure on either
// end degrades instead of wedging the attach.
func writeHelloReply(c net.Conn, msg string, shmOK bool) error {
	if msg == "" {
		buf := append([]byte{0}, make([]byte, 9)...)
		binary.BigEndian.PutUint64(buf[1:], uint64(time.Now().UnixNano()))
		if shmOK {
			buf[9] = 1
		}
		_, err := c.Write(buf)
		return err
	}
	buf := []byte{1}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(msg)))
	buf = append(buf, msg...)
	_, err := c.Write(buf)
	return err
}

// readHelloReply returns the hub's wall clock (UnixNano) and whether the
// shm upgrade was accepted.
func readHelloReply(br *bufio.Reader) (int64, bool, error) {
	status, err := br.ReadByte()
	if err != nil {
		return 0, false, fmt.Errorf("nettransport: no handshake reply: %w", err)
	}
	if status == 0 {
		var tb [9]byte
		if _, err := io.ReadFull(br, tb[:]); err != nil {
			return 0, false, fmt.Errorf("nettransport: truncated handshake reply: %w", err)
		}
		return int64(binary.BigEndian.Uint64(tb[:8])), tb[8] != 0, nil
	}
	var lb [2]byte
	if _, err := io.ReadFull(br, lb[:]); err != nil {
		return 0, false, fmt.Errorf("nettransport: handshake rejected (reason lost: %v)", err)
	}
	msg := make([]byte, binary.BigEndian.Uint16(lb[:]))
	if _, err := io.ReadFull(br, msg); err != nil {
		return 0, false, fmt.Errorf("nettransport: handshake rejected (reason lost: %v)", err)
	}
	return 0, false, fmt.Errorf("nettransport: handshake rejected: %s", msg)
}

// writePeerHello opens a data-plane connection between two nodes. The
// fingerprint was already validated when both ends attached to the hub, so
// the receiving node just drops connections whose preamble does not match.
// shmPath, when non-empty, names a ring segment the dialer created and
// will produce into (peer connections are unidirectional) — the upgrade
// request adds the only reply a peer handshake has: one ack byte saying
// whether the acceptor mapped the ring (peerShmAck) or the connection
// stays on the socket (peerShmNak). Plain hellos still get no reply.
func writePeerHello(c net.Conn, fingerprint uint64, shmPath string) error {
	buf := binary.BigEndian.AppendUint32(nil, magic)
	buf = binary.BigEndian.AppendUint16(buf, wireVersion)
	buf = binary.BigEndian.AppendUint64(buf, fingerprint)
	if shmPath != "" {
		buf = append(buf, 1)
		buf = appendString(buf, shmPath)
	} else {
		buf = append(buf, 0)
	}
	_, err := c.Write(buf)
	return err
}

const (
	peerShmAck = 0 // acceptor mapped the ring; frames move to shm
	peerShmNak = 1 // mapping failed; both ends stay on the socket
)

func readPeerHello(br *bufio.Reader, fingerprint uint64) (shmPath string, err error) {
	var head [15]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return "", fmt.Errorf("nettransport: truncated peer handshake: %w", err)
	}
	if m := binary.BigEndian.Uint32(head[0:]); m != magic {
		return "", fmt.Errorf("nettransport: bad peer handshake magic %#x", m)
	}
	if v := binary.BigEndian.Uint16(head[4:]); v != wireVersion {
		return "", fmt.Errorf("nettransport: peer wire version %d, want %d", v, wireVersion)
	}
	if fp := binary.BigEndian.Uint64(head[6:]); fp != fingerprint {
		return "", fmt.Errorf("nettransport: peer fingerprint %#x, want %#x", fp, fingerprint)
	}
	if head[14] != 0 {
		if shmPath, err = readString(br); err != nil {
			return "", fmt.Errorf("nettransport: truncated peer shm path: %w", err)
		}
	}
	return shmPath, nil
}

// encodeProcs serializes the processor list carried by a peerDownDst
// control frame: {u16 count, u32 processor...}.
func encodeProcs(procs []arch.ProcID) []byte {
	buf := binary.BigEndian.AppendUint16(nil, uint16(len(procs)))
	for _, p := range procs {
		buf = binary.BigEndian.AppendUint32(buf, uint32(p))
	}
	return buf
}

func parseProcs(payload []byte) ([]arch.ProcID, error) {
	if len(payload) < 2 {
		return nil, fmt.Errorf("nettransport: truncated processor list")
	}
	count := int(binary.BigEndian.Uint16(payload))
	if len(payload) != 2+4*count {
		return nil, fmt.Errorf("nettransport: processor list length %d, want %d entries", len(payload), count)
	}
	procs := make([]arch.ProcID, count)
	for i := range procs {
		procs[i] = arch.ProcID(binary.BigEndian.Uint32(payload[2+4*i:]))
	}
	return procs, nil
}

// encodePeers serializes the cluster address map carried by a peersDst
// control frame: {u32 processor, u16 len, addr} per attached processor.
// Hub-hosted processors are absent — they are reached over the control
// connection, which is already a single hop.
func encodePeers(m map[arch.ProcID]string) []byte {
	buf := binary.BigEndian.AppendUint16(nil, uint16(len(m)))
	for p, addr := range m {
		buf = binary.BigEndian.AppendUint32(buf, uint32(p))
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(addr)))
		buf = append(buf, addr...)
	}
	return buf
}

func parsePeers(payload []byte) (map[arch.ProcID]string, error) {
	if len(payload) < 2 {
		return nil, fmt.Errorf("nettransport: truncated peers map")
	}
	count := int(binary.BigEndian.Uint16(payload))
	pos := 2
	m := make(map[arch.ProcID]string, count)
	for i := 0; i < count; i++ {
		if len(payload)-pos < 6 {
			return nil, fmt.Errorf("nettransport: truncated peers map entry")
		}
		p := arch.ProcID(binary.BigEndian.Uint32(payload[pos:]))
		n := int(binary.BigEndian.Uint16(payload[pos+4:]))
		pos += 6
		if len(payload)-pos < n {
			return nil, fmt.Errorf("nettransport: truncated peers map address")
		}
		m[p] = string(payload[pos : pos+n])
		pos += n
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("nettransport: %d trailing bytes in peers map", len(payload)-pos)
	}
	return m, nil
}
