package nettransport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"skipper/internal/arch"
)

// hello is the client side of the connection handshake: it identifies the
// schedule the process was compiled against (fingerprint) and the
// processors the process hosts. The hub rejects mismatched fingerprints —
// two processes running different deployments of "the same" program would
// otherwise exchange frames that decode into the wrong graph edges.
type hello struct {
	fingerprint uint64
	procs       []arch.ProcID
}

func writeHello(c net.Conn, h hello) error {
	buf := binary.BigEndian.AppendUint32(nil, magic)
	buf = binary.BigEndian.AppendUint16(buf, wireVersion)
	buf = binary.BigEndian.AppendUint64(buf, h.fingerprint)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(h.procs)))
	for _, p := range h.procs {
		buf = binary.BigEndian.AppendUint32(buf, uint32(p))
	}
	_, err := c.Write(buf)
	return err
}

func readHello(br *bufio.Reader) (hello, error) {
	var h hello
	var head [16]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return h, fmt.Errorf("nettransport: truncated handshake: %w", err)
	}
	if m := binary.BigEndian.Uint32(head[0:]); m != magic {
		return h, fmt.Errorf("nettransport: bad handshake magic %#x", m)
	}
	if v := binary.BigEndian.Uint16(head[4:]); v != wireVersion {
		return h, fmt.Errorf("nettransport: wire version %d, want %d", v, wireVersion)
	}
	h.fingerprint = binary.BigEndian.Uint64(head[6:])
	count := binary.BigEndian.Uint16(head[14:])
	h.procs = make([]arch.ProcID, count)
	for i := range h.procs {
		var pb [4]byte
		if _, err := io.ReadFull(br, pb[:]); err != nil {
			return h, fmt.Errorf("nettransport: truncated handshake procs: %w", err)
		}
		h.procs[i] = arch.ProcID(binary.BigEndian.Uint32(pb[:]))
	}
	return h, nil
}

// writeHelloReply acknowledges (msg == "") or rejects a handshake.
func writeHelloReply(c net.Conn, msg string) error {
	if msg == "" {
		_, err := c.Write([]byte{0})
		return err
	}
	buf := []byte{1}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(msg)))
	buf = append(buf, msg...)
	_, err := c.Write(buf)
	return err
}

func readHelloReply(br *bufio.Reader) error {
	status, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("nettransport: no handshake reply: %w", err)
	}
	if status == 0 {
		return nil
	}
	var lb [2]byte
	if _, err := io.ReadFull(br, lb[:]); err != nil {
		return fmt.Errorf("nettransport: handshake rejected (reason lost: %v)", err)
	}
	msg := make([]byte, binary.BigEndian.Uint16(lb[:]))
	if _, err := io.ReadFull(br, msg); err != nil {
		return fmt.Errorf("nettransport: handshake rejected (reason lost: %v)", err)
	}
	return fmt.Errorf("nettransport: handshake rejected: %s", msg)
}
