package nettransport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"skipper/internal/arch"
	"skipper/internal/exec/transport"
	"skipper/internal/graph"
	"skipper/internal/value"
)

// mkFrame encodes a frame for the batch tests and captures its tail so the
// head buffer holds the complete wire image, the way writeLoop parks frames.
func mkFrame(t *testing.T, dst arch.ProcID, key transport.Key, v value.Value) outFrame {
	t.Helper()
	f, err := encodeMessage(dst, key, v)
	if err != nil {
		t.Fatal(err)
	}
	f.capture()
	return f
}

// TestBatchableBytes pins the writer's batching policy: at least two
// frames, none above batchFragMax on the wire, batchMaxBytes in total.
func TestBatchableBytes(t *testing.T) {
	pad := func(n int) outFrame {
		fb := getBuf(n)
		fb.b = append(fb.b, make([]byte, n)...)
		return outFrame{head: fb}
	}
	small := pad(64)
	big := pad(batchFragMax + 1)
	defer putBuf(small.head)
	defer putBuf(big.head)

	if got := batchableBytes([]outFrame{small}); got != 0 {
		t.Errorf("lone frame reported batchable (%d bytes); it must go out bare", got)
	}
	if got := batchableBytes([]outFrame{small, small}); got != 128 {
		t.Errorf("two small frames: batchable bytes = %d, want 128", got)
	}
	if got := batchableBytes([]outFrame{small, big}); got != 0 {
		t.Errorf("oversized frame (%d bytes) must disable batching, got %d", batchFragMax+1, got)
	}
	withTail := outFrame{head: small.head, tail: make([]byte, 32)}
	if got := batchableBytes([]outFrame{small, withTail}); got != 64+64+32 {
		t.Errorf("tail bytes must count toward the batch size: got %d, want %d", got, 64+64+32)
	}

	// Exactly batchMaxBytes is allowed; one frame more tips it over.
	frag := pad(batchFragMax)
	defer putBuf(frag.head)
	atCap := make([]outFrame, batchMaxBytes/batchFragMax)
	for i := range atCap {
		atCap[i] = frag
	}
	if got := batchableBytes(atCap); got != batchMaxBytes {
		t.Errorf("batch at the byte cap: got %d, want %d", got, batchMaxBytes)
	}
	if got := batchableBytes(append(atCap, frag)); got != 0 {
		t.Errorf("batch above the byte cap must go out bare, got %d", got)
	}
}

// TestBatchDecodeBitIdenticalToInline packs frames into a batch payload
// exactly as writeLoop does and checks forEachBatched recovers the same
// (dst, key, value) sequence the inline per-frame path would decode.
func TestBatchDecodeBitIdenticalToInline(t *testing.T) {
	type msg struct {
		dst arch.ProcID
		key transport.Key
		v   value.Value
	}
	msgs := []msg{
		{3, transport.EdgeKey(graph.EdgeID(7)), 42},
		{1, transport.TaskKey(graph.NodeID(2), 0), transport.Task{Idx: 5, V: value.List{1, 2, 3}}},
		{3, transport.ReplyKey(graph.NodeID(2)), transport.Reply{Widx: 1, Task: 5, V: value.Tuple{9, value.Unit{}}}},
		{0, transport.EdgeKey(graph.EdgeID(1)), "batched string"},
	}

	var payload []byte
	for _, m := range msgs {
		f := mkFrame(t, m.dst, m.key, m.v)
		payload = append(payload, f.head.b...)
		putBuf(f.head)
	}

	var got []msg
	err := forEachBatched(payload, func(dst uint32, key transport.Key, body []byte) error {
		v, derr := value.Decode(body)
		if derr != nil {
			return derr
		}
		got = append(got, msg{arch.ProcID(dst), key, v})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("batch walk yielded %d frames, want %d", len(got), len(msgs))
	}
	for i, m := range msgs {
		if got[i].dst != m.dst || got[i].key != m.key {
			t.Errorf("frame %d: routed to (%d,%v), want (%d,%v)", i, got[i].dst, got[i].key, m.dst, m.key)
		}
		if !reflect.DeepEqual(got[i].v, m.v) {
			t.Errorf("frame %d: batch decode %v diverges from sent value %v", i, got[i].v, m.v)
		}
	}
}

// TestForEachBatchedRejectsCorruptFraming drives the batch walker with
// malformed payloads: every corruption must surface as an error, never a
// panic or a silently misdecoded frame.
func TestForEachBatchedRejectsCorruptFraming(t *testing.T) {
	valid := mkFrame(t, 1, transport.EdgeKey(graph.EdgeID(1)), 7)
	defer putBuf(valid.head)

	nested := make([]byte, 4+frameHeader)
	binary.BigEndian.PutUint32(nested, frameHeader)
	binary.BigEndian.PutUint32(nested[4:], batchDst)

	undersized := make([]byte, 4+frameHeader)
	binary.BigEndian.PutUint32(undersized, frameHeader-1)

	cases := []struct {
		name    string
		payload []byte
		wantErr string
	}{
		{"truncated length prefix", valid.head.b[:3], "truncated batch sub-frame length"},
		{"length beyond payload", valid.head.b[:len(valid.head.b)-1], "out of range"},
		{"length below header", undersized, "out of range"},
		{"nested batch", nested, "nested batch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := forEachBatched(tc.payload, func(uint32, transport.Key, []byte) error { return nil })
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want %q", err, tc.wantErr)
			}
		})
	}

	// The empty batch is vacuously well-formed.
	if err := forEachBatched(nil, func(uint32, transport.Key, []byte) error { return nil }); err != nil {
		t.Fatalf("empty batch payload: %v", err)
	}
}

// TestPartialBatchAtConnectionClose kills a connection mid-batch: the
// reader must surface a truncated-frame error, not hang or deliver a
// half-read batch.
func TestPartialBatchAtConnectionClose(t *testing.T) {
	c1, c2 := net.Pipe()
	go func() {
		// A batch frame declaring 200 payload bytes, of which only 40 ever
		// arrive before the writer dies.
		hdr := make([]byte, 4+frameHeader)
		binary.BigEndian.PutUint32(hdr, uint32(frameHeader+200))
		binary.BigEndian.PutUint32(hdr[4:], batchDst)
		c1.Write(hdr)
		c1.Write(make([]byte, 40))
		c1.Close()
	}()
	fb, _, _, _, err := readFrame(bufio.NewReader(c2))
	putBuf(fb)
	c2.Close()
	if err == nil || !strings.Contains(err.Error(), "truncated frame body") {
		t.Fatalf("mid-batch close: err = %v, want truncated frame body", err)
	}
}

// TestWriterCoalescingPreservesFrameStream drives a wconn whose socket is
// stalled so frames pile up and the writer must batch, then replays the
// wire through the reader-side unwrapping: the delivered (dst, key, value)
// sequence must be identical to the enqueue order whether a frame traveled
// bare or inside a batch — the bit-identity contract between the inline
// fast path and the coalesced path.
func TestWriterCoalescingPreservesFrameStream(t *testing.T) {
	c1, c2 := net.Pipe()
	w := newWConn(c1, nil, nil)

	const frames = 24
	key := transport.EdgeKey(graph.EdgeID(3))
	for i := 0; i < frames; i++ {
		w.enqueue(mkFrame(t, 2, key, i))
	}

	// net.Pipe is unbuffered: the writer is blocked in its first write until
	// we start reading, so everything enqueued after that first grab is
	// guaranteed to coalesce into at least one batch frame.
	type rec struct {
		dst uint32
		key transport.Key
		v   value.Value
	}
	var got []rec
	batches := 0
	br := bufio.NewReader(c2)
	for len(got) < frames {
		fb, dst, k, payload, err := readFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		if dst == batchDst {
			batches++
			err = forEachBatched(payload, func(d uint32, bk transport.Key, body []byte) error {
				v, derr := value.Decode(body)
				if derr != nil {
					return derr
				}
				got = append(got, rec{d, bk, v})
				return nil
			})
		} else {
			var v value.Value
			if v, err = value.Decode(payload); err == nil {
				got = append(got, rec{dst, k, v})
			}
		}
		putBuf(fb)
		if err != nil {
			t.Fatal(err)
		}
	}
	w.flushClose()
	c2.Close()

	if batches == 0 {
		t.Error("stalled socket produced no batch frames; writer coalescing is not engaging")
	}
	for i, r := range got {
		if r.dst != 2 || r.key != key || !value.Equal(r.v, i) {
			t.Fatalf("frame %d arrived as (dst %d, key %v, val %v); order or content corrupted",
				i, r.dst, r.key, r.v)
		}
	}
}

// TestBatchesInterleavedWithControlFrames is the integration cut: several
// goroutines blast small frames at the hub-hosted processor (coalescing on
// the control connection) while heartbeats tick underneath and a third node
// is severed mid-stream, injecting a peer-down broadcast between batches.
// Every data frame must arrive, per-sender FIFO must hold, and the survivor
// must observe the contained death rather than a cluster abort.
func TestBatchesInterleavedWithControlFrames(t *testing.T) {
	const hb = 10 * time.Millisecond
	a := arch.Ring(3)
	hub, err := NewHub("127.0.0.1:0", a, 7, []arch.ProcID{0}, WithHeartbeat(hb))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	hub.OnPeerDown(func([]arch.ProcID) {}) // contain, not abort

	c1, err := Dial(hub.Addr(), 7, []arch.ProcID{1}, time.Second, WithHeartbeat(hb))
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	downCh := make(chan []arch.ProcID, 1)
	c1.OnPeerDown(func(procs []arch.ProcID) {
		select {
		case downCh <- procs:
		default:
		}
	})

	victim, err := Dial(hub.Addr(), 7, []arch.ProcID{2}, time.Second, WithHeartbeat(hb))
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	if err := hub.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	const senders, perSender = 4, 64
	key := transport.EdgeKey(graph.EdgeID(9))
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				c1.Send(1, 0, key, s*1_000_000+i)
				if s == 0 && i == perSender/2 {
					victim.Sever() // mid-stream death between batches
				}
			}
		}(s)
	}

	next := make([]int, senders)
	rx := hub.Receiver(0, key)
	for n := 0; n < senders*perSender; n++ {
		v, ok := rx.Recv()
		if !ok {
			t.Fatalf("hub receiver aborted after %d/%d frames: %v", n, senders*perSender, hub.Err())
		}
		s, i := v.(int)/1_000_000, v.(int)%1_000_000
		if i != next[s] {
			t.Fatalf("sender %d frame %d arrived out of order (want %d); batching broke FIFO", s, i, next[s])
		}
		next[s]++
	}
	wg.Wait()

	select {
	case procs := <-downCh:
		if fmt.Sprint(procs) != "[2]" {
			t.Fatalf("survivor notified of %v, want [2]", procs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("survivor never saw the peer-down broadcast")
	}
	if err := hub.Err(); err != nil {
		t.Fatalf("contained death must not fail the hub: %v", err)
	}
}

// FuzzBatchDecode fuzzes the batch walker with arbitrary payloads: it must
// either report a framing error or walk sub-frames whose lengths exactly
// tile the payload — and never panic, over-read, or loop.
func FuzzBatchDecode(f *testing.F) {
	// Seed with a well-formed two-frame batch and a few corruptions of it.
	var seed []byte
	for _, v := range []value.Value{1, "two"} {
		fr, err := encodeMessage(3, transport.EdgeKey(graph.EdgeID(1)), v)
		if err != nil {
			f.Fatal(err)
		}
		fr.capture()
		seed = append(seed, fr.head.b...)
		putBuf(fr.head)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add(seed[:3])
	f.Add([]byte{})
	trunc := bytes.Clone(seed)
	binary.BigEndian.PutUint32(trunc, uint32(len(trunc)*2))
	f.Add(trunc)

	f.Fuzz(func(t *testing.T, payload []byte) {
		total := 0
		err := forEachBatched(payload, func(_ uint32, _ transport.Key, body []byte) error {
			total += 4 + frameHeader + len(body)
			return nil
		})
		if err == nil && total != len(payload) {
			t.Fatalf("walk consumed %d of %d payload bytes without error", total, len(payload))
		}
	})
}
