package nettransport

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"skipper/internal/arch"
	"skipper/internal/obsv"
)

// FleetHub is the long-lived listener side of the net backend: one bound
// address that outlives any single deployment. Node processes attach with a
// fingerprinted hello exactly as before, but the fingerprint now *selects* —
// each active Session (one per job) is registered under its fingerprint, and
// a connection is handed to the session it was compiled against. That makes
// the hub address a durable rendezvous for an elastic fleet: workers come
// and go across jobs while the listener, and therefore the address clients
// and workers hold, stays put. A rejected fingerprint means no such
// deployment is active, which also guarantees frames from different jobs
// sharing a worker can never cross: they ride different sessions here and
// differently-fingerprinted peer connections on the data plane.
type FleetHub struct {
	ln net.Listener
	hb time.Duration // heartbeat interval; 0 = no liveness monitor
	// trace (WithTrace) pre-arms every session opened on this hub — set for
	// single-session Hub deployments so the recorder is live before any
	// node attaches; schedulers multiplexing sessions arm each one instead.
	trace *obsv.Recorder

	mu       sync.Mutex
	sessions map[uint64]*Session
	closed   bool

	monStop chan struct{}
	monOnce sync.Once

	closing atomic.Bool
	wg      sync.WaitGroup
}

// NewFleetHub binds addr (e.g. "127.0.0.1:0" or "unix:/tmp/hub.sock"; see
// Addr for the bound address) and starts accepting connections. Sessions
// are opened per deployment with OpenSession; a connection whose
// fingerprint matches no open session is rejected in the handshake.
func NewFleetHub(addr string, opts ...Option) (*FleetHub, error) {
	o := buildOptions(opts)
	ln, err := listenNet(addr)
	if err != nil {
		return nil, err
	}
	f := &FleetHub{
		ln:       ln,
		hb:       o.heartbeat,
		trace:    o.trace,
		sessions: map[uint64]*Session{},
	}
	f.wg.Add(1)
	go f.acceptLoop()
	if f.hb > 0 {
		f.monStop = make(chan struct{})
		f.wg.Add(1)
		go f.monitor()
	}
	return f, nil
}

// Addr is the address clients should dial ("unix:"-prefixed when the hub
// listens on a unix-domain socket).
func (f *FleetHub) Addr() string { return joinNetAddr(f.ln) }

// OpenSession registers a deployment on the hub: connections whose hello
// carries fingerprint are routed to the returned Session. local are the
// processors hosted in this process (typically processor 0 with the
// input/output nodes). The fingerprint must be unique among open sessions —
// a scheduler multiplexing identical jobs salts it per job.
func (f *FleetHub) OpenSession(a *arch.Arch, fingerprint uint64, local []arch.ProcID) (*Session, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, fmt.Errorf("nettransport: fleet hub is closed")
	}
	if _, dup := f.sessions[fingerprint]; dup {
		return nil, fmt.Errorf("nettransport: a session with fingerprint %#x is already open", fingerprint)
	}
	s := newSession(f, a, fingerprint, local)
	if f.trace != nil {
		// Before the registry insert: once registered, a dialing node's
		// frames route to this session immediately.
		s.rec.Store(f.trace)
	}
	f.sessions[fingerprint] = s
	return s, nil
}

// session looks up the open session for a fingerprint, nil if none.
func (f *FleetHub) session(fingerprint uint64) *Session {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sessions[fingerprint]
}

// dropSession retires a session from the registry (called by
// Session.Close/sever), freeing its fingerprint for reuse.
func (f *FleetHub) dropSession(s *Session) {
	f.mu.Lock()
	if f.sessions[s.fp] == s {
		delete(f.sessions, s.fp)
	}
	f.mu.Unlock()
}

// snapshotSessions returns the open sessions at this instant.
func (f *FleetHub) snapshotSessions() []*Session {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Session, 0, len(f.sessions))
	for _, s := range f.sessions {
		out = append(out, s)
	}
	return out
}

// SessionCount reports how many deployments are currently open on the hub.
func (f *FleetHub) SessionCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.sessions)
}

// SessionFingerprints lists the open sessions' fingerprints, sorted (a
// /varz convenience).
func (f *FleetHub) SessionFingerprints() []uint64 {
	f.mu.Lock()
	fps := make([]uint64, 0, len(f.sessions))
	for fp := range f.sessions {
		fps = append(fps, fp)
	}
	f.mu.Unlock()
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	return fps
}

func (f *FleetHub) acceptLoop() {
	defer f.wg.Done()
	for {
		c, err := f.ln.Accept()
		if err != nil {
			return // listener closed
		}
		f.wg.Add(1)
		go f.serveConn(c)
	}
}

// serveConn reads one handshake and hands the connection to the session it
// fingerprints. An unknown fingerprint is a per-connection rejection, never
// a hub-wide fault: on a multi-job hub one confused node must not take the
// other deployments down.
func (f *FleetHub) serveConn(c net.Conn) {
	defer f.wg.Done()
	setNoDelay(c)
	br := bufio.NewReaderSize(c, readBufSize)
	hel, err := readHello(br)
	if err != nil {
		writeHelloReply(c, err.Error(), false)
		c.Close()
		return
	}
	s := f.session(hel.fingerprint)
	if s == nil {
		writeHelloReply(c, fmt.Sprintf("no active deployment with schedule fingerprint %#x on this hub (nodes compiled a different deployment?)", hel.fingerprint), false)
		c.Close()
		return
	}
	s.serveConn(c, br, hel)
}

// monitor is the fleet-wide liveness watchdog, armed by WithHeartbeat: a
// connection with no frames at all for 3 heartbeat intervals is condemned —
// its processors are declared dead in its session and its socket severed,
// catching nodes that hang or vanish without closing their connection
// (which plain TCP can take minutes to surface).
func (f *FleetHub) monitor() {
	defer f.wg.Done()
	t := time.NewTicker(f.hb)
	defer t.Stop()
	for {
		select {
		case <-f.monStop:
			return
		case <-t.C:
		}
		if f.closing.Load() {
			return
		}
		limit := time.Now().Add(-3 * f.hb).UnixNano()
		for _, s := range f.snapshotSessions() {
			if s.closing.Load() || s.aborted.Load() {
				continue
			}
			s.mu.Lock()
			states := append([]*connState(nil), s.states...)
			s.mu.Unlock()
			for _, cs := range states {
				if cs.gone.Load() || cs.condemned.Load() || cs.lastHeard.Load() >= limit {
					continue
				}
				cs.condemned.Store(true)
				s.connDeath(cs.procs, fmt.Sprintf("nettransport: node %v sent no frames for %v (process hung?)", cs.procs, 3*f.hb))
				cs.w.c.Close() // unblock its readLoop; condemned makes that exit silent
			}
		}
	}
}

func (f *FleetHub) stopMonitor() {
	if f.monStop != nil {
		f.monOnce.Do(func() { close(f.monStop) })
	}
}

// Sever tears the hub down the way a coordinator crash would: no abort
// broadcast, no queue flush — the listener and every session's control
// connections close abruptly and local mailboxes are killed. Attached
// clients observe exactly what a died coordinator produces (EOF on the
// control connection), which makes Sever the in-process stand-in for
// kill -9 in chaos tests.
func (f *FleetHub) Sever() {
	f.closing.Store(true)
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.stopMonitor()
	f.ln.Close()
	for _, s := range f.snapshotSessions() {
		s.sever()
	}
	f.wg.Wait()
}

// Close shuts the hub down cleanly: the listener closes, every open session
// is closed (abort + flush), and the hub's goroutines are reaped.
func (f *FleetHub) Close() error {
	f.closing.Store(true)
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.stopMonitor()
	f.ln.Close()
	for _, s := range f.snapshotSessions() {
		s.Close()
	}
	f.wg.Wait()
	return nil
}
