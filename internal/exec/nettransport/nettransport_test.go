package nettransport_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"skipper/internal/arch"
	"skipper/internal/dsl/parser"
	"skipper/internal/dsl/types"
	"skipper/internal/exec"
	"skipper/internal/exec/nettransport"
	"skipper/internal/exec/transport"
	"skipper/internal/expand"
	"skipper/internal/graph"
	"skipper/internal/syndex"
	"skipper/internal/value"
)

func compile(t *testing.T, src string, reg *value.Registry, a *arch.Arch) *syndex.Schedule {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	res, err := expand.Expand(prog, info, reg)
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	s, err := syndex.Map(res.Graph, a, reg, syndex.Structured)
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	return s
}

func baseRegistry() *value.Registry {
	r := value.NewRegistry()
	r.Register(&value.Func{Name: "source", Sig: "int -> int list", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			n := a[0].(int)
			out := make(value.List, n)
			for i := range out {
				out[i] = i + 1
			}
			return out
		}})
	r.Register(&value.Func{Name: "square", Sig: "int -> int", Arity: 1,
		Fn: func(a []value.Value) value.Value { x := a[0].(int); return x * x }})
	r.Register(&value.Func{Name: "add", Sig: "int -> int -> int", Arity: 2,
		Fn: func(a []value.Value) value.Value { return a[0].(int) + a[1].(int) }})
	return r
}

const farmSrc = `
extern source : int -> int list;;
extern square : int -> int;;
extern add : int -> int -> int;;
let main = df 4 square add 0 (source 10);;
`

const farmWant = 385 // sum of squares 1..10

// runSplit executes a schedule with processor 0 on a Hub and every other
// processor on its own Client — the same shape as one OS process per
// processor, in-process for test speed but over real localhost sockets.
// Each node builds its own registry, as separate OS processes would.
func runSplit(t *testing.T, src string, a *arch.Arch, iters int, mkReg func() *value.Registry) []value.Value {
	t.Helper()
	s := compile(t, src, mkReg(), a)
	const fp = 0xfeed
	hub, err := nettransport.NewHub("127.0.0.1:0", a, fp, []arch.ProcID{0})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	var wg sync.WaitGroup
	errs := make([]error, a.N)
	for p := 1; p < a.N; p++ {
		wg.Add(1)
		go func(p arch.ProcID) {
			defer wg.Done()
			reg := mkReg()
			ns := compile(t, src, reg, a)
			cl, err := nettransport.Dial(hub.Addr(), fp, []arch.ProcID{p}, 5*time.Second)
			if err != nil {
				errs[p] = err
				hub.Abort()
				return
			}
			defer cl.Close()
			_, err = exec.NewMachineOn(ns, reg, cl, []arch.ProcID{p}).RunWithTimeout(iters, 20*time.Second)
			errs[p] = err
		}(arch.ProcID(p))
	}
	res, err := exec.NewMachineOn(s, mkReg(), hub, []arch.ProcID{0}).RunWithTimeout(iters, 20*time.Second)
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for p, e := range errs {
		if e != nil {
			t.Fatalf("node %d: %v", p, e)
		}
	}
	return res.Outputs
}

func TestFarmOverTCPMatchesMem(t *testing.T) {
	reg := baseRegistry()
	a := arch.Ring(4)
	s := compile(t, farmSrc, reg, a)
	memRes, err := exec.NewMachine(s, reg).Run(2)
	if err != nil {
		t.Fatal(err)
	}
	tcpOuts := runSplit(t, farmSrc, a, 2, baseRegistry)
	if len(tcpOuts) != len(memRes.Outputs) {
		t.Fatalf("tcp produced %d outputs, mem %d", len(tcpOuts), len(memRes.Outputs))
	}
	for i := range tcpOuts {
		if tcpOuts[i] != memRes.Outputs[i] || tcpOuts[i] != farmWant {
			t.Fatalf("iteration %d: tcp %v, mem %v, want %d", i, tcpOuts[i], memRes.Outputs[i], farmWant)
		}
	}
}

func TestStreamOverTCP(t *testing.T) {
	// Stateful itermem stream: the Mem feedback crosses iterations inside
	// each node process; the frame values cross the wire.
	mkReg := func() *value.Registry {
		r := value.NewRegistry()
		n := 0
		r.Register(&value.Func{Name: "grab", Sig: "unit -> int", Arity: 1,
			Fn: func([]value.Value) value.Value { n++; return n }})
		r.Register(&value.Func{Name: "step", Sig: "int * int -> int * int", Arity: 1,
			Fn: func(a []value.Value) value.Value {
				p := a[0].(value.Tuple)
				sum := p[0].(int) + p[1].(int)
				return value.Tuple{sum, sum}
			}})
		r.Register(&value.Func{Name: "show", Sig: "int -> unit", Arity: 1,
			Fn: func([]value.Value) value.Value { return value.Unit{} }})
		return r
	}
	src := `
extern grab : unit -> int;;
extern step : int * int -> int * int;;
extern show : int -> unit;;
let main = itermem grab step show 0 ();;
`
	outs := runSplit(t, src, arch.Ring(2), 4, mkReg)
	want := []int{1, 3, 6, 10}
	for i, w := range want {
		if outs[i] != w {
			t.Fatalf("outputs = %v, want %v", outs, want)
		}
	}
}

func TestHubRejectsFingerprintMismatch(t *testing.T) {
	a := arch.Ring(2)
	hub, err := nettransport.NewHub("127.0.0.1:0", a, 0x1111, []arch.ProcID{0})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	_, err = nettransport.Dial(hub.Addr(), 0x2222, []arch.ProcID{1}, time.Second)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("mismatched fingerprint accepted: %v", err)
	}
}

func TestHubRejectsDuplicateProcessor(t *testing.T) {
	a := arch.Ring(3)
	hub, err := nettransport.NewHub("127.0.0.1:0", a, 7, []arch.ProcID{0})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	c1, err := nettransport.Dial(hub.Addr(), 7, []arch.ProcID{1}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := nettransport.Dial(hub.Addr(), 7, []arch.ProcID{1}, time.Second); err == nil {
		t.Fatal("duplicate processor claim accepted")
	}
	if _, err := nettransport.Dial(hub.Addr(), 7, []arch.ProcID{0}, time.Second); err == nil {
		t.Fatal("coordinator-hosted processor claim accepted")
	}
}

func TestBufferedFramesReachLateAttacher(t *testing.T) {
	a := arch.Ring(2)
	hub, err := nettransport.NewHub("127.0.0.1:0", a, 7, []arch.ProcID{0})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	k := transport.EdgeKey(graph.EdgeID(3))
	// Send before processor 1 attaches: the hub must buffer.
	hub.Send(0, 1, k, "early")
	cl, err := nettransport.Dial(hub.Addr(), 7, []arch.ProcID{1}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	v, ok := cl.Recv(1, k)
	if !ok || v.(string) != "early" {
		t.Fatalf("buffered frame lost: %v %v", v, ok)
	}
}

func TestPeerToPeerDirectDataPlane(t *testing.T) {
	a := arch.Ring(3)
	hub, err := nettransport.NewHub("127.0.0.1:0", a, 7, []arch.ProcID{0})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	c1, err := nettransport.Dial(hub.Addr(), 7, []arch.ProcID{1}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := nettransport.Dial(hub.Addr(), 7, []arch.ProcID{2}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := hub.WaitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	k := transport.EdgeKey(graph.EdgeID(9))
	c1.Send(1, 2, k, "direct")
	v, ok := c2.Recv(2, k)
	if !ok || v.(string) != "direct" {
		t.Fatalf("node-to-node frame lost: %v %v", v, ok)
	}
	if got := c1.Stats().Direct; got != 1 {
		t.Fatalf("sender mesh frames = %d, want 1", got)
	}
	if got := hub.Stats().Hops; got != 0 {
		t.Fatalf("hub relayed %d frames, want 0 — data plane must bypass the hub", got)
	}
}

func TestHubPendingBacklogBounded(t *testing.T) {
	a := arch.Ring(2)
	hub, err := nettransport.NewHub("127.0.0.1:0", a, 7, []arch.ProcID{0})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	k := transport.EdgeKey(graph.EdgeID(1))
	// Processor 1 never attaches: the per-processor buffer must hit its cap
	// and fail the hub instead of growing without bound.
	for i := 0; i < 2000; i++ {
		hub.Send(0, 1, k, i)
		if hub.Err() != nil {
			break
		}
	}
	err = hub.Err()
	if err == nil {
		t.Fatal("hub accepted 2000 frames for an unattached processor without failing")
	}
	if !strings.Contains(err.Error(), "backlog") {
		t.Fatalf("unexpected overflow error: %v", err)
	}
}

func TestAbortPropagatesAcrossProcesses(t *testing.T) {
	a := arch.Ring(3)
	hub, err := nettransport.NewHub("127.0.0.1:0", a, 7, []arch.ProcID{0})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	c1, err := nettransport.Dial(hub.Addr(), 7, []arch.ProcID{1}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := nettransport.Dial(hub.Addr(), 7, []arch.ProcID{2}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := hub.WaitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	done := make(chan bool, 2)
	go func() {
		_, ok := c2.Recv(2, transport.EdgeKey(graph.EdgeID(1)))
		done <- ok
	}()
	go func() {
		_, ok := hub.Recv(0, transport.EdgeKey(graph.EdgeID(2)))
		done <- ok
	}()
	// One node aborts; the hub must rebroadcast so every process unblocks.
	c1.Abort()
	for i := 0; i < 2; i++ {
		select {
		case ok := <-done:
			if ok {
				t.Fatal("recv returned ok after cluster abort")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("abort did not propagate within 5s")
		}
	}
}
