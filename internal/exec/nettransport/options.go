package nettransport

import (
	"time"

	"skipper/internal/obsv"
)

// options collects the tunables shared by Dial and NewHub. Both accept the
// same Option type; an option irrelevant to one side is simply ignored
// there (WithMeshWaitTimeout has no meaning on the hub).
type options struct {
	heartbeat time.Duration
	meshWait  time.Duration
	dataPlane string // peer-listener network: "auto" (default), "tcp", "unix", "shm"
	trace     *obsv.Recorder
}

// Option configures a Client (Dial) or Hub (NewHub).
type Option func(*options)

// WithHeartbeat arms liveness heartbeats at interval d. On a client, a
// heartbeat control frame is sent to the hub every d; on the hub, a
// monitor declares a connection dead when no frame at all (heartbeat or
// data) has arrived for 3d — catching processes that hang or vanish
// without closing their socket, which plain TCP can take minutes to
// notice. Both sides of a deployment must agree on the interval (pass the
// same option everywhere, like the schedule fingerprint): a monitoring hub
// over non-heartbeating idle clients would declare false deaths. Zero
// disables (the default) — death detection then relies on connection EOF.
func WithHeartbeat(d time.Duration) Option {
	return func(o *options) { o.heartbeat = d }
}

// WithMeshWaitTimeout bounds how long a client's remote Send waits for the
// hub's peers map (default 30s). Client-side only.
func WithMeshWaitTimeout(d time.Duration) Option {
	return func(o *options) { o.meshWait = d }
}

// WithDataPlane pins the network a client's peer data listener binds:
// "tcp", "unix", "shm", or "auto" (the default — unix when the control
// connection shows the hub is on this host, tcp otherwise). A node of a
// multi-host deployment that happens to share the coordinator's machine
// should pass "tcp": peers on other hosts cannot dial a unix path. "shm"
// layers the shared-memory slab-ring upgrade (DESIGN.md §14) on unix
// sockets: the control connection and every same-host peer connection
// negotiate a per-connection mmap'd ring and move their frame streams off
// the kernel, falling back to the plain socket when the remote end is not
// on this host or a ring fails to map. Explicit rather than part of
// "auto" because the rings cost ~8MiB of tmpfs per connection pair.
// Client-side only.
func WithDataPlane(network string) Option {
	return func(o *options) { o.dataPlane = network }
}

// WithTrace arms the event recorder before any traffic can flow. SetTrace
// exists for arming mid-lifecycle, but a client's read and accept loops
// start inside Dial — a peer's first frame can land before the caller gets
// the *Client back, and an event recorded by nobody is a completeness hole
// (TestTraceCompleteness found exactly that race on the fastest planes).
// On NewHub the recorder is installed on the hub's single session the same
// way, before any node can attach to it. Nil is the untraced default.
func WithTrace(r *obsv.Recorder) Option {
	return func(o *options) { o.trace = r }
}

func buildOptions(opts []Option) options {
	o := options{meshWait: defaultMeshWaitTimeout, dataPlane: "auto"}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}
