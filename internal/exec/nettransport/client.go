package nettransport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"skipper/internal/arch"
	"skipper/internal/exec/transport"
	"skipper/internal/obsv"
	"skipper/internal/value"
)

// Client is the node-process side of the TCP backend: it hosts a subset of
// the architecture's processors, keeps a control connection to the hub
// (handshake, abort, detach, frames to and from hub-hosted processors) and
// exchanges data frames with other node processes directly over the peer
// mesh once the hub has distributed the address map. Traffic between two
// processors hosted by the same client never touches the wire.
type Client struct {
	fp       uint64
	localSet map[arch.ProcID]bool
	boxes    map[arch.ProcID]*transport.Mailbox
	w        *wconn        // control connection to the hub
	ln       net.Listener  // peer data listener
	meshWait time.Duration // bound on waiting for the hub's peers map
	hb       time.Duration // heartbeat interval; 0 = none
	shmPlane bool          // request the shm ring upgrade on peer dials

	// peers is the cluster address map (processor → peer data listener),
	// set exactly once when the hub's peers frame arrives. Until then
	// remote Sends wait on meshCond: routing the first frames through the
	// hub and later ones through the mesh would break FIFO per sender.
	peers     atomic.Pointer[map[arch.ProcID]string]
	meshMu    sync.Mutex
	meshCond  *sync.Cond
	meshDown  bool                     // aborted before/while waiting for the map
	meshLate  bool                     // meshWait elapsed without a peers frame
	addrProcs map[string][]arch.ProcID // reverse of peers: data address → processors

	pcMu   sync.Mutex
	pconns map[string]*wconn // dialed peer connections by address

	inMu    sync.Mutex
	inbound []net.Conn // accepted peer connections

	// pdFn, when registered via OnPeerDown, switches peer-death handling
	// from abort-the-cluster to contain-and-notify.
	pdMu sync.Mutex
	pdFn transport.PeerDown

	deadMu  sync.Mutex
	dead    map[arch.ProcID]bool
	anyDead atomic.Bool // fast path: skip the dead-map lookup while nobody died

	hbStop     chan struct{}
	hbStopOnce sync.Once

	errMu sync.Mutex
	err   error

	closing   atomic.Bool
	aborted   atomic.Bool
	abortOnce sync.Once
	readerWG  sync.WaitGroup

	messages  atomic.Int64
	direct    atomic.Int64
	bytesSent atomic.Int64
	bytesRecv atomic.Int64

	// clockOff is the NTP-style offset estimated from the hub handshake:
	// add it to this process's wall clock to get the hub's wall clock.
	clockOff int64

	// rec, when set via SetTrace before the run's traffic starts, receives
	// send/recv/abort events; mailbox events are wired through the boxes.
	// Atomic because the control-plane read loop is alive from Dial on,
	// before the machine gets the chance to arm tracing.
	rec atomic.Pointer[obsv.Recorder]
	kl  transport.KeyLabels
}

var (
	_ transport.Transport       = (*Client)(nil)
	_ transport.FailureNotifier = (*Client)(nil)
	_ transport.PeerDowner      = (*Client)(nil)
)

// Dial connects to the hub at addr, retrying with jittered exponential
// backoff until d elapses (node processes may be spawned before the
// coordinator finishes binding, and a whole fleet retrying in lockstep
// would hammer it the moment it does), binds a peer data listener on the
// same interface, then performs the handshake claiming local and starts
// the reader and acceptor loops.
func Dial(addr string, fingerprint uint64, local []arch.ProcID, d time.Duration, opts ...Option) (*Client, error) {
	o := buildOptions(opts)
	network, address := splitNetAddr(addr)
	deadline := time.Now().Add(d)
	bo := newBackoff()
	var c net.Conn
	var err error
	for {
		c, err = net.DialTimeout(network, address, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("nettransport: dialing hub %s: %w", addr, err)
		}
		bo.sleep()
	}
	setNoDelay(c)
	ln, err := listenPeer(c, o.dataPlane)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("nettransport: peer listener: %w", err)
	}
	// The shm control-plane upgrade (DESIGN.md §14): create both ring
	// segments before saying hello — the hello carries their paths, the
	// hub's reply says whether it mapped them. Creation failure (no tmpfs,
	// quota) silently degrades to the plain socket.
	h := hello{fingerprint: fingerprint, procs: local, dataAddr: joinNetAddr(ln)}
	var shmOut, shmIn *shmRing
	if o.dataPlane == "shm" && sameHost(c) {
		if shmOut, err = createShmRing(fingerprint, shmDefaultSlots); err == nil {
			if shmIn, err = createShmRing(fingerprint, shmDefaultSlots); err != nil {
				shmOut.remove()
				shmOut.unmap()
				shmOut = nil
			}
		}
		if shmOut != nil {
			h.shmToHub, h.shmFromHub = shmOut.path, shmIn.path
		}
	}
	dropRings := func() {
		if shmOut != nil {
			shmOut.remove()
			shmOut.unmap()
			shmIn.remove()
			shmIn.unmap()
		}
	}
	t0 := time.Now().UnixNano()
	if err := writeHello(c, h); err != nil {
		dropRings()
		ln.Close()
		c.Close()
		return nil, fmt.Errorf("nettransport: handshake: %w", err)
	}
	br := bufio.NewReaderSize(c, readBufSize)
	hubNano, shmOK, err := readHelloReply(br)
	if err != nil {
		dropRings()
		ln.Close()
		c.Close()
		return nil, err
	}
	t1 := time.Now().UnixNano()
	// NTP-style offset: the hub stamped its clock mid-handshake, so it maps
	// to the midpoint of our request/reply bracket. Adding the offset to a
	// local wall-clock instant yields the hub's wall clock (± half the RTT).
	clockOff := hubNano - (t0+t1)/2
	var cw wire = c
	if shmOut != nil {
		// Both ends hold mappings now (or the hub declined); the segment
		// names can leave the filesystem either way.
		shmOut.remove()
		shmIn.remove()
		if shmOK {
			sc := newShmConn(c, shmIn, shmOut)
			cw = sc
			br = bufio.NewReaderSize(sc, shmReadBufSize)
		} else {
			shmOut.unmap()
			shmIn.unmap()
		}
	}
	return newClient(fingerprint, local, cw, br, ln, clockOff, o), nil
}

// newClient wires up a Client on an already-handshaken control connection
// and peer listener, and starts its reader, acceptor and (when configured)
// heartbeat loops.
func newClient(fingerprint uint64, local []arch.ProcID, c wire, br *bufio.Reader, ln net.Listener, clockOff int64, o options) *Client {
	cl := &Client{
		fp:       fingerprint,
		localSet: map[arch.ProcID]bool{},
		boxes:    map[arch.ProcID]*transport.Mailbox{},
		ln:       ln,
		meshWait: o.meshWait,
		hb:       o.heartbeat,
		shmPlane: o.dataPlane == "shm",
		pconns:   map[string]*wconn{},
		dead:     map[arch.ProcID]bool{},
		clockOff: clockOff,
	}
	cl.meshCond = sync.NewCond(&cl.meshMu)
	if o.trace != nil {
		// Armed before the loops below start: the first inbound frame can
		// beat any post-Dial SetTrace call.
		cl.rec.Store(o.trace)
	}
	cl.w = newWConn(c, func(err error) {
		// The aborted check breaks a re-entrant deadlock: Abort's best-effort
		// abort-frame send can fail inline on this very goroutine (the hub is
		// typically already gone when Abort runs), and failf -> Abort would
		// re-enter abortOnce.Do.
		if !cl.closing.Load() && !cl.aborted.Load() {
			cl.failf("nettransport: hub connection: %v", err)
		}
	}, &cl.rec)
	for _, p := range local {
		cl.localSet[p] = true
		cl.boxes[p] = transport.NewMailbox()
	}
	cl.readerWG.Add(2)
	go cl.readLoop(br)
	go cl.acceptLoop()
	if cl.hb > 0 {
		cl.hbStop = make(chan struct{})
		go cl.heartbeatLoop()
	}
	return cl
}

// heartbeatLoop proves this process's liveness to the hub's monitor: one
// heartbeat control frame per interval, enqueued (never an inline socket
// write) so a stalled hub connection cannot block it.
func (cl *Client) heartbeatLoop() {
	t := time.NewTicker(cl.hb)
	defer t.Stop()
	for {
		select {
		case <-cl.hbStop:
			return
		case <-t.C:
		}
		if cl.closing.Load() || cl.aborted.Load() {
			return
		}
		cl.w.enqueue(controlFrame(heartbeatDst, nil))
	}
}

func (cl *Client) stopHeartbeat() {
	if cl.hbStop != nil {
		cl.hbStopOnce.Do(func() { close(cl.hbStop) })
	}
}

// errStopRead tells a read loop to exit: the frame it just dispatched was
// an abort, or dispatching it failed the client. Sentinel, not an error to
// report — whoever returns it has already recorded the cause.
var errStopRead = errors.New("nettransport: stop reading")

// readLoop handles control-plane frames from the hub: the peers map,
// cluster aborts and payloads for processors hosted here. EOF means the
// coordinator tore the deployment down: incoming traffic is over, so the
// mailboxes close (draining anything already delivered first).
func (cl *Client) readLoop(br *bufio.Reader) {
	defer cl.readerWG.Done()
	for {
		n, dst, key, err := readFrameHeader(br)
		if err != nil {
			if err != io.EOF && !cl.closing.Load() && !cl.aborted.Load() {
				cl.failf("nettransport: reading from hub: %v", err)
				return
			}
			cl.Abort()
			return
		}
		// Data frames for a locally hosted processor stream-decode straight
		// off the connection (the payload never lands in a frame buffer);
		// control frames and batches are slurped and dispatched in memory.
		if cl.localSet[arch.ProcID(dst)] {
			if err := cl.deliverStream(br, arch.ProcID(dst), key, n-frameHeader); err != nil {
				if !cl.closing.Load() && !cl.aborted.Load() {
					cl.failf("nettransport: reading from hub: %v", err)
				} else {
					cl.Abort()
				}
				return
			}
			continue
		}
		fb, payload, err := readFrameRest(br, n, dst, key)
		if err != nil {
			if !cl.closing.Load() && !cl.aborted.Load() {
				cl.failf("nettransport: reading from hub: %v", err)
			} else {
				cl.Abort()
			}
			return
		}
		if dst == batchDst {
			err = forEachBatched(payload, cl.hubFrame)
		} else {
			err = cl.hubFrame(dst, key, payload)
		}
		putBuf(fb)
		if err == errStopRead {
			return
		}
		if err != nil {
			cl.failf("%v", err)
			return
		}
	}
}

// hubFrame dispatches one control-connection frame — read directly off the
// wire or unpacked from a batch. errStopRead means the read loop must exit
// (abort received, or dispatch failed the client).
func (cl *Client) hubFrame(dst uint32, key transport.Key, payload []byte) error {
	switch dst {
	case abortDst:
		cl.Abort()
		return errStopRead
	case peersDst:
		m, perr := parsePeers(payload)
		if perr != nil {
			cl.failf("nettransport: %v", perr)
			return errStopRead
		}
		ap := make(map[string][]arch.ProcID, len(m))
		for p, a := range m {
			ap[a] = append(ap[a], p)
		}
		cl.meshMu.Lock()
		cl.peers.Store(&m)
		cl.addrProcs = ap
		cl.meshMu.Unlock()
		cl.meshCond.Broadcast()
		return nil
	case peerDownDst:
		procs, perr := parseProcs(payload)
		if perr != nil {
			cl.failf("nettransport: %v", perr)
			return errStopRead
		}
		cl.markPeersDown(procs, true)
		return nil
	}
	if !cl.deliver(arch.ProcID(dst), key, payload) {
		return errStopRead
	}
	return nil
}

// deliver decodes a frame payload into a local processor's mailbox.
func (cl *Client) deliver(p arch.ProcID, key transport.Key, payload []byte) bool {
	box, ok := cl.boxes[p]
	if !ok {
		cl.failf("nettransport: received frame for processor %d, not hosted here", p)
		return false
	}
	v, err := value.Decode(payload)
	if err != nil {
		cl.failf("nettransport: decoding frame for processor %d key %v: %v", p, key, err)
		return false
	}
	cl.bytesRecv.Add(int64(len(payload)))
	if rec := cl.rec.Load(); rec != nil {
		rec.Record(int32(p), obsv.EvRecv, cl.kl.Of(key), -1, int64(len(payload)))
	}
	box.Deliver(key, v)
	return true
}

// deliverStream decodes a frame payload straight off the connection into a
// local processor's mailbox: large trailing slabs (pixel planes) land in
// their final arena buffer without an intermediate frame buffer or its
// per-hop copy. Any error — I/O or format — leaves br mid-frame, so the
// caller must stop reading the connection.
func (cl *Client) deliverStream(br *bufio.Reader, p arch.ProcID, key transport.Key, n int) error {
	box, ok := cl.boxes[p]
	if !ok {
		return fmt.Errorf("received frame for processor %d, not hosted here", p)
	}
	v, err := value.DecodeStream(br, n)
	if err != nil {
		return fmt.Errorf("decoding frame for processor %d key %v: %v", p, key, err)
	}
	cl.bytesRecv.Add(int64(n))
	if rec := cl.rec.Load(); rec != nil {
		rec.Record(int32(p), obsv.EvRecv, cl.kl.Of(key), -1, int64(n))
	}
	box.Deliver(key, v)
	return nil
}

// OnPeerDown registers the executive's failure handler, switching peer
// death from abort-the-cluster to contain-and-notify. Register before the
// run's traffic starts.
func (cl *Client) OnPeerDown(fn transport.PeerDown) {
	cl.pdMu.Lock()
	cl.pdFn = fn
	cl.pdMu.Unlock()
}

// MarkPeerDown declares p dead without invoking the handler: the executive
// calls this when it concludes a processor is gone so routing to and from
// it stops. Local only — the hub's control plane is the authority that
// propagates deaths cluster-wide (it detects them on the control
// connection, or the coordinator-side executive marks them on the Hub,
// which broadcasts).
func (cl *Client) MarkPeerDown(p arch.ProcID) {
	cl.markPeersDown([]arch.ProcID{p}, false)
}

// markPeersDown records procs as dead and, when notify is set, tells the
// registered handler about the ones not already known dead. A dead
// processor hosted *here* (the hub declared this process's own processor
// dead — a deadline overrun the coordinator decided not to wait out) gets
// its mailbox killed so its blocked op loops unwind immediately.
func (cl *Client) markPeersDown(procs []arch.ProcID, notify bool) {
	cl.deadMu.Lock()
	var fresh []arch.ProcID
	for _, p := range procs {
		if cl.dead[p] {
			continue
		}
		cl.dead[p] = true
		fresh = append(fresh, p)
	}
	cl.deadMu.Unlock()
	if len(fresh) == 0 {
		return
	}
	cl.anyDead.Store(true)
	for _, p := range fresh {
		if box, ok := cl.boxes[p]; ok {
			box.Kill()
		}
	}
	if !notify {
		return
	}
	cl.pdMu.Lock()
	fn := cl.pdFn
	cl.pdMu.Unlock()
	if fn != nil {
		fn(fresh)
	}
}

// hasPeerDownHandler reports whether a failure handler is registered.
func (cl *Client) hasPeerDownHandler() bool {
	cl.pdMu.Lock()
	defer cl.pdMu.Unlock()
	return cl.pdFn != nil
}

// isDead reports whether p has been declared dead.
func (cl *Client) isDead(p arch.ProcID) bool {
	if !cl.anyDead.Load() {
		return false
	}
	cl.deadMu.Lock()
	defer cl.deadMu.Unlock()
	return cl.dead[p]
}

// containsPeerFailure handles a peer-mesh dial or write error to addr:
// with a handler registered, the processors at that address are marked
// dead and the handler notified (the hub independently detects the death
// on its control connection and broadcasts; this just keeps the local
// Send from aborting the cluster in the race window). Reports whether the
// failure was contained.
func (cl *Client) containsPeerFailure(addr string) bool {
	cl.pdMu.Lock()
	fn := cl.pdFn
	cl.pdMu.Unlock()
	if fn == nil {
		return false
	}
	cl.meshMu.Lock()
	procs := cl.addrProcs[addr]
	cl.meshMu.Unlock()
	if len(procs) == 0 {
		return false
	}
	cl.markPeersDown(procs, true)
	return true
}

func (cl *Client) failf(format string, args ...any) {
	cl.errMu.Lock()
	if cl.err == nil {
		cl.err = fmt.Errorf(format, args...)
	}
	cl.errMu.Unlock()
	if rec := cl.rec.Load(); rec != nil {
		rec.Record(-1, obsv.EvAbort, 0, -1, 0)
	}
	cl.Abort()
}

// SetTrace arms event recording on r: send/recv with byte sizes here,
// enqueue/park/wake through the mailboxes. Call before traffic starts.
func (cl *Client) SetTrace(r *obsv.Recorder) {
	cl.kl.Reset(r)
	cl.rec.Store(r)
	for p, b := range cl.boxes {
		b.SetTrace(r, int32(p), &cl.kl)
	}
}

// ClockOffsetNS reports the handshake-estimated offset onto the hub's wall
// clock (0 if this process never estimated one).
func (cl *Client) ClockOffsetNS() int64 { return cl.clockOff }

// QueueDepth reports the total delivered-but-unconsumed values across the
// client-local mailboxes (a point-in-time gauge for metrics).
func (cl *Client) QueueDepth() int {
	n := 0
	for _, b := range cl.boxes {
		n += b.Depth()
	}
	return n
}

// peersMap returns the cluster address map, waiting for the hub to
// broadcast it if necessary. The wait is bounded by the client's mesh-wait
// timeout (WithMeshWaitTimeout): the map only arrives once the whole
// cluster has attached, so an unbounded wait would turn one missing node
// process into a silent cluster-wide hang. nil means the transport aborted
// (or timed out and aborted) first.
func (cl *Client) peersMap() map[arch.ProcID]string {
	if m := cl.peers.Load(); m != nil {
		return *m
	}
	timer := time.AfterFunc(cl.meshWait, func() {
		cl.meshMu.Lock()
		cl.meshLate = true
		cl.meshMu.Unlock()
		cl.meshCond.Broadcast()
	})
	defer timer.Stop()
	cl.meshMu.Lock()
	for cl.peers.Load() == nil && !cl.meshDown && !cl.meshLate {
		cl.meshCond.Wait()
	}
	down := cl.meshDown
	cl.meshMu.Unlock()
	if m := cl.peers.Load(); m != nil {
		return *m
	}
	if !down {
		cl.failf("nettransport: no peers map from the hub within %v (did every node process start?)", cl.meshWait)
	}
	return nil
}

// Send injects a message from a client-local processor. Destinations on
// this client skip the codec; other node processes are reached directly
// over the peer mesh; hub-hosted processors ride the control connection.
func (cl *Client) Send(src, dst arch.ProcID, key transport.Key, payload value.Value) {
	if cl.anyDead.Load() && (cl.isDead(src) || cl.isDead(dst)) {
		return // uncounted, like loss in flight
	}
	cl.messages.Add(1)
	if cl.localSet[dst] {
		n := int64(value.SizeOf(payload))
		cl.bytesSent.Add(n)
		cl.bytesRecv.Add(n)
		if rec := cl.rec.Load(); rec != nil {
			id := cl.kl.Of(key)
			rec.Record(int32(src), obsv.EvSend, id, int32(dst), n)
			rec.Record(int32(dst), obsv.EvRecv, id, -1, n)
		}
		cl.boxes[dst].Deliver(key, payload)
		return
	}
	peers := cl.peersMap()
	if peers == nil {
		return // aborted while waiting for the address map; mailboxes are closed
	}
	f, err := encodeMessage(dst, key, payload)
	if err != nil {
		cl.failf("nettransport: encoding %v for processor %d: %v", key, dst, err)
		return
	}
	wireBytes := int64(len(f.head.b) - 4 - frameHeader + len(f.tail))
	cl.bytesSent.Add(wireBytes)
	if rec := cl.rec.Load(); rec != nil {
		rec.Record(int32(src), obsv.EvSend, cl.kl.Of(key), int32(dst), wireBytes)
	}
	w := cl.w
	peerAddr := ""
	if addr, ok := peers[dst]; ok {
		if w, err = cl.peerConn(addr); err != nil {
			putBuf(f.head)
			if cl.containsPeerFailure(addr) {
				return // dst's process is dead; the frame is loss in flight
			}
			cl.failf("nettransport: dialing peer %s for processor %d: %v", addr, dst, err)
			return
		}
		peerAddr = addr
		cl.direct.Add(1)
	}
	if err := w.send(f); err != nil && !cl.closing.Load() && !cl.aborted.Load() {
		if peerAddr != "" && cl.containsPeerFailure(peerAddr) {
			return
		}
		cl.failf("nettransport: sending to processor %d: %v", dst, err)
	}
}

// Recv blocks on a client-local processor's mailbox.
func (cl *Client) Recv(p arch.ProcID, key transport.Key) (value.Value, bool) {
	return cl.boxes[p].Recv(key)
}

// Receiver returns the mailbox slot for (p, key).
func (cl *Client) Receiver(p arch.ProcID, key transport.Key) transport.Receiver {
	return cl.boxes[p].Slot(key)
}

// Abort notifies the hub (which re-broadcasts to every other node), wakes
// any Send waiting for the peers map and unblocks all local mailboxes.
func (cl *Client) Abort() {
	cl.stopHeartbeat()
	cl.abortOnce.Do(func() {
		// aborted must be set before the abort-frame send: if that inline
		// write fails (the hub is often already gone here), the wconn's
		// onErr fires on this goroutine and would otherwise failf -> Abort
		// -> abortOnce.Do, self-deadlocking inside the Once.
		cl.aborted.Store(true)
		cl.meshMu.Lock()
		cl.meshDown = true
		cl.meshMu.Unlock()
		cl.meshCond.Broadcast()
		cl.w.send(controlFrame(abortDst, nil)) // best effort
		for _, b := range cl.boxes {
			b.Close()
		}
	})
}

// Sever tears the client down the way a crash would: no detach frame, no
// queue flush — every socket (control, peer listener, peer connections)
// is closed abruptly and local mailboxes are killed, dropping anything
// buffered. The hub observes exactly what a died node process produces
// (EOF without detach), which makes Sever the in-process stand-in for
// kill -9 in chaos tests.
func (cl *Client) Sever() {
	cl.closing.Store(true)
	cl.stopHeartbeat()
	cl.abortOnce.Do(func() {
		cl.aborted.Store(true)
		cl.meshMu.Lock()
		cl.meshDown = true
		cl.meshMu.Unlock()
		cl.meshCond.Broadcast()
		for _, b := range cl.boxes {
			b.Kill()
		}
	})
	cl.w.c.Close()
	cl.ln.Close()
	cl.pcMu.Lock()
	pcs := make([]*wconn, 0, len(cl.pconns))
	for _, w := range cl.pconns {
		pcs = append(pcs, w)
	}
	cl.pcMu.Unlock()
	for _, w := range pcs {
		w.c.Close()
	}
	cl.inMu.Lock()
	in := append([]net.Conn(nil), cl.inbound...)
	cl.inMu.Unlock()
	for _, c := range in {
		c.Close()
	}
	cl.readerWG.Wait()
}

// Close detaches from the cluster: peer connections flush and close, a
// detach frame tells the hub this is a clean shutdown (EOF without one is
// treated as a died node), the control connection flushes and closes, and
// the peer listener and its accepted connections are torn down.
func (cl *Client) Close() error {
	cl.closing.Store(true)
	cl.stopHeartbeat()
	cl.pcMu.Lock()
	pcs := make([]*wconn, 0, len(cl.pconns))
	for _, w := range cl.pconns {
		pcs = append(pcs, w)
	}
	cl.pcMu.Unlock()
	for _, w := range pcs {
		w.flushClose()
	}
	cl.w.send(controlFrame(detachDst, nil))
	cl.w.flushClose()
	cl.ln.Close()
	cl.inMu.Lock()
	in := append([]net.Conn(nil), cl.inbound...)
	cl.inMu.Unlock()
	for _, c := range in {
		c.Close()
	}
	cl.readerWG.Wait()
	cl.abortOnce.Do(func() {
		cl.aborted.Store(true)
		cl.meshMu.Lock()
		cl.meshDown = true
		cl.meshMu.Unlock()
		cl.meshCond.Broadcast()
		for _, b := range cl.boxes {
			b.Close()
		}
	})
	return nil
}

// Err reports the first client-side failure, or nil.
func (cl *Client) Err() error {
	cl.errMu.Lock()
	defer cl.errMu.Unlock()
	return cl.err
}

// Stats reports messages injected by client-local processors, how many
// frames went point to point over the peer mesh, and payload volume; safe
// to call concurrently with traffic. Relay hops are counted at the hub.
func (cl *Client) Stats() transport.Stats {
	return transport.Stats{
		Messages:  cl.messages.Load(),
		Direct:    cl.direct.Load(),
		BytesSent: cl.bytesSent.Load(),
		BytesRecv: cl.bytesRecv.Load(),
	}
}
