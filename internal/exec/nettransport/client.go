package nettransport

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"skipper/internal/arch"
	"skipper/internal/exec/transport"
	"skipper/internal/value"
)

// Client is the node-process side of the TCP backend: it hosts a subset of
// the architecture's processors and reaches every other processor through
// the hub. Traffic between two processors hosted by the same client never
// touches the wire.
type Client struct {
	localSet map[arch.ProcID]bool
	boxes    map[arch.ProcID]*transport.Mailbox
	w        *wconn

	errMu sync.Mutex
	err   error

	closing   atomic.Bool
	abortOnce sync.Once
	readerWG  sync.WaitGroup

	messages atomic.Int64
}

var _ transport.Transport = (*Client)(nil)

// Dial connects to the hub at addr, retrying until d elapses (node
// processes may be spawned before the coordinator finishes binding), then
// performs the handshake claiming local and starts the reader loop.
func Dial(addr string, fingerprint uint64, local []arch.ProcID, d time.Duration) (*Client, error) {
	deadline := time.Now().Add(d)
	var c net.Conn
	var err error
	for {
		c, err = net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("nettransport: dialing hub %s: %w", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if err := writeHello(c, hello{fingerprint: fingerprint, procs: local}); err != nil {
		c.Close()
		return nil, fmt.Errorf("nettransport: handshake: %w", err)
	}
	br := bufio.NewReaderSize(c, 64<<10)
	if err := readHelloReply(br); err != nil {
		c.Close()
		return nil, err
	}
	cl := &Client{
		localSet: map[arch.ProcID]bool{},
		boxes:    map[arch.ProcID]*transport.Mailbox{},
		w:        newWConn(c),
	}
	for _, p := range local {
		cl.localSet[p] = true
		cl.boxes[p] = transport.NewMailbox()
	}
	cl.readerWG.Add(1)
	go cl.readLoop(br)
	return cl, nil
}

// readLoop delivers hub frames to local mailboxes until EOF. EOF means the
// coordinator tore the deployment down: incoming traffic is over, so the
// mailboxes close (draining anything already delivered first).
func (cl *Client) readLoop(br *bufio.Reader) {
	defer cl.readerWG.Done()
	for {
		_, dst, key, payload, err := readFrame(br)
		if err != nil {
			if err != io.EOF && !cl.closing.Load() {
				cl.failf("nettransport: reading from hub: %v", err)
				return
			}
			cl.Abort()
			return
		}
		if dst == abortDst {
			cl.Abort()
			return
		}
		p := arch.ProcID(dst)
		box, ok := cl.boxes[p]
		if !ok {
			cl.failf("nettransport: hub sent frame for processor %d, not hosted here", p)
			return
		}
		v, err := value.Decode(payload)
		if err != nil {
			cl.failf("nettransport: decoding frame for processor %d key %v: %v", p, key, err)
			return
		}
		box.Deliver(key, v)
	}
}

func (cl *Client) failf(format string, args ...any) {
	cl.errMu.Lock()
	if cl.err == nil {
		cl.err = fmt.Errorf(format, args...)
	}
	cl.errMu.Unlock()
	cl.Abort()
}

// Send injects a message from a client-local processor. Destinations on
// this client skip the codec; everything else goes through the hub.
func (cl *Client) Send(src, dst arch.ProcID, key transport.Key, payload value.Value) {
	cl.messages.Add(1)
	if cl.localSet[dst] {
		cl.boxes[dst].Deliver(key, payload)
		return
	}
	frame, err := encodeMessage(dst, key, payload)
	if err != nil {
		cl.failf("nettransport: encoding %v for processor %d: %v", key, dst, err)
		return
	}
	if err := cl.w.writeFrame(frame); err != nil {
		cl.failf("nettransport: sending to processor %d: %v", dst, err)
	}
}

// Recv blocks on a client-local processor's mailbox.
func (cl *Client) Recv(p arch.ProcID, key transport.Key) (value.Value, bool) {
	return cl.boxes[p].Recv(key)
}

// Receiver returns the mailbox slot for (p, key).
func (cl *Client) Receiver(p arch.ProcID, key transport.Key) transport.Receiver {
	return cl.boxes[p].Slot(key)
}

// Abort notifies the hub (which re-broadcasts to every other node) and
// unblocks all local mailboxes.
func (cl *Client) Abort() {
	cl.abortOnce.Do(func() {
		cl.w.writeFrame(abortFrame()) // best effort
		for _, b := range cl.boxes {
			b.Close()
		}
	})
}

// Close detaches from the hub: the connection closes cleanly (the hub sees
// EOF after draining our frames) and the reader exits.
func (cl *Client) Close() error {
	cl.closing.Store(true)
	err := cl.w.c.Close()
	cl.readerWG.Wait()
	cl.abortOnce.Do(func() {
		for _, b := range cl.boxes {
			b.Close()
		}
	})
	return err
}

// Err reports the first client-side failure, or nil.
func (cl *Client) Err() error {
	cl.errMu.Lock()
	defer cl.errMu.Unlock()
	return cl.err
}

// Stats reports messages injected by client-local processors. Relay hops
// are counted at the hub.
func (cl *Client) Stats() transport.Stats {
	return transport.Stats{Messages: cl.messages.Load()}
}
