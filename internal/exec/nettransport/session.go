package nettransport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"skipper/internal/arch"
	"skipper/internal/exec/transport"
	"skipper/internal/obsv"
	"skipper/internal/value"
)

// maxPending bounds the session's per-processor backlog of frames buffered
// for a processor that has not attached yet. A deployment where a node never
// starts would otherwise accumulate frames without limit; hitting the cap
// fails the session instead.
const maxPending = 1024

// Session is one deployment's control plane on a FleetHub: it owns the
// attachment state for a single fingerprinted schedule — which processors
// are local, which have attached remotely, the pre-attach frame backlog, the
// peer address map and the death bookkeeping. A FleetHub multiplexes many
// concurrent Sessions over one listener; the hello fingerprint selects the
// session, so frames from different jobs sharing a worker can never cross
// (and the peer mesh re-validates the same fingerprint on every data
// connection). A Session is itself a transport.Transport for the processors
// hosted in the hub process (typically processor 0, which usually holds the
// input/output nodes).
type Session struct {
	f  *FleetHub
	a  *arch.Arch
	fp uint64
	hb time.Duration // heartbeat interval; 0 = no liveness monitoring

	localSet map[arch.ProcID]bool
	boxes    map[arch.ProcID]*transport.Mailbox

	mu       sync.Mutex
	remote   map[arch.ProcID]*wconn // attached remote processors
	dataAddr map[arch.ProcID]string // their peer data listeners
	pending  map[arch.ProcID][]outFrame
	conns    []*wconn
	states   []*connState // per-connection liveness bookkeeping
	dead     map[arch.ProcID]bool
	// departed marks processors whose connection detached cleanly (worker
	// churn). Frames addressed to a departed processor are dropped — they
	// belong to the session epoch that ended with the detach — and a
	// re-attach under the same processor ID starts from a clean slate
	// instead of resurrecting stale pending frames or peers-map entries.
	departed    map[arch.ProcID]bool
	ready       chan struct{} // closed when every non-local processor is attached
	readyClosed bool          // guards close(ready) across detach/re-attach cycles
	closed      bool

	// pdFn, when registered via OnPeerDown, switches peer-death handling
	// from abort-the-cluster to contain-and-notify.
	pdMu sync.Mutex
	pdFn transport.PeerDown

	errMu  sync.Mutex
	err    error
	failed chan struct{} // closed on the first failf, so WaitReady fails fast

	closing   atomic.Bool
	aborted   atomic.Bool
	anyDead   atomic.Bool // fast path: skip the dead-map lookup while nobody died
	abortOnce sync.Once
	closeOnce sync.Once
	severOnce sync.Once

	messages  atomic.Int64
	hops      atomic.Int64
	bytesSent atomic.Int64
	bytesRecv atomic.Int64

	// rec, when set via SetTrace before the run's traffic starts, receives
	// send/recv/abort events for hub-local processors; relayed frames are
	// counted as hops only (the endpoints record their own send/recv).
	// Atomic because accept and per-connection read loops are alive from
	// OpenSession on, before the machine gets the chance to arm tracing.
	rec atomic.Pointer[obsv.Recorder]
	kl  transport.KeyLabels
}

var (
	_ transport.Transport       = (*Session)(nil)
	_ transport.FailureNotifier = (*Session)(nil)
	_ transport.PeerDowner      = (*Session)(nil)
)

// connState is the session's per-connection liveness bookkeeping: lastHeard
// is bumped on every frame the read loop sees (heartbeats included), and the
// fleet monitor condemns a connection whose node has gone silent for several
// heartbeat intervals.
type connState struct {
	w         *wconn
	procs     []arch.ProcID
	lastHeard atomic.Int64 // UnixNano of the most recent frame
	condemned atomic.Bool  // the monitor declared it dead; readLoop exits silently
	gone      atomic.Bool  // readLoop exited (detach, death, or teardown)
}

func newSession(f *FleetHub, a *arch.Arch, fingerprint uint64, local []arch.ProcID) *Session {
	s := &Session{
		f:        f,
		a:        a,
		fp:       fingerprint,
		hb:       f.hb,
		localSet: map[arch.ProcID]bool{},
		boxes:    map[arch.ProcID]*transport.Mailbox{},
		remote:   map[arch.ProcID]*wconn{},
		dataAddr: map[arch.ProcID]string{},
		pending:  map[arch.ProcID][]outFrame{},
		dead:     map[arch.ProcID]bool{},
		departed: map[arch.ProcID]bool{},
		ready:    make(chan struct{}),
		failed:   make(chan struct{}),
	}
	for _, p := range local {
		s.localSet[p] = true
		s.boxes[p] = transport.NewMailbox()
	}
	if len(local) == a.N {
		s.readyClosed = true
		close(s.ready) // degenerate single-process deployment
	}
	return s
}

// Fingerprint is the schedule fingerprint (possibly salted per job by the
// scheduler) that namespaces this session on its hub.
func (s *Session) Fingerprint() uint64 { return s.fp }

// Addr is the address clients of this session should dial — the owning
// fleet hub's listener.
func (s *Session) Addr() string { return s.f.Addr() }

// WaitReady blocks until every non-local processor has attached, the
// session fails, or d elapses. A failure (bad handshake, node death during
// attach) returns immediately rather than burning the rest of the timeout:
// callers otherwise sit out the full attach window to learn about an error
// that was recorded milliseconds in.
func (s *Session) WaitReady(d time.Duration) error {
	select {
	case <-s.ready:
		return nil
	case <-s.failed:
		return s.Err()
	case <-time.After(d):
		if err := s.Err(); err != nil {
			return err
		}
		return fmt.Errorf("nettransport: not all processors attached within %v", d)
	}
}

// Ready reports whether the deployment has been fully attached at least
// once — without blocking, unlike WaitReady. Schedulers use it post-mortem
// to tell an attempt that genuinely started (and deserves to burn a retry
// budget) from one whose workers died before ever attaching.
func (s *Session) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readyClosed
}

// serveConn validates one client handshake against this session, attaches
// its processors and runs its reader loop. The handshake ack is written
// before the connection gets a writer, so no queued frame can ever precede
// it on the wire; the backlog flush is queued while the registration lock is
// held, so a concurrent Send cannot order ahead of frames buffered before
// attach.
func (s *Session) serveConn(c net.Conn, br *bufio.Reader, hel hello) {
	if reject := s.validateHello(hel); reject != "" {
		writeHelloReply(c, reject, false)
		c.Close()
		return
	}
	// The shm upgrade (DESIGN.md §14): the client created both rings before
	// its hello; map them before the ack so the reply's accept byte is
	// truthful, and fall back to the plain socket if either mapping fails.
	// The client sends nothing between hello and reply, so starting the
	// shmConn's bell loop (which owns socket reads from here on) cannot
	// steal frame bytes, and no doorbell can arrive at the client before it
	// has read the reply — sleep flags are armed only by running ring
	// consumers, which exist on neither end yet.
	var cw wire = c
	var sc *shmConn
	if hel.shmToHub != "" {
		in, ierr := openShmRing(hel.shmToHub)
		if ierr == nil {
			out, oerr := openShmRing(hel.shmFromHub)
			if oerr == nil {
				sc = newShmConn(c, in, out)
				cw = sc
			} else {
				in.unmap()
			}
		}
	}
	if err := writeHelloReply(c, "", sc != nil); err != nil {
		if sc != nil {
			sc.Close()
		} else {
			c.Close()
		}
		s.failf("nettransport: handshake ack to %v: %v", hel.procs, err)
		return
	}
	if sc != nil {
		br = bufio.NewReaderSize(sc, shmReadBufSize)
	}
	w := newWConn(cw, func(err error) {
		// A write failure to a node already declared dead is expected noise
		// (the peer-down broadcast races its socket teardown), not a cluster
		// fault.
		if !s.closing.Load() && !s.aborted.Load() && !s.allDead(hel.procs) {
			s.failf("nettransport: writing to node %v: %v", hel.procs, err)
		}
	}, &s.rec)
	cs := &connState{w: w, procs: hel.procs}
	cs.lastHeard.Store(time.Now().UnixNano())
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		w.flushClose()
		return
	}
	for _, p := range hel.procs {
		delete(s.departed, p) // re-attach after clean detach: fresh epoch
		s.remote[p] = w
		s.dataAddr[p] = hel.dataAddr
		for _, f := range s.pending[p] {
			// enqueue, not send: send's inline fast path would perform a
			// blocking socket write under s.mu (stalling all routing on one
			// slow client) and on failure would invoke onErr -> failf ->
			// Abort -> s.mu.Lock on this goroutine, a self-deadlock.
			w.enqueue(f)
		}
		delete(s.pending, p)
	}
	s.conns = append(s.conns, w)
	s.states = append(s.states, cs)
	allAttached := len(s.remote)+len(s.localSet) == s.a.N
	firstComplete := false
	var peersFrame []byte
	var conns []*wconn
	if allAttached {
		peersFrame = encodePeers(s.dataAddr)
		conns = append(conns, s.conns...)
		firstComplete = !s.readyClosed
		s.readyClosed = true
	}
	s.mu.Unlock()
	if allAttached {
		for _, pw := range conns {
			pw.send(controlFrame(peersDst, peersFrame))
		}
		if firstComplete {
			close(s.ready)
		}
	}
	detached := s.readLoop(br, cs)
	cs.gone.Store(true)
	if detached {
		s.detach(cs)
	}
}

// detach retires a cleanly departed connection: its processors leave the
// attachment and peer-address maps, any frames buffered for them are
// dropped, and they are marked departed so in-flight traffic addressed to
// the old epoch is discarded rather than delivered to a future re-attach.
func (s *Session) detach(cs *connState) {
	s.mu.Lock()
	for _, p := range cs.procs {
		if s.remote[p] != cs.w {
			continue // a re-attach already superseded this connection
		}
		delete(s.remote, p)
		delete(s.dataAddr, p)
		s.departed[p] = true
		for _, f := range s.pending[p] {
			putBuf(f.head)
		}
		delete(s.pending, p)
	}
	for i, w := range s.conns {
		if w == cs.w {
			s.conns = append(s.conns[:i], s.conns[i+1:]...)
			break
		}
	}
	for i, st := range s.states {
		if st == cs {
			s.states = append(s.states[:i], s.states[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// validateHello returns a rejection reason, or "" to accept. The
// fingerprint was already matched by the fleet hub when it routed the
// connection here.
func (s *Session) validateHello(hel hello) string {
	if len(hel.procs) == 0 {
		return "no processors claimed"
	}
	if hel.dataAddr == "" {
		return "no peer data listener address"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range hel.procs {
		if int(p) < 0 || int(p) >= s.a.N {
			return fmt.Sprintf("processor %d outside architecture %s", p, s.a.Name)
		}
		if s.localSet[p] {
			return fmt.Sprintf("processor %d is hosted by the coordinator", p)
		}
		if _, taken := s.remote[p]; taken {
			return fmt.Sprintf("processor %d already attached", p)
		}
	}
	return ""
}

// readLoop routes one client's incoming frames and reports whether the
// connection ended with a clean detach. A connection that reaches EOF
// without announcing a detach is a died node process — over the peer mesh
// the hub no longer sees data frames stop flowing, so process death must be
// detected on the control plane. Without a peer-down handler the whole
// session aborts (the legacy behavior, and the only safe default); with
// one, the death is contained and the executive notified.
func (s *Session) readLoop(br *bufio.Reader, cs *connState) bool {
	procs := cs.procs
	detached := false
	for {
		n, dst, key, err := readFrameHeader(br)
		if err != nil {
			if s.closing.Load() || s.aborted.Load() || (err == io.EOF && detached) {
				return detached
			}
			if cs.condemned.Load() {
				return false // the monitor already declared this node dead
			}
			if err == io.EOF {
				s.connDeath(procs, fmt.Sprintf("nettransport: node %v closed its connection without detaching (process died?)", procs))
				return false
			}
			s.connDeath(procs, fmt.Sprintf("nettransport: reading from node %v: %v", procs, err))
			return false
		}
		cs.lastHeard.Store(time.Now().UnixNano())
		// Frames for hub-hosted processors stream-decode straight off the
		// connection — unless the sender was declared dead, in which case the
		// payload must be slurped anyway to keep the stream in sync.
		if s.localSet[arch.ProcID(dst)] && !(s.anyDead.Load() && s.allDead(procs)) {
			if serr := s.deliverLocalStream(br, arch.ProcID(dst), key, n-frameHeader); serr != nil {
				if s.closing.Load() || s.aborted.Load() || cs.condemned.Load() {
					return detached
				}
				s.connDeath(procs, fmt.Sprintf("nettransport: reading from node %v: %v", procs, serr))
				return false
			}
			continue
		}
		fb, payload, err := readFrameRest(br, n, dst, key)
		if err != nil {
			if s.closing.Load() || s.aborted.Load() || cs.condemned.Load() {
				return detached
			}
			s.connDeath(procs, fmt.Sprintf("nettransport: reading from node %v: %v", procs, err))
			return false
		}
		switch dst {
		case abortDst:
			putBuf(fb)
			s.Abort()
			return detached
		case detachDst:
			putBuf(fb)
			detached = true
			continue
		case heartbeatDst:
			putBuf(fb)
			continue
		case peersDst:
			putBuf(fb)
			s.failf("nettransport: node %v sent a peers frame", procs)
			return detached
		case batchDst:
			berr := forEachBatched(payload, func(d uint32, k transport.Key, body []byte) error {
				return s.nodeFrame(d, k, body, procs, &detached)
			})
			putBuf(fb)
			if berr == errStopRead {
				return detached
			}
			if berr != nil {
				s.failf("nettransport: batch from node %v: %v", procs, berr)
				return detached
			}
			continue
		}
		if s.anyDead.Load() && s.allDead(procs) {
			// A deadline-suspected node may still be running; anything it
			// sends after being declared dead is stale and dropped.
			putBuf(fb)
			continue
		}
		p := arch.ProcID(dst)
		if s.localSet[p] {
			s.deliverLocal(p, key, payload)
			putBuf(fb)
			continue
		}
		s.hops.Add(1)
		s.routeRemote(p, outFrame{head: fb}, procs)
	}
}

// nodeFrame dispatches one frame unpacked from a node's batch. Unlike the
// top-level loop — which relays a remote-bound frame by handing its arena
// buffer straight to the destination's connection — a batched sub-frame
// aliases the batch buffer, so relaying re-frames it into its own buffer.
func (s *Session) nodeFrame(dst uint32, key transport.Key, payload []byte, procs []arch.ProcID, detached *bool) error {
	switch dst {
	case abortDst:
		s.Abort()
		return errStopRead
	case detachDst:
		*detached = true
		return nil
	case heartbeatDst:
		return nil
	case peersDst:
		s.failf("nettransport: node %v sent a peers frame", procs)
		return errStopRead
	}
	if s.anyDead.Load() && s.allDead(procs) {
		return nil // stale traffic from a declared-dead node, dropped
	}
	p := arch.ProcID(dst)
	if s.localSet[p] {
		s.deliverLocal(p, key, payload)
		return nil
	}
	fb := getBuf(4 + frameHeader + len(payload))
	buf := binary.BigEndian.AppendUint32(fb.b, uint32(frameHeader+len(payload)))
	buf = appendHeader(buf, dst, key)
	fb.b = append(buf, payload...)
	s.hops.Add(1)
	s.routeRemote(p, outFrame{head: fb}, procs)
	return nil
}

// connDeath handles a connection whose node died (EOF without detach, read
// error, or heartbeat timeout). With no peer-down handler registered the
// legacy behavior stands: the death is a session-wide fatal error. With a
// handler, the failure is contained — the node's processors are marked
// dead, surviving nodes are told, and the executive decides what survives.
func (s *Session) connDeath(procs []arch.ProcID, legacy string) {
	s.pdMu.Lock()
	fn := s.pdFn
	s.pdMu.Unlock()
	if fn == nil {
		s.failf("%s", legacy)
		return
	}
	s.peerDown(procs)
}

// OnPeerDown registers the executive's failure handler, switching peer
// death from abort-the-cluster to contain-and-notify. Register before the
// run's traffic starts.
func (s *Session) OnPeerDown(fn transport.PeerDown) {
	s.pdMu.Lock()
	s.pdFn = fn
	s.pdMu.Unlock()
}

// MarkPeerDown declares p dead without invoking the handler: the executive
// calls this when it concludes a processor is gone (task deadline overrun)
// so the transport stops routing to it and tells the other nodes. The
// hub-side observation path (connDeath) notifies; this one does not, as
// the caller already knows.
func (s *Session) MarkPeerDown(p arch.ProcID) {
	s.markDown([]arch.ProcID{p})
}

// peerDown marks procs dead and notifies the registered handler of the
// ones not already known dead.
func (s *Session) peerDown(procs []arch.ProcID) {
	fresh := s.markDown(procs)
	if len(fresh) == 0 {
		return
	}
	s.pdMu.Lock()
	fn := s.pdFn
	s.pdMu.Unlock()
	if fn != nil {
		fn(fresh)
	}
}

// markDown records procs as dead, drops their buffered frames, and
// broadcasts a peer-down control frame so every node contains the same
// failure. Returns the procs that were not already dead.
func (s *Session) markDown(procs []arch.ProcID) []arch.ProcID {
	s.mu.Lock()
	var fresh []arch.ProcID
	for _, p := range procs {
		if int(p) < 0 || int(p) >= s.a.N || s.dead[p] || s.localSet[p] {
			continue
		}
		s.dead[p] = true
		fresh = append(fresh, p)
		for _, f := range s.pending[p] {
			putBuf(f.head)
		}
		delete(s.pending, p)
	}
	conns := append([]*wconn(nil), s.conns...)
	s.mu.Unlock()
	if len(fresh) == 0 {
		return nil
	}
	s.anyDead.Store(true)
	payload := encodeProcs(fresh)
	for _, w := range conns {
		// enqueue: the dead node's own conn is among these and its socket may
		// be mid-teardown; a blocking inline write here could stall or error
		// from the caller's goroutine.
		w.enqueue(controlFrame(peerDownDst, payload))
	}
	return fresh
}

// allDead reports whether every processor in procs has been declared dead
// (vacuously false for an empty list).
func (s *Session) allDead(procs []arch.ProcID) bool {
	if !s.anyDead.Load() || len(procs) == 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range procs {
		if !s.dead[p] {
			return false
		}
	}
	return true
}

// isDead reports whether p has been declared dead.
func (s *Session) isDead(p arch.ProcID) bool {
	if !s.anyDead.Load() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dead[p]
}

// routeRemote forwards a frame to dst's control connection, or buffers it
// (up to maxPending frames) if dst has not attached yet. Frames for a
// departed processor (clean detach) are dropped: they belong to the epoch
// that ended with the detach.
func (s *Session) routeRemote(p arch.ProcID, f outFrame, from []arch.ProcID) {
	if int(p) < 0 || int(p) >= s.a.N {
		putBuf(f.head)
		s.failf("nettransport: frame from node %v for unknown processor %d", from, p)
		return
	}
	if s.isDead(p) {
		putBuf(f.head) // frames to the dead are dropped, like loss in flight
		return
	}
	s.mu.Lock()
	if s.departed[p] {
		s.mu.Unlock()
		putBuf(f.head)
		return
	}
	w, ok := s.remote[p]
	if !ok {
		if len(s.pending[p]) >= maxPending {
			s.mu.Unlock()
			putBuf(f.head)
			s.failf("nettransport: backlog for unattached processor %d exceeds %d frames", p, maxPending)
			return
		}
		f.capture() // buffered frames must not borrow sender memory
		s.pending[p] = append(s.pending[p], f)
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	if err := w.send(f); err != nil && !s.closing.Load() && !s.aborted.Load() {
		s.failf("nettransport: forwarding to processor %d: %v", p, err)
	}
}

// deliverLocal decodes a frame payload and delivers it to a hub-hosted
// processor's mailbox.
func (s *Session) deliverLocal(p arch.ProcID, key transport.Key, payload []byte) {
	v, err := value.Decode(payload)
	if err != nil {
		s.failf("nettransport: decoding frame for processor %d key %v: %v", p, key, err)
		return
	}
	s.bytesRecv.Add(int64(len(payload)))
	if rec := s.rec.Load(); rec != nil {
		rec.Record(int32(p), obsv.EvRecv, s.kl.Of(key), -1, int64(len(payload)))
	}
	s.boxes[p].Deliver(key, v)
}

// deliverLocalStream is deliverLocal reading the payload straight off the
// connection (see Client.deliverStream): pixel slabs land in their arena
// image without an intermediate frame buffer. An error leaves br mid-frame;
// the caller must stop reading the connection.
func (s *Session) deliverLocalStream(br *bufio.Reader, p arch.ProcID, key transport.Key, n int) error {
	v, err := value.DecodeStream(br, n)
	if err != nil {
		return fmt.Errorf("decoding frame for processor %d key %v: %v", p, key, err)
	}
	s.bytesRecv.Add(int64(n))
	if rec := s.rec.Load(); rec != nil {
		rec.Record(int32(p), obsv.EvRecv, s.kl.Of(key), -1, int64(n))
	}
	s.boxes[p].Deliver(key, v)
	return nil
}

func (s *Session) failf(format string, args ...any) {
	s.errMu.Lock()
	first := s.err == nil
	if first {
		s.err = fmt.Errorf(format, args...)
	}
	s.errMu.Unlock()
	if first {
		close(s.failed)
	}
	if rec := s.rec.Load(); rec != nil {
		rec.Record(-1, obsv.EvAbort, 0, -1, 0)
	}
	s.Abort()
}

// SetTrace arms event recording on r: send/recv with byte sizes for
// hub-local processors, enqueue/park/wake through the mailboxes. Call
// before traffic starts.
func (s *Session) SetTrace(r *obsv.Recorder) {
	s.kl.Reset(r)
	s.rec.Store(r)
	for p, b := range s.boxes {
		b.SetTrace(r, int32(p), &s.kl)
	}
}

// QueueDepth reports the total delivered-but-unconsumed values across the
// hub-local mailboxes (a point-in-time gauge for metrics).
func (s *Session) QueueDepth() int {
	n := 0
	for _, b := range s.boxes {
		n += b.Depth()
	}
	return n
}

// ClusterInfo is a session's point-in-time view of its deployment, exposed
// on the coordinator's /varz endpoint.
type ClusterInfo struct {
	// Ready is true once every non-local processor has attached and the
	// peer address map has been broadcast.
	Ready bool `json:"ready"`
	// Local lists the coordinator-hosted processors, Attached the remotely
	// attached ones.
	Local    []int `json:"local"`
	Attached []int `json:"attached"`
	// Pending counts frames buffered for processors not yet attached.
	Pending int `json:"pending"`
	// Dead lists processors declared dead by failure detection.
	Dead []int `json:"dead,omitempty"`
	// Departed lists processors that detached cleanly and have not
	// re-attached (elastic-fleet churn).
	Departed []int `json:"departed,omitempty"`
}

// ClusterInfo snapshots the attachment state of the session.
func (s *Session) ClusterInfo() ClusterInfo {
	var ci ClusterInfo
	for p := range s.localSet {
		ci.Local = append(ci.Local, int(p))
	}
	sort.Ints(ci.Local)
	select {
	case <-s.ready:
		ci.Ready = true
	default:
	}
	s.mu.Lock()
	for p := range s.remote {
		ci.Attached = append(ci.Attached, int(p))
	}
	for _, fs := range s.pending {
		ci.Pending += len(fs)
	}
	for p := range s.dead {
		ci.Dead = append(ci.Dead, int(p))
	}
	for p := range s.departed {
		ci.Departed = append(ci.Departed, int(p))
	}
	s.mu.Unlock()
	sort.Ints(ci.Attached)
	sort.Ints(ci.Dead)
	sort.Ints(ci.Departed)
	return ci
}

// Send injects a message from a hub-local processor. Local destinations
// skip the codec entirely (the payload is passed by reference, exactly as
// the mem backend does); remote ones are flattened and shipped over the
// destination's control connection.
func (s *Session) Send(src, dst arch.ProcID, key transport.Key, payload value.Value) {
	if s.isDead(dst) {
		return // uncounted, like loss in flight
	}
	s.messages.Add(1)
	if s.localSet[dst] {
		n := int64(value.SizeOf(payload))
		s.bytesSent.Add(n)
		s.bytesRecv.Add(n)
		if rec := s.rec.Load(); rec != nil {
			id := s.kl.Of(key)
			rec.Record(int32(src), obsv.EvSend, id, int32(dst), n)
			rec.Record(int32(dst), obsv.EvRecv, id, -1, n)
		}
		s.boxes[dst].Deliver(key, payload)
		return
	}
	f, err := encodeMessage(dst, key, payload)
	if err != nil {
		s.failf("nettransport: encoding %v for processor %d: %v", key, dst, err)
		return
	}
	wireBytes := int64(len(f.head.b) - 4 - frameHeader + len(f.tail))
	s.bytesSent.Add(wireBytes)
	if rec := s.rec.Load(); rec != nil {
		rec.Record(int32(src), obsv.EvSend, s.kl.Of(key), int32(dst), wireBytes)
	}
	s.routeRemote(dst, f, nil)
}

// Recv blocks on a hub-local processor's mailbox.
func (s *Session) Recv(p arch.ProcID, key transport.Key) (value.Value, bool) {
	return s.boxes[p].Recv(key)
}

// Receiver returns the mailbox slot for (p, key).
func (s *Session) Receiver(p arch.ProcID, key transport.Key) transport.Receiver {
	return s.boxes[p].Slot(key)
}

// Abort propagates a session-wide abort: every attached client gets an
// abort control frame, and all local mailboxes unblock. Other sessions on
// the same fleet hub are untouched.
func (s *Session) Abort() {
	s.abortOnce.Do(func() {
		s.aborted.Store(true)
		s.mu.Lock()
		conns := append([]*wconn(nil), s.conns...)
		s.mu.Unlock()
		for _, w := range conns {
			w.send(controlFrame(abortDst, nil)) // best effort: the conn may already be gone
		}
		for _, b := range s.boxes {
			b.Close()
		}
	})
}

// sever tears the session down the way a coordinator crash would: no abort
// broadcast, no queue flush — every control connection closes abruptly and
// local mailboxes are killed.
func (s *Session) sever() {
	s.severOnce.Do(func() {
		s.closing.Store(true)
		s.mu.Lock()
		s.closed = true
		conns := append([]*wconn(nil), s.conns...)
		s.mu.Unlock()
		for _, w := range conns {
			w.c.Close()
		}
		for _, b := range s.boxes {
			b.Kill()
		}
		s.f.dropSession(s)
	})
}

// Close aborts the session and tears down its connections (flushing queued
// frames, bounded by flushTimeout), then retires it from the fleet hub so
// the fingerprint can be reused. The hub's listener and other sessions keep
// running; connection reader goroutines are owned by the fleet hub and
// reaped by its Close.
func (s *Session) Close() error {
	s.closeOnce.Do(func() {
		s.closing.Store(true)
		s.mu.Lock()
		s.closed = true
		conns := append([]*wconn(nil), s.conns...)
		pending := s.pending
		s.pending = map[arch.ProcID][]outFrame{}
		s.mu.Unlock()
		for _, fs := range pending {
			for _, f := range fs {
				putBuf(f.head)
			}
		}
		s.Abort()
		for _, w := range conns {
			w.flushClose()
		}
		s.f.dropSession(s)
	})
	return nil
}

// Err reports the first session-side failure, or nil.
func (s *Session) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// Stats reports messages injected by hub-local processors, frames the hub
// relayed between node processes (zero once the mesh is up: every
// client↔client frame then travels point to point) and payload volume;
// safe to call concurrently with traffic.
func (s *Session) Stats() transport.Stats {
	return transport.Stats{
		Messages:  s.messages.Load(),
		Hops:      s.hops.Load(),
		BytesSent: s.bytesSent.Load(),
		BytesRecv: s.bytesRecv.Load(),
	}
}
