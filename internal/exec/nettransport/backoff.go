package nettransport

import (
	"math/rand"
	"time"
)

// backoff produces jittered exponentially growing sleep intervals for dial
// retries: 8+ node processes all retrying a slow-binding coordinator on the
// same fixed interval arrive as a synchronized thundering herd; jitter
// spreads them out and the exponential growth keeps the steady-state retry
// load constant no matter how late the listener binds.
type backoff struct {
	d   time.Duration // current base interval, doubles per attempt
	cap time.Duration
}

const (
	backoffBase = 10 * time.Millisecond
	backoffCap  = time.Second
)

func newBackoff() *backoff {
	return &backoff{d: backoffBase, cap: backoffCap}
}

// next returns the sleep before the following attempt: uniformly jittered
// in [d/2, 3d/2) around the current base, which then doubles (capped).
func (b *backoff) next() time.Duration {
	d := b.d
	if b.d < b.cap {
		b.d *= 2
		if b.d > b.cap {
			b.d = b.cap
		}
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// sleep blocks for the next interval.
func (b *backoff) sleep() { time.Sleep(b.next()) }
