package nettransport

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"
)

// Address scheme: every listener and dial address in the backend is a plain
// "host:port" TCP address unless prefixed with "unix:", in which case the
// rest is a unix-domain socket path. The prefix travels everywhere an
// address does — the hub bind address, Hub.Addr, the hello's data-listener
// address, the peers map — so each endpoint independently dials the right
// network and a cluster can mix transports (a unix mesh under a TCP hub).

const unixScheme = "unix:"

// splitNetAddr resolves an address string to the (network, address) pair
// net.Dial and net.Listen expect.
func splitNetAddr(addr string) (network, address string) {
	if len(addr) > len(unixScheme) && addr[:len(unixScheme)] == unixScheme {
		return "unix", addr[len(unixScheme):]
	}
	return "tcp", addr
}

// joinNetAddr renders a listener's bound address back into scheme-prefixed
// string form, the inverse of splitNetAddr.
func joinNetAddr(ln net.Listener) string {
	if ln.Addr().Network() == "unix" {
		return unixScheme + ln.Addr().String()
	}
	return ln.Addr().String()
}

// listenNet binds a scheme-prefixed address, with unix-domain socket
// hygiene: a process killed with SIGKILL leaves its socket file behind, and
// the next bind on that path fails with EADDRINUSE even though nobody is
// listening. When that happens, a probe connect distinguishes the two
// cases — a live listener accepts (the address really is in use, surface
// the original error), a dead one refuses the connection — and a refused
// probe unlinks the stale file and retries the bind once.
func listenNet(addr string) (net.Listener, error) {
	network, address := splitNetAddr(addr)
	ln, err := net.Listen(network, address)
	if err == nil || network != "unix" || !errors.Is(err, syscall.EADDRINUSE) {
		return ln, err
	}
	probe, perr := net.DialTimeout("unix", address, 250*time.Millisecond)
	if perr == nil {
		probe.Close()
		return nil, err // a live process is accepting on this path
	}
	if !errors.Is(perr, syscall.ECONNREFUSED) {
		return nil, err
	}
	if rmErr := os.Remove(address); rmErr != nil && !os.IsNotExist(rmErr) {
		return nil, err
	}
	return net.Listen(network, address)
}

// setNoDelay disables Nagle on TCP connections; unix-domain sockets have no
// coalescing delay to disable.
func setNoDelay(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
}

// isLoopback reports whether a TCP address is on a loopback interface —
// the signal that the remote end lives on this host.
func isLoopback(a net.Addr) bool {
	ta, ok := a.(*net.TCPAddr)
	return ok && ta.IP.IsLoopback()
}

// peerSockSeq disambiguates the unix peer-listener socket paths of clients
// sharing one process.
var peerSockSeq atomic.Int64

// sunPathMax bounds the unix socket paths this package mints. The kernel
// limit on sun_path is 108 bytes on Linux and 104 on the BSDs (including
// the NUL); 100 leaves margin on both.
const sunPathMax = 100

// shortTempDir is the temp dir for sockets and shm segments, preferring a
// short mount when $TMPDIR is deep enough to threaten sun_path.
func shortTempDir() string {
	d := os.TempDir()
	if len(d) <= sunPathMax/2 {
		return d
	}
	if st, err := os.Stat("/tmp"); err == nil && st.IsDir() {
		return "/tmp"
	}
	return d
}

// ShortSockPath mints a unique unix socket path guaranteed to fit inside
// sun_path. A deep $TMPDIR (nested CI workspaces, per-test MkdirTemp
// trees) silently produced paths the kernel truncates or rejects at bind
// time; the basename here embeds pid + sequence for uniqueness, and when
// even the short temp dir pushes the path over the limit the whole name is
// hashed down to a fixed-size basename under /tmp.
func ShortSockPath(tag string) string {
	name := fmt.Sprintf("%s-%d-%d.sock", tag, os.Getpid(), peerSockSeq.Add(1))
	if p := filepath.Join(shortTempDir(), name); len(p) <= sunPathMax {
		return p
	}
	h := fnv.New64a()
	io.WriteString(h, filepath.Join(os.TempDir(), name))
	return fmt.Sprintf("/tmp/sk-%016x.sock", h.Sum64())
}

// sameHost reports whether both ends of an established connection live on
// this machine — the precondition for the shared-memory upgrade.
func sameHost(c net.Conn) bool {
	return c.RemoteAddr().Network() == "unix" ||
		(isLoopback(c.RemoteAddr()) && isLoopback(c.LocalAddr()))
}

// listenPeer binds the client's peer data listener next to an established
// control connection c. The data plane follows the control plane's locality
// ("auto"): a unix or loopback control connection means the hub — and,
// because a hub on a loopback address is unreachable from anywhere else,
// every peer of this deployment — is on this host, so the listener upgrades
// to a unix-domain socket and the farm round trip sheds the TCP stack.
// Explicit "tcp"/"unix"/"shm" (WithDataPlane) override the inference for
// mixed deployments; "shm" listens on a unix socket like "unix" — the
// socket remains the handshake and doorbell channel — and the ring upgrade
// itself is negotiated per connection in the peer hello.
func listenPeer(c net.Conn, dataPlane string) (net.Listener, error) {
	useUnix := false
	switch dataPlane {
	case "unix", "shm":
		useUnix = true
	case "tcp":
	default: // auto
		useUnix = sameHost(c)
	}
	if useUnix {
		return net.Listen("unix", ShortSockPath("skipper-peer"))
	}
	host, _, err := net.SplitHostPort(c.LocalAddr().String())
	if err != nil {
		return nil, fmt.Errorf("nettransport: control address: %w", err)
	}
	return net.Listen("tcp", net.JoinHostPort(host, "0"))
}
