package nettransport

import (
	"time"

	"skipper/internal/arch"
	"skipper/internal/exec/transport"
)

// Hub is the classic one-deployment coordinator: a FleetHub carrying exactly
// one Session, with both lifecycles fused. It survives as the convenient
// shape for `skipper-run`-style runs — compile, attach a cluster sized for
// the schedule, run once, exit — while the service control plane
// (internal/serve) uses FleetHub and per-job Sessions directly. All
// transport behavior (attachment, pre-attach buffering, the peers-map
// broadcast, failure containment) lives on the embedded Session.
type Hub struct {
	*Session
	f *FleetHub
}

var (
	_ transport.Transport       = (*Hub)(nil)
	_ transport.FailureNotifier = (*Hub)(nil)
	_ transport.PeerDowner      = (*Hub)(nil)
)

// NewHub listens on addr (e.g. "127.0.0.1:0"; see Addr for the bound
// address) and serves the architecture's processors: local are hosted in
// this process, all others must attach over the network with a matching
// schedule fingerprint.
func NewHub(addr string, a *arch.Arch, fingerprint uint64, local []arch.ProcID, opts ...Option) (*Hub, error) {
	f, err := NewFleetHub(addr, opts...)
	if err != nil {
		return nil, err
	}
	s, err := f.OpenSession(a, fingerprint, local)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Hub{Session: s, f: f}, nil
}

// Fleet exposes the underlying fleet hub (one session deep for a plain Hub;
// tests and the serve scheduler open more).
func (h *Hub) Fleet() *FleetHub { return h.f }

// Addr is the address clients should dial ("unix:"-prefixed when the hub
// listens on a unix-domain socket).
func (h *Hub) Addr() string { return h.f.Addr() }

// WaitReady blocks until every non-local processor has attached, the hub
// fails, or d elapses.
func (h *Hub) WaitReady(d time.Duration) error { return h.Session.WaitReady(d) }

// Sever tears the hub down the way a coordinator crash would: no abort
// broadcast, no queue flush — the listener and every control connection
// close abruptly and local mailboxes are killed. Attached clients observe
// exactly what a died coordinator produces (EOF on the control connection),
// which makes Sever the in-process stand-in for kill -9 in chaos tests.
func (h *Hub) Sever() {
	h.Session.sever()
	h.f.Sever()
}

// Close aborts, tears down the listener and connections (flushing queued
// frames, bounded by flushTimeout) and waits for the hub's goroutines.
func (h *Hub) Close() error {
	h.Session.Close()
	return h.f.Close()
}
