package nettransport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"skipper/internal/arch"
	"skipper/internal/exec/transport"
	"skipper/internal/obsv"
	"skipper/internal/value"
)

// maxPending bounds the hub's per-processor backlog of frames buffered for
// a processor that has not attached yet. A deployment where a node never
// starts would otherwise accumulate frames without limit; hitting the cap
// fails the cluster instead.
const maxPending = 1024

// Hub is the coordinator side of the TCP backend and the control plane of
// the cluster: it listens for node processes, validates their handshakes,
// buffers frames for processors that have not attached yet, and — once
// every processor is attached — broadcasts the peer address map that turns
// the data plane into a full point-to-point mesh. It is itself a
// transport.Transport for the processors hosted in the coordinator process
// (typically processor 0, which usually holds the input/output nodes);
// traffic to and from those rides the control connections, which are
// already a single hop. Client↔client frames only cross the hub before the
// mesh is up (and are counted as relay hops).
type Hub struct {
	a  *arch.Arch
	fp uint64
	ln net.Listener
	hb time.Duration // heartbeat interval; 0 = no liveness monitor

	localSet map[arch.ProcID]bool
	boxes    map[arch.ProcID]*transport.Mailbox

	mu       sync.Mutex
	remote   map[arch.ProcID]*wconn // attached remote processors
	dataAddr map[arch.ProcID]string // their peer data listeners
	pending  map[arch.ProcID][]outFrame
	conns    []*wconn
	states   []*connState // per-connection liveness bookkeeping
	dead     map[arch.ProcID]bool
	ready    chan struct{} // closed when every non-local processor is attached
	closed   bool

	// pdFn, when registered via OnPeerDown, switches peer-death handling
	// from abort-the-cluster to contain-and-notify.
	pdMu sync.Mutex
	pdFn transport.PeerDown

	monStop chan struct{} // stops the heartbeat monitor
	monOnce sync.Once

	errMu  sync.Mutex
	err    error
	failed chan struct{} // closed on the first failf, so WaitReady fails fast

	closing   atomic.Bool
	aborted   atomic.Bool
	anyDead   atomic.Bool // fast path: skip the dead-map lookup while nobody died
	abortOnce sync.Once
	wg        sync.WaitGroup

	messages  atomic.Int64
	hops      atomic.Int64
	bytesSent atomic.Int64
	bytesRecv atomic.Int64

	// rec, when set via SetTrace before the run's traffic starts, receives
	// send/recv/abort events for hub-local processors; relayed frames are
	// counted as hops only (the endpoints record their own send/recv).
	// Atomic because accept and per-connection read loops are alive from
	// NewHub on, before the machine gets the chance to arm tracing.
	rec atomic.Pointer[obsv.Recorder]
	kl  transport.KeyLabels
}

var (
	_ transport.Transport       = (*Hub)(nil)
	_ transport.FailureNotifier = (*Hub)(nil)
	_ transport.PeerDowner      = (*Hub)(nil)
)

// connState is the hub's per-connection liveness bookkeeping: lastHeard is
// bumped on every frame the read loop sees (heartbeats included), and the
// monitor condemns a connection whose node has gone silent for several
// heartbeat intervals.
type connState struct {
	w         *wconn
	procs     []arch.ProcID
	lastHeard atomic.Int64 // UnixNano of the most recent frame
	condemned atomic.Bool  // the monitor declared it dead; readLoop exits silently
	gone      atomic.Bool  // readLoop exited (detach, death, or teardown)
}

// NewHub listens on addr (e.g. "127.0.0.1:0"; see Addr for the bound
// address) and serves the architecture's processors: local are hosted in
// this process, all others must attach over TCP with a matching schedule
// fingerprint.
func NewHub(addr string, a *arch.Arch, fingerprint uint64, local []arch.ProcID, opts ...Option) (*Hub, error) {
	o := buildOptions(opts)
	network, address := splitNetAddr(addr)
	ln, err := net.Listen(network, address)
	if err != nil {
		return nil, err
	}
	h := &Hub{
		a:        a,
		fp:       fingerprint,
		ln:       ln,
		hb:       o.heartbeat,
		localSet: map[arch.ProcID]bool{},
		boxes:    map[arch.ProcID]*transport.Mailbox{},
		remote:   map[arch.ProcID]*wconn{},
		dataAddr: map[arch.ProcID]string{},
		pending:  map[arch.ProcID][]outFrame{},
		dead:     map[arch.ProcID]bool{},
		ready:    make(chan struct{}),
		failed:   make(chan struct{}),
	}
	for _, p := range local {
		h.localSet[p] = true
		h.boxes[p] = transport.NewMailbox()
	}
	if len(local) == a.N {
		close(h.ready) // degenerate single-process deployment
	}
	h.wg.Add(1)
	go h.acceptLoop()
	if h.hb > 0 {
		h.monStop = make(chan struct{})
		h.wg.Add(1)
		go h.monitor()
	}
	return h, nil
}

// Addr is the address clients should dial ("unix:"-prefixed when the hub
// listens on a unix-domain socket).
func (h *Hub) Addr() string { return joinNetAddr(h.ln) }

// WaitReady blocks until every non-local processor has attached, the hub
// fails, or d elapses. A failure (bad handshake, node death during attach)
// returns immediately rather than burning the rest of the timeout: callers
// otherwise sit out the full attach window to learn about an error that
// was recorded milliseconds in.
func (h *Hub) WaitReady(d time.Duration) error {
	select {
	case <-h.ready:
		return nil
	case <-h.failed:
		return h.Err()
	case <-time.After(d):
		if err := h.Err(); err != nil {
			return err
		}
		return fmt.Errorf("nettransport: not all processors attached within %v", d)
	}
}

func (h *Hub) acceptLoop() {
	defer h.wg.Done()
	for {
		c, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		h.wg.Add(1)
		go h.serveConn(c)
	}
}

// serveConn validates one client handshake, attaches its processors and
// runs its reader loop. The handshake ack is written before the connection
// gets a writer, so no queued frame can ever precede it on the wire; the
// backlog flush is queued while the registration lock is held, so a
// concurrent Send cannot order ahead of frames buffered before attach.
func (h *Hub) serveConn(c net.Conn) {
	defer h.wg.Done()
	setNoDelay(c)
	br := bufio.NewReaderSize(c, readBufSize)
	hel, err := readHello(br)
	if err != nil {
		writeHelloReply(c, err.Error())
		c.Close()
		return
	}
	if reject := h.validateHello(hel); reject != "" {
		writeHelloReply(c, reject)
		c.Close()
		return
	}
	if err := writeHelloReply(c, ""); err != nil {
		c.Close()
		h.failf("nettransport: handshake ack to %v: %v", hel.procs, err)
		return
	}
	w := newWConn(c, func(err error) {
		// A write failure to a node already declared dead is expected noise
		// (the peer-down broadcast races its socket teardown), not a cluster
		// fault.
		if !h.closing.Load() && !h.aborted.Load() && !h.allDead(hel.procs) {
			h.failf("nettransport: writing to node %v: %v", hel.procs, err)
		}
	})
	cs := &connState{w: w, procs: hel.procs}
	cs.lastHeard.Store(time.Now().UnixNano())
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		w.flushClose()
		return
	}
	for _, p := range hel.procs {
		h.remote[p] = w
		h.dataAddr[p] = hel.dataAddr
		for _, f := range h.pending[p] {
			// enqueue, not send: send's inline fast path would perform a
			// blocking socket write under h.mu (stalling all routing on one
			// slow client) and on failure would invoke onErr -> failf ->
			// Abort -> h.mu.Lock on this goroutine, a self-deadlock.
			w.enqueue(f)
		}
		delete(h.pending, p)
	}
	h.conns = append(h.conns, w)
	h.states = append(h.states, cs)
	allAttached := len(h.remote)+len(h.localSet) == h.a.N
	var peersFrame []byte
	var conns []*wconn
	if allAttached {
		peersFrame = encodePeers(h.dataAddr)
		conns = append(conns, h.conns...)
	}
	h.mu.Unlock()
	if allAttached {
		for _, pw := range conns {
			pw.send(controlFrame(peersDst, peersFrame))
		}
		close(h.ready)
	}
	h.readLoop(br, cs)
	cs.gone.Store(true)
}

// validateHello returns a rejection reason, or "" to accept.
func (h *Hub) validateHello(hel hello) string {
	if hel.fingerprint != h.fp {
		return fmt.Sprintf("schedule fingerprint %#x does not match coordinator %#x (nodes compiled a different deployment)",
			hel.fingerprint, h.fp)
	}
	if len(hel.procs) == 0 {
		return "no processors claimed"
	}
	if hel.dataAddr == "" {
		return "no peer data listener address"
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range hel.procs {
		if int(p) < 0 || int(p) >= h.a.N {
			return fmt.Sprintf("processor %d outside architecture %s", p, h.a.Name)
		}
		if h.localSet[p] {
			return fmt.Sprintf("processor %d is hosted by the coordinator", p)
		}
		if _, taken := h.remote[p]; taken {
			return fmt.Sprintf("processor %d already attached", p)
		}
	}
	return ""
}

// readLoop routes one client's incoming frames. A connection that reaches
// EOF without announcing a detach is a died node process — over the peer
// mesh the hub no longer sees data frames stop flowing, so process death
// must be detected on the control plane. Without a peer-down handler the
// whole cluster aborts (the legacy behavior, and the only safe default);
// with one, the death is contained and the executive notified.
func (h *Hub) readLoop(br *bufio.Reader, cs *connState) {
	procs := cs.procs
	detached := false
	for {
		n, dst, key, err := readFrameHeader(br)
		if err != nil {
			if h.closing.Load() || h.aborted.Load() || (err == io.EOF && detached) {
				return
			}
			if cs.condemned.Load() {
				return // the monitor already declared this node dead
			}
			if err == io.EOF {
				h.connDeath(procs, fmt.Sprintf("nettransport: node %v closed its connection without detaching (process died?)", procs))
				return
			}
			h.connDeath(procs, fmt.Sprintf("nettransport: reading from node %v: %v", procs, err))
			return
		}
		cs.lastHeard.Store(time.Now().UnixNano())
		// Frames for hub-hosted processors stream-decode straight off the
		// connection — unless the sender was declared dead, in which case the
		// payload must be slurped anyway to keep the stream in sync.
		if h.localSet[arch.ProcID(dst)] && !(h.anyDead.Load() && h.allDead(procs)) {
			if serr := h.deliverLocalStream(br, arch.ProcID(dst), key, n-frameHeader); serr != nil {
				if h.closing.Load() || h.aborted.Load() || cs.condemned.Load() {
					return
				}
				h.connDeath(procs, fmt.Sprintf("nettransport: reading from node %v: %v", procs, serr))
				return
			}
			continue
		}
		fb, payload, err := readFrameRest(br, n, dst, key)
		if err != nil {
			if h.closing.Load() || h.aborted.Load() || cs.condemned.Load() {
				return
			}
			h.connDeath(procs, fmt.Sprintf("nettransport: reading from node %v: %v", procs, err))
			return
		}
		switch dst {
		case abortDst:
			putBuf(fb)
			h.Abort()
			return
		case detachDst:
			putBuf(fb)
			detached = true
			continue
		case heartbeatDst:
			putBuf(fb)
			continue
		case peersDst:
			putBuf(fb)
			h.failf("nettransport: node %v sent a peers frame", procs)
			return
		case batchDst:
			berr := forEachBatched(payload, func(d uint32, k transport.Key, body []byte) error {
				return h.nodeFrame(d, k, body, procs, &detached)
			})
			putBuf(fb)
			if berr == errStopRead {
				return
			}
			if berr != nil {
				h.failf("nettransport: batch from node %v: %v", procs, berr)
				return
			}
			continue
		}
		if h.anyDead.Load() && h.allDead(procs) {
			// A deadline-suspected node may still be running; anything it
			// sends after being declared dead is stale and dropped.
			putBuf(fb)
			continue
		}
		p := arch.ProcID(dst)
		if h.localSet[p] {
			h.deliverLocal(p, key, payload)
			putBuf(fb)
			continue
		}
		h.hops.Add(1)
		h.routeRemote(p, outFrame{head: fb}, procs)
	}
}

// nodeFrame dispatches one frame unpacked from a node's batch. Unlike the
// top-level loop — which relays a remote-bound frame by handing its arena
// buffer straight to the destination's connection — a batched sub-frame
// aliases the batch buffer, so relaying re-frames it into its own buffer.
func (h *Hub) nodeFrame(dst uint32, key transport.Key, payload []byte, procs []arch.ProcID, detached *bool) error {
	switch dst {
	case abortDst:
		h.Abort()
		return errStopRead
	case detachDst:
		*detached = true
		return nil
	case heartbeatDst:
		return nil
	case peersDst:
		h.failf("nettransport: node %v sent a peers frame", procs)
		return errStopRead
	}
	if h.anyDead.Load() && h.allDead(procs) {
		return nil // stale traffic from a declared-dead node, dropped
	}
	p := arch.ProcID(dst)
	if h.localSet[p] {
		h.deliverLocal(p, key, payload)
		return nil
	}
	fb := getBuf(4 + frameHeader + len(payload))
	buf := binary.BigEndian.AppendUint32(fb.b, uint32(frameHeader+len(payload)))
	buf = appendHeader(buf, dst, key)
	fb.b = append(buf, payload...)
	h.hops.Add(1)
	h.routeRemote(p, outFrame{head: fb}, procs)
	return nil
}

// connDeath handles a connection whose node died (EOF without detach, read
// error, or heartbeat timeout). With no peer-down handler registered the
// legacy behavior stands: the death is a cluster-wide fatal error. With a
// handler, the failure is contained — the node's processors are marked
// dead, surviving nodes are told, and the executive decides what survives.
func (h *Hub) connDeath(procs []arch.ProcID, legacy string) {
	h.pdMu.Lock()
	fn := h.pdFn
	h.pdMu.Unlock()
	if fn == nil {
		h.failf("%s", legacy)
		return
	}
	h.peerDown(procs)
}

// OnPeerDown registers the executive's failure handler, switching peer
// death from abort-the-cluster to contain-and-notify. Register before the
// run's traffic starts.
func (h *Hub) OnPeerDown(fn transport.PeerDown) {
	h.pdMu.Lock()
	h.pdFn = fn
	h.pdMu.Unlock()
}

// MarkPeerDown declares p dead without invoking the handler: the executive
// calls this when it concludes a processor is gone (task deadline overrun)
// so the transport stops routing to it and tells the other nodes. The
// hub-side observation path (connDeath) notifies; this one does not, as
// the caller already knows.
func (h *Hub) MarkPeerDown(p arch.ProcID) {
	h.markDown([]arch.ProcID{p})
}

// peerDown marks procs dead and notifies the registered handler of the
// ones not already known dead.
func (h *Hub) peerDown(procs []arch.ProcID) {
	fresh := h.markDown(procs)
	if len(fresh) == 0 {
		return
	}
	h.pdMu.Lock()
	fn := h.pdFn
	h.pdMu.Unlock()
	if fn != nil {
		fn(fresh)
	}
}

// markDown records procs as dead, drops their buffered frames, and
// broadcasts a peer-down control frame so every node contains the same
// failure. Returns the procs that were not already dead.
func (h *Hub) markDown(procs []arch.ProcID) []arch.ProcID {
	h.mu.Lock()
	var fresh []arch.ProcID
	for _, p := range procs {
		if int(p) < 0 || int(p) >= h.a.N || h.dead[p] || h.localSet[p] {
			continue
		}
		h.dead[p] = true
		fresh = append(fresh, p)
		for _, f := range h.pending[p] {
			putBuf(f.head)
		}
		delete(h.pending, p)
	}
	conns := append([]*wconn(nil), h.conns...)
	h.mu.Unlock()
	if len(fresh) == 0 {
		return nil
	}
	h.anyDead.Store(true)
	payload := encodeProcs(fresh)
	for _, w := range conns {
		// enqueue: the dead node's own conn is among these and its socket may
		// be mid-teardown; a blocking inline write here could stall or error
		// from the caller's goroutine.
		w.enqueue(controlFrame(peerDownDst, payload))
	}
	return fresh
}

// allDead reports whether every processor in procs has been declared dead
// (vacuously false for an empty list).
func (h *Hub) allDead(procs []arch.ProcID) bool {
	if !h.anyDead.Load() || len(procs) == 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range procs {
		if !h.dead[p] {
			return false
		}
	}
	return true
}

// isDead reports whether p has been declared dead.
func (h *Hub) isDead(p arch.ProcID) bool {
	if !h.anyDead.Load() {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dead[p]
}

// monitor is the hub's liveness watchdog, armed by WithHeartbeat: a
// connection with no frames at all for 3 heartbeat intervals is condemned
// — its processors are declared dead and its socket severed, catching
// nodes that hang or vanish without closing their connection (which plain
// TCP can take minutes to surface).
func (h *Hub) monitor() {
	defer h.wg.Done()
	t := time.NewTicker(h.hb)
	defer t.Stop()
	for {
		select {
		case <-h.monStop:
			return
		case <-t.C:
		}
		if h.closing.Load() || h.aborted.Load() {
			return
		}
		limit := time.Now().Add(-3 * h.hb).UnixNano()
		h.mu.Lock()
		states := append([]*connState(nil), h.states...)
		h.mu.Unlock()
		for _, cs := range states {
			if cs.gone.Load() || cs.condemned.Load() || cs.lastHeard.Load() >= limit {
				continue
			}
			cs.condemned.Store(true)
			h.connDeath(cs.procs, fmt.Sprintf("nettransport: node %v sent no frames for %v (process hung?)", cs.procs, 3*h.hb))
			cs.w.c.Close() // unblock its readLoop; condemned makes that exit silent
		}
	}
}

// routeRemote forwards a frame to dst's control connection, or buffers it
// (up to maxPending frames) if dst has not attached yet.
func (h *Hub) routeRemote(p arch.ProcID, f outFrame, from []arch.ProcID) {
	if int(p) < 0 || int(p) >= h.a.N {
		putBuf(f.head)
		h.failf("nettransport: frame from node %v for unknown processor %d", from, p)
		return
	}
	if h.isDead(p) {
		putBuf(f.head) // frames to the dead are dropped, like loss in flight
		return
	}
	h.mu.Lock()
	w, ok := h.remote[p]
	if !ok {
		if len(h.pending[p]) >= maxPending {
			h.mu.Unlock()
			putBuf(f.head)
			h.failf("nettransport: backlog for unattached processor %d exceeds %d frames", p, maxPending)
			return
		}
		f.capture() // buffered frames must not borrow sender memory
		h.pending[p] = append(h.pending[p], f)
		h.mu.Unlock()
		return
	}
	h.mu.Unlock()
	if err := w.send(f); err != nil && !h.closing.Load() && !h.aborted.Load() {
		h.failf("nettransport: forwarding to processor %d: %v", p, err)
	}
}

// deliverLocal decodes a frame payload and delivers it to a hub-hosted
// processor's mailbox.
func (h *Hub) deliverLocal(p arch.ProcID, key transport.Key, payload []byte) {
	v, err := value.Decode(payload)
	if err != nil {
		h.failf("nettransport: decoding frame for processor %d key %v: %v", p, key, err)
		return
	}
	h.bytesRecv.Add(int64(len(payload)))
	if rec := h.rec.Load(); rec != nil {
		rec.Record(int32(p), obsv.EvRecv, h.kl.Of(key), -1, int64(len(payload)))
	}
	h.boxes[p].Deliver(key, v)
}

// deliverLocalStream is deliverLocal reading the payload straight off the
// connection (see Client.deliverStream): pixel slabs land in their arena
// image without an intermediate frame buffer. An error leaves br mid-frame;
// the caller must stop reading the connection.
func (h *Hub) deliverLocalStream(br *bufio.Reader, p arch.ProcID, key transport.Key, n int) error {
	v, err := value.DecodeStream(br, n)
	if err != nil {
		return fmt.Errorf("decoding frame for processor %d key %v: %v", p, key, err)
	}
	h.bytesRecv.Add(int64(n))
	if rec := h.rec.Load(); rec != nil {
		rec.Record(int32(p), obsv.EvRecv, h.kl.Of(key), -1, int64(n))
	}
	h.boxes[p].Deliver(key, v)
	return nil
}

func (h *Hub) failf(format string, args ...any) {
	h.errMu.Lock()
	first := h.err == nil
	if first {
		h.err = fmt.Errorf(format, args...)
	}
	h.errMu.Unlock()
	if first {
		close(h.failed)
	}
	if rec := h.rec.Load(); rec != nil {
		rec.Record(-1, obsv.EvAbort, 0, -1, 0)
	}
	h.Abort()
}

// SetTrace arms event recording on r: send/recv with byte sizes for
// hub-local processors, enqueue/park/wake through the mailboxes. Call
// before traffic starts.
func (h *Hub) SetTrace(r *obsv.Recorder) {
	h.kl.Reset(r)
	h.rec.Store(r)
	for p, b := range h.boxes {
		b.SetTrace(r, int32(p), &h.kl)
	}
}

// QueueDepth reports the total delivered-but-unconsumed values across the
// hub-local mailboxes (a point-in-time gauge for metrics).
func (h *Hub) QueueDepth() int {
	n := 0
	for _, b := range h.boxes {
		n += b.Depth()
	}
	return n
}

// ClusterInfo is the hub's point-in-time view of the deployment, exposed on
// the coordinator's /varz endpoint.
type ClusterInfo struct {
	// Ready is true once every non-local processor has attached and the
	// peer address map has been broadcast.
	Ready bool `json:"ready"`
	// Local lists the coordinator-hosted processors, Attached the remotely
	// attached ones.
	Local    []int `json:"local"`
	Attached []int `json:"attached"`
	// Pending counts frames buffered for processors not yet attached.
	Pending int `json:"pending"`
	// Dead lists processors declared dead by failure detection.
	Dead []int `json:"dead,omitempty"`
}

// ClusterInfo snapshots the attachment state of the cluster.
func (h *Hub) ClusterInfo() ClusterInfo {
	var ci ClusterInfo
	for p := range h.localSet {
		ci.Local = append(ci.Local, int(p))
	}
	sort.Ints(ci.Local)
	select {
	case <-h.ready:
		ci.Ready = true
	default:
	}
	h.mu.Lock()
	for p := range h.remote {
		ci.Attached = append(ci.Attached, int(p))
	}
	for _, fs := range h.pending {
		ci.Pending += len(fs)
	}
	for p := range h.dead {
		ci.Dead = append(ci.Dead, int(p))
	}
	h.mu.Unlock()
	sort.Ints(ci.Attached)
	sort.Ints(ci.Dead)
	return ci
}

// Send injects a message from a hub-local processor. Local destinations
// skip the codec entirely (the payload is passed by reference, exactly as
// the mem backend does); remote ones are flattened and shipped over the
// destination's control connection.
func (h *Hub) Send(src, dst arch.ProcID, key transport.Key, payload value.Value) {
	if h.isDead(dst) {
		return // uncounted, like loss in flight
	}
	h.messages.Add(1)
	if h.localSet[dst] {
		n := int64(value.SizeOf(payload))
		h.bytesSent.Add(n)
		h.bytesRecv.Add(n)
		if rec := h.rec.Load(); rec != nil {
			id := h.kl.Of(key)
			rec.Record(int32(src), obsv.EvSend, id, int32(dst), n)
			rec.Record(int32(dst), obsv.EvRecv, id, -1, n)
		}
		h.boxes[dst].Deliver(key, payload)
		return
	}
	f, err := encodeMessage(dst, key, payload)
	if err != nil {
		h.failf("nettransport: encoding %v for processor %d: %v", key, dst, err)
		return
	}
	wireBytes := int64(len(f.head.b) - 4 - frameHeader + len(f.tail))
	h.bytesSent.Add(wireBytes)
	if rec := h.rec.Load(); rec != nil {
		rec.Record(int32(src), obsv.EvSend, h.kl.Of(key), int32(dst), wireBytes)
	}
	h.routeRemote(dst, f, nil)
}

// Recv blocks on a hub-local processor's mailbox.
func (h *Hub) Recv(p arch.ProcID, key transport.Key) (value.Value, bool) {
	return h.boxes[p].Recv(key)
}

// Receiver returns the mailbox slot for (p, key).
func (h *Hub) Receiver(p arch.ProcID, key transport.Key) transport.Receiver {
	return h.boxes[p].Slot(key)
}

// Abort propagates a cluster-wide abort: every attached client gets an
// abort control frame, and all local mailboxes unblock.
func (h *Hub) Abort() {
	h.abortOnce.Do(func() {
		h.aborted.Store(true)
		h.mu.Lock()
		conns := append([]*wconn(nil), h.conns...)
		h.mu.Unlock()
		for _, w := range conns {
			w.send(controlFrame(abortDst, nil)) // best effort: the conn may already be gone
		}
		for _, b := range h.boxes {
			b.Close()
		}
	})
}

func (h *Hub) stopMonitor() {
	if h.monStop != nil {
		h.monOnce.Do(func() { close(h.monStop) })
	}
}

// Sever tears the hub down the way a coordinator crash would: no abort
// broadcast, no queue flush — the listener and every control connection
// close abruptly and local mailboxes are killed. Attached clients observe
// exactly what a died coordinator produces (EOF on the control
// connection), which makes Sever the in-process stand-in for kill -9 in
// chaos tests.
func (h *Hub) Sever() {
	h.closing.Store(true)
	h.mu.Lock()
	h.closed = true
	conns := append([]*wconn(nil), h.conns...)
	h.mu.Unlock()
	h.stopMonitor()
	h.ln.Close()
	for _, w := range conns {
		w.c.Close()
	}
	for _, b := range h.boxes {
		b.Kill()
	}
	h.wg.Wait()
}

// Close aborts, tears down the listener and connections (flushing queued
// frames, bounded by flushTimeout) and waits for the hub's goroutines.
func (h *Hub) Close() error {
	h.closing.Store(true)
	h.mu.Lock()
	h.closed = true
	conns := append([]*wconn(nil), h.conns...)
	pending := h.pending
	h.pending = map[arch.ProcID][]outFrame{}
	h.mu.Unlock()
	h.stopMonitor()
	for _, fs := range pending {
		for _, f := range fs {
			putBuf(f.head)
		}
	}
	h.Abort()
	h.ln.Close()
	for _, w := range conns {
		w.flushClose()
	}
	h.wg.Wait()
	return nil
}

// Err reports the first hub-side failure, or nil.
func (h *Hub) Err() error {
	h.errMu.Lock()
	defer h.errMu.Unlock()
	return h.err
}

// Stats reports messages injected by hub-local processors, frames the hub
// relayed between node processes (zero once the mesh is up: every
// client↔client frame then travels point to point) and payload volume;
// safe to call concurrently with traffic.
func (h *Hub) Stats() transport.Stats {
	return transport.Stats{
		Messages:  h.messages.Load(),
		Hops:      h.hops.Load(),
		BytesSent: h.bytesSent.Load(),
		BytesRecv: h.bytesRecv.Load(),
	}
}
