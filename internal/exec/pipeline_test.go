package exec

import (
	"sync/atomic"
	"testing"

	"skipper/internal/arch"
	"skipper/internal/exec/faulttransport"
	"skipper/internal/exec/memtransport"
	"skipper/internal/syndex"
	"skipper/internal/value"
)

// pipeSrc is the pipelined-itermem test program: the tracking application's
// shape in miniature. grab is state-independent (the front end), the farm
// and the state update are the back end, and the accumulator is
// deliberately non-commutative so any fold-order deviation between the
// sequential and pipelined executives shows up in the outputs.
const pipeSrc = `
extern grab : unit -> int;;
extern mkwins : int -> int -> int list;;
extern work : int -> int;;
extern fold : int -> int -> int;;
extern post : int -> int * int;;
extern show : int -> unit;;
let loop (s, x) = post (fold s (df 4 work fold 0 (mkwins s x)));;
let main = itermem grab loop show 1 ();;
`

// pipeRegistry builds pipeSrc's registry around a stateful frame counter.
func pipeRegistry(frames *int64, shown *[]value.Value) *value.Registry {
	r := value.NewRegistry()
	r.Register(&value.Func{Name: "grab", Sig: "unit -> int", Arity: 1,
		Fn: func([]value.Value) value.Value {
			return int(atomic.AddInt64(frames, 1))
		}})
	r.Register(&value.Func{Name: "mkwins", Sig: "int -> int -> int list", Arity: 2,
		Fn: func(a []value.Value) value.Value {
			s, x := a[0].(int), a[1].(int)
			out := make(value.List, 6)
			for i := range out {
				out[i] = s + x*(i+1)
			}
			return out
		}})
	r.Register(&value.Func{Name: "work", Sig: "int -> int", Arity: 1,
		Fn: func(a []value.Value) value.Value { x := a[0].(int); return x*x + 1 }})
	r.Register(&value.Func{Name: "fold", Sig: "int -> int -> int", Arity: 2,
		Fn: func(a []value.Value) value.Value {
			// Non-commutative on purpose: order mistakes change the result.
			return a[0].(int)*31 + a[1].(int)
		}})
	r.Register(&value.Func{Name: "post", Sig: "int -> int * int", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			m := a[0].(int)
			return value.Tuple{m % 1_000_003, m}
		}})
	r.Register(&value.Func{Name: "show", Sig: "int -> unit", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			if shown != nil {
				*shown = append(*shown, a[0])
			}
			return value.Unit{}
		}})
	return r
}

// runPipeSrc executes pipeSrc for iters frames with the pipeline on or off
// and returns the stream of outputs.
func runPipeSrc(t *testing.T, a *arch.Arch, iters int, pipeline bool) []value.Value {
	t.Helper()
	var frames int64
	r := pipeRegistry(&frames, nil)
	s := compile(t, pipeSrc, r, a, syndex.Structured)
	m := NewMachine(s, r)
	m.DeterministicFarm = true
	m.Pipeline = pipeline
	res, err := m.Run(iters)
	if err != nil {
		t.Fatalf("pipeline=%v: %v", pipeline, err)
	}
	return res.Outputs
}

// TestPipelinedItermemMatchesSequential is the tentpole equivalence: the
// software-pipelined executive must produce bit-identical output streams
// to the sequential interpreter — same values, same iteration slots — on
// single- and multi-processor mappings, across enough frames to reach the
// pipelined steady state.
func TestPipelinedItermemMatchesSequential(t *testing.T) {
	for _, a := range []*arch.Arch{arch.Ring(1), arch.Ring(2), arch.Ring(4), arch.Star(5)} {
		const iters = 12
		seq := runPipeSrc(t, a, iters, false)
		pip := runPipeSrc(t, a, iters, true)
		if len(seq) != len(pip) {
			t.Fatalf("%s: %d sequential outputs vs %d pipelined", a.Name, len(seq), len(pip))
		}
		for i := range seq {
			if !value.Equal(seq[i], pip[i]) {
				t.Fatalf("%s: iteration %d: sequential %v vs pipelined %v",
					a.Name, i, seq[i], pip[i])
			}
		}
	}
}

// TestPipelineCutStructure pins the split-point rules: the program hosting
// the farm splits with a non-empty state-independent front end and the
// worker spawns riding in the back end; a farm-free itermem program (no
// master op) must not split at all.
func TestPipelineCutStructure(t *testing.T) {
	var frames int64
	r := pipeRegistry(&frames, nil)
	s := compile(t, pipeSrc, r, arch.Ring(4), syndex.Structured)
	m := NewMachine(s, r)
	sawCut := false
	for p := range s.Programs {
		cuts := m.pipelineCuts(arch.ProcID(p))
		if len(cuts) == 0 {
			continue
		}
		sawCut = true
		prog := s.Programs[p]
		for _, op := range prog[:cuts[0]] {
			switch op.Kind {
			case syndex.OpWorker, syndex.OpMaster, syndex.OpMemWrite:
				t.Fatalf("proc %d: op kind %v leaked into the front end", p, op.Kind)
			}
		}
		for i, cut := range cuts {
			if i > 0 && cut <= cuts[i-1] {
				t.Fatalf("proc %d: cuts %v not strictly increasing", p, cuts)
			}
			if k := prog[cut].Kind; k != syndex.OpWorker && k != syndex.OpMaster {
				t.Fatalf("proc %d: stage %d starts with %v, want a farm", p, i+1, k)
			}
		}
		// MEM ops past the first cut must all sit in the final stage.
		last := cuts[len(cuts)-1]
		for i := cuts[0]; i < last; i++ {
			op := prog[i]
			if op.Kind == syndex.OpMemWrite {
				t.Fatalf("proc %d: MEM write at op %d stranded in a middle stage (cuts %v)", p, i, cuts)
			}
		}
	}
	if !sawCut {
		t.Fatal("no processor split: the equivalence tests would be vacuous")
	}

	// streamSrc has no farm, so no processor may pipeline.
	var f2 int64
	r2 := streamRegistry(&f2, nil)
	s2 := compile(t, streamSrc, r2, arch.Ring(2), syndex.Structured)
	m2 := NewMachine(s2, r2)
	for p := range s2.Programs {
		if cuts := m2.pipelineCuts(arch.ProcID(p)); len(cuts) != 0 {
			t.Fatalf("farm-free program split at proc %d cuts %v", p, cuts)
		}
	}
}

// deepPipeSrc chains three farms inside the itermem loop — the shape that
// makes pipeline depth > 2 matter: with one cut per master, frame k+2's
// grab, frame k+1's first farm and frame k's later farms all overlap.
const deepPipeSrc = `
extern grab : unit -> int;;
extern mkwins : int -> int -> int list;;
extern work : int -> int;;
extern fold : int -> int -> int;;
extern post : int -> int * int;;
extern show : int -> unit;;
let loop (s, x) = post (fold s (df 2 work fold 0 (mkwins (df 2 work fold 0 (mkwins (df 2 work fold 0 (mkwins s x)) x)) x)));;
let main = itermem grab loop show 1 ();;
`

// runDeepPipeSrc executes deepPipeSrc with the given pipeline depth
// (0 = off, 1 = unbounded, otherwise the cap) and returns the outputs.
func runDeepPipeSrc(t *testing.T, a *arch.Arch, iters, depth int) []value.Value {
	t.Helper()
	var frames int64
	r := pipeRegistry(&frames, nil)
	s := compile(t, deepPipeSrc, r, a, syndex.Structured)
	m := NewMachine(s, r)
	m.DeterministicFarm = true
	if depth > 0 {
		m.Pipeline = true
		if depth > 1 {
			m.PipelineDepth = depth
		}
	}
	res, err := m.Run(iters)
	if err != nil {
		t.Fatalf("depth=%d: %v", depth, err)
	}
	return res.Outputs
}

// TestDeepPipelineMatchesSequential: on a three-master program the
// executive must cut at every master boundary (at least one processor gets
// three or more stages), the depth cap must truncate the chain, and the
// output stream must be bit-identical to the sequential interpreter at
// every depth.
func TestDeepPipelineMatchesSequential(t *testing.T) {
	var frames int64
	r := pipeRegistry(&frames, nil)
	s := compile(t, deepPipeSrc, r, arch.Ring(4), syndex.Structured)
	m := NewMachine(s, r)
	maxStages := 0
	for p := range s.Programs {
		if n := len(m.pipelineCuts(arch.ProcID(p))) + 1; n > maxStages {
			maxStages = n
		}
	}
	if maxStages < 3 {
		t.Fatalf("deepest processor pipelines at %d stages, want >= 3", maxStages)
	}
	m.PipelineDepth = 2
	for p := range s.Programs {
		if n := len(m.pipelineCuts(arch.ProcID(p))); n > 1 {
			t.Fatalf("proc %d: PipelineDepth=2 left %d cuts", p, n)
		}
	}

	for _, a := range []*arch.Arch{arch.Ring(1), arch.Ring(2), arch.Ring(4)} {
		const iters = 10
		seq := runDeepPipeSrc(t, a, iters, 0)
		for _, depth := range []int{1, 2, 3} {
			got := runDeepPipeSrc(t, a, iters, depth)
			for i := range seq {
				if !value.Equal(seq[i], got[i]) {
					t.Fatalf("%s depth=%d: iteration %d: %v, sequential %v",
						a.Name, depth, i, got[i], seq[i])
				}
			}
		}
	}
}

// latePipeSrc consumes the delay state only in the final fold: the linear
// schedule still places the MEM read at the top of the program, so the
// pipelined executive sinks it to the last stage. The outputs must stay
// bit-identical to the sequential interpreter — the sunk read has to see
// exactly the previous frame's write, never an older or newer one.
const latePipeSrc = `
extern grab : unit -> int;;
extern mkwins : int -> int -> int list;;
extern work : int -> int;;
extern fold : int -> int -> int;;
extern post : int -> int * int;;
extern show : int -> unit;;
let loop (s, x) = post (fold s (df 2 work fold 0 (mkwins (df 2 work fold 0 (mkwins (df 2 work fold 0 (mkwins x x)) x)) x)));;
let main = itermem grab loop show 1 ();;
`

// TestSunkMemReadMatchesSequential pins the read-sinking path: a program
// whose state feeds only the final fold must still produce bit-identical
// output streams at every pipeline depth, and the fold must be chaining
// frame k-1's result into frame k (not a stale or initial value), which the
// non-commutative fold makes visible immediately.
func TestSunkMemReadMatchesSequential(t *testing.T) {
	run := func(a *arch.Arch, iters, depth int) []value.Value {
		var frames int64
		r := pipeRegistry(&frames, nil)
		s := compile(t, latePipeSrc, r, a, syndex.Structured)
		m := NewMachine(s, r)
		m.DeterministicFarm = true
		if depth > 0 {
			m.Pipeline = true
			if depth > 1 {
				m.PipelineDepth = depth
			}
		}
		res, err := m.Run(iters)
		if err != nil {
			t.Fatalf("depth=%d: %v", depth, err)
		}
		return res.Outputs
	}
	for _, a := range []*arch.Arch{arch.Ring(1), arch.Ring(2), arch.Ring(4)} {
		const iters = 10
		seq := run(a, iters, 0)
		for _, depth := range []int{1, 2, 3} {
			got := run(a, iters, depth)
			for i := range seq {
				if !value.Equal(seq[i], got[i]) {
					t.Fatalf("%s depth=%d: iteration %d: %v, sequential %v",
						a.Name, depth, i, got[i], seq[i])
				}
			}
		}
	}
}

// TestPipelinedShowOrderPreserved: the display function runs in the back
// end, strictly one frame at a time, so the shown stream must stay in
// frame order even though front ends run ahead.
func TestPipelinedShowOrderPreserved(t *testing.T) {
	var frames int64
	var shown []value.Value
	r := pipeRegistry(&frames, &shown)
	s := compile(t, pipeSrc, r, arch.Ring(2), syndex.Structured)
	m := NewMachine(s, r)
	m.DeterministicFarm = true
	m.Pipeline = true
	res, err := m.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(shown) != 8 {
		t.Fatalf("display called %d times, want 8", len(shown))
	}
	for i, v := range shown {
		if !value.Equal(v, res.Outputs[i]) {
			t.Fatalf("display order diverged at %d: shown %v vs output %v", i, v, res.Outputs[i])
		}
	}
}

// TestPipelinedFarmSurvivesWorkerKill: the pipelined back end runs the
// fault-tolerant master protocol unchanged, so a worker death mid-stream
// must still be contained and re-dispatched with bit-identical outputs.
func TestPipelinedFarmSurvivesWorkerKill(t *testing.T) {
	a := arch.Ring(8)
	var frames int64
	r := pipeRegistry(&frames, nil)
	s := compile(t, pipeSrc, r, a, syndex.Structured)
	victims := workerOnlyProcs(s)
	if len(victims) == 0 {
		t.Fatal("schedule has no worker-only processor to kill")
	}
	ft := faulttransport.New(memtransport.New(a), faulttransport.Config{
		Faults: map[arch.ProcID]faulttransport.Fault{
			victims[0]: {KillAfterSends: 1},
		},
	})
	defer ft.Close()
	m := NewMachineOn(s, r, ft, allProcs(a))
	m.DeterministicFarm = true
	m.Pipeline = true
	m.FT = FaultTolerance{MaxRetries: 3}
	const iters = 6
	res, err := m.Run(iters)
	if err != nil {
		t.Fatalf("pipelined run did not survive the worker kill: %v", err)
	}
	want := runPipeSrc(t, a, iters, false)
	for i := range want {
		if !value.Equal(res.Outputs[i], want[i]) {
			t.Fatalf("iteration %d: degraded pipelined output %v, want %v", i, res.Outputs[i], want[i])
		}
	}
	if res.Failures < 1 {
		t.Fatalf("Failures = %d, want >= 1", res.Failures)
	}
}
