package distrib

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"skipper/internal/exec"
	"skipper/internal/exec/nettransport"
	"skipper/internal/exec/transport"
	"skipper/internal/obsv"
	"skipper/internal/vision"
)

// observer holds one process's observability state: the event recorder (when
// the spec names a trace directory) and the debug HTTP server (when it names
// a debug address). Both are optional and independent.
type observer struct {
	rec *obsv.Recorder
	dbg *obsv.DebugServer
}

// queueDepther is implemented by both transport backends.
type queueDepther interface{ QueueDepth() int }

// newRecorder mints this process's event recorder when the spec asks for
// tracing, nil otherwise. Minted before the transport comes up so it can
// ride the dial/bind (nettransport.WithTrace) — a recorder armed after the
// fact can miss the first inbound frames, which the completeness suite
// rejects as unpaired sends.
func (sp Spec) newRecorder() *obsv.Recorder {
	if sp.TraceDir == "" {
		return nil
	}
	n := sp.Procs
	if n < 1 {
		n = 1
	}
	return obsv.NewRecorder(n, 0)
}

// observe wires tracing and the debug endpoint into machine m running over
// transport t. hub is non-nil only on the coordinator, whose /varz then
// carries the cluster-aggregate view. rec is the process recorder from
// newRecorder, already handed to the transport at dial/bind time. Must be
// called before m runs: the debug server starts serving immediately (so a
// scrape can land mid-run).
func (sp Spec) observe(t transport.Transport, m *exec.Machine, hub *nettransport.Hub, rec *obsv.Recorder) (*observer, error) {
	ob := &observer{}
	if sp.TraceDir != "" {
		if err := os.MkdirAll(sp.TraceDir, 0o755); err != nil {
			return nil, fmt.Errorf("distrib: trace dir: %w", err)
		}
		if rec == nil {
			rec = sp.newRecorder()
		}
		ob.rec = rec
		m.Trace = ob.rec
	}
	if sp.DebugAddr != "" {
		mx := obsv.NewMetrics()
		m.OpLatency = mx.Histogram("skipper_op_latency_seconds",
			"Executive operation latency in seconds.", nil)
		stats := func(f func(transport.Stats) int64) func() int64 {
			return func() int64 { return f(t.Stats()) }
		}
		mx.CounterFunc("skipper_transport_messages_total",
			"Payloads injected via transport Send.",
			stats(func(s transport.Stats) int64 { return s.Messages }))
		mx.CounterFunc("skipper_transport_hops_total",
			"Link traversals by intermediate forwarders (router forwards, hub relays).",
			stats(func(s transport.Stats) int64 { return s.Hops }))
		mx.CounterFunc("skipper_transport_direct_total",
			"Frames shipped point-to-point over the peer mesh, bypassing the hub.",
			stats(func(s transport.Stats) int64 { return s.Direct }))
		mx.CounterFunc("skipper_transport_bytes_sent_total",
			"Payload bytes injected via transport Send.",
			stats(func(s transport.Stats) int64 { return s.BytesSent }))
		mx.CounterFunc("skipper_transport_bytes_recv_total",
			"Payload bytes delivered to local consumers.",
			stats(func(s transport.Stats) int64 { return s.BytesRecv }))
		mx.CounterFunc("skipper_peer_failures_total",
			"Processors declared dead by failure detection (heartbeat, EOF or task deadline).",
			m.FTFailures)
		mx.CounterFunc("skipper_task_redispatches_total",
			"Farm tasks re-dispatched onto surviving workers after their worker died.",
			m.FTRedispatches)
		mx.CounterFunc("skipper_task_speculations_total",
			"Straggler tasks speculatively duplicated onto idle workers.",
			m.FTSpeculations)
		mx.CounterFunc("skipper_speculation_wins_total",
			"Speculative duplicates whose reply beat the original worker's.",
			m.FTSpeculationWins)
		mx.CounterFunc("skipper_false_suspicions_total",
			"Deadline-suspected workers whose reply later arrived: the deadline is too tight.",
			m.FTFalseSuspicions)
		m.StageLatency = mx.StageObserver("skipper_pipeline_stage",
			"Pipelined itermem stage busy time per frame in seconds.")
		mx.CounterFunc("skipper_net_batch_flushes_total",
			"Writer drains that coalesced two or more frames into one syscall.",
			func() int64 { f, _ := nettransport.BatchStats(); return f })
		mx.CounterFunc("skipper_net_batch_subframes_total",
			"Frames shipped inside coalesced writer drains.",
			func() int64 { _, s := nettransport.BatchStats(); return s })
		mx.CounterFunc("skipper_shm_doorbell_arms_total",
			"Armed-sleep transitions on shm rings (a spin window expired).",
			func() int64 { a, _ := nettransport.ShmStats(); return a })
		mx.CounterFunc("skipper_shm_doorbell_rings_total",
			"Doorbell wakeups delivered to a sleeping shm peer.",
			func() int64 { _, r := nettransport.ShmStats(); return r })
		if qd, ok := t.(queueDepther); ok {
			mx.GaugeFunc("skipper_mailbox_queue_depth",
				"Delivered-but-unconsumed values across local mailboxes.",
				func() float64 { return float64(qd.QueueDepth()) })
		}
		mx.CounterFunc("skipper_frame_arena_hits_total",
			"Image requests satisfied by pooled pixel memory.",
			func() int64 { h, _ := vision.ArenaStats(); return h })
		mx.CounterFunc("skipper_frame_arena_misses_total",
			"Image requests that allocated a fresh pixel buffer.",
			func() int64 { _, m := vision.ArenaStats(); return m })
		mx.GaugeFunc("skipper_frame_arena_hit_ratio",
			"Fraction of image requests served from the arena.",
			func() float64 {
				h, m := vision.ArenaStats()
				if h+m == 0 {
					return 0
				}
				return float64(h) / float64(h+m)
			})
		if ob.rec != nil {
			rec := ob.rec
			mx.CounterFunc("skipper_trace_dropped_events_total",
				"Trace events lost to ring wrap-around.",
				func() int64 { return rec.Dropped() })
			// Canonical short name; kept alongside the historical series so
			// existing dashboards survive.
			mx.CounterFunc("skipper_trace_dropped_total",
				"Trace events lost to ring wrap-around.",
				func() int64 { return rec.Dropped() })
		}
		varz := func() map[string]any {
			v := map[string]any{
				"spec":  sp,
				"stats": t.Stats(),
			}
			h, ms := vision.ArenaStats()
			v["arena"] = map[string]int64{"hits": h, "misses": ms}
			if hub != nil {
				v["cluster"] = hub.ClusterInfo()
			}
			return v
		}
		dbg, err := obsv.ServeDebug(sp.DebugAddr, mx, t.Err, varz)
		if err != nil {
			return nil, fmt.Errorf("distrib: debug listener: %w", err)
		}
		ob.dbg = dbg
	}
	return ob, nil
}

// writeTrace exports this process's events as TraceDir/name. It prefers the
// run result's snapshot (which carries the hosted-processor list) but falls
// back to a direct recorder snapshot, so a failed run still leaves a trace
// behind for post-mortem. clockOff is the process's estimated offset onto
// the coordinator's wall clock (0 on the coordinator itself).
func (ob *observer) writeTrace(sp Spec, name string, res *exec.RunResult, procs []int, clockOff int64) error {
	if ob.rec == nil {
		return nil
	}
	var tr *obsv.Trace
	if res != nil && res.Trace != nil {
		tr = res.Trace
	} else {
		tr = ob.rec.Snapshot()
	}
	if len(tr.Procs) == 0 {
		tr.Procs = procs
	}
	tr.ClockOffsetNS = clockOff
	tr.Meta = sp.traceMeta()
	return tr.WriteFile(filepath.Join(sp.TraceDir, name))
}

// close stops the debug server, if one was started.
func (ob *observer) close() {
	if ob.dbg != nil {
		ob.dbg.Close()
	}
}

// traceMeta embeds the deployment parameters in every trace file, so the
// trace tooling can recompile the exact spec (SpecFromMeta) and diff
// measured timings against the predicted schedule.
func (sp Spec) traceMeta() map[string]string {
	return map[string]string{
		"app":           "tracking",
		"topology":      sp.Topology,
		"procs":         strconv.Itoa(sp.Procs),
		"width":         strconv.Itoa(sp.Width),
		"height":        strconv.Itoa(sp.Height),
		"vehicles":      strconv.Itoa(sp.Vehicles),
		"seed":          strconv.FormatInt(sp.Seed, 10),
		"iters":         strconv.Itoa(sp.Iters),
		"deterministic": strconv.FormatBool(sp.Deterministic),
	}
}

// TraceMeta exposes the deployment meta embedded in trace files, for
// control planes (serve) that assemble job traces outside this package.
func (sp Spec) TraceMeta() map[string]string { return sp.traceMeta() }

// SpecFromMeta reconstructs the deployment spec a trace was recorded under.
func SpecFromMeta(meta map[string]string) (Spec, error) {
	var sp Spec
	if len(meta) == 0 {
		return sp, fmt.Errorf("distrib: trace carries no deployment meta")
	}
	if app := meta["app"]; app != "tracking" {
		return sp, fmt.Errorf("distrib: trace meta names unknown app %q", app)
	}
	sp.Topology = meta["topology"]
	atoi := func(key string, dst *int) error {
		n, err := strconv.Atoi(meta[key])
		if err != nil {
			return fmt.Errorf("distrib: trace meta %s=%q: %w", key, meta[key], err)
		}
		*dst = n
		return nil
	}
	for _, f := range []struct {
		key string
		dst *int
	}{
		{"procs", &sp.Procs}, {"width", &sp.Width}, {"height", &sp.Height},
		{"vehicles", &sp.Vehicles}, {"iters", &sp.Iters},
	} {
		if err := atoi(f.key, f.dst); err != nil {
			return sp, err
		}
	}
	seed, err := strconv.ParseInt(meta["seed"], 10, 64)
	if err != nil {
		return sp, fmt.Errorf("distrib: trace meta seed=%q: %w", meta["seed"], err)
	}
	sp.Seed = seed
	sp.Deterministic = meta["deterministic"] == "true"
	return sp, nil
}
